// Ablation: cold-graph fallback of IS_PPM — disabled, conservative (one
// OBA block, the default) or aggressive (sequential stream until the graph
// warms).  DESIGN.md §6.
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);

  std::cout << "== Ablation — IS_PPM cold-graph fallback ==\n\n";

  Table t({"workload", "fallback", "avg read ms", "mispred", "fallback share"});
  for (auto workload : {bench::Workload::kCharisma, bench::Workload::kSprite}) {
    const Trace trace = bench::make_workload(workload, flags);
    RunConfig cfg = bench::make_base(workload, FsKind::kPafs, flags);
    cfg.cache_per_node = 4_MiB;
    struct Mode {
      const char* name;
      bool enabled;
      bool aggressive;
    };
    for (const Mode mode : {Mode{"off", false, false},
                            Mode{"one-block", true, false},
                            Mode{"sequential", true, true}}) {
      cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
      cfg.algorithm.oba_fallback = mode.enabled;
      cfg.algorithm.aggressive_fallback = mode.aggressive;
      const RunResult r = run_simulation(trace, cfg);
      t.add_row({workload == bench::Workload::kCharisma ? "CHARISMA" : "Sprite",
                 mode.name, fmt_double(r.avg_read_ms, 3),
                 fmt_double(r.misprediction_ratio, 2),
                 fmt_double(r.fallback_fraction, 2)});
    }
  }
  t.print(std::cout);
  return 0;
}
