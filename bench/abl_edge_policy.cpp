// Ablation: IS_PPM edge selection — the paper replaces classic PPM's
// most-frequent edge with the most-recently-used edge ("following the path
// that has most recently been followed achieves a more accurate
// prediction").  DESIGN.md §6.
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);

  std::cout << "== Ablation — IS_PPM edge policy (MRU vs most-frequent) ==\n\n";

  Table t({"workload", "policy", "avg read ms", "mispred", "prefetched"});
  for (auto workload : {bench::Workload::kCharisma, bench::Workload::kSprite}) {
    const Trace trace = bench::make_workload(workload, flags);
    RunConfig cfg = bench::make_base(workload, FsKind::kPafs, flags);
    cfg.cache_per_node = 4_MiB;
    for (auto policy : {IsPpmGraph::EdgePolicy::kMostRecent,
                        IsPpmGraph::EdgePolicy::kMostFrequent}) {
      cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
      cfg.algorithm.edge_policy = policy;
      const RunResult r = run_simulation(trace, cfg);
      t.add_row({workload == bench::Workload::kCharisma ? "CHARISMA" : "Sprite",
                 policy == IsPpmGraph::EdgePolicy::kMostRecent ? "most-recent"
                                                               : "most-frequent",
                 fmt_double(r.avg_read_ms, 3),
                 fmt_double(r.misprediction_ratio, 2),
                 std::to_string(r.prefetch_issued)});
    }
  }
  t.print(std::cout);
  return 0;
}
