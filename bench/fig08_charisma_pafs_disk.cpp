// Figure 8 — disk accesses, CHARISMA (PM) under PAFS
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return lap::bench::run_figure(argc, argv, "Figure 8 — disk accesses, CHARISMA (PM) under PAFS", lap::bench::Workload::kCharisma,
                                lap::FsKind::kPafs, lap::bench::FigureKind::kDiskAccesses);
}
