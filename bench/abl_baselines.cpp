// Related-work baselines (Section 1.1): the Vitter-Krishnan
// block-sequence PPM that IS_PPM evolved from, and Kroeger & Long's
// whole-file prefetching that the paper judges "too aggressive" for
// parallel environments with huge files.  This bench reproduces both
// comparisons on both workloads.
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);

  std::cout << "== Related-work baselines vs the paper's algorithms ==\n";
  std::cout << "expected: IS_PPM beats block-sequence VK_PPM (intervals can "
               "predict never-seen blocks);\n"
            << "WholeFile helps small Sprite files but floods on CHARISMA's "
               "large files\n\n";

  for (auto workload : {bench::Workload::kCharisma, bench::Workload::kSprite}) {
    const Trace trace = bench::make_workload(workload, flags);
    RunConfig cfg = bench::make_base(workload, FsKind::kPafs, flags);
    for (Bytes cache : {1_MiB, 4_MiB}) {
      cfg.cache_per_node = cache;
      std::cout << (workload == bench::Workload::kCharisma ? "CHARISMA (PM)"
                                                           : "Sprite (NOW)")
                << " under PAFS, " << cache / (1024 * 1024) << " MB/node\n";
      Table t({"algorithm", "avg read ms", "hit", "prefetched", "mispred",
               "disk accesses"});
      for (const char* algo :
           {"NP", "OBA", "VK_PPM:1", "Ln_Agr_VK_PPM:1", "WholeFile",
            "IS_PPM:1", "Ln_Agr_IS_PPM:1"}) {
        cfg.algorithm = AlgorithmSpec::parse(algo);
        const RunResult r = run_simulation(trace, cfg);
        t.add_row({algo, fmt_double(r.avg_read_ms, 3),
                   fmt_double(r.hit_ratio, 2),
                   std::to_string(r.prefetch_issued),
                   fmt_double(r.misprediction_ratio, 2),
                   std::to_string(r.disk_accesses)});
      }
      t.print(std::cout);
      std::cout << '\n';
    }
  }
  return 0;
}
