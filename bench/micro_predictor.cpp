// Micro-benchmarks of the prediction machinery (google-benchmark): graph
// update cost, prediction cost and aggressive-walk throughput — the
// per-request overhead a real file server would pay.
#include <benchmark/benchmark.h>

#include "core/aggressive.hpp"
#include "core/is_ppm.hpp"
#include "core/oba.hpp"
#include "util/rng.hpp"

namespace lap {
namespace {

void BM_ObaOnRequest(benchmark::State& state) {
  ObaPredictor oba;
  std::int64_t off = 0;
  for (auto _ : state) {
    oba.on_request(off, 4);
    benchmark::DoNotOptimize(oba.predict_next());
    off += 4;
  }
}
BENCHMARK(BM_ObaOnRequest);

void BM_IsPpmObserveRegular(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  IsPpmGraph graph(order);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  std::int64_t off = 0;
  for (auto _ : state) {
    pred.on_request(off, 4, ++t);
    off += 4;
  }
  state.counters["nodes"] = static_cast<double>(graph.node_count());
}
BENCHMARK(BM_IsPpmObserveRegular)->Arg(1)->Arg(3);

void BM_IsPpmObserveRandom(benchmark::State& state) {
  // Worst case: every request creates a new context node.
  const int order = static_cast<int>(state.range(0));
  IsPpmGraph graph(order);
  IsPpmPredictor pred(graph);
  Rng rng(99);
  std::uint64_t t = 0;
  for (auto _ : state) {
    pred.on_request(rng.uniform_int(0, 1 << 20),
                    static_cast<std::uint32_t>(rng.uniform_int(1, 16)), ++t);
  }
  state.counters["nodes"] = static_cast<double>(graph.node_count());
}
BENCHMARK(BM_IsPpmObserveRandom)->Arg(1)->Arg(3);

void BM_IsPpmPredict(benchmark::State& state) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  for (std::int64_t off = 0; off < 400; off += 4) pred.on_request(off, 4, ++t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.predict_next());
  }
}
BENCHMARK(BM_IsPpmPredict);

void BM_AggressiveWalk(benchmark::State& state) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  for (std::int64_t off = 0; off < 400; off += 4) pred.on_request(off, 4, ++t);
  for (auto _ : state) {
    GraphStream stream(pred.walker(), 400, 1 << 20, kUnboundedBudget, 1);
    std::uint64_t blocks = 0;
    while (stream.next() && blocks < 4096) ++blocks;
    benchmark::DoNotOptimize(blocks);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AggressiveWalk);

void BM_SequentialStream(benchmark::State& state) {
  for (auto _ : state) {
    SequentialStream stream(0, 4096, kUnboundedBudget);
    std::uint64_t blocks = 0;
    while (stream.next()) ++blocks;
    benchmark::DoNotOptimize(blocks);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SequentialStream);

}  // namespace
}  // namespace lap

BENCHMARK_MAIN();
