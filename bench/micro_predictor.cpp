// Micro-benchmarks of the prediction machinery (google-benchmark): graph
// update cost, prediction cost and aggressive-walk throughput — the
// per-request overhead a real file server would pay.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "core/aggressive.hpp"
#include "core/best_offset.hpp"
#include "core/feedback_throttle.hpp"
#include "core/is_ppm.hpp"
#include "core/oba.hpp"
#include "util/rng.hpp"

namespace lap {
namespace {

void BM_ObaOnRequest(benchmark::State& state) {
  ObaPredictor oba;
  std::int64_t off = 0;
  for (auto _ : state) {
    oba.on_request(off, 4);
    benchmark::DoNotOptimize(oba.predict_next());
    off += 4;
  }
}
BENCHMARK(BM_ObaOnRequest);

void BM_IsPpmObserveRegular(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  IsPpmGraph graph(order);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  std::int64_t off = 0;
  for (auto _ : state) {
    pred.on_request(off, 4, ++t);
    off += 4;
  }
  state.counters["nodes"] = static_cast<double>(graph.node_count());
}
BENCHMARK(BM_IsPpmObserveRegular)->Arg(1)->Arg(3);

void BM_IsPpmObserveRandom(benchmark::State& state) {
  // Worst case: every request creates a new context node.
  const int order = static_cast<int>(state.range(0));
  IsPpmGraph graph(order);
  IsPpmPredictor pred(graph);
  Rng rng(99);
  std::uint64_t t = 0;
  for (auto _ : state) {
    pred.on_request(rng.uniform_int(0, 1 << 20),
                    static_cast<std::uint32_t>(rng.uniform_int(1, 16)), ++t);
  }
  state.counters["nodes"] = static_cast<double>(graph.node_count());
}
BENCHMARK(BM_IsPpmObserveRandom)->Arg(1)->Arg(3);

void BM_IsPpmPredict(benchmark::State& state) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  for (std::int64_t off = 0; off < 400; off += 4) pred.on_request(off, 4, ++t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.predict_next());
  }
}
BENCHMARK(BM_IsPpmPredict);

void BM_IsPpmCharismaStream(benchmark::State& state) {
  // Higher-order lookup cost on a long CHARISMA-like stream: P processes
  // read a shared file in interleaved strided chunks (the paper's parallel
  // scientific traces), with a phase change re-reading from the start every
  // few thousand requests.  Every request is one graph intern (order-j
  // context) plus one prediction — the per-request price a file server
  // pays, on realistic (mostly-repeating, occasionally-novel) contexts.
  const int order = static_cast<int>(state.range(0));
  constexpr int kProcs = 8;
  constexpr std::uint32_t kChunk = 4;       // blocks per request
  constexpr std::int64_t kPhaseLen = 4096;  // requests between re-reads
  std::vector<std::pair<std::int64_t, std::uint32_t>> requests;
  requests.reserve(32768);
  std::int64_t cursor[kProcs] = {};
  for (int p = 0; p < kProcs; ++p) cursor[p] = p * kChunk;
  for (int i = 0; i < 32768; ++i) {
    const int p = i % kProcs;
    if (i % kPhaseLen == kPhaseLen - 1) cursor[p] = p * kChunk;  // new phase
    requests.emplace_back(cursor[p], kChunk);
    cursor[p] += kProcs * kChunk;  // the strided CHARISMA access
  }
  for (auto _ : state) {
    IsPpmGraph graph(order);
    IsPpmPredictor pred(graph);
    std::uint64_t t = 0;
    for (const auto& [off, len] : requests) {
      pred.on_request(off, len, ++t);
      benchmark::DoNotOptimize(pred.predict_next());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_IsPpmCharismaStream)->Arg(2)->Arg(3);

void BM_AggressiveWalk(benchmark::State& state) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  for (std::int64_t off = 0; off < 400; off += 4) pred.on_request(off, 4, ++t);
  for (auto _ : state) {
    GraphStream stream(pred.walker(), 400, 1 << 20, kUnboundedBudget, 1);
    std::uint64_t blocks = 0;
    while (stream.next() && blocks < 4096) ++blocks;
    benchmark::DoNotOptimize(blocks);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AggressiveWalk);

void BM_FeedbackThrottleSettle(benchmark::State& state) {
  // The per-settlement price of the adaptive degree policy: every used or
  // wasted prefetch feeds the throttle once.  A 3-used-1-wasted mix keeps
  // the accuracy inside the hysteresis band so both counters stay hot.
  FeedbackThrottle throttle;
  std::uint64_t i = 0;
  for (auto _ : state) {
    if ((i++ & 3) == 0) {
      throttle.on_wasted();
    } else {
      throttle.on_used();
    }
    benchmark::DoNotOptimize(throttle.degree());
  }
}
BENCHMARK(BM_FeedbackThrottleSettle);

void BM_BestOffsetTrain(benchmark::State& state) {
  // Per-demand training cost of the Best-Offset learner on a strided
  // stream: one RR probe plus the ring insert, with the periodic
  // adoption folded in at its natural 1/(max_offset*round_max) rate.
  BestOffsetLearner bo;
  std::uint32_t block = 0;
  for (auto _ : state) {
    bo.train(block);
    block += 3;
    benchmark::DoNotOptimize(bo.offset());
  }
}
BENCHMARK(BM_BestOffsetTrain);

void BM_SequentialStream(benchmark::State& state) {
  for (auto _ : state) {
    SequentialStream stream(0, 4096, kUnboundedBudget);
    std::uint64_t blocks = 0;
    while (stream.next()) ++blocks;
    benchmark::DoNotOptimize(blocks);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SequentialStream);

}  // namespace
}  // namespace lap

LAP_BENCHMARK_JSON_MAIN();
