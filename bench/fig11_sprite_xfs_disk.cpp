// Figure 11 — disk accesses, Sprite (NOW) under xFS
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return lap::bench::run_figure(argc, argv, "Figure 11 — disk accesses, Sprite (NOW) under xFS", lap::bench::Workload::kSprite,
                                lap::FsKind::kXfs, lap::bench::FigureKind::kDiskAccesses);
}
