// Observability-overhead micro-benchmark (google-benchmark): the same
// deterministic mini-CHARISMA workload replayed end to end with the span
// collector detached (every hook is one untaken null-check branch) and
// attached (full lifecycle provenance).  Throughput is engine events per
// second, so the spans-off/spans-on ratio is the per-event cost of the
// subsystem — the number DESIGN.md §13 budgets at under 5%.  Results are
// committed as bench/BENCH_obs_overhead.json and gated by CI's perf-smoke
// job via scripts/check_bench_regression.py.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_json.hpp"
#include "driver/simulation.hpp"
#include "obs/span.hpp"
#include "trace/charisma_gen.hpp"

namespace lap {
namespace {

// Two waves of two applications on 16 nodes: ~130k engine events and a few
// thousand prefetches per replay, so the steady-state per-event hook cost
// dominates over collector setup.  Deterministic: identical event counts
// on both sides of the comparison.
const Trace& workload() {
  static const Trace trace = [] {
    CharismaParams p;
    p.nodes = 16;
    p.scale = 0.125;
    p.apps_per_wave = 2;
    return generate_charisma(p);
  }();
  return trace;
}

void replay(benchmark::State& state, FsKind fs, bool with_spans) {
  const Trace& trace = workload();
  std::uint64_t events = 0;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.machine = MachineConfig::pm();
    cfg.fs = fs;
    cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
    cfg.cache_per_node = 4_MiB;
    SpanCollector spans;
    if (with_spans) cfg.spans = &spans;
    const RunResult r = run_simulation(trace, cfg);
    events = r.events;
    benchmark::DoNotOptimize(r.avg_read_ms);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}

void BM_RunPafsNullSink(benchmark::State& state) {
  replay(state, FsKind::kPafs, /*with_spans=*/false);
}
BENCHMARK(BM_RunPafsNullSink);

void BM_RunPafsWithSpans(benchmark::State& state) {
  replay(state, FsKind::kPafs, /*with_spans=*/true);
}
BENCHMARK(BM_RunPafsWithSpans);

void BM_RunXfsNullSink(benchmark::State& state) {
  replay(state, FsKind::kXfs, /*with_spans=*/false);
}
BENCHMARK(BM_RunXfsNullSink);

void BM_RunXfsWithSpans(benchmark::State& state) {
  replay(state, FsKind::kXfs, /*with_spans=*/true);
}
BENCHMARK(BM_RunXfsWithSpans);

}  // namespace
}  // namespace lap

LAP_BENCHMARK_JSON_MAIN();
