// Table 2 — times a block is written to disk, CHARISMA (PM) under PAFS
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return lap::bench::run_figure(argc, argv, "Table 2 — times a block is written to disk, CHARISMA (PM) under PAFS", lap::bench::Workload::kCharisma,
                                lap::FsKind::kPafs, lap::bench::FigureKind::kWritesPerBlock);
}
