// Machine-readable output for the micro-benchmarks (perf-regression gate).
//
// LAP_BENCHMARK_JSON_MAIN() replaces BENCHMARK_MAIN(): the binary behaves
// exactly like a stock google-benchmark binary (console output, standard
// flags) but additionally understands
//
//     --json <path>    (or --json=<path>)
//
// which appends this binary's results to `path` in the lap-bench-v1 schema:
//
//     {
//       "schema": "lap-bench-v1",
//       "binaries":   { "<binary>": { "max_rss_kb": N } },
//       "benchmarks": { "<name>": { "binary": "<binary>",
//                                   "real_ns": ns-per-iteration,
//                                   "items_per_second": rate-or-0 } }
//     }
//
// Appending merges by benchmark name (a re-run of one binary replaces only
// its own entries), so micro_engine and micro_predictor can share one
// BENCH_micro.json — the file scripts/check_bench_regression.py gates CI
// on.  RSS is the process peak (getrusage), recorded per binary.
#pragma once

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace lap::benchjson {

struct Entry {
  std::string binary;
  double real_ns = 0.0;
  double items_per_second = 0.0;
};

/// Console output plus per-run capture of the numbers the gate compares.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Entry e;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      e.real_ns = run.real_accumulated_time * 1e9 / iters;
      if (auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        e.items_per_second = static_cast<double>(it->second);
      }
      results[run.benchmark_name()] = e;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::map<std::string, Entry> results;  // ordered → stable JSON diffs
};

inline std::string basename_of(const char* argv0) {
  std::string s(argv0);
  const auto slash = s.find_last_of('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

/// Fold an existing lap-bench-v1 document into `benchmarks`/`rss`, skipping
/// entries owned by `binary` (they are being replaced).
inline void merge_existing(const std::string& path, const std::string& binary,
                           std::map<std::string, Entry>& benchmarks,
                           std::map<std::string, double>& rss) {
  std::ifstream in(path);
  if (!in) return;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = parse_json(buf.str());
  if (!doc || !doc->is_object()) return;
  if (const JsonValue* bins = doc->find("binaries"); bins && bins->is_object()) {
    for (const auto& [name, v] : bins->object) {
      if (name == binary) continue;
      if (const JsonValue* kb = v.find("max_rss_kb")) rss[name] = kb->number;
    }
  }
  const JsonValue* benches = doc->find("benchmarks");
  if (!benches || !benches->is_object()) return;
  for (const auto& [name, v] : benches->object) {
    Entry e;
    if (const JsonValue* b = v.find("binary")) e.binary = b->string;
    if (e.binary == binary) continue;
    if (const JsonValue* ns = v.find("real_ns")) e.real_ns = ns->number;
    if (const JsonValue* ips = v.find("items_per_second")) {
      e.items_per_second = ips->number;
    }
    benchmarks[name] = e;
  }
}

inline int run_main(int argc, char** argv) {
  // Peel off --json before google-benchmark sees (and rejects) it.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (json_path.empty()) return 0;

  const std::string binary = basename_of(argv[0]);
  std::map<std::string, Entry> benchmarks;
  std::map<std::string, double> rss;
  merge_existing(json_path, binary, benchmarks, rss);
  for (auto& [name, e] : reporter.results) {
    e.binary = binary;
    benchmarks[name] = e;
  }
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  rss[binary] = static_cast<double>(usage.ru_maxrss);  // KiB on Linux

  std::ofstream out(json_path);
  if (!out) return 1;
  JsonWriter w(out);
  w.begin_object();
  w.member("schema", "lap-bench-v1");
  w.key("binaries");
  w.begin_object();
  for (const auto& [name, kb] : rss) {
    w.key(name);
    w.begin_object();
    w.member("max_rss_kb", kb);
    w.end_object();
  }
  w.end_object();
  w.key("benchmarks");
  w.begin_object();
  for (const auto& [name, e] : benchmarks) {
    w.key(name);
    w.begin_object();
    w.member("binary", e.binary);
    w.member("real_ns", e.real_ns);
    w.member("items_per_second", e.items_per_second);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  out << "\n";
  return 0;
}

}  // namespace lap::benchjson

#define LAP_BENCHMARK_JSON_MAIN()                  \
  int main(int argc, char** argv) {                \
    return lap::benchjson::run_main(argc, argv);   \
  }
