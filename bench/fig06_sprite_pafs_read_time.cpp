// Figure 6 — average read time, Sprite (NOW) under PAFS
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return lap::bench::run_figure(argc, argv, "Figure 6 — average read time, Sprite (NOW) under PAFS", lap::bench::Workload::kSprite,
                                lap::FsKind::kPafs, lap::bench::FigureKind::kReadTime);
}
