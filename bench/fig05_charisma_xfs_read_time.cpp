// Figure 5 — average read time, CHARISMA (PM) under xFS
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return lap::bench::run_figure(argc, argv, "Figure 5 — average read time, CHARISMA (PM) under xFS", lap::bench::Workload::kCharisma,
                                lap::FsKind::kXfs, lap::bench::FigureKind::kReadTime);
}
