// Seed sensitivity of the headline comparison (DESIGN.md §7): how stable
// are the Figure 4 read times across workload seeds?  Reports mean and
// spread of each algorithm at 4 MB/node, and how often each of the two
// linear-aggressive variants wins.
#include <iostream>
#include <vector>

#include "fig_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 5));

  std::cout << "== Seed sensitivity — CHARISMA (PM) under PAFS, 4 MB/node, "
            << seeds << " seeds ==\n\n";

  const std::vector<std::string> algos{"NP", "OBA", "IS_PPM:1", "Ln_Agr_OBA",
                                       "Ln_Agr_IS_PPM:1"};
  std::vector<Accumulator> acc(algos.size());
  int isppm_wins = 0;

  for (int s = 0; s < seeds; ++s) {
    CharismaParams wp;
    wp.seed = 7 + static_cast<std::uint64_t>(s) * 1000;
    wp.scale = flags.get_double("scale", 1.0) *
               (flags.get_bool("quick", false) ? 0.4 : 1.0);
    const Trace trace = generate_charisma(wp);
    RunConfig cfg = bench::make_base(bench::Workload::kCharisma,
                                     FsKind::kPafs, flags);
    cfg.cache_per_node = 4_MiB;
    double oba = 0.0, isppm = 0.0;
    for (std::size_t a = 0; a < algos.size(); ++a) {
      cfg.algorithm = AlgorithmSpec::parse(algos[a]);
      const RunResult r = run_simulation(trace, cfg);
      acc[a].add(r.avg_read_ms);
      if (algos[a] == "Ln_Agr_OBA") oba = r.avg_read_ms;
      if (algos[a] == "Ln_Agr_IS_PPM:1") isppm = r.avg_read_ms;
    }
    isppm_wins += (isppm < oba);
  }

  Table t({"algorithm", "mean ms", "stddev", "min", "max"});
  for (std::size_t a = 0; a < algos.size(); ++a) {
    t.add_row({algos[a], fmt_double(acc[a].mean(), 3),
               fmt_double(acc[a].stddev(), 3), fmt_double(acc[a].min(), 3),
               fmt_double(acc[a].max(), 3)});
  }
  t.print(std::cout);
  std::cout << "\nLn_Agr_IS_PPM:1 beats Ln_Agr_OBA in " << isppm_wins << "/"
            << seeds << " seeds (the two are within trace noise; "
            << "see EXPERIMENTS.md)\n";
  return 0;
}
