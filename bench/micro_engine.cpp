// Micro-benchmarks of the discrete-event engine (google-benchmark): raw
// event throughput and coroutine suspend/resume cost — they bound how large
// a simulated system the harness can sweep.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "sim/engine.hpp"
#include "sim/future.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace lap {
namespace {

void BM_EventDispatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    for (int i = 0; i < batch; ++i) {
      eng.schedule_at(SimTime::us(i), [] {});
    }
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventDispatch)->Arg(1024)->Arg(65536);

void BM_CoroutineDelayChain(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    [](Engine& e, int n) -> SimTask {
      for (int i = 0; i < n; ++i) co_await e.delay(SimTime::us(1));
    }(eng, hops);
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_CoroutineDelayChain)->Arg(1024)->Arg(16384);

void BM_ResourceContention(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    Resource res(eng);
    for (int i = 0; i < tasks; ++i) {
      [](Engine& e, Resource& r) -> SimTask {
        auto guard = co_await r.scoped(prio::kDemand);
        co_await e.delay(SimTime::us(1));
      }(eng, res);
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_ResourceContention)->Arg(1024)->Arg(8192);

void BM_PromiseRendezvous(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    for (int i = 0; i < pairs; ++i) {
      SimPromise<Done> p(eng);
      [](SimFuture<Done> f) -> SimTask { co_await f; }(p.future());
      eng.schedule_in(SimTime::us(1), [p] { p.set_value(Done{}); });
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_PromiseRendezvous)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace lap

LAP_BENCHMARK_JSON_MAIN();
