// Section 2.2 text statistic: the share of prefetched blocks issued by the
// cold-graph OBA fallback — "less than 1% when the files were large
// (CHARISMA workload) and around 25% when the files were small (Sprite
// workload)".
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);

  std::cout << "== Section 2.2 — OBA-fallback share of prefetched blocks ==\n";
  std::cout << "paper: <1% on CHARISMA (large files), ~25% on Sprite (small "
               "files)\n\n";

  Table t({"workload", "algorithm", "prefetched", "fallback", "share"});
  for (auto workload : {bench::Workload::kCharisma, bench::Workload::kSprite}) {
    const Trace trace = bench::make_workload(workload, flags);
    RunConfig cfg = bench::make_base(workload, FsKind::kPafs, flags);
    cfg.cache_per_node = 4_MiB;
    for (const char* algo : {"Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3", "IS_PPM:1"}) {
      cfg.algorithm = AlgorithmSpec::parse(algo);
      const RunResult r = run_simulation(trace, cfg);
      t.add_row({workload == bench::Workload::kCharisma ? "CHARISMA" : "Sprite",
                 algo, std::to_string(r.prefetch_issued),
                 std::to_string(r.prefetch_fallback),
                 fmt_double(100.0 * r.fallback_fraction, 1) + "%"});
    }
  }
  t.print(std::cout);
  return 0;
}
