// Section 5.2 text statistic: mis-prediction ratios of the aggressive
// algorithms on the Sprite workload — "with a 4-Mbyte cache, Ln_Agr_OBA has
// a miss-prediction ratio of 32% while Ln_Agr_IS_PPM only miss-predicts 15%
// of the prefetched blocks".
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);

  std::cout << "== Section 5.2 — mis-prediction ratio, Sprite (NOW) under "
               "PAFS, 4 MB/node ==\n";
  std::cout << "paper: Ln_Agr_OBA 32%, Ln_Agr_IS_PPM 15%\n\n";

  const Trace trace = bench::make_workload(bench::Workload::kSprite, flags);
  RunConfig cfg = bench::make_base(bench::Workload::kSprite, FsKind::kPafs, flags);
  cfg.cache_per_node = 4_MiB;

  Table t({"algorithm", "prefetched", "mis-predicted ratio"});
  for (const char* algo :
       {"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"}) {
    cfg.algorithm = AlgorithmSpec::parse(algo);
    const RunResult r = run_simulation(trace, cfg);
    t.add_row({algo, std::to_string(r.prefetch_issued),
               fmt_double(100.0 * r.misprediction_ratio, 1) + "%"});
  }
  t.print(std::cout);
  return 0;
}
