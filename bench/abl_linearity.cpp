// Ablation: how much does the *linear* limitation (one outstanding
// prefetched block per file) matter?  DESIGN.md §6.  Sweeps the
// outstanding-block limit from 1 (the paper's linear algorithms) through
// small windows to unlimited flooding, on both file systems.
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);

  std::cout << "== Ablation — aggressiveness limit (outstanding prefetched "
               "blocks per file) ==\n";
  std::cout << "paper claim: controlling aggressiveness by making the "
               "algorithms linear avoids flooding the cache\n\n";

  const Trace trace = bench::make_workload(bench::Workload::kCharisma, flags);
  for (auto fs : {FsKind::kPafs, FsKind::kXfs}) {
    RunConfig cfg = bench::make_base(bench::Workload::kCharisma, fs, flags);
    std::cout << to_string(fs) << " / CHARISMA\n";
    Table t({"limit", "cache", "avg read ms", "prefetched", "mispred",
             "disk accesses"});
    for (Bytes cache : {1_MiB, 4_MiB}) {
      cfg.cache_per_node = cache;
      for (std::uint32_t limit : {1u, 2u, 4u, 16u, AlgorithmSpec::kUnlimited}) {
        cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
        cfg.algorithm.max_outstanding = limit;
        const RunResult r = run_simulation(trace, cfg);
        t.add_row({limit == AlgorithmSpec::kUnlimited ? "unlimited"
                                                      : std::to_string(limit),
                   std::to_string(cache / (1024 * 1024)) + "MB",
                   fmt_double(r.avg_read_ms, 3), std::to_string(r.prefetch_issued),
                   fmt_double(r.misprediction_ratio, 2),
                   std::to_string(r.disk_accesses)});
      }
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
