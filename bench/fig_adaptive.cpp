// Adaptive figure — degree policies against the paper's linear limitation.
//
// One binary sweeps the three outstanding-degree policies (fixed-1, the
// paper's linear limitation; fixed-j, its Dg<j>_Agr_* generalisation;
// accuracy-feedback, Fb_Agr_*) plus the Best-Offset baseline across both
// workloads (CHARISMA and Sprite) and both file systems (PAFS and xFS).
// The CSV prepends a `workload` column to the frozen figure column set so
// all four grids land in one file:
//
//   ./fig_adaptive [--quick] [--csv fig_adaptive.csv] [usual fig flags]
#include "fig_common.hpp"

namespace lap::bench {
namespace {

SweepSpec adaptive_spec(const Flags& flags) {
  SweepSpec spec;
  spec.cache_sizes = flags.get_bool("quick", false)
                         ? std::vector<Bytes>{1_MiB, 4_MiB, 16_MiB}
                         : paper_cache_sizes();
  spec.algorithms = {
      AlgorithmSpec::parse("NP"),
      AlgorithmSpec::parse("Ln_Agr_OBA"),
      AlgorithmSpec::parse("Ln_Agr_IS_PPM:1"),
      AlgorithmSpec::parse("Dg4_Agr_OBA"),
      AlgorithmSpec::parse("Dg4_Agr_IS_PPM:1"),
      AlgorithmSpec::parse("Fb_Agr_OBA"),
      AlgorithmSpec::parse("Fb_Agr_IS_PPM:1"),
      AlgorithmSpec::parse("BO:4"),
  };
  return spec;
}

// The frozen write_results_csv columns with a leading workload tag, so
// the CHARISMA and Sprite grids stay distinguishable in one file.
void write_tagged_csv(std::ostream& os, bool header, const std::string& tag,
                      const std::vector<RunResult>& results) {
  if (header) {
    os << "workload,fs,algorithm,cache_mb,avg_read_ms,hit_ratio,"
          "prefetched,used,wasted,degree_policy\n";
  }
  for (const RunResult& r : results) {
    const AlgorithmSpec spec = AlgorithmSpec::parse(r.algorithm);
    const char* policy = spec.feedback            ? "feedback"
                         : spec.kind == AlgorithmSpec::Kind::kBestOffset
                             ? "best-offset"
                         : spec.aggressive && spec.max_outstanding == 1
                             ? "fixed-1"
                         : spec.aggressive &&
                                 spec.max_outstanding !=
                                     AlgorithmSpec::kUnlimited
                             ? "fixed-j"
                             : "unbounded";
    os << tag << ',' << r.fs << ',' << r.algorithm << ','
       << r.cache_per_node / 1_MiB << ',' << r.avg_read_ms << ','
       << r.hit_ratio << ',' << r.prefetch_issued << ',' << r.prefetch_used
       << ',' << r.prefetch_wasted << ',' << policy << '\n';
  }
}

int run_adaptive(int argc, char** argv) {
  const Flags flags(argc, argv);
  const SweepSpec spec = adaptive_spec(flags);
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 0));

  std::ofstream csv;
  if (flags.has("csv")) {
    csv.open(flags.get("csv", ""));
    if (!csv) {
      std::cerr << "cannot open csv path " << flags.get("csv", "") << "\n";
      return 1;
    }
  }

  bool first = true;
  for (const Workload workload : {Workload::kCharisma, Workload::kSprite}) {
    const std::string tag =
        workload == Workload::kCharisma ? "charisma" : "sprite";
    const Trace trace = make_workload(workload, flags);
    for (const FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
      const RunConfig base = make_base(workload, fs, flags);
      const std::string title =
          "Adaptive degree policies — " + tag + " under " +
          (fs == FsKind::kPafs ? std::string("PAFS") : std::string("xFS"));
      print_experiment_header(std::cout, title, base.machine, trace, base);
      const auto results = run_sweep(trace, base, spec, threads);
      print_read_time_series(std::cout, spec, results);
      print_diagnostics(std::cout, spec, results);
      if (csv.is_open()) {
        write_tagged_csv(csv, first, tag, results);
        first = false;
      }
      std::cout << "\n";
    }
  }
  if (csv.is_open()) {
    std::cout << "(csv written to " << flags.get("csv", "") << ")\n";
  }
  return 0;
}

}  // namespace
}  // namespace lap::bench

int main(int argc, char** argv) {
  return lap::bench::run_adaptive(argc, argv);
}
