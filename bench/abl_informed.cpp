// Upper bound: informed prefetching with application-disclosed access
// patterns (Section 1.1 [16] — "no miss-predictions will be done").  How
// much of the perfect-hints headroom do the paper's on-the-fly learners
// capture?
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);

  std::cout << "== Upper bound — informed prefetching (disclosed patterns) "
               "==\n";
  std::cout << "the paper's learners are measured against perfect hints; "
               "IS_PPM's gap to 'Informed' is the cost of learning "
               "on-the-fly\n\n";

  for (auto workload : {bench::Workload::kCharisma, bench::Workload::kSprite}) {
    const Trace trace = bench::make_workload(workload, flags);
    RunConfig cfg = bench::make_base(workload, FsKind::kPafs, flags);
    cfg.cache_per_node = 4_MiB;
    std::cout << (workload == bench::Workload::kCharisma ? "CHARISMA (PM)"
                                                         : "Sprite (NOW)")
              << " under PAFS, 4 MB/node\n";
    Table t({"algorithm", "avg read ms", "hit", "prefetched", "mispred"});
    for (const char* algo : {"NP", "Ln_Agr_OBA", "Ln_Agr_IS_PPM:1",
                             "Ln_Informed", "Informed"}) {
      cfg.algorithm = AlgorithmSpec::parse(algo);
      const RunResult r = run_simulation(trace, cfg);
      t.add_row({algo, fmt_double(r.avg_read_ms, 3), fmt_double(r.hit_ratio, 2),
                 std::to_string(r.prefetch_issued),
                 fmt_double(r.misprediction_ratio, 2)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
