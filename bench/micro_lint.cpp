// Wall-time of a full-tree lap_lint analysis (google-benchmark): cold —
// every file lexed, indexed and checked from scratch — versus warm, where
// the content-hash incremental cache short-circuits both the per-file
// rules and the cross-TU pass.  The committed BENCH_lint.json makes
// analyzer slowdowns (a rule going quadratic, the index walk re-running
// on cache hits) visible in the perf-smoke gate, and the warm number is
// the one the ISSUE 10 acceptance bar ("full-tree --jobs + warm cache
// < 5 s on CI") tracks.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "bench_json.hpp"
#include "lint.hpp"

namespace lap {
namespace {

namespace fs = std::filesystem;

std::uint64_t tree_file_count() {
  std::uint64_t n = 0;
  for (const auto& e : fs::recursive_directory_iterator(LAP_MICRO_SRC_DIR)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") ++n;
  }
  return n;
}

std::string scratch_cache() {
  return (fs::temp_directory_path() / "micro_lint_cache.txt").string();
}

/// Cold: no cache file, single-threaded — the analyzer's raw cost.
void BM_LintTreeCold(benchmark::State& state) {
  for (auto _ : state) {
    std::string out;
    const int rc = lint::run_cli({"--tree", LAP_MICRO_SRC_DIR}, out);
    if (rc != 0) {
      state.SkipWithError(("src/ not clean: " + out).c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  state.counters["items_per_second"] = benchmark::Counter(
      static_cast<double>(tree_file_count() * state.iterations()),
      benchmark::Counter::kIsRate);
}

/// Warm: the cache file already holds every unit's diagnostics and the
/// cross-TU result, so a run is hashing + cache I/O only.
void BM_LintTreeWarmCache(benchmark::State& state) {
  const std::string cache = scratch_cache();
  fs::remove(cache);
  {
    std::string out;
    if (lint::run_cli({"--cache", cache, "--tree", LAP_MICRO_SRC_DIR}, out) !=
        0) {
      state.SkipWithError(("src/ not clean: " + out).c_str());
      return;
    }
  }
  for (auto _ : state) {
    std::string out;
    const int rc =
        lint::run_cli({"--cache", cache, "--tree", LAP_MICRO_SRC_DIR}, out);
    if (rc != 0) {
      state.SkipWithError(("src/ not clean: " + out).c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  fs::remove(cache);
  state.counters["items_per_second"] = benchmark::Counter(
      static_cast<double>(tree_file_count() * state.iterations()),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_LintTreeCold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LintTreeWarmCache)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lap

LAP_BENCHMARK_JSON_MAIN()
