// Architecture sweep (the paper's motivation for simulating: "so that a
// wide range of architectures can be tested"): how do NP and linear
// aggressive prefetching respond to the number of disks and to a
// distance-dependent seek model?
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);

  std::cout << "== Architecture sweep — CHARISMA under PAFS, 4 MB/node ==\n\n";

  const Trace trace = bench::make_workload(bench::Workload::kCharisma, flags);

  std::cout << "disks (flat Table 1 seeks):\n";
  Table t({"disks", "NP ms", "Ln_Agr_IS_PPM:1 ms", "speedup"});
  for (std::uint32_t disks : {4u, 8u, 16u, 32u}) {
    RunConfig cfg = bench::make_base(bench::Workload::kCharisma,
                                     FsKind::kPafs, flags);
    cfg.machine.disks = disks;
    cfg.cache_per_node = 4_MiB;
    cfg.algorithm = AlgorithmSpec::parse("NP");
    const RunResult np = run_simulation(trace, cfg);
    cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
    const RunResult lap_r = run_simulation(trace, cfg);
    t.add_row({std::to_string(disks), fmt_double(np.avg_read_ms, 3),
               fmt_double(lap_r.avg_read_ms, 3),
               fmt_double(lap_r.avg_read_ms > 0
                              ? np.avg_read_ms / lap_r.avg_read_ms
                              : 0.0, 2) + "x"});
  }
  t.print(std::cout);

  std::cout << "\nseek model (16 disks):\n";
  Table s({"seeks", "NP ms", "Ln_Agr_IS_PPM:1 ms", "speedup"});
  for (bool distance : {false, true}) {
    RunConfig cfg = bench::make_base(bench::Workload::kCharisma,
                                     FsKind::kPafs, flags);
    cfg.cache_per_node = 4_MiB;
    cfg.distance_seeks = distance;
    cfg.algorithm = AlgorithmSpec::parse("NP");
    const RunResult np = run_simulation(trace, cfg);
    cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
    const RunResult lap_r = run_simulation(trace, cfg);
    s.add_row({distance ? "distance-dependent" : "flat (Table 1)",
               fmt_double(np.avg_read_ms, 3),
               fmt_double(lap_r.avg_read_ms, 3),
               fmt_double(lap_r.avg_read_ms > 0
                              ? np.avg_read_ms / lap_r.avg_read_ms
                              : 0.0, 2) + "x"});
  }
  s.print(std::cout);
  return 0;
}
