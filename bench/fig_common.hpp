// Shared driver for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --scale <f>     workload scale factor (default 1.0)
//   --seed <n>      workload seed (defaults per generator)
//   --threads <n>   sweep parallelism (default: hardware)
//   --sync-ms <n>   write-back period in ms (default 2000)
//   --csv <path>    additionally dump every run's metrics as CSV
//   --metrics-json <path>  additionally dump manifest + runs as JSON
//   --trace-out <prefix>   per-run Chrome traces: <prefix>.<algo>.<mb>mb.json
//   --trace-in <path>      replay a trace file (text or .lapt binary)
//                          instead of the built-in generator; --scale and
//                          --seed are then ignored
//   --quick         0.4x scale and only {1,4,16} MB (CI-sized run)
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "driver/report.hpp"
#include "driver/simulation.hpp"
#include "driver/sweep.hpp"
#include "driver/metrics_json.hpp"
#include "obs/trace_event.hpp"
#include "trace/charisma_gen.hpp"
#include "trace/io/binary_io.hpp"
#include "trace/sprite_gen.hpp"
#include "util/flags.hpp"

namespace lap::bench {

enum class Workload { kCharisma, kSprite };
enum class FigureKind { kReadTime, kDiskAccesses, kWritesPerBlock };

inline Trace make_workload(Workload w, const Flags& flags) {
  if (const auto path = flags.get_opt("trace-in")) {
    // External workload: the figure sweeps whatever trace the file holds
    // (captured from a generator run, a fuzzer scenario, or a ChampSim
    // ingest) instead of generating one.
    return load_trace_file(*path);
  }
  const double quick = flags.get_bool("quick", false) ? 0.4 : 1.0;
  if (w == Workload::kCharisma) {
    CharismaParams p;
    p.scale = flags.get_double("scale", 1.0) * quick;
    if (flags.has("seed")) {
      p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
    }
    return generate_charisma(p);
  }
  SpriteParams p;
  p.scale = flags.get_double("scale", 1.0) * quick;
  if (flags.has("seed")) {
    p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1999));
  }
  return generate_sprite(p);
}

inline RunConfig make_base(Workload w, FsKind fs, const Flags& flags) {
  RunConfig cfg;
  cfg.machine =
      w == Workload::kCharisma ? MachineConfig::pm() : MachineConfig::now();
  cfg.fs = fs;
  cfg.sync_interval = SimTime::ms(
      static_cast<double>(flags.get_int("sync-ms", 2000)));
  // --shards N runs every sweep point on the sharded engine.  Execution
  // policy only: the figures are bit-identical at any shard count (§14),
  // so this is a wall-clock knob for big --scale sweeps, not a parameter.
  cfg.shards = static_cast<int>(flags.get_int("shards", 1));
  return cfg;
}

inline SweepSpec make_spec(FigureKind kind, const Flags& flags) {
  SweepSpec spec;
  spec.cache_sizes = flags.get_bool("quick", false)
                         ? std::vector<Bytes>{1_MiB, 4_MiB, 16_MiB}
                         : paper_cache_sizes();
  if (kind == FigureKind::kReadTime) {
    // Figures 4-7 plot all seven algorithms.
    spec.algorithms = AlgorithmSpec::paper_set();
  } else {
    // Figures 8-11 and Table 2: NP plus the three aggressive algorithms.
    spec.algorithms = {
        AlgorithmSpec::parse("NP"),
        AlgorithmSpec::parse("Ln_Agr_OBA"),
        AlgorithmSpec::parse("Ln_Agr_IS_PPM:1"),
        AlgorithmSpec::parse("Ln_Agr_IS_PPM:3"),
    };
  }
  return spec;
}

inline int run_figure(int argc, char** argv, const std::string& title,
                      Workload workload, FsKind fs, FigureKind kind) {
  const Flags flags(argc, argv);
  const Trace trace = make_workload(workload, flags);
  const RunConfig base = make_base(workload, fs, flags);
  SweepSpec spec = make_spec(kind, flags);
  if (flags.has("trace-out")) {
    // One private sink per grid point; concurrent runs never share a sink.
    const std::string prefix = flags.get("trace-out", "sweep-trace");
    spec.sink_factory =
        [prefix](const RunConfig& cfg) -> std::unique_ptr<TraceSink> {
      auto os = std::make_unique<std::ofstream>(
          prefix + "." + cfg.algorithm.name() + "." +
          std::to_string(cfg.cache_per_node / 1_MiB) + "mb.json");
      if (!*os) return nullptr;
      return std::make_unique<TraceSink>(std::move(os));
    };
  }

  print_experiment_header(std::cout, title, base.machine, trace, base);
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  const auto results = run_sweep(trace, base, spec, threads);

  switch (kind) {
    case FigureKind::kReadTime:
      print_read_time_series(std::cout, spec, results);
      break;
    case FigureKind::kDiskAccesses:
      print_disk_access_series(std::cout, spec, results);
      break;
    case FigureKind::kWritesPerBlock:
      print_writes_per_block_table(std::cout, spec, results);
      break;
  }
  print_diagnostics(std::cout, spec, results);
  if (flags.has("csv")) {
    std::ofstream csv(flags.get("csv", ""));
    if (csv) {
      write_results_csv(csv, results);
      std::cout << "\n(csv written to " << flags.get("csv", "") << ")\n";
    } else {
      std::cerr << "cannot open csv path " << flags.get("csv", "") << "\n";
    }
  }
  if (flags.has("metrics-json")) {
    const std::string path = flags.get("metrics-json", "");
    std::ofstream mf(path);
    if (mf) {
      RunManifest manifest = make_manifest(title, base, trace);
      manifest.workload =
          workload == Workload::kCharisma ? "charisma" : "sprite";
      manifest.workload_seed =
          flags.has("seed")
              ? static_cast<std::uint64_t>(flags.get_int("seed", 0))
              : (workload == Workload::kCharisma ? CharismaParams{}.seed
                                                 : SpriteParams{}.seed);
      if (flags.has("trace-in")) {
        // Replayed from a file: the generator parameters don't apply.
        manifest.workload = "file:" + flags.get("trace-in", "");
        manifest.workload_seed = 0;
      }
      manifest.algorithm = "";  // sweep: per-run algorithms in "runs"
      write_results_json(mf, manifest, results);
      std::cout << "\n(metrics json written to " << path << ")\n";
    } else {
      std::cerr << "cannot open metrics-json path " << path << "\n";
    }
  }
  std::cout << std::endl;
  return 0;
}

}  // namespace lap::bench
