// Micro-benchmarks of the sharded epoch-barrier engine (google-benchmark):
// event throughput at 1 / 4 / 16 shards, in events per second.
//
// shards=1 is the sequential fast path — the same dispatch loop
// micro_engine gates — so its throughput here doubles as a regression
// check on the domain/route bookkeeping the sharding refactor added.
// The parallel numbers measure the whole epoch machinery: barriers,
// mailbox exchange, per-shard heaps.  They only show wall-clock *speedup*
// on hosts with enough cores (the committed BENCH_shard.json records
// whatever the capture host had; scripts/check_bench_regression.py
// enforces the >= 2x speedup claim only when the host can express it —
// see --shard-speedup).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_json.hpp"
#include "check/scenario.hpp"
#include "driver/simulation.hpp"
#include "sim/engine.hpp"
#include "trace/charisma_gen.hpp"

namespace lap {
namespace {

constexpr std::uint16_t kServiceDomains = 16;
constexpr int kRounds = 256;

// 1 model domain + 16 service domains; service domains round-robin over
// the non-model shards (the same grouping the driver uses for disks).
DomainMap shard_map(std::uint16_t shards) {
  DomainMap map;
  map.shards = shards;
  for (std::uint16_t d = 0; d < kServiceDomains; ++d) {
    map.shard_of.push_back(
        shards == 1 ? 0 : static_cast<std::uint16_t>(1 + d % (shards - 1)));
    map.phase_of.push_back(DomainPhase::kService);
  }
  return map;
}

// The disk protocol in miniature: the model hands work to a service
// domain at the current time, the service domain replies one lookahead
// later.  Every round is one epoch of real cross-shard mail both ways.
void bounce(Engine& eng, DomainId d, SimTime at, int left) {
  eng.post_at(d, at, [&eng, d, at, left] {
    eng.post_at(DomainId{0}, at + eng.lookahead(), [&eng, d, at, left] {
      if (left > 0) bounce(eng, d, at + eng.lookahead(), left - 1);
    });
  });
}

void BM_ShardedPingPong(benchmark::State& state) {
  const auto shards = static_cast<std::uint16_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine eng;
    eng.configure_domains(shard_map(shards), SimTime::us(1));
    for (std::uint16_t d = 0; d < kServiceDomains; ++d) {
      bounce(eng, DomainId{static_cast<std::uint16_t>(d + 1)},
             SimTime::us(d), kRounds);
    }
    events = shards == 1 ? eng.run() : eng.run_parallel(0);
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ShardedPingPong)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

// End-to-end: a full fuzz-corpus scenario through the driver, counting the
// engine events the run reports.  This is the number the "2x events/sec at
// 16 shards" acceptance bar refers to — it includes the file system, the
// caches and the network, not just the dispatch loop.
void BM_ShardedScenario(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const Scenario s = generate_scenario(11);
  RunConfig cfg = scenario_config(s, FsKind::kPafs);
  cfg.shards = shards;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const RunResult r = run_simulation(s.trace, cfg);
    events = r.events;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ShardedScenario)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

// Node-granular scaling: a 64-node CHARISMA slice under xFS with caches
// large enough that the cooperative-cache model work — per-node pools,
// prefetchers, ownership round trips, directory mail — dominates and the
// disks mostly idle.  Per-node sharding spreads exactly that model phase
// over the workers, so this is the scenario the "2x events/sec at 16
// shards" acceptance bar is measured on.
void BM_NodeShardedModel(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  static const Trace trace = [] {
    CharismaParams p;
    p.nodes = 64;
    p.scale = 0.125;  // two waves: enough model traffic to time, CI-sized
    return generate_charisma(p);
  }();
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.fs = FsKind::kXfs;
  cfg.cache_per_node = 8_MiB;
  cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
  cfg.shards = shards;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const RunResult r = run_simulation(trace, cfg);
    events = r.events;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_NodeShardedModel)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

}  // namespace
}  // namespace lap

LAP_BENCHMARK_JSON_MAIN();
