// Ablation: prefetch priority at the disk.  The paper: "Prefetching a
// block will never be done if other operations are waiting to be done on
// the same disk."  This bench compares that rule against prefetching at
// demand priority.  DESIGN.md §6.
#include <iostream>

#include "fig_common.hpp"
#include "sim/priority.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);

  std::cout << "== Ablation — disk priority of prefetch reads ==\n\n";

  const Trace trace = bench::make_workload(bench::Workload::kCharisma, flags);
  Table t({"priority", "algorithm", "avg read ms", "p95 ms", "disk accesses"});
  RunConfig cfg = bench::make_base(bench::Workload::kCharisma, FsKind::kPafs, flags);
  cfg.cache_per_node = 4_MiB;
  for (int priority : {prio::kPrefetch, prio::kDemand}) {
    cfg.prefetch_priority = priority;
    for (const char* algo : {"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1"}) {
      cfg.algorithm = AlgorithmSpec::parse(algo);
      const RunResult r = run_simulation(trace, cfg);
      t.add_row({priority == prio::kPrefetch ? "background" : "demand", algo,
                 fmt_double(r.avg_read_ms, 3), fmt_double(r.read_p95_ms, 2),
                 std::to_string(r.disk_accesses)});
    }
  }
  t.print(std::cout);
  return 0;
}
