// Shard-count independence: shards (and the worker threads driving them)
// are execution policy, not semantics, so every RunResult field (doubles
// compared exactly; wall_seconds excluded) must be bit-identical between
// the sequential engine and the epoch-barrier parallel engine at any shard
// × worker combination.  This is the property-test face of the same
// contract the golden corpus and the lap_check differential stage pin.
#include <gtest/gtest.h>

#include <string>

#include "check/differential.hpp"
#include "check/scenario.hpp"
#include "driver/simulation.hpp"

namespace lap {
namespace {

TEST(SweepShards, ResultsAreIndependentOfShardAndWorkerCount) {
  for (const std::uint64_t seed : {7u, 19u}) {
    const Scenario s = generate_scenario(seed);
    for (const FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
      const RunConfig base = scenario_config(s, fs);
      const RunResult sequential = run_simulation(s.trace, base);
      // 1..8 walks every small node-granular partition (scenarios have
      // 1-6 nodes, so consecutive counts move individual nodes between
      // shards); 16 exercises more shards than domains.
      for (const int shards : {1, 2, 3, 4, 5, 6, 7, 8, 16}) {
        for (const int threads : {1, 2, 8}) {
          RunConfig cfg = base;
          cfg.shards = shards;
          cfg.shard_threads = threads;
          const RunResult sharded = run_simulation(s.trace, cfg);
          const auto diffs = diff_run_results(
              sequential, sharded,
              "seed " + std::to_string(seed) + " " + to_string(fs) +
                  " shards=" + std::to_string(shards) +
                  " threads=" + std::to_string(threads));
          EXPECT_TRUE(diffs.empty()) << diffs.front();
        }
      }
    }
  }
}

// A caller-narrowed epoch must not change results either — it may only
// shrink the automatic lookahead, never widen it past the causality bound.
TEST(SweepShards, NarrowedEpochPreservesResults) {
  const Scenario s = generate_scenario(3);
  const RunConfig base = scenario_config(s, FsKind::kPafs);
  const RunResult sequential = run_simulation(s.trace, base);
  RunConfig cfg = base;
  cfg.shards = 4;
  cfg.shard_threads = 2;
  cfg.epoch = SimTime::ns(500);  // far below the automatic lookahead
  const RunResult sharded = run_simulation(s.trace, cfg);
  const auto diffs = diff_run_results(sequential, sharded, "epoch=500ns");
  EXPECT_TRUE(diffs.empty()) << diffs.front();
}

}  // namespace
}  // namespace lap
