#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace lap {
namespace {

TEST(Accumulator, Empty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, KnownValues) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.total(), 40.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 3;
    all.add(x);
    (i < 42 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(1.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Accumulator, Reset) {
  Accumulator a;
  a.add(5.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
}

TEST(Histogram, QuantilesOfUniformSpread) {
  Histogram h(0.1, 1000.0, 64);
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  // Log-bucketed: quantiles are exact only to bucket resolution.
  EXPECT_NEAR(h.quantile(0.5), 500.0, 100.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 160.0);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(1.0, 10.0, 8);
  h.add(0.01);   // underflow
  h.add(100.0);  // overflow
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(1.0, 100.0, 16);
  Histogram b(1.0, 100.0, 16);
  a.add(5.0);
  b.add(50.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h(1.0, 100.0, 16);
  h.add(10.0);
  EXPECT_NE(h.summary().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace lap
