// Differential corpus for the hot-path container rewrite.
//
// The golden hashes below were captured by running the PR 2 fuzzer's
// scenario generator (seeds 1..32, both file systems) against the
// *original* node-based containers (std::priority_queue event loop,
// std::unordered_map tables, std::list-backed LRU, std::map disk queue)
// and fingerprinting each RunResult with hash_run_result().  The flat
// containers must reproduce every run bit-for-bit: any mismatch means the
// rewrite changed simulation behaviour, not just its speed.
#include "check/golden.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace lap {
namespace {

struct Golden {
  std::uint64_t seed;
  std::uint64_t pafs;
  std::uint64_t xfs;
};

// Captured 2026-08-05 at commit 99d0654 (pre-rewrite).
constexpr Golden kCorpus[] = {
    {1, 0x919471c41fa3d7b8ULL, 0xdf2af069d4f232adULL},
    {2, 0x59ea5faaf39f047dULL, 0x55515c318acc8c69ULL},
    {3, 0x44c4cca64b3c08eaULL, 0x2c47c0f796d8fe61ULL},
    {4, 0x3937c22dfa7f89cdULL, 0x8a0a6eb93bc35e8aULL},
    {5, 0xe279b2fe39d1ea32ULL, 0x11b5908c240dcf64ULL},
    {6, 0x04801e500d2d7023ULL, 0xe4d5c7b4f67b8692ULL},
    {7, 0x85fd671af6bbe24fULL, 0x76abd73bcf8470b5ULL},
    {8, 0xe2e369c8f547544fULL, 0x9520e4a0f0b1554cULL},
    {9, 0xa7c4225526388f6bULL, 0x450ae3b00e6a2586ULL},
    {10, 0x1b4bd5fd808bd240ULL, 0x21b898e9a893eda0ULL},
    {11, 0xa22c72d06f9524faULL, 0xc75b1f93b52fa482ULL},
    {12, 0xad6aa0fbca5903ceULL, 0xfed07d468d90dc73ULL},
    {13, 0x7230b4197237c98dULL, 0xc40649894750c871ULL},
    {14, 0xaa527d90404076f9ULL, 0x1745b89ddb3db9dfULL},
    {15, 0x62d2f92d1e36403eULL, 0x8a1437c0820c3297ULL},
    {16, 0x00d361b0ecbe77bdULL, 0xe8302e3176bffa11ULL},
    {17, 0xc2f93d9a6e66d0d9ULL, 0x777ddbc6598c4159ULL},
    {18, 0xc9a8f7665cbc387eULL, 0x9d375468d9d5e819ULL},
    {19, 0xb4b255eb5bd6ee36ULL, 0x6b3db4b9e655a506ULL},
    {20, 0xbe58198e8dd65bc2ULL, 0xb2cd467e52e4be95ULL},
    {21, 0x16711544f5d91a04ULL, 0x7a633988e41441c6ULL},
    {22, 0xb80eebd5ac25f282ULL, 0xa2c9dbabe6403f99ULL},
    {23, 0x2ae4ebfbc1f21e60ULL, 0x725959f8e95126cbULL},
    {24, 0xec931daeb17d76c1ULL, 0x3e7da832fd9ff0acULL},
    {25, 0x10be602fb919e189ULL, 0x8f28dcd707257590ULL},
    {26, 0x742cf7a98ee7ea22ULL, 0x7e164f2d53df65e5ULL},
    {27, 0x50e14093fbd4d200ULL, 0x10e850550984607bULL},
    {28, 0x34eab7139c593d82ULL, 0x60be9a1e6a5c9c02ULL},
    {29, 0x5ad07dacc54a7212ULL, 0x1c8f52b12340f638ULL},
    {30, 0xbf4488ba6409416aULL, 0x2c51cf9ea9321d79ULL},
    {31, 0x4cf60fd88b2f65a7ULL, 0xd99ad4bdc7200c7cULL},
    {32, 0xec17ef16e865d88bULL, 0xdc91d7e008422cc0ULL},
};

TEST(ContainerGolden, PafsCorpusIsBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs), g.pafs)
        << "seed " << g.seed;
  }
}

TEST(ContainerGolden, XfsCorpusIsBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs), g.xfs)
        << "seed " << g.seed;
  }
}

// Provenance non-perturbation over the full corpus: every seed, both file
// systems, replayed with a SpanCollector attached, must reproduce the
// pre-span golden hashes bit-for-bit.  The collector observes through
// passive hooks only; any hash drift here means a hook leaked simulated
// state.
TEST(ContainerGolden, SpanCollectorKeepsTheCorpusBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs, /*with_spans=*/true),
              g.pafs)
        << "seed " << g.seed;
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs, /*with_spans=*/true),
              g.xfs)
        << "seed " << g.seed;
  }
}

// The fingerprint itself must stay stable: if hash_run_result changes, the
// whole corpus above silently re-keys.  Two differing results must differ.
TEST(ContainerGolden, HashDiscriminates) {
  const std::uint64_t a = golden_scenario_hash(1, FsKind::kPafs);
  const std::uint64_t b = golden_scenario_hash(2, FsKind::kPafs);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, golden_scenario_hash(1, FsKind::kPafs));  // deterministic
}

}  // namespace
}  // namespace lap
