// Differential corpus pinning the simulator's exact behaviour.
//
// The golden hashes below come from the PR 2 fuzzer's scenario generator
// (seeds 1..32, both file systems), each RunResult fingerprinted with
// hash_run_result().  Originally captured against the node-based
// containers to guard the flat-container rewrite, they were re-captured
// once for the sharded-engine refactor (which gave disk completions a
// modelled controller latency, an intentional semantic change) on the
// *sequential* engine — and now also guard the parallel engine: every
// execution mode must reproduce these runs bit-for-bit.
#include "check/golden.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace lap {
namespace {

struct Golden {
  std::uint64_t seed;
  std::uint64_t pafs;
  std::uint64_t xfs;
};

// Re-captured 2026-08-09 on the sequential engine after the adaptive
// prefetching PR extended the fuzzer's algorithm pool (17 -> 20 entries:
// Fb_Agr_IS_PPM:1, Fb_Agr_OBA, BO:2).  The pool draw shifts which
// algorithm each seed picks, so the per-seed hashes change even though
// the simulation semantics for the pre-existing algorithms did not —
// an intentional recapture.  Earlier recapture: the node-granular
// sharding refactor (modelled-latency changes, see git history).
constexpr Golden kCorpus[] = {
    {1, 0x6e418b2d9e76e69dULL, 0x5b4146ba43bbd568ULL},
    {2, 0x4900a3deee4a0304ULL, 0xdf245788fbd2676eULL},
    {3, 0xb46216d31a03a239ULL, 0xf4807d627748f2e1ULL},
    {4, 0x3fdfce9432aa06e2ULL, 0xe1726425b9ee0325ULL},
    {5, 0x6b5253c042b3a2e8ULL, 0x6301c6fe8f461242ULL},
    {6, 0xe219d1dbb5ada2a3ULL, 0x9ba3297a7fbbe425ULL},
    {7, 0x61fa6396780b93e6ULL, 0xb66daabe042d99dfULL},
    {8, 0x364ea3afc5048982ULL, 0x4f142bb499c3d0c2ULL},
    {9, 0xf3f64f74ae57a933ULL, 0xb9f4a9747bd23ed1ULL},
    {10, 0x8edf565cdc9e6153ULL, 0x8922e01d70dadf7eULL},
    {11, 0x4c9bfd797539b1adULL, 0x9d4a2084e8c719a0ULL},
    {12, 0xbef251972f5b7cddULL, 0x80e42d7ef9343c35ULL},
    {13, 0x0f3a9d7fdadea337ULL, 0x359fd1de82e68521ULL},
    {14, 0xb50f7f153a221548ULL, 0x566a1c9b79722a13ULL},
    {15, 0x2278cb70393976d7ULL, 0xb2853eb5ebcc89e5ULL},
    {16, 0x3840d55c48a63384ULL, 0xc8cc231e217a1beeULL},
    {17, 0x1f1dabddd70a87faULL, 0x9197e8d87746f8f2ULL},
    {18, 0x09adfea14fbb6121ULL, 0x1fc8fd4f12da7b65ULL},
    {19, 0xe03210c2b5dad96bULL, 0xa46c5c0d4535e74fULL},
    {20, 0xcabd3e2ab57682bcULL, 0xd3820217ea331cd9ULL},
    {21, 0x1a8b491ec3b2adb9ULL, 0xe60e18deefda1030ULL},
    {22, 0x5d9b636abd584d0eULL, 0xbbf4da29c3081b89ULL},
    {23, 0xc8a75e75fe3ea14cULL, 0x6fcf32736f7d1bfbULL},
    {24, 0xbe2985d59a77c86bULL, 0x3ed847bf501ef229ULL},
    {25, 0x913ae583d365d0e9ULL, 0x9f85086e091243bcULL},
    {26, 0xe1385d5e24fe8a84ULL, 0x6fefe950b8ecf2edULL},
    {27, 0x786f228c6fb15811ULL, 0xa6b22d23c7d454e4ULL},
    {28, 0xcddb6e0e2c921b34ULL, 0x4e7320284bad3008ULL},
    {29, 0x5318c1af9d21b461ULL, 0x655b9f75972cc324ULL},
    {30, 0xfad83ab6593575d8ULL, 0xe04a9ee32cf10554ULL},
    {31, 0x401b12abc86f2983ULL, 0xb7b54bf12925214fULL},
    {32, 0x4a7cb52af9e5fd8dULL, 0xfa9a37abd0e0fd54ULL},
    // Seeds 47 and 60 extend the corpus past the uniform range: the first
    // scenarios drawing the adaptive-degree policies added in PR 9
    // (Fb_Agr_IS_PPM:1 and BO:2 respectively), so the feedback throttle
    // and the best-offset learner are pinned here too.
    {47, 0xcc574936d060f3bfULL, 0x0973cef91c6ee6c8ULL},
    {60, 0x5956f697b6627616ULL, 0x8e8c3ac08ae53de8ULL},
};

TEST(ContainerGolden, PafsCorpusIsBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs), g.pafs)
        << "seed " << g.seed;
  }
}

TEST(ContainerGolden, XfsCorpusIsBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs), g.xfs)
        << "seed " << g.seed;
  }
}

// Provenance non-perturbation over the full corpus: every seed, both file
// systems, replayed with a SpanCollector attached, must reproduce the
// pre-span golden hashes bit-for-bit.  The collector observes through
// passive hooks only; any hash drift here means a hook leaked simulated
// state.
TEST(ContainerGolden, SpanCollectorKeepsTheCorpusBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs, /*with_spans=*/true),
              g.pafs)
        << "seed " << g.seed;
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs, /*with_spans=*/true),
              g.xfs)
        << "seed " << g.seed;
  }
}

// Sharded-engine differential over the full corpus: every seed, both file
// systems, replayed at shards = 2, 4, 8 and 16 on the epoch-barrier
// parallel engine, must reproduce the committed *sequential* hashes
// bit-for-bit (shards = 1 is what captured them — the tests above).  Shard
// count is execution policy, not semantics; any drift here means a
// cross-shard message was applied out of canonical order.
TEST(ContainerGolden, ShardedEngineKeepsTheCorpusBitExact) {
  for (const Golden& g : kCorpus) {
    for (const int shards : {2, 4, 8, 16}) {
      EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs,
                                     /*with_spans=*/false, shards),
                g.pafs)
          << "seed " << g.seed << " shards " << shards;
      EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs,
                                     /*with_spans=*/false, shards),
                g.xfs)
          << "seed " << g.seed << " shards " << shards;
    }
  }
}

// The fingerprint itself must stay stable: if hash_run_result changes, the
// whole corpus above silently re-keys.  Two differing results must differ.
TEST(ContainerGolden, HashDiscriminates) {
  const std::uint64_t a = golden_scenario_hash(1, FsKind::kPafs);
  const std::uint64_t b = golden_scenario_hash(2, FsKind::kPafs);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, golden_scenario_hash(1, FsKind::kPafs));  // deterministic
}

}  // namespace
}  // namespace lap
