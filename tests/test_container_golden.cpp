// Differential corpus pinning the simulator's exact behaviour.
//
// The golden hashes below come from the PR 2 fuzzer's scenario generator
// (seeds 1..32, both file systems), each RunResult fingerprinted with
// hash_run_result().  Originally captured against the node-based
// containers to guard the flat-container rewrite, they were re-captured
// once for the sharded-engine refactor (which gave disk completions a
// modelled controller latency, an intentional semantic change) on the
// *sequential* engine — and now also guard the parallel engine: every
// execution mode must reproduce these runs bit-for-bit.
#include "check/golden.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace lap {
namespace {

struct Golden {
  std::uint64_t seed;
  std::uint64_t pafs;
  std::uint64_t xfs;
};

// Captured 2026-08-09 on the sequential engine after the domain/latency
// refactor (disk completion_latency + canonical (at, origin, seq) keys).
constexpr Golden kCorpus[] = {
    {1, 0xb19fac66dc9cfc22ULL, 0x52f058129a9ed35bULL},
    {2, 0x1a6ed949150aa910ULL, 0x1c2ba29da7f620b3ULL},
    {3, 0x2ec29a6305b6b426ULL, 0x5b94c2642d8c82c5ULL},
    {4, 0x5480eb20cfee1289ULL, 0x32a0c74edd95a915ULL},
    {5, 0xb23ea825ad0f9431ULL, 0xdd4c9d3a839b20aeULL},
    {6, 0x7bbfaa49ab28c861ULL, 0x0c8cd3fbc1ef421fULL},
    {7, 0x7b0ae22599a57213ULL, 0x02367d44a951523cULL},
    {8, 0xc859104206059ddfULL, 0x854dc7c9e6edea4bULL},
    {9, 0xf1fe4dcf7daa05e8ULL, 0xdd397ee7dbeb72f9ULL},
    {10, 0xc1ab720076d97de9ULL, 0x9d2826d30b5b0f91ULL},
    {11, 0x73cfc95a32cc1f2fULL, 0x929d64e88120a535ULL},
    {12, 0xd6c30f694e2ceb77ULL, 0xfa14a0f1fa085083ULL},
    {13, 0xc4e7e461398c04d2ULL, 0x7e54e02535c6e2d0ULL},
    {14, 0x684c33415134e95aULL, 0x350f8553ceaa7ff2ULL},
    {15, 0x1ad00f9f3e5f0dbeULL, 0x1fc7a9720ed00a77ULL},
    {16, 0x3496b19230ac7d7eULL, 0x7927123efc6c2162ULL},
    {17, 0x6e16e34d8cead5b4ULL, 0x47cbc6c06c4e290cULL},
    {18, 0x4370058329ea1abdULL, 0xfe7485e5d6ec07b5ULL},
    {19, 0xdea27e8114aba810ULL, 0xbc9eb8edd55fca65ULL},
    {20, 0x1668b316f8477c25ULL, 0xf7c434582f5a0f78ULL},
    {21, 0x9957d91f39c90146ULL, 0xf82bb422adaa1f71ULL},
    {22, 0xd18d7a4297c9128aULL, 0xbe3196e9ab631abcULL},
    {23, 0x9882f489174a3daeULL, 0xf48a0adb349d9d20ULL},
    {24, 0xaac639ba4d656a83ULL, 0x9e5f47d521b846c4ULL},
    {25, 0x0806d4816e1f0da5ULL, 0x5358f3c7ed11d8ceULL},
    {26, 0x3cbddc143a9253baULL, 0x9a8b5b42a0c3b66eULL},
    {27, 0x90c73305ed3542f7ULL, 0x6e2b6d0fcea2bee8ULL},
    {28, 0x49896e2057587aa4ULL, 0xeacee565fa36b19dULL},
    {29, 0xd24a4659de43fa72ULL, 0x84f1f4e391cc6e3aULL},
    {30, 0x488dfc175135746cULL, 0x3b29a4f3c89c54e4ULL},
    {31, 0xd3f8b6bb5606a441ULL, 0xa1d5a3ba24771616ULL},
    {32, 0x6052c56735335cfeULL, 0x96ee84f6e595187eULL},
};

TEST(ContainerGolden, PafsCorpusIsBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs), g.pafs)
        << "seed " << g.seed;
  }
}

TEST(ContainerGolden, XfsCorpusIsBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs), g.xfs)
        << "seed " << g.seed;
  }
}

// Provenance non-perturbation over the full corpus: every seed, both file
// systems, replayed with a SpanCollector attached, must reproduce the
// pre-span golden hashes bit-for-bit.  The collector observes through
// passive hooks only; any hash drift here means a hook leaked simulated
// state.
TEST(ContainerGolden, SpanCollectorKeepsTheCorpusBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs, /*with_spans=*/true),
              g.pafs)
        << "seed " << g.seed;
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs, /*with_spans=*/true),
              g.xfs)
        << "seed " << g.seed;
  }
}

// Sharded-engine differential over the full corpus: every seed, both file
// systems, replayed at shards = 2, 4 and 8 on the epoch-barrier parallel
// engine, must reproduce the committed *sequential* hashes bit-for-bit
// (shards = 1 is what captured them — the tests above).  Shard count is
// execution policy, not semantics; any drift here means a cross-shard
// message was applied out of canonical order.
TEST(ContainerGolden, ShardedEngineKeepsTheCorpusBitExact) {
  for (const Golden& g : kCorpus) {
    for (const int shards : {2, 4, 8}) {
      EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs,
                                     /*with_spans=*/false, shards),
                g.pafs)
          << "seed " << g.seed << " shards " << shards;
      EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs,
                                     /*with_spans=*/false, shards),
                g.xfs)
          << "seed " << g.seed << " shards " << shards;
    }
  }
}

// The fingerprint itself must stay stable: if hash_run_result changes, the
// whole corpus above silently re-keys.  Two differing results must differ.
TEST(ContainerGolden, HashDiscriminates) {
  const std::uint64_t a = golden_scenario_hash(1, FsKind::kPafs);
  const std::uint64_t b = golden_scenario_hash(2, FsKind::kPafs);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, golden_scenario_hash(1, FsKind::kPafs));  // deterministic
}

}  // namespace
}  // namespace lap
