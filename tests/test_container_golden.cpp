// Differential corpus pinning the simulator's exact behaviour.
//
// The golden hashes below come from the PR 2 fuzzer's scenario generator
// (seeds 1..32, both file systems), each RunResult fingerprinted with
// hash_run_result().  Originally captured against the node-based
// containers to guard the flat-container rewrite, they were re-captured
// once for the sharded-engine refactor (which gave disk completions a
// modelled controller latency, an intentional semantic change) on the
// *sequential* engine — and now also guard the parallel engine: every
// execution mode must reproduce these runs bit-for-bit.
#include "check/golden.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace lap {
namespace {

struct Golden {
  std::uint64_t seed;
  std::uint64_t pafs;
  std::uint64_t xfs;
};

// Captured 2026-08-09 on the sequential engine after the node-granular
// sharding refactor: per-node model domains with cross-node mail (xFS
// ownership round trips with deferred invalidations behind unconfirmed
// grants, manager-consult hops, async directory updates, per-disk token
// ids), an intentional set of modelled-latency changes.
constexpr Golden kCorpus[] = {
    {1, 0xa60894655057c40bULL, 0x541f1044ebc825daULL},
    {2, 0x02f83f2c20ec589fULL, 0xb37ebb40a59acad7ULL},
    {3, 0x3f1629d256c21216ULL, 0xdeac79e0802dd284ULL},
    {4, 0xdbb694a3986c1a80ULL, 0x2bc10b26b63a6adcULL},
    {5, 0x72e74f98f823d234ULL, 0x17fdae8c91c9f6afULL},
    {6, 0x4ac4fbfbb806ae91ULL, 0xf037b173ffd7d9d0ULL},
    {7, 0x178a79d1a972c576ULL, 0xa2334b700228c0f2ULL},
    {8, 0x927aa690daa62794ULL, 0x218c8d04fd6e26c1ULL},
    {9, 0x4d6791c2835d948eULL, 0xdd06e17c04537335ULL},
    {10, 0x532947c5eb2c1fbcULL, 0x5a51a79270e267beULL},
    {11, 0x70e1bf62bfdc6290ULL, 0x021617f14cfc74f8ULL},
    {12, 0xa0f7490ee0d4062dULL, 0x2cefc3a2bd8a488eULL},
    {13, 0xcd11ac18e211b3caULL, 0x097971a1fd0ab855ULL},
    {14, 0x4fe17f7115aa6d73ULL, 0x70c164b26376cdacULL},
    {15, 0xb0e4dabffad4b4e9ULL, 0xf8d58bbb4f50162fULL},
    {16, 0x8fed522e78597b23ULL, 0x333147a3e9cc10b6ULL},
    {17, 0xb92c97d14193066aULL, 0x5df5b6d72c0e9215ULL},
    {18, 0xde55e8b060968d62ULL, 0x923d9a8ddb67db59ULL},
    {19, 0x7e7ec068419c0831ULL, 0x12a05beb564cc465ULL},
    {20, 0x7e94ecc9e6a3d23aULL, 0x676cbea52f8e4c13ULL},
    {21, 0xcf239f79a721e690ULL, 0x452e8ae3c9c1e4e3ULL},
    {22, 0x4d8b39bd818ccc0fULL, 0xcbdac4d7982f9ac9ULL},
    {23, 0xe6b96eb3c02d9edfULL, 0xd2fe138a81d53cd1ULL},
    {24, 0xb2f00171f5eb197bULL, 0x48cd90a9efa25173ULL},
    {25, 0x490a84e3ba324161ULL, 0x2a6907ced09b8e53ULL},
    {26, 0x6a5fdab6ff658a0cULL, 0x7358711f16ce1dc3ULL},
    {27, 0x786f228c6fb15811ULL, 0xa6b22d23c7d454e4ULL},
    {28, 0xad1c79cb0591b842ULL, 0xca736d8237f3e2f5ULL},
    {29, 0x6c3431f4c5912388ULL, 0x41e5fc5344490993ULL},
    {30, 0x50b7c3cef9bb2364ULL, 0x6847dc5092e358eeULL},
    {31, 0x5b7ce8290573197cULL, 0xaa216e7259689a52ULL},
    {32, 0x5828fdaf8cadae06ULL, 0xff79188c1493b54bULL},
};

TEST(ContainerGolden, PafsCorpusIsBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs), g.pafs)
        << "seed " << g.seed;
  }
}

TEST(ContainerGolden, XfsCorpusIsBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs), g.xfs)
        << "seed " << g.seed;
  }
}

// Provenance non-perturbation over the full corpus: every seed, both file
// systems, replayed with a SpanCollector attached, must reproduce the
// pre-span golden hashes bit-for-bit.  The collector observes through
// passive hooks only; any hash drift here means a hook leaked simulated
// state.
TEST(ContainerGolden, SpanCollectorKeepsTheCorpusBitExact) {
  for (const Golden& g : kCorpus) {
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs, /*with_spans=*/true),
              g.pafs)
        << "seed " << g.seed;
    EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs, /*with_spans=*/true),
              g.xfs)
        << "seed " << g.seed;
  }
}

// Sharded-engine differential over the full corpus: every seed, both file
// systems, replayed at shards = 2, 4, 8 and 16 on the epoch-barrier
// parallel engine, must reproduce the committed *sequential* hashes
// bit-for-bit (shards = 1 is what captured them — the tests above).  Shard
// count is execution policy, not semantics; any drift here means a
// cross-shard message was applied out of canonical order.
TEST(ContainerGolden, ShardedEngineKeepsTheCorpusBitExact) {
  for (const Golden& g : kCorpus) {
    for (const int shards : {2, 4, 8, 16}) {
      EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kPafs,
                                     /*with_spans=*/false, shards),
                g.pafs)
          << "seed " << g.seed << " shards " << shards;
      EXPECT_EQ(golden_scenario_hash(g.seed, FsKind::kXfs,
                                     /*with_spans=*/false, shards),
                g.xfs)
          << "seed " << g.seed << " shards " << shards;
    }
  }
}

// The fingerprint itself must stay stable: if hash_run_result changes, the
// whole corpus above silently re-keys.  Two differing results must differ.
TEST(ContainerGolden, HashDiscriminates) {
  const std::uint64_t a = golden_scenario_hash(1, FsKind::kPafs);
  const std::uint64_t b = golden_scenario_hash(2, FsKind::kPafs);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, golden_scenario_hash(1, FsKind::kPafs));  // deterministic
}

}  // namespace
}  // namespace lap
