// Property sweep: every prefetching algorithm, driven over every access
// pattern class, must respect the same safety properties — in-bounds
// candidates, no duplicate fetches of available blocks, and the configured
// outstanding-block limit.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/prefetch_manager.hpp"
#include "trace/patterns.hpp"
#include "util/rng.hpp"

namespace lap {
namespace {

class PropertyHost final : public PrefetchHost {
 public:
  explicit PropertyHost(Engine& eng) : eng_(&eng) {}

  [[nodiscard]] bool block_available(BlockKey key) const override {
    return cached.contains(key) || inflight.contains(key);
  }

  SimFuture<Done> prefetch_fetch(BlockKey key, NodeId) override {
    // Property: the manager never re-fetches an available block.
    EXPECT_FALSE(cached.contains(key))
        << "refetched cached block " << key.index;
    EXPECT_FALSE(inflight.contains(key))
        << "duplicate in-flight fetch of block " << key.index;
    fetches.push_back(key);
    SimPromise<Done> done(*eng_);
    inflight.insert(key);
    concurrent = std::max(concurrent, inflight.size());
    eng_->schedule_in(SimTime::ms(3), [this, key, done] {
      inflight.erase(key);
      cached.insert(key);
      done.set_value(Done{});
    });
    return done.future();
  }

  [[nodiscard]] std::uint32_t file_blocks(FileId file) const override {
    auto it = sizes.find(raw(file));
    return it == sizes.end() ? 0 : it->second;
  }

  Engine* eng_;
  std::set<BlockKey> cached;
  std::set<BlockKey> inflight;
  std::vector<BlockKey> fetches;
  std::map<std::uint32_t, std::uint32_t> sizes;
  std::size_t concurrent = 0;
};

enum class Pattern { kSequential, kStrided, kFirstPart, kRandom, kBackward };

std::vector<BlockRequest> make_requests(Pattern pattern,
                                        std::uint32_t file_blocks,
                                        std::uint64_t seed) {
  Rng rng(seed);
  switch (pattern) {
    case Pattern::kSequential:
      return sequential_pattern(file_blocks, 3);
    case Pattern::kStrided:
      return strided_pattern(0, 2, 8, file_blocks / 8);
    case Pattern::kFirstPart:
      return first_part_passes(file_blocks, 0.4, 2, 3);
    case Pattern::kRandom: {
      std::vector<BlockRequest> reqs;
      for (int i = 0; i < 30; ++i) {
        reqs.push_back(BlockRequest{
            static_cast<std::uint32_t>(rng.uniform_int(0, file_blocks - 3)),
            static_cast<std::uint32_t>(rng.uniform_int(1, 3))});
      }
      return reqs;
    }
    case Pattern::kBackward: {
      std::vector<BlockRequest> reqs;
      for (std::int64_t b = file_blocks - 2; b >= 0; b -= 4) {
        reqs.push_back(BlockRequest{static_cast<std::uint32_t>(b), 2});
      }
      return reqs;
    }
  }
  return {};
}

using Case = std::tuple<const char*, Pattern>;

class PrefetchProperties : public ::testing::TestWithParam<Case> {};

TEST_P(PrefetchProperties, SafetyHolds) {
  const auto& [algo_name, pattern] = GetParam();
  constexpr std::uint32_t kFileBlocks = 96;

  Engine eng;
  PropertyHost host(eng);
  host.sizes[1] = kFileBlocks;
  bool stop = false;
  const AlgorithmSpec spec = AlgorithmSpec::parse(algo_name);
  PrefetchManager mgr(eng, spec, host, &stop);
  if (spec.kind == AlgorithmSpec::Kind::kInformed) {
    mgr.provide_hints(ProcId{1}, FileId{1},
                      make_requests(pattern, kFileBlocks, 11));
  }

  for (const BlockRequest& r : make_requests(pattern, kFileBlocks, 11)) {
    mgr.on_request(ProcId{1}, NodeId{0}, FileId{1}, r.first, r.nblocks);
    // Interleave simulated time like a real request stream does.
    eng.run_until(eng.now() + SimTime::ms(2));
    // The demand blocks themselves land in the cache.
    for (std::uint32_t b = 0; b < r.nblocks; ++b) {
      host.cached.insert(BlockKey{FileId{1}, r.first + b});
    }
  }
  eng.run_until(eng.now() + SimTime::ms(50));
  stop = true;
  eng.run();

  // Property: every candidate the manager fetched is inside the file.
  for (const BlockKey& k : host.fetches) {
    EXPECT_EQ(k.file, FileId{1});
    EXPECT_LT(k.index, kFileBlocks);
  }
  // Property: the outstanding limit was respected.
  if (spec.max_outstanding != AlgorithmSpec::kUnlimited) {
    EXPECT_LE(host.concurrent, spec.max_outstanding);
  }
  // Property: volume is bounded (emit caps prevent runaway streams).
  EXPECT_LE(host.fetches.size(), 8u * kFileBlocks);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByPattern, PrefetchProperties,
    ::testing::Combine(
        ::testing::Values("OBA", "Ln_Agr_OBA", "Agr_OBA", "IS_PPM:1",
                          "IS_PPM:3", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3",
                          "Agr_IS_PPM:1", "VK_PPM:1", "Ln_Agr_VK_PPM:1",
                          "Ln_Informed", "Informed"),
        ::testing::Values(Pattern::kSequential, Pattern::kStrided,
                          Pattern::kFirstPart, Pattern::kRandom,
                          Pattern::kBackward)),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name) {
        if (c == ':') c = '_';
      }
      switch (std::get<1>(param_info.param)) {
        case Pattern::kSequential: name += "_seq"; break;
        case Pattern::kStrided: name += "_strided"; break;
        case Pattern::kFirstPart: name += "_firstpart"; break;
        case Pattern::kRandom: name += "_random"; break;
        case Pattern::kBackward: name += "_backward"; break;
      }
      return name;
    });

// A second sweep: with a fully predictable stream and enough idle time,
// every learning algorithm must eventually achieve full coverage of the
// blocks the reader is about to touch.
class CoverageProperties
    : public ::testing::TestWithParam<const char*> {};

TEST_P(CoverageProperties, LearnsARegularStride) {
  Engine eng;
  PropertyHost host(eng);
  constexpr std::uint32_t kFileBlocks = 256;
  host.sizes[1] = kFileBlocks;
  bool stop = false;
  const AlgorithmSpec spec = AlgorithmSpec::parse(GetParam());
  PrefetchManager mgr(eng, spec, host, &stop);

  const auto reqs = strided_pattern(0, 2, 8, kFileBlocks / 8);
  if (spec.kind == AlgorithmSpec::Kind::kInformed) {
    mgr.provide_hints(ProcId{1}, FileId{1}, reqs);
  }
  std::size_t covered_requests = 0;
  for (const BlockRequest& r : reqs) {
    bool covered = true;
    for (std::uint32_t b = 0; b < r.nblocks; ++b) {
      covered &= host.cached.contains(BlockKey{FileId{1}, r.first + b});
    }
    covered_requests += covered;
    mgr.on_request(ProcId{1}, NodeId{0}, FileId{1}, r.first, r.nblocks);
    for (std::uint32_t b = 0; b < r.nblocks; ++b) {
      host.cached.insert(BlockKey{FileId{1}, r.first + b});
    }
    eng.run_until(eng.now() + SimTime::ms(40));  // plenty of pacing room
  }
  stop = true;
  eng.run();
  // After warm-up, essentially every request must have been prefetched.
  // An order-j predictor needs j+2 requests of context before its first
  // prediction; allow one more for pacing.
  EXPECT_GE(covered_requests,
            reqs.size() - static_cast<std::size_t>(spec.order) - 3);
}

INSTANTIATE_TEST_SUITE_P(Learners, CoverageProperties,
                         ::testing::Values("Ln_Agr_IS_PPM:1",
                                           "Ln_Agr_IS_PPM:3", "Ln_Informed",
                                           "Informed"));

}  // namespace
}  // namespace lap
