#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/charisma_gen.hpp"
#include "trace/sprite_gen.hpp"

namespace lap {
namespace {

// Structural invariants every generated trace must satisfy.
void check_invariants(const Trace& t, std::uint32_t nodes) {
  std::map<std::uint32_t, Bytes> sizes;
  for (const FileInfo& f : t.files) {
    EXPECT_GT(f.size, 0u);
    EXPECT_TRUE(sizes.emplace(raw(f.id), f.size).second) << "duplicate file id";
  }
  std::set<std::uint32_t> pids;
  for (const ProcessTrace& p : t.processes) {
    EXPECT_TRUE(pids.insert(raw(p.pid)).second) << "duplicate pid";
    EXPECT_LT(raw(p.node), nodes);
    std::set<std::uint32_t> opened;
    std::set<std::uint32_t> deleted;
    for (const TraceRecord& r : p.records) {
      EXPECT_GE(r.think.nanos(), 0);
      ASSERT_TRUE(sizes.contains(raw(r.file))) << "op on unknown file";
      EXPECT_FALSE(deleted.contains(raw(r.file))) << "op on deleted file";
      switch (r.op) {
        case TraceOp::kOpen:
          opened.insert(raw(r.file));
          break;
        case TraceOp::kRead:
        case TraceOp::kWrite:
          EXPECT_TRUE(opened.contains(raw(r.file)))
              << "I/O before open on file " << raw(r.file);
          EXPECT_GT(r.length, 0u);
          EXPECT_LE(r.offset + r.length, sizes[raw(r.file)])
              << "I/O beyond file size";
          break;
        case TraceOp::kClose:
          opened.erase(raw(r.file));
          break;
        case TraceOp::kDelete:
          deleted.insert(raw(r.file));
          break;
      }
    }
  }
}

TEST(CharismaGenerator, StructuralInvariants) {
  CharismaParams p;
  p.scale = 0.5;
  const Trace t = generate_charisma(p);
  EXPECT_FALSE(t.processes.empty());
  EXPECT_FALSE(t.serialize_per_node);
  check_invariants(t, p.nodes);
}

TEST(CharismaGenerator, DeterministicBySeed) {
  CharismaParams p;
  p.scale = 0.25;
  const Trace a = generate_charisma(p);
  const Trace b = generate_charisma(p);
  EXPECT_EQ(a, b);
}

TEST(CharismaGenerator, SeedChangesTheTrace) {
  CharismaParams p;
  p.scale = 0.25;
  const Trace a = generate_charisma(p);
  p.seed = 12345;
  const Trace b = generate_charisma(p);
  EXPECT_NE(a, b);
}

TEST(CharismaGenerator, ScaleGrowsTheWorkload) {
  CharismaParams small;
  small.scale = 0.25;
  CharismaParams big;
  big.scale = 1.0;
  EXPECT_GT(generate_charisma(big).total_io_ops(),
            2 * generate_charisma(small).total_io_ops());
}

TEST(CharismaGenerator, LargeRequestsArePresent) {
  // CHARISMA's signature: many large requests (the aggressiveness driver).
  CharismaParams p;
  p.scale = 0.5;
  const Trace t = generate_charisma(p);
  std::uint64_t large = 0;
  for (const auto& proc : t.processes) {
    for (const auto& r : proc.records) {
      if (r.op == TraceOp::kRead && r.length >= 8 * t.block_size) ++large;
    }
  }
  EXPECT_GT(large, t.total_io_ops() / 20);
}

TEST(CharismaGenerator, TempFilesAreDeleted) {
  CharismaParams p;
  p.scale = 1.0;
  p.temp_file_frac = 1.0;
  const Trace t = generate_charisma(p);
  std::uint64_t deletes = 0;
  for (const auto& proc : t.processes) {
    for (const auto& r : proc.records) deletes += (r.op == TraceOp::kDelete);
  }
  EXPECT_GT(deletes, 0u);
}

TEST(SpriteGenerator, StructuralInvariants) {
  SpriteParams p;
  p.scale = 0.3;
  const Trace t = generate_sprite(p);
  EXPECT_TRUE(t.serialize_per_node);
  check_invariants(t, p.nodes);
}

TEST(SpriteGenerator, DeterministicBySeed) {
  SpriteParams p;
  p.scale = 0.2;
  EXPECT_EQ(generate_sprite(p), generate_sprite(p));
}

TEST(SpriteGenerator, FilesAreSmall) {
  SpriteParams p;
  p.scale = 0.2;
  const Trace t = generate_sprite(p);
  Bytes total = 0;
  for (const FileInfo& f : t.files) {
    total += f.size;
    EXPECT_LE(f.size, static_cast<Bytes>(p.file_blocks_max) * p.block_size);
  }
  EXPECT_LT(total / t.files.size(), 24 * p.block_size);  // average stays small
}

TEST(SpriteGenerator, SessionsAreShortLivedProcesses) {
  SpriteParams p;
  p.scale = 0.2;
  const Trace t = generate_sprite(p);
  for (const auto& proc : t.processes) {
    EXPECT_LE(proc.records.size(), 220u);  // one small file per session
  }
}

TEST(SpriteGenerator, ReReadsExist) {
  SpriteParams p;
  p.scale = 0.5;
  const Trace t = generate_sprite(p);
  std::map<std::uint32_t, int> opens;
  for (const auto& proc : t.processes) {
    for (const auto& r : proc.records) {
      if (r.op == TraceOp::kOpen) ++opens[raw(r.file)];
    }
  }
  int rereads = 0;
  for (const auto& [file, n] : opens) rereads += (n > 1);
  EXPECT_GT(rereads, 10);
}

TEST(SpriteGenerator, ScriptSessionsRepeatTheirChains) {
  SpriteParams p;
  p.scale = 0.5;
  p.script_session_frac = 0.5;  // make scripts frequent enough to observe
  const Trace t = generate_sprite(p);
  // Collect per-node open sequences of multi-open processes (scripts).
  std::map<std::uint32_t, std::map<std::vector<std::uint32_t>, int>> chains;
  for (const auto& proc : t.processes) {
    std::vector<std::uint32_t> opens;
    for (const auto& r : proc.records) {
      if (r.op == TraceOp::kOpen) opens.push_back(raw(r.file));
    }
    if (opens.size() >= 3) ++chains[raw(proc.node)][opens];
  }
  ASSERT_FALSE(chains.empty());
  // At least one chain repeats verbatim on some node: the deterministic
  // open sequence whole-file prefetching relies on.
  bool repeated = false;
  for (const auto& [node, counts] : chains) {
    for (const auto& [chain, n] : counts) {
      if (n >= 2) repeated = true;
    }
  }
  EXPECT_TRUE(repeated);
}

TEST(SpriteGenerator, PartialPrefixIsAPropertyOfTheFile) {
  SpriteParams p;
  p.scale = 0.5;
  const Trace t = generate_sprite(p);
  // For every file, all read sessions cover the same prefix length.
  std::map<std::uint32_t, std::set<Bytes>> max_end;
  for (const auto& proc : t.processes) {
    std::map<std::uint32_t, Bytes> session_end;
    bool wrote = false;
    for (const auto& r : proc.records) {
      if (r.op == TraceOp::kWrite) wrote = true;
      if (r.op == TraceOp::kRead) {
        auto& e = session_end[raw(r.file)];
        e = std::max(e, r.offset + r.length);
      }
    }
    if (wrote) continue;  // write sessions read back their own data
    for (auto& [file, end] : session_end) max_end[file].insert(end);
  }
  std::size_t checked = 0;
  for (const auto& [file, ends] : max_end) {
    // Strided files land their last request at a draw-dependent position,
    // so ends may vary by up to one stride of maximal requests; the
    // *prefix* itself (partial vs whole) is fixed per file.
    const Bytes spread = *ends.rbegin() - *ends.begin();
    EXPECT_LE(spread, static_cast<Bytes>(p.stride_max) * p.req_blocks_max *
                          p.block_size)
        << "file " << file << " read to widely varying ends";
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST(SpriteGenerator, MostWrittenFilesDieYoung) {
  SpriteParams p;
  p.scale = 0.5;
  const Trace t = generate_sprite(p);
  std::uint64_t writes = 0, deletes = 0;
  std::set<std::uint32_t> written;
  for (const auto& proc : t.processes) {
    for (const auto& r : proc.records) {
      if (r.op == TraceOp::kWrite) written.insert(raw(r.file));
      if (r.op == TraceOp::kDelete) ++deletes;
    }
  }
  writes = written.size();
  ASSERT_GT(writes, 0u);
  EXPECT_GT(static_cast<double>(deletes) / static_cast<double>(writes), 0.5);
}

}  // namespace
}  // namespace lap
