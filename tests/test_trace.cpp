#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lap {
namespace {

Trace sample() {
  Trace t;
  t.block_size = 8_KiB;
  t.serialize_per_node = true;
  t.files = {FileInfo{FileId{0}, 64_KiB}, FileInfo{FileId{1}, 8_KiB}};
  ProcessTrace p1{ProcId{0}, NodeId{3}, {}};
  p1.records = {
      TraceRecord{TraceOp::kOpen, FileId{0}, 0, 0, SimTime::ms(1)},
      TraceRecord{TraceOp::kRead, FileId{0}, 0, 16_KiB, SimTime::us(250)},
      TraceRecord{TraceOp::kWrite, FileId{1}, 0, 8_KiB, SimTime::zero()},
      TraceRecord{TraceOp::kClose, FileId{0}, 0, 0, SimTime::zero()},
      TraceRecord{TraceOp::kDelete, FileId{1}, 0, 0, SimTime::zero()},
  };
  t.processes.push_back(std::move(p1));
  return t;
}

TEST(TraceOps, CharRoundTrip) {
  for (TraceOp op : {TraceOp::kOpen, TraceOp::kRead, TraceOp::kWrite,
                     TraceOp::kClose, TraceOp::kDelete}) {
    EXPECT_EQ(trace_op_from_char(to_char(op)), op);
  }
  EXPECT_THROW(trace_op_from_char('x'), std::invalid_argument);
}

TEST(Trace, Totals) {
  const Trace t = sample();
  EXPECT_EQ(t.total_io_ops(), 2u);  // one read, one write
  EXPECT_EQ(t.total_records(), 5u);
  EXPECT_EQ(t.total_bytes_read(), 16_KiB);
  EXPECT_EQ(t.total_bytes_written(), 8_KiB);
  EXPECT_EQ(t.node_span(), 4u);
}

TEST(Trace, SaveLoadRoundTrip) {
  const Trace t = sample();
  std::stringstream ss;
  t.save(ss);
  const Trace back = Trace::load(ss);
  EXPECT_EQ(back, t);
}

TEST(Trace, LoadRejectsRecordBeforeProc) {
  std::stringstream ss("  100 R 0 0 8192\n");
  EXPECT_THROW(Trace::load(ss), std::invalid_argument);
}

TEST(Trace, LoadSkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# comment\n\nblocksize 8192\nproc 1 2\n  5 R 0 0 8192\n");
  const Trace t = Trace::load(ss);
  ASSERT_EQ(t.processes.size(), 1u);
  EXPECT_EQ(t.processes[0].pid, ProcId{1});
  EXPECT_EQ(t.processes[0].node, NodeId{2});
  ASSERT_EQ(t.processes[0].records.size(), 1u);
  EXPECT_EQ(t.processes[0].records[0].think, SimTime::ns(5));
}

TEST(Trace, EmptyTraceTotals) {
  Trace t;
  EXPECT_EQ(t.total_io_ops(), 0u);
  EXPECT_EQ(t.node_span(), 0u);
}

}  // namespace
}  // namespace lap
