#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lap {
namespace {

Trace sample() {
  Trace t;
  t.block_size = 8_KiB;
  t.serialize_per_node = true;
  t.files = {FileInfo{FileId{0}, 64_KiB}, FileInfo{FileId{1}, 8_KiB}};
  ProcessTrace p1{ProcId{0}, NodeId{3}, {}};
  p1.records = {
      TraceRecord{TraceOp::kOpen, FileId{0}, 0, 0, SimTime::ms(1)},
      TraceRecord{TraceOp::kRead, FileId{0}, 0, 16_KiB, SimTime::us(250)},
      TraceRecord{TraceOp::kWrite, FileId{1}, 0, 8_KiB, SimTime::zero()},
      TraceRecord{TraceOp::kClose, FileId{0}, 0, 0, SimTime::zero()},
      TraceRecord{TraceOp::kDelete, FileId{1}, 0, 0, SimTime::zero()},
  };
  t.processes.push_back(std::move(p1));
  return t;
}

TEST(TraceOps, CharRoundTrip) {
  for (TraceOp op : {TraceOp::kOpen, TraceOp::kRead, TraceOp::kWrite,
                     TraceOp::kClose, TraceOp::kDelete}) {
    EXPECT_EQ(trace_op_from_char(to_char(op)), op);
  }
  EXPECT_THROW((void)trace_op_from_char('x'), std::invalid_argument);
}

TEST(Trace, Totals) {
  const Trace t = sample();
  EXPECT_EQ(t.total_io_ops(), 2u);  // one read, one write
  EXPECT_EQ(t.total_records(), 5u);
  EXPECT_EQ(t.total_bytes_read(), 16_KiB);
  EXPECT_EQ(t.total_bytes_written(), 8_KiB);
  EXPECT_EQ(t.node_span(), 4u);
}

TEST(Trace, SaveLoadRoundTrip) {
  const Trace t = sample();
  std::stringstream ss;
  t.save(ss);
  const Trace back = Trace::load(ss);
  EXPECT_EQ(back, t);
}

TEST(Trace, LoadRejectsRecordBeforeProc) {
  std::stringstream ss("  100 R 0 0 8192\n");
  EXPECT_THROW(Trace::load(ss), std::invalid_argument);
}

TEST(Trace, LoadSkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# comment\n\nblocksize 8192\nproc 1 2\n  5 R 0 0 8192\n");
  const Trace t = Trace::load(ss);
  ASSERT_EQ(t.processes.size(), 1u);
  EXPECT_EQ(t.processes[0].pid, ProcId{1});
  EXPECT_EQ(t.processes[0].node, NodeId{2});
  ASSERT_EQ(t.processes[0].records.size(), 1u);
  EXPECT_EQ(t.processes[0].records[0].think, SimTime::ns(5));
}

// --- strict text-format parsing: malformed lines are errors, never
// silently dropped or partially applied ---

void expect_rejected(const std::string& body) {
  std::stringstream ss(body);
  EXPECT_THROW(Trace::load(ss), std::invalid_argument) << body;
}

TEST(Trace, LoadRejectsTrailingGarbageAfterRecord) {
  expect_rejected("proc 1 0\n  5 R 0 0 8192 extra\n");
  expect_rejected("proc 1 0\n  5 R 0 0 8192 9\n");
}

TEST(Trace, LoadRejectsPartialFinalRecord) {
  expect_rejected("proc 1 0\n  5 R 0 0\n");      // missing length
  expect_rejected("proc 1 0\n  5 R\n");          // op only
  expect_rejected("proc 1 0\n  5\n");            // think only
}

TEST(Trace, LoadRejectsMalformedDirectives) {
  expect_rejected("blocksize\n");                // missing value
  expect_rejected("blocksize 0\n");              // zero block size
  expect_rejected("blocksize 8192 extra\n");
  expect_rejected("file 0\n");                   // missing size
  expect_rejected("file 0 100 extra\n");
  expect_rejected("proc 1\n");                   // missing node
  expect_rejected("proc 1 0 extra\n");
  expect_rejected("serialize\n");
  expect_rejected("frobnicate 1\n");             // unknown directive
}

TEST(Trace, LoadRejectsBadNumbersAndOps) {
  expect_rejected("proc 1 0\n  -5 R 0 0 8192\n");    // negative think
  expect_rejected("proc 1 0\n  5 R 0 -1 8192\n");    // negative offset
  expect_rejected("proc 1 0\n  5 RR 0 0 8192\n");    // two-char op
  expect_rejected("proc 1 0\n  5 Z 0 0 8192\n");     // unknown op
  expect_rejected("proc 1 0\n  5 R 0 12x 8192\n");   // junk suffix on number
  expect_rejected("file 4294967296 100\n");          // file id > u32
  expect_rejected("blocksize 99999999999999999999999999\n");  // overflow
}

TEST(Trace, LoadAcceptsWhitespaceVariations) {
  // Strictness is about content, not layout: extra spaces and tabs between
  // the fixed-arity fields stay legal.
  std::stringstream ss("proc   1\t0\n\t  5   R  0   0  8192 \n");
  const Trace t = Trace::load(ss);
  ASSERT_EQ(t.processes.size(), 1u);
  ASSERT_EQ(t.processes[0].records.size(), 1u);
  EXPECT_EQ(t.processes[0].records[0].length, 8192u);
}

TEST(Trace, EmptyTraceTotals) {
  Trace t;
  EXPECT_EQ(t.total_io_ops(), 0u);
  EXPECT_EQ(t.node_span(), 0u);
}

}  // namespace
}  // namespace lap
