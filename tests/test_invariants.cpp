// Cross-cutting invariants, checked for every (algorithm, file-system)
// combination over a small workload: whatever the configuration, the
// simulation must conserve its accounting.
#include <gtest/gtest.h>

#include <tuple>

#include "driver/simulation.hpp"
#include "trace/charisma_gen.hpp"

namespace lap {
namespace {

const Trace& small_trace() {
  static const Trace trace = [] {
    CharismaParams p;
    p.scale = 0.15;
    return generate_charisma(p);
  }();
  return trace;
}

using Case = std::tuple<const char*, FsKind>;

class EveryConfig : public ::testing::TestWithParam<Case> {};

TEST_P(EveryConfig, AccountingInvariantsHold) {
  const auto& [algo, fs] = GetParam();
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.fs = fs;
  cfg.cache_per_node = 2_MiB;
  cfg.algorithm = AlgorithmSpec::parse(algo);
  cfg.warmup_fraction = 0.0;
  const RunResult r = run_simulation(small_trace(), cfg);

  // Every traced I/O op completed and was measured.
  EXPECT_EQ(r.reads + r.writes, small_trace().total_io_ops());

  // Ratios stay in range.
  EXPECT_GE(r.hit_ratio, 0.0);
  EXPECT_LE(r.hit_ratio, 1.0);
  EXPECT_GE(r.misprediction_ratio, 0.0);
  EXPECT_LE(r.misprediction_ratio, 1.0);
  EXPECT_GE(r.fallback_fraction, 0.0);
  EXPECT_LE(r.fallback_fraction, 1.0);

  // Disk accounting is internally consistent.
  EXPECT_EQ(r.disk_accesses, r.disk_reads + r.disk_writes);
  EXPECT_LE(r.disk_prefetch_reads, r.disk_reads);
  EXPECT_LE(r.prefetch_fallback, r.prefetch_issued);

  // NP is exactly "no prefetching".
  if (cfg.algorithm.kind == AlgorithmSpec::Kind::kNone) {
    EXPECT_EQ(r.prefetch_issued, 0u);
    EXPECT_EQ(r.disk_prefetch_reads, 0u);
  } else if (cfg.algorithm.kind != AlgorithmSpec::Kind::kWholeFile &&
             cfg.algorithm.kind != AlgorithmSpec::Kind::kVkPpm) {
    EXPECT_GT(r.prefetch_issued, 0u);
  }

  // Latency sanity: a block can't complete faster than its copy, nor should
  // the average exceed a few disk services under this light load.
  EXPECT_GT(r.avg_read_ms, 0.0);
  EXPECT_LT(r.avg_read_ms, 60.0);

  // Simulated time moved and the run terminated (events drained).
  EXPECT_GT(r.sim_duration, SimTime::zero());
  EXPECT_GT(r.events, 0u);
}

TEST_P(EveryConfig, RunsAreDeterministic) {
  const auto& [algo, fs] = GetParam();
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.fs = fs;
  cfg.cache_per_node = 1_MiB;
  cfg.algorithm = AlgorithmSpec::parse(algo);
  const RunResult a = run_simulation(small_trace(), cfg);
  const RunResult b = run_simulation(small_trace(), cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.disk_accesses, b.disk_accesses);
  EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
  EXPECT_DOUBLE_EQ(a.avg_read_ms, b.avg_read_ms);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByFs, EveryConfig,
    ::testing::Combine(
        ::testing::Values("NP", "OBA", "Ln_Agr_OBA", "IS_PPM:1",
                          "Ln_Agr_IS_PPM:1", "IS_PPM:3", "Ln_Agr_IS_PPM:3",
                          "Agr_OBA", "Agr_IS_PPM:1", "VK_PPM:1",
                          "Ln_Agr_VK_PPM:1", "WholeFile"),
        ::testing::Values(FsKind::kPafs, FsKind::kXfs)),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name) {
        if (c == ':') c = '_';
      }
      return name + "_" +
             (std::get<1>(param_info.param) == FsKind::kPafs ? "PAFS" : "xFS");
    });

}  // namespace
}  // namespace lap
