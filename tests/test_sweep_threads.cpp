// Thread-count independence: a sweep is a grid of single-threaded,
// deterministic simulations, so the worker-pool size must not leak into any
// result — every RunResult field (doubles compared exactly; wall_seconds
// excluded) must be bit-identical between threads=1 and threads=8.
#include <gtest/gtest.h>

#include "check/differential.hpp"
#include "driver/sweep.hpp"
#include "trace/charisma_gen.hpp"

namespace lap {
namespace {

TEST(SweepThreads, ResultsAreIndependentOfThreadCount) {
  CharismaParams p;
  p.scale = 0.15;
  const Trace trace = generate_charisma(p);

  RunConfig base;
  base.machine = MachineConfig::pm();
  SweepSpec spec;
  spec.cache_sizes = {1_MiB, 4_MiB};
  spec.algorithms = {AlgorithmSpec::parse("NP"),
                     AlgorithmSpec::parse("Ln_Agr_OBA"),
                     AlgorithmSpec::parse("Ln_Agr_IS_PPM:1")};

  const auto serial = run_sweep(trace, base, spec, /*threads=*/1);
  const auto parallel = run_sweep(trace, base, spec, /*threads=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto diffs =
        diff_run_results(serial[i], parallel[i],
                         serial[i].algorithm + "/" +
                             std::to_string(serial[i].cache_per_node));
    EXPECT_TRUE(diffs.empty()) << diffs.front();
  }
}

}  // namespace
}  // namespace lap
