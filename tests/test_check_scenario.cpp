#include "check/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lap {
namespace {

TEST(Scenario, GenerationIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 999ull}) {
    const Scenario a = generate_scenario(seed);
    const Scenario b = generate_scenario(seed);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  EXPECT_NE(generate_scenario(1), generate_scenario(2));
}

TEST(Scenario, GeneratedShapesAreReplayable) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Scenario s = generate_scenario(seed);
    ASSERT_GE(s.nodes, 1u);
    ASSERT_FALSE(s.trace.files.empty());
    ASSERT_FALSE(s.trace.processes.empty());
    // Every process must run on a node the machine actually has.
    for (const ProcessTrace& p : s.trace.processes) {
      EXPECT_LT(raw(p.node), s.nodes);
    }
    // parse() must accept the algorithm the generator picked.
    EXPECT_NO_THROW((void)AlgorithmSpec::parse(s.algorithm));
  }
}

TEST(Scenario, SaveLoadRoundTrips) {
  const Scenario s = generate_scenario(7);
  std::stringstream ss;
  save_scenario(ss, s);
  const Scenario loaded = load_scenario(ss);
  EXPECT_EQ(loaded, s);
}

TEST(Scenario, LoadRejectsJunk) {
  std::stringstream not_a_scenario("hello\nworld\n");
  EXPECT_THROW((void)load_scenario(not_a_scenario), std::invalid_argument);
  std::stringstream bad_key("# lap-scenario v1\nbogus 3\n# lap-trace v1\n");
  EXPECT_THROW((void)load_scenario(bad_key), std::invalid_argument);
}

TEST(Scenario, ConfigMatchesScenarioShape) {
  const Scenario s = generate_scenario(11);
  const RunConfig cfg = scenario_config(s, FsKind::kXfs);
  EXPECT_EQ(cfg.machine.nodes, s.nodes);
  EXPECT_EQ(cfg.machine.block_size, s.trace.block_size);
  EXPECT_EQ(cfg.cache_per_node,
            static_cast<Bytes>(s.cache_blocks_per_node) * s.trace.block_size);
  EXPECT_EQ(cfg.fs, FsKind::kXfs);
  // Conservation checks need every demand block classified.
  EXPECT_EQ(cfg.warmup_fraction, 0.0);
}

TEST(Scenario, PopulationCoversTheInterestingAxes) {
  // Across a modest seed range the generator must exercise deletes,
  // serialized replay, multi-node machines and the linear algorithms —
  // otherwise the fuzzer silently stops covering the paper's machinery.
  bool saw_delete = false, saw_serialized = false, saw_multi_node = false,
       saw_linear = false;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario s = generate_scenario(seed);
    saw_delete = saw_delete || s.has_deletes();
    saw_serialized = saw_serialized || s.trace.serialize_per_node;
    saw_multi_node = saw_multi_node || s.nodes > 1;
    saw_linear = saw_linear || AlgorithmSpec::parse(s.algorithm).linear();
  }
  EXPECT_TRUE(saw_delete);
  EXPECT_TRUE(saw_serialized);
  EXPECT_TRUE(saw_multi_node);
  EXPECT_TRUE(saw_linear);
}

}  // namespace
}  // namespace lap
