// Unit tests for the epoch-barrier scheduler: the canonical event order
// (timestamp, target phase, origin domain, per-domain sequence), empty-epoch
// fast-forwarding, the lookahead derivation, and shutdown with cross-shard
// messages still in flight.  Everything here drives the Engine directly —
// no file system, no disks — so a failure points at the scheduler itself,
// not at a model component riding on it.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "driver/machine_config.hpp"
#include "driver/simulation.hpp"
#include "util/units.hpp"

namespace lap {
namespace {

// One model domain (0) plus `service` service domains.  shards == 1 keeps
// every domain on shard 0 (the sequential fast path); otherwise shard 0 is
// the model shard and service domains round-robin over the rest — the same
// grouping rule build_domain_map uses for disks.
DomainMap make_map(std::uint16_t shards, std::uint16_t service) {
  DomainMap map;
  map.shards = shards;
  for (std::uint16_t d = 0; d < service; ++d) {
    map.shard_of.push_back(
        shards == 1 ? 0 : static_cast<std::uint16_t>(1 + d % (shards - 1)));
    map.phase_of.push_back(DomainPhase::kService);
  }
  return map;
}

constexpr SimTime kLook = SimTime::us(1);

// --- Canonical order at a timestamp tie -----------------------------------

// Model-targeted events fire before service-targeted events at the same
// timestamp, regardless of posting order: the sequential engine must
// reproduce the parallel schedule, which runs the model phase first.
TEST(EpochScheduler, TieBreaksByTargetPhaseFirst) {
  Engine eng;
  eng.configure_domains(make_map(1, 2), kLook);
  std::vector<std::string> order;
  const SimTime t = SimTime::us(5);
  eng.post_at(DomainId{1}, t, [&] { order.push_back("svc1"); });
  eng.post_at(DomainId{0}, t, [&] { order.push_back("model-a"); });
  eng.post_at(DomainId{2}, t, [&] { order.push_back("svc2"); });
  eng.post_at(DomainId{0}, t, [&] { order.push_back("model-b"); });
  eng.run();
  const std::vector<std::string> want = {"model-a", "model-b", "svc1",
                                         "svc2"};
  EXPECT_EQ(order, want);
}

// Within a phase, ties break by origin domain, not by when the event was
// pushed into the heap: domain 2's event is scheduled *before* domain 1's,
// yet domain 1 fires first at the shared timestamp.
TEST(EpochScheduler, TieBreaksByOriginDomainThenSequence) {
  Engine eng;
  eng.configure_domains(make_map(1, 2), kLook);
  std::vector<std::string> order;
  const SimTime t1 = SimTime::us(10);
  // Stage: at t0, each service domain schedules its own t1 event — so the
  // t1 events carry origin 1 and origin 2.  Domain 2 stages first.
  eng.post_at(DomainId{2}, SimTime::us(1), [&, t1] {
    eng.schedule_at(t1, [&] { order.push_back("origin2"); });
  });
  eng.post_at(DomainId{1}, SimTime::us(2), [&, t1] {
    eng.schedule_at(t1, [&] { order.push_back("origin1-a"); });
    eng.schedule_at(t1, [&] { order.push_back("origin1-b"); });
  });
  eng.run();
  // origin 1 < origin 2; within origin 1, sequence (scheduling order).
  const std::vector<std::string> want = {"origin1-a", "origin1-b",
                                         "origin2"};
  EXPECT_EQ(order, want);
}

// --- Sequential / parallel equivalence ------------------------------------

// A ping-pong program between the model domain and two service domains,
// obeying the lookahead contract the disks obey: model → service hand-offs
// may be same-time, service → model replies travel at now + lookahead.
// Per-domain logs (race-free: one worker touches a domain at a time) must
// be identical for every shard and worker count.
struct PingPong {
  Engine eng;
  std::vector<std::vector<std::int64_t>> log;  // per domain: event times

  explicit PingPong(std::uint16_t shards, int rounds) {
    eng.configure_domains(make_map(shards, 2), kLook);
    log.resize(3);
    for (DomainId d : {DomainId{1}, DomainId{2}}) {
      bounce(d, SimTime::us(d), rounds);
    }
  }

  void bounce(DomainId d, SimTime at, int left) {
    eng.post_at(d, at, [this, d, at, left] {
      log[d].push_back(at.nanos());
      const SimTime reply = at + eng.lookahead();
      eng.post_at(DomainId{0}, reply, [this, d, reply, left] {
        log[0].push_back(reply.nanos());
        if (left > 0) bounce(d, reply, left - 1);  // same-time hand-off
      });
    });
  }
};

TEST(EpochScheduler, ParallelMatchesSequentialForAnyWorkerCount) {
  PingPong seq(1, 64);
  const std::uint64_t executed = seq.eng.run();
  for (const std::uint16_t shards : {std::uint16_t{2}, std::uint16_t{3}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      PingPong par(shards, 64);
      EXPECT_EQ(par.eng.run_parallel(threads), executed)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(par.log, seq.log)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

// --- Empty-epoch fast-forward ---------------------------------------------

// Epochs start at the globally earliest pending event, so a gap of a
// millisecond costs one barrier round — not gap/lookahead rounds.
TEST(EpochScheduler, EmptyEpochsAreFastForwarded) {
  Engine eng;
  eng.configure_domains(make_map(2, 1), kLook);
  constexpr int kClusters = 8;
  int fired = 0;
  for (int i = 0; i < kClusters; ++i) {
    eng.post_at(DomainId{1}, SimTime::ms(i), [&] { ++fired; });
  }
  eng.run_parallel(2);
  EXPECT_EQ(fired, kClusters);
  // Naive lookahead iteration would need (7 ms / 1 us) = 7000 epochs.
  EXPECT_LE(eng.epochs_executed(), static_cast<std::uint64_t>(kClusters));
  EXPECT_GE(eng.epochs_executed(), 1u);
}

// --- Lookahead derivation -------------------------------------------------

// The epoch width is the tightest latency either coupling path offers:
// network hops into the model partition, controller latency out of the
// disk partition.  PM's 2 us local port startup undercuts its 20 us disk
// controller; NOW's network is slower than its controller.
TEST(EpochScheduler, LookaheadIsMinimumCouplingLatency) {
  const MachineConfig pm = MachineConfig::pm();
  EXPECT_EQ(sharded_lookahead(pm), SimTime::us(2));
  EXPECT_EQ(sharded_lookahead(pm), pm.net.min_hop_latency());

  const MachineConfig now = MachineConfig::now();
  EXPECT_EQ(sharded_lookahead(now), SimTime::us(20));
  EXPECT_EQ(sharded_lookahead(now), now.disk.completion_latency);
}

// --- Shutdown with in-flight mail -----------------------------------------

// The final events of a run are cross-shard messages: the run may only
// terminate after every mailbox has drained.  A scheduler that checks heap
// emptiness without draining service-phase mail first would drop the last
// replies.
TEST(EpochScheduler, ShutdownWaitsForInFlightCrossShardMail) {
  Engine eng;
  eng.configure_domains(make_map(3, 2), kLook);
  int replies = 0;
  const SimTime t = SimTime::us(7);
  for (DomainId d : {DomainId{1}, DomainId{2}}) {
    eng.post_at(d, t, [&eng, &replies, t] {
      // The very last thing each service domain does is mail the model.
      eng.post_at(DomainId{0}, t + eng.lookahead(), [&replies] { ++replies; });
    });
  }
  eng.run_parallel(3);
  EXPECT_EQ(replies, 2);
  EXPECT_TRUE(eng.empty());
  EXPECT_EQ(eng.events_processed(), 4u);
}

// --- Model <-> model mail (node-granular partitions) ----------------------

// The directory domain (0, shard 0) plus `nodes` per-node model domains
// spread over the shards the way build_domain_map spreads simulated nodes:
// node domain d on shard (d - 1) % shards, everything in the model phase.
DomainMap node_map(std::uint16_t shards, std::uint16_t nodes) {
  DomainMap map;
  map.shards = shards;
  map.shard_of.push_back(0);
  map.phase_of.push_back(DomainPhase::kModel);
  for (std::uint16_t d = 0; d < nodes; ++d) {
    map.shard_of.push_back(
        shards == 1 ? 0 : static_cast<std::uint16_t>(d % shards));
    map.phase_of.push_back(DomainPhase::kModel);
  }
  return map;
}

// A model -> model message posted at exactly the epoch boundary (now +
// lookahead when this event opened the epoch) is the tightest send the
// conservative contract admits.  A chain of such sends between two node
// domains on different shards must replay the sequential schedule exactly.
struct NodeChain {
  Engine eng;
  std::vector<std::pair<int, std::int64_t>> log;

  explicit NodeChain(std::uint16_t shards, int rounds) {
    eng.configure_domains(node_map(shards, 2), kLook);
    // Ping-pong 1 <-> 2, every hop exactly one lookahead long.  The hop's
    // receiver is the first event of its epoch, so the next send lands
    // exactly on that epoch's boundary.
    hop(DomainId{1}, SimTime::us(3), rounds);
  }

  void hop(DomainId d, SimTime at, int left) {
    eng.post_at(d, at, [this, d, at, left] {
      log.emplace_back(d, at.nanos());
      if (left > 0) {
        hop(DomainId{static_cast<std::uint16_t>(3 - d)}, at + eng.lookahead(),
            left - 1);
      }
    });
  }
};

TEST(EpochScheduler, ModelMailAtExactEpochBoundary) {
  NodeChain seq(1, 32);
  const std::uint64_t executed = seq.eng.run();
  for (const std::uint16_t shards : {std::uint16_t{2}, std::uint16_t{3}}) {
    NodeChain par(shards, 32);
    EXPECT_EQ(par.eng.run_parallel(0), executed) << "shards=" << shards;
    EXPECT_EQ(par.log, seq.log) << "shards=" << shards;
  }
}

// A burst of cross-node forwards from one instant: the mailbox between the
// two shards must grow to hold the whole burst and deliver it in
// submission order on the other side.
TEST(EpochScheduler, MailboxAbsorbsBurstOfCrossNodeForwards) {
  constexpr int kBurst = 10'000;
  Engine eng;
  eng.configure_domains(node_map(2, 2), kLook);
  std::vector<int> arrivals;
  arrivals.reserve(kBurst);
  eng.post_at(DomainId{1}, SimTime::us(1), [&] {
    const SimTime at = eng.now() + eng.lookahead();
    for (int i = 0; i < kBurst; ++i) {
      eng.post_at(DomainId{2}, at, [&arrivals, i] { arrivals.push_back(i); });
    }
  });
  eng.run_parallel(2);
  ASSERT_EQ(arrivals.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(arrivals[i], i);
}

// Shutdown with model <-> model mail still in flight: the last acts of the
// run are node-to-node sends in both directions.  Model mail is exchanged
// *inside* the epoch (between the phases), so by the next plan the events
// sit in their target heaps — the run may not declare itself done before
// then.
TEST(EpochScheduler, ShutdownWaitsForInFlightModelToModelMail) {
  Engine eng;
  eng.configure_domains(node_map(2, 2), kLook);
  int delivered = 0;
  const SimTime t = SimTime::us(4);
  for (DomainId d : {DomainId{1}, DomainId{2}}) {
    eng.post_at(d, t, [&eng, &delivered, d, t] {
      eng.post_at(DomainId{static_cast<std::uint16_t>(3 - d)},
                  t + eng.lookahead(), [&delivered] { ++delivered; });
    });
  }
  eng.run_parallel(2);
  EXPECT_EQ(delivered, 2);
  EXPECT_TRUE(eng.empty());
  EXPECT_EQ(eng.events_processed(), 4u);
}

}  // namespace
}  // namespace lap
