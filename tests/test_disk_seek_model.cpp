// Tests of the optional distance-dependent seek model.
#include <gtest/gtest.h>

#include "disk/disk.hpp"
#include "disk/disk_array.hpp"
#include "sim/task.hpp"

namespace lap {
namespace {

DiskConfig distance_cfg() {
  DiskConfig cfg{8_KiB, Bandwidth::mb_per_s(10), SimTime::ms(10.5),
                 SimTime::ms(12.5)};
  cfg.distance_seeks = true;
  cfg.cylinders = 1000;
  return cfg;
}

TEST(DiskSeekModel, FlatModelIgnoresLba) {
  Engine eng;
  DiskConfig cfg = distance_cfg();
  cfg.distance_seeks = false;
  Disk d(eng, cfg);
  EXPECT_EQ(d.service_time(false, 0), d.service_time(false, 999));
  EXPECT_EQ(d.service_time(false, 0), d.read_service_time());
}

TEST(DiskSeekModel, NearSeeksAreCheaper) {
  Engine eng;
  Disk d(eng, distance_cfg());
  // Arm starts at 0: a request at lba 0 costs the minimum (0.4x avg).
  const SimTime near = d.service_time(false, 0);
  const SimTime far = d.service_time(false, 999);
  EXPECT_LT(near, far);
  // 0.4x and 1.6x of the average seek plus the transfer.
  const double transfer_us = 819.2;
  EXPECT_NEAR(near.micros() - transfer_us, 0.4 * 10500, 20);
  EXPECT_NEAR(far.micros() - transfer_us, 1.6 * 10500 * 0.999, 40);
}

TEST(DiskSeekModel, UniformTrafficAveragesNearTable1) {
  Engine eng;
  Disk d(eng, distance_cfg());
  // Uniformly random positions: mean |d| of two uniforms is 1/3, so the
  // mean seek is (0.4 + 0.4)x... measure it empirically instead.
  std::uint64_t lba = 1;
  for (int i = 0; i < 400; ++i) {
    (void)d.read_block(prio::kDemand, nullptr, (lba = (lba * 48271) % 1000));
  }
  eng.run();
  const double mean_us = d.stats().busy_time.micros() / 400.0;
  // 0.4 + 1.2 * E|d| = 0.4 + 0.4 = 0.8x avg seek, plus transfer.
  EXPECT_NEAR(mean_us, 0.8 * 10500 + 819.2, 400);
}

TEST(DiskSeekModel, SequentialRunsGetFastAfterTheFirstSeek) {
  Engine eng;
  Disk d(eng, distance_cfg());
  (void)d.read_block(prio::kDemand, nullptr, 500);
  eng.run();
  const SimTime before = d.stats().busy_time;
  (void)d.read_block(prio::kDemand, nullptr, 500);  // same track
  eng.run();
  const SimTime second = d.stats().busy_time - before;
  EXPECT_NEAR(second.micros(), 0.4 * 10500 + 819.2, 10);
}

TEST(DiskSeekModel, ArrayAssignsAdjacentLbasToFileRuns) {
  Engine eng;
  DiskArray arr(eng, distance_cfg(), 16);
  const BlockKey a{FileId{3}, 0};
  const BlockKey b{FileId{3}, 16};  // same spindle, next stripe row
  EXPECT_EQ(arr.disk_id_for(a), arr.disk_id_for(b));
  EXPECT_EQ(arr.lba_for(b), arr.lba_for(a) + 1);
}

TEST(DiskSeekModel, BoostStillWorksWithDistanceSeeks) {
  Engine eng;
  Disk d(eng, distance_cfg());
  (void)d.read_block(prio::kDemand, nullptr, 10);
  Disk::OpId id = 0;
  (void)d.read_block(prio::kPrefetch, &id, 20);
  d.boost(id, prio::kDemand);
  eng.run();
  EXPECT_EQ(d.stats().boosts, 1u);
}

}  // namespace
}  // namespace lap
