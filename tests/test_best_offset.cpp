// The Best-Offset learner and its stream: canonical offset-scoring round
// structure, tie selection, the bad-score disable, a golden mini-trace
// where learning the stride beats next-line prefetching, and the sharded
// differential leg for the BO baseline.
#include "core/best_offset.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "driver/simulation.hpp"
#include "trace/charisma_gen.hpp"

namespace lap {
namespace {

// Four candidates and a two-round budget keep each adoption a few calls
// away; score_max stays out of reach unless a test wants early adoption.
BestOffsetLearner::Params small() {
  BestOffsetLearner::Params p;
  p.max_offset = 4;
  p.rr_entries = 8;
  p.score_max = 12;
  p.round_max = 2;
  p.bad_score = 2;
  return p;
}

TEST(BestOffsetLearner, StartsInNextLineMode) {
  BestOffsetLearner bo;
  EXPECT_EQ(bo.offset(), 1u);
  EXPECT_EQ(bo.round(), 0u);
}

TEST(BestOffsetLearner, OneCandidateIsTestedPerAccessRoundRobin) {
  BestOffsetLearner bo(small());
  // A sequential stream tests candidates 1,2,3,4 in order, one per
  // access.  Every test in the first round probes block-d = 9, which was
  // never demanded, so all four miss; only after the wrap does d=1 get
  // re-tested and hit.  The point the test pins: scores move one
  // candidate per access, never more.
  bo.train(10);  // tests d=1 on 9: miss
  EXPECT_EQ(bo.score(1), 0u);
  bo.train(11);  // tests d=2 on 9: miss
  EXPECT_EQ(bo.score(2), 0u);
  bo.train(12);  // tests d=3 on 9: miss
  EXPECT_EQ(bo.score(3), 0u);
  bo.train(13);  // tests d=4 on 9: miss; candidate list wraps
  EXPECT_EQ(bo.score(4), 0u);
  EXPECT_EQ(bo.round(), 1u);
  bo.train(14);  // tests d=1 on 13: hit
  EXPECT_EQ(bo.score(1), 1u);
  EXPECT_EQ(bo.score(2), 0u);  // not tested this access
}

TEST(BestOffsetLearner, LearnsAStrideAcrossRounds) {
  BestOffsetLearner bo(small());
  // A stride-3 stream: only d=3 ever finds block-3 in the RR table
  // (strides 1, 2 and 4 are never demanded distances).
  std::uint32_t block = 30;
  for (int i = 0; i < 8; ++i) {  // 2 rounds of 4 candidates
    bo.train(block);
    block += 3;
  }
  EXPECT_EQ(bo.offset(), 3u);
  EXPECT_EQ(bo.round(), 0u);  // adoption resets the round state
  EXPECT_EQ(bo.score(3), 0u);
}

TEST(BestOffsetLearner, TiesBreakTowardTheSmallestOffset) {
  BestOffsetLearner bo(small());
  // A stride-2 stream makes every even distance plausible: d=2 and d=4
  // both score once per round.  The tie must resolve to 2, the least
  // speculative distance.
  std::uint32_t block = 50;
  for (int i = 0; i < 8; ++i) {
    bo.train(block);
    block += 2;
  }
  EXPECT_EQ(bo.offset(), 2u);
}

TEST(BestOffsetLearner, EarlyAdoptionAtScoreMax) {
  BestOffsetLearner::Params p = small();
  p.score_max = 2;
  p.round_max = 100;  // forced adoption far away: only score_max can fire
  BestOffsetLearner bo(p);
  std::uint32_t block = 20;
  // d=1 is tested on accesses 1, 5 and 9; the hits at 5 and 9 reach
  // score_max and adopt without waiting for the round budget.
  for (int i = 0; i < 9; ++i) {
    bo.train(block);
    block += 1;
  }
  EXPECT_EQ(bo.offset(), 1u);
  EXPECT_EQ(bo.round(), 0u);  // early adoption resets the round
  EXPECT_EQ(bo.score(1), 0u);
}

TEST(BestOffsetLearner, BadScoreDisablesThenEvidenceReenables) {
  BestOffsetLearner bo(small());
  // Far-apart random blocks: no candidate in 1..4 ever scores, so the
  // forced adoption lands below bad_score and turns prefetching off.
  for (const std::uint32_t b : {100u, 7u, 55u, 200u, 12u, 80u, 33u, 150u}) {
    bo.train(b);
  }
  EXPECT_EQ(bo.offset(), 0u);
  // A clean sequential phase earns the offset back.  The first adoption
  // cycle still scores too low (the RR table starts full of the random
  // phase), so it takes a second cycle of steady evidence.
  std::uint32_t block = 300;
  for (int i = 0; i < 16; ++i) {
    bo.train(block);
    block += 1;
  }
  EXPECT_EQ(bo.offset(), 1u);
}

TEST(BoStream, EmitsDegreeOffsetMultiplesClippedToTheFile) {
  BoStream s(/*trigger=*/10, /*offset=*/3, /*degree=*/4, /*file_blocks=*/18);
  std::vector<std::uint32_t> got;
  while (auto item = s.next()) got.push_back(item->block);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{13, 16}));  // 19, 22 clipped
  EXPECT_TRUE(s.exhausted());
}

TEST(BoStream, DisabledOffsetEmitsNothing) {
  BoStream s(/*trigger=*/10, /*offset=*/0, /*degree=*/4, /*file_blocks=*/100);
  EXPECT_TRUE(s.exhausted());
  EXPECT_FALSE(s.next().has_value());
}

// --- end-to-end ----------------------------------------------------------

RunConfig base_config(const std::string& algorithm, FsKind fs) {
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.fs = fs;
  cfg.cache_per_node = 8_MiB;
  cfg.algorithm = AlgorithmSpec::parse(algorithm);
  return cfg;
}

// The golden mini-trace: one reader walking a file at stride 3 with a
// few milliseconds of think time.  Next-line prediction (OBA, linear or
// not) keeps guessing block+1, which the reader never touches — zero
// used prefetches.  The Best-Offset learner spends its first adoption
// cycle (round_max * max_offset = 128 accesses) discovering the stride,
// then prefetches the true next block for the rest of the run.
TEST(BestOffsetSimulation, BeatsNextLineOnAStridedMiniTrace) {
  const Bytes bs = 4096;
  Trace t;
  t.block_size = bs;
  t.files.push_back(FileInfo{FileId{0}, static_cast<Bytes>(2048) * bs});
  ProcessTrace proc;
  proc.pid = ProcId{1};
  proc.node = NodeId{0};
  for (int i = 0; i < 640; ++i) {
    TraceRecord r;
    r.op = TraceOp::kRead;
    r.file = FileId{0};
    r.offset = static_cast<Bytes>(i) * 3 * bs;
    r.length = bs;
    r.think = SimTime::ns(3'000'000);
    proc.records.push_back(r);
  }
  t.processes.push_back(proc);
  const RunResult bo = run_simulation(t, base_config("BO:2", FsKind::kPafs));
  const RunResult next_line =
      run_simulation(t, base_config("OBA", FsKind::kPafs));
  const RunResult linear =
      run_simulation(t, base_config("Ln_Agr_OBA", FsKind::kPafs));
  EXPECT_GT(bo.prefetch_used, 0u);
  EXPECT_EQ(next_line.prefetch_used, 0u);  // +1 never matches stride 3
  EXPECT_LT(bo.avg_read_ms, next_line.avg_read_ms);
  EXPECT_LT(bo.avg_read_ms, linear.avg_read_ms);
}

TEST(BestOffsetSimulation, RunsEndToEndOnBothFileSystems) {
  CharismaParams p;
  p.scale = 0.2;
  const Trace trace = generate_charisma(p);
  for (const FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
    const RunResult r = run_simulation(trace, base_config("BO:2", fs));
    EXPECT_GT(r.reads, 0u);
    EXPECT_GT(r.prefetch_issued, 0u);
    EXPECT_EQ(r.algorithm, "BO:2");
  }
}

// Learner state is per (node, file) inside the owning PrefetchManager, so
// the sharded engine must reproduce sequential BO runs bit for bit.
TEST(BestOffsetSimulation, ShardedRunsAreBitExact) {
  CharismaParams p;
  p.scale = 0.2;
  const Trace trace = generate_charisma(p);
  for (const FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
    RunConfig cfg = base_config("BO:4", fs);
    const RunResult seq = run_simulation(trace, cfg);
    for (const int shards : {2, 5}) {
      cfg.shards = shards;
      const RunResult par = run_simulation(trace, cfg);
      EXPECT_TRUE(diff_run_results(par, seq, "BO:4").empty())
          << "fs=" << (fs == FsKind::kPafs ? "pafs" : "xfs")
          << " shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace lap
