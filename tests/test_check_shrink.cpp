#include "check/shrink.hpp"

#include <gtest/gtest.h>

#include "check/scenario.hpp"

namespace lap {
namespace {

// Counts the property evaluations the shrinker spends.
struct CountingPredicate {
  ScenarioPredicate inner;
  std::size_t* calls;

  bool operator()(const Scenario& s) const {
    ++*calls;
    return inner(s);
  }
};

bool touches_file_zero(const Scenario& s) {
  for (const ProcessTrace& p : s.trace.processes) {
    for (const TraceRecord& r : p.records) {
      if (r.op == TraceOp::kWrite && raw(r.file) == 0) return true;
    }
  }
  return false;
}

TEST(Shrink, ReducesToTheRecordsThePredicateNeeds) {
  // Among hundreds of generated records, "a write to file 0" should shrink
  // to a single-record scenario.
  Scenario s;
  for (std::uint64_t seed = 1;; ++seed) {
    s = generate_scenario(seed);
    if (touches_file_zero(s) && s.total_records() > 20) break;
  }
  const Scenario small = shrink_scenario(s, touches_file_zero);
  EXPECT_TRUE(touches_file_zero(small));
  EXPECT_EQ(small.total_records(), 1u);
  EXPECT_EQ(small.trace.processes.size(), 1u);
}

TEST(Shrink, DropsFilesTheTraceNoLongerReferences) {
  Scenario s = generate_scenario(3);
  ASSERT_TRUE(s.trace.files.size() > 1 || s.total_records() > 1);
  const Scenario small = shrink_scenario(s, touches_file_zero);
  // Only file 0 can still be referenced by the surviving write.
  EXPECT_EQ(small.trace.files.size(), 1u);
  EXPECT_EQ(raw(small.trace.files[0].id), 0u);
}

TEST(Shrink, RespectsTheEvaluationBudget) {
  const Scenario s = generate_scenario(5);
  std::size_t calls = 0;
  (void)shrink_scenario(s, CountingPredicate{touches_file_zero, &calls},
                        /*max_evaluations=*/10);
  EXPECT_LE(calls, 10u);
}

TEST(Shrink, NeverReturnsAPassingScenario) {
  // Whatever the budget, the result must still fail the predicate — the
  // shrinker only keeps removals the predicate survived.
  for (std::uint64_t seed : {2ull, 4ull, 9ull}) {
    const Scenario s = generate_scenario(seed);
    if (!touches_file_zero(s)) continue;
    for (std::size_t budget : {0u, 1u, 25u}) {
      EXPECT_TRUE(
          touches_file_zero(shrink_scenario(s, touches_file_zero, budget)));
    }
  }
}

}  // namespace
}  // namespace lap
