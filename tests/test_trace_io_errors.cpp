// Negative-path wall for the LAPT binary reader.
//
// Every malformed input — truncated, bit-flipped, or adversarially
// hand-assembled — must surface as a TraceIoError carrying the right
// TraceIoErrc, never a crash, hang, or silently wrong Trace.  These tests
// run under the asan/ubsan CI job, so "never crash" is checked with
// sanitizers watching.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "trace/io/binary_io.hpp"
#include "trace/io/format.hpp"

namespace lap {
namespace {

using namespace wire;

Trace sample() {
  Trace t;
  t.block_size = 8_KiB;
  t.files = {FileInfo{FileId{0}, 64_KiB}, FileInfo{FileId{7}, 32_KiB}};
  ProcessTrace p{ProcId{1}, NodeId{0}, {}};
  p.records = {
      TraceRecord{TraceOp::kRead, FileId{0}, 0, 16_KiB, SimTime::us(10)},
      TraceRecord{TraceOp::kWrite, FileId{7}, 0, 8_KiB, SimTime::zero()},
      TraceRecord{TraceOp::kRead, FileId{0}, 16_KiB, 16_KiB, SimTime::zero()},
  };
  t.processes.push_back(std::move(p));
  return t;
}

std::string image_of(const Trace& t) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_binary_trace(ss, t);
  return ss.str();
}

// Offsets into the sample image (see format.hpp's layout diagram).
constexpr std::size_t kVersionOff = 4;
constexpr std::size_t kFlagsOff = 6;
constexpr std::size_t kBlockSizeOff = 8;
constexpr std::size_t kTotalRecordsOff = 24;
constexpr std::size_t kTotalIoOpsOff = 32;
constexpr std::size_t kFileTableOff = kHeaderBytes;

std::size_t proc_entry_off(const Trace& t, std::size_t i) {
  return kHeaderBytes + t.files.size() * kFileEntryBytes + i * kProcEntryBytes;
}

std::size_t streams_off(const Trace& t) {
  return proc_entry_off(t, t.processes.size());
}

void patch_u64(std::string& image, std::size_t off, std::uint64_t v) {
  std::string tmp;
  put_u64(tmp, v);
  image.replace(off, tmp.size(), tmp);
}

void patch_u32(std::string& image, std::size_t off, std::uint32_t v) {
  std::string tmp;
  put_u32(tmp, v);
  image.replace(off, tmp.size(), tmp);
}

void patch_u16(std::string& image, std::size_t off, std::uint16_t v) {
  std::string tmp;
  put_u16(tmp, v);
  image.replace(off, tmp.size(), tmp);
}

/// Assert that loading `image` throws a TraceIoError with exactly `want`.
void expect_errc(const std::string& image, TraceIoErrc want,
                 const std::string& what) {
  std::stringstream in(image, std::ios::in | std::ios::binary);
  try {
    (void)load_binary_trace(in);
    FAIL() << what << ": load accepted a malformed image";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.code(), want) << what << ": " << e.what();
  }
  // catch of anything else falls through to gtest and fails the test,
  // which is exactly what "typed errors only" means.
}

TEST(TraceIoErrors, EmptyAndTruncatedHeader) {
  const std::string image = image_of(sample());
  expect_errc("", TraceIoErrc::kTruncated, "empty input");
  for (std::size_t len : {std::size_t{1}, std::size_t{4}, std::size_t{39}}) {
    expect_errc(image.substr(0, len), TraceIoErrc::kTruncated,
                "header cut to " + std::to_string(len));
  }
}

TEST(TraceIoErrors, BadMagic) {
  std::string image = image_of(sample());
  image[0] = 'X';
  expect_errc(image, TraceIoErrc::kBadMagic, "flipped magic");
  expect_errc(std::string(64, '\0'), TraceIoErrc::kBadMagic, "all zeros");
}

TEST(TraceIoErrors, UnsupportedVersion) {
  std::string image = image_of(sample());
  patch_u16(image, kVersionOff, 99);
  expect_errc(image, TraceIoErrc::kUnsupportedVersion, "version 99");
  patch_u16(image, kVersionOff, 0);
  expect_errc(image, TraceIoErrc::kUnsupportedVersion, "version 0");
}

TEST(TraceIoErrors, UnknownFlagBits) {
  std::string image = image_of(sample());
  patch_u16(image, kFlagsOff, 0x8000);
  expect_errc(image, TraceIoErrc::kHeaderCorrupt, "unknown flag");
}

TEST(TraceIoErrors, ZeroBlockSize) {
  std::string image = image_of(sample());
  patch_u64(image, kBlockSizeOff, 0);
  expect_errc(image, TraceIoErrc::kHeaderCorrupt, "block size 0");
}

TEST(TraceIoErrors, TruncatedTables) {
  const std::string image = image_of(sample());
  // Header intact, but the input ends inside the file table.
  expect_errc(image.substr(0, kHeaderBytes + 3), TraceIoErrc::kTruncated,
              "cut inside file table");
}

TEST(TraceIoErrors, TotalRecordCountOverflow) {
  std::string image = image_of(sample());
  // More records than the file could hold even at kMinRecordBytes each —
  // must be rejected before any allocation is sized from the claim.
  patch_u64(image, kTotalRecordsOff, ~0ULL);
  expect_errc(image, TraceIoErrc::kCountOverflow, "total_records ~0");
}

TEST(TraceIoErrors, StreamRecordCountOverflow) {
  const Trace t = sample();
  std::string image = image_of(t);
  const std::uint64_t stream_bytes = image.size() - streams_off(t);
  // record_count field of process 0 claims more records than its stream's
  // byte count can possibly encode.
  patch_u64(image, proc_entry_off(t, 0) + 8, stream_bytes + 1);
  expect_errc(image, TraceIoErrc::kCountOverflow, "per-stream overflow");
}

TEST(TraceIoErrors, TotalRecordsDisagreesWithProcessTable) {
  std::string image = image_of(sample());
  patch_u64(image, kTotalRecordsOff, 2);  // process table sums to 3
  expect_errc(image, TraceIoErrc::kHeaderCorrupt, "total_records 2 vs 3");
}

TEST(TraceIoErrors, NonContiguousStream) {
  const Trace t = sample();
  std::string image = image_of(t);
  patch_u64(image, proc_entry_off(t, 0) + 16,
            static_cast<std::uint64_t>(streams_off(t)) + 1);
  expect_errc(image, TraceIoErrc::kBadProcessTable, "shifted stream offset");
}

TEST(TraceIoErrors, StreamPastEndOfFile) {
  const std::string image = image_of(sample());
  // Dropping the final byte leaves the last stream's claimed extent
  // hanging past the end of input.
  expect_errc(image.substr(0, image.size() - 1), TraceIoErrc::kBadProcessTable,
              "stream extent out of bounds");
}

TEST(TraceIoErrors, TrailingGarbage) {
  std::string image = image_of(sample());
  image.push_back('\0');
  expect_errc(image, TraceIoErrc::kTrailingGarbage, "one byte appended");
  image.append("junk");
  expect_errc(image, TraceIoErrc::kTrailingGarbage, "five bytes appended");
}

TEST(TraceIoErrors, DuplicateFileId) {
  std::string image = image_of(sample());
  // Second file table entry renamed to collide with the first (id 0).
  patch_u32(image, kFileTableOff + kFileEntryBytes, 0);
  expect_errc(image, TraceIoErrc::kBadFileTable, "duplicate id 0");
}

TEST(TraceIoErrors, RecordReferencesUnknownFile) {
  std::string image = image_of(sample());
  // Rename file 7 to 9 in the table; the second record still encodes
  // file id 7, which no longer exists.
  patch_u32(image, kFileTableOff + kFileEntryBytes, 9);
  expect_errc(image, TraceIoErrc::kUnknownFile, "record -> missing file 7");
}

TEST(TraceIoErrors, BadOpByte) {
  const Trace t = sample();
  std::string image = image_of(t);
  image[streams_off(t)] = static_cast<char>(0xee);
  expect_errc(image, TraceIoErrc::kBadRecord, "op byte 0xee");
}

TEST(TraceIoErrors, TotalIoOpsDisagreesWithRecords) {
  std::string image = image_of(sample());
  patch_u64(image, kTotalIoOpsOff, 17);  // the records decode to 3
  expect_errc(image, TraceIoErrc::kHeaderCorrupt, "total_io_ops lie");
}

// --- adversarial hand-assembled images (shapes the writer never emits) ---

/// Minimal valid prologue: header + one file (id 0) + one process whose
/// stream is `stream` verbatim, claiming `records` records.
std::string assemble(const std::string& stream, std::uint64_t records,
                     std::uint64_t total_io_ops = 0) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u16(out, kVersion);
  put_u16(out, 0);
  put_u64(out, 8192);          // block_size
  put_u32(out, 1);             // file_count
  put_u32(out, 1);             // process_count
  put_u64(out, records);       // total_records
  put_u64(out, total_io_ops);  // total_io_ops
  put_u32(out, 0);             // file id 0
  put_u64(out, 1 << 20);       // file size
  const std::uint64_t stream_off =
      kHeaderBytes + kFileEntryBytes + kProcEntryBytes;
  put_u32(out, 1);              // pid
  put_u32(out, 0);              // node
  put_u64(out, records);        // record_count
  put_u64(out, stream_off);     // stream_offset
  put_u64(out, stream.size());  // stream_bytes
  out += stream;
  return out;
}

TEST(TraceIoErrors, VarintRunsOffStreamEnd) {
  // One record: op byte + a varint whose continuation bits never clear
  // before the stream ends.
  std::string stream;
  stream.push_back(0);  // kOpen
  stream.append(4, static_cast<char>(0x80));
  expect_errc(assemble(stream, 1), TraceIoErrc::kTruncated,
              "unterminated varint");
}

TEST(TraceIoErrors, OverlongVarint) {
  // An 11-byte varint cannot encode a u64; the spare record fields keep the
  // per-stream count check (>= kMinRecordBytes per record) satisfied.
  std::string stream;
  stream.push_back(0);  // kOpen
  stream.append(10, static_cast<char>(0x80));
  stream.push_back(0x01);
  stream.append(3, '\0');
  expect_errc(assemble(stream, 1), TraceIoErrc::kBadRecord, "11-byte varint");
}

TEST(TraceIoErrors, NegativeLengthDelta) {
  // svarint deltas: file 0, offset 0, length -1, think 0.
  std::string stream;
  stream.push_back(1);  // kRead
  put_svarint(stream, 0);
  put_svarint(stream, 0);
  put_svarint(stream, -1);
  put_svarint(stream, 0);
  expect_errc(assemble(stream, 1), TraceIoErrc::kBadRecord, "length -1");
}

TEST(TraceIoErrors, NegativeThinkDelta) {
  std::string stream;
  stream.push_back(1);  // kRead
  put_svarint(stream, 0);
  put_svarint(stream, 0);
  put_svarint(stream, 0);
  put_svarint(stream, -5);
  expect_errc(assemble(stream, 1), TraceIoErrc::kBadRecord, "think -5");
}

TEST(TraceIoErrors, FileIdDeltaOutOfU32Range) {
  std::string stream;
  stream.push_back(1);  // kRead
  put_svarint(stream, -3);  // file id -3
  put_svarint(stream, 0);
  put_svarint(stream, 0);
  put_svarint(stream, 0);
  expect_errc(assemble(stream, 1), TraceIoErrc::kBadRecord, "file id -3");
}

TEST(TraceIoErrors, StreamBytesLeftOverAfterLastRecord) {
  // A valid 5-byte record followed by a stray byte the record count does
  // not account for.
  std::string stream;
  stream.push_back(1);  // kRead
  put_svarint(stream, 0);
  put_svarint(stream, 0);
  put_svarint(stream, 0);
  put_svarint(stream, 0);
  stream.push_back('\0');
  expect_errc(assemble(stream, 1, /*total_io_ops=*/1), TraceIoErrc::kBadRecord,
              "stray stream byte");
}

TEST(TraceIoErrors, SourceConstructorValidatesEagerly) {
  // BinaryTraceSource itself (not just load_binary_trace) must reject a
  // corrupt layout at construction time, before any cursor is opened.
  std::string image = image_of(sample());
  image[0] = '?';
  try {
    BinaryTraceSource src(std::make_unique<std::stringstream>(
        image, std::ios::in | std::ios::binary));
    FAIL() << "constructor accepted bad magic";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.code(), TraceIoErrc::kBadMagic);
  }
}

TEST(TraceIoErrors, ErrorStringsNameTheCode) {
  // what() must lead with the human-readable code so CI logs are readable.
  const TraceIoError e(TraceIoErrc::kBadMagic, "detail");
  EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  for (TraceIoErrc c :
       {TraceIoErrc::kTruncated, TraceIoErrc::kBadMagic,
        TraceIoErrc::kUnsupportedVersion, TraceIoErrc::kHeaderCorrupt,
        TraceIoErrc::kCountOverflow, TraceIoErrc::kBadFileTable,
        TraceIoErrc::kBadProcessTable, TraceIoErrc::kUnknownFile,
        TraceIoErrc::kBadRecord, TraceIoErrc::kTrailingGarbage}) {
    EXPECT_FALSE(to_string(c).empty());
  }
}

}  // namespace
}  // namespace lap
