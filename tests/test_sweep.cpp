#include "driver/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "trace/charisma_gen.hpp"

namespace lap {
namespace {

Trace tiny_trace() {
  CharismaParams p;
  p.scale = 0.15;
  return generate_charisma(p);
}

TEST(Sweep, PaperCacheSizes) {
  const auto sizes = paper_cache_sizes();
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes.front(), 1_MiB);
  EXPECT_EQ(sizes.back(), 16_MiB);
}

TEST(Sweep, ResultsAreAlgorithmMajorCacheMinor) {
  const Trace trace = tiny_trace();
  RunConfig base;
  base.machine = MachineConfig::pm();
  SweepSpec spec;
  spec.cache_sizes = {1_MiB, 4_MiB};
  spec.algorithms = {AlgorithmSpec::parse("NP"),
                     AlgorithmSpec::parse("Ln_Agr_OBA")};
  const auto results = run_sweep(trace, base, spec, /*threads=*/2);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].algorithm, "NP");
  EXPECT_EQ(results[0].cache_per_node, 1_MiB);
  EXPECT_EQ(results[1].algorithm, "NP");
  EXPECT_EQ(results[1].cache_per_node, 4_MiB);
  EXPECT_EQ(results[2].algorithm, "Ln_Agr_OBA");
  EXPECT_EQ(results[3].cache_per_node, 4_MiB);
}

TEST(Sweep, MatchesSingleRuns) {
  const Trace trace = tiny_trace();
  RunConfig base;
  base.machine = MachineConfig::pm();
  SweepSpec spec;
  spec.cache_sizes = {2_MiB};
  spec.algorithms = {AlgorithmSpec::parse("IS_PPM:1")};
  const auto results = run_sweep(trace, base, spec, 2);
  RunConfig single = base;
  single.algorithm = spec.algorithms[0];
  single.cache_per_node = 2_MiB;
  const RunResult direct = run_simulation(trace, single);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].avg_read_ms, direct.avg_read_ms);
  EXPECT_EQ(results[0].events, direct.events);
}

TEST(Sweep, ProgressCallbackSeesEveryRun) {
  const Trace trace = tiny_trace();
  RunConfig base;
  base.machine = MachineConfig::pm();
  SweepSpec spec;
  spec.cache_sizes = {1_MiB, 2_MiB};
  spec.algorithms = {AlgorithmSpec::parse("NP")};
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> max_total{0};
  (void)run_sweep(trace, base, spec, 2,
                  [&](std::size_t /*done*/, std::size_t total) {
                    ++calls;
                    max_total = total;
                  });
  EXPECT_EQ(calls.load(), 2u);
  EXPECT_EQ(max_total.load(), 2u);
}

TEST(Sweep, EmptySpecIsRejected) {
  const Trace trace = tiny_trace();
  RunConfig base;
  SweepSpec spec;  // empty
  EXPECT_DEATH((void)run_sweep(trace, base, spec), "Precondition");
}

}  // namespace
}  // namespace lap
