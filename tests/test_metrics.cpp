#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace lap {
namespace {

TEST(Metrics, WarmupGatesRecording) {
  Metrics m;
  m.set_warmup_ops(2);
  m.on_io_issued(SimTime::ms(1));
  m.on_read_done(SimTime::ms(100));  // still warming: dropped
  EXPECT_FALSE(m.measuring());
  m.on_io_issued(SimTime::ms(2));
  m.on_io_issued(SimTime::ms(3));  // third op crosses the boundary
  EXPECT_TRUE(m.measuring());
  EXPECT_EQ(m.measure_start(), SimTime::ms(3));
  m.on_read_done(SimTime::ms(10));
  EXPECT_EQ(m.reads(), 1u);
  EXPECT_DOUBLE_EQ(m.avg_read_ms(), 10.0);
}

TEST(Metrics, ZeroWarmupMeasuresFromTheFirstOp) {
  Metrics m;
  m.on_io_issued(SimTime::zero());
  EXPECT_TRUE(m.measuring());
}

TEST(Metrics, HitRatio) {
  Metrics m;
  m.on_io_issued(SimTime::zero());
  m.on_hit_local();
  m.on_hit_remote();
  m.on_hit_inflight();
  m.on_miss();
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.75);
  EXPECT_EQ(m.hits_local(), 1u);
  EXPECT_EQ(m.hits_remote(), 1u);
  EXPECT_EQ(m.hits_inflight(), 1u);
  EXPECT_EQ(m.misses(), 1u);
}

TEST(Metrics, HitRatioWithNoTraffic) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.0);
}

TEST(Metrics, WritesPerBlock) {
  Metrics m;
  m.on_io_issued(SimTime::zero());
  const BlockKey a{FileId{1}, 0};
  const BlockKey b{FileId{1}, 1};
  m.on_disk_write(a);
  m.on_disk_write(a);
  m.on_disk_write(a);
  m.on_disk_write(b);
  EXPECT_EQ(m.disk_writes(), 4u);
  EXPECT_EQ(m.distinct_blocks_written(), 2u);
  EXPECT_DOUBLE_EQ(m.writes_per_block(), 2.0);
}

TEST(Metrics, DiskCountersSplitPrefetch) {
  Metrics m;
  m.on_io_issued(SimTime::zero());
  m.on_disk_read(false);
  m.on_disk_read(true);
  EXPECT_EQ(m.disk_reads(), 2u);
  EXPECT_EQ(m.disk_prefetch_reads(), 1u);
  EXPECT_EQ(m.disk_accesses(), 2u);
}

TEST(Metrics, PrefetchEffectivenessIsWholeRun) {
  Metrics m;  // never measuring
  m.on_prefetch_arrived();
  m.on_prefetch_arrived();
  m.on_prefetch_first_use();
  m.on_prefetch_wasted();
  EXPECT_EQ(m.prefetch_arrived(), 2u);
  EXPECT_DOUBLE_EQ(m.misprediction_ratio(), 0.5);
}

TEST(Metrics, MispredictionWithoutPrefetchIsZero) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.misprediction_ratio(), 0.0);
}

}  // namespace
}  // namespace lap
