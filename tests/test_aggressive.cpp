#include "core/aggressive.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lap {
namespace {

std::vector<std::uint32_t> drain(PrefetchStream& s, std::size_t cap = 10000) {
  std::vector<std::uint32_t> out;
  while (out.size() < cap) {
    auto item = s.next();
    if (!item) break;
    out.push_back(item->block);
  }
  return out;
}

TEST(SequentialStream, PlainObaEmitsOneBlock) {
  SequentialStream s(5, 100, /*block_budget=*/1);
  EXPECT_EQ(drain(s), (std::vector<std::uint32_t>{5}));
  EXPECT_TRUE(s.exhausted());
}

TEST(SequentialStream, AggressiveRunsToEndOfFile) {
  SequentialStream s(96, 100, kUnboundedBudget);
  EXPECT_EQ(drain(s), (std::vector<std::uint32_t>{96, 97, 98, 99}));
  EXPECT_TRUE(s.exhausted());
}

TEST(SequentialStream, StartBeyondEofIsEmpty) {
  SequentialStream s(100, 100, kUnboundedBudget);
  EXPECT_TRUE(drain(s).empty());
  EXPECT_TRUE(s.exhausted());
}

TEST(SequentialStream, NegativeStartClampsToZero) {
  SequentialStream s(-3, 2, kUnboundedBudget);
  EXPECT_EQ(drain(s), (std::vector<std::uint32_t>{0, 1}));
}

namespace {
// Build a predictor whose graph knows a pure stride pattern.
IsPpmPredictor make_strided(IsPpmGraph& graph, std::int64_t stride,
                            std::uint32_t size, int requests,
                            std::int64_t start = 0) {
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  std::int64_t off = start;
  for (int i = 0; i < requests; ++i) {
    pred.on_request(off, size, ++t);
    off += stride;
  }
  return pred;
}
}  // namespace

TEST(GraphStream, AggressiveWalksPredictedRequests) {
  IsPpmGraph graph(1);
  auto pred = make_strided(graph, 4, 2, 5);  // requests at 0,4,8,12,16
  GraphStream s(pred.walker(), 18, /*file_blocks=*/30, kUnboundedBudget, 1);
  const auto blocks = drain(s);
  // Predicted requests: 20-21, 24-25, 28-29; the next (32) is out of file.
  EXPECT_EQ(blocks,
            (std::vector<std::uint32_t>{20, 21, 24, 25, 28, 29}));
  EXPECT_TRUE(s.exhausted());
}

TEST(GraphStream, PlainVariantEmitsOnePredictedRequest) {
  IsPpmGraph graph(1);
  auto pred = make_strided(graph, 4, 3, 5);
  GraphStream s(pred.walker(), 19, 100, /*request_budget=*/1, 1);
  EXPECT_EQ(drain(s), (std::vector<std::uint32_t>{20, 21, 22}));
}

TEST(GraphStream, PredictionClippedAtEof) {
  IsPpmGraph graph(1);
  auto pred = make_strided(graph, 4, 4, 5);  // last request 16..19
  GraphStream s(pred.walker(), 20, /*file_blocks=*/22, kUnboundedBudget, 1);
  // Predicted request 20..23 clips to 20..21; next starts out of file.
  EXPECT_EQ(drain(s), (std::vector<std::uint32_t>{20, 21}));
}

TEST(GraphStream, ColdGraphFallsBackToSingleBlock) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  pred.on_request(0, 2, 1);  // one request: no interval, no node
  GraphStream s(pred.walker(), 2, 100, kUnboundedBudget, /*fallback_budget=*/1);
  auto first = s.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->block, 2u);
  EXPECT_TRUE(first->fallback);
  EXPECT_FALSE(s.next().has_value());  // conservative: exactly one block
}

TEST(GraphStream, AggressiveFallbackStreamsSequentially) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  pred.on_request(0, 2, 1);
  GraphStream s(pred.walker(), 2, 6, kUnboundedBudget,
                /*fallback_budget=*/kUnboundedBudget);
  const auto blocks = drain(s);
  EXPECT_EQ(blocks, (std::vector<std::uint32_t>{2, 3, 4, 5}));
}

TEST(GraphStream, FallbackDisabled) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  pred.on_request(0, 2, 1);
  GraphStream s(pred.walker(), 2, 100, kUnboundedBudget, /*fallback_budget=*/0);
  EXPECT_TRUE(drain(s).empty());
}

TEST(GraphStream, InFallbackReportsState) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  pred.on_request(0, 2, 1);
  GraphStream s(pred.walker(), 2, 100, kUnboundedBudget, kUnboundedBudget);
  EXPECT_FALSE(s.in_fallback());  // not yet known
  (void)s.next();
  EXPECT_TRUE(s.in_fallback());
}

TEST(GraphStream, CyclicGraphIsBoundedByEmitCap) {
  // A pattern that jumps back and forth (interval +4 then -4) cycles
  // forever through in-file blocks; the emit cap must end the stream.
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  std::int64_t off = 0;
  for (int i = 0; i < 12; ++i) {
    pred.on_request(off, 2, ++t);
    off += (i % 2 == 0) ? 6 : -6;
  }
  GraphStream s(pred.walker(), 0, /*file_blocks=*/16, kUnboundedBudget, 1);
  const auto blocks = drain(s, 100000);
  EXPECT_LE(blocks.size(), 4u * 16 + 1024);
  EXPECT_TRUE(s.exhausted());
}

TEST(GraphStream, NoFallbackAfterRealPrediction) {
  // Once the walk produced predictions and then dead-ends, the stream stops
  // rather than switching to the fallback (the fallback only covers cold
  // starts).
  IsPpmGraph graph(1);
  IsPpmPredictor first(graph);
  first.on_request(0, 2, 1);
  first.on_request(4, 2, 2);
  first.on_request(8, 2, 3);  // self-loop (4,2) established
  // A second stream whose context ends on a node with one known hop.
  GraphStream s(first.walker(), 10, 100, /*request_budget=*/3, 1);
  // Three predicted (stride 4, size 2) requests: no fallback blocks.
  const auto blocks = drain(s);
  EXPECT_EQ(blocks, (std::vector<std::uint32_t>{12, 13, 16, 17, 20, 21}));
  EXPECT_TRUE(s.exhausted());
}

}  // namespace
}  // namespace lap
