#include "fs/xfs/xfs.hpp"

#include <gtest/gtest.h>

#include "driver/machine_config.hpp"
#include "sim/task.hpp"

namespace lap {
namespace {

struct XfsFixture {
  Engine eng;
  MachineConfig machine = MachineConfig::now();
  Network net{eng, machine.net, machine.nodes};
  DiskArray disks{eng, machine.disk, machine.disks};
  FileModel files{machine.block_size};
  MetricsSet metrics{MetricsSet::Mode::kPerNode, MachineConfig::now().nodes};
  std::vector<StopFlag> flags;
  std::unique_ptr<Xfs> fs;

  explicit XfsFixture(const std::string& algo = "NP",
                      std::size_t cache_blocks_per_node = 512) {
    // Canonical single-shard domain layout: controller/directory, one
    // model domain per node, one service domain per disk.
    const std::uint32_t domains = 1 + machine.nodes + machine.disks;
    DomainMap map;
    map.shards = 1;
    map.shard_of.assign(domains, 0);
    map.phase_of.assign(domains, DomainPhase::kModel);
    for (std::uint32_t i = 0; i < machine.disks; ++i) {
      map.phase_of[disk_domain(machine.nodes, i)] = DomainPhase::kService;
    }
    eng.configure_domains(std::move(map), SimTime::zero());
    disks.set_domains(disk_domain(machine.nodes, 0));
    net.set_domains(domains);
    flags.resize(domains);
    XfsConfig cfg;
    cfg.cache_blocks_per_node = cache_blocks_per_node;
    cfg.algorithm = AlgorithmSpec::parse(algo);
    fs = std::make_unique<Xfs>(eng, net, disks, files, metrics, cfg,
                               machine.nodes, flags.data());
  }

  // The fs copies per-node metadata replicas at construction, so files
  // registered afterwards must be pushed out to them.
  void add_file(FileId id, Bytes size) {
    files.add_file(id, size);
    fs->reseed_replicas();
  }

  SimTime do_read(ProcId pid, NodeId node, FileId file, Bytes off, Bytes len) {
    Metrics& m = metrics.node(raw(node));
    m.on_io_issued(eng.now());
    const SimTime t0 = eng.now();
    (void)fs->read(pid, node, file, off, len);
    eng.run();
    const SimTime lat = eng.now() - t0;
    m.on_read_done(lat);
    return lat;
  }

  void do_write(ProcId pid, NodeId node, FileId file, Bytes off, Bytes len) {
    metrics.node(raw(node)).on_io_issued(eng.now());
    (void)fs->write(pid, node, file, off, len);
    eng.run();
  }
};

constexpr FileId kF{1};

TEST(Xfs, ColdReadMissesToDisk) {
  XfsFixture f;
  f.add_file(kF, 80_KiB);
  const SimTime lat = f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  EXPECT_EQ(f.metrics.misses(), 1u);
  EXPECT_GT(lat, SimTime::ms(11));
}

TEST(Xfs, LocalReReadHitsWithoutManager) {
  XfsFixture f;
  f.add_file(kF, 80_KiB);
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  const auto msgs_before = f.net.stats().messages;
  const SimTime lat = f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  EXPECT_EQ(f.metrics.hits_local(), 1u);
  EXPECT_EQ(f.net.stats().messages, msgs_before);  // purely local
  EXPECT_LT(lat, SimTime::ms(1));
}

TEST(Xfs, RemoteClientHitCreatesAReplica) {
  XfsFixture f;
  f.add_file(kF, 80_KiB);
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  const SimTime lat = f.do_read(ProcId{2}, NodeId{7}, kF, 0, 8_KiB);
  EXPECT_EQ(f.metrics.hits_remote(), 1u);
  EXPECT_LT(lat, SimTime::ms(2));
  EXPECT_EQ(f.metrics.disk_reads(), 1u);  // no second disk read
  // Replication: both nodes now hold the block.
  EXPECT_TRUE(f.fs->pool(NodeId{0}).contains(BlockKey{kF, 0}));
  EXPECT_TRUE(f.fs->pool(NodeId{7}).contains(BlockKey{kF, 0}));
}

TEST(Xfs, WriterInvalidatesOtherReplicas) {
  XfsFixture f;
  f.add_file(kF, 80_KiB);
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  (void)f.do_read(ProcId{2}, NodeId{7}, kF, 0, 8_KiB);  // replica at 7
  f.do_write(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  EXPECT_TRUE(f.fs->pool(NodeId{0}).contains(BlockKey{kF, 0}));
  EXPECT_FALSE(f.fs->pool(NodeId{7}).contains(BlockKey{kF, 0}));
}

TEST(Xfs, NChanceForwardsTheLastCopy) {
  // Node 0's cache is tiny: filling it evicts singlets, which must be
  // forwarded to random peers instead of dropped.
  XfsFixture f("NP", /*cache_blocks_per_node=*/4);
  f.add_file(kF, 800_KiB);  // 100 blocks
  for (Bytes off = 0; off < 10 * 8_KiB; off += 8_KiB) {
    (void)f.do_read(ProcId{1}, NodeId{0}, kF, off, 8_KiB);
  }
  // 10 blocks were read; node 0 holds at most 4; the rest live on (or died
  // at) peers.  Count copies across all nodes.
  std::size_t copies = 0;
  for (std::uint32_t n = 0; n < f.machine.nodes; ++n) {
    f.fs->pool(NodeId{n}).for_each([&](const CacheEntry&) { ++copies; });
  }
  EXPECT_GT(copies, 4u);  // forwarding preserved some singlets
}

TEST(Xfs, ForwardedSingletServesRemoteHits) {
  XfsFixture f("NP", 4);
  f.add_file(kF, 800_KiB);
  for (Bytes off = 0; off < 10 * 8_KiB; off += 8_KiB) {
    (void)f.do_read(ProcId{1}, NodeId{0}, kF, off, 8_KiB);
  }
  const auto disk_before = f.metrics.disk_reads();
  // Re-read everything: some blocks come back from peers, not disk.
  for (Bytes off = 0; off < 10 * 8_KiB; off += 8_KiB) {
    (void)f.do_read(ProcId{1}, NodeId{0}, kF, off, 8_KiB);
  }
  EXPECT_LT(f.metrics.disk_reads() - disk_before, 10u);
  EXPECT_GT(f.metrics.hits_remote(), 0u);
}

TEST(Xfs, PerNodePrefetchersDuplicateWork) {
  // Two nodes read the same file; each node's prefetcher works locally, so
  // prefetch issues are duplicated (the paper's "not really linear" xFS).
  XfsFixture f("Ln_Agr_OBA", 512);
  f.add_file(kF, 160_KiB);  // 20 blocks
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  (void)f.do_read(ProcId{2}, NodeId{7}, kF, 0, 8_KiB);
  const auto counters = f.fs->prefetch_counters_total();
  EXPECT_GE(counters.issued, 2u * 19u - 2u);  // both nodes streamed the file
}

TEST(Xfs, PrefetchFetchesFromPeersWhenPossible) {
  XfsFixture f("Ln_Agr_OBA", 512);
  f.add_file(kF, 160_KiB);
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);  // node 0 has it all
  const auto disk_before = f.disks.total_stats().block_reads;
  (void)f.do_read(ProcId{2}, NodeId{7}, kF, 0, 8_KiB);  // node 7 prefetches
  // Node 7's prefetches were served by node 0's copies, not the disks.
  EXPECT_EQ(f.disks.total_stats().block_reads, disk_before);
  EXPECT_TRUE(f.fs->pool(NodeId{7}).contains(BlockKey{kF, 10}));
}

TEST(Xfs, DeleteScrubsAllNodesAndDirectory) {
  XfsFixture f;
  f.add_file(kF, 80_KiB);
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  (void)f.do_read(ProcId{2}, NodeId{7}, kF, 0, 8_KiB);
  (void)f.fs->remove(ProcId{1}, NodeId{0}, kF);
  f.eng.run();
  EXPECT_FALSE(f.fs->pool(NodeId{0}).contains(BlockKey{kF, 0}));
  EXPECT_FALSE(f.fs->pool(NodeId{7}).contains(BlockKey{kF, 0}));
  EXPECT_FALSE(f.files.exists(kF));
}

TEST(Xfs, SyncDaemonFlushesAllNodes) {
  // The daemon keeps the event queue non-empty, so drive the clock with
  // run_until rather than the run-to-completion helpers.
  XfsFixture f;
  f.add_file(kF, 80_KiB);
  f.fs->start_sync_daemon();
  (void)f.fs->write(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  (void)f.fs->write(ProcId{2}, NodeId{7}, kF, 8_KiB, 8_KiB);
  f.eng.run_until(SimTime::sec(3));
  EXPECT_EQ(f.metrics.disk_writes(), 2u);
  for (StopFlag& s : f.flags) s.stop = true;
  f.eng.run();
}

TEST(Xfs, DirectoryStaysConsistentUnderChurn) {
  // Tiny per-node caches force constant eviction, forwarding and
  // re-fetching; after every drained operation the block directory and the
  // node pools must agree exactly.
  XfsFixture f("Ln_Agr_IS_PPM:1", /*cache_blocks_per_node=*/6);
  f.add_file(kF, 400_KiB);  // 50 blocks
  f.add_file(FileId{2}, 240_KiB);
  for (int round = 0; round < 3; ++round) {
    for (Bytes off = 0; off < 400_KiB; off += 24_KiB) {
      (void)f.do_read(ProcId{1}, NodeId{raw(NodeId{0}) + round}, kF, off,
                      16_KiB);
      ASSERT_TRUE(f.fs->directory_consistent());
    }
    for (Bytes off = 0; off < 240_KiB; off += 16_KiB) {
      (void)f.do_read(ProcId{2}, NodeId{9}, FileId{2}, off, 8_KiB);
      ASSERT_TRUE(f.fs->directory_consistent());
    }
  }
}

TEST(Xfs, DirectoryConsistentAfterWritesAndDeletes) {
  XfsFixture f("Ln_Agr_OBA", 8);
  f.add_file(kF, 160_KiB);
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 16_KiB);
  (void)f.do_read(ProcId{2}, NodeId{7}, kF, 0, 16_KiB);
  f.do_write(ProcId{1}, NodeId{0}, kF, 0, 32_KiB);
  ASSERT_TRUE(f.fs->directory_consistent());
  (void)f.fs->remove(ProcId{1}, NodeId{0}, kF);
  f.eng.run();
  EXPECT_TRUE(f.fs->directory_consistent());
}

TEST(Xfs, ManagerPlacementIsStable) {
  XfsFixture f;
  EXPECT_EQ(f.fs->manager_node(kF), f.fs->manager_node(kF));
  EXPECT_LT(raw(f.fs->manager_node(kF)), f.machine.nodes);
}

}  // namespace
}  // namespace lap
