// Regression guard for the reproduction itself: scaled-down versions of
// the paper's headline comparisons must keep their qualitative shape.  If
// a change to the simulator or the workload generators breaks one of
// these, the full figures in EXPERIMENTS.md are stale.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "driver/simulation.hpp"
#include "trace/charisma_gen.hpp"
#include "trace/sprite_gen.hpp"

namespace lap {
namespace {

class CharismaShapes : public ::testing::Test {
 protected:
  static const Trace& trace() {
    static const Trace t = [] {
      CharismaParams p;
      p.scale = 0.4;
      return generate_charisma(p);
    }();
    return t;
  }

  static const RunResult& run(const std::string& algo, FsKind fs,
                              Bytes cache) {
    static std::map<std::string, RunResult> cache_map;
    const std::string key =
        algo + "/" + to_string(fs) + "/" + std::to_string(cache);
    auto it = cache_map.find(key);
    if (it == cache_map.end()) {
      RunConfig cfg;
      cfg.machine = MachineConfig::pm();
      cfg.fs = fs;
      cfg.cache_per_node = cache;
      cfg.algorithm = AlgorithmSpec::parse(algo);
      it = cache_map.emplace(key, run_simulation(trace(), cfg)).first;
    }
    return it->second;
  }
};

TEST_F(CharismaShapes, Figure4ThreeGroupsAt4MB) {
  const double np = run("NP", FsKind::kPafs, 4_MiB).avg_read_ms;
  const double oba = run("OBA", FsKind::kPafs, 4_MiB).avg_read_ms;
  const double isppm = run("IS_PPM:1", FsKind::kPafs, 4_MiB).avg_read_ms;
  const double ln = run("Ln_Agr_IS_PPM:1", FsKind::kPafs, 4_MiB).avg_read_ms;
  // Group 1: OBA is a small gain over NP.
  EXPECT_LT(oba, np * 1.02);
  EXPECT_GT(oba, np * 0.8);
  // Group 2: plain IS_PPM is a clear gain.
  EXPECT_LT(isppm, oba * 0.85);
  // Group 3: the linear aggressive algorithm is the clear winner (the
  // paper's headline: a further large step beyond group 2).
  EXPECT_LT(ln, isppm * 0.75);
  EXPECT_LT(ln, np * 0.55);
}

TEST_F(CharismaShapes, Figure4OrderBarelyMatters) {
  const double o1 = run("Ln_Agr_IS_PPM:1", FsKind::kPafs, 4_MiB).avg_read_ms;
  const double o3 = run("Ln_Agr_IS_PPM:3", FsKind::kPafs, 4_MiB).avg_read_ms;
  EXPECT_NEAR(o1, o3, 0.25 * o1);
}

TEST_F(CharismaShapes, Figure5AggressiveObaFloodsTinyXfsCaches) {
  const double np = run("NP", FsKind::kXfs, 1_MiB).avg_read_ms;
  const double agr_oba = run("Ln_Agr_OBA", FsKind::kXfs, 1_MiB).avg_read_ms;
  const double agr_is = run("Ln_Agr_IS_PPM:1", FsKind::kXfs, 1_MiB).avg_read_ms;
  // The paper's flooding result: per-node aggressive OBA hurts at 1 MB —
  // within ~13% of no prefetching at all (redundant arrivals settling
  // without re-inserting keeps the penalty just under 10%).
  EXPECT_GT(agr_oba, np * 0.87);
  // ...while Ln_Agr_IS_PPM is still the best algorithm there (the 1 MB
  // anomaly).
  EXPECT_LT(agr_is, np * 0.85);
  EXPECT_LT(agr_is, agr_oba * 0.8);
}

TEST_F(CharismaShapes, Figure9XfsAggressiveAlwaysCostsDiskAccesses) {
  for (Bytes cache : {1_MiB, 4_MiB}) {
    const auto np = run("NP", FsKind::kXfs, cache).disk_accesses;
    const auto agr = run("Ln_Agr_IS_PPM:1", FsKind::kXfs, cache).disk_accesses;
    EXPECT_GT(agr, np) << "at " << cache;
  }
}

TEST_F(CharismaShapes, Table2WritesPerBlockOrdering) {
  const double np = run("NP", FsKind::kPafs, 4_MiB).writes_per_block;
  const double oba = run("Ln_Agr_OBA", FsKind::kPafs, 4_MiB).writes_per_block;
  const double is = run("Ln_Agr_IS_PPM:1", FsKind::kPafs, 4_MiB).writes_per_block;
  // The robust part of the paper's Table 2 ordering at this reduced scale:
  // the smarter prefetcher never re-writes more than the dumber one, and
  // neither inflates write traffic over NP.  (The full NP > Ln_Agr_OBA >
  // Ln_Agr_IS_PPM ordering needs full-scale application spans; the bench
  // shows it — see EXPERIMENTS.md E10.  Whole-run disk accounting — see
  // Metrics — includes each run's warm-up flushes, which costs the
  // IS_PPM-vs-OBA comparison a couple of percent of slack.)
  EXPECT_LT(is, oba * 1.04);
  EXPECT_LT(is, np * 1.03);
  EXPECT_LT(oba, np * 1.05);
}

TEST_F(CharismaShapes, FallbackShareIsTiny) {
  // Section 2.2: "<1%" on large files; allow a few percent at this scale.
  const auto& r = run("Ln_Agr_IS_PPM:1", FsKind::kPafs, 4_MiB);
  EXPECT_LT(r.fallback_fraction, 0.06);
}

class SpriteShapes : public ::testing::Test {
 protected:
  static const Trace& trace() {
    static const Trace t = [] {
      SpriteParams p;
      p.scale = 0.4;
      return generate_sprite(p);
    }();
    return t;
  }

  static RunResult run(const std::string& algo, Bytes cache) {
    RunConfig cfg;
    cfg.machine = MachineConfig::now();
    cfg.fs = FsKind::kPafs;
    cfg.cache_per_node = cache;
    cfg.algorithm = AlgorithmSpec::parse(algo);
    return run_simulation(trace(), cfg);
  }
};

TEST_F(SpriteShapes, MispredictionGapSection52) {
  const RunResult oba = run("Ln_Agr_OBA", 4_MiB);
  const RunResult is = run("Ln_Agr_IS_PPM:1", 4_MiB);
  // The paper: 32% vs 15%.  Require the gap's direction and a meaningful
  // margin.
  EXPECT_GT(oba.misprediction_ratio, is.misprediction_ratio * 1.2);
  EXPECT_GT(oba.misprediction_ratio, 0.2);
  EXPECT_LT(is.misprediction_ratio, 0.35);
}

TEST_F(SpriteShapes, FallbackShareIsLargeOnSmallFiles) {
  // Section 2.2: "around 25%" — small files keep the graph cold.
  const RunResult r = run("Ln_Agr_IS_PPM:1", 4_MiB);
  EXPECT_GT(r.fallback_fraction, 0.15);
  EXPECT_LT(r.fallback_fraction, 0.55);
}

TEST_F(SpriteShapes, GainsAreSmallerThanCharisma) {
  const RunResult np = run("NP", 4_MiB);
  const RunResult is = run("Ln_Agr_IS_PPM:1", 4_MiB);
  const double speedup = np.avg_read_ms / is.avg_read_ms;
  EXPECT_GT(speedup, 1.1);  // prefetching still helps...
  EXPECT_LT(speedup, 2.5);  // ...but far less than CHARISMA's 2.5-3x
}

}  // namespace
}  // namespace lap
