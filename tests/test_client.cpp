#include "fs/common/client.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lap {
namespace {

// The runner launches each process in its node's model domain, so even
// stub-backed tests need the canonical controller + per-node layout.
void configure_node_domains(Engine& eng, std::uint32_t nodes = 1) {
  DomainMap map;
  map.shards = 1;
  map.shard_of.assign(1 + nodes, 0);
  map.phase_of.assign(1 + nodes, DomainPhase::kModel);
  eng.configure_domains(std::move(map), SimTime::zero());
}

// A FileSystem stub that records call order and completes each operation
// after a fixed latency.
class StubFs final : public FileSystem {
 public:
  explicit StubFs(Engine& eng, SimTime latency) : eng_(&eng), latency_(latency) {}

  struct Call {
    char op;
    std::uint32_t pid;
    SimTime at;
  };

  SimFuture<Done> open(ProcId pid, NodeId, FileId) override { return op('O', pid); }
  SimFuture<Done> close(ProcId pid, NodeId, FileId) override { return op('C', pid); }
  SimFuture<Done> read(ProcId pid, NodeId, FileId, Bytes, Bytes) override {
    return op('R', pid);
  }
  SimFuture<Done> write(ProcId pid, NodeId, FileId, Bytes, Bytes) override {
    return op('W', pid);
  }
  SimFuture<Done> remove(ProcId pid, NodeId, FileId) override {
    return op('D', pid);
  }
  void finalize() override {}
  [[nodiscard]] PrefetchCounters prefetch_counters_total() const override {
    return {};
  }

  std::vector<Call> calls;

 private:
  SimFuture<Done> op(char kind, ProcId pid) {
    calls.push_back(Call{kind, raw(pid), eng_->now()});
    SimPromise<Done> done(*eng_);
    eng_->schedule_in(latency_, [done] { done.set_value(Done{}); });
    return done.future();
  }

  Engine* eng_;
  SimTime latency_;
};

Trace two_process_trace(bool serialize) {
  Trace t;
  t.serialize_per_node = serialize;
  t.files = {FileInfo{FileId{0}, 64_KiB}};
  for (std::uint32_t pid = 0; pid < 2; ++pid) {
    ProcessTrace p{ProcId{pid}, NodeId{0}, {}};
    p.records = {
        TraceRecord{TraceOp::kOpen, FileId{0}, 0, 0, SimTime::ms(1)},
        TraceRecord{TraceOp::kRead, FileId{0}, 0, 8_KiB, SimTime::ms(2)},
        TraceRecord{TraceOp::kClose, FileId{0}, 0, 0, SimTime::zero()},
    };
    t.processes.push_back(std::move(p));
  }
  return t;
}

TEST(WorkloadRunner, ClosedLoopTiming) {
  Engine eng;
  configure_node_domains(eng);
  StubFs fs(eng, SimTime::ms(10));
  MetricsSet metrics{MetricsSet::Mode::kShared, 1};
  Trace t = two_process_trace(false);
  t.processes.resize(1);
  WorkloadRunner runner(eng, fs, metrics, t);
  bool done = false;
  runner.start([&] { done = true; });
  eng.run();
  ASSERT_TRUE(done);
  ASSERT_EQ(fs.calls.size(), 3u);
  EXPECT_EQ(fs.calls[0].at, SimTime::ms(1));   // after the first think
  EXPECT_EQ(fs.calls[1].at, SimTime::ms(13));  // open done (11) + think 2
  EXPECT_EQ(fs.calls[2].at, SimTime::ms(23));  // read done, no think
}

TEST(WorkloadRunner, ConcurrentProcessesOverlap) {
  Engine eng;
  configure_node_domains(eng);
  StubFs fs(eng, SimTime::ms(10));
  MetricsSet metrics{MetricsSet::Mode::kShared, 1};
  const Trace t = two_process_trace(/*serialize=*/false);
  WorkloadRunner runner(eng, fs, metrics, t);
  runner.start({});
  eng.run();
  // Both processes open at t = 1 ms: they run in parallel.
  ASSERT_GE(fs.calls.size(), 2u);
  EXPECT_EQ(fs.calls[0].at, SimTime::ms(1));
  EXPECT_EQ(fs.calls[1].at, SimTime::ms(1));
}

TEST(WorkloadRunner, SerializedNodeRunsSessionsBackToBack) {
  Engine eng;
  configure_node_domains(eng);
  StubFs fs(eng, SimTime::ms(10));
  MetricsSet metrics{MetricsSet::Mode::kShared, 1};
  const Trace t = two_process_trace(/*serialize=*/true);
  WorkloadRunner runner(eng, fs, metrics, t);
  runner.start({});
  eng.run();
  // Process 1 starts only after process 0 finished (t = 23 + 10 close
  // latency = 33 ms), plus its own 1 ms think.
  ASSERT_EQ(fs.calls.size(), 6u);
  EXPECT_EQ(fs.calls[3].op, 'O');
  EXPECT_EQ(fs.calls[3].pid, 1u);
  EXPECT_EQ(fs.calls[3].at, SimTime::ms(34));
}

TEST(WorkloadRunner, RecordsReadAndWriteLatencies) {
  Engine eng;
  configure_node_domains(eng);
  StubFs fs(eng, SimTime::ms(10));
  MetricsSet metrics{MetricsSet::Mode::kShared, 1};
  Trace t = two_process_trace(false);
  t.processes.resize(1);
  t.processes[0].records.push_back(
      TraceRecord{TraceOp::kWrite, FileId{0}, 0, 8_KiB, SimTime::zero()});
  WorkloadRunner runner(eng, fs, metrics, t);
  runner.start({});
  eng.run();
  EXPECT_EQ(metrics.reads(), 1u);
  EXPECT_EQ(metrics.writes(), 1u);
  EXPECT_DOUBLE_EQ(metrics.avg_read_ms(), 10.0);
}

TEST(WorkloadRunner, EmptyTraceCompletesImmediately) {
  Engine eng;
  configure_node_domains(eng);
  StubFs fs(eng, SimTime::ms(1));
  MetricsSet metrics{MetricsSet::Mode::kShared, 1};
  Trace t;
  WorkloadRunner runner(eng, fs, metrics, t);
  bool done = false;
  runner.start([&] { done = true; });
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace lap
