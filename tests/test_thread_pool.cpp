#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace lap {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.submit([&count] { ++count; }));
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace lap
