#include "sim/future.hpp"

#include <gtest/gtest.h>

#include "sim/task.hpp"

namespace lap {
namespace {

TEST(SimFuture, AwaitAfterSetResumesImmediately) {
  Engine eng;
  SimPromise<int> p(eng);
  p.set_value(42);
  int got = 0;
  [](SimPromise<int> pr, int& out) -> SimTask {
    out = co_await pr.future();
  }(p, got);
  EXPECT_EQ(got, 42);  // ready future: no suspension at all
}

TEST(SimFuture, AwaitBeforeSetSuspends) {
  Engine eng;
  SimPromise<int> p(eng);
  int got = 0;
  [](SimPromise<int> pr, int& out) -> SimTask {
    out = co_await pr.future();
  }(p, got);
  EXPECT_EQ(got, 0);
  eng.schedule_in(SimTime::us(5), [p] { p.set_value(7); });
  eng.run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(eng.now(), SimTime::us(5));
}

TEST(SimFuture, MovesPayload) {
  Engine eng;
  SimPromise<std::string> p(eng);
  std::string got;
  [](SimPromise<std::string> pr, std::string& out) -> SimTask {
    out = co_await pr.future();
  }(p, got);
  p.set_value("hello");
  eng.run();
  EXPECT_EQ(got, "hello");
}

TEST(SimFuture, DoubleSetIsRejected) {
  Engine eng;
  SimPromise<int> p(eng);
  p.set_value(1);
  EXPECT_DEATH(p.set_value(2), "Precondition");
}

TEST(Joiner, ZeroCountResolvesImmediately) {
  Engine eng;
  Joiner j(eng, 0);
  bool done = false;
  [](Joiner& jo, bool& d) -> SimTask {
    co_await jo.future();
    d = true;
  }(j, done);
  EXPECT_TRUE(done);
}

TEST(Joiner, ResolvesOnLastArrival) {
  Engine eng;
  Joiner j(eng, 3);
  bool done = false;
  [](Joiner& jo, bool& d) -> SimTask {
    co_await jo.future();
    d = true;
  }(j, done);
  j.arrive();
  j.arrive();
  eng.run();
  EXPECT_FALSE(done);
  j.arrive();
  eng.run();
  EXPECT_TRUE(done);
}

TEST(Joiner, OverArrivalIsRejected) {
  Engine eng;
  Joiner j(eng, 1);
  j.arrive();
  EXPECT_DEATH(j.arrive(), "Precondition");
}

TEST(Broadcast, WakesAllWaiters) {
  Engine eng;
  Broadcast bc(eng);
  int woken = 0;
  for (int i = 0; i < 4; ++i) {
    [](Broadcast& b, int& w) -> SimTask {
      co_await b.wait();
      ++w;
    }(bc, woken);
  }
  EXPECT_EQ(bc.waiter_count(), 4u);
  bc.notify_all();
  eng.run();
  EXPECT_EQ(woken, 4);
  EXPECT_EQ(bc.waiter_count(), 0u);
}

TEST(Broadcast, NotificationIsNotSticky) {
  Engine eng;
  Broadcast bc(eng);
  bc.notify_all();  // nobody waiting: lost
  int woken = 0;
  [](Broadcast& b, int& w) -> SimTask {
    co_await b.wait();
    ++w;
  }(bc, woken);
  eng.run();
  EXPECT_EQ(woken, 0);
  bc.notify_all();
  eng.run();
  EXPECT_EQ(woken, 1);
}

TEST(Broadcast, WaiterCanRewait) {
  Engine eng;
  Broadcast bc(eng);
  int wakeups = 0;
  [](Broadcast& b, int& w) -> SimTask {
    co_await b.wait();
    ++w;
    co_await b.wait();
    ++w;
  }(bc, wakeups);
  bc.notify_all();
  eng.run();
  EXPECT_EQ(wakeups, 1);
  bc.notify_all();
  eng.run();
  EXPECT_EQ(wakeups, 2);
}

}  // namespace
}  // namespace lap
