// End-to-end integration tests over run_simulation: determinism, metric
// consistency, and the paper's headline qualitative effects on scaled-down
// workloads.
#include "driver/simulation.hpp"

#include <gtest/gtest.h>

#include "trace/charisma_gen.hpp"
#include "trace/sprite_gen.hpp"

namespace lap {
namespace {

Trace small_charisma() {
  CharismaParams p;
  p.scale = 0.25;
  return generate_charisma(p);
}

RunConfig pm_config(const std::string& algo) {
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.fs = FsKind::kPafs;
  cfg.cache_per_node = 4_MiB;
  cfg.algorithm = AlgorithmSpec::parse(algo);
  return cfg;
}

TEST(Simulation, IsDeterministic) {
  const Trace trace = small_charisma();
  const RunConfig cfg = pm_config("Ln_Agr_IS_PPM:1");
  const RunResult a = run_simulation(trace, cfg);
  const RunResult b = run_simulation(trace, cfg);
  EXPECT_EQ(a.avg_read_ms, b.avg_read_ms);
  EXPECT_EQ(a.disk_accesses, b.disk_accesses);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sim_duration, b.sim_duration);
}

TEST(Simulation, CompletesAllRequests) {
  const Trace trace = small_charisma();
  RunConfig cfg = pm_config("NP");
  cfg.warmup_fraction = 0.0;
  const RunResult r = run_simulation(trace, cfg);
  EXPECT_EQ(r.reads + r.writes, trace.total_io_ops());
}

TEST(Simulation, WarmupExcludesEarlyOps) {
  const Trace trace = small_charisma();
  RunConfig cfg = pm_config("NP");
  cfg.warmup_fraction = 0.5;
  const RunResult r = run_simulation(trace, cfg);
  EXPECT_LT(r.reads + r.writes, trace.total_io_ops());
  EXPECT_GT(r.reads, 0u);
}

TEST(Simulation, NoPrefetchingMeansNoPrefetches) {
  const Trace trace = small_charisma();
  const RunResult r = run_simulation(trace, pm_config("NP"));
  EXPECT_EQ(r.prefetch_issued, 0u);
  EXPECT_EQ(r.disk_prefetch_reads, 0u);
  EXPECT_EQ(r.misprediction_ratio, 0.0);
}

TEST(Simulation, LinearAggressivePrefetchingSpeedsUpReads) {
  // The headline claim, on a small workload: linear aggressive prefetching
  // reduces the average read time substantially.
  const Trace trace = small_charisma();
  const RunResult np = run_simulation(trace, pm_config("NP"));
  const RunResult lap = run_simulation(trace, pm_config("Ln_Agr_IS_PPM:1"));
  EXPECT_LT(lap.avg_read_ms, 0.8 * np.avg_read_ms);
  EXPECT_GT(lap.hit_ratio, np.hit_ratio);
}

TEST(Simulation, AggressiveBeatsConservative) {
  const Trace trace = small_charisma();
  const RunResult plain = run_simulation(trace, pm_config("IS_PPM:1"));
  const RunResult aggressive =
      run_simulation(trace, pm_config("Ln_Agr_IS_PPM:1"));
  EXPECT_LT(aggressive.avg_read_ms, plain.avg_read_ms);
}

TEST(Simulation, ObaIsTheConservativeBaseline) {
  const Trace trace = small_charisma();
  const RunResult np = run_simulation(trace, pm_config("NP"));
  const RunResult oba = run_simulation(trace, pm_config("OBA"));
  // OBA helps a little and never issues more than one block per request.
  EXPECT_LE(oba.avg_read_ms, np.avg_read_ms * 1.05);
  EXPECT_LE(oba.prefetch_issued, trace.total_io_ops());
}

TEST(Simulation, XfsRunsTheSameWorkload) {
  const Trace trace = small_charisma();
  RunConfig cfg = pm_config("Ln_Agr_IS_PPM:1");
  cfg.fs = FsKind::kXfs;
  const RunResult r = run_simulation(trace, cfg);
  EXPECT_EQ(r.fs, "xFS");
  EXPECT_GT(r.reads, 0u);
  EXPECT_GT(r.hit_ratio, 0.5);
}

TEST(Simulation, XfsPrefetchesMoreThanPafsOnSharedFiles) {
  // Per-node prefetchers duplicate work on shared files (Section 4).
  CharismaParams p;
  p.scale = 0.25;
  p.shared_strided_frac = 1.0;
  p.private_strided_frac = 0.0;
  p.first_part_frac = 0.0;
  p.random_frac = 0.0;
  const Trace trace = generate_charisma(p);
  RunConfig cfg = pm_config("Ln_Agr_IS_PPM:1");
  const RunResult pafs = run_simulation(trace, cfg);
  cfg.fs = FsKind::kXfs;
  const RunResult xfs = run_simulation(trace, cfg);
  EXPECT_GT(xfs.prefetch_issued, pafs.prefetch_issued * 3 / 2);
}

TEST(Simulation, SpriteWorkloadRuns) {
  SpriteParams p;
  p.scale = 0.15;
  const Trace trace = generate_sprite(p);
  RunConfig cfg;
  cfg.machine = MachineConfig::now();
  cfg.fs = FsKind::kPafs;
  cfg.cache_per_node = 4_MiB;
  cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
  const RunResult r = run_simulation(trace, cfg);
  EXPECT_GT(r.reads, 0u);
  EXPECT_GT(r.prefetch_issued, 0u);
  EXPECT_GT(r.fallback_fraction, 0.0);  // small files: cold-start fallbacks
}

TEST(Simulation, BiggerCacheNeverHurtsNp) {
  const Trace trace = small_charisma();
  RunConfig cfg = pm_config("NP");
  cfg.cache_per_node = 1_MiB;
  const RunResult small = run_simulation(trace, cfg);
  cfg.cache_per_node = 16_MiB;
  const RunResult big = run_simulation(trace, cfg);
  EXPECT_LE(big.avg_read_ms, small.avg_read_ms * 1.02);
  EXPECT_GE(big.hit_ratio + 1e-9, small.hit_ratio);
}

TEST(Simulation, ResultCarriesConfiguration) {
  const Trace trace = small_charisma();
  RunConfig cfg = pm_config("Ln_Agr_OBA");
  cfg.cache_per_node = 2_MiB;
  const RunResult r = run_simulation(trace, cfg);
  EXPECT_EQ(r.algorithm, "Ln_Agr_OBA");
  EXPECT_EQ(r.fs, "PAFS");
  EXPECT_EQ(r.cache_per_node, 2_MiB);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.sim_duration, SimTime::zero());
}

}  // namespace
}  // namespace lap
