// Fuzz-smoke tier: the trace-serialization differential stage.
//
// For a band of generator seeds, check_serialization() round-trips the
// scenario's trace through both on-disk formats and replays the
// binary-loaded and streamed variants under both file systems, diffing
// every RunResult field against the unserialized baseline.  Any format or
// streaming bug that changes simulation behavior lands here as a readable
// field-level diff rather than a golden-hash mismatch.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/differential.hpp"

namespace lap {
namespace {

TEST(CheckSerialization, SeedBandIsClean) {
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    const CheckReport report = check_serialization(generate_scenario(seed));
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

}  // namespace
}  // namespace lap
