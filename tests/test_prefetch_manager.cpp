#include "core/prefetch_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace lap {
namespace {

// A scriptable PrefetchHost: fetches complete after a fixed delay and land
// in a fake cache; concurrency is tracked to verify the linear limit.
class MockHost final : public PrefetchHost {
 public:
  explicit MockHost(Engine& eng) : eng_(&eng) {}

  [[nodiscard]] bool block_available(BlockKey key) const override {
    return cached.contains(key) || inflight.contains(key);
  }

  SimFuture<Done> prefetch_fetch(BlockKey key, NodeId target) override {
    fetches.push_back(key);
    targets.push_back(target);
    SimPromise<Done> done(*eng_);
    if (block_available(key)) {
      done.set_value(Done{});
      return done.future();
    }
    inflight.insert(key);
    ++concurrent;
    max_concurrent = std::max(max_concurrent, concurrent);
    eng_->schedule_in(fetch_delay, [this, key, done] {
      inflight.erase(key);
      cached.insert(key);
      --concurrent;
      done.set_value(Done{});
    });
    return done.future();
  }

  [[nodiscard]] std::uint32_t file_blocks(FileId file) const override {
    auto it = sizes.find(raw(file));
    return it == sizes.end() ? 0 : it->second;
  }

  Engine* eng_;
  SimTime fetch_delay = SimTime::ms(10);
  std::set<BlockKey> cached;
  std::set<BlockKey> inflight;
  std::vector<BlockKey> fetches;
  std::vector<NodeId> targets;
  std::map<std::uint32_t, std::uint32_t> sizes;
  std::uint32_t concurrent = 0;
  std::uint32_t max_concurrent = 0;
};

struct Fixture {
  Engine eng;
  MockHost host{eng};
  bool stop = false;

  PrefetchManager manager(const std::string& algo) {
    return PrefetchManager(eng, AlgorithmSpec::parse(algo), host, &stop);
  }
};

constexpr FileId kFile{1};

TEST(PrefetchManager, NpIssuesNothing) {
  Fixture f;
  f.host.sizes[1] = 100;
  auto mgr = f.manager("NP");
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 0, 4);
  f.eng.run();
  EXPECT_TRUE(f.host.fetches.empty());
}

TEST(PrefetchManager, PlainObaPrefetchesExactlyOneBlock) {
  Fixture f;
  f.host.sizes[1] = 100;
  auto mgr = f.manager("OBA");
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 0, 4);
  f.eng.run();
  ASSERT_EQ(f.host.fetches.size(), 1u);
  EXPECT_EQ(f.host.fetches[0], (BlockKey{kFile, 4}));
}

TEST(PrefetchManager, PlainIsPpmPrefetchesOnePredictedRequest) {
  Fixture f;
  f.host.sizes[1] = 100;
  auto mgr = f.manager("IS_PPM:1");
  // Warm the graph: stride 8, size 3.
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 0, 3);
  f.eng.run();
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 8, 3);
  f.eng.run();
  f.host.fetches.clear();
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 16, 3);
  // The predicted request 24..26 was issued as a unit (no pacing).
  std::vector<BlockKey> expect{{kFile, 24}, {kFile, 25}, {kFile, 26}};
  EXPECT_EQ(f.host.fetches, expect);
  f.eng.run();
}

TEST(PrefetchManager, LinearAggressiveKeepsOneBlockInFlight) {
  Fixture f;
  f.host.sizes[1] = 64;
  auto mgr = f.manager("Ln_Agr_OBA");
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 0, 2);
  f.eng.run();
  // The whole rest of the file was prefetched...
  EXPECT_EQ(f.host.fetches.size(), 62u);
  // ...but strictly one block at a time.
  EXPECT_EQ(f.host.max_concurrent, 1u);
  // And sequentially.
  for (std::size_t i = 0; i < f.host.fetches.size(); ++i) {
    EXPECT_EQ(f.host.fetches[i], (BlockKey{kFile, static_cast<std::uint32_t>(2 + i)}));
  }
}

TEST(PrefetchManager, FloodingVariantIssuesEverythingAtOnce) {
  Fixture f;
  f.host.sizes[1] = 64;
  auto mgr = f.manager("Agr_OBA");
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 0, 2);
  EXPECT_EQ(f.host.fetches.size(), 62u);   // all issued synchronously
  EXPECT_EQ(f.host.max_concurrent, 62u);   // no pacing at all
  f.eng.run();
}

TEST(PrefetchManager, CoveredPathDoesNotRetarget) {
  Fixture f;
  f.host.sizes[1] = 64;
  auto mgr = f.manager("Ln_Agr_OBA");
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 0, 2);
  f.eng.run();  // everything prefetched
  const auto issued_before = mgr.counters().issued;
  // The app now requests blocks that were prefetched: correct prediction.
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 2, 2);
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 4, 2);
  f.eng.run();
  EXPECT_EQ(mgr.counters().retargets, 0u);
  EXPECT_EQ(mgr.counters().issued, issued_before);
}

TEST(PrefetchManager, MispredictedPathRetargets) {
  Fixture f;
  f.host.sizes[1] = 1000;
  auto mgr = f.manager("Ln_Agr_OBA");
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 0, 2);
  f.eng.run_until(f.eng.now() + SimTime::ms(35));  // a few blocks prefetched
  // Jump far away: the blocks there are not prefetched -> retarget.
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 500, 2);
  EXPECT_EQ(mgr.counters().retargets, 1u);
  // Let the pump pick up the new stream, then wind it down.
  f.eng.run_until(f.eng.now() + SimTime::ms(30));
  f.stop = true;
  f.eng.run();
  // Prefetching restarted from the mis-predicted request's position.
  const BlockKey restart{kFile, 502};
  EXPECT_NE(std::find(f.host.fetches.begin(), f.host.fetches.end(), restart),
            f.host.fetches.end());
}

TEST(PrefetchManager, RoundRobinServesAllReadersOfAFile) {
  Fixture f;
  f.host.sizes[1] = 1000;
  f.host.fetch_delay = SimTime::ms(1);
  auto mgr = f.manager("Ln_Agr_IS_PPM:1");
  // Two processes with interleaved strided patterns (chunk 2, stride 4).
  auto feed = [&](std::uint32_t pid, std::uint32_t start, int n) {
    for (int i = 0; i < n; ++i) {
      mgr.on_request(ProcId{pid}, NodeId{pid}, kFile, start + 4 * i, 2);
    }
  };
  feed(1, 0, 3);   // 0, 4, 8
  feed(2, 2, 3);   // 2, 6, 10
  f.eng.run_until(f.eng.now() + SimTime::ms(20));
  f.stop = true;
  f.eng.run();
  // Both readers' future chunks were prefetched.
  bool saw_pid1_chunk = false, saw_pid2_chunk = false;
  for (const BlockKey& k : f.host.fetches) {
    if (k.index >= 12 && k.index % 4 == 0) saw_pid1_chunk = true;
    if (k.index >= 14 && k.index % 4 == 2) saw_pid2_chunk = true;
  }
  EXPECT_TRUE(saw_pid1_chunk);
  EXPECT_TRUE(saw_pid2_chunk);
  EXPECT_EQ(f.host.max_concurrent, 1u);  // the limit stays per *file*
}

TEST(PrefetchManager, ColdGraphFallbackIsCountedAndConservative) {
  Fixture f;
  f.host.sizes[1] = 100;
  auto mgr = f.manager("Ln_Agr_IS_PPM:1");
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 0, 2);
  f.eng.run();
  EXPECT_EQ(mgr.counters().issued, 1u);  // a single OBA fallback block
  EXPECT_EQ(mgr.counters().fallback_issued, 1u);
  EXPECT_EQ(f.host.fetches[0], (BlockKey{kFile, 2}));
}

TEST(PrefetchManager, WarmSharedGraphPredictsForANewReader) {
  Fixture f;
  f.host.sizes[1] = 100;
  f.host.fetch_delay = SimTime::us(10);
  auto mgr = f.manager("Ln_Agr_IS_PPM:1");
  // Reader 1 establishes a stride-8 pattern on the file.
  for (std::uint32_t b = 0; b <= 32; b += 8) {
    mgr.on_request(ProcId{1}, NodeId{0}, kFile, b, 2);
    f.eng.run();
  }
  f.host.fetches.clear();
  f.host.cached.clear();  // evict everything: reader 2 starts cold
  // Reader 2 re-reads the same file: the *shared* per-file graph predicts
  // from its second request (a private graph would need a third).
  mgr.on_request(ProcId{2}, NodeId{0}, kFile, 0, 2);
  f.eng.run();
  f.host.fetches.clear();
  mgr.on_request(ProcId{2}, NodeId{0}, kFile, 8, 2);
  f.eng.run_until(f.eng.now() + SimTime::ms(1));
  f.stop = true;
  f.eng.run();
  // The prefetches follow the learned stride, not sequential fallback.
  ASSERT_FALSE(f.host.fetches.empty());
  EXPECT_EQ(f.host.fetches[0], (BlockKey{kFile, 16}));
}

TEST(PrefetchManager, FileDeletionStopsThePump) {
  Fixture f;
  f.host.sizes[1] = 1000;
  auto mgr = f.manager("Ln_Agr_OBA");
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 0, 2);
  f.eng.run_until(f.eng.now() + SimTime::ms(25));
  const auto fetched = f.host.fetches.size();
  EXPECT_GT(fetched, 0u);
  mgr.on_file_deleted(kFile);
  f.eng.run();
  // At most the block in flight at deletion time completes; no new ones.
  EXPECT_LE(f.host.fetches.size(), fetched + 1);
}

TEST(PrefetchManager, WritesAlsoTriggerPrefetching) {
  // Section 2.1: "whenever a block i is read *or written*, block i+1 is
  // also requested" — the manager is driven by both kinds of request; this
  // is exercised by calling on_request for a write-shaped access.
  Fixture f;
  f.host.sizes[1] = 10;
  auto mgr = f.manager("OBA");
  mgr.on_request(ProcId{1}, NodeId{0}, kFile, 5, 1);  // a write, to the FS
  f.eng.run();
  ASSERT_EQ(f.host.fetches.size(), 1u);
  EXPECT_EQ(f.host.fetches[0], (BlockKey{kFile, 6}));
}

TEST(PrefetchManager, PrefetchTargetsFollowTheRequester) {
  Fixture f;
  f.host.sizes[1] = 50;
  auto mgr = f.manager("Ln_Agr_OBA");
  mgr.on_request(ProcId{1}, NodeId{7}, kFile, 0, 2);
  f.eng.run();
  ASSERT_FALSE(f.host.targets.empty());
  for (NodeId t : f.host.targets) EXPECT_EQ(t, NodeId{7});
}

}  // namespace
}  // namespace lap
