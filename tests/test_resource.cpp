#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"

namespace lap {
namespace {

SimTask hold_for(Engine& eng, Resource& res, int priority, SimTime duration,
                 int id, std::vector<int>& order) {
  auto guard = co_await res.scoped(priority);
  order.push_back(id);
  co_await eng.delay(duration);
}

TEST(Resource, ImmediateAcquisitionWhenIdle) {
  Engine eng;
  Resource res(eng);
  std::vector<int> order;
  hold_for(eng, res, prio::kDemand, SimTime::us(1), 1, order);
  EXPECT_EQ(order, (std::vector<int>{1}));  // acquired synchronously
  eng.run();
  EXPECT_EQ(res.in_use(), 0u);
}

TEST(Resource, FifoWithinPriority) {
  Engine eng;
  Resource res(eng);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    hold_for(eng, res, prio::kDemand, SimTime::us(10), i, order);
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Resource, UrgentWaitersJumpTheQueue) {
  Engine eng;
  Resource res(eng);
  std::vector<int> order;
  hold_for(eng, res, prio::kDemand, SimTime::us(10), 0, order);    // in service
  hold_for(eng, res, prio::kPrefetch, SimTime::us(10), 1, order);  // queued
  hold_for(eng, res, prio::kDemand, SimTime::us(10), 2, order);    // queued, urgent
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(Resource, NonPreemptive) {
  Engine eng;
  Resource res(eng);
  std::vector<int> order;
  hold_for(eng, res, prio::kPrefetch, SimTime::us(10), 0, order);
  eng.run_until(SimTime::us(1));
  hold_for(eng, res, prio::kDemand, SimTime::us(1), 1, order);
  eng.run();
  // The prefetch finished its service before the demand started.
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Resource, CapacityAllowsParallelHolders) {
  Engine eng;
  Resource res(eng, 2);
  std::vector<int> order;
  hold_for(eng, res, prio::kDemand, SimTime::us(10), 0, order);
  hold_for(eng, res, prio::kDemand, SimTime::us(10), 1, order);
  hold_for(eng, res, prio::kDemand, SimTime::us(10), 2, order);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));  // two slots immediately
  EXPECT_EQ(res.queue_length(), 1u);
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, QueueStats) {
  Engine eng;
  Resource res(eng);
  std::vector<int> order;
  hold_for(eng, res, prio::kDemand, SimTime::us(5), 0, order);
  hold_for(eng, res, prio::kDemand, SimTime::us(5), 1, order);
  EXPECT_TRUE(res.busy());
  EXPECT_EQ(res.in_use(), 1u);
  EXPECT_EQ(res.queue_length(), 1u);
  eng.run();
  EXPECT_FALSE(res.busy());
}

TEST(Resource, ReleaseWithoutAcquireIsRejected) {
  Engine eng;
  Resource res(eng);
  EXPECT_DEATH(res.release(), "Precondition");
}

}  // namespace
}  // namespace lap
