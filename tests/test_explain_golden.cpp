// Byte-identity golden test for the `trace_tool explain` report.
//
// A hand-built two-node workload is replayed under PAFS Ln_Agr_IS_PPM:1
// with the span collector attached, and the full explain report (latency
// breakdown + wasted attribution + one block chain, text and JSON) must
// match the committed fixtures byte for byte.  Every number in the report
// derives from integer-nanosecond simulation state, so any drift means the
// simulation, the span hooks, or the renderer changed — each a conscious
// decision.  Regenerate by running this binary with LAP_UPDATE_GOLDEN=1
// (see tests/data/README.md), then review the fixture diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/explain.hpp"
#include "driver/simulation.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"
#include "trace/trace.hpp"

namespace lap {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(LAP_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Two nodes, two files.  Process 0 streams file 0 sequentially twice,
/// training IS_PPM and keeping the small global pool churning; process 1
/// walks file 1 sequentially but stops short of the end, so the one-ahead
/// prefetch past its stopping point arrives and is never referenced — a
/// guaranteed wasted prefetch for the attribution table.
Trace explain_trace() {
  Trace t;
  t.block_size = 8_KiB;
  t.serialize_per_node = false;
  t.files = {FileInfo{FileId{0}, 96_KiB}, FileInfo{FileId{1}, 64_KiB}};
  ProcessTrace p0{ProcId{0}, NodeId{0}, {}};
  for (int pass = 0; pass < 2; ++pass) {
    p0.records.push_back(
        TraceRecord{TraceOp::kOpen, FileId{0}, 0, 0, SimTime::zero()});
    for (Bytes off = 0; off < 96_KiB; off += 8_KiB) {
      p0.records.push_back(TraceRecord{TraceOp::kRead, FileId{0}, off, 8_KiB,
                                       SimTime::us(200)});
    }
    p0.records.push_back(
        TraceRecord{TraceOp::kClose, FileId{0}, 0, 0, SimTime::ms(5)});
  }
  ProcessTrace p1{ProcId{1}, NodeId{1}, {}};
  p1.records.push_back(
      TraceRecord{TraceOp::kOpen, FileId{1}, 0, 0, SimTime::zero()});
  for (Bytes off = 0; off < 48_KiB; off += 8_KiB) {  // blocks 0..5 of 8
    p1.records.push_back(
        TraceRecord{TraceOp::kRead, FileId{1}, off, 8_KiB, SimTime::us(300)});
  }
  p1.records.push_back(
      TraceRecord{TraceOp::kClose, FileId{1}, 0, 0, SimTime::ms(7)});
  t.processes.push_back(std::move(p0));
  t.processes.push_back(std::move(p1));
  return t;
}

struct Report {
  std::string text;
  std::string json;
  RunResult run;
  SpanCollector::Totals totals;
};

Report build_report() {
  const Trace trace = explain_trace();
  RunConfig cfg;
  cfg.machine = MachineConfig::now();
  cfg.fs = FsKind::kPafs;
  cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
  cfg.cache_per_node = 64_KiB;  // small enough to force some eviction churn
  SpanCollector spans;
  cfg.spans = &spans;
  Report r;
  r.run = run_simulation(trace, cfg);
  r.totals = spans.totals();

  ExplainOptions opts;
  opts.latency = true;
  opts.wasted = true;
  opts.block = BlockKey{FileId{0}, 3};
  std::ostringstream text;
  write_explain(text, spans, r.run, opts);
  r.text = text.str();
  opts.json = true;
  std::ostringstream json;
  write_explain(json, spans, r.run, opts);
  r.json = json.str();
  return r;
}

void maybe_update(const Report& r) {
  if (std::getenv("LAP_UPDATE_GOLDEN") == nullptr) return;
  std::ofstream(fixture_path("explain_mini.txt"), std::ios::binary) << r.text;
  std::ofstream(fixture_path("explain_mini.json"), std::ios::binary)
      << r.json;
}

TEST(ExplainGolden, WorkloadActuallyExercisesTheReport) {
  const Report r = build_report();
  maybe_update(r);
  // The fixture only guards what it contains, so make sure the scenario
  // keeps producing a non-trivial report: prefetches that arrive, some
  // used, some wasted, and exact reconciliation with the run counters.
  EXPECT_GT(r.totals.arrived, 0u);
  EXPECT_GT(r.totals.used, 0u);
  EXPECT_GT(r.totals.wasted, 0u);
  EXPECT_EQ(r.totals.arrived, r.run.prefetch_arrived);
  EXPECT_EQ(r.totals.used, r.run.prefetch_used);
  EXPECT_EQ(r.totals.wasted, r.run.prefetch_wasted);
  EXPECT_NE(r.text.find("— OK"), std::string::npos);
}

TEST(ExplainGolden, TextReportIsByteIdentical) {
  const Report r = build_report();
  maybe_update(r);
  EXPECT_EQ(read_file(fixture_path("explain_mini.txt")), r.text);
}

TEST(ExplainGolden, JsonReportIsByteIdenticalAndParses) {
  const Report r = build_report();
  maybe_update(r);
  EXPECT_EQ(read_file(fixture_path("explain_mini.json")), r.json);
  const auto doc = parse_json(r.json);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* rec = doc->find("reconciliation");
  ASSERT_NE(rec, nullptr);
  const JsonValue* match = rec->find("match");
  ASSERT_NE(match, nullptr);
  EXPECT_TRUE(match->boolean);
}

TEST(ExplainGolden, BlockQueryParses) {
  const auto ok = parse_block_query("3:17");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(raw(ok->file), 3u);
  EXPECT_EQ(ok->index, 17u);
  EXPECT_FALSE(parse_block_query("").has_value());
  EXPECT_FALSE(parse_block_query("3").has_value());
  EXPECT_FALSE(parse_block_query(":17").has_value());
  EXPECT_FALSE(parse_block_query("3:").has_value());
  EXPECT_FALSE(parse_block_query("3:x").has_value());
  EXPECT_FALSE(parse_block_query("a:1").has_value());
  EXPECT_FALSE(parse_block_query("3:17:4").has_value());
}

}  // namespace
}  // namespace lap
