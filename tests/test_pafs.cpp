#include "fs/pafs/pafs.hpp"

#include <gtest/gtest.h>

#include "driver/machine_config.hpp"
#include "sim/task.hpp"

namespace lap {
namespace {

struct PafsFixture {
  Engine eng;
  MachineConfig machine = MachineConfig::pm();
  Network net{eng, machine.net, machine.nodes};
  DiskArray disks{eng, machine.disk, machine.disks};
  FileModel files{machine.block_size};
  Metrics metrics;
  bool stop = false;
  std::unique_ptr<Pafs> fs;

  explicit PafsFixture(const std::string& algo = "NP",
                       std::size_t cache_blocks = 4096) {
    PafsConfig cfg;
    cfg.cache_blocks_total = cache_blocks;
    cfg.algorithm = AlgorithmSpec::parse(algo);
    fs = std::make_unique<Pafs>(eng, net, disks, files, metrics, cfg,
                                machine.nodes, &stop);
  }

  // Run one operation to completion and return its latency.
  SimTime do_read(ProcId pid, NodeId node, FileId file, Bytes off, Bytes len) {
    metrics.on_io_issued(eng.now());
    const SimTime t0 = eng.now();
    bool done = false;
    [](SimFuture<Done> f, bool& d) -> SimTask {
      co_await f;
      d = true;
    }(fs->read(pid, node, file, off, len), done);
    eng.run();
    EXPECT_TRUE(done);
    const SimTime lat = eng.now() - t0;
    metrics.on_read_done(lat);
    return lat;
  }

  void do_write(ProcId pid, NodeId node, FileId file, Bytes off, Bytes len) {
    metrics.on_io_issued(eng.now());
    (void)fs->write(pid, node, file, off, len);
    eng.run();
  }

  void do_remove(ProcId pid, NodeId node, FileId file) {
    (void)fs->remove(pid, node, file);
    eng.run();
  }
};

constexpr FileId kF{1};

TEST(Pafs, ColdReadGoesToDisk) {
  PafsFixture f;
  f.files.add_file(kF, 80_KiB);
  const SimTime lat = f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  EXPECT_EQ(f.metrics.misses(), 1u);
  EXPECT_EQ(f.metrics.disk_reads(), 1u);
  // One block: seek + transfer dominates the latency.
  EXPECT_GT(lat, SimTime::ms(11));
  EXPECT_LT(lat, SimTime::ms(13));
}

TEST(Pafs, SecondReadHitsLocally) {
  PafsFixture f;
  f.files.add_file(kF, 80_KiB);
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  const SimTime lat = f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  EXPECT_EQ(f.metrics.hits_local(), 1u);
  EXPECT_LT(lat, SimTime::ms(1));
}

TEST(Pafs, RemoteClientGetsRemoteHit) {
  PafsFixture f;
  f.files.add_file(kF, 80_KiB);
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);  // homed at node 0
  const SimTime lat = f.do_read(ProcId{2}, NodeId{5}, kF, 0, 8_KiB);
  EXPECT_EQ(f.metrics.hits_remote(), 1u);
  EXPECT_LT(lat, SimTime::ms(1));  // network, not disk
  EXPECT_EQ(f.metrics.disk_reads(), 1u);
}

TEST(Pafs, MultiBlockReadsFetchInParallel) {
  PafsFixture f;
  f.files.add_file(kF, 800_KiB);
  // 8 blocks striped over 16 disks: roughly one service time, not eight.
  const SimTime lat = f.do_read(ProcId{1}, NodeId{0}, kF, 0, 64_KiB);
  EXPECT_EQ(f.metrics.misses(), 8u);
  EXPECT_LT(lat, SimTime::ms(15));
}

TEST(Pafs, WritesAreWriteBack) {
  PafsFixture f;
  f.files.add_file(kF, 80_KiB);
  f.do_write(ProcId{1}, NodeId{0}, kF, 0, 16_KiB);
  EXPECT_EQ(f.metrics.disk_writes(), 0u);  // buffered, not on disk yet
  EXPECT_EQ(f.fs->pool().dirty_count(), 2u);
}

TEST(Pafs, ReadAfterWriteHitsCache) {
  PafsFixture f;
  f.files.add_file(kF, 80_KiB);
  f.do_write(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  const SimTime lat = f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  EXPECT_LT(lat, SimTime::ms(1));
  EXPECT_EQ(f.metrics.disk_reads(), 0u);
}

TEST(Pafs, DirtyEvictionWritesBack) {
  PafsFixture f("NP", /*cache_blocks=*/2);
  f.files.add_file(kF, 800_KiB);
  f.do_write(ProcId{1}, NodeId{0}, kF, 0, 16_KiB);  // fills both buffers dirty
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 64_KiB, 16_KiB);  // evicts them
  EXPECT_EQ(f.metrics.disk_writes(), 2u);
}

TEST(Pafs, DeleteDropsDirtyDataWithoutDiskWrites) {
  PafsFixture f;
  f.files.add_file(kF, 80_KiB);
  f.do_write(ProcId{1}, NodeId{0}, kF, 0, 80_KiB);
  f.do_remove(ProcId{1}, NodeId{0}, kF);
  EXPECT_EQ(f.metrics.disk_writes(), 0u);  // die-young data never hits disk
  EXPECT_EQ(f.fs->pool().size(), 0u);
  EXPECT_FALSE(f.files.exists(kF));
}

TEST(Pafs, SyncDaemonFlushesDirtyBlocks) {
  // While the daemon runs, the engine's queue never drains, so this test
  // advances with run_until instead of the fixture's run-to-completion
  // helpers.
  PafsFixture f;
  f.files.add_file(kF, 80_KiB);
  f.fs->start_sync_daemon();
  f.metrics.on_io_issued(f.eng.now());
  (void)f.fs->write(ProcId{1}, NodeId{0}, kF, 0, 16_KiB);
  f.eng.run_until(SimTime::sec(3));  // past one sync tick
  EXPECT_EQ(f.metrics.disk_writes(), 2u);
  EXPECT_EQ(f.fs->pool().dirty_count(), 0u);
  f.stop = true;
  f.eng.run();
}

TEST(Pafs, SyncCoalescesRewritesWithinAnInterval) {
  PafsFixture f;
  f.files.add_file(kF, 80_KiB);
  f.fs->start_sync_daemon();
  f.metrics.on_io_issued(f.eng.now());
  for (int i = 0; i < 5; ++i) {
    (void)f.fs->write(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);  // same block
  }
  f.eng.run_until(SimTime::sec(3));
  EXPECT_EQ(f.metrics.disk_writes(), 1u);  // one flush despite five writes
  f.stop = true;
  f.eng.run();
}

TEST(Pafs, LinearAggressivePrefetchFillsTheCache) {
  PafsFixture f("Ln_Agr_OBA");
  f.files.add_file(kF, 160_KiB);  // 20 blocks
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  // Draining the engine lets the pump stream the whole file.
  EXPECT_EQ(f.fs->pool().size(), 20u);
  EXPECT_EQ(f.fs->prefetch_counters_total().issued, 19u);
}

TEST(Pafs, PrefetchedBlocksTurnMissesIntoHits) {
  PafsFixture f("Ln_Agr_OBA");
  f.files.add_file(kF, 160_KiB);
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);
  const SimTime lat = f.do_read(ProcId{1}, NodeId{0}, kF, 8_KiB, 8_KiB);
  EXPECT_LT(lat, SimTime::ms(1));
  EXPECT_EQ(f.metrics.misses(), 1u);  // only the first block ever missed
}

TEST(Pafs, UnusedPrefetchesAreCountedAtFinalize) {
  PafsFixture f("Ln_Agr_OBA");
  f.files.add_file(kF, 160_KiB);
  (void)f.do_read(ProcId{1}, NodeId{0}, kF, 0, 8_KiB);  // prefetches 19 blocks
  f.fs->finalize();
  EXPECT_EQ(f.metrics.prefetch_wasted(), 19u);
  EXPECT_DOUBLE_EQ(f.metrics.misprediction_ratio(), 1.0);
}

TEST(Pafs, UsedPrefetchesAreNotMispredictions) {
  PafsFixture f("Ln_Agr_OBA");
  f.files.add_file(kF, 160_KiB);
  for (Bytes off = 0; off < 160_KiB; off += 8_KiB) {
    (void)f.do_read(ProcId{1}, NodeId{0}, kF, off, 8_KiB);
  }
  f.fs->finalize();
  EXPECT_EQ(f.metrics.prefetch_wasted(), 0u);
  EXPECT_DOUBLE_EQ(f.metrics.misprediction_ratio(), 0.0);
}

TEST(Pafs, ReadOfUnknownFileCompletesHarmlessly) {
  PafsFixture f;
  const SimTime lat = f.do_read(ProcId{1}, NodeId{0}, FileId{99}, 0, 8_KiB);
  EXPECT_LT(lat, SimTime::ms(1));
  EXPECT_EQ(f.metrics.misses(), 0u);
}

TEST(Pafs, ServerPlacementIsStable) {
  PafsFixture f;
  EXPECT_EQ(f.fs->server_node(kF), f.fs->server_node(kF));
  EXPECT_LT(raw(f.fs->server_node(kF)), f.machine.nodes);
}

}  // namespace
}  // namespace lap
