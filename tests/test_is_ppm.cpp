#include "core/is_ppm.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace lap {
namespace {

// ---------------------------------------------------------------------------
// The paper's worked example (Figures 1-3): the access pattern
//   (0,2) (3,3) (8,2) (13,3) (18,2) ...
// i.e. a 2-block request, then a 3-block request 3 blocks apart, then a
// 2-block request 5 blocks apart, repeating.
// ---------------------------------------------------------------------------

std::vector<std::pair<std::int64_t, std::uint32_t>> paper_pattern(int n) {
  std::vector<std::pair<std::int64_t, std::uint32_t>> reqs;
  std::int64_t off = 0;
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      reqs.emplace_back(off, 2);  // 2-block request
      off += 3;                   // next starts 3 blocks later
    } else {
      reqs.emplace_back(off, 3);  // 3-block request
      off += 5;                   // next starts 5 blocks later
    }
  }
  return reqs;
}

TEST(IsPpmPaperExample, GraphShapeAfterFiveRequests) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  for (auto [first, size] : paper_pattern(5)) pred.on_request(first, size, ++t);
  // Figure 2.t5: two nodes — (I=3,S=3) and (I=5,S=2) — and two links.
  EXPECT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 2u);
}

TEST(IsPpmPaperExample, PredictsBlocks17And18AfterFourthRequest) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  for (auto [first, size] : paper_pattern(4)) pred.on_request(first, size, ++t);
  // Section 2.2: the fourth request starts at block 12 (1-based; our blocks
  // are 0-based, so offset 11, size 3); the node (I=3,S=3) predicts
  // (I=5,S=2), i.e. the paper's blocks 17 and 18 = offsets 16 and 17.
  const auto p = pred.predict_next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->first_block, 16);
  EXPECT_EQ(p->nblocks, 2u);
}

TEST(IsPpmPaperExample, WalkerFollowsTheWholeChain) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  const auto reqs = paper_pattern(6);
  for (auto [first, size] : reqs) pred.on_request(first, size, ++t);
  // Walk forward: the chain must continue the alternating pattern.
  auto walker = pred.walker();
  std::int64_t expect_first = reqs.back().first;
  for (int i = 0; i < 6; ++i) {
    const auto p = walker.next();
    ASSERT_TRUE(p.has_value());
    // Alternating intervals 3, 5 and sizes 3, 2 (request 6 had size 3).
    expect_first += (i % 2 == 0) ? 5 : 3;
    EXPECT_EQ(p->first_block, expect_first);
    EXPECT_EQ(p->nblocks, (i % 2 == 0) ? 2u : 3u);
  }
}

TEST(IsPpm, NoPredictionBeforeEnoughRequests) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  EXPECT_FALSE(pred.predict_next().has_value());
  pred.on_request(0, 2, 1);
  EXPECT_FALSE(pred.predict_next().has_value());  // no interval yet
  pred.on_request(3, 3, 2);
  EXPECT_FALSE(pred.predict_next().has_value());  // node exists, no edge
}

TEST(IsPpm, SelfLoopPredictsSequentialStream) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  for (std::int64_t b = 0; b < 40; b += 4) pred.on_request(b, 4, ++t);
  auto walker = pred.walker();
  std::int64_t expect = 36;
  for (int i = 0; i < 10; ++i) {
    const auto p = walker.next();
    ASSERT_TRUE(p.has_value());
    expect += 4;
    EXPECT_EQ(p->first_block, expect);
    EXPECT_EQ(p->nblocks, 4u);
  }
}

TEST(IsPpm, MostRecentEdgeWins) {
  IsPpmGraph graph(1);
  IsPpmPredictor pred(graph);
  // Establish (4,2)->(4,2) self-loop many times, then one (4,2)->(10,1).
  std::uint64_t t = 0;
  std::int64_t off = 0;
  for (int i = 0; i < 6; ++i) {
    pred.on_request(off, 2, ++t);
    off += 4;
  }
  pred.on_request(off + 6, 1, ++t);  // interval 10, size 1 (most recent)
  // From node (4,2)... the current node is (10,1); rebuild context at (4,2):
  IsPpmPredictor fresh(graph);
  fresh.on_request(100, 2, ++t);
  fresh.on_request(104, 2, ++t);  // context = (4,2)
  const auto p = fresh.predict_next();
  ASSERT_TRUE(p.has_value());
  // MRU policy: the recent (10,1) edge wins over the frequent self-loop.
  EXPECT_EQ(p->first_block, 114);
  EXPECT_EQ(p->nblocks, 1u);
}

TEST(IsPpm, MostFrequentPolicyPrefersTheCommonEdge) {
  IsPpmGraph graph(1, IsPpmGraph::EdgePolicy::kMostFrequent);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  std::int64_t off = 0;
  for (int i = 0; i < 6; ++i) {
    pred.on_request(off, 2, ++t);
    off += 4;
  }
  pred.on_request(off + 6, 1, ++t);
  IsPpmPredictor fresh(graph);
  fresh.on_request(100, 2, ++t);
  fresh.on_request(104, 2, ++t);
  const auto p = fresh.predict_next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->first_block, 108);  // frequency: the self-loop wins
  EXPECT_EQ(p->nblocks, 2u);
}

TEST(IsPpm, WalkStopsAtADeadEndNode) {
  // Reader 1's stream ends on a context that never gained an outgoing
  // edge (it read a short header and stopped with a distinctive final
  // hop).  A later reader's walk ends exactly there — the graph encodes
  // the stop — whereas sequential read-ahead would keep going.
  IsPpmGraph graph(1);
  {
    IsPpmPredictor first(graph);
    first.on_request(0, 2, 1);
    first.on_request(10, 3, 2);  // final hop: node (10,3), no out-edge
  }
  IsPpmPredictor second(graph);
  second.on_request(0, 2, 100);
  second.on_request(10, 3, 101);
  auto walker = second.walker();
  EXPECT_FALSE(walker.next().has_value());
}

TEST(IsPpm, SelfLoopExtrapolatesPastAReadersStop) {
  // The flip side: a purely sequential reader's stop is NOT learnable —
  // the whole stream lives in one self-loop node, so a warm walk keeps
  // extrapolating (bounded only by the end of the file).  This is the tail
  // overshoot on partially-read files that Section 5.2 discusses.
  IsPpmGraph graph(1);
  {
    IsPpmPredictor first(graph);
    std::uint64_t t = 0;
    for (std::int64_t b = 0; b <= 8; b += 2) first.on_request(b, 2, ++t);
  }
  IsPpmPredictor second(graph);
  second.on_request(0, 2, 100);
  second.on_request(2, 2, 101);
  auto walker = second.walker();
  int steps = 0;
  while (steps < 100 && walker.next()) ++steps;
  EXPECT_EQ(steps, 100);  // unbounded without the stream's file clipping
}

TEST(IsPpmOrder3, PaperFigure3Graph) {
  IsPpmGraph graph(3);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  // Enough requests for two order-3 contexts plus the link between them.
  for (auto [first, size] : paper_pattern(8)) pred.on_request(first, size, ++t);
  // Figure 3: the 3rd-order graph has exactly two nodes for this pattern.
  EXPECT_EQ(graph.node_count(), 2u);
  const auto p = pred.predict_next();
  ASSERT_TRUE(p.has_value());
}

TEST(IsPpm, OrderValidation) {
  EXPECT_DEATH(IsPpmGraph bad(0), "Precondition");
}

struct StrideCase {
  std::int64_t start;
  std::int64_t stride;
  std::uint32_t size;
  int order;
};

class StridePrediction : public ::testing::TestWithParam<StrideCase> {};

// Property: any regular strided pattern is predicted exactly after warm-up,
// for both tested Markov orders.
TEST_P(StridePrediction, PredictsExactly) {
  const StrideCase c = GetParam();
  IsPpmGraph graph(c.order);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  std::int64_t off = c.start;
  const int warmup = c.order + 2;
  for (int i = 0; i < warmup + 8; ++i) {
    pred.on_request(off, c.size, ++t);
    if (i >= warmup) {
      // After warm-up every next request must have been predicted.
      const auto p = pred.predict_next();
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(p->first_block, off + c.stride);
      EXPECT_EQ(p->nblocks, c.size);
    }
    off += c.stride;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strides, StridePrediction,
    ::testing::Values(StrideCase{0, 1, 1, 1}, StrideCase{0, 4, 4, 1},
                      StrideCase{7, 12, 3, 1}, StrideCase{0, 32, 8, 1},
                      StrideCase{100, -4, 2, 1},  // backwards scan
                      StrideCase{0, 4, 4, 3}, StrideCase{5, 9, 2, 3},
                      StrideCase{0, 1, 1, 3}));

class AlternatingPrediction : public ::testing::TestWithParam<int> {};

// Property: an alternating two-step pattern is predicted by any order >= 1
// (order 1 suffices because (interval, size) pairs alternate distinctly).
TEST_P(AlternatingPrediction, TwoPhasePattern) {
  const int order = GetParam();
  IsPpmGraph graph(order);
  IsPpmPredictor pred(graph);
  std::uint64_t t = 0;
  std::int64_t off = 0;
  auto step = [&](int i) {
    if (i % 2 == 0) {
      pred.on_request(off, 2, ++t);
      off += 3;
    } else {
      pred.on_request(off, 3, ++t);
      off += 5;
    }
  };
  const int warmup = 2 * (order + 2);
  for (int i = 0; i < warmup; ++i) step(i);
  for (int i = warmup; i < warmup + 10; ++i) {
    const auto p = pred.predict_next();
    ASSERT_TRUE(p.has_value()) << "at step " << i;
    const std::int64_t expect_off = off + (i % 2 == 0 ? 0 : 0);
    (void)expect_off;
    EXPECT_EQ(p->first_block, off);
    step(i);
    EXPECT_EQ(p->nblocks, i % 2 == 0 ? 2u : 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, AlternatingPrediction,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace lap
