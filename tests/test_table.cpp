#include "util/table.hpp"

#include <gtest/gtest.h>

namespace lap {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  Table t({"algo", "1MB", "2MB"});
  t.add_row("NP", {1.23456, 2.0}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(Table, RowArityIsChecked) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "Precondition");
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace lap
