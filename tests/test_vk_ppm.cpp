#include "core/vk_ppm.hpp"

#include <gtest/gtest.h>

namespace lap {
namespace {

TEST(VkPpm, NoPredictionWithoutHistory) {
  VkPpmGraph graph(1);
  VkPpmPredictor pred(graph);
  EXPECT_FALSE(pred.predict_next().has_value());
  pred.on_request(0, 1);
  EXPECT_FALSE(pred.predict_next().has_value());  // context, but no edge
}

TEST(VkPpm, LearnsBlockSuccession) {
  VkPpmGraph graph(1);
  VkPpmPredictor pred(graph);
  pred.on_request(0, 3);  // blocks 0,1,2: edges 0->1, 1->2
  pred.on_request(0, 1);  // back at block 0
  ASSERT_TRUE(pred.predict_next().has_value());
  EXPECT_EQ(*pred.predict_next(), 1u);
}

TEST(VkPpm, MostProbableSuccessorWins) {
  VkPpmGraph graph(1);
  VkPpmPredictor pred(graph);
  // 5 -> 6 three times, 5 -> 9 once.
  for (int i = 0; i < 3; ++i) {
    pred.on_request(5, 1);
    pred.on_request(6, 1);
  }
  pred.on_request(5, 1);
  pred.on_request(9, 1);
  pred.on_request(5, 1);
  EXPECT_EQ(*pred.predict_next(), 6u);  // frequency, not recency
}

TEST(VkPpm, CannotPredictUnseenBlocks) {
  // The paper's core criticism: "the system would have to wait until a
  // block has been accessed once before being able to prefetch it".
  VkPpmGraph graph(1);
  VkPpmPredictor pred(graph);
  for (std::uint32_t b = 0; b < 10; b += 2) pred.on_request(b, 1);
  // A strided pattern over blocks 0,2,4,6,8: block 10 was never seen.
  auto p = pred.predict_next();  // at block 8: no successor recorded
  EXPECT_FALSE(p.has_value());
}

TEST(VkPpm, WalkerFollowsTheChain) {
  VkPpmGraph graph(1);
  VkPpmPredictor pred(graph);
  pred.on_request(0, 6);  // 0->1->2->3->4->5
  pred.on_request(0, 1);  // ...and the jump back: 5->0
  auto walker = pred.walker();
  for (std::uint32_t expect = 1; expect <= 5; ++expect) {
    auto b = walker.next();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, expect);
  }
  // The re-access closed the loop (5 -> 0): the chain cycles, which is why
  // aggressive streams need their emit cap.
  EXPECT_EQ(*walker.next(), 0u);
  EXPECT_EQ(*walker.next(), 1u);
}

TEST(VkPpm, WalkerEndsAtAnUnseenSuccessor) {
  VkPpmGraph graph(1);
  VkPpmPredictor pred(graph);
  pred.on_request(0, 4);   // 0->1->2->3
  pred.on_request(0, 1);   // 3->0
  pred.on_request(10, 1);  // 0->10; block 10 was never followed by anything
  EXPECT_FALSE(pred.predict_next().has_value());
  auto walker = pred.walker();
  EXPECT_FALSE(walker.next().has_value());
  // MRU tie-break at block 0: successors 1 and 10 both have count 1; the
  // newer edge (10) wins.
  EXPECT_EQ(graph.predict({0}), 10u);
}

TEST(VkPpm, HigherOrderDisambiguates) {
  // Block 3 is followed by 4 after (2,3) but by 9 after (8,3): order 2
  // separates the contexts, order 1 cannot.
  VkPpmGraph graph(2);
  VkPpmPredictor pred(graph);
  for (int i = 0; i < 2; ++i) {
    pred.on_request(2, 1);
    pred.on_request(3, 1);
    pred.on_request(4, 1);
    pred.on_request(8, 1);
    pred.on_request(3, 1);
    pred.on_request(9, 1);
  }
  pred.on_request(2, 1);
  pred.on_request(3, 1);
  EXPECT_EQ(*pred.predict_next(), 4u);
  pred.on_request(8, 1);
  pred.on_request(3, 1);
  EXPECT_EQ(*pred.predict_next(), 9u);
}

TEST(VkPpm, ContextCountGrows) {
  VkPpmGraph graph(1);
  VkPpmPredictor pred(graph);
  pred.on_request(0, 5);
  EXPECT_EQ(graph.context_count(), 4u);  // contexts 0,1,2,3 gained edges
}

TEST(VkPpm, OrderValidation) {
  EXPECT_DEATH(VkPpmGraph bad(0), "Precondition");
}

}  // namespace
}  // namespace lap
