#include "check/differential.hpp"

#include <gtest/gtest.h>

#include "check/scenario.hpp"

namespace lap {
namespace {

TEST(DiffRunResults, EqualResultsProduceNoDiffs) {
  const Scenario s = generate_scenario(4);
  const RunResult r = run_simulation(s.trace, scenario_config(s, FsKind::kPafs));
  EXPECT_TRUE(diff_run_results(r, r, "twin").empty());
}

TEST(DiffRunResults, FlagsEveryDivergentField) {
  RunResult a, b;
  b.hits_local = 3;
  b.avg_read_ms = 0.25;
  const auto diffs = diff_run_results(a, b, "x");
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_NE(diffs[0].find("avg_read_ms"), std::string::npos);
  EXPECT_NE(diffs[1].find("hits_local"), std::string::npos);
}

TEST(DiffRunResults, IgnoresWallClock) {
  RunResult a, b;
  a.wall_seconds = 1.0;
  b.wall_seconds = 9.0;
  EXPECT_TRUE(diff_run_results(a, b, "x").empty());
}

TEST(RunChecked, PassesOnAHandfulOfScenarios) {
  for (std::uint64_t seed : {1ull, 173ull, 1118ull}) {
    const CheckReport report = run_checked(generate_scenario(seed));
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

TEST(RunChecked, SummaryNamesTheSeed) {
  const CheckReport report = run_checked(generate_scenario(6));
  EXPECT_NE(report.summary().find("seed 6"), std::string::npos);
}

}  // namespace
}  // namespace lap
