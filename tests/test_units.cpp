#include "util/units.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"  // to_string(SimTime)

namespace lap {
namespace {

TEST(SimTime, ConstructorsAgree) {
  EXPECT_EQ(SimTime::us(1).nanos(), 1000);
  EXPECT_EQ(SimTime::ms(1).nanos(), 1'000'000);
  EXPECT_EQ(SimTime::sec(1).nanos(), 1'000'000'000);
  EXPECT_EQ(SimTime::ns(5).nanos(), 5);
  EXPECT_EQ(SimTime::zero().nanos(), 0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::us(10);
  const SimTime b = SimTime::us(3);
  EXPECT_EQ((a + b).micros(), 13.0);
  EXPECT_EQ((a - b).micros(), 7.0);
  EXPECT_EQ((a * 4).micros(), 40.0);
  EXPECT_EQ((4 * a).micros(), 40.0);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c.micros(), 13.0);
  c -= b;
  EXPECT_EQ(c.micros(), 10.0);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime::us(1), SimTime::us(2));
  EXPECT_EQ(SimTime::ms(1), SimTime::us(1000));
  EXPECT_GT(SimTime::sec(1), SimTime::ms(999));
}

TEST(SimTime, FractionalConversions) {
  EXPECT_DOUBLE_EQ(SimTime::ms(2.5).millis(), 2.5);
  EXPECT_DOUBLE_EQ(SimTime::us(0.5).nanos(), 500);
  EXPECT_DOUBLE_EQ(SimTime::ms(1.0).seconds(), 1e-3);
}

TEST(SimTime, ToString) {
  EXPECT_EQ(to_string(SimTime::ns(12)), "12ns");
  EXPECT_EQ(to_string(SimTime::us(3)), "3us");
  EXPECT_EQ(to_string(SimTime::ms(7)), "7ms");
  EXPECT_EQ(to_string(SimTime::sec(2)), "2s");
}

TEST(Bandwidth, TransferTime) {
  const Bandwidth bw = Bandwidth::mb_per_s(10);  // 10 MB/s
  // 8 KiB at 10 MB/s = 8192 / 10^7 s = 819.2 us.
  EXPECT_NEAR(bw.transfer_time(8_KiB).micros(), 819.2, 0.1);
  EXPECT_EQ(Bandwidth{}.transfer_time(8_KiB), SimTime::zero());
}

TEST(Bandwidth, PaperParameters) {
  // Table 1 sanity: one block over the PM network.
  const Bandwidth net = Bandwidth::mb_per_s(200);
  EXPECT_NEAR(net.transfer_time(8_KiB).micros(), 40.96, 0.01);
}

TEST(ByteLiterals, Values) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(8_KiB, 8192u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
}

TEST(Ids, RawRoundTrip) {
  EXPECT_EQ(raw(NodeId{7}), 7u);
  EXPECT_EQ(raw(FileId{9}), 9u);
  EXPECT_EQ(raw(ProcId{11}), 11u);
  EXPECT_EQ(raw(DiskId{3}), 3u);
}

}  // namespace
}  // namespace lap
