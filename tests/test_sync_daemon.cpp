#include "cache/sync_daemon.hpp"

#include <gtest/gtest.h>

namespace lap {
namespace {

TEST(SyncDaemon, TicksAtFixedInterval) {
  Engine eng;
  bool stop = false;
  int ticks = 0;
  SyncDaemon daemon(eng, SimTime::sec(2), [&] { ++ticks; }, &stop);
  daemon.start();
  eng.schedule_at(SimTime::sec(7), [&stop] { stop = true; });
  eng.run();
  EXPECT_EQ(ticks, 3);  // t = 2, 4, 6; the t = 8 wake-up sees stop
  EXPECT_EQ(daemon.ticks(), 3u);
}

TEST(SyncDaemon, StopsBeforeFirstTickIfFlagAlreadySet) {
  Engine eng;
  bool stop = true;
  int ticks = 0;
  SyncDaemon daemon(eng, SimTime::ms(1), [&] { ++ticks; }, &stop);
  daemon.start();
  eng.run();
  EXPECT_EQ(ticks, 0);
}

TEST(SyncDaemon, NoTickAtTimeZero) {
  Engine eng;
  bool stop = false;
  int ticks = 0;
  SyncDaemon daemon(eng, SimTime::sec(1), [&] { ++ticks; }, &stop);
  daemon.start();
  eng.run_until(SimTime::ms(999));
  EXPECT_EQ(ticks, 0);
  stop = true;
  eng.run();
}

TEST(SyncDaemon, DoubleStartIsRejected) {
  Engine eng;
  bool stop = true;
  SyncDaemon daemon(eng, SimTime::sec(1), [] {}, &stop);
  daemon.start();
  eng.run();
  EXPECT_DEATH(daemon.start(), "Precondition");
}

}  // namespace
}  // namespace lap
