#include "cache/block_store.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace lap {
namespace {

CacheEntry entry(std::uint32_t file, std::uint32_t index, bool dirty = false) {
  CacheEntry e;
  e.key = BlockKey{FileId{file}, index};
  e.home = NodeId{0};
  e.dirty = dirty;
  return e;
}

TEST(BufferPool, InsertFindTouch) {
  BufferPool pool(4);
  EXPECT_EQ(pool.insert(entry(1, 0)), std::nullopt);
  EXPECT_TRUE(pool.contains(BlockKey{FileId{1}, 0}));
  EXPECT_NE(pool.find(BlockKey{FileId{1}, 0}), nullptr);
  EXPECT_EQ(pool.find(BlockKey{FileId{1}, 1}), nullptr);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(BufferPool, EvictsLruWhenFull) {
  BufferPool pool(2);
  (void)pool.insert(entry(1, 0));
  (void)pool.insert(entry(1, 1));
  auto victim = pool.insert(entry(1, 2));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->key, (BlockKey{FileId{1}, 0}));
  EXPECT_EQ(pool.size(), 2u);
}

TEST(BufferPool, TouchProtectsFromEviction) {
  BufferPool pool(2);
  (void)pool.insert(entry(1, 0));
  (void)pool.insert(entry(1, 1));
  pool.touch(BlockKey{FileId{1}, 0});
  auto victim = pool.insert(entry(1, 2));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->key, (BlockKey{FileId{1}, 1}));
}

TEST(BufferPool, ReinsertUpdatesInPlace) {
  BufferPool pool(2);
  (void)pool.insert(entry(1, 0));
  CacheEntry updated = entry(1, 0, /*dirty=*/true);
  EXPECT_EQ(pool.insert(updated), std::nullopt);  // no eviction
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.find(BlockKey{FileId{1}, 0})->dirty);
  EXPECT_EQ(pool.dirty_count(), 1u);
}

TEST(BufferPool, DirtyTracking) {
  BufferPool pool(4);
  (void)pool.insert(entry(1, 0));
  pool.mark_dirty(BlockKey{FileId{1}, 0}, SimTime::ms(5));
  EXPECT_EQ(pool.dirty_count(), 1u);
  EXPECT_EQ(pool.find(BlockKey{FileId{1}, 0})->dirty_since, SimTime::ms(5));
  // Re-dirtying keeps the first timestamp of the episode.
  pool.mark_dirty(BlockKey{FileId{1}, 0}, SimTime::ms(9));
  EXPECT_EQ(pool.find(BlockKey{FileId{1}, 0})->dirty_since, SimTime::ms(5));
  pool.mark_clean(BlockKey{FileId{1}, 0});
  EXPECT_EQ(pool.dirty_count(), 0u);
}

TEST(BufferPool, EvictionDropsDirtyIndexEntry) {
  BufferPool pool(1);
  (void)pool.insert(entry(1, 0, /*dirty=*/true));
  EXPECT_EQ(pool.dirty_count(), 1u);
  auto victim = pool.insert(entry(1, 1));
  ASSERT_TRUE(victim.has_value());
  EXPECT_TRUE(victim->dirty);
  EXPECT_EQ(pool.dirty_count(), 0u);
}

TEST(BufferPool, ForEachDirtyVisitsExactlyDirtyEntries) {
  BufferPool pool(8);
  (void)pool.insert(entry(1, 0, true));
  (void)pool.insert(entry(1, 1, false));
  (void)pool.insert(entry(2, 0, true));
  std::set<std::uint32_t> seen;
  pool.for_each_dirty(
      [&](const CacheEntry& e) { seen.insert(raw(e.key.file) * 100 + e.key.index); });
  EXPECT_EQ(seen, (std::set<std::uint32_t>{100, 200}));
}

TEST(BufferPool, DropFileRemovesAllItsBlocks) {
  BufferPool pool(8);
  (void)pool.insert(entry(1, 0, true));
  (void)pool.insert(entry(1, 5));
  (void)pool.insert(entry(2, 0));
  auto dropped = pool.drop_file(FileId{1});
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_FALSE(pool.contains(BlockKey{FileId{1}, 0}));
  EXPECT_TRUE(pool.contains(BlockKey{FileId{2}, 0}));
  EXPECT_EQ(pool.dirty_count(), 0u);  // the dirty block left with its file
}

TEST(BufferPool, DropMissingFileIsEmpty) {
  BufferPool pool(2);
  EXPECT_TRUE(pool.drop_file(FileId{9}).empty());
}

TEST(BufferPool, EraseReturnsEntry) {
  BufferPool pool(2);
  (void)pool.insert(entry(1, 0, true));
  auto e = pool.erase(BlockKey{FileId{1}, 0});
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->dirty);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.erase(BlockKey{FileId{1}, 0}), std::nullopt);
}

TEST(BufferPool, EvictLruOnEmptyPool) {
  BufferPool pool(2);
  EXPECT_EQ(pool.evict_lru(), std::nullopt);
}

// Model-based property test: the pool must agree with a simple reference
// model under a random operation mix, and never exceed capacity.
TEST(BufferPoolProperty, AgreesWithReferenceModel) {
  constexpr std::size_t kCapacity = 16;
  BufferPool pool(kCapacity);
  std::set<BlockKey> model;  // contents only; eviction order checked via size
  Rng rng(2024);
  for (int step = 0; step < 5000; ++step) {
    const BlockKey key{FileId{static_cast<std::uint32_t>(rng.uniform_int(0, 3))},
                       static_cast<std::uint32_t>(rng.uniform_int(0, 31))};
    switch (rng.uniform_int(0, 3)) {
      case 0: {  // insert
        CacheEntry e;
        e.key = key;
        auto victim = pool.insert(e);
        model.insert(key);
        if (victim) {
          model.erase(victim->key);
          EXPECT_NE(victim->key, key);
        }
        break;
      }
      case 1:  // erase
        pool.erase(key);
        model.erase(key);
        break;
      case 2:  // touch if present
        if (pool.contains(key)) pool.touch(key);
        break;
      case 3: {  // drop one file
        for (const auto& e : pool.drop_file(key.file)) model.erase(e.key);
        break;
      }
    }
    ASSERT_LE(pool.size(), kCapacity);
    ASSERT_EQ(pool.size(), model.size());
    for (const auto& k : model) ASSERT_TRUE(pool.contains(k));
  }
}

}  // namespace
}  // namespace lap
