#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"

namespace lap {
namespace {

TEST(Engine, StartsAtZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), SimTime::zero());
  EXPECT_TRUE(eng.empty());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(SimTime::us(30), [&] { order.push_back(3); });
  eng.schedule_at(SimTime::us(10), [&] { order.push_back(1); });
  eng.schedule_at(SimTime::us(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), SimTime::us(30));
}

TEST(Engine, TiesBreakBySubmissionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule_at(SimTime::us(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, HandlersMayScheduleMoreEvents) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(SimTime::us(1), [&] {
    ++fired;
    eng.schedule_in(SimTime::us(1), [&] { ++fired; });
  });
  eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), SimTime::us(2));
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(SimTime::us(10), [&] { ++fired; });
  eng.schedule_at(SimTime::us(30), [&] { ++fired; });
  eng.run_until(SimTime::us(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), SimTime::us(20));  // advanced to the horizon
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CountsProcessedEvents) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.schedule_in(SimTime::us(i), [] {});
  EXPECT_EQ(eng.run(), 7u);
  EXPECT_EQ(eng.events_processed(), 7u);
}

TEST(Engine, SchedulingInThePastIsRejected) {
  Engine eng;
  eng.schedule_at(SimTime::us(10), [] {});
  eng.run();
  EXPECT_DEATH(eng.schedule_at(SimTime::us(5), [] {}), "Precondition");
}

TEST(EngineCoroutine, DelayAdvancesTime) {
  Engine eng;
  SimTime observed;
  bool finished = false;
  [](Engine& e, SimTime& obs, bool& done) -> SimTask {
    co_await e.delay(SimTime::ms(2));
    obs = e.now();
    co_await e.delay(SimTime::ms(3));
    done = true;
  }(eng, observed, finished);
  eng.run();
  EXPECT_EQ(observed, SimTime::ms(2));
  EXPECT_TRUE(finished);
  EXPECT_EQ(eng.now(), SimTime::ms(5));
}

TEST(EngineCoroutine, ZeroDelayStillSuspends) {
  Engine eng;
  std::vector<int> order;
  [](Engine& e, std::vector<int>& ord) -> SimTask {
    ord.push_back(1);
    co_await e.delay(SimTime::zero());
    ord.push_back(3);
  }(eng, order);
  order.push_back(2);  // runs between coroutine start and resumption
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineCoroutine, ManyConcurrentTasks) {
  Engine eng;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    [](Engine& e, int delay_us, int& d) -> SimTask {
      co_await e.delay(SimTime::us(delay_us));
      ++d;
    }(eng, i % 17, done);
  }
  eng.run();
  EXPECT_EQ(done, 1000);
}

}  // namespace
}  // namespace lap
