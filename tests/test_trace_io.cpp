// Property tests for the LAPT binary format and the streaming replay path.
//
// The contract under test: load(save(t)) == t in both on-disk formats and
// across them, for every shape the fuzzer's generator can produce and for
// quick-scale CHARISMA/Sprite workloads — and replaying a `.lapt` image
// through the chunked streaming reader is bit-exact (same RunResult hash)
// with replaying the in-memory trace it came from.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>

#include "check/golden.hpp"
#include "check/scenario.hpp"
#include "trace/charisma_gen.hpp"
#include "trace/io/binary_io.hpp"
#include "trace/io/champsim.hpp"
#include "trace/io/format.hpp"
#include "trace/sprite_gen.hpp"

namespace lap {
namespace {

Trace binary_round_trip(const Trace& t) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_binary_trace(ss, t);
  ss.seekg(0);
  return load_binary_trace(ss);
}

Trace text_round_trip(const Trace& t) {
  std::stringstream ss;
  t.save(ss);
  return Trace::load(ss);
}

Trace sample() {
  Trace t;
  t.block_size = 8_KiB;
  t.serialize_per_node = true;
  t.files = {FileInfo{FileId{0}, 64_KiB}, FileInfo{FileId{7}, 8_KiB + 123}};
  ProcessTrace p1{ProcId{4}, NodeId{3}, {}};
  p1.records = {
      TraceRecord{TraceOp::kOpen, FileId{0}, 0, 0, SimTime::ms(1)},
      TraceRecord{TraceOp::kRead, FileId{0}, 0, 16_KiB, SimTime::us(250)},
      TraceRecord{TraceOp::kRead, FileId{0}, 16_KiB, 16_KiB, SimTime::zero()},
      TraceRecord{TraceOp::kWrite, FileId{7}, 4_KiB, 8_KiB, SimTime::zero()},
      TraceRecord{TraceOp::kClose, FileId{0}, 0, 0, SimTime::zero()},
      TraceRecord{TraceOp::kDelete, FileId{7}, 0, 0, SimTime::ns(1)},
  };
  t.processes.push_back(std::move(p1));
  t.processes.push_back(ProcessTrace{ProcId{5}, NodeId{0}, {}});  // empty
  return t;
}

TEST(Varint, RoundTripEdgeValues) {
  using namespace wire;
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 300,
                                 (1ULL << 32) - 1,
                                 1ULL << 32,
                                 (1ULL << 63) - 1,
                                 ~0ULL};
  for (std::uint64_t v : cases) {
    std::string buf;
    put_varint(buf, v);
    ASSERT_LE(buf.size(), kMaxVarintBytes);
    const auto* p = reinterpret_cast<const unsigned char*>(buf.data());
    const auto* end = p + buf.size();
    EXPECT_EQ(get_varint(&p, end), v);
    EXPECT_EQ(p, end);
  }
}

TEST(Varint, SignedRoundTrip) {
  using namespace wire;
  const std::int64_t cases[] = {0, -1, 1, -64, 64, -1'000'000'000,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t v : cases) {
    std::string buf;
    put_svarint(buf, v);
    const auto* p = reinterpret_cast<const unsigned char*>(buf.data());
    EXPECT_EQ(get_svarint(&p, p + buf.size()), v);
  }
}

TEST(BinaryRoundTrip, SampleAndEmpty) {
  EXPECT_EQ(binary_round_trip(sample()), sample());
  EXPECT_EQ(binary_round_trip(Trace{}), Trace{});
}

// The heart of the property wall: every golden fuzzer scenario round-trips
// through both formats, and the two loads agree with each other.
TEST(BinaryRoundTrip, AllGoldenScenariosBothFormats) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const Trace t = generate_scenario(seed).trace;
    const Trace from_binary = binary_round_trip(t);
    const Trace from_text = text_round_trip(t);
    EXPECT_EQ(from_binary, t) << "binary, seed " << seed;
    EXPECT_EQ(from_text, t) << "text, seed " << seed;
    EXPECT_EQ(from_binary, from_text) << "cross-format, seed " << seed;
  }
}

TEST(BinaryRoundTrip, QuickScaleCharismaAndSprite) {
  CharismaParams cp;
  cp.scale = 0.1;
  const Trace charisma = generate_charisma(cp);
  EXPECT_EQ(binary_round_trip(charisma), charisma);
  EXPECT_EQ(text_round_trip(charisma), charisma);

  SpriteParams sp;
  sp.scale = 0.05;
  const Trace sprite = generate_sprite(sp);
  EXPECT_EQ(binary_round_trip(sprite), sprite);
  EXPECT_EQ(text_round_trip(sprite), sprite);
}

TEST(BinaryRoundTrip, ChampsimIngestSurvivesSerialization) {
  std::stringstream in(
      "1, 100, 0x1000, 0x400100, 1\n"
      "2, 250, 0x1040, 0x400104, 0\n"
      "LOAD 0x203000\n"
      "STORE 0x203040\n");
  ChampsimIngestOptions opts;
  opts.nodes = 2;
  const Trace t = ingest_champsim(in, opts);
  EXPECT_EQ(binary_round_trip(t), t);
  EXPECT_EQ(text_round_trip(t), t);
}

TEST(BinaryRoundTrip, MetaMatchesTrace) {
  const Trace t = generate_scenario(11).trace;
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_binary_trace(ss, t);
  BinaryTraceSource src(std::make_unique<std::stringstream>(
      ss.str(), std::ios::in | std::ios::binary));
  const TraceMeta& m = src.meta();
  EXPECT_EQ(m.block_size, t.block_size);
  EXPECT_EQ(m.serialize_per_node, t.serialize_per_node);
  EXPECT_EQ(m.files, t.files);
  EXPECT_EQ(m.total_records, t.total_records());
  EXPECT_EQ(m.total_io_ops, t.total_io_ops());
  EXPECT_EQ(m.node_span(), t.node_span());
  ASSERT_EQ(m.processes.size(), t.processes.size());
  for (std::size_t i = 0; i < m.processes.size(); ++i) {
    EXPECT_EQ(m.processes[i].pid, t.processes[i].pid);
    EXPECT_EQ(m.processes[i].node, t.processes[i].node);
    EXPECT_EQ(m.processes[i].records, t.processes[i].records.size());
  }
}

// Streaming binary replay must be bit-exact with in-memory replay: the
// RunResult fingerprints (which cover every metric the figures use) agree
// for all 32 golden scenarios under both file systems.
TEST(StreamingReplay, BitExactWithInMemoryOnGoldenCorpus) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const Scenario s = generate_scenario(seed);
    std::stringstream image(std::ios::in | std::ios::out | std::ios::binary);
    save_binary_trace(image, s.trace);
    for (FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
      const RunConfig cfg = scenario_config(s, fs);
      const std::uint64_t expected =
          hash_run_result(run_simulation(s.trace, cfg));
      BinaryTraceSource src(
          std::make_unique<std::stringstream>(image.str(),
                                              std::ios::in | std::ios::binary),
          /*chunk_bytes=*/512);  // force many refills
      EXPECT_EQ(hash_run_result(run_simulation(src, cfg)), expected)
          << "seed " << seed << " fs " << to_string(fs);
    }
  }
}

// Chunk size is an implementation knob, never a semantic one.
TEST(StreamingReplay, ChunkSizeIndependent) {
  const Scenario s = generate_scenario(5);
  std::stringstream image(std::ios::in | std::ios::out | std::ios::binary);
  save_binary_trace(image, s.trace);
  const RunConfig cfg = scenario_config(s, FsKind::kPafs);
  const std::uint64_t expected = hash_run_result(run_simulation(s.trace, cfg));
  for (std::size_t chunk :
       {std::size_t{1}, std::size_t{64}, std::size_t{4096}, std::size_t{1} << 20}) {
    BinaryTraceSource src(
        std::make_unique<std::stringstream>(image.str(),
                                            std::ios::in | std::ios::binary),
        chunk);
    EXPECT_EQ(hash_run_result(run_simulation(src, cfg)), expected)
        << "chunk " << chunk;
  }
}

// A source supports re-opening streams (the informed pre-pass needs it).
TEST(StreamingReplay, InformedHintsWorkThroughStreaming) {
  Scenario s = generate_scenario(9);
  s.algorithm = "Informed";
  std::stringstream image(std::ios::in | std::ios::out | std::ios::binary);
  save_binary_trace(image, s.trace);
  const RunConfig cfg = scenario_config(s, FsKind::kPafs);
  const std::uint64_t expected = hash_run_result(run_simulation(s.trace, cfg));
  BinaryTraceSource src(std::make_unique<std::stringstream>(
      image.str(), std::ios::in | std::ios::binary));
  EXPECT_EQ(hash_run_result(run_simulation(src, cfg)), expected);
}

}  // namespace
}  // namespace lap
