#include "disk/disk_array.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lap {
namespace {

DiskConfig cfg() {
  return DiskConfig{8_KiB, Bandwidth::mb_per_s(10), SimTime::ms(10.5),
                    SimTime::ms(12.5)};
}

TEST(DiskArray, StripingIsDeterministic) {
  Engine eng;
  DiskArray arr(eng, cfg(), 16);
  const BlockKey key{FileId{3}, 17};
  EXPECT_EQ(arr.disk_id_for(key), arr.disk_id_for(key));
}

TEST(DiskArray, ConsecutiveBlocksHitConsecutiveDisks) {
  Engine eng;
  DiskArray arr(eng, cfg(), 16);
  const auto d0 = raw(arr.disk_id_for(BlockKey{FileId{5}, 0}));
  const auto d1 = raw(arr.disk_id_for(BlockKey{FileId{5}, 1}));
  EXPECT_EQ((d0 + 1) % 16, d1);
}

TEST(DiskArray, FilesStartOnDifferentDisks) {
  Engine eng;
  DiskArray arr(eng, cfg(), 16);
  std::vector<int> start_counts(16, 0);
  for (std::uint32_t f = 0; f < 256; ++f) {
    ++start_counts[raw(arr.disk_id_for(BlockKey{FileId{f}, 0}))];
  }
  // A perfectly skewed placement would put all 256 starts on one disk; a
  // hashed placement spreads them (expected 16 per disk).
  for (int c : start_counts) EXPECT_LT(c, 48);
}

TEST(DiskArray, OneFileUsesAllSpindles) {
  Engine eng;
  DiskArray arr(eng, cfg(), 8);
  std::vector<bool> used(8, false);
  for (std::uint32_t b = 0; b < 8; ++b) {
    used[raw(arr.disk_id_for(BlockKey{FileId{1}, b}))] = true;
  }
  for (bool u : used) EXPECT_TRUE(u);
}

TEST(DiskArray, AggregateStats) {
  Engine eng;
  DiskArray arr(eng, cfg(), 4);
  for (std::uint32_t b = 0; b < 10; ++b) {
    (void)arr.read(BlockKey{FileId{1}, b}, prio::kDemand);
    (void)arr.write(BlockKey{FileId{2}, b}, prio::kSync);
  }
  eng.run();
  const DiskStats total = arr.total_stats();
  EXPECT_EQ(total.block_reads, 10u);
  EXPECT_EQ(total.block_writes, 10u);
}

TEST(DiskArray, ResetStats) {
  Engine eng;
  DiskArray arr(eng, cfg(), 2);
  (void)arr.read(BlockKey{FileId{1}, 0}, prio::kDemand);
  eng.run();
  arr.reset_stats();
  EXPECT_EQ(arr.total_stats().accesses(), 0u);
}

TEST(DiskArray, BoostViaOpRef) {
  Engine eng;
  DiskArray arr(eng, cfg(), 1);
  (void)arr.read(BlockKey{FileId{1}, 0}, prio::kDemand);  // occupies the disk
  DiskOpRef ref;
  (void)arr.read(BlockKey{FileId{1}, 1}, prio::kPrefetch, &ref);
  ref.boost(prio::kDemand);
  eng.run();
  EXPECT_EQ(arr.total_stats().boosts, 1u);
}

TEST(DiskOpRef, DefaultIsInertNoop) {
  DiskOpRef ref;
  ref.boost(prio::kDemand);  // must not crash
}

}  // namespace
}  // namespace lap
