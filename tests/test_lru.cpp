#include "cache/lru.hpp"

#include <gtest/gtest.h>

#include <string>

namespace lap {
namespace {

TEST(LruList, PopBackReturnsLeastRecent) {
  LruList<int> lru;
  lru.push_front(1);
  lru.push_front(2);
  lru.push_front(3);
  EXPECT_EQ(lru.pop_back(), 1);
  EXPECT_EQ(lru.pop_back(), 2);
  EXPECT_EQ(lru.pop_back(), 3);
  EXPECT_EQ(lru.pop_back(), std::nullopt);
}

TEST(LruList, TouchMovesToFront) {
  LruList<int> lru;
  lru.push_front(1);
  lru.push_front(2);
  lru.push_front(3);
  lru.touch(1);
  EXPECT_EQ(lru.pop_back(), 2);
  EXPECT_EQ(lru.pop_back(), 3);
  EXPECT_EQ(lru.pop_back(), 1);
}

TEST(LruList, EraseRemovesArbitraryKey) {
  LruList<int> lru;
  lru.push_front(1);
  lru.push_front(2);
  lru.push_front(3);
  EXPECT_TRUE(lru.erase(2));
  EXPECT_FALSE(lru.erase(2));
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.pop_back(), 1);
  EXPECT_EQ(lru.pop_back(), 3);
}

TEST(LruList, BackPeeksWithoutRemoving) {
  LruList<int> lru;
  EXPECT_EQ(lru.back(), std::nullopt);
  lru.push_front(7);
  EXPECT_EQ(lru.back(), 7);
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruList, ContainsAndSize) {
  LruList<std::string> lru;
  EXPECT_TRUE(lru.empty());
  lru.push_front("a");
  EXPECT_TRUE(lru.contains("a"));
  EXPECT_FALSE(lru.contains("b"));
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruList, DuplicatePushIsRejected) {
  LruList<int> lru;
  lru.push_front(1);
  EXPECT_DEATH(lru.push_front(1), "Precondition");
}

TEST(LruList, TouchOfMissingKeyIsRejected) {
  LruList<int> lru;
  EXPECT_DEATH(lru.touch(9), "Precondition");
}

}  // namespace
}  // namespace lap
