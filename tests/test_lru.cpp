#include "cache/lru.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <random>
#include <string>
#include <vector>

namespace lap {
namespace {

TEST(LruList, PopBackReturnsLeastRecent) {
  LruList<int> lru;
  lru.push_front(1);
  lru.push_front(2);
  lru.push_front(3);
  EXPECT_EQ(lru.pop_back(), 1);
  EXPECT_EQ(lru.pop_back(), 2);
  EXPECT_EQ(lru.pop_back(), 3);
  EXPECT_EQ(lru.pop_back(), std::nullopt);
}

TEST(LruList, TouchMovesToFront) {
  LruList<int> lru;
  lru.push_front(1);
  lru.push_front(2);
  lru.push_front(3);
  lru.touch(1);
  EXPECT_EQ(lru.pop_back(), 2);
  EXPECT_EQ(lru.pop_back(), 3);
  EXPECT_EQ(lru.pop_back(), 1);
}

TEST(LruList, EraseRemovesArbitraryKey) {
  LruList<int> lru;
  lru.push_front(1);
  lru.push_front(2);
  lru.push_front(3);
  EXPECT_TRUE(lru.erase(2));
  EXPECT_FALSE(lru.erase(2));
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.pop_back(), 1);
  EXPECT_EQ(lru.pop_back(), 3);
}

TEST(LruList, BackPeeksWithoutRemoving) {
  LruList<int> lru;
  EXPECT_EQ(lru.back(), std::nullopt);
  lru.push_front(7);
  EXPECT_EQ(lru.back(), 7);
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruList, ContainsAndSize) {
  LruList<std::string> lru;
  EXPECT_TRUE(lru.empty());
  lru.push_front("a");
  EXPECT_TRUE(lru.contains("a"));
  EXPECT_FALSE(lru.contains("b"));
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruList, DuplicatePushIsRejected) {
  LruList<int> lru;
  lru.push_front(1);
  EXPECT_DEATH(lru.push_front(1), "Precondition");
}

TEST(LruList, TouchOfMissingKeyIsRejected) {
  LruList<int> lru;
  EXPECT_DEATH(lru.touch(9), "Precondition");
}

// Reference model: the textbook std::list-based LRU the intrusive array
// version replaced.  Every operation must agree, including the full
// recency order (checked by draining).
class ModelLru {
 public:
  void push_front(int key) { order_.push_front(key); }
  void touch(int key) {
    auto it = std::find(order_.begin(), order_.end(), key);
    order_.splice(order_.begin(), order_, it);
  }
  std::optional<int> pop_back() {
    if (order_.empty()) return std::nullopt;
    int key = order_.back();
    order_.pop_back();
    return key;
  }
  [[nodiscard]] std::optional<int> back() const {
    if (order_.empty()) return std::nullopt;
    return order_.back();
  }
  bool erase(int key) {
    auto it = std::find(order_.begin(), order_.end(), key);
    if (it == order_.end()) return false;
    order_.erase(it);
    return true;
  }
  [[nodiscard]] bool contains(int key) const {
    return std::find(order_.begin(), order_.end(), key) != order_.end();
  }
  [[nodiscard]] std::size_t size() const { return order_.size(); }

 private:
  std::list<int> order_;  // front = most recent
};

TEST(LruList, MatchesListModelUnderRandomChurn) {
  LruList<int> lru;
  ModelLru model;
  std::mt19937_64 rng(42);
  for (int step = 0; step < 100'000; ++step) {
    const int key = static_cast<int>(rng() % 64);  // small space → churn
    switch (rng() % 5) {
      case 0:
        if (!model.contains(key)) {
          model.push_front(key);
          lru.push_front(key);
        }
        break;
      case 1:
        if (model.contains(key)) {
          model.touch(key);
          lru.touch(key);
        }
        break;
      case 2:
        ASSERT_EQ(lru.pop_back(), model.pop_back());
        break;
      case 3:
        ASSERT_EQ(lru.erase(key), model.erase(key));
        break;
      case 4:
        ASSERT_EQ(lru.contains(key), model.contains(key));
        ASSERT_EQ(lru.back(), model.back());
        break;
    }
    ASSERT_EQ(lru.size(), model.size());
  }
  // Drain: the complete recency order must match.
  while (auto key = model.pop_back()) ASSERT_EQ(lru.pop_back(), key);
  EXPECT_TRUE(lru.empty());
}

}  // namespace
}  // namespace lap
