// Byte-identity golden tests for the `.lapt` fixtures under tests/data/.
//
// The committed fixture bytes pin the wire format: if an innocent-looking
// change to the writer shifts even one byte, these tests fail and force a
// conscious decision — either revert, or bump wire::kVersion and regenerate
// the fixtures (see DESIGN.md §11's versioning policy).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "check/scenario.hpp"
#include "trace/io/binary_io.hpp"
#include "trace/io/format.hpp"

namespace lap {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(LAP_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string serialize(const Trace& t) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_binary_trace(ss, t);
  return ss.str();
}

/// The trace behind tests/data/mini.lapt.  Keep in sync with
/// tests/data/README.md — regenerating the fixture means re-running the
/// recipe there, not editing bytes.
Trace mini_trace() {
  Trace t;
  t.block_size = 8_KiB;
  t.serialize_per_node = false;
  t.files = {FileInfo{FileId{0}, 64_KiB}, FileInfo{FileId{1}, 16_KiB}};
  ProcessTrace p0{ProcId{0}, NodeId{0}, {}};
  p0.records = {
      TraceRecord{TraceOp::kOpen, FileId{0}, 0, 0, SimTime::zero()},
      TraceRecord{TraceOp::kRead, FileId{0}, 0, 16_KiB, SimTime::us(50)},
      TraceRecord{TraceOp::kRead, FileId{0}, 16_KiB, 16_KiB, SimTime::us(50)},
      TraceRecord{TraceOp::kClose, FileId{0}, 0, 0, SimTime::zero()},
  };
  ProcessTrace p1{ProcId{1}, NodeId{1}, {}};
  p1.records = {
      TraceRecord{TraceOp::kWrite, FileId{1}, 0, 8_KiB, SimTime::ms(1)},
      TraceRecord{TraceOp::kRead, FileId{1}, 0, 8_KiB, SimTime::zero()},
  };
  t.processes.push_back(std::move(p0));
  t.processes.push_back(std::move(p1));
  return t;
}

TEST(GoldenFixture, MiniIsByteIdentical) {
  const std::string on_disk = read_file(fixture_path("mini.lapt"));
  EXPECT_EQ(on_disk, serialize(mini_trace()));
}

TEST(GoldenFixture, Scenario7IsByteIdentical) {
  const std::string on_disk = read_file(fixture_path("scenario7.lapt"));
  EXPECT_EQ(on_disk, serialize(generate_scenario(7).trace));
}

TEST(GoldenFixture, FixturesLoadBackToTheExpectedTraces) {
  std::stringstream mini(read_file(fixture_path("mini.lapt")),
                         std::ios::in | std::ios::binary);
  EXPECT_EQ(load_binary_trace(mini), mini_trace());
  std::stringstream s7(read_file(fixture_path("scenario7.lapt")),
                       std::ios::in | std::ios::binary);
  EXPECT_EQ(load_binary_trace(s7), generate_scenario(7).trace);
}

TEST(GoldenFixture, FixturesStartWithTheMagic) {
  for (const char* name : {"mini.lapt", "scenario7.lapt"}) {
    const std::string bytes = read_file(fixture_path(name));
    ASSERT_GE(bytes.size(), wire::kHeaderBytes) << name;
    EXPECT_EQ(bytes.compare(0, 4, "LAPT"), 0) << name;
  }
}

}  // namespace
}  // namespace lap
