#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"

namespace lap {
namespace {

NetConfig pm_net() {
  NetConfig c;
  c.local_port_startup = SimTime::us(2);
  c.remote_port_startup = SimTime::us(10);
  c.local_copy_startup = SimTime::us(1);
  c.remote_copy_startup = SimTime::us(5);
  c.memory_bw = Bandwidth::mb_per_s(500);
  c.network_bw = Bandwidth::mb_per_s(200);
  return c;
}

SimTask wait_for(SimFuture<Done> fut, Engine& eng, SimTime& done_at) {
  co_await fut;
  done_at = eng.now();
}

TEST(Network, MessageLatencies) {
  Engine eng;
  Network net(eng, pm_net(), 4);
  EXPECT_EQ(net.message_latency(NodeId{0}, NodeId{0}), SimTime::us(2));
  EXPECT_EQ(net.message_latency(NodeId{0}, NodeId{1}), SimTime::us(10));
}

TEST(Network, CopyLatencies) {
  Engine eng;
  Network net(eng, pm_net(), 4);
  // Local: 1 us + 8 KiB / 500 MB/s = 1 + 16.384 us.
  EXPECT_NEAR(net.copy_latency(NodeId{2}, NodeId{2}, 8_KiB).micros(), 17.384,
              0.01);
  // Remote: 5 us + 8 KiB / 200 MB/s = 5 + 40.96 us.
  EXPECT_NEAR(net.copy_latency(NodeId{2}, NodeId{3}, 8_KiB).micros(), 45.96,
              0.01);
}

TEST(Network, MessageResolvesAfterLatency) {
  Engine eng;
  Network net(eng, pm_net(), 4);
  SimTime done_at;
  wait_for(net.message(NodeId{0}, NodeId{1}), eng, done_at);
  eng.run();
  EXPECT_EQ(done_at, SimTime::us(10));
}

TEST(Network, RemoteCopiesSerializeOnSenderNic) {
  Engine eng;
  NetConfig cfg = pm_net();
  cfg.model_contention = true;
  Network net(eng, cfg, 4);
  SimTime first, second;
  wait_for(net.copy(NodeId{0}, NodeId{1}, 8_KiB), eng, first);
  wait_for(net.copy(NodeId{0}, NodeId{2}, 8_KiB), eng, second);
  eng.run();
  const double one = net.copy_latency(NodeId{0}, NodeId{1}, 8_KiB).micros();
  EXPECT_NEAR(first.micros(), one, 0.01);
  EXPECT_NEAR(second.micros(), 2 * one, 0.01);  // queued behind the first
}

TEST(Network, ContentionDisabledAllowsParallelCopies) {
  Engine eng;
  NetConfig cfg = pm_net();
  cfg.model_contention = false;
  Network net(eng, cfg, 4);
  SimTime first, second;
  wait_for(net.copy(NodeId{0}, NodeId{1}, 8_KiB), eng, first);
  wait_for(net.copy(NodeId{0}, NodeId{2}, 8_KiB), eng, second);
  eng.run();
  EXPECT_EQ(first, second);
}

TEST(Network, LocalCopiesDoNotUseTheNic) {
  Engine eng;
  Network net(eng, pm_net(), 4);
  SimTime remote_done, local_done;
  wait_for(net.copy(NodeId{0}, NodeId{1}, 8_KiB), eng, remote_done);
  wait_for(net.copy(NodeId{0}, NodeId{0}, 8_KiB), eng, local_done);
  eng.run();
  // The local copy is not delayed by the concurrent remote transfer.
  EXPECT_NEAR(local_done.micros(), 17.384, 0.01);
}

TEST(Network, StatsAccumulate) {
  Engine eng;
  Network net(eng, pm_net(), 4);
  (void)net.message(NodeId{0}, NodeId{1});
  (void)net.copy(NodeId{0}, NodeId{1}, 8_KiB);
  (void)net.copy(NodeId{1}, NodeId{1}, 4_KiB);
  eng.run();
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().transfers, 2u);
  EXPECT_EQ(net.stats().bytes_moved, 8_KiB + 4_KiB);
}

}  // namespace
}  // namespace lap
