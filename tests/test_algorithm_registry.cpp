#include "core/algorithm_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lap {
namespace {

TEST(AlgorithmSpec, ParseNp) {
  const auto s = AlgorithmSpec::parse("NP");
  EXPECT_EQ(s.kind, AlgorithmSpec::Kind::kNone);
  EXPECT_FALSE(s.prefetching());
}

TEST(AlgorithmSpec, ParseOba) {
  const auto s = AlgorithmSpec::parse("OBA");
  EXPECT_EQ(s.kind, AlgorithmSpec::Kind::kOba);
  EXPECT_FALSE(s.aggressive);
  EXPECT_TRUE(s.prefetching());
}

TEST(AlgorithmSpec, ParseLinearAggressiveOba) {
  const auto s = AlgorithmSpec::parse("Ln_Agr_OBA");
  EXPECT_TRUE(s.aggressive);
  EXPECT_EQ(s.max_outstanding, 1u);
  EXPECT_TRUE(s.linear());
}

TEST(AlgorithmSpec, ParseIsPpmOrders) {
  EXPECT_EQ(AlgorithmSpec::parse("IS_PPM:1").order, 1);
  EXPECT_EQ(AlgorithmSpec::parse("IS_PPM:3").order, 3);
  EXPECT_EQ(AlgorithmSpec::parse("Ln_Agr_IS_PPM:3").order, 3);
  EXPECT_EQ(AlgorithmSpec::parse("IS_PPM").order, 1);  // default order
}

TEST(AlgorithmSpec, ParseNonLinearAggressive) {
  const auto s = AlgorithmSpec::parse("Agr_IS_PPM:2");
  EXPECT_TRUE(s.aggressive);
  EXPECT_EQ(s.max_outstanding, AlgorithmSpec::kUnlimited);
  EXPECT_FALSE(s.linear());
}

TEST(AlgorithmSpec, NameRoundTrip) {
  for (const char* name :
       {"NP", "OBA", "Ln_Agr_OBA", "Agr_OBA", "IS_PPM:1", "IS_PPM:3",
        "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3", "Agr_IS_PPM:2"}) {
    EXPECT_EQ(AlgorithmSpec::parse(name).name(), name);
  }
}

TEST(AlgorithmSpec, RejectsJunk) {
  EXPECT_THROW(AlgorithmSpec::parse("LRU"), std::invalid_argument);
  EXPECT_THROW(AlgorithmSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(AlgorithmSpec::parse("IS_PPM:0"), std::invalid_argument);
}

TEST(AlgorithmSpec, PaperSetMatchesTheFigures) {
  const auto set = AlgorithmSpec::paper_set();
  ASSERT_EQ(set.size(), 7u);
  EXPECT_EQ(set[0].name(), "NP");
  EXPECT_EQ(set[1].name(), "OBA");
  EXPECT_EQ(set[2].name(), "Ln_Agr_OBA");
  EXPECT_EQ(set[3].name(), "IS_PPM:1");
  EXPECT_EQ(set[4].name(), "Ln_Agr_IS_PPM:1");
  EXPECT_EQ(set[5].name(), "IS_PPM:3");
  EXPECT_EQ(set[6].name(), "Ln_Agr_IS_PPM:3");
}

}  // namespace
}  // namespace lap
