#include "core/algorithm_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lap {
namespace {

TEST(AlgorithmSpec, ParseNp) {
  const auto s = AlgorithmSpec::parse("NP");
  EXPECT_EQ(s.kind, AlgorithmSpec::Kind::kNone);
  EXPECT_FALSE(s.prefetching());
}

TEST(AlgorithmSpec, ParseOba) {
  const auto s = AlgorithmSpec::parse("OBA");
  EXPECT_EQ(s.kind, AlgorithmSpec::Kind::kOba);
  EXPECT_FALSE(s.aggressive);
  EXPECT_TRUE(s.prefetching());
}

TEST(AlgorithmSpec, ParseLinearAggressiveOba) {
  const auto s = AlgorithmSpec::parse("Ln_Agr_OBA");
  EXPECT_TRUE(s.aggressive);
  EXPECT_EQ(s.max_outstanding, 1u);
  EXPECT_TRUE(s.linear());
}

TEST(AlgorithmSpec, ParseIsPpmOrders) {
  EXPECT_EQ(AlgorithmSpec::parse("IS_PPM:1").order, 1);
  EXPECT_EQ(AlgorithmSpec::parse("IS_PPM:3").order, 3);
  EXPECT_EQ(AlgorithmSpec::parse("Ln_Agr_IS_PPM:3").order, 3);
  EXPECT_EQ(AlgorithmSpec::parse("IS_PPM").order, 1);  // default order
}

TEST(AlgorithmSpec, ParseNonLinearAggressive) {
  const auto s = AlgorithmSpec::parse("Agr_IS_PPM:2");
  EXPECT_TRUE(s.aggressive);
  EXPECT_EQ(s.max_outstanding, AlgorithmSpec::kUnlimited);
  EXPECT_FALSE(s.linear());
}

TEST(AlgorithmSpec, NameRoundTrip) {
  for (const char* name :
       {"NP", "OBA", "Ln_Agr_OBA", "Agr_OBA", "IS_PPM:1", "IS_PPM:3",
        "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3", "Agr_IS_PPM:2", "BO:1", "BO:2",
        "BO:16", "Fb_Agr_OBA", "Fb_Agr_IS_PPM:1", "Fb_Agr_IS_PPM:3",
        "Fb_Agr_VK_PPM:1", "Dg2_Agr_OBA", "Dg4_Agr_IS_PPM:2",
        "Dg8_Agr_VK_PPM:1"}) {
    EXPECT_EQ(AlgorithmSpec::parse(name).name(), name);
  }
}

TEST(AlgorithmSpec, ParseFeedback) {
  const auto s = AlgorithmSpec::parse("Fb_Agr_IS_PPM:2");
  EXPECT_EQ(s.kind, AlgorithmSpec::Kind::kIsPpm);
  EXPECT_EQ(s.order, 2);
  EXPECT_TRUE(s.aggressive);
  EXPECT_TRUE(s.feedback);
  EXPECT_EQ(s.max_outstanding, 1u);  // the floor the throttle starts at
  EXPECT_FALSE(s.linear());          // the degree floats, so not linear
  EXPECT_FALSE(AlgorithmSpec::parse("Fb_Agr_VK_PPM:1").oba_fallback);
}

TEST(AlgorithmSpec, ParseFixedDegree) {
  const auto s = AlgorithmSpec::parse("Dg4_Agr_IS_PPM:2");
  EXPECT_EQ(s.kind, AlgorithmSpec::Kind::kIsPpm);
  EXPECT_EQ(s.order, 2);
  EXPECT_TRUE(s.aggressive);
  EXPECT_FALSE(s.feedback);
  EXPECT_EQ(s.max_outstanding, 4u);
  EXPECT_FALSE(s.linear());
  EXPECT_EQ(AlgorithmSpec::parse("Dg2_Agr_OBA").max_outstanding, 2u);
}

TEST(AlgorithmSpec, ParseBestOffset) {
  const auto s = AlgorithmSpec::parse("BO:4");
  EXPECT_EQ(s.kind, AlgorithmSpec::Kind::kBestOffset);
  EXPECT_EQ(s.order, 4);  // order carries the prefetch degree for BO
  EXPECT_FALSE(s.aggressive);
  EXPECT_FALSE(s.oba_fallback);
  EXPECT_TRUE(s.prefetching());
  EXPECT_EQ(AlgorithmSpec::parse("BO").name(), "BO:1");  // default degree
}

TEST(AlgorithmSpec, RejectsJunk) {
  EXPECT_THROW(AlgorithmSpec::parse("LRU"), std::invalid_argument);
  EXPECT_THROW(AlgorithmSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(AlgorithmSpec::parse("IS_PPM:0"), std::invalid_argument);
  EXPECT_THROW(AlgorithmSpec::parse("Fb_Agr_LRU"), std::invalid_argument);
  EXPECT_THROW(AlgorithmSpec::parse("Dg1_Agr_OBA"), std::invalid_argument);
  EXPECT_THROW(AlgorithmSpec::parse("Dg4_Agr_LRU"), std::invalid_argument);
  EXPECT_THROW(AlgorithmSpec::parse("BOgus"), std::invalid_argument);
  EXPECT_THROW(AlgorithmSpec::parse("BO:0"), std::invalid_argument);
}

TEST(AlgorithmSpec, PaperSetMatchesTheFigures) {
  const auto set = AlgorithmSpec::paper_set();
  ASSERT_EQ(set.size(), 7u);
  EXPECT_EQ(set[0].name(), "NP");
  EXPECT_EQ(set[1].name(), "OBA");
  EXPECT_EQ(set[2].name(), "Ln_Agr_OBA");
  EXPECT_EQ(set[3].name(), "IS_PPM:1");
  EXPECT_EQ(set[4].name(), "Ln_Agr_IS_PPM:1");
  EXPECT_EQ(set[5].name(), "IS_PPM:3");
  EXPECT_EQ(set[6].name(), "Ln_Agr_IS_PPM:3");
}

}  // namespace
}  // namespace lap
