// Fixed-seed fuzz smoke: the 200 scenarios CI checks on every push (the
// nightly tier runs 10k+ from a fresh seed via the lap_check binary).  Every
// scenario replays under PAFS and xFS, untraced and oracle-traced, with all
// invariant and differential checks on.
#include <gtest/gtest.h>

#include "check/differential.hpp"
#include "check/scenario.hpp"

namespace lap {
namespace {

TEST(FuzzSmoke, TwoHundredFixedSeeds) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const CheckReport report = run_checked(generate_scenario(seed));
    ASSERT_TRUE(report.ok()) << report.summary();
  }
}

}  // namespace
}  // namespace lap
