#include "core/oba.hpp"

#include <gtest/gtest.h>

namespace lap {
namespace {

TEST(Oba, NothingBeforeFirstRequest) {
  ObaPredictor oba;
  EXPECT_FALSE(oba.predict_next().has_value());
}

TEST(Oba, PredictsBlockAfterRequestEnd) {
  ObaPredictor oba;
  oba.on_request(10, 4);  // blocks 10..13
  ASSERT_TRUE(oba.predict_next().has_value());
  EXPECT_EQ(*oba.predict_next(), 14);
}

TEST(Oba, FollowsTheFilePointer) {
  ObaPredictor oba;
  oba.on_request(0, 1);
  EXPECT_EQ(*oba.predict_next(), 1);
  oba.on_request(100, 2);  // a seek: prediction follows
  EXPECT_EQ(*oba.predict_next(), 102);
}

}  // namespace
}  // namespace lap
