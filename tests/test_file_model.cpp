#include "fs/common/file_model.hpp"

#include <gtest/gtest.h>

namespace lap {
namespace {

TEST(FileModel, AddAndQuery) {
  FileModel fm(8_KiB);
  fm.add_file(FileId{1}, 20_KiB);
  EXPECT_TRUE(fm.exists(FileId{1}));
  EXPECT_EQ(fm.size(FileId{1}), 20_KiB);
  EXPECT_EQ(fm.blocks(FileId{1}), 3u);  // ceil(20/8)
  EXPECT_FALSE(fm.exists(FileId{2}));
  EXPECT_EQ(fm.blocks(FileId{2}), 0u);
}

TEST(FileModel, RangeMapsBytesToBlocks) {
  FileModel fm(8_KiB);
  fm.add_file(FileId{1}, 80_KiB);  // blocks 0..9
  const BlockRange r = fm.range(FileId{1}, 20_KiB, 20_KiB);
  EXPECT_EQ(r.first, 2u);  // bytes 20K..40K touch blocks 2..4
  EXPECT_EQ(r.count, 3u);
}

TEST(FileModel, RangeSingleByte) {
  FileModel fm(8_KiB);
  fm.add_file(FileId{1}, 80_KiB);
  const BlockRange r = fm.range(FileId{1}, 8_KiB, 1);
  EXPECT_EQ(r.first, 1u);
  EXPECT_EQ(r.count, 1u);
}

TEST(FileModel, RangeTwoBytesAcrossBlockBoundary) {
  // The paper: "If a given operation only requests 2 bytes but from two
  // different blocks, we assume that it was a two block request."
  FileModel fm(8_KiB);
  fm.add_file(FileId{1}, 80_KiB);
  const BlockRange r = fm.range(FileId{1}, 8_KiB - 1, 2);
  EXPECT_EQ(r.first, 0u);
  EXPECT_EQ(r.count, 2u);
}

TEST(FileModel, RangeClipsToFileSize) {
  FileModel fm(8_KiB);
  fm.add_file(FileId{1}, 24_KiB);
  const BlockRange r = fm.range(FileId{1}, 16_KiB, 100_KiB);
  EXPECT_EQ(r.first, 2u);
  EXPECT_EQ(r.count, 1u);
  const BlockRange beyond = fm.range(FileId{1}, 24_KiB, 8_KiB);
  EXPECT_EQ(beyond.count, 0u);
}

TEST(FileModel, ExtendGrowsFile) {
  FileModel fm(8_KiB);
  fm.add_file(FileId{1}, 8_KiB);
  fm.extend(FileId{1}, 16_KiB, 8_KiB);
  EXPECT_EQ(fm.size(FileId{1}), 24_KiB);
  fm.extend(FileId{1}, 0, 1);  // never shrinks
  EXPECT_EQ(fm.size(FileId{1}), 24_KiB);
}

TEST(FileModel, ExtendCreatesUnknownFile) {
  FileModel fm(8_KiB);
  fm.extend(FileId{9}, 0, 16_KiB);
  EXPECT_TRUE(fm.exists(FileId{9}));
  EXPECT_EQ(fm.blocks(FileId{9}), 2u);
}

TEST(FileModel, RemoveForgetsFile) {
  FileModel fm(8_KiB);
  fm.add_file(FileId{1}, 8_KiB);
  fm.remove(FileId{1});
  EXPECT_FALSE(fm.exists(FileId{1}));
  EXPECT_EQ(fm.range(FileId{1}, 0, 8_KiB).count, 0u);
}

TEST(FileModel, LoadFromTrace) {
  Trace t;
  t.block_size = 8_KiB;
  t.files = {FileInfo{FileId{0}, 16_KiB}, FileInfo{FileId{1}, 8_KiB}};
  FileModel fm(t.block_size);
  fm.load(t);
  EXPECT_EQ(fm.file_count(), 2u);
  EXPECT_EQ(fm.blocks(FileId{0}), 2u);
}

}  // namespace
}  // namespace lap
