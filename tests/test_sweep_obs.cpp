// Per-run observability in sweep mode: the sink_factory hands each grid
// point a private TraceSink, and observing a run must not change it — a
// traced sweep's results are bit-identical to an untraced one's.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>

#include "check/differential.hpp"
#include "driver/sweep.hpp"
#include "obs/trace_event.hpp"
#include "trace/charisma_gen.hpp"

namespace lap {
namespace {

// Consuming sink: counts events instead of rendering JSON.  Thread-safe via
// the atomics because different runs' sinks are distinct objects but share
// these counters.
class CountingSink final : public TraceSink {
 public:
  CountingSink(std::atomic<std::uint64_t>* events,
               std::atomic<std::uint64_t>* closes)
      : events_(events), closes_(closes) {}

  void name_process(std::uint32_t, std::string_view) override {}
  void name_thread(std::uint32_t, std::uint32_t, std::string_view) override {}
  void instant(const char*, const char*, TraceTrack, SimTime,
               TraceArgs) override {
    events_->fetch_add(1, std::memory_order_relaxed);
  }
  void complete(const char*, const char*, TraceTrack, SimTime, SimTime,
                TraceArgs) override {
    events_->fetch_add(1, std::memory_order_relaxed);
  }
  void counter(const char*, SimTime, double) override {}
  void close() override { closes_->fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t>* events_;
  std::atomic<std::uint64_t>* closes_;
};

TEST(SweepObs, TracedSweepEqualsUntracedTwin) {
  CharismaParams p;
  p.scale = 0.15;
  const Trace trace = generate_charisma(p);

  RunConfig base;
  base.machine = MachineConfig::pm();
  SweepSpec spec;
  spec.cache_sizes = {1_MiB, 4_MiB};
  spec.algorithms = {AlgorithmSpec::parse("NP"),
                     AlgorithmSpec::parse("Ln_Agr_IS_PPM:1")};
  const auto untraced = run_sweep(trace, base, spec, /*threads=*/4);

  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> closes{0};
  spec.sink_factory = [&](const RunConfig&) {
    return std::make_unique<CountingSink>(&events, &closes);
  };
  const auto traced = run_sweep(trace, base, spec, /*threads=*/4);

  ASSERT_EQ(traced.size(), untraced.size());
  for (std::size_t i = 0; i < traced.size(); ++i) {
    const auto diffs = diff_run_results(untraced[i], traced[i], "twin");
    EXPECT_TRUE(diffs.empty()) << diffs.front();
  }
  EXPECT_GT(events.load(), 0u);
  // Every grid point's private sink was closed when its run finished.
  EXPECT_EQ(closes.load(), traced.size());
}

TEST(SweepObs, FactoryMayDeclineRuns) {
  CharismaParams p;
  p.scale = 0.1;
  const Trace trace = generate_charisma(p);
  RunConfig base;
  base.machine = MachineConfig::pm();
  SweepSpec spec;
  spec.cache_sizes = {1_MiB};
  spec.algorithms = {AlgorithmSpec::parse("NP"),
                     AlgorithmSpec::parse("OBA")};
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> closes{0};
  spec.sink_factory =
      [&](const RunConfig& cfg) -> std::unique_ptr<TraceSink> {
    if (cfg.algorithm.kind == AlgorithmSpec::Kind::kNone) return nullptr;
    return std::make_unique<CountingSink>(&events, &closes);
  };
  const auto results = run_sweep(trace, base, spec, /*threads=*/2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(closes.load(), 1u);  // only the OBA run was traced
  EXPECT_GT(events.load(), 0u);
}

}  // namespace
}  // namespace lap
