// TraceSink: document validity, span nesting, metadata dedup, closed-sink
// behaviour, and a whole-simulation trace carrying every subsystem's events.
#include "obs/trace_event.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "driver/simulation.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "trace/charisma_gen.hpp"

namespace lap {
namespace {

const JsonValue& events_of(const JsonValue& doc) {
  const JsonValue* evs = doc.find("traceEvents");
  EXPECT_NE(evs, nullptr);
  EXPECT_TRUE(evs->is_array());
  return *evs;
}

TEST(TraceEvent, EmitsValidJson) {
  std::ostringstream os;
  TraceSink sink(os);
  sink.name_process(1, "node 0");
  sink.name_thread(1, 1, "fs");
  sink.instant("cat", "marker", tracks::node_fs(NodeId{0}), SimTime::ms(1),
               {{"a", 1}});
  sink.complete("cat", "span", tracks::node_fs(NodeId{0}), SimTime::ms(1),
                SimTime::ms(2), {{"b", 2.5}, {"c", "x"}});
  sink.counter("q", SimTime::ms(3), 7.0);
  sink.close();

  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue& evs = events_of(*doc);
  ASSERT_EQ(evs.array.size(), 5u);
  EXPECT_EQ(sink.events_written(), 5u);

  // The instant is thread-scoped and carries its args.
  const JsonValue& inst = evs.array[2];
  EXPECT_EQ(inst.find("ph")->string, "i");
  EXPECT_EQ(inst.find("s")->string, "t");
  EXPECT_EQ(inst.find("args")->find("a")->number, 1.0);

  // The complete span has microsecond ts/dur.
  const JsonValue& span = evs.array[3];
  EXPECT_EQ(span.find("ph")->string, "X");
  EXPECT_DOUBLE_EQ(span.find("ts")->number, 1000.0);
  EXPECT_DOUBLE_EQ(span.find("dur")->number, 2000.0);
  EXPECT_EQ(span.find("args")->find("c")->string, "x");

  // The counter lands on the metrics pid with a "value" arg.
  const JsonValue& ctr = evs.array[4];
  EXPECT_EQ(ctr.find("ph")->string, "C");
  EXPECT_EQ(ctr.find("pid")->number, double(tracks::kMetricsPid));
  EXPECT_DOUBLE_EQ(ctr.find("args")->find("value")->number, 7.0);
}

TEST(TraceEvent, MetadataIsDeduplicated) {
  std::ostringstream os;
  TraceSink sink(os);
  sink.name_process(7, "node 6");
  sink.name_process(7, "node 6");
  sink.name_thread(7, 2, "net");
  sink.name_thread(7, 2, "net");
  sink.close();
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(events_of(*doc).array.size(), 2u);
}

TEST(TraceEvent, SpansNestOnOneTrack) {
  // An fs.read span [1ms, 6ms) containing a disk span [2ms, 3ms): Perfetto
  // renders nesting purely from ts/dur containment, so emission order and
  // interval containment are what we guarantee.
  std::ostringstream os;
  TraceSink sink(os);
  const TraceTrack t = tracks::node_fs(NodeId{3});
  sink.complete("fs", "outer", t, SimTime::ms(1), SimTime::ms(5));
  sink.complete("fs", "inner", t, SimTime::ms(2), SimTime::ms(1));
  sink.close();
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue& evs = events_of(*doc);
  ASSERT_EQ(evs.array.size(), 2u);
  const JsonValue& outer = evs.array[0];
  const JsonValue& inner = evs.array[1];
  EXPECT_EQ(outer.find("pid")->number, inner.find("pid")->number);
  EXPECT_EQ(outer.find("tid")->number, inner.find("tid")->number);
  EXPECT_LE(outer.find("ts")->number, inner.find("ts")->number);
  EXPECT_GE(outer.find("ts")->number + outer.find("dur")->number,
            inner.find("ts")->number + inner.find("dur")->number);
}

TEST(TraceEvent, ClosedSinkDropsEvents) {
  std::ostringstream os;
  TraceSink sink(os);
  sink.instant("cat", "kept", tracks::metrics(), SimTime::ms(1));
  sink.close();
  sink.instant("cat", "dropped", tracks::metrics(), SimTime::ms(2));
  sink.counter("dropped", SimTime::ms(2), 1.0);
  EXPECT_EQ(sink.events_written(), 1u);
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(events_of(*doc).array.size(), 1u);
}

TEST(TraceEvent, EscapesNamesAndStringArgs) {
  std::ostringstream os;
  TraceSink sink(os);
  sink.instant("cat", "quote\"back\\slash", tracks::metrics(), SimTime::ms(1),
               {{"k", "line\nbreak"}});
  sink.close();
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue& ev = events_of(*doc).array[0];
  EXPECT_EQ(ev.find("name")->string, "quote\"back\\slash");
  EXPECT_EQ(ev.find("args")->find("k")->string, "line\nbreak");
}

TEST(TraceEvent, WholeSimulationTraceCoversEverySubsystem) {
  CharismaParams p;
  p.scale = 0.25;
  const Trace trace = generate_charisma(p);

  std::ostringstream os;
  TraceSink sink(os);
  CounterRegistry counters;
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.fs = FsKind::kPafs;
  cfg.cache_per_node = 4_MiB;
  cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
  cfg.trace = &sink;
  cfg.counters = &counters;
  const RunResult r = run_simulation(trace, cfg);
  sink.close();
  EXPECT_GT(r.prefetch_issued, 0u);

  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue& evs = events_of(*doc);
  ASSERT_GT(evs.array.size(), 100u);

  std::set<std::string> cats;
  std::set<std::string> phases;
  for (const JsonValue& e : evs.array) {
    if (const JsonValue* c = e.find("cat")) cats.insert(c->string);
    phases.insert(e.find("ph")->string);
  }
  for (const char* cat : {"fs", "net", "disk", "cache", "prefetch"}) {
    EXPECT_TRUE(cats.contains(cat)) << "missing category " << cat;
  }
  for (const char* ph : {"M", "X", "i", "C"}) {
    EXPECT_TRUE(phases.contains(ph)) << "missing phase " << ph;
  }
}

TEST(TraceEvent, TracingDoesNotPerturbTheSimulation) {
  CharismaParams p;
  p.scale = 0.25;
  const Trace trace = generate_charisma(p);
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.fs = FsKind::kXfs;
  cfg.cache_per_node = 4_MiB;
  cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
  const RunResult bare = run_simulation(trace, cfg);

  std::ostringstream os;
  TraceSink sink(os);
  cfg.trace = &sink;
  const RunResult traced = run_simulation(trace, cfg);

  EXPECT_EQ(bare.avg_read_ms, traced.avg_read_ms);
  EXPECT_EQ(bare.disk_accesses, traced.disk_accesses);
  EXPECT_EQ(bare.hit_ratio, traced.hit_ratio);
  EXPECT_EQ(bare.prefetch_issued, traced.prefetch_issued);
  EXPECT_GT(sink.events_written(), 0u);
}

}  // namespace
}  // namespace lap
