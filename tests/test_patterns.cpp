#include "trace/patterns.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lap {
namespace {

std::set<std::uint32_t> touched(const std::vector<BlockRequest>& reqs) {
  std::set<std::uint32_t> blocks;
  for (const BlockRequest& r : reqs) {
    for (std::uint32_t b = 0; b < r.nblocks; ++b) blocks.insert(r.first + b);
  }
  return blocks;
}

TEST(Patterns, SequentialCoversWholeFileOnce) {
  const auto reqs = sequential_pattern(10, 3);
  ASSERT_EQ(reqs.size(), 4u);
  EXPECT_EQ(reqs.back().nblocks, 1u);  // clipped tail
  EXPECT_EQ(touched(reqs).size(), 10u);
}

TEST(Patterns, SequentialSingleRequest) {
  const auto reqs = sequential_pattern(4, 8);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].nblocks, 4u);
}

TEST(Patterns, StridedPositions) {
  const auto reqs = strided_pattern(5, 2, 10, 3);
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0].first, 5u);
  EXPECT_EQ(reqs[1].first, 15u);
  EXPECT_EQ(reqs[2].first, 25u);
  for (const auto& r : reqs) EXPECT_EQ(r.nblocks, 2u);
}

TEST(Patterns, InterleavedUnionCoversFile) {
  constexpr std::uint32_t kProcs = 4, kChunk = 3, kBlocks = 50;
  std::set<std::uint32_t> all;
  for (std::uint32_t rank = 0; rank < kProcs; ++rank) {
    const auto part = touched(interleaved_pattern(rank, kProcs, kChunk, kBlocks));
    for (auto b : part) {
      EXPECT_TRUE(all.insert(b).second) << "block " << b << " touched twice";
    }
  }
  EXPECT_EQ(all.size(), kBlocks);
}

TEST(Patterns, InterleavedRankReadsItsChunksOnly) {
  const auto reqs = interleaved_pattern(1, 3, 2, 20);
  for (const auto& r : reqs) {
    EXPECT_EQ((r.first / 2) % 3, 1u);
  }
}

TEST(Patterns, FirstPartCoversExactlyThePart) {
  const auto reqs = first_part_passes(100, 0.4, 3, 2);
  const auto blocks = touched(reqs);
  EXPECT_EQ(blocks.size(), 40u);
  EXPECT_EQ(*blocks.rbegin(), 39u);  // never beyond the part
}

TEST(Patterns, FirstPartPassesAreStrided) {
  const auto reqs = first_part_passes(100, 0.5, 2, 5);
  // Pass 0 reads chunks 0, 2, 4...; pass 1 reads chunks 1, 3, 5...
  EXPECT_EQ(reqs[0].first, 0u);
  EXPECT_EQ(reqs[1].first, 10u);
}

TEST(Patterns, FirstPartOfTinyFile) {
  const auto reqs = first_part_passes(1, 0.3, 3, 4);
  EXPECT_FALSE(reqs.empty());
  EXPECT_EQ(touched(reqs).size(), 1u);
}

TEST(Patterns, PreconditionsEnforced) {
  EXPECT_DEATH((void)sequential_pattern(10, 0), "Precondition");
  EXPECT_DEATH((void)first_part_passes(10, 0.0, 3, 1), "Precondition");
  EXPECT_DEATH((void)interleaved_pattern(5, 4, 1, 10), "Precondition");
}

}  // namespace
}  // namespace lap
