#include "driver/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lap {
namespace {

RunResult result(const char* algo, Bytes cache, double read_ms) {
  RunResult r;
  r.algorithm = algo;
  r.fs = "PAFS";
  r.cache_per_node = cache;
  r.avg_read_ms = read_ms;
  r.disk_reads = 100;
  r.disk_writes = 50;
  r.disk_accesses = 150;
  r.writes_per_block = 3.5;
  r.hit_ratio = 0.9;
  r.prefetch_issued = 1000;
  r.prefetch_fallback = 10;
  r.misprediction_ratio = 0.25;
  r.sim_duration = SimTime::sec(12);
  return r;
}

SweepSpec two_by_two() {
  SweepSpec spec;
  spec.cache_sizes = {1_MiB, 4_MiB};
  spec.algorithms = {AlgorithmSpec::parse("NP"),
                     AlgorithmSpec::parse("Ln_Agr_OBA")};
  return spec;
}

std::vector<RunResult> two_by_two_results() {
  return {result("NP", 1_MiB, 3.0), result("NP", 4_MiB, 2.5),
          result("Ln_Agr_OBA", 1_MiB, 1.2), result("Ln_Agr_OBA", 4_MiB, 0.9)};
}

TEST(Report, ReadTimeSeriesLaysOutAlgorithmRows) {
  std::ostringstream os;
  print_read_time_series(os, two_by_two(), two_by_two_results());
  const std::string s = os.str();
  EXPECT_NE(s.find("1MB"), std::string::npos);
  EXPECT_NE(s.find("4MB"), std::string::npos);
  EXPECT_NE(s.find("Ln_Agr_OBA"), std::string::npos);
  EXPECT_NE(s.find("0.900"), std::string::npos);
  // NP's row appears before Ln_Agr_OBA's (plot order).
  EXPECT_LT(s.find("NP"), s.find("Ln_Agr_OBA"));
}

TEST(Report, DiskSeriesReportsThousands) {
  std::ostringstream os;
  print_disk_access_series(os, two_by_two(), two_by_two_results());
  const std::string s = os.str();
  EXPECT_NE(s.find("0.1"), std::string::npos);  // 150 accesses = 0.1(5)k
  EXPECT_NE(s.find("disk *writes*"), std::string::npos);
}

TEST(Report, WritesPerBlockTable) {
  std::ostringstream os;
  print_writes_per_block_table(os, two_by_two(), two_by_two_results());
  EXPECT_NE(os.str().find("3.50"), std::string::npos);
}

TEST(Report, HeaderStatesWorkloadAndMachine) {
  std::ostringstream os;
  Trace trace;
  trace.files = {FileInfo{FileId{0}, 8_KiB}};
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  print_experiment_header(os, "Figure X", cfg.machine, trace, cfg);
  const std::string s = os.str();
  EXPECT_NE(s.find("Figure X"), std::string::npos);
  EXPECT_NE(s.find("128 nodes"), std::string::npos);
  EXPECT_NE(s.find("PAFS"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndOneRowPerRun) {
  std::ostringstream os;
  write_results_csv(os, two_by_two_results());
  const std::string s = os.str();
  std::size_t lines = 0;
  for (char c : s) lines += (c == '\n');
  EXPECT_EQ(lines, 5u);  // header + 4 runs
  EXPECT_NE(s.find("fs,algorithm,cache_mb"), std::string::npos);
  EXPECT_NE(s.find("PAFS,NP,1,"), std::string::npos);
  EXPECT_NE(s.find("PAFS,Ln_Agr_OBA,4,"), std::string::npos);
}

TEST(Report, RunSummaryIsOneLine) {
  std::ostringstream os;
  print_run_summary(os, result("IS_PPM:1", 2_MiB, 1.5));
  const std::string s = os.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 1);
  EXPECT_NE(s.find("IS_PPM:1"), std::string::npos);
  EXPECT_NE(s.find("2MB/node"), std::string::npos);
}

TEST(MachineConfig, PaperTable1Values) {
  const MachineConfig pm = MachineConfig::pm();
  EXPECT_EQ(pm.nodes, 128u);
  EXPECT_EQ(pm.disks, 16u);
  EXPECT_EQ(pm.net.remote_port_startup, SimTime::us(10));
  EXPECT_EQ(pm.disk.read_seek, SimTime::ms(10.5));
  const MachineConfig now = MachineConfig::now();
  EXPECT_EQ(now.nodes, 50u);
  EXPECT_EQ(now.disks, 8u);
  EXPECT_EQ(now.net.local_copy_startup, SimTime::us(25));
  EXPECT_NEAR(now.net.network_bw.bytes_per_sec(), 19.4e6, 1.0);
  EXPECT_NE(pm.describe().find("PM"), std::string::npos);
}

}  // namespace
}  // namespace lap
