// Tests of the informed-prefetching upper bound (disclosed future reads).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/prefetch_manager.hpp"
#include "driver/simulation.hpp"
#include "trace/charisma_gen.hpp"

namespace lap {
namespace {

class ScriptedHost final : public PrefetchHost {
 public:
  explicit ScriptedHost(Engine& eng) : eng_(&eng) {}

  [[nodiscard]] bool block_available(BlockKey key) const override {
    return cached.contains(key) || inflight.contains(key);
  }
  SimFuture<Done> prefetch_fetch(BlockKey key, NodeId) override {
    fetches.push_back(key);
    SimPromise<Done> done(*eng_);
    if (block_available(key)) {
      done.set_value(Done{});
      return done.future();
    }
    inflight.insert(key);
    eng_->schedule_in(SimTime::ms(5), [this, key, done] {
      inflight.erase(key);
      cached.insert(key);
      done.set_value(Done{});
    });
    return done.future();
  }
  [[nodiscard]] std::uint32_t file_blocks(FileId file) const override {
    auto it = sizes.find(raw(file));
    return it == sizes.end() ? 0 : it->second;
  }

  Engine* eng_;
  std::set<BlockKey> cached;
  std::set<BlockKey> inflight;
  std::vector<BlockKey> fetches;
  std::map<std::uint32_t, std::uint32_t> sizes;
};

constexpr FileId kF{1};

TEST(HintStream, EmitsHintBlocksInOrder) {
  const std::vector<BlockRequest> hints{{0, 2}, {10, 3}, {4, 1}};
  HintStream s(&hints, 0, 100);
  std::vector<std::uint32_t> blocks;
  while (auto item = s.next()) blocks.push_back(item->block);
  EXPECT_EQ(blocks, (std::vector<std::uint32_t>{0, 1, 10, 11, 12, 4}));
  EXPECT_TRUE(s.exhausted());
}

TEST(HintStream, StartsMidListAndClipsToFile) {
  const std::vector<BlockRequest> hints{{0, 2}, {8, 4}};
  HintStream s(&hints, 1, /*file_blocks=*/10);
  std::vector<std::uint32_t> blocks;
  while (auto item = s.next()) blocks.push_back(item->block);
  EXPECT_EQ(blocks, (std::vector<std::uint32_t>{8, 9}));  // 10, 11 clipped
}

TEST(Informed, PrefetchesUnpredictableJumps) {
  Engine eng;
  ScriptedHost host(eng);
  host.sizes[1] = 100;
  bool stop = false;
  PrefetchManager mgr(eng, AlgorithmSpec::parse("Ln_Informed"), host, &stop);
  // A jumpy access pattern no history-based predictor could know.
  mgr.provide_hints(ProcId{1}, kF, {{0, 1}, {57, 2}, {3, 1}, {88, 1}});
  mgr.on_request(ProcId{1}, NodeId{0}, kF, 0, 1);
  eng.run();
  EXPECT_EQ(host.fetches,
            (std::vector<BlockKey>{{kF, 57}, {kF, 58}, {kF, 3}, {kF, 88}}));
}

TEST(Informed, LinearVariantKeepsOneBlockInFlight) {
  Engine eng;
  ScriptedHost host(eng);
  host.sizes[1] = 100;
  bool stop = false;
  PrefetchManager mgr(eng, AlgorithmSpec::parse("Ln_Informed"), host, &stop);
  std::vector<BlockRequest> hints;
  for (std::uint32_t b = 0; b < 40; b += 2) hints.push_back({b, 2});
  mgr.provide_hints(ProcId{1}, kF, hints);
  mgr.on_request(ProcId{1}, NodeId{0}, kF, 0, 2);
  // After the synchronous part, at most one fetch can be in flight.
  EXPECT_LE(host.inflight.size(), 1u);
  eng.run();
  EXPECT_EQ(host.fetches.size(), 38u);  // everything after the first request
}

TEST(Informed, WindowedVariantKeepsSeveralInFlight) {
  Engine eng;
  ScriptedHost host(eng);
  host.sizes[1] = 100;
  bool stop = false;
  PrefetchManager mgr(eng, AlgorithmSpec::parse("Informed"), host, &stop);
  std::vector<BlockRequest> hints;
  for (std::uint32_t b = 0; b < 40; b += 2) hints.push_back({b, 2});
  mgr.provide_hints(ProcId{1}, kF, hints);
  mgr.on_request(ProcId{1}, NodeId{0}, kF, 0, 2);
  EXPECT_GT(host.inflight.size(), 1u);   // a TIP-style window...
  EXPECT_LE(host.inflight.size(), 16u);  // ...but not a flood
  eng.run();
}

TEST(Informed, CursorTracksConsumedRequests) {
  Engine eng;
  ScriptedHost host(eng);
  host.sizes[1] = 100;
  bool stop = false;
  PrefetchManager mgr(eng, AlgorithmSpec::parse("Ln_Informed"), host, &stop);
  mgr.provide_hints(ProcId{1}, kF, {{0, 1}, {5, 1}, {9, 1}});
  mgr.on_request(ProcId{1}, NodeId{0}, kF, 0, 1);
  eng.run();
  host.fetches.clear();
  host.cached.clear();
  // The second request was already hinted; on a (simulated) mispredicted
  // path the stream restarts from the *remaining* hints only.
  mgr.on_request(ProcId{1}, NodeId{0}, kF, 5, 1);
  eng.run();
  for (const BlockKey& k : host.fetches) EXPECT_EQ(k.index, 9u);
}

TEST(Informed, NoHintsMeansNoPrefetches) {
  Engine eng;
  ScriptedHost host(eng);
  host.sizes[1] = 100;
  bool stop = false;
  PrefetchManager mgr(eng, AlgorithmSpec::parse("Ln_Informed"), host, &stop);
  mgr.on_request(ProcId{1}, NodeId{0}, kF, 0, 2);
  eng.run();
  EXPECT_TRUE(host.fetches.empty());
}

TEST(Informed, NamesRoundTrip) {
  EXPECT_EQ(AlgorithmSpec::parse("Informed").name(), "Informed");
  EXPECT_EQ(AlgorithmSpec::parse("Ln_Informed").name(), "Ln_Informed");
  EXPECT_EQ(AlgorithmSpec::parse("Ln_Informed").max_outstanding, 1u);
}

TEST(InformedSimulation, IsAnUpperBoundOnThePredictors) {
  CharismaParams p;
  p.scale = 0.25;
  const Trace trace = generate_charisma(p);
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.cache_per_node = 4_MiB;
  cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
  const RunResult predicted = run_simulation(trace, cfg);
  cfg.algorithm = AlgorithmSpec::parse("Informed");
  const RunResult informed = run_simulation(trace, cfg);
  // Perfect knowledge with a prefetch window can only do better.
  EXPECT_LE(informed.avg_read_ms, predicted.avg_read_ms * 1.05);
  // Hints are never wrong, but a hinted prefetch can still race a write to
  // the same block: the write's buffer absorbs the demand and the arrival
  // settles as wasted.  Only that sliver is tolerated.
  EXPECT_LT(informed.misprediction_ratio, 0.005);
}

}  // namespace
}  // namespace lap
