// The acceptance test for the oracle itself: a deliberately injected
// linearity bug (a second outstanding prefetch on one file) must be caught,
// and the failing scenario must shrink to a repro a human can read.
#include "check/oracle.hpp"

#include <gtest/gtest.h>

#include <string>

#include "check/differential.hpp"
#include "check/fault_injection.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"

namespace lap {
namespace {

// A workload that reliably makes a linear aggressive algorithm prefetch:
// two processes on separate nodes streaming long sequential reads.
Scenario streaming_scenario() {
  Scenario s;
  s.algorithm = "Ln_Agr_OBA";
  s.nodes = 2;
  s.cache_blocks_per_node = 16;
  s.trace.block_size = 8192;
  s.trace.files.push_back(FileInfo{FileId{0}, 64 * 8192});
  s.trace.files.push_back(FileInfo{FileId{1}, 8 * 8192});  // never touched
  for (std::uint32_t p = 0; p < 2; ++p) {
    ProcessTrace proc;
    proc.pid = ProcId{p + 1};
    proc.node = NodeId{p};
    for (std::uint32_t j = 0; j < 30; ++j) {
      TraceRecord r;
      r.op = TraceOp::kRead;
      r.file = FileId{0};
      r.offset = static_cast<Bytes>((p * 17 + j) % 64) * 8192;
      r.length = 8192;
      r.think = SimTime::us(10);
      proc.records.push_back(r);
    }
    s.trace.processes.push_back(std::move(proc));
  }
  return s;
}

bool has_linearity_violation(const InvariantOracle& oracle) {
  for (const std::string& v : oracle.violations()) {
    if (v.find("linearity") != std::string::npos) return true;
  }
  return false;
}

// Replays `s` with every prefetch.issue event duplicated on its way to the
// oracle — the observable signature of a second outstanding prefetch.
bool injected_bug_is_caught(const Scenario& s) {
  RunConfig cfg = scenario_config(s, FsKind::kPafs);
  InvariantOracle oracle({.spec = cfg.algorithm});
  DoubleIssueInjector injector(oracle);
  cfg.trace = &injector;
  (void)run_simulation(s.trace, cfg);
  oracle.finish();
  return has_linearity_violation(oracle);
}

TEST(InvariantOracle, CleanRunHasNoViolations) {
  const Scenario s = streaming_scenario();
  RunConfig cfg = scenario_config(s, FsKind::kPafs);
  InvariantOracle oracle({.spec = cfg.algorithm});
  cfg.trace = &oracle;
  const RunResult r = run_simulation(s.trace, cfg);
  oracle.finish();
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front();
  // The scenario actually exercised the prefetcher, so the oracle had
  // something to check.
  EXPECT_GT(r.prefetch_issued, 0u);
  EXPECT_GT(oracle.arrived(), 0u);
}

TEST(InvariantOracle, CatchesInjectedDoubleIssue) {
  EXPECT_TRUE(injected_bug_is_caught(streaming_scenario()));
}

TEST(InvariantOracle, InjectedBugShrinksToASmallRepro) {
  const Scenario original = streaming_scenario();
  ASSERT_TRUE(injected_bug_is_caught(original));
  const Scenario small = shrink_scenario(original, injected_bug_is_caught);
  EXPECT_TRUE(injected_bug_is_caught(small));
  // 62 records in, a readable handful out (acceptance bound: <= 20).
  EXPECT_LE(small.total_records(), 20u);
  EXPECT_LT(small.total_records(), original.total_records());
}

TEST(InvariantOracle, ViolationListIsCapped) {
  const Scenario s = streaming_scenario();
  RunConfig cfg = scenario_config(s, FsKind::kPafs);
  InvariantOracle oracle({.spec = cfg.algorithm, .max_violations = 3});
  DoubleIssueInjector injector(oracle);
  cfg.trace = &injector;
  (void)run_simulation(s.trace, cfg);
  oracle.finish();
  EXPECT_FALSE(oracle.ok());
  EXPECT_LE(oracle.violations().size(), 3u);
}

TEST(InvariantOracle, TalliesMatchRunResult) {
  const Scenario s = streaming_scenario();
  RunConfig cfg = scenario_config(s, FsKind::kXfs);
  InvariantOracle oracle({.spec = cfg.algorithm});
  cfg.trace = &oracle;
  const RunResult r = run_simulation(s.trace, cfg);
  oracle.finish();
  EXPECT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.arrived(), r.prefetch_arrived);
  EXPECT_EQ(oracle.used(), r.prefetch_used);
  EXPECT_EQ(oracle.wasted(), r.prefetch_wasted);
  EXPECT_EQ(oracle.arrived(), oracle.used() + oracle.wasted());
}

}  // namespace
}  // namespace lap
