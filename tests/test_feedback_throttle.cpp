// The accuracy-feedback throttle: deterministic degree transitions at the
// unit level, the degree-pinned equivalence that anchors the Fb_Agr_*
// family to the paper's linear limitation, and the sharded differential
// leg proving the throttle's state lives inside its node's domain.
#include "core/feedback_throttle.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "core/prefetch_manager.hpp"
#include "driver/simulation.hpp"
#include "trace/charisma_gen.hpp"
#include "trace/sprite_gen.hpp"

namespace lap {
namespace {

// Small window so each test drives whole decisions in a few calls:
// raise at used/4 >= 75% (used >= 3), clamp at used/4 < 40% (used <= 1).
FeedbackThrottle::Params small() {
  FeedbackThrottle::Params p;
  p.floor = 1;
  p.cap = 4;
  p.window = 4;
  return p;
}

void feed(FeedbackThrottle& t, int used, int wasted) {
  for (int i = 0; i < used; ++i) t.on_used();
  for (int i = 0; i < wasted; ++i) t.on_wasted();
}

TEST(FeedbackThrottle, StartsAtTheFloor) {
  FeedbackThrottle t;
  EXPECT_EQ(t.degree(), 1u);
  EXPECT_EQ(t.peak(), 1u);
  EXPECT_EQ(t.raises(), 0u);
  EXPECT_EQ(t.clamps(), 0u);
}

TEST(FeedbackThrottle, RampsUpOneStepPerAccurateWindow) {
  FeedbackThrottle t(small());
  for (std::uint32_t expect = 2; expect <= 4; ++expect) {
    feed(t, 4, 0);  // a fully-used window
    EXPECT_EQ(t.degree(), expect);
  }
  EXPECT_EQ(t.raises(), 3u);
  EXPECT_EQ(t.peak(), 4u);
}

TEST(FeedbackThrottle, ClampsToTheCapForever) {
  FeedbackThrottle t(small());
  for (int w = 0; w < 10; ++w) feed(t, 4, 0);
  EXPECT_EQ(t.degree(), 4u);   // never above cap
  EXPECT_EQ(t.raises(), 3u);   // saturated windows stop counting as raises
}

TEST(FeedbackThrottle, HalvesOnInaccurateWindows) {
  FeedbackThrottle t(small());
  for (int w = 0; w < 3; ++w) feed(t, 4, 0);  // ramp to 4
  feed(t, 0, 4);
  EXPECT_EQ(t.degree(), 2u);  // multiplicative decrease
  feed(t, 1, 3);              // 25% < 40% still clamps
  EXPECT_EQ(t.degree(), 1u);
  feed(t, 0, 4);
  EXPECT_EQ(t.degree(), 1u);  // never below the floor
  EXPECT_EQ(t.clamps(), 2u);  // the floor window is not a clamp
  EXPECT_EQ(t.peak(), 4u);    // peak remembers the excursion
}

TEST(FeedbackThrottle, HysteresisBandHoldsWithoutFlapping) {
  FeedbackThrottle t(small());
  feed(t, 4, 0);
  ASSERT_EQ(t.degree(), 2u);
  // 50% accuracy sits between clamp (40%) and raise (75%): the degree
  // must hold over many windows, with no raise/clamp churn.
  for (int w = 0; w < 20; ++w) feed(t, 2, 2);
  EXPECT_EQ(t.degree(), 2u);
  EXPECT_EQ(t.raises(), 1u);
  EXPECT_EQ(t.clamps(), 0u);
}

TEST(FeedbackThrottle, ThresholdsAreExactIntegerBoundaries) {
  FeedbackThrottle::Params p;
  p.cap = 8;
  p.window = 32;
  {
    FeedbackThrottle t(p);
    feed(t, 24, 8);  // exactly 75%: raises
    EXPECT_EQ(t.degree(), 2u);
  }
  {
    FeedbackThrottle t(p);
    feed(t, 23, 9);  // just under 75%: holds
    EXPECT_EQ(t.degree(), 1u);
  }
  {
    FeedbackThrottle t(p);
    feed(t, 32, 0);
    feed(t, 13, 19);  // 40.6% >= 40%: holds
    EXPECT_EQ(t.degree(), 2u);
    feed(t, 12, 20);  // 37.5% < 40%: clamps
    EXPECT_EQ(t.degree(), 1u);
  }
}

TEST(FeedbackThrottle, DecisionsOnlyLandOnWindowBoundaries) {
  FeedbackThrottle t(small());
  feed(t, 3, 0);
  EXPECT_EQ(t.degree(), 1u);  // window not yet full
  t.on_used();
  EXPECT_EQ(t.degree(), 2u);  // fourth settlement closes the window
}

TEST(FeedbackThrottle, FloorFollowsTheConfiguredDegree) {
  FeedbackThrottle::Params p;
  p.floor = 3;
  p.cap = 6;
  p.window = 4;
  FeedbackThrottle t(p);
  EXPECT_EQ(t.degree(), 3u);
  feed(t, 0, 4);
  EXPECT_EQ(t.degree(), 3u);  // clamping cannot go under the floor
  feed(t, 4, 0);
  EXPECT_EQ(t.degree(), 4u);
}

// --- PrefetchManager integration -----------------------------------------

class NullHost final : public PrefetchHost {
 public:
  [[nodiscard]] bool block_available(BlockKey) const override { return true; }
  SimFuture<Done> prefetch_fetch(BlockKey, NodeId) override {
    SimPromise<Done> done(*eng_);
    done.set_value(Done{});
    return done.future();
  }
  [[nodiscard]] std::uint32_t file_blocks(FileId) const override { return 64; }
  Engine* eng_ = nullptr;
};

TEST(FeedbackThrottle, ManagerScalesOutstandingWithSettlements) {
  Engine eng;
  NullHost host;
  host.eng_ = &eng;
  bool stop = false;
  PrefetchManager mgr(eng, AlgorithmSpec::parse("Fb_Agr_OBA"), host, &stop);
  EXPECT_EQ(mgr.effective_outstanding(), 1u);  // the linear limitation
  for (int i = 0; i < 32; ++i) mgr.feedback_used();
  EXPECT_EQ(mgr.effective_outstanding(), 2u);
  EXPECT_EQ(mgr.counters().degree_raises, 1u);
  EXPECT_EQ(mgr.counters().degree_peak, 2u);
  for (int i = 0; i < 32; ++i) mgr.feedback_wasted();
  EXPECT_EQ(mgr.effective_outstanding(), 1u);
  EXPECT_EQ(mgr.counters().degree_clamps, 1u);
}

TEST(FeedbackThrottle, SettlementHooksAreInertWithoutFeedback) {
  Engine eng;
  NullHost host;
  host.eng_ = &eng;
  bool stop = false;
  PrefetchManager mgr(eng, AlgorithmSpec::parse("Ln_Agr_OBA"), host, &stop);
  for (int i = 0; i < 100; ++i) mgr.feedback_used();
  EXPECT_EQ(mgr.effective_outstanding(), 1u);
  EXPECT_EQ(mgr.counters().degree_raises, 0u);
  EXPECT_EQ(mgr.counters().degree_peak, 1u);
}

// --- end-to-end equivalence and sharding ---------------------------------

Trace charisma_trace() {
  CharismaParams p;
  p.scale = 0.2;
  return generate_charisma(p);
}

RunConfig base_config(const std::string& algorithm, FsKind fs) {
  RunConfig cfg;
  cfg.machine = MachineConfig::now();
  cfg.fs = fs;
  cfg.cache_per_node = 4_MiB;
  cfg.algorithm = AlgorithmSpec::parse(algorithm);
  return cfg;
}

// The anchor invariant: a feedback run whose cap pins the degree at 1 is
// the linear limitation — bit-exact, on every RunResult field, against
// the corresponding Ln_Agr_* run.  Only the algorithm label may differ.
TEST(FeedbackThrottle, CapOnePinsTheRunToTheLinearLimitation) {
  const Trace trace = charisma_trace();
  for (const FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
    for (const std::string base : {"OBA", "IS_PPM:1", "VK_PPM:1"}) {
      RunConfig fb = base_config("Fb_Agr_" + base, fs);
      fb.algorithm.feedback_cap = 1;  // degree can never leave the floor
      RunConfig ln = base_config("Ln_Agr_" + base, fs);
      RunResult a = run_simulation(trace, fb);
      const RunResult b = run_simulation(trace, ln);
      a.algorithm = b.algorithm;  // the one legitimate difference
      EXPECT_TRUE(diff_run_results(a, b, base).empty())
          << "fs=" << (fs == FsKind::kPafs ? "pafs" : "xfs")
          << " base=" << base;
    }
  }
}

// Throttle state is fed and read only inside the owning node's domain, so
// the sharded engine must reproduce the sequential feedback runs exactly.
TEST(FeedbackThrottle, ShardedRunsAreBitExact) {
  const Trace trace = charisma_trace();
  for (const FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
    for (const std::string alg : {"Fb_Agr_OBA", "Fb_Agr_IS_PPM:1"}) {
      RunConfig cfg = base_config(alg, fs);
      const RunResult seq = run_simulation(trace, cfg);
      for (const int shards : {2, 5}) {
        cfg.shards = shards;
        const RunResult par = run_simulation(trace, cfg);
        EXPECT_TRUE(diff_run_results(par, seq, alg).empty())
            << "fs=" << (fs == FsKind::kPafs ? "pafs" : "xfs")
            << " alg=" << alg << " shards=" << shards;
      }
    }
  }
}

// End-to-end smoke over the whole wiring: a Sprite mix under the
// feedback policy still issues prefetches (the degree probes themselves
// are covered by the manager-level tests above and the metrics probes).
TEST(FeedbackThrottle, FeedbackAlgorithmRunsEndToEnd) {
  SpriteParams p;
  p.scale = 0.15;
  const Trace trace = generate_sprite(p);
  RunConfig cfg = base_config("Fb_Agr_OBA", FsKind::kPafs);
  const RunResult r = run_simulation(trace, cfg);
  EXPECT_GT(r.prefetch_issued, 0u);
}

}  // namespace
}  // namespace lap
