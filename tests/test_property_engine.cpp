// Property sweeps over the simulation kernel: random event schedules fire
// in exact timestamp order, coroutine delay chains accumulate exactly, and
// priority-served resources never invert priorities.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "sim/engine.hpp"
#include "sim/future.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace lap {
namespace {

class RandomSchedules : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSchedules, EventsFireInTimestampOrder) {
  Rng rng(GetParam());
  Engine eng;
  std::vector<std::int64_t> scheduled;
  std::vector<std::int64_t> fired;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t at = rng.uniform_int(0, 10'000);
    scheduled.push_back(at);
    eng.schedule_at(SimTime::us(static_cast<double>(at)),
                    [&fired, at] { fired.push_back(at); });
  }
  eng.run();
  ASSERT_EQ(fired.size(), scheduled.size());
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  std::sort(scheduled.begin(), scheduled.end());
  EXPECT_EQ(fired, scheduled);
}

TEST_P(RandomSchedules, NestedSchedulingStaysOrdered) {
  Rng rng(GetParam());
  Engine eng;
  std::vector<SimTime> fired;
  // Each event schedules a follow-up at a random future offset.
  for (int i = 0; i < 50; ++i) {
    const auto at = SimTime::us(static_cast<double>(rng.uniform_int(0, 1000)));
    eng.schedule_at(at, [&eng, &fired, &rng] {
      fired.push_back(eng.now());
      eng.schedule_in(SimTime::us(static_cast<double>(rng.uniform_int(1, 100))),
                      [&eng, &fired] { fired.push_back(eng.now()); });
    });
  }
  eng.run();
  EXPECT_EQ(fired.size(), 100u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST_P(RandomSchedules, DelayChainsAccumulateExactly) {
  Rng rng(GetParam());
  Engine eng;
  std::int64_t expected_us = 0;
  std::vector<std::int64_t> delays;
  for (int i = 0; i < 64; ++i) {
    const std::int64_t d = rng.uniform_int(0, 500);
    delays.push_back(d);
    expected_us += d;
  }
  bool done = false;
  [](Engine& e, const std::vector<std::int64_t>& ds, bool& flag) -> SimTask {
    for (std::int64_t d : ds) {
      co_await e.delay(SimTime::us(static_cast<double>(d)));
    }
    flag = true;
  }(eng, delays, done);
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(eng.now(), SimTime::us(static_cast<double>(expected_us)));
}

TEST_P(RandomSchedules, ResourceNeverInvertsPriorities) {
  Rng rng(GetParam());
  Engine eng;
  Resource res(eng);
  struct Served {
    int priority;
    SimTime at;
  };
  std::vector<Served> served;
  for (int i = 0; i < 60; ++i) {
    const int priority = static_cast<int>(rng.uniform_int(0, 2));
    [](Engine& e, Resource& r, int prio, std::vector<Served>& out) -> SimTask {
      auto guard = co_await r.scoped(prio);
      out.push_back(Served{prio, e.now()});
      co_await e.delay(SimTime::us(10));
    }(eng, res, priority, served);
  }
  eng.run();
  ASSERT_EQ(served.size(), 60u);
  // Once the initial arrivals queue up, no lower-urgency waiter may be
  // served while a more urgent one was already waiting.  With all 60
  // submitted at t=0, the service order after the first must be sorted by
  // priority (FIFO within equal priority is checked by the unit tests).
  for (std::size_t i = 2; i < served.size(); ++i) {
    EXPECT_LE(served[i - 1].priority, served[i].priority);
  }
}

TEST_P(RandomSchedules, PromisePairsAlwaysRendezvous) {
  Rng rng(GetParam());
  Engine eng;
  int resumed = 0;
  const int pairs = 100;
  for (int i = 0; i < pairs; ++i) {
    SimPromise<int> p(eng);
    [](SimFuture<int> f, int& count) -> SimTask {
      (void)co_await f;
      ++count;
    }(p.future(), resumed);
    eng.schedule_in(SimTime::us(static_cast<double>(rng.uniform_int(0, 1000))),
                    [p, i] { p.set_value(i); });
  }
  eng.run();
  EXPECT_EQ(resumed, pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchedules,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class TraceRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceRoundTrip, RandomTracesSurviveSaveLoad) {
  Rng rng(GetParam());
  Trace t;
  t.block_size = 8_KiB;
  t.serialize_per_node = rng.chance(0.5);
  const int files = static_cast<int>(rng.uniform_int(1, 20));
  for (int f = 0; f < files; ++f) {
    t.files.push_back(FileInfo{
        FileId{static_cast<std::uint32_t>(f)},
        static_cast<Bytes>(rng.uniform_int(1, 1 << 20))});
  }
  const int procs = static_cast<int>(rng.uniform_int(1, 10));
  for (int p = 0; p < procs; ++p) {
    ProcessTrace proc{ProcId{static_cast<std::uint32_t>(p)},
                      NodeId{static_cast<std::uint32_t>(rng.uniform_int(0, 63))},
                      {}};
    const int records = static_cast<int>(rng.uniform_int(0, 50));
    for (int r = 0; r < records; ++r) {
      TraceRecord rec;
      rec.op = static_cast<TraceOp>(rng.uniform_int(0, 4));
      rec.file = FileId{static_cast<std::uint32_t>(rng.uniform_int(0, files - 1))};
      rec.offset = static_cast<Bytes>(rng.uniform_int(0, 1 << 20));
      rec.length = static_cast<Bytes>(rng.uniform_int(0, 1 << 16));
      rec.think = SimTime::ns(rng.uniform_int(0, 1'000'000'000));
      proc.records.push_back(rec);
    }
    t.processes.push_back(std::move(proc));
  }
  std::stringstream ss;
  t.save(ss);
  EXPECT_EQ(Trace::load(ss), t);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTrip,
                         ::testing::Values(100, 200, 300, 400, 500, 600));

}  // namespace
}  // namespace lap
