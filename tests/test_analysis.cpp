#include "trace/analysis.hpp"

#include <gtest/gtest.h>

#include "trace/charisma_gen.hpp"
#include "trace/sprite_gen.hpp"

namespace lap {
namespace {

Trace hand_trace() {
  Trace t;
  t.block_size = 8_KiB;
  t.files = {FileInfo{FileId{0}, 80_KiB}, FileInfo{FileId{1}, 160_KiB},
             FileInfo{FileId{2}, 8_KiB}};
  // Process 0: sequential reads of file 0 (blocks 0-1, 2-3, 4-5).
  ProcessTrace p0{ProcId{0}, NodeId{0}, {}};
  for (Bytes off = 0; off < 48_KiB; off += 16_KiB) {
    p0.records.push_back(
        TraceRecord{TraceOp::kRead, FileId{0}, off, 16_KiB, SimTime::zero()});
  }
  // Process 1: strided reads of file 1 (blocks 0, 4, 8) + a write + delete
  // of file 2.
  ProcessTrace p1{ProcId{1}, NodeId{1}, {}};
  for (Bytes off = 0; off < 3 * 32_KiB; off += 32_KiB) {
    p1.records.push_back(
        TraceRecord{TraceOp::kRead, FileId{1}, off, 8_KiB, SimTime::zero()});
  }
  p1.records.push_back(
      TraceRecord{TraceOp::kWrite, FileId{2}, 0, 8_KiB, SimTime::zero()});
  p1.records.push_back(
      TraceRecord{TraceOp::kDelete, FileId{2}, 0, 0, SimTime::zero()});
  // Process 2: one irregular stream on file 0 (jumps of varying interval).
  ProcessTrace p2{ProcId{2}, NodeId{2}, {}};
  for (Bytes off : {0_KiB, 32_KiB, 40_KiB, 8_KiB}) {
    p2.records.push_back(
        TraceRecord{TraceOp::kRead, FileId{0}, off, 8_KiB, SimTime::zero()});
  }
  t.processes = {p0, p1, p2};
  return t;
}

TEST(Analysis, CountsOpsAndBytes) {
  const TraceProfile p = profile_trace(hand_trace());
  EXPECT_EQ(p.read_ops, 10u);
  EXPECT_EQ(p.write_ops, 1u);
  EXPECT_EQ(p.bytes_read, 3 * 16_KiB + 3 * 8_KiB + 4 * 8_KiB);
  EXPECT_EQ(p.bytes_written, 8_KiB);
  EXPECT_EQ(p.files_deleted, 1u);
}

TEST(Analysis, ClassifiesStreams) {
  const TraceProfile p = profile_trace(hand_trace());
  EXPECT_EQ(p.stream_counts.at(StreamPattern::kSequential), 1u);
  EXPECT_EQ(p.stream_counts.at(StreamPattern::kStrided), 1u);
  EXPECT_EQ(p.stream_counts.at(StreamPattern::kIrregular), 1u);
  EXPECT_NEAR(p.sequential_share, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(p.strided_share, 1.0 / 3.0, 1e-9);
}

TEST(Analysis, SharingStatistics) {
  const TraceProfile p = profile_trace(hand_trace());
  // File 0 has two readers, file 1 one: 1.5 readers/file, 50% shared.
  EXPECT_NEAR(p.mean_readers_per_file, 1.5, 1e-9);
  EXPECT_NEAR(p.shared_file_share, 0.5, 1e-9);
}

TEST(Analysis, RequestSizeStatistics) {
  const TraceProfile p = profile_trace(hand_trace());
  EXPECT_EQ(p.max_read_blocks, 2u);
  EXPECT_NEAR(p.mean_read_blocks, (3 * 2 + 7 * 1) / 10.0, 1e-9);
  EXPECT_EQ(p.large_read_share, 0.0);
}

TEST(Analysis, EmptyTrace) {
  const TraceProfile p = profile_trace(Trace{});
  EXPECT_EQ(p.read_ops, 0u);
  EXPECT_EQ(p.mean_read_blocks, 0.0);
  EXPECT_EQ(p.shared_file_share, 0.0);
}

TEST(Analysis, PatternNames) {
  EXPECT_STREQ(to_string(StreamPattern::kSequential), "sequential");
  EXPECT_STREQ(to_string(StreamPattern::kStrided), "strided");
  EXPECT_STREQ(to_string(StreamPattern::kIrregular), "irregular");
  EXPECT_STREQ(to_string(StreamPattern::kSingle), "single-request");
}

// The generators must keep the published workload characteristics.
TEST(Analysis, CharismaKeepsItsCharacterisation) {
  CharismaParams params;
  params.scale = 0.5;
  const TraceProfile p = profile_trace(generate_charisma(params));
  // Mostly regular access (sequential + strided dominate), real sharing,
  // and a meaningful share of large requests — the CHARISMA signature.
  EXPECT_GT(p.sequential_share + p.strided_share, 0.75);
  EXPECT_GT(p.large_read_share, 0.1);
  EXPECT_GT(p.shared_file_share, 0.05);
  EXPECT_GT(p.mean_file_blocks, 100.0);  // large files
}

TEST(Analysis, SpriteKeepsItsCharacterisation) {
  SpriteParams params;
  params.scale = 0.4;
  const TraceProfile p = profile_trace(generate_sprite(params));
  EXPECT_LT(p.mean_file_blocks, 32.0);      // small files
  EXPECT_LT(p.large_read_share, 0.05);      // small requests
  EXPECT_GT(p.sequential_share, 0.5);       // mostly whole-file reads
  EXPECT_GT(p.deleted_share, 0.05);         // data dies young
  EXPECT_LT(p.mean_readers_per_file, 6.0);  // little concurrent sharing
}

}  // namespace
}  // namespace lap
