// CounterRegistry: get-or-create identity, probe gauges, trace sampling,
// JSON dump shape, and the engine-driven sampling daemon.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hpp"
#include "obs/trace_event.hpp"
#include "sim/engine.hpp"

namespace lap {
namespace {

TEST(Counters, GetOrCreateReturnsTheSameInstrument) {
  CounterRegistry reg;
  Counter& a = reg.counter("disk.reads");
  a.add(3);
  Counter& b = reg.counter("disk.reads");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.has("disk.reads"));
  EXPECT_FALSE(reg.has("disk.writes"));
}

TEST(Counters, DuplicateNameWithDifferentKindAborts) {
  CounterRegistry reg;
  reg.counter("x");
  EXPECT_DEATH(reg.gauge("x"), "Precondition");
}

TEST(Counters, ProbeGaugeAndFreeze) {
  CounterRegistry reg;
  double level = 4.0;
  Gauge& g = reg.probe("net.queue", [&level] { return level; });
  EXPECT_EQ(g.value(), 4.0);
  level = 9.0;
  EXPECT_EQ(g.value(), 9.0);

  reg.freeze_probes();
  level = 123.0;  // probed variable "dies": frozen value must persist
  EXPECT_EQ(g.value(), 9.0);
}

TEST(Counters, SampleIntoEmitsOneCounterEventPerInstrument) {
  CounterRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(2.5);
  reg.histogram("h").add(10.0);

  std::ostringstream os;
  TraceSink sink(os);
  reg.sample_into(sink, SimTime::ms(7));
  sink.close();

  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* evs = doc->find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_EQ(evs->array.size(), 3u);
  for (const JsonValue& e : evs->array) {
    EXPECT_EQ(e.find("ph")->string, "C");
    EXPECT_DOUBLE_EQ(e.find("ts")->number, 7000.0);
  }
  EXPECT_DOUBLE_EQ(evs->array[0].find("args")->find("value")->number, 5.0);
  EXPECT_DOUBLE_EQ(evs->array[1].find("args")->find("value")->number, 2.5);
  EXPECT_DOUBLE_EQ(evs->array[2].find("args")->find("value")->number, 10.0);
}

TEST(Counters, WriteJsonShape) {
  CounterRegistry reg;
  reg.counter("reads").add(11);
  reg.gauge("depth").set(3.5);
  HistogramStat& h = reg.histogram("latency");
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));

  std::ostringstream os;
  {
    JsonWriter w(os);
    reg.write_json(w);
  }
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->find("reads")->number, 11.0);
  EXPECT_DOUBLE_EQ(doc->find("depth")->number, 3.5);

  const JsonValue* lat = doc->find("latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->find("count")->number, 100.0);
  EXPECT_DOUBLE_EQ(lat->find("mean")->number, 50.5);
  EXPECT_DOUBLE_EQ(lat->find("min")->number, 1.0);
  EXPECT_DOUBLE_EQ(lat->find("max")->number, 100.0);
  // Percentiles come from log-spaced buckets: approximate, but ordered and
  // in range.
  const double p50 = lat->find("p50")->number;
  const double p95 = lat->find("p95")->number;
  const double p99 = lat->find("p99")->number;
  EXPECT_GT(p50, 25.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 110.0);
}

TEST(Counters, EmptyHistogramExportsZeros) {
  // The span collector registers its full histogram set even when a run
  // recorded nothing (no net hops, no disk stages), so the empty-histogram
  // export shape is load-bearing for metrics-JSON consumers.
  CounterRegistry reg;
  reg.histogram("empty");
  std::ostringstream os;
  {
    JsonWriter w(os);
    reg.write_json(w);
  }
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* h = doc->find("empty");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->number, 0.0);
  EXPECT_DOUBLE_EQ(h->find("mean")->number, 0.0);
  EXPECT_DOUBLE_EQ(h->find("min")->number, 0.0);
  EXPECT_DOUBLE_EQ(h->find("max")->number, 0.0);
  EXPECT_DOUBLE_EQ(h->find("p50")->number, 0.0);
  EXPECT_DOUBLE_EQ(h->find("p99")->number, 0.0);
}

TEST(Counters, SingleSamplePercentilesAllLandInItsBucket) {
  CounterRegistry reg;
  HistogramStat& h = reg.histogram("one", 1e-3, 1e5, 96);
  h.add(42.0);
  // With one sample every quantile falls in the same bucket: identical
  // values whose boundary encloses 42.
  const double p50 = h.histogram().quantile(0.50);
  const double p99 = h.histogram().quantile(0.99);
  EXPECT_EQ(p50, p99);
  EXPECT_GE(p50, 42.0);
  EXPECT_LT(p50, 42.0 * 1.3);  // log-bucket width at 96 buckets over 8 decades
  EXPECT_DOUBLE_EQ(h.accumulator().mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.accumulator().min(), 42.0);
  EXPECT_DOUBLE_EQ(h.accumulator().max(), 42.0);
}

TEST(Counters, OutOfRangeSamplesClampToTheEdgeBuckets) {
  CounterRegistry reg;
  HistogramStat& h = reg.histogram("edges", 1.0, 100.0, 8);
  h.add(0.0);     // below lo: underflow bucket
  h.add(1e9);     // above hi: overflow bucket
  h.add(100.0);   // exactly hi: also overflow (buckets are [lo, hi))
  EXPECT_EQ(h.histogram().count(), 3u);
  // Quantiles clamp to the declared range rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.histogram().quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.histogram().quantile(1.0), 100.0);
  // The accumulator still reports the exact extremes.
  EXPECT_DOUBLE_EQ(h.accumulator().min(), 0.0);
  EXPECT_DOUBLE_EQ(h.accumulator().max(), 1e9);
}

TEST(Counters, JsonExportFollowsRegistrationOrderNotInsertionValues) {
  // publish() relies on this: the export order is the registration order,
  // independent of names or which instruments saw data.
  CounterRegistry reg;
  reg.counter("zz.last_name_first_registered").add(1);
  reg.histogram("aa.histogram");
  reg.counter("mm.middle").add(2);
  std::ostringstream os;
  {
    JsonWriter w(os);
    reg.write_json(w);
  }
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->object.size(), 3u);
  EXPECT_EQ(doc->object[0].first, "zz.last_name_first_registered");
  EXPECT_EQ(doc->object[1].first, "aa.histogram");
  EXPECT_EQ(doc->object[2].first, "mm.middle");
}

TEST(Counters, SamplingDaemonFollowsTheStopFlag) {
  Engine eng;
  CounterRegistry reg;
  Counter& c = reg.counter("ticks");
  std::ostringstream os;
  TraceSink sink(os);

  bool stop = false;
  start_counter_sampling(eng, reg, sink, SimTime::ms(10), &stop);
  eng.schedule_at(SimTime::ms(5), [&c] { c.add(); });
  // Raise the flag mid-run: the daemon must observe it and stop rescheduling
  // so the queue drains (this is how run_simulation terminates).
  eng.schedule_at(SimTime::ms(35), [&stop] { stop = true; });
  eng.run();
  sink.close();

  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* evs = doc->find("traceEvents");
  ASSERT_NE(evs, nullptr);
  // Samples at t=10,20,30,40ms; the 40ms tick sees stop==true and does not
  // reschedule.
  ASSERT_EQ(evs->array.size(), 4u);
  EXPECT_DOUBLE_EQ(evs->array[0].find("args")->find("value")->number, 1.0);
  EXPECT_DOUBLE_EQ(evs->array.back().find("ts")->number, 40000.0);
}

}  // namespace
}  // namespace lap
