#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace lap {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    const auto v = r.uniform_int(-5, -1);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(23);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, ChanceExtremes) {
  Rng r(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng r(37);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng r(41);
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[r.weighted_pick(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng r(43);
  int first = 0, rest = 0;
  for (int i = 0; i < 20000; ++i) {
    (r.zipf(100, 1.1) == 0 ? first : rest)++;
  }
  // Rank 0 should dominate any individual other rank by far.
  EXPECT_GT(first, 20000 / 25);
}

TEST(Rng, ZipfStaysInRange) {
  Rng r(47);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(r.zipf(37, 0.9), 37u);
  }
  EXPECT_EQ(r.zipf(1, 1.0), 0u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(53);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace lap
