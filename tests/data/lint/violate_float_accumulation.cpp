// Violates float-accumulation: order-sensitive summation on a hot path.
// lap-lint: path(src/cache/fixture_float_acc.cpp)

double total_latency(const double* xs, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += xs[i];
  return acc;
}
