// Clean fixture: nothing to report.
// lap-lint: path(src/core/fixture_clean.cpp)
#include <cstdint>

std::uint32_t add_one(std::uint32_t v) { return v + 1; }
