// Violates index-parse: truncated declaration (unbalanced brace).
// lap-lint: path(src/core/fixture_truncated.cpp)
struct Dangling {
  int x = 0;
