// Same violations as violate_multi_rule.cpp, but every rule is
// suppressed by a per-file allow() directive — lints clean.
// lap-lint: path(src/core/fixture_suppressed.cpp)
// lap-lint: allow(no-rand, no-wallclock)
#include <chrono>
#include <cstdlib>

int jitter() {
  (void)std::chrono::steady_clock::now();
  return rand();
}
