// Violates domain-confinement: node-owned state written from
// directory-domain code without an Engine::post_at hop.
// lap-lint: path(src/fs/fixture_confine.cpp)
#include <cstdint>

class NodeCache {  // lap-owns: node
 public:
  void bump() { ++hits_; }

 private:
  std::uint64_t hits_ = 0;
};

class Directory {  // lap-owns: directory
 public:
  // lap-runs: directory
  void touch(NodeCache& nc) { nc.hits_ = 0; }
};
