// Violates trace-io-typed-errors: bare throw / abort in trace I/O.
// lap-lint: path(src/trace/io/fixture_errors.cpp)
#include <cstdlib>
#include <stdexcept>

void reject(bool bad) {
  if (bad) throw std::runtime_error("nope");
  std::abort();
}
