// Violates no-wallclock: real time read on a simulation path.
// lap-lint: path(src/sim/fixture_clock.cpp)
#include <chrono>

double now_seconds() {
  const auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
