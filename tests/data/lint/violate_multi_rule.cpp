// Two different rules violated; exercised by the --only filter tests.
// lap-lint: path(src/core/fixture_multi.cpp)
#include <chrono>
#include <cstdlib>

int mix() {
  (void)std::chrono::steady_clock::now();
  return rand();
}
