// Violates container-policy: node-based containers on a hot path.
// lap-lint: path(src/cache/fixture_table.cpp)
#include <cstdint>
#include <map>
#include <unordered_map>

std::unordered_map<std::uint32_t, int> table;
std::map<std::uint32_t, int> ordered;
