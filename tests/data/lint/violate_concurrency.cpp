// Violates concurrency-containment: ad-hoc synchronisation in model code.
// lap-lint: path(src/cache/fixture_sync.cpp)
#include <cstdint>
#include <mutex>

std::mutex table_mu;
thread_local std::uint64_t scratch = 0;

std::uint64_t bump() {
  std::lock_guard lock(table_mu);
  return ++scratch;
}
