// Violates nodiscard-result: result-returning API without [[nodiscard]].
// lap-lint: path(src/trace/io/fixture_api.hpp)
#pragma once

namespace lap {
class Trace;
Trace parse_trace();
[[nodiscard]] Trace load_trace();  // compliant — must NOT be reported
}  // namespace lap
