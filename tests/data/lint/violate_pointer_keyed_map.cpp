// Violates pointer-keyed-map: address-ordered iteration is not
// reproducible across runs.
// lap-lint: path(src/obs/fixture_ptrmap.cpp)
#include <map>

struct Node {};

std::map<Node*, int> order;
