// Robustness input: half of a circular include pair.  The indexer never
// resolves includes, so the cycle must be a non-event — indexed cleanly,
// no loop, no diagnostic.
// lap-lint: path(src/core/circular_a.hpp)
#pragma once
#include "circular_b.hpp"

struct CircA {
  int from_b = 0;
};
