// Robustness input: the other half of the circular include pair.
// lap-lint: path(src/core/circular_b.hpp)
#pragma once
#include "circular_a.hpp"

struct CircB {
  int from_a = 0;
};
