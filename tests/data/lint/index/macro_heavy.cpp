// Robustness input: macro-mangled declarations.  None of these expand,
// so the structural scanner sees junk-shaped statements — it must skip
// them without diagnostics and without crashing.
// lap-lint: path(src/core/macro_heavy.cpp)

#define LAP_DECL(name) struct name##Impl
#define LAP_FIELD(ty, name) ty name = {}
#define LAP_METHOD(ret) ret LAP_CAT(run, __LINE__)

LAP_DECL(Widget) {
  LAP_FIELD(int, count_);
  LAP_METHOD(void)() {}
};

struct RealOne {
  int value = 0;
  LAP_FIELD(long, extra_);
};
