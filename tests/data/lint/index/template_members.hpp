// Robustness input: template member functions, nested template types,
// out-of-line template definitions.  Must index without diagnostics.
// lap-lint: path(src/util/template_members.hpp)
#pragma once
#include <cstdint>
#include <vector>

template <typename K, typename V>
class SmallTable {
 public:
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) fn(keys_[i], vals_[i]);
  }

  template <typename... Args>
  V& emplace(const K& k, Args&&... args);

  std::vector<K> keys_;
  std::vector<V> vals_;
};

template <typename K, typename V>
template <typename... Args>
V& SmallTable<K, V>::emplace(const K& k, Args&&... args) {
  keys_.push_back(k);
  vals_.emplace_back(static_cast<Args&&>(args)...);
  return vals_.back();
}
