// Robustness input: the file ends mid-class (think interrupted write or
// a bad merge).  The indexer must report index-parse, never crash.
// lap-lint: path(src/core/truncated.hpp)
#pragma once

class HalfWritten {
 public:
  int begin_ = 0;
  void method(
