// Violates no-rand: ambient RNG in simulation code.
// lap-lint: path(src/core/fixture_rand.cpp)
#include <cstdlib>
#include <random>

int noise() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}
