// Violates unordered-iteration: range-for over an unordered table.
// lap-lint: path(src/obs/fixture_iter.cpp)
#include <cstdint>
#include <unordered_map>

std::uint64_t total(std::uint64_t seed) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  counts[seed] = 1;
  std::uint64_t sum = 0;
  for (const auto& [k, v] : counts) sum += v;
  return sum;
}
