// allow-next-line suppresses exactly the line below the directive —
// this fixture is clean only because of the line-scoped suppression.
// lap-lint: path(src/core/fixture_next_line.cpp)
#include <cstdlib>

int jitter() {
  // lap-lint: allow-next-line(no-rand)
  return rand();
}
