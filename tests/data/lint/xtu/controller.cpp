// Cross-TU half 2: directory-domain code reaching into the node-owned
// class declared in node_state.hpp.  The indexer joins the two TUs, so
// the write below is flagged without any include resolution at all.
// lap-lint: path(src/fs/xtu_controller.cpp)
#include <cstdint>

class XtuNodeState;

// lap-runs: directory
std::uint64_t drain_all(XtuNodeState& ns) {
  ns.bytes_ = 0;
  return 0;
}
