// Cross-TU half 1: node-owned state, declared in a header.
// lap-lint: path(src/cache/xtu_state.hpp)
#pragma once
#include <cstdint>

class XtuNodeState {  // lap-owns: node
 public:
  void record(std::uint64_t b) { bytes_ += b; }
  std::uint64_t bytes_ = 0;
};
