// Violates include-layering: util (layer 0) reaching up into cache
// (layer 3) — a back-edge in the layer DAG.
// lap-lint: path(src/util/fixture_layering.cpp)
#include "cache/block_store.hpp"

int placeholder = 0;
