// Violates no-iostream-in-header.
// lap-lint: path(src/sim/fixture_log.hpp)
#pragma once

#include <iostream>
