// Violates pointer-ordering: address-derived hashes and orderings.
// lap-lint: path(src/core/fixture_ptr_order.cpp)
#include <cstdint>
#include <functional>

struct Foo {};
std::less<Foo*> cmp;
std::hash<int*> hsh;
std::uint64_t key(Foo* p) { return reinterpret_cast<std::uintptr_t>(p); }
