// Violates transitive-include: std::vector without a direct <vector>.
// lap-lint: path(src/util/fixture_vec.cpp)
#include <cstdint>

std::vector<std::uint32_t> ids();
