// Violates pod-init: uninitialized scalar members of a mail struct.
// lap-lint: path(src/net/fixture_pod.cpp)
#include <cstdint>

struct BlockMail {
  std::uint32_t node;
  std::uint64_t seq = 0;
  bool dirty;
};
