// Violates unordered-iteration: explicit .begin() walk of an unordered
// container (the range-for pattern's sneakier sibling).
// lap-lint: path(src/trace/fixture_ubegin.cpp)
#include <unordered_map>

int first_key(const std::unordered_map<int, int>& m) {
  std::unordered_map<int, int> u = m;
  return u.begin()->first;
}
