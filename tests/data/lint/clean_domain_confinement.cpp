// Same shape as violate_domain_confinement.cpp, but the cross-domain
// write is routed through Engine::post_at — this lints clean.
// lap-lint: path(src/fs/fixture_confine_ok.cpp)
#include <cstdint>

std::uint16_t node_domain(std::uint16_t n) { return n; }

struct Engine {
  template <typename F>
  void post_at(std::uint16_t domain, std::uint64_t at, F fn) { fn(); }
};

class NodeCache {  // lap-owns: node
 public:
  void bump() { ++hits_; }

 private:
  std::uint64_t hits_ = 0;
};

class Directory {  // lap-owns: directory
 public:
  // lap-runs: directory
  void touch(Engine& eng, NodeCache& nc) {
    eng.post_at(node_domain(1), 0, [&nc] { nc.hits_ = 0; });
  }
};
