// Tests of the optional per-node CPU scheduling model (DIMEMAS short-term
// scheduling): co-located processes' compute phases serialise on the node's
// processor.
#include <gtest/gtest.h>

#include "fs/common/client.hpp"

namespace lap {
namespace {

// The runner launches each process in its node's model domain.
void configure_node_domains(Engine& eng, std::uint32_t nodes) {
  DomainMap map;
  map.shards = 1;
  map.shard_of.assign(1 + nodes, 0);
  map.phase_of.assign(1 + nodes, DomainPhase::kModel);
  eng.configure_domains(std::move(map), SimTime::zero());
}

// A file system with zero-cost operations: all time comes from think times.
class NullFs final : public FileSystem {
 public:
  explicit NullFs(Engine& eng) : eng_(&eng) {}

  SimFuture<Done> open(ProcId, NodeId, FileId) override { return now(); }
  SimFuture<Done> close(ProcId, NodeId, FileId) override { return now(); }
  SimFuture<Done> read(ProcId, NodeId, FileId, Bytes, Bytes) override {
    return now();
  }
  SimFuture<Done> write(ProcId, NodeId, FileId, Bytes, Bytes) override {
    return now();
  }
  SimFuture<Done> remove(ProcId, NodeId, FileId) override { return now(); }
  void finalize() override {}
  [[nodiscard]] PrefetchCounters prefetch_counters_total() const override {
    return {};
  }

 private:
  SimFuture<Done> now() {
    SimPromise<Done> done(*eng_);
    done.set_value(Done{});
    return done.future();
  }
  Engine* eng_;
};

Trace colocated_trace() {
  // Two processes on the same node, each: think 10 ms then one read.
  Trace t;
  t.files = {FileInfo{FileId{0}, 8_KiB}};
  for (std::uint32_t pid = 0; pid < 2; ++pid) {
    ProcessTrace p{ProcId{pid}, NodeId{0}, {}};
    p.records = {
        TraceRecord{TraceOp::kRead, FileId{0}, 0, 8_KiB, SimTime::ms(10)}};
    t.processes.push_back(std::move(p));
  }
  return t;
}

TEST(CpuContention, OpenModelOverlapsComputePhases) {
  Engine eng;
  configure_node_domains(eng, 1);
  NullFs fs(eng);
  MetricsSet metrics{MetricsSet::Mode::kShared, 1};
  const Trace t = colocated_trace();
  WorkloadRunner runner(eng, fs, metrics, t, /*cpu_contention=*/false);
  runner.start({});
  eng.run();
  EXPECT_EQ(eng.now(), SimTime::ms(10));  // both thinks in parallel
}

TEST(CpuContention, SharedCpuSerializesComputePhases) {
  Engine eng;
  configure_node_domains(eng, 1);
  NullFs fs(eng);
  MetricsSet metrics{MetricsSet::Mode::kShared, 1};
  const Trace t = colocated_trace();
  WorkloadRunner runner(eng, fs, metrics, t, /*cpu_contention=*/true);
  runner.start({});
  eng.run();
  EXPECT_EQ(eng.now(), SimTime::ms(20));  // thinks queue on the one CPU
}

TEST(CpuContention, DifferentNodesStayIndependent) {
  Engine eng;
  configure_node_domains(eng, 2);
  NullFs fs(eng);
  MetricsSet metrics{MetricsSet::Mode::kShared, 2};
  Trace t = colocated_trace();
  t.processes[1].node = NodeId{1};
  WorkloadRunner runner(eng, fs, metrics, t, /*cpu_contention=*/true);
  runner.start({});
  eng.run();
  EXPECT_EQ(eng.now(), SimTime::ms(10));
}

TEST(CpuContention, ZeroThinkNeedsNoCpu) {
  Engine eng;
  configure_node_domains(eng, 1);
  NullFs fs(eng);
  MetricsSet metrics{MetricsSet::Mode::kShared, 1};
  Trace t = colocated_trace();
  for (auto& p : t.processes) p.records[0].think = SimTime::zero();
  WorkloadRunner runner(eng, fs, metrics, t, /*cpu_contention=*/true);
  runner.start({});
  eng.run();
  EXPECT_EQ(eng.now(), SimTime::zero());
}

}  // namespace
}  // namespace lap
