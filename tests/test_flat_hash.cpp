#include "util/flat_hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace lap {
namespace {

TEST(FlatHashMap, InsertFindErase) {
  FlatHashMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  auto [it, inserted] = m.emplace(7u, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, 70);
  EXPECT_FALSE(m.emplace(7u, 71).second);  // duplicate keeps the original
  EXPECT_EQ(m.find(7u)->second, 70);
  EXPECT_TRUE(m.contains(7u));
  EXPECT_FALSE(m.contains(8u));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.erase(7u));
  EXPECT_FALSE(m.erase(7u));
  EXPECT_TRUE(m.empty());
}

TEST(FlatHashMap, OperatorBracketDefaultConstructs) {
  FlatHashMap<std::uint32_t, std::vector<int>> m;
  m[3].push_back(1);
  m[3].push_back(2);
  EXPECT_EQ(m[3].size(), 2u);
  EXPECT_TRUE(m[9].empty());  // created empty
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHashMap, TombstoneSlotIsReused) {
  FlatHashMap<std::uint64_t, int> m;
  m.reserve(64);
  for (std::uint64_t k = 0; k < 32; ++k) m.emplace(k, static_cast<int>(k));
  // Erase and re-insert the same keys: the table must not grow (tombstones
  // are reclaimed by the re-insert probing the same chain).
  for (std::uint64_t k = 0; k < 32; ++k) EXPECT_TRUE(m.erase(k));
  EXPECT_TRUE(m.empty());
  for (std::uint64_t k = 0; k < 32; ++k) m.emplace(k, static_cast<int>(k * 2));
  EXPECT_EQ(m.size(), 32u);
  for (std::uint64_t k = 0; k < 32; ++k) {
    EXPECT_EQ(m.find(k)->second, static_cast<int>(k * 2));
  }
}

TEST(FlatHashMap, EraseByIteratorKeepsOtherEntriesFindable) {
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.emplace(k, static_cast<int>(k));
  for (std::uint64_t k = 0; k < 100; k += 2) {
    auto it = m.find(k);
    ASSERT_NE(it, m.end());
    m.erase(it);
  }
  EXPECT_EQ(m.size(), 50u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(m.contains(k), k % 2 == 1) << k;
  }
}

TEST(FlatHashMap, RehashPreservesContents) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;  // no reserve: force growth
  for (std::uint64_t k = 0; k < 10'000; ++k) m.emplace(k * k, k);
  EXPECT_EQ(m.size(), 10'000u);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    auto it = m.find(k * k);
    ASSERT_NE(it, m.end()) << k;
    EXPECT_EQ(it->second, k);
  }
}

TEST(FlatHashMap, ReserveMakesPointersStableAcrossInserts) {
  FlatHashMap<std::uint64_t, int> m;
  m.reserve(1000);
  m.emplace(0u, 42);
  int* p = &m.find(0u)->second;
  for (std::uint64_t k = 1; k < 1000; ++k) m.emplace(k, static_cast<int>(k));
  // No growth rehash occurred, so the early pointer still points at the
  // same slot.
  EXPECT_EQ(p, &m.find(0u)->second);
  EXPECT_EQ(*p, 42);
}

TEST(FlatHashMap, IterationVisitsEveryLiveEntryOnce) {
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 500; ++k) m.emplace(k, 1);
  for (std::uint64_t k = 0; k < 500; k += 3) m.erase(k);
  std::unordered_map<std::uint64_t, int> seen;
  for (const auto& [k, v] : m) seen[k] += v;
  EXPECT_EQ(seen.size(), m.size());
  for (const auto& [k, v] : seen) {
    EXPECT_EQ(v, 1) << k;
    EXPECT_NE(k % 3, 0u) << k;
  }
}

TEST(FlatHashMap, CopyAndMoveKeepContents) {
  FlatHashMap<std::uint32_t, std::string> m;
  m.emplace(1u, "one");
  m.emplace(2u, "two");
  FlatHashMap<std::uint32_t, std::string> copy = m;
  EXPECT_EQ(copy.find(1u)->second, "one");
  EXPECT_EQ(m.size(), 2u);
  FlatHashMap<std::uint32_t, std::string> moved = std::move(m);
  EXPECT_EQ(moved.find(2u)->second, "two");
  EXPECT_EQ(moved.size(), 2u);
}

TEST(FlatHashMap, MatchesUnorderedMapUnderRandomChurn) {
  FlatHashMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> model;
  std::mt19937_64 rng(20260805);
  for (int step = 0; step < 200'000; ++step) {
    const std::uint64_t key = rng() % 512;  // small space → heavy churn
    switch (rng() % 4) {
      case 0:
      case 1: {  // insert-or-keep
        const std::uint64_t value = rng();
        flat.emplace(key, value);
        model.emplace(key, value);
        break;
      }
      case 2:  // erase
        EXPECT_EQ(flat.erase(key), model.erase(key) > 0);
        break;
      case 3: {  // lookup
        auto fit = flat.find(key);
        auto mit = model.find(key);
        ASSERT_EQ(fit == flat.end(), mit == model.end());
        if (mit != model.end()) {
          EXPECT_EQ(fit->second, mit->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), model.size());
  }
}

TEST(FlatHashSet, InsertEraseContains) {
  FlatHashSet<std::uint32_t> s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_EQ(s.size(), 1u);
  std::size_t visited = 0;
  s.for_each([&](std::uint32_t v) {
    EXPECT_EQ(v, 5u);
    ++visited;
  });
  EXPECT_EQ(visited, 1u);
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace lap
