#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lap {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsForm) {
  auto f = make({"--cache-mb=8", "--algo=NP"});
  EXPECT_EQ(f.get_int("cache-mb", 0), 8);
  EXPECT_EQ(f.get("algo", ""), "NP");
}

TEST(Flags, SpaceForm) {
  auto f = make({"--scale", "0.5"});
  EXPECT_DOUBLE_EQ(f.get_double("scale", 1.0), 0.5);
}

TEST(Flags, BareBoolean) {
  auto f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("quiet", false));
}

TEST(Flags, BooleanValues) {
  auto f = make({"--a=true", "--b=0", "--c=yes", "--d=no"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, Defaults) {
  auto f = make({});
  EXPECT_EQ(f.get("missing", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, Positional) {
  auto f = make({"input.trace", "--x=1", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.trace");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

}  // namespace
}  // namespace lap
