// JsonWriter / parse_json round-trip: the writer's output is exactly what
// the parser accepts, including escapes, nesting, and degenerate numbers.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace lap {
namespace {

TEST(Json, EscapeCoversQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, NumberStaysFiniteAndParseable) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  const auto parsed = parse_json(json_number(0.25));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->number, 0.25);
}

TEST(Json, WriterOutputRoundTripsThroughParser) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.member("s", "he said \"hi\"");
    w.member("i", std::int64_t{-3});
    w.member("u", std::uint64_t{1} << 53);
    w.member("d", 1.5);
    w.member("b", true);
    w.key("n");
    w.value_null();
    w.key("a");
    w.begin_array();
    w.value(std::int64_t{1});
    w.begin_object();
    w.member("k", "v");
    w.end_object();
    w.end_array();
    w.end_object();
  }
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("s")->string, "he said \"hi\"");
  EXPECT_DOUBLE_EQ(doc->find("i")->number, -3.0);
  EXPECT_DOUBLE_EQ(doc->find("u")->number, 9007199254740992.0);
  EXPECT_DOUBLE_EQ(doc->find("d")->number, 1.5);
  EXPECT_TRUE(doc->find("b")->boolean);
  EXPECT_EQ(doc->find("n")->kind, JsonValue::Kind::kNull);
  const JsonValue* a = doc->find("a");
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].find("k")->string, "v");
}

TEST(Json, ParserRejectsMalformedDocuments) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("[1,]").has_value());
  EXPECT_FALSE(parse_json("{\"a\":1} junk").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
}

TEST(Json, FindIsNullSafeOnNonObjects) {
  const auto doc = parse_json("[1,2]");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("x"), nullptr);
}

}  // namespace
}  // namespace lap
