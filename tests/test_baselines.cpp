// Integration tests of the related-work baseline algorithms (VK_PPM and
// WholeFile) through the PrefetchManager and a PAFS run.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/prefetch_manager.hpp"
#include "driver/simulation.hpp"
#include "trace/charisma_gen.hpp"
#include "trace/sprite_gen.hpp"

namespace lap {
namespace {

class RecordingHost final : public PrefetchHost {
 public:
  explicit RecordingHost(Engine& eng) : eng_(&eng) {}

  [[nodiscard]] bool block_available(BlockKey key) const override {
    return cached.contains(key);
  }
  SimFuture<Done> prefetch_fetch(BlockKey key, NodeId) override {
    fetches.push_back(key);
    cached.insert(key);
    SimPromise<Done> done(*eng_);
    done.set_value(Done{});
    return done.future();
  }
  [[nodiscard]] std::uint32_t file_blocks(FileId file) const override {
    auto it = sizes.find(raw(file));
    return it == sizes.end() ? 0 : it->second;
  }

  Engine* eng_;
  std::set<BlockKey> cached;
  std::vector<BlockKey> fetches;
  std::map<std::uint32_t, std::uint32_t> sizes;
};

TEST(VkPpmBaseline, PrefetchesOnlyPreviouslySeenBlocks) {
  Engine eng;
  RecordingHost host(eng);
  host.sizes[1] = 100;
  bool stop = false;
  PrefetchManager mgr(eng, AlgorithmSpec::parse("VK_PPM:1"), host, &stop);
  // First pass: nothing to predict (and no OBA fallback for this baseline).
  for (std::uint32_t b = 0; b < 10; b += 2) {
    mgr.on_request(ProcId{1}, NodeId{0}, FileId{1}, b, 1);
  }
  eng.run();
  EXPECT_TRUE(host.fetches.empty());
  // Second pass re-reads the same blocks: now each step is predictable.
  host.cached.clear();
  for (std::uint32_t b = 0; b < 10; b += 2) {
    mgr.on_request(ProcId{1}, NodeId{0}, FileId{1}, b, 1);
  }
  eng.run();
  EXPECT_FALSE(host.fetches.empty());
  for (const BlockKey& k : host.fetches) {
    EXPECT_EQ(k.index % 2, 0u);  // only blocks that were accessed before
    EXPECT_LT(k.index, 10u);
  }
}

TEST(WholeFileBaseline, FloodsThePredictedFileOnOpen) {
  Engine eng;
  RecordingHost host(eng);
  host.sizes[1] = 4;
  host.sizes[2] = 6;
  bool stop = false;
  PrefetchManager mgr(eng, AlgorithmSpec::parse("WholeFile"), host, &stop);
  // Teach the open sequence 1 -> 2.
  mgr.on_open(ProcId{1}, NodeId{0}, FileId{1});
  mgr.on_open(ProcId{1}, NodeId{0}, FileId{2});
  EXPECT_TRUE(host.fetches.empty());  // nothing known yet at these opens
  // Re-open file 1: file 2 is predicted and prefetched whole.
  mgr.on_open(ProcId{2}, NodeId{0}, FileId{1});
  eng.run();
  ASSERT_EQ(host.fetches.size(), 6u);
  for (std::uint32_t b = 0; b < 6; ++b) {
    EXPECT_EQ(host.fetches[b], (BlockKey{FileId{2}, b}));
  }
}

TEST(WholeFileBaseline, IgnoresReadsAndWrites) {
  Engine eng;
  RecordingHost host(eng);
  host.sizes[1] = 10;
  bool stop = false;
  PrefetchManager mgr(eng, AlgorithmSpec::parse("WholeFile"), host, &stop);
  mgr.on_request(ProcId{1}, NodeId{0}, FileId{1}, 0, 4);
  eng.run();
  EXPECT_TRUE(host.fetches.empty());
}

TEST(BaselineNames, ParseAndRoundTrip) {
  for (const char* name : {"VK_PPM:1", "VK_PPM:2", "Ln_Agr_VK_PPM:1",
                           "Agr_VK_PPM:1", "WholeFile"}) {
    EXPECT_EQ(AlgorithmSpec::parse(name).name(), name);
  }
  EXPECT_FALSE(AlgorithmSpec::parse("VK_PPM:1").oba_fallback);
  EXPECT_FALSE(AlgorithmSpec::parse("WholeFile").oba_fallback);
}

TEST(BaselineSimulation, VkPpmRunsEndToEnd) {
  CharismaParams p;
  p.scale = 0.2;
  const Trace trace = generate_charisma(p);
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.cache_per_node = 4_MiB;
  cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_VK_PPM:1");
  const RunResult r = run_simulation(trace, cfg);
  EXPECT_GT(r.reads, 0u);
  EXPECT_GT(r.prefetch_issued, 0u);
  EXPECT_EQ(r.algorithm, "Ln_Agr_VK_PPM:1");
}

TEST(BaselineSimulation, WholeFileRunsEndToEnd) {
  SpriteParams p;
  p.scale = 0.15;
  const Trace trace = generate_sprite(p);
  RunConfig cfg;
  cfg.machine = MachineConfig::now();
  cfg.cache_per_node = 4_MiB;
  cfg.algorithm = AlgorithmSpec::parse("WholeFile");
  const RunResult r = run_simulation(trace, cfg);
  EXPECT_GT(r.reads, 0u);
  // Sessions re-open popular files, so the open-sequence model fires.
  EXPECT_GT(r.prefetch_issued, 0u);
}

TEST(BaselineSimulation, IsPpmBeatsVkPpmOnStridedFiles) {
  // The paper's argument for interval modelling: strided patterns touch
  // blocks the block-sequence model has never seen.
  CharismaParams p;
  p.scale = 0.25;
  p.private_strided_frac = 1.0;
  p.shared_strided_frac = 0.0;
  p.first_part_frac = 0.0;
  p.random_frac = 0.0;
  p.reread_frac = 0.0;
  p.writer_frac = 0.0;
  p.temp_file_frac = 0.0;
  const Trace trace = generate_charisma(p);
  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.cache_per_node = 8_MiB;
  cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
  const RunResult is_ppm = run_simulation(trace, cfg);
  cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_VK_PPM:1");
  const RunResult vk = run_simulation(trace, cfg);
  EXPECT_LT(is_ppm.avg_read_ms, vk.avg_read_ms);
}

}  // namespace
}  // namespace lap
