#include "disk/disk.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"

namespace lap {
namespace {

DiskConfig paper_disk() {
  // Table 1: 8 KB blocks, 10 MB/s, 10.5/12.5 ms seeks.
  return DiskConfig{8_KiB, Bandwidth::mb_per_s(10), SimTime::ms(10.5),
                    SimTime::ms(12.5)};
}

SimTask track(SimFuture<Done> fut, Engine& eng, int id,
              std::vector<std::pair<int, SimTime>>& done) {
  co_await fut;
  done.emplace_back(id, eng.now());
}

TEST(Disk, ServiceTimesMatchTable1) {
  Engine eng;
  Disk d(eng, paper_disk());
  // 10.5 ms + 8192B / 10MB/s = 10.5 + 0.8192 ms.
  EXPECT_NEAR(d.read_service_time().millis(), 11.3192, 1e-3);
  EXPECT_NEAR(d.write_service_time().millis(), 13.3192, 1e-3);
}

TEST(Disk, SingleReadCompletesAfterServiceTime) {
  Engine eng;
  Disk d(eng, paper_disk());
  std::vector<std::pair<int, SimTime>> done;
  track(d.read_block(prio::kDemand), eng, 0, done);
  eng.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].second, d.read_service_time());
}

TEST(Disk, QueueSerializesOperations) {
  Engine eng;
  Disk d(eng, paper_disk());
  std::vector<std::pair<int, SimTime>> done;
  track(d.read_block(prio::kDemand), eng, 0, done);
  track(d.read_block(prio::kDemand), eng, 1, done);
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1].second, 2 * d.read_service_time());
}

TEST(Disk, DemandOvertakesQueuedPrefetch) {
  Engine eng;
  Disk d(eng, paper_disk());
  std::vector<std::pair<int, SimTime>> done;
  track(d.read_block(prio::kDemand), eng, 0, done);    // in service
  track(d.read_block(prio::kPrefetch), eng, 1, done);  // queued
  track(d.read_block(prio::kDemand), eng, 2, done);    // queued, urgent
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].first, 0);
  EXPECT_EQ(done[1].first, 2);
  EXPECT_EQ(done[2].first, 1);
}

TEST(Disk, BoostPromotesQueuedPrefetch) {
  Engine eng;
  Disk d(eng, paper_disk());
  std::vector<std::pair<int, SimTime>> done;
  track(d.read_block(prio::kDemand), eng, 0, done);  // in service
  Disk::OpId prefetch_id = 0;
  track(d.read_block(prio::kPrefetch, &prefetch_id), eng, 1, done);
  track(d.read_block(prio::kSync), eng, 2, done);  // would overtake prefetch
  d.boost(prefetch_id, prio::kDemand);             // ...unless boosted
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[1].first, 1);  // boosted prefetch served before the sync op
  EXPECT_EQ(done[2].first, 2);
  EXPECT_EQ(d.stats().boosts, 1u);
}

TEST(Disk, BoostKeepsSubmissionOrderWithinPriority) {
  Engine eng;
  Disk d(eng, paper_disk());
  std::vector<std::pair<int, SimTime>> done;
  track(d.read_block(prio::kDemand), eng, 0, done);  // in service
  Disk::OpId a = 0;
  track(d.read_block(prio::kPrefetch, &a), eng, 1, done);
  track(d.read_block(prio::kDemand), eng, 2, done);
  d.boost(a, prio::kDemand);
  eng.run();
  // The boosted op was submitted before op 2, so it keeps that order.
  EXPECT_EQ(done[1].first, 1);
  EXPECT_EQ(done[2].first, 2);
}

TEST(Disk, BoostToLessUrgentIsIgnored) {
  Engine eng;
  Disk d(eng, paper_disk());
  std::vector<std::pair<int, SimTime>> done;
  track(d.read_block(prio::kDemand), eng, 0, done);
  Disk::OpId id = 0;
  track(d.read_block(prio::kDemand, &id), eng, 1, done);
  d.boost(id, prio::kPrefetch);  // no demotion
  eng.run();
  EXPECT_EQ(d.stats().boosts, 0u);
  EXPECT_EQ(done[1].first, 1);
}

TEST(Disk, BoostAfterCompletionIsIgnored) {
  Engine eng;
  Disk d(eng, paper_disk());
  Disk::OpId id = 0;
  (void)d.read_block(prio::kPrefetch, &id);
  eng.run();
  d.boost(id, prio::kDemand);  // harmless
  EXPECT_EQ(d.stats().boosts, 0u);
}

TEST(Disk, StatsCountReadsWritesPrefetches) {
  Engine eng;
  Disk d(eng, paper_disk());
  (void)d.read_block(prio::kDemand);
  (void)d.read_block(prio::kPrefetch);
  (void)d.write_block(prio::kSync);
  eng.run();
  EXPECT_EQ(d.stats().block_reads, 2u);
  EXPECT_EQ(d.stats().block_writes, 1u);
  EXPECT_EQ(d.stats().prefetch_reads, 1u);
  EXPECT_EQ(d.stats().accesses(), 3u);
  EXPECT_EQ(d.stats().busy_time,
            2 * d.read_service_time() + d.write_service_time());
}

TEST(Disk, BusyAndQueueLength) {
  Engine eng;
  Disk d(eng, paper_disk());
  EXPECT_FALSE(d.busy());
  (void)d.read_block(prio::kDemand);
  (void)d.read_block(prio::kDemand);
  // Admission is an event in the disk's domain; pump the same-time events
  // through without letting either service completion (at t > 0) fire.
  eng.run_until(SimTime::zero());
  EXPECT_TRUE(d.busy());
  EXPECT_EQ(d.queue_length(), 1u);  // one in service, one queued
  eng.run();
  EXPECT_FALSE(d.busy());
}

}  // namespace
}  // namespace lap
