// Metrics JSON export: the document parses, the manifest reflects the
// config, and every "runs" row field equals the RunResult it came from
// (golden check for --metrics-json consumers).
#include "driver/metrics_json.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "driver/simulation.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "trace/charisma_gen.hpp"
#include "util/flags.hpp"

namespace lap {
namespace {

TEST(MetricsJson, RunRowsMatchRunResultExactly) {
  CharismaParams p;
  p.scale = 0.25;
  const Trace trace = generate_charisma(p);

  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.fs = FsKind::kPafs;
  cfg.cache_per_node = 4_MiB;
  cfg.algorithm = AlgorithmSpec::parse("Ln_Agr_IS_PPM:1");
  const RunResult r = run_simulation(trace, cfg);

  RunManifest manifest = make_manifest("test", cfg, trace);
  manifest.workload = "charisma";
  manifest.workload_seed = p.seed;

  std::ostringstream os;
  write_metrics_json(os, manifest, {r});
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());

  EXPECT_DOUBLE_EQ(doc->find("schema_version")->number, 1.0);

  const JsonValue* m = doc->find("manifest");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->find("title")->string, "test");
  EXPECT_EQ(m->find("machine")->string, cfg.machine.describe());
  EXPECT_EQ(m->find("workload")->string, "charisma");
  EXPECT_DOUBLE_EQ(m->find("workload_seed")->number, double(p.seed));
  EXPECT_DOUBLE_EQ(m->find("processes")->number,
                   double(trace.processes.size()));
  EXPECT_DOUBLE_EQ(m->find("files")->number, double(trace.files.size()));
  EXPECT_DOUBLE_EQ(m->find("io_ops")->number, double(trace.total_io_ops()));
  EXPECT_EQ(m->find("fs")->string, to_string(cfg.fs));
  EXPECT_EQ(m->find("algorithm")->string, cfg.algorithm.name());
  EXPECT_DOUBLE_EQ(m->find("cache_per_node_bytes")->number,
                   double(cfg.cache_per_node));
  EXPECT_EQ(m->find("trace_out")->string, "");

  const JsonValue* runs = doc->find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const JsonValue& row = runs->array[0];
  EXPECT_EQ(row.find("fs")->string, r.fs);
  EXPECT_EQ(row.find("algorithm")->string, r.algorithm);
  EXPECT_DOUBLE_EQ(row.find("cache_per_node_bytes")->number,
                   double(r.cache_per_node));
  EXPECT_DOUBLE_EQ(row.find("avg_read_ms")->number, r.avg_read_ms);
  EXPECT_DOUBLE_EQ(row.find("avg_write_ms")->number, r.avg_write_ms);
  EXPECT_DOUBLE_EQ(row.find("read_p95_ms")->number, r.read_p95_ms);
  EXPECT_DOUBLE_EQ(row.find("reads")->number, double(r.reads));
  EXPECT_DOUBLE_EQ(row.find("writes")->number, double(r.writes));
  EXPECT_DOUBLE_EQ(row.find("disk_reads")->number, double(r.disk_reads));
  EXPECT_DOUBLE_EQ(row.find("disk_writes")->number, double(r.disk_writes));
  EXPECT_DOUBLE_EQ(row.find("disk_accesses")->number,
                   double(r.disk_accesses));
  EXPECT_DOUBLE_EQ(row.find("disk_prefetch_reads")->number,
                   double(r.disk_prefetch_reads));
  EXPECT_DOUBLE_EQ(row.find("writes_per_block")->number, r.writes_per_block);
  EXPECT_DOUBLE_EQ(row.find("hit_ratio")->number, r.hit_ratio);
  EXPECT_DOUBLE_EQ(row.find("hits_local")->number, double(r.hits_local));
  EXPECT_DOUBLE_EQ(row.find("hits_remote")->number, double(r.hits_remote));
  EXPECT_DOUBLE_EQ(row.find("hits_inflight")->number,
                   double(r.hits_inflight));
  EXPECT_DOUBLE_EQ(row.find("misses")->number, double(r.misses));
  EXPECT_DOUBLE_EQ(row.find("misprediction_ratio")->number,
                   r.misprediction_ratio);
  EXPECT_DOUBLE_EQ(row.find("prefetch_issued")->number,
                   double(r.prefetch_issued));
  EXPECT_DOUBLE_EQ(row.find("prefetch_fallback")->number,
                   double(r.prefetch_fallback));
  EXPECT_DOUBLE_EQ(row.find("fallback_fraction")->number,
                   r.fallback_fraction);
  EXPECT_DOUBLE_EQ(row.find("prefetch_arrived")->number,
                   double(r.prefetch_arrived));
  EXPECT_DOUBLE_EQ(row.find("prefetch_used")->number,
                   double(r.prefetch_used));
  EXPECT_DOUBLE_EQ(row.find("prefetch_wasted")->number,
                   double(r.prefetch_wasted));
  EXPECT_DOUBLE_EQ(row.find("sim_seconds")->number,
                   r.sim_duration.seconds());
  EXPECT_DOUBLE_EQ(row.find("events")->number, double(r.events));
}

TEST(MetricsJson, CountersMemberIsPresentWhenRegistryGiven) {
  CounterRegistry reg;
  reg.counter("disk.reads").add(42);
  RunManifest manifest;
  manifest.title = "t";

  std::ostringstream os;
  write_metrics_json(os, manifest, {}, &reg);
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("disk.reads")->number, 42.0);

  // Without a registry the member is simply absent.
  std::ostringstream os2;
  write_metrics_json(os2, manifest, {});
  const auto doc2 = parse_json(os2.str());
  ASSERT_TRUE(doc2.has_value());
  EXPECT_EQ(doc2->find("counters"), nullptr);
}

TEST(MetricsJson, ParseObsOptions) {
  const char* argv[] = {"prog",           "--trace-out",     "t.json",
                        "--metrics-json", "m.json",          "--obs-sample-ms",
                        "25"};
  const Flags flags(7, const_cast<char**>(argv));
  const ObsOptions obs = parse_obs_options(flags);
  ASSERT_TRUE(obs.trace_out.has_value());
  EXPECT_EQ(*obs.trace_out, "t.json");
  ASSERT_TRUE(obs.metrics_json.has_value());
  EXPECT_EQ(*obs.metrics_json, "m.json");
  EXPECT_EQ(obs.sample_interval, SimTime::ms(25));
  EXPECT_TRUE(obs.any());

  const char* bare[] = {"prog"};
  const ObsOptions none = parse_obs_options(Flags(1, const_cast<char**>(bare)));
  EXPECT_FALSE(none.any());
  EXPECT_EQ(none.sample_interval, SimTime::ms(50));
}

}  // namespace
}  // namespace lap
