// SpanCollector unit tests plus the end-to-end provenance contract: a run
// with the collector attached is bit-exact with one without, and the span
// accounting reconciles with the run's own prefetch counters.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/differential.hpp"
#include "check/scenario.hpp"
#include "driver/simulation.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"
#include "obs/trace_event.hpp"

namespace lap {
namespace {

constexpr std::uint32_t kSite = 0;
const BlockKey kKey{FileId{3}, 17};

TEST(SpanCollector, PrefetchLifecycleUsed) {
  SpanCollector sc;
  const SpanRef ref = sc.prefetch_predicted(
      kSite, kKey, PrefetchOrigin::kGraph, /*fallback=*/false,
      /*trigger_pid=*/7, /*trigger_block=*/16, NodeId{2}, SimTime::ms(1));
  ASSERT_NE(ref, 0u);
  EXPECT_EQ(sc.open_ref(kSite, kKey), ref);

  EXPECT_EQ(sc.prefetch_arrived(kSite, kKey, /*via_peer=*/false,
                                SimTime::ms(5)),
            ref);
  EXPECT_EQ(sc.open_ref(kSite, kKey), 0u) << "arrival closes the open entry";

  sc.settle_used(ref, SimTime::ms(9));
  const BlockSpan* s = sc.span(ref);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->outcome, SpanOutcome::kUsed);
  EXPECT_EQ(s->origin, PrefetchOrigin::kGraph);
  EXPECT_EQ(s->trigger_pid, 7u);
  EXPECT_EQ(s->trigger_block, 16);
  EXPECT_EQ(raw(s->target), 2u);
  EXPECT_EQ(s->in_flight(), SimTime::ms(4));
  EXPECT_EQ(s->residence(), SimTime::ms(4));

  const SpanCollector::Totals t = sc.totals();
  EXPECT_EQ(t.predicted, 1u);
  EXPECT_EQ(t.arrived, 1u);
  EXPECT_EQ(t.used, 1u);
  EXPECT_EQ(t.wasted, 0u);
}

TEST(SpanCollector, ElidedFetchSettlesThroughTheOpenTable) {
  SpanCollector sc;
  const SpanRef ref = sc.prefetch_predicted(
      kSite, kKey, PrefetchOrigin::kSequential, false, 1, 4, NodeId{0},
      SimTime::ms(1));
  sc.prefetch_elided(kSite, kKey, SimTime::ms(2));
  EXPECT_EQ(sc.span(ref)->outcome, SpanOutcome::kElided);
  EXPECT_EQ(sc.open_ref(kSite, kKey), 0u);
  const SpanCollector::Totals t = sc.totals();
  EXPECT_EQ(t.predicted, 1u);
  EXPECT_EQ(t.elided, 1u);
  EXPECT_EQ(t.arrived, 0u);
  // An elide with no matching open span is a no-op, not a crash.
  sc.prefetch_elided(kSite, BlockKey{FileId{9}, 9}, SimTime::ms(3));
}

TEST(SpanCollector, SettlementIsIdempotentAndNullSafe) {
  SpanCollector sc;
  const SpanRef ref = sc.prefetch_predicted(
      kSite, kKey, PrefetchOrigin::kGraph, false, 1, 2, NodeId{0},
      SimTime::ms(1));
  sc.prefetch_arrived(kSite, kKey, false, SimTime::ms(2));
  sc.settle_wasted(ref, WasteReason::kEvicted, SimTime::ms(3));
  sc.settle_used(ref, SimTime::ms(4));  // loses: already settled
  sc.settle_wasted(ref, WasteReason::kShutdown, SimTime::ms(5));
  EXPECT_EQ(sc.span(ref)->outcome, SpanOutcome::kWasted);
  EXPECT_EQ(sc.span(ref)->waste, WasteReason::kEvicted);
  EXPECT_EQ(sc.span(ref)->settled, SimTime::ms(3));
  // Ref 0 ("no span") and out-of-range refs are ignored everywhere.
  sc.settle_used(0, SimTime::ms(1));
  sc.settle_wasted(99, WasteReason::kDeleted, SimTime::ms(1));
  EXPECT_EQ(sc.span(0), nullptr);
  EXPECT_EQ(sc.span(99), nullptr);
}

TEST(SpanCollector, SitesKeepConcurrentFetchesOfTheSameBlockApart) {
  SpanCollector sc;
  const SpanRef a = sc.prefetch_predicted(
      1, kKey, PrefetchOrigin::kGraph, false, 1, 2, NodeId{0}, SimTime::ms(1));
  const SpanRef b = sc.prefetch_predicted(
      2, kKey, PrefetchOrigin::kHint, false, 3, 4, NodeId{1}, SimTime::ms(1));
  EXPECT_NE(a, b);
  EXPECT_EQ(sc.open_ref(1, kKey), a);
  EXPECT_EQ(sc.open_ref(2, kKey), b);
  EXPECT_EQ(sc.prefetch_arrived(2, kKey, true, SimTime::ms(3)), b);
  EXPECT_EQ(sc.open_ref(1, kKey), a) << "site 1's flight is untouched";
  EXPECT_TRUE(sc.span(b)->via_peer);
}

TEST(SpanCollector, DemandLifecycleAndFirstClassificationWins) {
  SpanCollector sc;
  const SpanRef ref = sc.demand_started(NodeId{4}, kKey, SimTime::ms(1));
  sc.demand_classified(ref, DemandClass::kHitRemote, SimTime::ms(2));
  sc.demand_classified(ref, DemandClass::kMiss, SimTime::ms(3));  // ignored
  sc.demand_done(ref, SimTime::ms(4));
  const BlockSpan* s = sc.span(ref);
  EXPECT_TRUE(s->demand);
  EXPECT_EQ(s->outcome, SpanOutcome::kDemand);
  EXPECT_EQ(s->demand_class, DemandClass::kHitRemote);
  EXPECT_EQ(s->settled, SimTime::ms(4));
  EXPECT_EQ(sc.totals().demand_blocks, 1u);
  EXPECT_EQ(sc.totals().predicted, 0u) << "demand spans are not prefetches";
}

TEST(SpanCollector, StageAttributionAccumulatesAndOtherClamps) {
  SpanCollector sc;
  const SpanRef ref = sc.prefetch_predicted(
      kSite, kKey, PrefetchOrigin::kGraph, false, 1, 2, NodeId{0},
      SimTime::ms(0));
  sc.disk_serviced(ref, SimTime::ms(2), SimTime::ms(5));
  sc.net_transferred(ref, SimTime::ms(1), SimTime::ms(3));
  sc.net_transferred(ref, SimTime::zero(), SimTime::ms(3));
  sc.prefetch_arrived(kSite, kKey, false, SimTime::ms(15));
  sc.settle_used(ref, SimTime::ms(20));
  const BlockSpan* s = sc.span(ref);
  EXPECT_EQ(s->disk_wait, SimTime::ms(2));
  EXPECT_EQ(s->disk_service, SimTime::ms(5));
  EXPECT_EQ(s->net_wait, SimTime::ms(1));
  EXPECT_EQ(s->net_time, SimTime::ms(6));
  EXPECT_EQ(s->net_hops, 2u);
  EXPECT_EQ(s->other(), SimTime::ms(1));  // 15 in flight - 14 attributed

  // A span whose attributed stages exceed its flight (possible only through
  // rounding at stage boundaries) clamps to zero instead of going negative.
  const SpanRef tight = sc.prefetch_predicted(
      kSite, BlockKey{FileId{1}, 1}, PrefetchOrigin::kGraph, false, 1, 2,
      NodeId{0}, SimTime::ms(0));
  sc.disk_serviced(tight, SimTime::ms(9), SimTime::ms(9));
  sc.prefetch_arrived(kSite, BlockKey{FileId{1}, 1}, false, SimTime::ms(10));
  EXPECT_EQ(sc.span(tight)->other(), SimTime::zero());
}

TEST(SpanCollector, PublishRegistersTheFixedInstrumentSet) {
  SpanCollector sc;
  const SpanRef used = sc.prefetch_predicted(
      kSite, kKey, PrefetchOrigin::kGraph, false, 1, 2, NodeId{0},
      SimTime::ms(0));
  sc.prefetch_arrived(kSite, kKey, false, SimTime::ms(2));
  sc.settle_used(used, SimTime::ms(3));
  const SpanRef wasted = sc.prefetch_predicted(
      kSite, BlockKey{FileId{1}, 1}, PrefetchOrigin::kFallback, true, 1, 2,
      NodeId{0}, SimTime::ms(0));
  sc.prefetch_arrived(kSite, BlockKey{FileId{1}, 1}, false, SimTime::ms(1));
  sc.settle_wasted(wasted, WasteReason::kSuperseded, SimTime::ms(2));
  const SpanRef d = sc.demand_started(NodeId{0}, kKey, SimTime::ms(4));
  sc.demand_classified(d, DemandClass::kHitLocal, SimTime::ms(4));
  sc.demand_done(d, SimTime::ms(5));

  CounterRegistry reg;
  sc.publish(reg);
  EXPECT_EQ(reg.counter("span.prefetch.predicted").value(), 2u);
  EXPECT_EQ(reg.counter("span.prefetch.arrived").value(), 2u);
  EXPECT_EQ(reg.counter("span.prefetch.used").value(), 1u);
  EXPECT_EQ(reg.counter("span.prefetch.wasted").value(), 1u);
  EXPECT_EQ(reg.counter("span.origin.graph.used").value(), 1u);
  EXPECT_EQ(reg.counter("span.origin.fallback.wasted").value(), 1u);
  EXPECT_EQ(reg.counter("span.wasted.superseded").value(), 1u);
  EXPECT_EQ(reg.counter("span.demand.hit_local").value(), 1u);
  EXPECT_EQ(reg.histogram("span.prefetch.inflight_ms").accumulator().count(),
            2u);
  EXPECT_EQ(reg.histogram("span.demand.total_ms").accumulator().count(), 1u);
  // The set is fixed: instruments exist even when nothing fed them.
  EXPECT_TRUE(reg.has("span.origin.whole_file.predicted"));
  EXPECT_TRUE(reg.has("span.wasted.forward_dropped"));
  EXPECT_TRUE(reg.has("span.demand.miss"));
}

TEST(SpanCollector, EmitAsyncWritesMatchedBeginEndPairs) {
  SpanCollector sc;
  const SpanRef ref = sc.prefetch_predicted(
      kSite, kKey, PrefetchOrigin::kGraph, false, 1, 16, NodeId{2},
      SimTime::ms(1));
  sc.prefetch_arrived(kSite, kKey, false, SimTime::ms(5));
  sc.settle_used(ref, SimTime::ms(9));

  std::ostringstream os;
  {
    TraceSink sink(os);
    sc.emit_async(sink);
    sink.close();
  }
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  const JsonValue* begin = nullptr;
  const JsonValue* end = nullptr;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr) continue;
    if (ph->string == "b") begin = &e;
    if (ph->string == "e") end = &e;
  }
  ASSERT_NE(begin, nullptr);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(begin->find("id")->string, end->find("id")->string);
  EXPECT_EQ(begin->find("cat")->string, "span");
  EXPECT_EQ(begin->find("args")->find("origin")->string, "graph");
  EXPECT_EQ(end->find("args")->find("outcome")->string, "used");
  EXPECT_EQ(begin->find("ts")->number, 1000.0);  // us
  EXPECT_EQ(end->find("ts")->number, 9000.0);
}

// The whole-system contract, on both file systems: attaching a collector
// changes nothing, and its totals reconcile with the run's counters.
TEST(SpanProvenance, RunIsBitExactAndTotalsReconcile) {
  const Scenario s = generate_scenario(11);
  for (const FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
    const RunConfig cfg = scenario_config(s, fs);
    const RunResult plain = run_simulation(s.trace, cfg);

    SpanCollector spans;
    RunConfig with_spans = cfg;
    with_spans.spans = &spans;
    const RunResult observed = run_simulation(s.trace, with_spans);

    EXPECT_TRUE(diff_run_results(plain, observed, to_string(fs)).empty());
    const SpanCollector::Totals t = spans.totals();
    EXPECT_EQ(t.arrived, observed.prefetch_arrived);
    EXPECT_EQ(t.used, observed.prefetch_used);
    EXPECT_EQ(t.wasted, observed.prefetch_wasted);
    EXPECT_EQ(t.used + t.wasted, t.arrived);
    // No prefetch span may leak unsettled past finalize().
    for (const BlockSpan& sp : spans.spans()) {
      if (!sp.demand) {
        EXPECT_NE(sp.outcome, SpanOutcome::kOpen);
      }
    }
  }
}

}  // namespace
}  // namespace lap
