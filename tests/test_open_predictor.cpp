#include "core/open_predictor.hpp"

#include <gtest/gtest.h>

namespace lap {
namespace {

TEST(OpenPredictor, NoPredictionForUnknownFile) {
  OpenSequencePredictor pred;
  EXPECT_FALSE(pred.on_open(FileId{1}).has_value());
}

TEST(OpenPredictor, LearnsTheOpenSequence) {
  OpenSequencePredictor pred;
  (void)pred.on_open(FileId{1});
  (void)pred.on_open(FileId{2});  // 1 -> 2
  (void)pred.on_open(FileId{3});  // 2 -> 3
  const auto p = pred.on_open(FileId{1});  // 3 -> 1; predict successor of 1
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, FileId{2});
}

TEST(OpenPredictor, MostFrequentSuccessorWins) {
  OpenSequencePredictor pred;
  for (int i = 0; i < 3; ++i) {
    (void)pred.on_open(FileId{1});
    (void)pred.on_open(FileId{2});
  }
  (void)pred.on_open(FileId{1});
  (void)pred.on_open(FileId{9});
  const auto p = pred.successor(FileId{1});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, FileId{2});
}

TEST(OpenPredictor, RepeatedOpenOfSameFileIsNotASelfEdge) {
  OpenSequencePredictor pred;
  (void)pred.on_open(FileId{5});
  (void)pred.on_open(FileId{5});
  EXPECT_FALSE(pred.successor(FileId{5}).has_value());
}

TEST(OpenPredictor, TracksDistinctPredecessors) {
  OpenSequencePredictor pred;
  (void)pred.on_open(FileId{1});
  (void)pred.on_open(FileId{2});
  (void)pred.on_open(FileId{3});
  EXPECT_EQ(pred.tracked_files(), 2u);  // files 1 and 2 have successors
}

}  // namespace
}  // namespace lap
