// lap_lint golden-fixture suite.
//
// Each fixture under tests/data/lint/ violates exactly one rule (or none);
// the tests pin the rule id AND the line where it fires, so any tokenizer
// or rule regression shows up as a diff against this file.  The suite also
// asserts the two facts CI depends on: every violate_* fixture makes the
// CLI exit non-zero, and the repo's own src/ tree lints clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace {

using lap::lint::Diagnostic;
using lap::lint::Options;

std::string fixture(const std::string& name) {
  return std::string(LAP_LINT_FIXTURE_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Diagnostic> lint_fixture(const std::string& name,
                                     const Options& opts = {}) {
  return lap::lint::lint_file(fixture(name), opts);
}

// Assert the diagnostics are exactly `want` (rule, line), in order.
void expect_diags(const std::vector<Diagnostic>& got,
                  const std::vector<std::pair<std::string, int>>& want) {
  ASSERT_EQ(got.size(), want.size()) << [&] {
    std::string all;
    for (const Diagnostic& d : got) all += format_diagnostic(d) + "\n";
    return all;
  }();
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].rule, want[i].first) << "diagnostic " << i;
    EXPECT_EQ(got[i].line, want[i].second) << "diagnostic " << i;
  }
}

TEST(LintCatalog, ListsEveryRule) {
  const auto catalog = lap::lint::rule_catalog();
  ASSERT_EQ(catalog.size(), 10u);
  const char* expected[] = {
      "no-rand",          "no-wallclock",          "unordered-iteration",
      "pointer-keyed-map", "container-policy",     "trace-io-typed-errors",
      "nodiscard-result", "no-iostream-in-header", "transitive-include",
      "concurrency-containment"};
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].id, expected[i]);
    EXPECT_FALSE(catalog[i].summary.empty());
    EXPECT_TRUE(lap::lint::is_known_rule(catalog[i].id));
  }
  EXPECT_FALSE(lap::lint::is_known_rule("not-a-rule"));
}

// --- one fixture per rule, pinned to exact lines --------------------------

TEST(LintRules, NoRandFiresOnRandomDeviceAndRand) {
  expect_diags(lint_fixture("violate_no_rand.cpp"),
               {{"no-rand", 7}, {"no-rand", 8}});
}

TEST(LintRules, NoWallclockFiresOnSystemClock) {
  expect_diags(lint_fixture("violate_no_wallclock.cpp"),
               {{"no-wallclock", 6}});
}

TEST(LintRules, UnorderedIterationFiresOnRangeFor) {
  expect_diags(lint_fixture("violate_unordered_iteration.cpp"),
               {{"unordered-iteration", 10}});
}

TEST(LintRules, PointerKeyedMapFires) {
  expect_diags(lint_fixture("violate_pointer_keyed_map.cpp"),
               {{"pointer-keyed-map", 8}});
}

TEST(LintRules, ContainerPolicyFiresOnIncludesAndUses) {
  expect_diags(lint_fixture("violate_container_policy.cpp"),
               {{"container-policy", 4},
                {"container-policy", 5},
                {"container-policy", 7},
                {"container-policy", 8}});
}

TEST(LintRules, TraceIoTypedErrorsFiresOnBareThrowAndAbort) {
  expect_diags(lint_fixture("violate_trace_io_typed_errors.cpp"),
               {{"trace-io-typed-errors", 7}, {"trace-io-typed-errors", 8}});
}

TEST(LintRules, NodiscardResultFlagsOnlyTheUnmarkedDecl) {
  // Line 8's [[nodiscard]] declaration must NOT be reported.
  expect_diags(lint_fixture("violate_nodiscard_result.hpp"),
               {{"nodiscard-result", 7}});
}

TEST(LintRules, IostreamInHeaderFires) {
  expect_diags(lint_fixture("violate_iostream_header.hpp"),
               {{"no-iostream-in-header", 5}});
}

TEST(LintRules, TransitiveIncludeFires) {
  expect_diags(lint_fixture("violate_transitive_include.cpp"),
               {{"transitive-include", 5}});
}

TEST(LintRules, ConcurrencyContainmentFiresOutsideTheKernel) {
  expect_diags(lint_fixture("violate_concurrency.cpp"),
               {{"concurrency-containment", 4},
                {"concurrency-containment", 6},
                {"concurrency-containment", 7},
                {"concurrency-containment", 10}});
}

// --- suppression + path directives ----------------------------------------

TEST(LintDirectives, CleanFixtureHasNoDiagnostics) {
  expect_diags(lint_fixture("clean_ok.cpp"), {});
}

TEST(LintDirectives, AllowDirectiveSuppressesListedRules) {
  expect_diags(lint_fixture("clean_suppressed.cpp"), {});

  // Strip the allow(...) line and the same content must violate both rules
  // again — proving the directive (not the content) made it clean.
  std::string content = slurp(fixture("clean_suppressed.cpp"));
  const std::string directive = "// lap-lint: allow(no-rand, no-wallclock)";
  const std::size_t at = content.find(directive);
  ASSERT_NE(at, std::string::npos);
  content.replace(at, directive.size(), "//");
  const auto diags =
      lap::lint::lint_source("clean_suppressed.cpp", content, {});
  expect_diags(diags, {{"no-wallclock", 9}, {"no-rand", 10}});
}

TEST(LintDirectives, PathDirectiveDrivesDirectoryScopedRules) {
  // container-policy only applies under src/{cache,core,fs,sim,driver}; the
  // same content is clean outside that scope and dirty inside it.
  const std::string body = "#include <map>\nstd::map<int, int> m;\n";
  EXPECT_TRUE(lap::lint::lint_source("bench/scratch.cpp", body, {}).empty());

  const std::string pinned =
      "// lap-lint: path(src/cache/pinned.cpp)\n" + body;
  const auto diags = lap::lint::lint_source("bench/scratch.cpp", pinned, {});
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "container-policy");
  EXPECT_EQ(diags[0].file, "src/cache/pinned.cpp");  // reported path is pinned
}

// --- diagnostic format -----------------------------------------------------

TEST(LintFormat, GccStyleDiagnostic) {
  const Diagnostic d{"src/cache/foo.cpp", 12, "no-rand", "boom"};
  EXPECT_EQ(lap::lint::format_diagnostic(d),
            "src/cache/foo.cpp:12: error[no-rand]: boom");
}

TEST(LintFormat, CliOutputLinesAreParseable) {
  std::string out;
  const int rc =
      lap::lint::run_cli({fixture("violate_no_rand.cpp")}, out);
  EXPECT_EQ(rc, 1);
  // First line: "<path>:7: error[no-rand]: ..." — the path() directive in
  // the fixture pins the reported path.
  const std::string want = "src/core/fixture_rand.cpp:7: error[no-rand]: ";
  EXPECT_EQ(out.compare(0, want.size(), want), 0) << out;
  EXPECT_NE(out.find("lap_lint: 2 violations\n"), std::string::npos) << out;
}

// --- CLI exit codes + --only filtering -------------------------------------

TEST(LintCli, CleanFileExitsZero) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli({fixture("clean_ok.cpp")}, out), 0);
  EXPECT_TRUE(out.empty()) << out;
}

TEST(LintCli, OnlyFilterRestrictsToNamedRule) {
  std::string out;
  const int rc = lap::lint::run_cli(
      {"--only=no-rand", fixture("violate_multi_rule.cpp")}, out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("error[no-rand]"), std::string::npos) << out;
  EXPECT_EQ(out.find("error[no-wallclock]"), std::string::npos) << out;

  // Same via the library API.
  Options opts;
  opts.only = {"no-wallclock"};
  expect_diags(lint_fixture("violate_multi_rule.cpp", opts),
               {{"no-wallclock", 7}});
}

TEST(LintCli, UnknownRuleIsUsageError) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli(
                {"--only=not-a-rule", fixture("clean_ok.cpp")}, out),
            2);
  EXPECT_NE(out.find("unknown rule"), std::string::npos) << out;
}

TEST(LintCli, NoInputsIsUsageError) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli({}, out), 2);
}

TEST(LintCli, MissingFileIsIoError) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli({fixture("does_not_exist.cpp")}, out), 2);
}

TEST(LintCli, ListRulesPrintsTheCatalog) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli({"--list-rules"}, out), 0);
  for (const auto& r : lap::lint::rule_catalog()) {
    EXPECT_NE(out.find(r.id), std::string::npos) << r.id;
  }
}

// --- the two facts CI depends on -------------------------------------------

TEST(LintCorpus, EveryViolatingFixtureFailsAndEveryCleanOnePasses) {
  namespace fs = std::filesystem;
  int violating = 0;
  int clean = 0;
  for (const auto& e : fs::directory_iterator(LAP_LINT_FIXTURE_DIR)) {
    const std::string name = e.path().filename().string();
    std::string out;
    const int rc = lap::lint::run_cli({e.path().string()}, out);
    if (name.rfind("violate_", 0) == 0) {
      EXPECT_EQ(rc, 1) << name << "\n" << out;
      ++violating;
    } else if (name.rfind("clean_", 0) == 0) {
      EXPECT_EQ(rc, 0) << name << "\n" << out;
      ++clean;
    } else {
      ADD_FAILURE() << "fixture with unknown prefix: " << name;
    }
  }
  EXPECT_EQ(violating, 11);  // one per rule + the multi-rule fixture
  EXPECT_EQ(clean, 2);
}

TEST(LintCorpus, RepoSrcTreeLintsClean) {
  std::string out;
  const int rc = lap::lint::run_cli({"--tree", LAP_LINT_SRC_DIR}, out);
  EXPECT_EQ(rc, 0) << "src/ has lint violations:\n" << out;
}

}  // namespace
