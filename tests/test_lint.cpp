// lap_lint golden-fixture suite.
//
// Each fixture under tests/data/lint/ violates exactly one rule (or none);
// the tests pin the rule id AND the line where it fires, so any tokenizer
// or rule regression shows up as a diff against this file.  The suite also
// asserts the two facts CI depends on: every violate_* fixture makes the
// CLI exit non-zero, and the repo's own src/ tree lints clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <tuple>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace {

using lap::lint::Diagnostic;
using lap::lint::Options;

std::string fixture(const std::string& name) {
  return std::string(LAP_LINT_FIXTURE_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Diagnostic> lint_fixture(const std::string& name,
                                     const Options& opts = {}) {
  return lap::lint::lint_file(fixture(name), opts);
}

// Assert the diagnostics are exactly `want` (rule, line), in order.
void expect_diags(const std::vector<Diagnostic>& got,
                  const std::vector<std::pair<std::string, int>>& want) {
  ASSERT_EQ(got.size(), want.size()) << [&] {
    std::string all;
    for (const Diagnostic& d : got) all += format_diagnostic(d) + "\n";
    return all;
  }();
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].rule, want[i].first) << "diagnostic " << i;
    EXPECT_EQ(got[i].line, want[i].second) << "diagnostic " << i;
  }
}

TEST(LintCatalog, ListsEveryRule) {
  const auto catalog = lap::lint::rule_catalog();
  ASSERT_EQ(catalog.size(), 16u);
  // {id, scope, needs_index} in reporting order.
  const std::tuple<const char*, const char*, bool> expected[] = {
      {"no-rand", "tree-wide", false},
      {"no-wallclock", "tree-wide", false},
      {"unordered-iteration", "tree-wide", false},
      {"pointer-keyed-map", "tree-wide", false},
      {"container-policy", "directory-scoped", false},
      {"trace-io-typed-errors", "directory-scoped", false},
      {"nodiscard-result", "directory-scoped", false},
      {"no-iostream-in-header", "tree-wide", false},
      {"transitive-include", "tree-wide", false},
      {"concurrency-containment", "tree-wide", false},
      {"pointer-ordering", "tree-wide", false},
      {"float-accumulation", "directory-scoped", false},
      {"include-layering", "tree-wide", false},
      {"pod-init", "directory-scoped", true},
      {"index-parse", "cross-TU", true},
      {"domain-confinement", "cross-TU", true}};
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].id, std::get<0>(expected[i])) << i;
    EXPECT_EQ(catalog[i].scope, std::get<1>(expected[i])) << catalog[i].id;
    EXPECT_EQ(catalog[i].needs_index, std::get<2>(expected[i]))
        << catalog[i].id;
    EXPECT_FALSE(catalog[i].summary.empty());
    EXPECT_TRUE(lap::lint::is_known_rule(catalog[i].id));
  }
  EXPECT_FALSE(lap::lint::is_known_rule("not-a-rule"));
}

// --- one fixture per rule, pinned to exact lines --------------------------

TEST(LintRules, NoRandFiresOnRandomDeviceAndRand) {
  expect_diags(lint_fixture("violate_no_rand.cpp"),
               {{"no-rand", 7}, {"no-rand", 8}});
}

TEST(LintRules, NoWallclockFiresOnSystemClock) {
  expect_diags(lint_fixture("violate_no_wallclock.cpp"),
               {{"no-wallclock", 6}});
}

TEST(LintRules, UnorderedIterationFiresOnRangeFor) {
  expect_diags(lint_fixture("violate_unordered_iteration.cpp"),
               {{"unordered-iteration", 10}});
}

TEST(LintRules, PointerKeyedMapFires) {
  expect_diags(lint_fixture("violate_pointer_keyed_map.cpp"),
               {{"pointer-keyed-map", 8}});
}

TEST(LintRules, ContainerPolicyFiresOnIncludesAndUses) {
  expect_diags(lint_fixture("violate_container_policy.cpp"),
               {{"container-policy", 4},
                {"container-policy", 5},
                {"container-policy", 7},
                {"container-policy", 8}});
}

TEST(LintRules, TraceIoTypedErrorsFiresOnBareThrowAndAbort) {
  expect_diags(lint_fixture("violate_trace_io_typed_errors.cpp"),
               {{"trace-io-typed-errors", 7}, {"trace-io-typed-errors", 8}});
}

TEST(LintRules, NodiscardResultFlagsOnlyTheUnmarkedDecl) {
  // Line 8's [[nodiscard]] declaration must NOT be reported.
  expect_diags(lint_fixture("violate_nodiscard_result.hpp"),
               {{"nodiscard-result", 7}});
}

TEST(LintRules, IostreamInHeaderFires) {
  expect_diags(lint_fixture("violate_iostream_header.hpp"),
               {{"no-iostream-in-header", 5}});
}

TEST(LintRules, TransitiveIncludeFires) {
  expect_diags(lint_fixture("violate_transitive_include.cpp"),
               {{"transitive-include", 5}});
}

TEST(LintRules, ConcurrencyContainmentFiresOutsideTheKernel) {
  expect_diags(lint_fixture("violate_concurrency.cpp"),
               {{"concurrency-containment", 4},
                {"concurrency-containment", 6},
                {"concurrency-containment", 7},
                {"concurrency-containment", 10}});
}

TEST(LintRules, PointerOrderingFiresOnAddressDerivedKeys) {
  expect_diags(lint_fixture("violate_pointer_ordering.cpp"),
               {{"pointer-ordering", 7},
                {"pointer-ordering", 8},
                {"pointer-ordering", 9}});
}

TEST(LintRules, FloatAccumulationFiresOnCompoundAssign) {
  expect_diags(lint_fixture("violate_float_accumulation.cpp"),
               {{"float-accumulation", 6}});
}

TEST(LintRules, IncludeLayeringFiresOnBackEdge) {
  expect_diags(lint_fixture("violate_include_layering.cpp"),
               {{"include-layering", 4}});
}

TEST(LintRules, UnorderedIterationFiresOnExplicitBegin) {
  expect_diags(lint_fixture("violate_unordered_begin.cpp"),
               {{"unordered-iteration", 8}});
}

TEST(LintRules, PodInitFlagsOnlyUninitializedScalars) {
  // Line 7's `seq = 0` member must NOT be reported.
  expect_diags(lint_fixture("violate_pod_init.cpp"),
               {{"pod-init", 6}, {"pod-init", 8}});
}

TEST(LintRules, IndexParseFiresOnTruncatedDeclaration) {
  expect_diags(lint_fixture("violate_index_parse.cpp"),
               {{"index-parse", 3}});
}

TEST(LintRules, DomainConfinementFiresOnCrossDomainWrite) {
  const auto diags = lint_fixture("violate_domain_confinement.cpp");
  expect_diags(diags, {{"domain-confinement", 17}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("hits_"), std::string::npos);
  EXPECT_NE(diags[0].message.find("post_at"), std::string::npos);
}

TEST(LintRules, DomainConfinementAcceptsPostAtHop) {
  // Same write as violate_domain_confinement.cpp, but routed through an
  // Engine::post_at lambda targeting the owning domain.
  expect_diags(lint_fixture("clean_domain_confinement.cpp"), {});
}

// --- suppression + path directives ----------------------------------------

TEST(LintDirectives, CleanFixtureHasNoDiagnostics) {
  expect_diags(lint_fixture("clean_ok.cpp"), {});
}

TEST(LintDirectives, AllowDirectiveSuppressesListedRules) {
  expect_diags(lint_fixture("clean_suppressed.cpp"), {});

  // Strip the allow(...) line and the same content must violate both rules
  // again — proving the directive (not the content) made it clean.
  std::string content = slurp(fixture("clean_suppressed.cpp"));
  const std::string directive = "// lap-lint: allow(no-rand, no-wallclock)";
  const std::size_t at = content.find(directive);
  ASSERT_NE(at, std::string::npos);
  content.replace(at, directive.size(), "//");
  const auto diags =
      lap::lint::lint_source("clean_suppressed.cpp", content, {});
  expect_diags(diags, {{"no-wallclock", 9}, {"no-rand", 10}});
}

TEST(LintDirectives, AllowNextLineSuppressesExactlyOneLine) {
  expect_diags(lint_fixture("clean_allow_next_line.cpp"), {});

  // Strip the directive: the rand() call on the next line violates again.
  std::string content = slurp(fixture("clean_allow_next_line.cpp"));
  const std::string directive = "// lap-lint: allow-next-line(no-rand)";
  const std::size_t at = content.find(directive);
  ASSERT_NE(at, std::string::npos);
  content.replace(at, directive.size(), "//");
  expect_diags(lap::lint::lint_source("clean_allow_next_line.cpp", content, {}),
               {{"no-rand", 8}});
}

TEST(LintDirectives, AllowNextLineDoesNotReachPastTheNextLine) {
  // The directive covers line 4 only; the violation on line 6 survives.
  const std::string src =
      "// lap-lint: path(src/core/scratch.cpp)\n"  // line 1
      "#include <cstdlib>\n"                       // line 2
      "// lap-lint: allow-next-line(no-rand)\n"    // line 3
      "int a = rand();\n"                          // line 4 (suppressed)
      "\n"                                         // line 5
      "int b = rand();\n";                         // line 6 (fires)
  expect_diags(lap::lint::lint_source("scratch.cpp", src, {}),
               {{"no-rand", 6}});
}

TEST(LintDirectives, RepoSrcTreeUsesNoFileWideSuppressions) {
  // The four historical file-wide allow() directives were migrated to
  // allow-next-line; file-wide allow() must not creep back into src/.
  namespace fs = std::filesystem;
  for (const auto& e : fs::recursive_directory_iterator(LAP_LINT_SRC_DIR)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    const std::string content = slurp(e.path().string());
    EXPECT_EQ(content.find("lap-lint: allow("), std::string::npos)
        << e.path() << " uses a file-wide allow(); use allow-next-line";
  }
}

TEST(LintDirectives, PathDirectiveDrivesDirectoryScopedRules) {
  // container-policy only applies under src/{cache,core,fs,sim,driver}; the
  // same content is clean outside that scope and dirty inside it.
  const std::string body = "#include <map>\nstd::map<int, int> m;\n";
  EXPECT_TRUE(lap::lint::lint_source("bench/scratch.cpp", body, {}).empty());

  const std::string pinned =
      "// lap-lint: path(src/cache/pinned.cpp)\n" + body;
  const auto diags = lap::lint::lint_source("bench/scratch.cpp", pinned, {});
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "container-policy");
  EXPECT_EQ(diags[0].file, "src/cache/pinned.cpp");  // reported path is pinned
}

// --- diagnostic format -----------------------------------------------------

TEST(LintFormat, GccStyleDiagnostic) {
  const Diagnostic d{"src/cache/foo.cpp", 12, "no-rand", "boom"};
  EXPECT_EQ(lap::lint::format_diagnostic(d),
            "src/cache/foo.cpp:12: error[no-rand]: boom");
}

TEST(LintFormat, CliOutputLinesAreParseable) {
  std::string out;
  const int rc =
      lap::lint::run_cli({fixture("violate_no_rand.cpp")}, out);
  EXPECT_EQ(rc, 1);
  // First line: "<path>:7: error[no-rand]: ..." — the path() directive in
  // the fixture pins the reported path.
  const std::string want = "src/core/fixture_rand.cpp:7: error[no-rand]: ";
  EXPECT_EQ(out.compare(0, want.size(), want), 0) << out;
  EXPECT_NE(out.find("lap_lint: 2 violations\n"), std::string::npos) << out;
}

// --- CLI exit codes + --only filtering -------------------------------------

TEST(LintCli, CleanFileExitsZero) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli({fixture("clean_ok.cpp")}, out), 0);
  EXPECT_TRUE(out.empty()) << out;
}

TEST(LintCli, OnlyFilterRestrictsToNamedRule) {
  std::string out;
  const int rc = lap::lint::run_cli(
      {"--only=no-rand", fixture("violate_multi_rule.cpp")}, out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("error[no-rand]"), std::string::npos) << out;
  EXPECT_EQ(out.find("error[no-wallclock]"), std::string::npos) << out;

  // Same via the library API.
  Options opts;
  opts.only = {"no-wallclock"};
  expect_diags(lint_fixture("violate_multi_rule.cpp", opts),
               {{"no-wallclock", 7}});
}

TEST(LintCli, UnknownRuleIsUsageError) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli(
                {"--only=not-a-rule", fixture("clean_ok.cpp")}, out),
            2);
  EXPECT_NE(out.find("unknown rule"), std::string::npos) << out;
}

TEST(LintCli, NoInputsIsUsageError) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli({}, out), 2);
}

TEST(LintCli, MissingFileIsIoError) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli({fixture("does_not_exist.cpp")}, out), 2);
}

TEST(LintCli, ListRulesPrintsTheCatalog) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli({"--list-rules"}, out), 0);
  for (const auto& r : lap::lint::rule_catalog()) {
    EXPECT_NE(out.find(r.id), std::string::npos) << r.id;
  }
}

// --- the two facts CI depends on -------------------------------------------

TEST(LintCorpus, EveryViolatingFixtureFailsAndEveryCleanOnePasses) {
  namespace fs = std::filesystem;
  int violating = 0;
  int clean = 0;
  for (const auto& e : fs::directory_iterator(LAP_LINT_FIXTURE_DIR)) {
    // Subdirectories hold multi-file corpora (xtu/) and indexer
    // robustness inputs (index/), exercised by their own tests below.
    if (e.is_directory()) continue;
    const std::string name = e.path().filename().string();
    std::string out;
    const int rc = lap::lint::run_cli({e.path().string()}, out);
    if (name.rfind("violate_", 0) == 0) {
      EXPECT_EQ(rc, 1) << name << "\n" << out;
      ++violating;
    } else if (name.rfind("clean_", 0) == 0) {
      EXPECT_EQ(rc, 0) << name << "\n" << out;
      ++clean;
    } else {
      ADD_FAILURE() << "fixture with unknown prefix: " << name;
    }
  }
  EXPECT_EQ(violating, 18);  // one per rule + the multi-rule fixture
  EXPECT_EQ(clean, 4);
}

TEST(LintCorpus, RepoSrcTreeLintsClean) {
  std::string out;
  const int rc = lap::lint::run_cli({"--tree", LAP_LINT_SRC_DIR}, out);
  EXPECT_EQ(rc, 0) << "src/ has lint violations:\n" << out;
}

// --- cross-TU: the declaration index spans the whole corpus ----------------

TEST(LintXtu, ConfinementJoinsDeclarationsAcrossFiles) {
  // node_state.hpp declares the node-owned class; controller.cpp (which
  // does not even include it) writes its field from directory-domain
  // code.  Only a cross-TU index can connect the two.
  std::string out;
  const int rc = lap::lint::run_cli(
      {"--tree", std::string(LAP_LINT_FIXTURE_DIR) + "/xtu"}, out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(
      out.find("src/fs/xtu_controller.cpp:11: error[domain-confinement]"),
      std::string::npos)
      << out;
  EXPECT_NE(out.find("'bytes_' is owned by the node domain"),
            std::string::npos)
      << out;
}

// --- the seeded synthetic confinement bug (acceptance criterion) -----------

std::vector<std::pair<std::string, std::string>> load_src_corpus() {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> corpus;
  for (const auto& e : fs::recursive_directory_iterator(LAP_LINT_SRC_DIR)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    corpus.emplace_back(e.path().generic_string(),
                        slurp(e.path().string()));
  }
  std::sort(corpus.begin(), corpus.end());
  return corpus;
}

TEST(LintCorpus, SeededConfinementBugInXfsIsFlagged) {
  // Take the real src/ tree, and in Xfs::post_dir_add replace the
  // Engine::post_at hop with a direct call to the directory-domain
  // mutator — exactly the bug the rule exists to catch.
  auto corpus = load_src_corpus();
  int seeded_line = 0;
  bool patched = false;
  for (auto& [path, content] : corpus) {
    if (path.find("src/fs/xfs/xfs.cpp") == std::string::npos) continue;
    const std::size_t fn = content.find("void Xfs::post_dir_add(");
    ASSERT_NE(fn, std::string::npos);
    const std::size_t stmt = content.find("eng_->post_at", fn);
    ASSERT_NE(stmt, std::string::npos);
    const std::size_t end = content.find("});", stmt);
    ASSERT_NE(end, std::string::npos);
    content.replace(stmt, end + 3 - stmt, "dir_add(key, from);");
    seeded_line = 1 + static_cast<int>(std::count(
                          content.begin(),
                          content.begin() + static_cast<std::ptrdiff_t>(stmt),
                          '\n'));
    patched = true;
  }
  ASSERT_TRUE(patched) << "src/fs/xfs/xfs.cpp not found in corpus";

  const auto diags = lap::lint::lint_corpus(corpus);
  ASSERT_EQ(diags.size(), 1u) << [&] {
    std::string all;
    for (const auto& d : diags) all += format_diagnostic(d) + "\n";
    return all;
  }();
  EXPECT_EQ(diags[0].rule, "domain-confinement");
  EXPECT_NE(diags[0].file.find("src/fs/xfs/xfs.cpp"), std::string::npos);
  EXPECT_EQ(diags[0].line, seeded_line);
  EXPECT_NE(diags[0].message.find("dir_add"), std::string::npos);
  EXPECT_NE(diags[0].message.find("directory"), std::string::npos);
}

// --- indexer robustness: hostile input yields typed diags, never a crash ---

std::string index_input(const std::string& name) {
  return std::string(LAP_LINT_FIXTURE_DIR) + "/index/" + name;
}

TEST(LintIndexRobustness, TruncatedHeaderYieldsTypedDiagnostic) {
  const auto diags = lap::lint::lint_file(index_input("truncated.hpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "index-parse");
  EXPECT_EQ(diags[0].line, 6);
  EXPECT_NE(diags[0].message.find("unbalanced '{'"), std::string::npos);
}

TEST(LintIndexRobustness, DeepNestingIsDepthCappedNotStackOverflow) {
  const auto diags = lap::lint::lint_file(index_input("deep_nesting.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "index-parse");
  EXPECT_NE(diags[0].message.find("nesting deeper"), std::string::npos);
}

TEST(LintIndexRobustness, MacroHeavyDeclarationsIndexCleanly) {
  expect_diags(lap::lint::lint_file(index_input("macro_heavy.cpp")), {});
}

TEST(LintIndexRobustness, TemplateMembersIndexCleanly) {
  expect_diags(lap::lint::lint_file(index_input("template_members.hpp")), {});
}

TEST(LintIndexRobustness, CircularIncludePairIsANonEvent) {
  // The indexer never resolves includes, so a circular pair must index
  // cleanly — individually and as one corpus.
  expect_diags(lap::lint::lint_file(index_input("circular_a.hpp")), {});
  expect_diags(lap::lint::lint_file(index_input("circular_b.hpp")), {});
  const auto diags = lap::lint::lint_corpus(
      {{"src/core/circular_a.hpp", slurp(index_input("circular_a.hpp"))},
       {"src/core/circular_b.hpp", slurp(index_input("circular_b.hpp"))}});
  expect_diags(diags, {});
}

TEST(LintIndexRobustness, HostileSourceNeverThrows) {
  // Degenerate inputs straight through the library entry point.
  const char* inputs[] = {
      "",
      "{",
      "}",
      "}}}}{{{{",
      "class",
      "class ;",
      "struct A",
      "template <",
      "namespace {",
      "#define X {\nint y = 0;\n",
      "class A { class B { class C { int x; ",
      "operator<<(std::ostream&, int);",
  };
  for (const char* src : inputs) {
    EXPECT_NO_THROW({
      const auto diags =
          lap::lint::lint_source("src/core/hostile.cpp", src, {});
      (void)diags;
    }) << "input: " << src;
  }
}

// --- CI-scale features: --jobs, --cache, --sarif, --baseline ---------------

TEST(LintCli, JobsProducesIdenticalOutput) {
  const std::string tree = std::string(LAP_LINT_FIXTURE_DIR) + "/xtu";
  std::string serial;
  std::string parallel;
  const int rc1 = lap::lint::run_cli({"--tree", tree}, serial);
  const int rc2 = lap::lint::run_cli({"--jobs", "4", "--tree", tree}, parallel);
  EXPECT_EQ(rc1, rc2);
  EXPECT_EQ(serial, parallel);
}

TEST(LintCli, CacheWarmRunReproducesColdRunByteForByte) {
  namespace fs = std::filesystem;
  const std::string cache =
      (fs::temp_directory_path() / "lap_lint_test_cache.txt").string();
  fs::remove(cache);
  const std::string tree = std::string(LAP_LINT_FIXTURE_DIR) + "/xtu";
  std::string cold;
  std::string warm;
  const int rc1 = lap::lint::run_cli({"--cache", cache, "--tree", tree}, cold);
  EXPECT_TRUE(fs::exists(cache));
  const int rc2 = lap::lint::run_cli({"--cache", cache, "--tree", tree}, warm);
  EXPECT_EQ(rc1, 1);
  EXPECT_EQ(rc2, 1);
  EXPECT_EQ(cold, warm);
  fs::remove(cache);
}

TEST(LintCli, SarifOutputCarriesRulesAndResults) {
  namespace fs = std::filesystem;
  const std::string sarif =
      (fs::temp_directory_path() / "lap_lint_test.sarif").string();
  std::string out;
  const int rc = lap::lint::run_cli(
      {"--sarif", sarif, fixture("violate_no_rand.cpp")}, out);
  EXPECT_EQ(rc, 1);
  const std::string log = slurp(sarif);
  EXPECT_NE(log.find("https://json.schemastore.org/sarif-2.1.0.json"),
            std::string::npos);
  EXPECT_NE(log.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(log.find("\"ruleId\": \"no-rand\""), std::string::npos);
  EXPECT_NE(log.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(log.find("src/core/fixture_rand.cpp"), std::string::npos);
  // Rule metadata for every catalog entry rides along.
  for (const auto& r : lap::lint::rule_catalog()) {
    EXPECT_NE(log.find("\"id\": \"" + r.id + "\""), std::string::npos) << r.id;
  }
  fs::remove(sarif);
}

TEST(LintCli, BaselineGrandfathersFindingsAndReportsStaleEntries) {
  namespace fs = std::filesystem;
  const std::string baseline =
      (fs::temp_directory_path() / "lap_lint_test_baseline.txt").string();
  std::string out;
  EXPECT_EQ(lap::lint::run_cli(
                {"--write-baseline", baseline, fixture("violate_no_rand.cpp")},
                out),
            0);
  out.clear();
  EXPECT_EQ(lap::lint::run_cli(
                {"--baseline", baseline, fixture("violate_no_rand.cpp")}, out),
            0)
      << out;

  // A baseline entry that matches nothing is reported as a note, and the
  // run stays clean (notes are not violations).
  std::ofstream(baseline) << "no-rand src/never/exists.cpp\n";
  out.clear();
  EXPECT_EQ(lap::lint::run_cli(
                {"--baseline", baseline, fixture("clean_ok.cpp")}, out),
            0);
  EXPECT_NE(out.find("stale baseline entry"), std::string::npos) << out;
  fs::remove(baseline);
}

TEST(LintCli, ListRulesShowsScopeAndIndexNeeds) {
  std::string out;
  EXPECT_EQ(lap::lint::run_cli({"--list-rules"}, out), 0);
  EXPECT_NE(out.find("[tree-wide]"), std::string::npos) << out;
  EXPECT_NE(out.find("[directory-scoped]"), std::string::npos) << out;
  EXPECT_NE(out.find("[cross-TU, index]"), std::string::npos) << out;
}

}  // namespace
