# Render a reproduced figure from a bench CSV, e.g.:
#
#   ./build/bench/fig04_charisma_pafs_read_time --csv fig04.csv
#   gnuplot -e "csv='fig04.csv'; out='fig04.png'; metric=4" scripts/plot_figures.gnuplot
#
# metric column: 4 = avg_read_ms (Figs 4-7), 9 = disk accesses (Figs 8-11),
# 13 = writes per block (Table 2).
if (!exists("csv"))    csv = "fig04.csv"
if (!exists("out"))    out = "figure.png"
if (!exists("metric")) metric = 4

set terminal pngcairo size 900,600 font ",11"
set output out
set datafile separator ","
set key outside right
set xlabel '"Local cache" size (MB per node)'
set ylabel (metric == 4 ? "Average read time (ms)" : \
            metric == 9 ? "Disk accesses (blocks)" : \
            "Writes per block")
set logscale x 2
set xtics (1, 2, 4, 8, 16)
set grid ytics

# One line per algorithm, in file order.
algos = system(sprintf("tail -n +2 %s | cut -d, -f2 | awk '!seen[$0]++'", csv))
plot for [a in algos] \
  sprintf("< awk -F, '$2==\"%s\"' %s", a, csv) \
  using 3:metric with linespoints lw 2 pt 7 title a
