#!/usr/bin/env bash
# Build, test, and regenerate every reproduced figure/table, capturing the
# outputs the repository documents in EXPERIMENTS.md.
#
# The figure/table benches additionally dump machine-readable results into
# results/ — a CSV per artifact (the gnuplot inputs) and a metrics JSON per
# artifact (manifest + every run; schema in src/obs/metrics_json.hpp).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
# Project-invariant lint (determinism, container policy, error taxonomy,
# include hygiene, domain confinement) — same gate CI's lint job applies.
# `set -e` above makes any diagnostic abort the run here, before the
# test/bench sweep spends an hour on a tree that will fail CI anyway.
./build/tools/lap_lint --jobs "$(nproc)" --tree src
ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p results

for b in build/bench/*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "### $b"
  case "$name" in
    micro_obs)
      # Span-collector overhead baseline: kept in its own JSON so the
      # perf-smoke gate compares spans-off vs spans-on runs independently
      # of the engine/predictor micro numbers.
      "$b" --json bench/BENCH_obs_overhead.json
      ;;
    micro_lint)
      # Analyzer wall-time (cold vs warm cache): its own JSON, gated
      # independently so lint slowdowns don't hide behind engine numbers.
      "$b" --json bench/BENCH_lint.json
      ;;
    micro_*)
      # google-benchmark binaries: refresh the committed perf baseline that
      # CI's perf-smoke job gates against (2x; scripts/check_bench_regression.py)
      "$b" --json bench/BENCH_micro.json
      ;;
    fig* | table2*)
      "$b" --csv "results/$name.csv" --metrics-json "results/$name.json"
      ;;
    *)
      "$b"
      ;;
  esac
  echo
done 2>&1 | tee bench_output.txt
