#!/usr/bin/env bash
# Build, test, and regenerate every reproduced figure/table, capturing the
# outputs the repository documents in EXPERIMENTS.md.
#
# The figure/table benches additionally dump machine-readable results into
# results/ — a CSV per artifact (the gnuplot inputs) and a metrics JSON per
# artifact (manifest + every run; schema in src/obs/metrics_json.hpp).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
# Project-invariant lint (determinism, container policy, error taxonomy,
# include hygiene) — same gate CI's lint job applies.
./build/tools/lap_lint --tree src
ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p results

for b in build/bench/*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "### $b"
  case "$name" in
    micro_obs)
      # Span-collector overhead baseline: kept in its own JSON so the
      # perf-smoke gate compares spans-off vs spans-on runs independently
      # of the engine/predictor micro numbers.
      "$b" --json bench/BENCH_obs_overhead.json
      ;;
    micro_*)
      # google-benchmark binaries: refresh the committed perf baseline that
      # CI's perf-smoke job gates against (2x; scripts/check_bench_regression.py)
      "$b" --json bench/BENCH_micro.json
      ;;
    fig* | table2*)
      "$b" --csv "results/$name.csv" --metrics-json "results/$name.json"
      ;;
    *)
      "$b"
      ;;
  esac
  echo
done 2>&1 | tee bench_output.txt
