#!/usr/bin/env python3
"""Gate CI on micro-benchmark regressions.

Compares a freshly generated lap-bench-v1 JSON (see bench/bench_json.hpp)
against the committed baseline bench/BENCH_micro.json and fails when any
benchmark got more than FACTOR times slower (real_ns), or any binary's peak
RSS more than FACTOR times larger.

The factor is deliberately loose (2x by default): CI runners are shared and
noisy, so the gate catches accidental algorithmic regressions (a container
swap reverting to O(n), an allocation sneaking back into the hot loop), not
single-digit-percent drift.  A benchmark present only in the candidate is
reported but never fails (adding one needs no baseline change); a baseline
key missing from the candidate FAILS — a silently vanished benchmark is a
hole in the gate, so retiring one must update the baseline in the same
commit.

Shard-speedup ratios (each 'NAME/16[...]' family against its 'NAME/1[...]'
sibling, in items/s) are always reported; they only gate when
--shard-speedup is given and the host has >= 16 CPUs.

Usage:
    check_bench_regression.py CURRENT.json [BASELINE.json] [--factor 2.0]
"""

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "bench" / "BENCH_micro.json"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "lap-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly generated BENCH_micro.json")
    ap.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    ap.add_argument("--factor", type=float, default=2.0,
                    help="fail when current/baseline exceeds this (default 2.0)")
    ap.add_argument("--shard-speedup", type=float, default=None, metavar="R",
                    help="require every CURRENT benchmark family 'NAME/16[...]'"
                         " to reach R times the items/s of its 'NAME/1[...]'"
                         " sibling; skipped (with a notice) on hosts with"
                         " fewer than 16 CPUs, where 16 workers cannot"
                         " express a wall-clock speedup")
    args = ap.parse_args()

    cur = load(args.current)
    base = load(args.baseline)
    failures = []

    cur_b = cur.get("benchmarks", {})
    base_b = base.get("benchmarks", {})
    for name in sorted(base_b.keys() | cur_b.keys()):
        if name not in cur_b:
            print(f"  [FAIL] {name}: in baseline {args.baseline} but missing "
                  f"from {args.current}")
            failures.append(f"{name}: baseline benchmark missing from "
                            f"candidate — retired benchmarks must update the "
                            f"baseline in the same commit")
            continue
        if name not in base_b:
            print(f"  [new ] {name} (no baseline — not a failure)")
            continue
        b, c = base_b[name]["real_ns"], cur_b[name]["real_ns"]
        if b <= 0:
            continue
        ratio = c / b
        status = "FAIL" if ratio > args.factor else "ok  "
        print(f"  [{status}] {name}: {b:.1f} -> {c:.1f} ns ({ratio:.2f}x)")
        if ratio > args.factor:
            failures.append(f"{name}: {ratio:.2f}x slower")

    cur_r = cur.get("binaries", {})
    base_r = base.get("binaries", {})
    for name in sorted(base_r.keys() & cur_r.keys()):
        b, c = base_r[name]["max_rss_kb"], cur_r[name]["max_rss_kb"]
        if b <= 0:
            continue
        ratio = c / b
        status = "FAIL" if ratio > args.factor else "ok  "
        print(f"  [{status}] {name} peak RSS: {b:.0f} -> {c:.0f} KiB ({ratio:.2f}x)")
        if ratio > args.factor:
            failures.append(f"{name}: peak RSS {ratio:.2f}x larger")

    cpus = os.cpu_count() or 1
    gate_speedup = args.shard_speedup is not None and cpus >= 16
    if args.shard_speedup is not None and cpus < 16:
        print(f"\n[skip] --shard-speedup gate: host has {cpus} CPU(s); "
              "16 shard workers cannot show wall-clock speedup here "
              "(ratios below are informational)")
    printed_header = False
    for name, entry in sorted(cur_b.items()):
        if "/16" not in name:
            continue
        sib = name.replace("/16", "/1", 1)
        if sib not in cur_b:
            continue
        one = cur_b[sib].get("items_per_second", 0)
        many = entry.get("items_per_second", 0)
        if one <= 0:
            continue
        if not printed_header:
            print("\nShard speedup (items/s, 16 shards vs 1):")
            printed_header = True
        ratio = many / one
        fail = gate_speedup and ratio < args.shard_speedup
        status = "FAIL" if fail else "ok  " if gate_speedup else "info"
        need = (f" (need {args.shard_speedup:.1f}x)"
                if args.shard_speedup is not None else "")
        print(f"  [{status}] {name}: {ratio:.2f}x the events/sec "
              f"of {sib}{need}")
        if fail:
            failures.append(f"{name}: only {ratio:.2f}x speedup over {sib}")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond {args.factor}x:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nAll within {args.factor}x of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
