# Empty dependencies file for test_prefetch_manager.
# This may be replaced when dependencies are built.
