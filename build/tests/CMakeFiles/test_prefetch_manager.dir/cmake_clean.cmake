file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch_manager.dir/test_prefetch_manager.cpp.o"
  "CMakeFiles/test_prefetch_manager.dir/test_prefetch_manager.cpp.o.d"
  "test_prefetch_manager"
  "test_prefetch_manager.pdb"
  "test_prefetch_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
