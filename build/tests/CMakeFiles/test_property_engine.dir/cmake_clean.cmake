file(REMOVE_RECURSE
  "CMakeFiles/test_property_engine.dir/test_property_engine.cpp.o"
  "CMakeFiles/test_property_engine.dir/test_property_engine.cpp.o.d"
  "test_property_engine"
  "test_property_engine.pdb"
  "test_property_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
