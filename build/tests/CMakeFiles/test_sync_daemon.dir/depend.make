# Empty dependencies file for test_sync_daemon.
# This may be replaced when dependencies are built.
