file(REMOVE_RECURSE
  "CMakeFiles/test_sync_daemon.dir/test_sync_daemon.cpp.o"
  "CMakeFiles/test_sync_daemon.dir/test_sync_daemon.cpp.o.d"
  "test_sync_daemon"
  "test_sync_daemon.pdb"
  "test_sync_daemon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
