# Empty dependencies file for test_is_ppm.
# This may be replaced when dependencies are built.
