file(REMOVE_RECURSE
  "CMakeFiles/test_is_ppm.dir/test_is_ppm.cpp.o"
  "CMakeFiles/test_is_ppm.dir/test_is_ppm.cpp.o.d"
  "test_is_ppm"
  "test_is_ppm.pdb"
  "test_is_ppm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_is_ppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
