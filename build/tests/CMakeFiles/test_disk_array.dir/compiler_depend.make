# Empty compiler generated dependencies file for test_disk_array.
# This may be replaced when dependencies are built.
