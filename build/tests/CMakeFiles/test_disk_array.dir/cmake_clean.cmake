file(REMOVE_RECURSE
  "CMakeFiles/test_disk_array.dir/test_disk_array.cpp.o"
  "CMakeFiles/test_disk_array.dir/test_disk_array.cpp.o.d"
  "test_disk_array"
  "test_disk_array.pdb"
  "test_disk_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
