file(REMOVE_RECURSE
  "CMakeFiles/test_algorithm_registry.dir/test_algorithm_registry.cpp.o"
  "CMakeFiles/test_algorithm_registry.dir/test_algorithm_registry.cpp.o.d"
  "test_algorithm_registry"
  "test_algorithm_registry.pdb"
  "test_algorithm_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithm_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
