# Empty compiler generated dependencies file for test_algorithm_registry.
# This may be replaced when dependencies are built.
