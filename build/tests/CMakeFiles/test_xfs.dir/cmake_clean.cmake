file(REMOVE_RECURSE
  "CMakeFiles/test_xfs.dir/test_xfs.cpp.o"
  "CMakeFiles/test_xfs.dir/test_xfs.cpp.o.d"
  "test_xfs"
  "test_xfs.pdb"
  "test_xfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
