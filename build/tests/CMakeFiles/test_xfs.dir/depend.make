# Empty dependencies file for test_xfs.
# This may be replaced when dependencies are built.
