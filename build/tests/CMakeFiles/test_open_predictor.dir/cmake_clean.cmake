file(REMOVE_RECURSE
  "CMakeFiles/test_open_predictor.dir/test_open_predictor.cpp.o"
  "CMakeFiles/test_open_predictor.dir/test_open_predictor.cpp.o.d"
  "test_open_predictor"
  "test_open_predictor.pdb"
  "test_open_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_open_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
