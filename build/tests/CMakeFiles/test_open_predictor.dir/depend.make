# Empty dependencies file for test_open_predictor.
# This may be replaced when dependencies are built.
