file(REMOVE_RECURSE
  "CMakeFiles/test_vk_ppm.dir/test_vk_ppm.cpp.o"
  "CMakeFiles/test_vk_ppm.dir/test_vk_ppm.cpp.o.d"
  "test_vk_ppm"
  "test_vk_ppm.pdb"
  "test_vk_ppm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vk_ppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
