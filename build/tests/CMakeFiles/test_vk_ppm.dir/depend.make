# Empty dependencies file for test_vk_ppm.
# This may be replaced when dependencies are built.
