file(REMOVE_RECURSE
  "CMakeFiles/test_aggressive.dir/test_aggressive.cpp.o"
  "CMakeFiles/test_aggressive.dir/test_aggressive.cpp.o.d"
  "test_aggressive"
  "test_aggressive.pdb"
  "test_aggressive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aggressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
