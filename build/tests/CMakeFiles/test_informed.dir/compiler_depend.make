# Empty compiler generated dependencies file for test_informed.
# This may be replaced when dependencies are built.
