file(REMOVE_RECURSE
  "CMakeFiles/test_informed.dir/test_informed.cpp.o"
  "CMakeFiles/test_informed.dir/test_informed.cpp.o.d"
  "test_informed"
  "test_informed.pdb"
  "test_informed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_informed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
