# Empty compiler generated dependencies file for test_property_prefetch.
# This may be replaced when dependencies are built.
