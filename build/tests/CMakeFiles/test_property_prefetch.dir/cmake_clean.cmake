file(REMOVE_RECURSE
  "CMakeFiles/test_property_prefetch.dir/test_property_prefetch.cpp.o"
  "CMakeFiles/test_property_prefetch.dir/test_property_prefetch.cpp.o.d"
  "test_property_prefetch"
  "test_property_prefetch.pdb"
  "test_property_prefetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
