# Empty compiler generated dependencies file for test_cpu_contention.
# This may be replaced when dependencies are built.
