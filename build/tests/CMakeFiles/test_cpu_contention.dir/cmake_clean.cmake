file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_contention.dir/test_cpu_contention.cpp.o"
  "CMakeFiles/test_cpu_contention.dir/test_cpu_contention.cpp.o.d"
  "test_cpu_contention"
  "test_cpu_contention.pdb"
  "test_cpu_contention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
