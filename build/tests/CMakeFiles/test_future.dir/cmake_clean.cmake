file(REMOVE_RECURSE
  "CMakeFiles/test_future.dir/test_future.cpp.o"
  "CMakeFiles/test_future.dir/test_future.cpp.o.d"
  "test_future"
  "test_future.pdb"
  "test_future[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
