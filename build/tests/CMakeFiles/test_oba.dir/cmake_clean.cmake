file(REMOVE_RECURSE
  "CMakeFiles/test_oba.dir/test_oba.cpp.o"
  "CMakeFiles/test_oba.dir/test_oba.cpp.o.d"
  "test_oba"
  "test_oba.pdb"
  "test_oba[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
