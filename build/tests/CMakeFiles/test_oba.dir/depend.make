# Empty dependencies file for test_oba.
# This may be replaced when dependencies are built.
