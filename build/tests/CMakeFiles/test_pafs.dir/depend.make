# Empty dependencies file for test_pafs.
# This may be replaced when dependencies are built.
