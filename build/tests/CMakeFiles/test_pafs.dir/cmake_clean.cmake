file(REMOVE_RECURSE
  "CMakeFiles/test_pafs.dir/test_pafs.cpp.o"
  "CMakeFiles/test_pafs.dir/test_pafs.cpp.o.d"
  "test_pafs"
  "test_pafs.pdb"
  "test_pafs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pafs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
