# Empty compiler generated dependencies file for test_file_model.
# This may be replaced when dependencies are built.
