file(REMOVE_RECURSE
  "CMakeFiles/test_file_model.dir/test_file_model.cpp.o"
  "CMakeFiles/test_file_model.dir/test_file_model.cpp.o.d"
  "test_file_model"
  "test_file_model.pdb"
  "test_file_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_file_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
