# Empty compiler generated dependencies file for lap.
# This may be replaced when dependencies are built.
