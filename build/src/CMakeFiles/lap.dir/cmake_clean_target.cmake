file(REMOVE_RECURSE
  "liblap.a"
)
