
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/block_store.cpp" "src/CMakeFiles/lap.dir/cache/block_store.cpp.o" "gcc" "src/CMakeFiles/lap.dir/cache/block_store.cpp.o.d"
  "/root/repo/src/cache/sync_daemon.cpp" "src/CMakeFiles/lap.dir/cache/sync_daemon.cpp.o" "gcc" "src/CMakeFiles/lap.dir/cache/sync_daemon.cpp.o.d"
  "/root/repo/src/core/aggressive.cpp" "src/CMakeFiles/lap.dir/core/aggressive.cpp.o" "gcc" "src/CMakeFiles/lap.dir/core/aggressive.cpp.o.d"
  "/root/repo/src/core/algorithm_registry.cpp" "src/CMakeFiles/lap.dir/core/algorithm_registry.cpp.o" "gcc" "src/CMakeFiles/lap.dir/core/algorithm_registry.cpp.o.d"
  "/root/repo/src/core/is_ppm.cpp" "src/CMakeFiles/lap.dir/core/is_ppm.cpp.o" "gcc" "src/CMakeFiles/lap.dir/core/is_ppm.cpp.o.d"
  "/root/repo/src/core/oba.cpp" "src/CMakeFiles/lap.dir/core/oba.cpp.o" "gcc" "src/CMakeFiles/lap.dir/core/oba.cpp.o.d"
  "/root/repo/src/core/open_predictor.cpp" "src/CMakeFiles/lap.dir/core/open_predictor.cpp.o" "gcc" "src/CMakeFiles/lap.dir/core/open_predictor.cpp.o.d"
  "/root/repo/src/core/prefetch_manager.cpp" "src/CMakeFiles/lap.dir/core/prefetch_manager.cpp.o" "gcc" "src/CMakeFiles/lap.dir/core/prefetch_manager.cpp.o.d"
  "/root/repo/src/core/vk_ppm.cpp" "src/CMakeFiles/lap.dir/core/vk_ppm.cpp.o" "gcc" "src/CMakeFiles/lap.dir/core/vk_ppm.cpp.o.d"
  "/root/repo/src/disk/disk.cpp" "src/CMakeFiles/lap.dir/disk/disk.cpp.o" "gcc" "src/CMakeFiles/lap.dir/disk/disk.cpp.o.d"
  "/root/repo/src/disk/disk_array.cpp" "src/CMakeFiles/lap.dir/disk/disk_array.cpp.o" "gcc" "src/CMakeFiles/lap.dir/disk/disk_array.cpp.o.d"
  "/root/repo/src/driver/machine_config.cpp" "src/CMakeFiles/lap.dir/driver/machine_config.cpp.o" "gcc" "src/CMakeFiles/lap.dir/driver/machine_config.cpp.o.d"
  "/root/repo/src/driver/metrics.cpp" "src/CMakeFiles/lap.dir/driver/metrics.cpp.o" "gcc" "src/CMakeFiles/lap.dir/driver/metrics.cpp.o.d"
  "/root/repo/src/driver/report.cpp" "src/CMakeFiles/lap.dir/driver/report.cpp.o" "gcc" "src/CMakeFiles/lap.dir/driver/report.cpp.o.d"
  "/root/repo/src/driver/simulation.cpp" "src/CMakeFiles/lap.dir/driver/simulation.cpp.o" "gcc" "src/CMakeFiles/lap.dir/driver/simulation.cpp.o.d"
  "/root/repo/src/driver/sweep.cpp" "src/CMakeFiles/lap.dir/driver/sweep.cpp.o" "gcc" "src/CMakeFiles/lap.dir/driver/sweep.cpp.o.d"
  "/root/repo/src/fs/common/client.cpp" "src/CMakeFiles/lap.dir/fs/common/client.cpp.o" "gcc" "src/CMakeFiles/lap.dir/fs/common/client.cpp.o.d"
  "/root/repo/src/fs/common/file_model.cpp" "src/CMakeFiles/lap.dir/fs/common/file_model.cpp.o" "gcc" "src/CMakeFiles/lap.dir/fs/common/file_model.cpp.o.d"
  "/root/repo/src/fs/pafs/pafs.cpp" "src/CMakeFiles/lap.dir/fs/pafs/pafs.cpp.o" "gcc" "src/CMakeFiles/lap.dir/fs/pafs/pafs.cpp.o.d"
  "/root/repo/src/fs/xfs/xfs.cpp" "src/CMakeFiles/lap.dir/fs/xfs/xfs.cpp.o" "gcc" "src/CMakeFiles/lap.dir/fs/xfs/xfs.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/lap.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/lap.dir/net/network.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/lap.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/lap.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/lap.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/lap.dir/sim/resource.cpp.o.d"
  "/root/repo/src/trace/analysis.cpp" "src/CMakeFiles/lap.dir/trace/analysis.cpp.o" "gcc" "src/CMakeFiles/lap.dir/trace/analysis.cpp.o.d"
  "/root/repo/src/trace/charisma_gen.cpp" "src/CMakeFiles/lap.dir/trace/charisma_gen.cpp.o" "gcc" "src/CMakeFiles/lap.dir/trace/charisma_gen.cpp.o.d"
  "/root/repo/src/trace/patterns.cpp" "src/CMakeFiles/lap.dir/trace/patterns.cpp.o" "gcc" "src/CMakeFiles/lap.dir/trace/patterns.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/CMakeFiles/lap.dir/trace/record.cpp.o" "gcc" "src/CMakeFiles/lap.dir/trace/record.cpp.o.d"
  "/root/repo/src/trace/sprite_gen.cpp" "src/CMakeFiles/lap.dir/trace/sprite_gen.cpp.o" "gcc" "src/CMakeFiles/lap.dir/trace/sprite_gen.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/lap.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/lap.dir/trace/trace.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/lap.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/lap.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/lap.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/lap.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/lap.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/lap.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/lap.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/lap.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/lap.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/lap.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/lap.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/lap.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
