file(REMOVE_RECURSE
  "CMakeFiles/now_workload.dir/now_workload.cpp.o"
  "CMakeFiles/now_workload.dir/now_workload.cpp.o.d"
  "now_workload"
  "now_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
