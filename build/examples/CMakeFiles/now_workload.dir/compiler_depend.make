# Empty compiler generated dependencies file for now_workload.
# This may be replaced when dependencies are built.
