file(REMOVE_RECURSE
  "CMakeFiles/charisma_campaign.dir/charisma_campaign.cpp.o"
  "CMakeFiles/charisma_campaign.dir/charisma_campaign.cpp.o.d"
  "charisma_campaign"
  "charisma_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
