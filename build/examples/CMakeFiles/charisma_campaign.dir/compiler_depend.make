# Empty compiler generated dependencies file for charisma_campaign.
# This may be replaced when dependencies are built.
