file(REMOVE_RECURSE
  "CMakeFiles/pattern_lab.dir/pattern_lab.cpp.o"
  "CMakeFiles/pattern_lab.dir/pattern_lab.cpp.o.d"
  "pattern_lab"
  "pattern_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
