# Empty compiler generated dependencies file for pattern_lab.
# This may be replaced when dependencies are built.
