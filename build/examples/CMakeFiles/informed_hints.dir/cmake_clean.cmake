file(REMOVE_RECURSE
  "CMakeFiles/informed_hints.dir/informed_hints.cpp.o"
  "CMakeFiles/informed_hints.dir/informed_hints.cpp.o.d"
  "informed_hints"
  "informed_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/informed_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
