# Empty compiler generated dependencies file for informed_hints.
# This may be replaced when dependencies are built.
