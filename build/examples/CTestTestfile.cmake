# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--scale" "0.15")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_charisma_campaign "/root/repo/build/examples/charisma_campaign" "--scale" "0.15")
set_tests_properties(example_charisma_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_now_workload "/root/repo/build/examples/now_workload" "--scale" "0.1")
set_tests_properties(example_now_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pattern_lab "/root/repo/build/examples/pattern_lab" "--pattern" "strided")
set_tests_properties(example_pattern_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_informed_hints "/root/repo/build/examples/informed_hints" "--file-mb" "2")
set_tests_properties(example_informed_hints PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tool "/root/repo/build/examples/trace_tool" "gen" "sprite" "trace_tool_smoke.trace" "--scale" "0.05")
set_tests_properties(example_trace_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tool_stats "/root/repo/build/examples/trace_tool" "stats" "trace_tool_smoke.trace")
set_tests_properties(example_trace_tool_stats PROPERTIES  DEPENDS "example_trace_tool" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tool_run "/root/repo/build/examples/trace_tool" "run" "trace_tool_smoke.trace" "--algo" "Ln_Agr_IS_PPM:1")
set_tests_properties(example_trace_tool_run PROPERTIES  DEPENDS "example_trace_tool" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
