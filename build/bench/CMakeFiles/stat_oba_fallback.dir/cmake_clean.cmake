file(REMOVE_RECURSE
  "CMakeFiles/stat_oba_fallback.dir/stat_oba_fallback.cpp.o"
  "CMakeFiles/stat_oba_fallback.dir/stat_oba_fallback.cpp.o.d"
  "stat_oba_fallback"
  "stat_oba_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_oba_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
