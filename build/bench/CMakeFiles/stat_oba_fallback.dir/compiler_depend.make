# Empty compiler generated dependencies file for stat_oba_fallback.
# This may be replaced when dependencies are built.
