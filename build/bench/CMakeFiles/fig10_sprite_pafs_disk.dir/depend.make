# Empty dependencies file for fig10_sprite_pafs_disk.
# This may be replaced when dependencies are built.
