file(REMOVE_RECURSE
  "CMakeFiles/fig10_sprite_pafs_disk.dir/fig10_sprite_pafs_disk.cpp.o"
  "CMakeFiles/fig10_sprite_pafs_disk.dir/fig10_sprite_pafs_disk.cpp.o.d"
  "fig10_sprite_pafs_disk"
  "fig10_sprite_pafs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sprite_pafs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
