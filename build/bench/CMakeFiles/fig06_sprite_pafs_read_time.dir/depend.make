# Empty dependencies file for fig06_sprite_pafs_read_time.
# This may be replaced when dependencies are built.
