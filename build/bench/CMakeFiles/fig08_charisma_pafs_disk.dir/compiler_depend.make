# Empty compiler generated dependencies file for fig08_charisma_pafs_disk.
# This may be replaced when dependencies are built.
