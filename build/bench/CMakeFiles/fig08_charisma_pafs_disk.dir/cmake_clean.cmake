file(REMOVE_RECURSE
  "CMakeFiles/fig08_charisma_pafs_disk.dir/fig08_charisma_pafs_disk.cpp.o"
  "CMakeFiles/fig08_charisma_pafs_disk.dir/fig08_charisma_pafs_disk.cpp.o.d"
  "fig08_charisma_pafs_disk"
  "fig08_charisma_pafs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_charisma_pafs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
