file(REMOVE_RECURSE
  "CMakeFiles/fig04_charisma_pafs_read_time.dir/fig04_charisma_pafs_read_time.cpp.o"
  "CMakeFiles/fig04_charisma_pafs_read_time.dir/fig04_charisma_pafs_read_time.cpp.o.d"
  "fig04_charisma_pafs_read_time"
  "fig04_charisma_pafs_read_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_charisma_pafs_read_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
