# Empty dependencies file for fig04_charisma_pafs_read_time.
# This may be replaced when dependencies are built.
