file(REMOVE_RECURSE
  "CMakeFiles/stat_seed_sensitivity.dir/stat_seed_sensitivity.cpp.o"
  "CMakeFiles/stat_seed_sensitivity.dir/stat_seed_sensitivity.cpp.o.d"
  "stat_seed_sensitivity"
  "stat_seed_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_seed_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
