# Empty compiler generated dependencies file for stat_seed_sensitivity.
# This may be replaced when dependencies are built.
