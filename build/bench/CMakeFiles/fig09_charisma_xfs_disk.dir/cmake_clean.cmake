file(REMOVE_RECURSE
  "CMakeFiles/fig09_charisma_xfs_disk.dir/fig09_charisma_xfs_disk.cpp.o"
  "CMakeFiles/fig09_charisma_xfs_disk.dir/fig09_charisma_xfs_disk.cpp.o.d"
  "fig09_charisma_xfs_disk"
  "fig09_charisma_xfs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_charisma_xfs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
