# Empty compiler generated dependencies file for fig09_charisma_xfs_disk.
# This may be replaced when dependencies are built.
