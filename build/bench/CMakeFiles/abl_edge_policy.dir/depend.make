# Empty dependencies file for abl_edge_policy.
# This may be replaced when dependencies are built.
