file(REMOVE_RECURSE
  "CMakeFiles/abl_edge_policy.dir/abl_edge_policy.cpp.o"
  "CMakeFiles/abl_edge_policy.dir/abl_edge_policy.cpp.o.d"
  "abl_edge_policy"
  "abl_edge_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_edge_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
