# Empty compiler generated dependencies file for fig05_charisma_xfs_read_time.
# This may be replaced when dependencies are built.
