file(REMOVE_RECURSE
  "CMakeFiles/fig05_charisma_xfs_read_time.dir/fig05_charisma_xfs_read_time.cpp.o"
  "CMakeFiles/fig05_charisma_xfs_read_time.dir/fig05_charisma_xfs_read_time.cpp.o.d"
  "fig05_charisma_xfs_read_time"
  "fig05_charisma_xfs_read_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_charisma_xfs_read_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
