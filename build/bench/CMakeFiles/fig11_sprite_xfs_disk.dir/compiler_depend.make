# Empty compiler generated dependencies file for fig11_sprite_xfs_disk.
# This may be replaced when dependencies are built.
