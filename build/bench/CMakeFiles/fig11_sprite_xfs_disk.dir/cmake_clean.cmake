file(REMOVE_RECURSE
  "CMakeFiles/fig11_sprite_xfs_disk.dir/fig11_sprite_xfs_disk.cpp.o"
  "CMakeFiles/fig11_sprite_xfs_disk.dir/fig11_sprite_xfs_disk.cpp.o.d"
  "fig11_sprite_xfs_disk"
  "fig11_sprite_xfs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sprite_xfs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
