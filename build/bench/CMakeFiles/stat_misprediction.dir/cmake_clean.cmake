file(REMOVE_RECURSE
  "CMakeFiles/stat_misprediction.dir/stat_misprediction.cpp.o"
  "CMakeFiles/stat_misprediction.dir/stat_misprediction.cpp.o.d"
  "stat_misprediction"
  "stat_misprediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_misprediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
