# Empty compiler generated dependencies file for stat_misprediction.
# This may be replaced when dependencies are built.
