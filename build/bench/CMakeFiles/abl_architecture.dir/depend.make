# Empty dependencies file for abl_architecture.
# This may be replaced when dependencies are built.
