file(REMOVE_RECURSE
  "CMakeFiles/abl_architecture.dir/abl_architecture.cpp.o"
  "CMakeFiles/abl_architecture.dir/abl_architecture.cpp.o.d"
  "abl_architecture"
  "abl_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
