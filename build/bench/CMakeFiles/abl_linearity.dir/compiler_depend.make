# Empty compiler generated dependencies file for abl_linearity.
# This may be replaced when dependencies are built.
