file(REMOVE_RECURSE
  "CMakeFiles/abl_linearity.dir/abl_linearity.cpp.o"
  "CMakeFiles/abl_linearity.dir/abl_linearity.cpp.o.d"
  "abl_linearity"
  "abl_linearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
