# Empty compiler generated dependencies file for abl_informed.
# This may be replaced when dependencies are built.
