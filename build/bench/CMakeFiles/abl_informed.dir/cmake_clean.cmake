file(REMOVE_RECURSE
  "CMakeFiles/abl_informed.dir/abl_informed.cpp.o"
  "CMakeFiles/abl_informed.dir/abl_informed.cpp.o.d"
  "abl_informed"
  "abl_informed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_informed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
