file(REMOVE_RECURSE
  "CMakeFiles/table2_charisma_pafs_writes.dir/table2_charisma_pafs_writes.cpp.o"
  "CMakeFiles/table2_charisma_pafs_writes.dir/table2_charisma_pafs_writes.cpp.o.d"
  "table2_charisma_pafs_writes"
  "table2_charisma_pafs_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_charisma_pafs_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
