# Empty compiler generated dependencies file for table2_charisma_pafs_writes.
# This may be replaced when dependencies are built.
