# Empty dependencies file for fig07_sprite_xfs_read_time.
# This may be replaced when dependencies are built.
