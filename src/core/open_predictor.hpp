// Whole-file prefetching à la Kroeger & Long ("Predicting the future
// file-system actions from prior events", USENIX ATC 1996) — the paper's
// Section 1.1 baseline that "prefetches files before they are even opened"
// by remembering which file tends to be opened after which.
//
// The paper's verdict — useful for small Unix files, "too aggressive" for
// parallel environments with huge files — is reproduced by the
// abl_baselines bench.  The model here is the classic last-successor /
// most-frequent-successor table over the open sequence.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/flat_hash.hpp"
#include "util/units.hpp"

namespace lap {

class OpenSequencePredictor {
 public:
  /// Observe an open; returns the prediction for the *following* open (the
  /// historically most frequent successor of `file`), so the caller can
  /// prefetch that file right away.
  std::optional<FileId> on_open(FileId file);

  /// Current prediction for what follows `file`, without updating state.
  [[nodiscard]] std::optional<FileId> successor(FileId file) const;

  [[nodiscard]] std::size_t tracked_files() const { return table_.size(); }

 private:
  struct Successor {
    std::uint32_t file;
    std::uint64_t count;
    std::uint64_t last_used;
  };

  std::uint64_t clock_ = 0;
  std::optional<std::uint32_t> last_open_;
  // Keyed lookups only (never iterated), so slot order is irrelevant and
  // the flat table is a drop-in.
  FlatHashMap<std::uint32_t, std::vector<Successor>> table_;
};

}  // namespace lap
