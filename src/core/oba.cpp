// ObaPredictor is header-only; this TU anchors the module in the build so
// every subsystem has a .cpp with its name (and keeps a place for future
// out-of-line logic).
#include "core/oba.hpp"
