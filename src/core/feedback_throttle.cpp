#include "core/feedback_throttle.hpp"

#include <algorithm>
#include <cstdint>

#include "util/assert.hpp"

namespace lap {

FeedbackThrottle::FeedbackThrottle() : FeedbackThrottle(Params{}) {}

FeedbackThrottle::FeedbackThrottle(Params p) : p_(p), degree_(p.floor),
                                               peak_(p.floor) {
  LAP_EXPECTS(p_.floor >= 1);
  LAP_EXPECTS(p_.cap >= p_.floor);
  LAP_EXPECTS(p_.window >= 1);
  LAP_EXPECTS(p_.clamp_pct <= p_.raise_pct);
  LAP_EXPECTS(p_.raise_pct <= 100);
}

void FeedbackThrottle::on_used() { settle(true); }

void FeedbackThrottle::on_wasted() { settle(false); }

void FeedbackThrottle::settle(bool used) {
  if (used) ++window_used_;
  if (++window_settled_ < p_.window) return;
  decide();
  window_used_ = 0;
  window_settled_ = 0;
}

void FeedbackThrottle::decide() {
  // Integer thresholds: used/settled >= raise_pct% ramps up one step
  // (additive increase), < clamp_pct% halves (multiplicative decrease),
  // and the band between the two holds — the hysteresis that stops a
  // workload sitting near one threshold from flapping every window.
  const std::uint64_t used100 = std::uint64_t{window_used_} * 100;
  const std::uint64_t settled = window_settled_;
  if (used100 >= settled * p_.raise_pct) {
    if (degree_ < p_.cap) {
      ++degree_;
      ++raises_;
      peak_ = std::max(peak_, degree_);
    }
  } else if (used100 < settled * p_.clamp_pct) {
    const std::uint32_t next = std::max(degree_ / 2, p_.floor);
    if (next != degree_) {
      degree_ = next;
      ++clamps_;
    }
  }
}

}  // namespace lap
