// PrefetchManager — drives one prefetching "site".
//
// PAFS instantiates one manager per file server (the server in charge of a
// file keeps all its prefetch state, so the linear limit — one outstanding
// prefetched block per file — is exact).  xFS instantiates one manager per
// node (each node decides locally, so the limit is per node *and* file and
// several nodes may prefetch the same file in parallel: the paper's
// "not really linear" implementation).
//
// The manager keeps, per file, one IS_PPM predictor and one prefetch
// stream per requesting process (a process's accesses to a file form the
// request stream whose intervals are modelled).  A single *pump* per file
// enforces the linear limit — one prefetched block in flight per file —
// by round-robining over the readers' streams, so concurrent readers of a
// shared file share the file's prefetch slot.  A demand request whose
// blocks were not already available is a mis-predicted path: that reader's
// stream is rebuilt ("restarts once again from the miss-predicted
// block").
//
// Call on_request() for every demand read/write BEFORE issuing its demand
// fetches — the covered-path test relies on seeing the cache state as the
// request found it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "util/block.hpp"
#include "core/aggressive.hpp"
#include "core/algorithm_registry.hpp"
#include "core/best_offset.hpp"
#include "core/feedback_throttle.hpp"
#include "core/is_ppm.hpp"
#include "core/open_predictor.hpp"
#include "core/vk_ppm.hpp"
#include "sim/engine.hpp"
#include "sim/future.hpp"
#include "sim/task.hpp"
#include "util/flat_hash.hpp"

namespace lap {

class TraceSink;

/// Services the host file system provides to the prefetcher.
class PrefetchHost {  // lap-owns: value — interface handle
 public:
  virtual ~PrefetchHost() = default;

  /// Is the block in the cooperative cache or already being fetched?
  [[nodiscard]] virtual bool block_available(BlockKey key) const = 0;

  /// Bring one block into the cache speculatively (disk priority
  /// prio::kPrefetch), homing it near `target`.  Resolves when the block is
  /// in memory (or immediately if the fetch was elided).
  virtual SimFuture<Done> prefetch_fetch(BlockKey key, NodeId target) = 0;

  /// Current size of the file in blocks.
  [[nodiscard]] virtual std::uint32_t file_blocks(FileId file) const = 0;
};

struct PrefetchCounters {
  std::uint64_t issued = 0;           // prefetch fetches handed to the host
  std::uint64_t fallback_issued = 0;  // of which: cold-graph OBA fallback
  std::uint64_t retargets = 0;        // streams rebuilt after a mis-predicted path
  std::uint64_t streams_started = 0;
  // Feedback-throttle attribution (zero unless spec.feedback): degree
  // steps taken and the highest degree reached.  Peak merges with max
  // across managers, the others with sum.
  std::uint64_t degree_raises = 0;
  std::uint64_t degree_clamps = 0;
  std::uint32_t degree_peak = 1;
};

class PrefetchManager {
 public:
  /// `site` identifies this manager in the trace stream (PAFS's single
  /// global manager uses 0; xFS uses the node id + 1).  The invariant oracle
  /// keys outstanding-prefetch accounting on (site, file), which is exactly
  /// the paper's "per node and file" scope for xFS.
  PrefetchManager(Engine& eng, AlgorithmSpec spec, PrefetchHost& host,
                  const bool* stop_flag, std::uint32_t site = 0);

  /// Observe a demand request (read or write) on `file` by process `pid`
  /// running at `client`; may issue prefetches.
  void on_request(ProcId pid, NodeId client, FileId file, std::uint32_t first,
                  std::uint32_t nblocks);

  /// Observe an open.  Only the whole-file baseline acts on it: it floods
  /// the file historically opened next.
  void on_open(ProcId pid, NodeId client, FileId file);

  /// Disclose a process's future read requests on a file (the informed
  /// upper bound).  Ignored by every other algorithm.
  void provide_hints(ProcId pid, FileId file, std::vector<BlockRequest> hints);

  /// Drop all state for a deleted file.
  void on_file_deleted(FileId file);

  // Accuracy feedback (DESIGN.md §15): the host file system reports every
  // settlement of a prefetched block it classifies — first demand use, or
  // waste by eviction / invalidation / delete / supersede / forward-drop.
  // End-of-run shutdown settlements are deliberately not reported (no
  // decision can follow them).  Both are no-ops unless spec.feedback, and
  // they never touch the engine, so non-feedback algorithms are bit-exact
  // with and without the calls in place.
  void feedback_used() {
    if (!spec_.feedback) return;
    throttle_.on_used();
    sync_degree_counters();
  }
  void feedback_wasted() {
    if (!spec_.feedback) return;
    throttle_.on_wasted();
    sync_degree_counters();
  }
  /// Outstanding-prefetch degree currently in force: the throttle's degree
  /// under feedback, spec.max_outstanding otherwise.
  [[nodiscard]] std::uint32_t effective_outstanding() const {
    return spec_.feedback ? throttle_.degree() : spec_.max_outstanding;
  }

  [[nodiscard]] const PrefetchCounters& counters() const { return counters_; }
  [[nodiscard]] const AlgorithmSpec& spec() const { return spec_; }

  /// Attach the trace sink: issue/restart decisions become instants on the
  /// per-file prefetch tracks.
  void set_trace(TraceSink* sink) { trace_ = sink; }

 private:
  struct PidState {
    std::unique_ptr<IsPpmPredictor> predictor;  // IS_PPM only; shares the
                                                // file's pattern graph
    std::unique_ptr<VkPpmPredictor> vk;         // VK_PPM baseline only
    BestOffsetLearner* bo = nullptr;            // BO only; the file's learner
    std::vector<BlockRequest> hints;            // informed upper bound only
    std::size_t hint_cursor = 0;                // next undisclosed request
    std::unique_ptr<PrefetchStream> stream;     // this reader's active path
    std::int64_t last_end = 0;                  // one past the last request
    std::int64_t last_first = -1;               // first block of that request
    NodeId target{};                            // where its blocks should land
    bool seen = false;
  };
  struct FileState {
    std::unique_ptr<IsPpmGraph> graph;     // one pattern graph per file
    std::unique_ptr<VkPpmGraph> vk_graph;  // VK_PPM baseline only
    std::unique_ptr<BestOffsetLearner> bo; // BO baseline only
    FlatHashMap<std::uint32_t, PidState> pids;
    std::vector<std::uint32_t> pump_order;  // pids in arrival order
    std::size_t rr_cursor = 0;
    std::uint32_t active_pumps = 0;
    bool drained = false;
    // Distinguishes this state from a successor created after a delete
    // recycles the file id: a pump suspended across the delete must not
    // adopt the new state (it would double the outstanding limit and
    // corrupt active_pumps).
    std::uint64_t generation = 0;
  };
  struct PumpItem {
    StreamItem item;
    NodeId target;
    std::uint32_t pid = 0;       // reader whose stream yielded the item
    std::int64_t trigger = -1;   // first block of that reader's last request
  };

  [[nodiscard]] std::unique_ptr<PrefetchStream> build_stream(PidState& ps,
                                                             FileId file);
  std::optional<StreamItem> next_uncached(PrefetchStream& stream, FileId file);
  std::optional<PumpItem> next_from_any_stream(FileState& fs, FileId file);
  void ensure_pumps(FileId file, FileState& fs);
  SimTask pump(FileId file, std::uint64_t generation);
  /// The live state for `file`, or nullptr if it was deleted (and possibly
  /// re-created) since the caller captured `generation`.
  [[nodiscard]] FileState* live_state(FileId file, std::uint64_t generation);
  /// Open a provenance span for an issue decision (no-op without a
  /// collector); must run before prefetch_fetch so the fetch's disk/net
  /// operations find the open span to attribute their stages to.
  void note_issue(FileId file, std::uint32_t block, bool fallback,
                  std::uint32_t pid, std::int64_t trigger, NodeId target);
  void sync_degree_counters();
  void trace_request(ProcId pid, FileId file, std::uint32_t first,
                     std::uint32_t nblocks);
  void trace_issue(FileId file, std::uint32_t block, bool fallback);
  void trace_restart(FileId file, std::uint32_t from_block);

  Engine* eng_;
  AlgorithmSpec spec_;
  PrefetchHost* host_;
  const bool* stop_flag_;
  std::uint32_t site_ = 0;
  TraceSink* trace_ = nullptr;
  // Flat tables: on_request's files_/pids lookups are on the demand path
  // of every read and write.  No reference into either map is held across
  // an insert into the same map (pumps re-resolve through live_state()),
  // which is the flat-table stability contract.
  FlatHashMap<std::uint32_t, FileState> files_;
  // Whole-file baseline only: one open-sequence model per client node —
  // Kroeger & Long's predictor works on a single client's open stream, and
  // a globally interleaved sequence would be noise.
  FlatHashMap<std::uint32_t, OpenSequencePredictor> open_predictors_;
  std::uint64_t clock_ = 0;  // logical timestamps for MRU edges
  std::uint64_t generations_ = 0;  // FileState ids ever handed out
  // Accuracy-feedback state (DESIGN.md §15).  Lives inside the manager and
  // therefore inside the owning node's shard domain: the host feeds it from
  // settlement sites that execute in that domain, and only ensure_pumps /
  // pump read it, so sharded runs replay it bit-exactly.
  FeedbackThrottle throttle_;
  PrefetchCounters counters_;
};

}  // namespace lap
