// Prefetch streams (Section 3): a stream enumerates, one block at a time,
// the candidates a prefetching algorithm wants brought into the cache,
// starting from the position of the triggering demand request.
//
//  * SequentialStream models OBA.  With a budget of one block it is plain
//    conservative OBA; with an unbounded budget it is aggressive OBA,
//    running sequentially to the end of the file.
//  * GraphStream models IS_PPM.  With a budget of one predicted request it
//    is plain IS_PPM; unbounded, it is aggressive IS_PPM, walking the graph
//    as if every prediction had already been requested, stopping when the
//    next prediction falls outside the file.  When the graph is too cold to
//    predict ("whenever not enough information is available in the graph"),
//    the stream falls back to OBA behaviour, with its own block budget:
//    one block (the paper's conservative OBA, the default) or a sequential
//    run (ablation) — until the next demand request rebuilds the stream
//    from a warmer graph.
//
// Streams only enumerate candidates; the PrefetchManager filters out blocks
// that are already cached or in flight and paces issuance (the *linear*
// limitation: one outstanding prefetched block per file).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/is_ppm.hpp"
#include "core/vk_ppm.hpp"
#include "trace/patterns.hpp"

namespace lap {

inline constexpr std::uint64_t kUnboundedBudget =
    std::numeric_limits<std::uint64_t>::max();

struct StreamItem {
  std::uint32_t block;   // candidate block index within the file
  bool fallback;         // emitted by the OBA fallback path?
};

class PrefetchStream {
 public:
  virtual ~PrefetchStream() = default;
  /// Next candidate, or nullopt when the stream is exhausted.
  virtual std::optional<StreamItem> next() = 0;
  [[nodiscard]] virtual bool exhausted() const = 0;
  /// Is the stream currently running on its cold-graph OBA fallback?  The
  /// manager rebuilds such a stream as soon as the graph can predict again.
  [[nodiscard]] virtual bool in_fallback() const { return false; }
};

/// Sequential candidates [start, file_blocks), at most `block_budget` of
/// them.
class SequentialStream final : public PrefetchStream {
 public:
  SequentialStream(std::int64_t start, std::uint32_t file_blocks,
                   std::uint64_t block_budget);

  std::optional<StreamItem> next() override;
  [[nodiscard]] bool exhausted() const override;

 private:
  std::int64_t next_block_;
  std::uint32_t file_blocks_;
  std::uint64_t remaining_;
};

/// Graph-walk candidates: `request_budget` predicted requests (unbounded
/// for the aggressive variant), clipped to the file; one OBA fallback block
/// when no prediction is available at the start of the stream.
class GraphStream final : public PrefetchStream {
 public:
  GraphStream(IsPpmPredictor::Walker walker, std::int64_t fallback_start,
              std::uint32_t file_blocks, std::uint64_t request_budget,
              std::uint64_t fallback_budget);

  std::optional<StreamItem> next() override;
  [[nodiscard]] bool exhausted() const override;
  [[nodiscard]] bool in_fallback() const override {
    return fallback_mode_ && !done_;
  }

 private:
  void refill();

  IsPpmPredictor::Walker walker_;
  std::int64_t fallback_start_;
  std::uint32_t file_blocks_;
  std::uint64_t request_budget_;
  std::uint64_t fallback_budget_;  // blocks; 0 disables the fallback
  bool emitted_prediction_ = false;
  bool fallback_mode_ = false;
  bool done_ = false;
  std::deque<StreamItem> pending_;
  // Hard cap on emitted blocks: a cyclic graph over an already-cached
  // region would otherwise let an aggressive walk spin forever.
  std::uint64_t emitted_ = 0;
  std::uint64_t emit_cap_;
};

/// Blocks of a disclosed future request list (informed prefetching à la
/// Patterson et al.'s TIP, Section 1.1 [15,16]): the application has told
/// the system exactly what it will read, so the stream simply walks the
/// remaining hints.  No mis-predictions are possible; the only limits are
/// pacing and cache capacity.
class HintStream final : public PrefetchStream {
 public:
  /// `hints` is borrowed and must outlive the stream; emission starts at
  /// hint index `start` and stops at end-of-hints (or end-of-file).
  HintStream(const std::vector<BlockRequest>* hints, std::size_t start,
             std::uint32_t file_blocks);

  std::optional<StreamItem> next() override;
  [[nodiscard]] bool exhausted() const override;

 private:
  const std::vector<BlockRequest>* hints_;
  std::size_t index_;
  std::uint32_t within_ = 0;  // block offset inside the current hint
  std::uint32_t file_blocks_;
};

/// Chain of single-block VK_PPM predictions (the Vitter-Krishnan
/// baseline): one block per step, following the most-probable successor.
/// Budget counts blocks; 1 reproduces the original "prefetch the most
/// probable page" behaviour, unbounded gives its aggressive variant.
class VkStream final : public PrefetchStream {
 public:
  VkStream(VkPpmPredictor::Walker walker, std::int64_t fallback_start,
           std::uint32_t file_blocks, std::uint64_t block_budget,
           std::uint64_t fallback_budget);

  std::optional<StreamItem> next() override;
  [[nodiscard]] bool exhausted() const override;
  [[nodiscard]] bool in_fallback() const override {
    return fallback_mode_ && !done_;
  }

 private:
  VkPpmPredictor::Walker walker_;
  std::int64_t fallback_start_;
  std::uint32_t file_blocks_;
  std::uint64_t block_budget_;
  std::uint64_t fallback_budget_;
  bool emitted_prediction_ = false;
  bool fallback_mode_ = false;
  bool done_ = false;
  std::uint64_t emitted_ = 0;
  std::uint64_t emit_cap_;
};

}  // namespace lap
