#include "core/prefetch_manager.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "obs/span.hpp"
#include "obs/trace_event.hpp"
#include "util/assert.hpp"

namespace lap {
namespace {

FeedbackThrottle::Params throttle_params(const AlgorithmSpec& spec) {
  FeedbackThrottle::Params p;
  if (spec.feedback) {
    p.floor = spec.max_outstanding == AlgorithmSpec::kUnlimited
                  ? 1
                  : spec.max_outstanding;
    p.cap = spec.feedback_cap < p.floor ? p.floor : spec.feedback_cap;
  }
  return p;
}

}  // namespace

PrefetchManager::PrefetchManager(Engine& eng, AlgorithmSpec spec,
                                 PrefetchHost& host, const bool* stop_flag,
                                 std::uint32_t site)
    : eng_(&eng), spec_(spec), host_(&host), stop_flag_(stop_flag),
      site_(site), throttle_(throttle_params(spec)) {
  LAP_EXPECTS(stop_flag != nullptr);
}

void PrefetchManager::sync_degree_counters() {
  counters_.degree_raises = throttle_.raises();
  counters_.degree_clamps = throttle_.clamps();
  counters_.degree_peak = throttle_.peak();
}

void PrefetchManager::trace_request(ProcId pid, FileId file,
                                    std::uint32_t first,
                                    std::uint32_t nblocks) {
  trace_->name_thread(tracks::kFilePid, raw(file) + 1,
                      "file " + std::to_string(raw(file)));
  trace_->instant("prefetch", "prefetch.request", tracks::file(file),
                  eng_->now(),
                  {{"site", site_},
                   {"pid", raw(pid)},
                   {"first", first},
                   {"blocks", nblocks}});
}

void PrefetchManager::trace_issue(FileId file, std::uint32_t block,
                                  bool fallback) {
  trace_->name_thread(tracks::kFilePid, raw(file) + 1,
                      "file " + std::to_string(raw(file)));
  trace_->instant("prefetch", "prefetch.issue", tracks::file(file),
                  eng_->now(),
                  {{"site", site_},
                   {"block", block},
                   {"fallback", static_cast<int>(fallback)}});
}

void PrefetchManager::trace_restart(FileId file, std::uint32_t from_block) {
  trace_->name_thread(tracks::kFilePid, raw(file) + 1,
                      "file " + std::to_string(raw(file)));
  trace_->instant("prefetch", "prefetch.restart", tracks::file(file),
                  eng_->now(), {{"site", site_}, {"from_block", from_block}});
}

void PrefetchManager::note_issue(FileId file, std::uint32_t block,
                                 bool fallback, std::uint32_t pid,
                                 std::int64_t trigger, NodeId target) {
  SpanCollector* sp = eng_->span_collector();
  if (sp == nullptr) return;
  PrefetchOrigin origin = PrefetchOrigin::kSequential;
  switch (spec_.kind) {
    case AlgorithmSpec::Kind::kIsPpm:
    case AlgorithmSpec::Kind::kVkPpm:
      origin = fallback ? PrefetchOrigin::kFallback : PrefetchOrigin::kGraph;
      break;
    case AlgorithmSpec::Kind::kOba:
      origin = PrefetchOrigin::kSequential;
      break;
    case AlgorithmSpec::Kind::kInformed:
      origin = PrefetchOrigin::kHint;
      break;
    case AlgorithmSpec::Kind::kWholeFile:
      origin = PrefetchOrigin::kWholeFile;
      break;
    case AlgorithmSpec::Kind::kBestOffset:
      // An adopted offset of 1 *is* sequential readahead; larger offsets
      // generalise it, so BO issues stay in the sequential origin bucket
      // (keeping the origin tables' fixed row set) and carry their degree.
      origin = PrefetchOrigin::kSequential;
      break;
    case AlgorithmSpec::Kind::kNone:
      break;
  }
  const std::uint32_t degree =
      spec_.feedback ? throttle_.degree()
                     : (spec_.max_outstanding == AlgorithmSpec::kUnlimited
                            ? 0
                            : spec_.max_outstanding);
  sp->prefetch_predicted(site_, BlockKey{file, block}, origin, fallback, pid,
                         trigger, target, eng_->now(), degree);
}

std::unique_ptr<PrefetchStream> PrefetchManager::build_stream(PidState& ps,
                                                              FileId file) {
  const std::uint32_t blocks = host_->file_blocks(file);
  const std::uint64_t budget = spec_.aggressive ? kUnboundedBudget : 1;
  std::uint64_t fallback_budget = 0;
  if (spec_.oba_fallback) {
    fallback_budget = spec_.aggressive_fallback ? kUnboundedBudget : 1;
  }
  switch (spec_.kind) {
    case AlgorithmSpec::Kind::kOba:
      // Budget counts blocks for OBA: plain OBA prefetches a single block.
      return std::make_unique<SequentialStream>(ps.last_end, blocks, budget);
    case AlgorithmSpec::Kind::kIsPpm:
      LAP_ASSERT(ps.predictor != nullptr);
      return std::make_unique<GraphStream>(ps.predictor->walker(), ps.last_end,
                                           blocks, budget, fallback_budget);
    case AlgorithmSpec::Kind::kVkPpm:
      LAP_ASSERT(ps.vk != nullptr);
      return std::make_unique<VkStream>(ps.vk->walker(), ps.last_end, blocks,
                                        budget, fallback_budget);
    case AlgorithmSpec::Kind::kInformed:
      return std::make_unique<HintStream>(&ps.hints, ps.hint_cursor, blocks);
    case AlgorithmSpec::Kind::kBestOffset:
      // Trigger is the last block of the request just observed; the spec's
      // order field carries the BO degree (candidates trigger + i*offset).
      LAP_ASSERT(ps.bo != nullptr);
      return std::make_unique<BoStream>(
          ps.last_end - 1, ps.bo->offset(),
          static_cast<std::uint32_t>(spec_.order), blocks);
    case AlgorithmSpec::Kind::kNone:
    case AlgorithmSpec::Kind::kWholeFile:
      break;
  }
  LAP_ASSERT(false);  // kNone/kWholeFile never build per-request streams
  return nullptr;
}

std::optional<StreamItem> PrefetchManager::next_uncached(PrefetchStream& stream,
                                                         FileId file) {
  while (auto item = stream.next()) {
    if (!host_->block_available(BlockKey{file, item->block})) return item;
  }
  return std::nullopt;
}

std::optional<PrefetchManager::PumpItem> PrefetchManager::next_from_any_stream(
    FileState& fs, FileId file) {
  // Round-robin over the per-process streams of this file: the linear limit
  // is per *file* (one block in flight), but every reader's predicted path
  // advances in turn, so concurrent readers of a shared file all benefit.
  if (fs.pump_order.empty()) return std::nullopt;
  const std::size_t n = fs.pump_order.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t pid = fs.pump_order[fs.rr_cursor % fs.pump_order.size()];
    fs.rr_cursor = (fs.rr_cursor + 1) % fs.pump_order.size();
    auto pit = fs.pids.find(pid);
    if (pit == fs.pids.end() || pit->second.stream == nullptr) continue;
    if (auto item = next_uncached(*pit->second.stream, file)) {
      return PumpItem{*item, pit->second.target, pid, pit->second.last_first};
    }
  }
  return std::nullopt;
}

void PrefetchManager::on_request(ProcId pid, NodeId client, FileId file,
                                 std::uint32_t first, std::uint32_t nblocks) {
  if (!spec_.prefetching() || nblocks == 0) return;
  if (spec_.kind == AlgorithmSpec::Kind::kWholeFile) return;  // open-driven
  // Emitted before any restart/issue this request triggers, so a consumer
  // sees the demand request causally ahead of the decisions it caused.
  if (trace_ != nullptr) trace_request(pid, file, first, nblocks);
  FileState& fs = files_[raw(file)];
  if (fs.generation == 0) fs.generation = ++generations_;
  PidState& ps = fs.pids[raw(pid)];

  ++clock_;
  if (spec_.kind == AlgorithmSpec::Kind::kIsPpm) {
    if (!fs.graph) {
      fs.graph = std::make_unique<IsPpmGraph>(spec_.order, spec_.edge_policy);
    }
    if (!ps.predictor) {
      ps.predictor = std::make_unique<IsPpmPredictor>(*fs.graph);
    }
    ps.predictor->on_request(first, nblocks, clock_);
  } else if (spec_.kind == AlgorithmSpec::Kind::kVkPpm) {
    if (!fs.vk_graph) fs.vk_graph = std::make_unique<VkPpmGraph>(spec_.order);
    if (!ps.vk) ps.vk = std::make_unique<VkPpmPredictor>(*fs.vk_graph);
    ps.vk->on_request(first, nblocks);
  } else if (spec_.kind == AlgorithmSpec::Kind::kBestOffset) {
    if (!fs.bo) fs.bo = std::make_unique<BestOffsetLearner>();
    // Train on every demanded block: offsets shorter than a request are
    // only learnable from the intra-request stream.
    for (std::uint32_t b = first; b < first + nblocks; ++b) fs.bo->train(b);
    ps.bo = fs.bo.get();
  } else if (spec_.kind == AlgorithmSpec::Kind::kInformed) {
    // Advance the hint cursor past the request just made.  Writes (and
    // anything else the hints do not cover) leave it untouched.
    for (std::size_t look = ps.hint_cursor;
         look < ps.hints.size() && look < ps.hint_cursor + 4; ++look) {
      if (ps.hints[look].first == first && ps.hints[look].nblocks == nblocks) {
        ps.hint_cursor = look + 1;
        break;
      }
    }
  }

  // Was the whole request already in the cache / in flight (a correctly
  // predicted path)?  Must be evaluated before demand fetches are issued.
  bool covered = true;
  for (std::uint32_t b = first; b < first + nblocks; ++b) {
    if (!host_->block_available(BlockKey{file, b})) {
      covered = false;
      break;
    }
  }

  ps.last_end = static_cast<std::int64_t>(first) + nblocks;
  ps.last_first = static_cast<std::int64_t>(first);
  ps.target = client;
  if (!ps.seen) {
    ps.seen = true;
    fs.pump_order.push_back(raw(pid));
  }

  if (spec_.aggressive) {
    const bool graph_warmed_up =
        ps.stream != nullptr && ps.stream->in_fallback() &&
        ((ps.predictor != nullptr && ps.predictor->predict_next().has_value()) ||
         (ps.vk != nullptr && ps.vk->predict_next().has_value()));
    if (!covered || ps.stream == nullptr || graph_warmed_up) {
      // Mis-predicted path: rebuild this reader's stream from the faulting
      // request ("restarts once again from the miss-predicted block").  A
      // stream still running on its OBA fallback is also rebuilt as soon
      // as the graph knows enough to predict.  A correctly predicted path
      // continues untouched, "as if the user had not requested any block".
      if (ps.stream != nullptr && !covered) {
        ++counters_.retargets;
        if (trace_ != nullptr) trace_restart(file, first);
      }
      ++counters_.streams_started;
      ps.stream = build_stream(ps, file);
    }
    ensure_pumps(file, fs);
    return;
  }

  // Conservative algorithms: a fresh, small stream per request, issued all
  // at once (no pacing; plain IS_PPM prefetches a whole predicted request
  // in parallel, plain OBA a single block).
  ++counters_.streams_started;
  ps.stream = build_stream(ps, file);
  while (auto item = next_uncached(*ps.stream, file)) {
    ++counters_.issued;
    if (item->fallback) ++counters_.fallback_issued;
    if (trace_ != nullptr) trace_issue(file, item->block, item->fallback);
    note_issue(file, item->block, item->fallback, raw(pid),
               static_cast<std::int64_t>(first), client);
    (void)host_->prefetch_fetch(BlockKey{file, item->block}, client);
  }
}

void PrefetchManager::ensure_pumps(FileId file, FileState& fs) {
  if (spec_.max_outstanding == AlgorithmSpec::kUnlimited) {
    // Flooding variant (ablation / unlimited-aggressiveness study): issue
    // everything every stream yields right now.
    while (auto item = next_from_any_stream(fs, file)) {
      ++counters_.issued;
      if (item->item.fallback) ++counters_.fallback_issued;
      if (trace_ != nullptr) {
        trace_issue(file, item->item.block, item->item.fallback);
      }
      note_issue(file, item->item.block, item->item.fallback, item->pid,
                 item->trigger, item->target);
      (void)host_->prefetch_fetch(BlockKey{file, item->item.block},
                                  item->target);
    }
    return;
  }
  while (fs.active_pumps < effective_outstanding()) {
    ++fs.active_pumps;
    pump(file, fs.generation);
    // pump() runs synchronously until its first co_await and may finish
    // (and decrement active_pumps) immediately if nothing is prefetchable.
    auto it = files_.find(raw(file));
    if (it == files_.end() || it->second.drained) break;
  }
}

PrefetchManager::FileState* PrefetchManager::live_state(
    FileId file, std::uint64_t generation) {
  auto it = files_.find(raw(file));
  if (it == files_.end() || it->second.generation != generation) return nullptr;
  return &it->second;
}

SimTask PrefetchManager::pump(FileId file, std::uint64_t generation) {
  for (;;) {
    if (*stop_flag_) break;
    // Re-resolve by generation: if the file was deleted while this pump was
    // suspended, its state is gone even if a later request on a recycled id
    // has created a new one (that state has its own pumps).
    FileState* fs = live_state(file, generation);
    if (fs == nullptr) co_return;
    // Feedback clamp-down: surplus pumps shed themselves once their
    // current fetch completes, bringing the file back under the degree.
    if (fs->active_pumps > effective_outstanding()) break;
    auto item = next_from_any_stream(*fs, file);
    if (!item) {
      fs->drained = true;
      break;
    }
    fs->drained = false;
    ++counters_.issued;
    if (item->item.fallback) ++counters_.fallback_issued;
    if (trace_ != nullptr) trace_issue(file, item->item.block, item->item.fallback);
    note_issue(file, item->item.block, item->item.fallback, item->pid,
               item->trigger, item->target);
    // The linear limitation: this pump waits for the block to arrive
    // before asking any stream for the next one.
    co_await host_->prefetch_fetch(BlockKey{file, item->item.block},
                                   item->target);
  }
  if (FileState* fs = live_state(file, generation)) {
    LAP_ASSERT(fs->active_pumps > 0);
    --fs->active_pumps;
  }
}

void PrefetchManager::provide_hints(ProcId pid, FileId file,
                                    std::vector<BlockRequest> hints) {
  if (spec_.kind != AlgorithmSpec::Kind::kInformed) return;
  PidState& ps = files_[raw(file)].pids[raw(pid)];
  ps.hints = std::move(hints);
  ps.hint_cursor = 0;
}

void PrefetchManager::on_open(ProcId pid, NodeId client, FileId file) {
  if (spec_.kind != AlgorithmSpec::Kind::kWholeFile) return;
  const auto predicted = open_predictors_[raw(client)].on_open(file);
  if (!predicted || !host_->file_blocks(*predicted)) return;
  // "Whenever the system is able to predict that a given file is going to
  // be used, the whole file is prefetched" — flood every block of the
  // predicted file that is not already available.
  ++counters_.streams_started;
  const std::uint32_t blocks = host_->file_blocks(*predicted);
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const BlockKey key{*predicted, b};
    if (host_->block_available(key)) continue;
    ++counters_.issued;
    if (trace_ != nullptr) trace_issue(*predicted, b, /*fallback=*/false);
    note_issue(*predicted, b, /*fallback=*/false, raw(pid), /*trigger=*/-1,
               client);
    (void)host_->prefetch_fetch(key, client);
  }
}

void PrefetchManager::on_file_deleted(FileId file) {
  // Pumps re-resolve the file state on every iteration, so erasing it here
  // makes them exit at their next wake-up.
  files_.erase(raw(file));
}

}  // namespace lap
