// IS_PPM — the Interval & Size prediction-by-partial-match predictor
// (Section 2.2 of the paper).
//
// A request stream is modelled as pairs (offset interval, size): the
// interval is the distance in blocks between the first block of a request
// and the first block of the previous one; the size is the request's length
// in blocks.  A jth-order predictor interns one graph node per distinct
// window of the last j pairs; a directed edge records that one window was
// observed immediately after another, labelled with the (logical) time it
// was last traversed.  Prediction follows the most-recently-used edge —
// the paper found MRU edges beat the classic PPM most-frequent choice for
// file access (the frequency policy is kept for the ablation bench).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace lap {

struct IntervalSize {
  std::int64_t interval = 0;  // blocks between consecutive request starts
  std::uint32_t size = 0;     // request length in blocks

  friend constexpr bool operator==(IntervalSize, IntervalSize) = default;
};

class IsPpmGraph {
 public:
  enum class EdgePolicy { kMostRecent, kMostFrequent };

  explicit IsPpmGraph(int order, EdgePolicy policy = EdgePolicy::kMostRecent);

  /// Intern the node for `context` (exactly `order` pairs, oldest first),
  /// creating it if new.  Returns its id.
  int intern(std::span<const IntervalSize> context);

  /// Record (or refresh) the edge from -> to at logical time `timestamp`.
  void link(int from, int to, std::uint64_t timestamp);

  /// The edge-policy successor of `node`, or nullopt if it has no
  /// out-edges.
  [[nodiscard]] std::optional<int> successor(int node) const;

  /// The newest (interval, size) pair of a node: the prediction it carries.
  [[nodiscard]] const IntervalSize& last_pair(int node) const;

  [[nodiscard]] int order() const { return order_; }
  [[nodiscard]] EdgePolicy policy() const { return policy_; }
  [[nodiscard]] std::size_t node_count() const { return edges_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

 private:
  struct Edge {
    int to;
    std::uint64_t last_used;
    std::uint64_t count;
  };
  // Interning is allocation-free on the lookup path: the candidate context
  // arrives as a span, is fingerprinted in place, and is compared directly
  // against the flat context pool — a key vector is materialised never
  // (contexts_ grows only when a genuinely new node is created).  The
  // index is open-addressing and append-only (nodes are never removed), so
  // each slot just pairs the fingerprint with the node id.
  struct IndexSlot {
    std::uint64_t fingerprint;
    int id;  // -1 = empty
  };

  [[nodiscard]] static std::uint64_t fingerprint(
      std::span<const IntervalSize> context) noexcept;
  [[nodiscard]] std::span<const IntervalSize> context_of(int id) const {
    return {contexts_.data() + static_cast<std::size_t>(id) * order_,
            static_cast<std::size_t>(order_)};
  }
  void grow_index();

  int order_;
  EdgePolicy policy_;
  std::vector<std::vector<Edge>> edges_;   // per node, in id order
  std::vector<IntervalSize> contexts_;     // node i: [i*order_, (i+1)*order_)
  std::vector<IndexSlot> index_;           // power-of-two, linear probing
  std::size_t edge_count_ = 0;
};

/// Per-stream IS_PPM state: the rolling context of one request stream (one
/// process's accesses to one file) over a graph that is *shared* between
/// all of the file's readers — in PAFS the file's server keeps a single
/// pattern graph, so a new process re-reading a known file predicts from
/// its first intervals, including where earlier readers stopped.
class IsPpmPredictor {
 public:
  /// `graph` is shared, not owned; it must outlive the predictor.
  explicit IsPpmPredictor(IsPpmGraph& graph);

  struct Prediction {
    std::int64_t first_block;  // may be out of file bounds; caller clips
    std::uint32_t nblocks;
  };

  /// Observe a demand request (first block + length, logical timestamp).
  void on_request(std::int64_t first_block, std::uint32_t nblocks,
                  std::uint64_t timestamp);

  /// Predict the single next request after the last observed one.
  [[nodiscard]] std::optional<Prediction> predict_next() const;

  /// A speculative walk for aggressive prefetching: successive calls yield
  /// the chain of predicted requests, each treated as if it had happened.
  /// The walk reads the graph but never modifies it.
  class Walker {
   public:
    [[nodiscard]] std::optional<Prediction> next();

   private:
    friend class IsPpmPredictor;
    Walker(const IsPpmGraph* graph, std::optional<int> node, std::int64_t offset)
        : graph_(graph), node_(node), offset_(offset) {}
    const IsPpmGraph* graph_;
    std::optional<int> node_;
    std::int64_t offset_;
  };

  /// Start a walk from the current stream position.
  [[nodiscard]] Walker walker() const;

  [[nodiscard]] const IsPpmGraph& graph() const { return *graph_; }
  [[nodiscard]] bool has_context() const { return current_node_.has_value(); }
  [[nodiscard]] std::uint64_t requests_seen() const { return requests_seen_; }

 private:
  IsPpmGraph* graph_;
  // Sliding window of the last `order` pairs, oldest first.  A plain
  // vector beats a deque here: order is tiny (1-3), the contiguous window
  // doubles as the intern() lookup span, and after warm-up the erase-front
  // shuffle reuses the same capacity forever (no allocation per request).
  std::vector<IntervalSize> context_;
  std::optional<int> current_node_;        // node for `context_` when full
  std::optional<std::int64_t> last_first_; // previous request's first block
  std::int64_t last_end_ = 0;              // one past the last request
  std::uint64_t requests_seen_ = 0;
};

}  // namespace lap
