// Best-Offset prefetching (Michaud, HPCA 2016), adapted from cache lines
// to file blocks as a modern baseline against the paper's 1999 algorithms.
//
// The learner keeps a small table of recently demanded blocks (the RR
// table) and a score per candidate offset.  Candidates are tested
// round-robin, one per training access: when block X arrives and X - d is
// in the RR table, offset d's score goes up — evidence that prefetching
// at distance d would have been timely.  An offset that reaches SCORE_MAX
// is adopted immediately; otherwise the best scorer is adopted when the
// round budget runs out (ties break toward the smallest offset, the
// least speculative choice).  A best score below BAD_SCORE turns
// prefetching off until a later round finds a usable offset again.
//
// The stream side is the snippet-canonical degree loop: a request ending
// at block X yields candidates X + i*D for i = 1..degree.  BO is wired as
// a *conservative* algorithm (per-request flood, like plain IS_PPM): each
// demand request issues its whole candidate set at once, so the paper's
// linear limitation does not apply to it — that contrast is the point of
// the BO:d baseline.
//
// All state is integer-only and per file, owned by the node's
// PrefetchManager, so sharded runs stay bit-exact for the same reason the
// PPM graphs do: training and prediction happen in the owning domain in
// canonical event order.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/aggressive.hpp"

namespace lap {

class BestOffsetLearner {
 public:
  struct Params {
    std::uint32_t max_offset = 16;   // candidate offsets 1..max_offset
    std::uint32_t rr_entries = 32;   // recent-requests ring capacity
    std::uint32_t score_max = 12;    // early-adopt threshold
    std::uint32_t round_max = 8;     // rounds before forced adoption
    std::uint32_t bad_score = 2;     // best below this disables prefetch
  };

  BestOffsetLearner();  // default parameters
  explicit BestOffsetLearner(Params p);

  /// Train on one demanded block.  Tests the next candidate offset
  /// round-robin against the RR table, then records the block.
  void train(std::uint32_t block);

  /// Adopted offset; 0 = prefetching disabled (no usable pattern).
  /// Starts at 1 (next-line) until the first learning phase completes.
  [[nodiscard]] std::uint32_t offset() const { return offset_; }

  // Introspection for tests.
  [[nodiscard]] std::uint32_t round() const { return round_; }
  [[nodiscard]] std::uint32_t score(std::uint32_t offset) const;

 private:
  void adopt();
  [[nodiscard]] bool in_rr(std::uint32_t block) const;

  Params p_;
  std::uint32_t offset_ = 1;       // adopted offset (0 = off)
  std::vector<std::uint32_t> scores_;
  std::uint32_t candidate_ = 0;    // index of the next offset to test
  std::uint32_t round_ = 0;
  std::vector<std::uint32_t> rr_;  // ring of recent blocks
  std::uint32_t rr_head_ = 0;
  std::uint32_t rr_size_ = 0;
};

/// PrefetchStream over the learner's adopted offset: candidates
/// trigger + i*offset for i = 1..degree, clipped to the file.
class BoStream final : public PrefetchStream {
 public:
  BoStream(std::int64_t trigger, std::uint32_t offset, std::uint32_t degree,
           std::uint32_t file_blocks);

  std::optional<StreamItem> next() override;
  [[nodiscard]] bool exhausted() const override;

 private:
  std::int64_t trigger_;
  std::uint32_t offset_;
  std::uint32_t degree_;
  std::uint32_t file_blocks_;
  std::uint32_t i_ = 1;  // next multiple to emit
};

}  // namespace lap
