#include "core/open_predictor.hpp"

#include <optional>

namespace lap {

std::optional<FileId> OpenSequencePredictor::on_open(FileId file) {
  ++clock_;
  if (last_open_.has_value() && *last_open_ != raw(file)) {
    auto& successors = table_[*last_open_];
    bool found = false;
    for (Successor& s : successors) {
      if (s.file == raw(file)) {
        ++s.count;
        s.last_used = clock_;
        found = true;
        break;
      }
    }
    if (!found) successors.push_back(Successor{raw(file), 1, clock_});
  }
  last_open_ = raw(file);
  return successor(file);
}

std::optional<FileId> OpenSequencePredictor::successor(FileId file) const {
  auto it = table_.find(raw(file));
  if (it == table_.end() || it->second.empty()) return std::nullopt;
  const Successor* best = &it->second.front();
  for (const Successor& s : it->second) {
    if (s.count > best->count ||
        (s.count == best->count && s.last_used > best->last_used)) {
      best = &s;
    }
  }
  return FileId{best->file};
}

}  // namespace lap
