// VK_PPM — the classic prediction-by-partial-match prefetcher of Vitter &
// Krishnan ("Optimal prefetching via data compression", JACM 1996), the
// starting point of the paper's IS_PPM family (Section 1.1).
//
// Unlike IS_PPM it models the sequence of *accessed block ids*: a jth-order
// graph keyed by the last j block numbers predicts which block tends to
// follow, choosing the *most probable* (most frequently observed) successor
// — both exactly the properties the paper argues against for file systems:
// a block must have been accessed once before it can ever be predicted, and
// frequency reacts slowly to pattern changes.  Implemented here as the
// baseline that lets the repository reproduce that comparison.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

namespace lap {

class VkPpmGraph {
 public:
  explicit VkPpmGraph(int order);

  /// Record that `next` followed the context `ctx` (exactly `order` ids).
  void observe(std::span<const std::uint32_t> ctx, std::uint32_t next);

  /// Most probable successor of `ctx`, if any.
  [[nodiscard]] std::optional<std::uint32_t> predict(
      std::span<const std::uint32_t> ctx) const;
  [[nodiscard]] std::optional<std::uint32_t> predict(
      std::initializer_list<std::uint32_t> ctx) const {
    return predict(std::span<const std::uint32_t>{ctx.begin(), ctx.size()});
  }

  [[nodiscard]] int order() const { return order_; }
  [[nodiscard]] std::size_t context_count() const { return successors_.size(); }

 private:
  struct Successor {
    std::uint32_t block;
    std::uint64_t count;
    std::uint64_t last_used;
  };
  // Same allocation-free interning layout as IsPpmGraph: contexts live
  // back-to-back in one flat pool, looked up through an append-only
  // open-addressing index of (fingerprint, id) pairs, with the span
  // compared directly against the pool — no per-lookup key vector.
  struct IndexSlot {
    std::uint64_t fingerprint;
    int id;  // -1 = empty
  };

  [[nodiscard]] static std::uint64_t fingerprint(
      std::span<const std::uint32_t> ctx) noexcept;
  [[nodiscard]] std::span<const std::uint32_t> context_of(int id) const {
    return {ctx_pool_.data() + static_cast<std::size_t>(id) * order_,
            static_cast<std::size_t>(order_)};
  }
  /// Find `ctx` in the index; returns its id or -1.  `insert_pos`, when
  /// non-null, receives the probe position a new entry would occupy.
  [[nodiscard]] int lookup(std::span<const std::uint32_t> ctx,
                           std::size_t* insert_pos) const;
  void grow_index();

  int order_;
  std::uint64_t clock_ = 0;
  std::vector<std::vector<Successor>> successors_;  // per context, id order
  std::vector<std::uint32_t> ctx_pool_;  // id i: [i*order_, (i+1)*order_)
  std::vector<IndexSlot> index_;         // power-of-two, linear probing
};

/// Per-stream state over a shared per-file VK graph: feeds the block-id
/// sequence (every block of every request) and predicts successor blocks.
class VkPpmPredictor {
 public:
  explicit VkPpmPredictor(VkPpmGraph& graph);

  /// Observe a demand request; every covered block extends the sequence.
  void on_request(std::uint32_t first_block, std::uint32_t nblocks);

  /// Most probable next block after the current context.
  [[nodiscard]] std::optional<std::uint32_t> predict_next() const;

  /// Speculative chain walk for the aggressive variant: each step treats
  /// the prediction as if it had been accessed.
  class Walker {
   public:
    [[nodiscard]] std::optional<std::uint32_t> next();

   private:
    friend class VkPpmPredictor;
    Walker(const VkPpmGraph* graph, std::vector<std::uint32_t> ctx)
        : graph_(graph), ctx_(std::move(ctx)) {}
    const VkPpmGraph* graph_;
    std::vector<std::uint32_t> ctx_;  // empty = not enough history
  };

  [[nodiscard]] Walker walker() const;
  [[nodiscard]] bool has_context() const {
    return static_cast<int>(context_.size()) == graph_->order();
  }

 private:
  void push_block(std::uint32_t block);

  VkPpmGraph* graph_;
  // Sliding window of the last `order` block ids, oldest first (vector for
  // the same reasons as IsPpmPredictor: tiny, contiguous, allocation-free
  // after warm-up).
  std::vector<std::uint32_t> context_;
};

}  // namespace lap
