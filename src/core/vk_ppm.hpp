// VK_PPM — the classic prediction-by-partial-match prefetcher of Vitter &
// Krishnan ("Optimal prefetching via data compression", JACM 1996), the
// starting point of the paper's IS_PPM family (Section 1.1).
//
// Unlike IS_PPM it models the sequence of *accessed block ids*: a jth-order
// graph keyed by the last j block numbers predicts which block tends to
// follow, choosing the *most probable* (most frequently observed) successor
// — both exactly the properties the paper argues against for file systems:
// a block must have been accessed once before it can ever be predicted, and
// frequency reacts slowly to pattern changes.  Implemented here as the
// baseline that lets the repository reproduce that comparison.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

namespace lap {

class VkPpmGraph {
 public:
  explicit VkPpmGraph(int order);

  /// Record that `next` followed the context `ctx` (exactly `order` ids).
  void observe(const std::vector<std::uint32_t>& ctx, std::uint32_t next);

  /// Most probable successor of `ctx`, if any.
  [[nodiscard]] std::optional<std::uint32_t> predict(
      const std::vector<std::uint32_t>& ctx) const;

  [[nodiscard]] int order() const { return order_; }
  [[nodiscard]] std::size_t context_count() const { return table_.size(); }

 private:
  struct Successor {
    std::uint32_t block;
    std::uint64_t count;
    std::uint64_t last_used;
  };
  struct KeyHash {
    std::size_t operator()(const std::vector<std::uint32_t>& v) const noexcept;
  };

  int order_;
  std::uint64_t clock_ = 0;
  std::unordered_map<std::vector<std::uint32_t>, std::vector<Successor>, KeyHash>
      table_;
};

/// Per-stream state over a shared per-file VK graph: feeds the block-id
/// sequence (every block of every request) and predicts successor blocks.
class VkPpmPredictor {
 public:
  explicit VkPpmPredictor(VkPpmGraph& graph);

  /// Observe a demand request; every covered block extends the sequence.
  void on_request(std::uint32_t first_block, std::uint32_t nblocks);

  /// Most probable next block after the current context.
  [[nodiscard]] std::optional<std::uint32_t> predict_next() const;

  /// Speculative chain walk for the aggressive variant: each step treats
  /// the prediction as if it had been accessed.
  class Walker {
   public:
    [[nodiscard]] std::optional<std::uint32_t> next();

   private:
    friend class VkPpmPredictor;
    Walker(const VkPpmGraph* graph, std::vector<std::uint32_t> ctx)
        : graph_(graph), ctx_(std::move(ctx)) {}
    const VkPpmGraph* graph_;
    std::vector<std::uint32_t> ctx_;  // empty = not enough history
  };

  [[nodiscard]] Walker walker() const;
  [[nodiscard]] bool has_context() const {
    return static_cast<int>(context_.size()) == graph_->order();
  }

 private:
  void push_block(std::uint32_t block);

  VkPpmGraph* graph_;
  std::deque<std::uint32_t> context_;
};

}  // namespace lap
