#include "core/best_offset.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "util/assert.hpp"

namespace lap {

BestOffsetLearner::BestOffsetLearner() : BestOffsetLearner(Params{}) {}

BestOffsetLearner::BestOffsetLearner(Params p)
    : p_(p), scores_(p.max_offset, 0) {
  LAP_EXPECTS(p_.max_offset >= 1);
  LAP_EXPECTS(p_.rr_entries >= 1);
  LAP_EXPECTS(p_.score_max >= 1);
  LAP_EXPECTS(p_.round_max >= 1);
  rr_.resize(p_.rr_entries, 0);
}

std::uint32_t BestOffsetLearner::score(std::uint32_t offset) const {
  LAP_EXPECTS(offset >= 1 && offset <= p_.max_offset);
  return scores_[offset - 1];
}

bool BestOffsetLearner::in_rr(std::uint32_t block) const {
  for (std::uint32_t i = 0; i < rr_size_; ++i) {
    if (rr_[i] == block) return true;
  }
  return false;
}

void BestOffsetLearner::train(std::uint32_t block) {
  // Test one candidate per access, round-robin over the offset list —
  // the canonical BO round structure.  An early adoption resets the
  // round state, so the cursor only advances on the normal path.
  const std::uint32_t d = candidate_ + 1;
  bool adopted = false;
  if (block >= d && in_rr(block - d)) {
    if (++scores_[candidate_] >= p_.score_max) {
      adopt();
      adopted = true;
    }
  }
  if (!adopted && ++candidate_ == p_.max_offset) {
    candidate_ = 0;
    if (++round_ >= p_.round_max) adopt();
  }
  rr_[rr_head_] = block;
  rr_head_ = (rr_head_ + 1) % p_.rr_entries;
  rr_size_ = std::min(rr_size_ + 1, p_.rr_entries);
}

void BestOffsetLearner::adopt() {
  // Best score wins; ties break toward the smallest offset (the least
  // speculative distance).  A best below BAD_SCORE means no offset
  // explains the stream: disable prefetching until evidence returns.
  std::uint32_t best = 0;
  std::uint32_t best_score = 0;
  for (std::uint32_t i = 0; i < p_.max_offset; ++i) {
    if (scores_[i] > best_score) {
      best_score = scores_[i];
      best = i + 1;
    }
  }
  offset_ = best_score >= p_.bad_score ? best : 0;
  std::fill(scores_.begin(), scores_.end(), 0);
  candidate_ = 0;
  round_ = 0;
}

BoStream::BoStream(std::int64_t trigger, std::uint32_t offset,
                   std::uint32_t degree, std::uint32_t file_blocks)
    : trigger_(trigger), offset_(offset), degree_(degree),
      file_blocks_(file_blocks) {}

std::optional<StreamItem> BoStream::next() {
  if (offset_ == 0) return std::nullopt;  // learner disabled prefetching
  while (i_ <= degree_) {
    const std::int64_t b =
        trigger_ + static_cast<std::int64_t>(i_) * offset_;
    ++i_;
    if (b >= 0 && b < static_cast<std::int64_t>(file_blocks_)) {
      return StreamItem{static_cast<std::uint32_t>(b), /*fallback=*/false};
    }
  }
  return std::nullopt;
}

bool BoStream::exhausted() const { return offset_ == 0 || i_ > degree_; }

}  // namespace lap
