// OBA — One Block Ahead (Section 2.1): after a request ending at block
// i, block i+1 is a prefetch candidate.  The conservative baseline of the
// paper and the fallback used by IS_PPM while its graph is cold.
#pragma once

#include <cstdint>
#include <optional>

namespace lap {

class ObaPredictor {
 public:
  /// Observe a demand request.
  void on_request(std::int64_t first_block, std::uint32_t nblocks) {
    last_end_ = first_block + nblocks;
    seen_ = true;
  }

  /// The single block OBA would prefetch next (one past the last request),
  /// or nullopt before any request has been seen.
  [[nodiscard]] std::optional<std::int64_t> predict_next() const {
    if (!seen_) return std::nullopt;
    return last_end_;
  }

 private:
  std::int64_t last_end_ = 0;
  bool seen_ = false;
};

}  // namespace lap
