#include "core/is_ppm.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/assert.hpp"

namespace lap {

std::uint64_t IsPpmGraph::fingerprint(
    std::span<const IntervalSize> context) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& p : context) {
    std::uint64_t x = static_cast<std::uint64_t>(p.interval) * 0x9ddfea08eb382d69ULL;
    x ^= p.size + 0x2545f4914f6cdd1dULL + (x << 6) + (x >> 2);
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

IsPpmGraph::IsPpmGraph(int order, EdgePolicy policy)
    : order_(order), policy_(policy) {
  LAP_EXPECTS(order >= 1);
  index_.resize(16, IndexSlot{0, -1});
}

void IsPpmGraph::grow_index() {
  std::vector<IndexSlot> old = std::move(index_);
  index_.assign(old.size() * 2, IndexSlot{0, -1});
  const std::size_t mask = index_.size() - 1;
  for (const IndexSlot& slot : old) {
    if (slot.id < 0) continue;
    std::size_t pos = slot.fingerprint & mask;
    while (index_[pos].id >= 0) pos = (pos + 1) & mask;
    index_[pos] = slot;
  }
}

int IsPpmGraph::intern(std::span<const IntervalSize> context) {
  LAP_EXPECTS(static_cast<int>(context.size()) == order_);
  const std::uint64_t fp = fingerprint(context);
  const std::size_t mask = index_.size() - 1;
  std::size_t pos = fp & mask;
  while (index_[pos].id >= 0) {
    const IndexSlot& slot = index_[pos];
    if (slot.fingerprint == fp &&
        std::ranges::equal(context_of(slot.id), context)) {
      return slot.id;
    }
    pos = (pos + 1) & mask;
  }
  // New node: ids are assigned in first-seen order.
  const int id = static_cast<int>(edges_.size());
  edges_.emplace_back();
  contexts_.insert(contexts_.end(), context.begin(), context.end());
  index_[pos] = IndexSlot{fp, id};
  // Keep load factor under 3/4 (the pool never shrinks, so no tombstones).
  if ((edges_.size() + 1) * 4 > index_.size() * 3) grow_index();
  return id;
}

void IsPpmGraph::link(int from, int to, std::uint64_t timestamp) {
  LAP_EXPECTS(from >= 0 && from < static_cast<int>(edges_.size()));
  LAP_EXPECTS(to >= 0 && to < static_cast<int>(edges_.size()));
  for (Edge& e : edges_[from]) {
    if (e.to == to) {
      e.last_used = timestamp;
      ++e.count;
      return;
    }
  }
  edges_[from].push_back(Edge{to, timestamp, 1});
  ++edge_count_;
}

std::optional<int> IsPpmGraph::successor(int node) const {
  LAP_EXPECTS(node >= 0 && node < static_cast<int>(edges_.size()));
  const auto& edges = edges_[node];
  if (edges.empty()) return std::nullopt;
  const Edge* best = &edges.front();
  for (const Edge& e : edges) {
    const bool better = policy_ == EdgePolicy::kMostRecent
                            ? e.last_used > best->last_used
                            : (e.count > best->count ||
                               (e.count == best->count &&
                                e.last_used > best->last_used));
    if (better) best = &e;
  }
  return best->to;
}

const IntervalSize& IsPpmGraph::last_pair(int node) const {
  LAP_EXPECTS(node >= 0 && node < static_cast<int>(edges_.size()));
  return contexts_[static_cast<std::size_t>(node + 1) * order_ - 1];
}

IsPpmPredictor::IsPpmPredictor(IsPpmGraph& graph) : graph_(&graph) {
  context_.reserve(static_cast<std::size_t>(graph.order()) + 1);
}

void IsPpmPredictor::on_request(std::int64_t first_block, std::uint32_t nblocks,
                                std::uint64_t timestamp) {
  ++requests_seen_;
  if (last_first_.has_value()) {
    const IntervalSize pair{first_block - *last_first_, nblocks};
    context_.push_back(pair);
    if (static_cast<int>(context_.size()) > graph_->order()) {
      context_.erase(context_.begin());
    }
    if (static_cast<int>(context_.size()) == graph_->order()) {
      const int node = graph_->intern(context_);
      if (current_node_.has_value()) {
        graph_->link(*current_node_, node, timestamp);
      }
      current_node_ = node;
    }
  }
  last_first_ = first_block;
  last_end_ = first_block + nblocks;
}

std::optional<IsPpmPredictor::Prediction> IsPpmPredictor::predict_next() const {
  if (!current_node_.has_value()) return std::nullopt;
  const auto succ = graph_->successor(*current_node_);
  if (!succ) return std::nullopt;
  const IntervalSize& p = graph_->last_pair(*succ);
  return Prediction{*last_first_ + p.interval, p.size};
}

std::optional<IsPpmPredictor::Prediction> IsPpmPredictor::Walker::next() {
  if (!node_) return std::nullopt;
  const auto succ = graph_->successor(*node_);
  if (!succ) {
    node_ = std::nullopt;
    return std::nullopt;
  }
  const IntervalSize& p = graph_->last_pair(*succ);
  const std::int64_t first = offset_ + p.interval;
  node_ = succ;
  offset_ = first;
  return Prediction{first, p.size};
}

IsPpmPredictor::Walker IsPpmPredictor::walker() const {
  return Walker{graph_, current_node_, last_first_.value_or(0)};
}

}  // namespace lap
