#include "core/is_ppm.hpp"

#include "util/assert.hpp"

namespace lap {

std::size_t IsPpmGraph::KeyHash::operator()(
    const std::vector<IntervalSize>& v) const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& p : v) {
    std::uint64_t x = static_cast<std::uint64_t>(p.interval) * 0x9ddfea08eb382d69ULL;
    x ^= p.size + 0x2545f4914f6cdd1dULL + (x << 6) + (x >> 2);
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

IsPpmGraph::IsPpmGraph(int order, EdgePolicy policy)
    : order_(order), policy_(policy) {
  LAP_EXPECTS(order >= 1);
}

int IsPpmGraph::intern(std::span<const IntervalSize> context) {
  LAP_EXPECTS(static_cast<int>(context.size()) == order_);
  std::vector<IntervalSize> key(context.begin(), context.end());
  if (auto it = index_.find(key); it != index_.end()) return it->second;
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{key, {}});
  index_.emplace(std::move(key), id);
  return id;
}

void IsPpmGraph::link(int from, int to, std::uint64_t timestamp) {
  LAP_EXPECTS(from >= 0 && from < static_cast<int>(nodes_.size()));
  LAP_EXPECTS(to >= 0 && to < static_cast<int>(nodes_.size()));
  for (Edge& e : nodes_[from].edges) {
    if (e.to == to) {
      e.last_used = timestamp;
      ++e.count;
      return;
    }
  }
  nodes_[from].edges.push_back(Edge{to, timestamp, 1});
  ++edge_count_;
}

std::optional<int> IsPpmGraph::successor(int node) const {
  LAP_EXPECTS(node >= 0 && node < static_cast<int>(nodes_.size()));
  const auto& edges = nodes_[node].edges;
  if (edges.empty()) return std::nullopt;
  const Edge* best = &edges.front();
  for (const Edge& e : edges) {
    const bool better = policy_ == EdgePolicy::kMostRecent
                            ? e.last_used > best->last_used
                            : (e.count > best->count ||
                               (e.count == best->count &&
                                e.last_used > best->last_used));
    if (better) best = &e;
  }
  return best->to;
}

const IntervalSize& IsPpmGraph::last_pair(int node) const {
  LAP_EXPECTS(node >= 0 && node < static_cast<int>(nodes_.size()));
  return nodes_[node].context.back();
}

IsPpmPredictor::IsPpmPredictor(IsPpmGraph& graph) : graph_(&graph) {}

void IsPpmPredictor::on_request(std::int64_t first_block, std::uint32_t nblocks,
                                std::uint64_t timestamp) {
  ++requests_seen_;
  if (last_first_.has_value()) {
    const IntervalSize pair{first_block - *last_first_, nblocks};
    context_.push_back(pair);
    if (static_cast<int>(context_.size()) > graph_->order()) context_.pop_front();
    if (static_cast<int>(context_.size()) == graph_->order()) {
      const std::vector<IntervalSize> key(context_.begin(), context_.end());
      const int node = graph_->intern(key);
      if (current_node_.has_value()) {
        graph_->link(*current_node_, node, timestamp);
      }
      current_node_ = node;
    }
  }
  last_first_ = first_block;
  last_end_ = first_block + nblocks;
}

std::optional<IsPpmPredictor::Prediction> IsPpmPredictor::predict_next() const {
  if (!current_node_.has_value()) return std::nullopt;
  const auto succ = graph_->successor(*current_node_);
  if (!succ) return std::nullopt;
  const IntervalSize& p = graph_->last_pair(*succ);
  return Prediction{*last_first_ + p.interval, p.size};
}

std::optional<IsPpmPredictor::Prediction> IsPpmPredictor::Walker::next() {
  if (!node_) return std::nullopt;
  const auto succ = graph_->successor(*node_);
  if (!succ) {
    node_ = std::nullopt;
    return std::nullopt;
  }
  const IntervalSize& p = graph_->last_pair(*succ);
  const std::int64_t first = offset_ + p.interval;
  node_ = succ;
  offset_ = first;
  return Prediction{first, p.size};
}

IsPpmPredictor::Walker IsPpmPredictor::walker() const {
  return Walker{graph_, current_node_, last_first_.value_or(0)};
}

}  // namespace lap
