#include "core/algorithm_registry.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lap {
namespace {

AlgorithmSpec make(AlgorithmSpec::Kind kind, int order, bool aggressive,
                   std::uint32_t outstanding) {
  AlgorithmSpec spec;
  spec.kind = kind;
  spec.order = order;
  spec.aggressive = aggressive;
  spec.max_outstanding = outstanding;
  return spec;
}

}  // namespace

std::string AlgorithmSpec::name() const {
  switch (kind) {
    case Kind::kNone:
      return "NP";
    case Kind::kOba: {
      if (!aggressive) return "OBA";
      return max_outstanding == 1 ? "Ln_Agr_OBA" : "Agr_OBA";
    }
    case Kind::kIsPpm: {
      // Built with += (not `":" + std::to_string(...)`): GCC 12's -Wrestrict
      // false-fires on the operator+(const char*, string&&) insert path.
      std::string suffix = ":";
      suffix += std::to_string(order);
      if (!aggressive) return "IS_PPM" + suffix;
      return (max_outstanding == 1 ? "Ln_Agr_IS_PPM" : "Agr_IS_PPM") + suffix;
    }
    case Kind::kVkPpm: {
      std::string suffix = ":";
      suffix += std::to_string(order);
      if (!aggressive) return "VK_PPM" + suffix;
      return (max_outstanding == 1 ? "Ln_Agr_VK_PPM" : "Agr_VK_PPM") + suffix;
    }
    case Kind::kWholeFile:
      return "WholeFile";
    case Kind::kInformed:
      return max_outstanding == 1 ? "Ln_Informed" : "Informed";
  }
  return "?";
}

AlgorithmSpec AlgorithmSpec::parse(const std::string& name) {
  auto parse_order = [](const std::string& s, std::size_t colon) {
    if (colon == std::string::npos) return 1;
    const int order = std::stoi(s.substr(colon + 1));
    if (order < 1) throw std::invalid_argument("IS_PPM order must be >= 1");
    return order;
  };

  if (name == "NP") return make(Kind::kNone, 1, false, 0);
  if (name == "OBA") return make(Kind::kOba, 1, false, kUnlimited);
  if (name == "Ln_Agr_OBA") return make(Kind::kOba, 1, true, 1);
  if (name == "Agr_OBA") return make(Kind::kOba, 1, true, kUnlimited);
  if (name.starts_with("IS_PPM")) {
    return make(Kind::kIsPpm, parse_order(name, name.find(':')), false,
                kUnlimited);
  }
  if (name.starts_with("Ln_Agr_IS_PPM")) {
    return make(Kind::kIsPpm, parse_order(name, name.find(':')), true, 1);
  }
  if (name.starts_with("Agr_IS_PPM")) {
    return make(Kind::kIsPpm, parse_order(name, name.find(':')), true,
                kUnlimited);
  }
  if (name == "Informed" || name == "Ln_Informed") {
    // Upper bound with application-disclosed access patterns: "this
    // mechanism can perform a quite aggressive prefetching as the accurate
    // access pattern is known and no miss-predictions will be done".  The
    // non-linear variant keeps a TIP-like window of blocks in flight.
    AlgorithmSpec spec = make(Kind::kInformed, 1, true,
                              name == "Ln_Informed" ? 1u : 16u);
    spec.oba_fallback = false;
    return spec;
  }
  if (name == "WholeFile") {
    // The Kroeger-Long baseline floods the whole predicted file at open
    // time; no per-request stream, no fallback.
    AlgorithmSpec spec = make(Kind::kWholeFile, 1, true, kUnlimited);
    spec.oba_fallback = false;
    return spec;
  }
  if (name.starts_with("VK_PPM") || name.starts_with("Ln_Agr_VK_PPM") ||
      name.starts_with("Agr_VK_PPM")) {
    // The pure Vitter-Krishnan baseline has no OBA fallback: a block that
    // was never accessed can never be predicted.
    const bool aggressive = name.starts_with("Ln_") || name.starts_with("Agr_");
    const std::uint32_t outstanding =
        name.starts_with("Ln_") ? 1 : kUnlimited;
    AlgorithmSpec spec = make(Kind::kVkPpm, parse_order(name, name.find(':')),
                              aggressive, outstanding);
    spec.oba_fallback = false;
    return spec;
  }
  throw std::invalid_argument("unknown prefetching algorithm: " + name);
}

std::vector<AlgorithmSpec> AlgorithmSpec::paper_set() {
  return {
      parse("NP"),
      parse("OBA"),
      parse("Ln_Agr_OBA"),
      parse("IS_PPM:1"),
      parse("Ln_Agr_IS_PPM:1"),
      parse("IS_PPM:3"),
      parse("Ln_Agr_IS_PPM:3"),
  };
}

}  // namespace lap
