#include "core/algorithm_registry.hpp"

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace lap {
namespace {

AlgorithmSpec make(AlgorithmSpec::Kind kind, int order, bool aggressive,
                   std::uint32_t outstanding) {
  AlgorithmSpec spec;
  spec.kind = kind;
  spec.order = order;
  spec.aggressive = aggressive;
  spec.max_outstanding = outstanding;
  return spec;
}

}  // namespace

namespace {

// Prefix of an aggressive variant: the feedback-throttled family, the
// paper's linear limitation, a fixed degree-k point, or the flood.
std::string aggressive_prefix(const AlgorithmSpec& s) {
  if (s.feedback) return "Fb_Agr_";
  if (s.max_outstanding == 1) return "Ln_Agr_";
  if (s.max_outstanding == AlgorithmSpec::kUnlimited) return "Agr_";
  std::string p = "Dg";
  p += std::to_string(s.max_outstanding);
  p += "_Agr_";
  return p;
}

}  // namespace

std::string AlgorithmSpec::name() const {
  switch (kind) {
    case Kind::kNone:
      return "NP";
    case Kind::kOba: {
      if (!aggressive) return "OBA";
      return aggressive_prefix(*this) + "OBA";
    }
    case Kind::kIsPpm: {
      // Built with += (not `":" + std::to_string(...)`): GCC 12's -Wrestrict
      // false-fires on the operator+(const char*, string&&) insert path.
      std::string suffix = ":";
      suffix += std::to_string(order);
      if (!aggressive) return "IS_PPM" + suffix;
      return aggressive_prefix(*this) + "IS_PPM" + suffix;
    }
    case Kind::kVkPpm: {
      std::string suffix = ":";
      suffix += std::to_string(order);
      if (!aggressive) return "VK_PPM" + suffix;
      return aggressive_prefix(*this) + "VK_PPM" + suffix;
    }
    case Kind::kWholeFile:
      return "WholeFile";
    case Kind::kInformed:
      return max_outstanding == 1 ? "Ln_Informed" : "Informed";
    case Kind::kBestOffset: {
      std::string n = "BO:";
      n += std::to_string(order);
      return n;
    }
  }
  return "?";
}

AlgorithmSpec AlgorithmSpec::parse(const std::string& name) {
  auto parse_order = [](const std::string& s, std::size_t colon) {
    if (colon == std::string::npos) return 1;
    const int order = std::stoi(s.substr(colon + 1));
    if (order < 1) throw std::invalid_argument("IS_PPM order must be >= 1");
    return order;
  };

  // Fixed degree-k policy point Dg<k>_Agr_<base>: the linear limitation
  // generalised to k outstanding prefetches per (site, file).  k >= 2 —
  // k = 1 is spelled Ln_Agr_<base>.
  auto parse_fixed_degree = [&](const std::string& s)
      -> std::optional<std::pair<std::uint32_t, std::string>> {
    if (!s.starts_with("Dg")) return std::nullopt;
    const std::size_t sep = s.find("_Agr_");
    if (sep == std::string::npos || sep == 2) return std::nullopt;
    const std::string digits = s.substr(2, sep - 2);
    for (const char c : digits) {
      if (c < '0' || c > '9') return std::nullopt;
    }
    const long k = std::stol(digits);
    if (k < 2) throw std::invalid_argument("Dg degree must be >= 2: " + s);
    return std::make_pair(static_cast<std::uint32_t>(k),
                          s.substr(sep + 5));
  };

  if (name == "NP") return make(Kind::kNone, 1, false, 0);
  if (name == "OBA") return make(Kind::kOba, 1, false, kUnlimited);
  if (name == "Ln_Agr_OBA") return make(Kind::kOba, 1, true, 1);
  if (name == "Agr_OBA") return make(Kind::kOba, 1, true, kUnlimited);
  if (name.starts_with("BO")) {
    // Best-offset baseline (Michaud): conservative per-request flood of
    // degree d offset multiples; no OBA fallback (the learner itself
    // starts in next-line mode).
    const int degree = parse_order(name, name.find(':'));
    std::string canonical = "BO:";
    canonical += std::to_string(degree);
    if (name != "BO" && name != canonical) {
      throw std::invalid_argument("unknown prefetching algorithm: " + name);
    }
    AlgorithmSpec spec = make(Kind::kBestOffset, degree, false, kUnlimited);
    spec.oba_fallback = false;
    return spec;
  }
  if (name.starts_with("Fb_Agr_")) {
    // Accuracy-feedback throttling over the aggressive family: degree
    // floats in [1, feedback_cap] driven by the useful/issued ratio.
    const std::string base = name.substr(7);
    AlgorithmSpec spec;
    if (base == "OBA") {
      spec = make(Kind::kOba, 1, true, 1);
    } else if (base.starts_with("IS_PPM")) {
      spec = make(Kind::kIsPpm, parse_order(base, base.find(':')), true, 1);
    } else if (base.starts_with("VK_PPM")) {
      spec = make(Kind::kVkPpm, parse_order(base, base.find(':')), true, 1);
      spec.oba_fallback = false;
    } else {
      throw std::invalid_argument("unknown prefetching algorithm: " + name);
    }
    spec.feedback = true;
    return spec;
  }
  if (const auto fixed = parse_fixed_degree(name)) {
    const auto& [k, base] = *fixed;
    if (base == "OBA") return make(Kind::kOba, 1, true, k);
    if (base.starts_with("IS_PPM")) {
      return make(Kind::kIsPpm, parse_order(base, base.find(':')), true, k);
    }
    if (base.starts_with("VK_PPM")) {
      AlgorithmSpec spec =
          make(Kind::kVkPpm, parse_order(base, base.find(':')), true, k);
      spec.oba_fallback = false;
      return spec;
    }
    throw std::invalid_argument("unknown prefetching algorithm: " + name);
  }
  if (name.starts_with("IS_PPM")) {
    return make(Kind::kIsPpm, parse_order(name, name.find(':')), false,
                kUnlimited);
  }
  if (name.starts_with("Ln_Agr_IS_PPM")) {
    return make(Kind::kIsPpm, parse_order(name, name.find(':')), true, 1);
  }
  if (name.starts_with("Agr_IS_PPM")) {
    return make(Kind::kIsPpm, parse_order(name, name.find(':')), true,
                kUnlimited);
  }
  if (name == "Informed" || name == "Ln_Informed") {
    // Upper bound with application-disclosed access patterns: "this
    // mechanism can perform a quite aggressive prefetching as the accurate
    // access pattern is known and no miss-predictions will be done".  The
    // non-linear variant keeps a TIP-like window of blocks in flight.
    AlgorithmSpec spec = make(Kind::kInformed, 1, true,
                              name == "Ln_Informed" ? 1u : 16u);
    spec.oba_fallback = false;
    return spec;
  }
  if (name == "WholeFile") {
    // The Kroeger-Long baseline floods the whole predicted file at open
    // time; no per-request stream, no fallback.
    AlgorithmSpec spec = make(Kind::kWholeFile, 1, true, kUnlimited);
    spec.oba_fallback = false;
    return spec;
  }
  if (name.starts_with("VK_PPM") || name.starts_with("Ln_Agr_VK_PPM") ||
      name.starts_with("Agr_VK_PPM")) {
    // The pure Vitter-Krishnan baseline has no OBA fallback: a block that
    // was never accessed can never be predicted.
    const bool aggressive = name.starts_with("Ln_") || name.starts_with("Agr_");
    const std::uint32_t outstanding =
        name.starts_with("Ln_") ? 1 : kUnlimited;
    AlgorithmSpec spec = make(Kind::kVkPpm, parse_order(name, name.find(':')),
                              aggressive, outstanding);
    spec.oba_fallback = false;
    return spec;
  }
  throw std::invalid_argument("unknown prefetching algorithm: " + name);
}

std::vector<AlgorithmSpec> AlgorithmSpec::paper_set() {
  return {
      parse("NP"),
      parse("OBA"),
      parse("Ln_Agr_OBA"),
      parse("IS_PPM:1"),
      parse("Ln_Agr_IS_PPM:1"),
      parse("IS_PPM:3"),
      parse("Ln_Agr_IS_PPM:3"),
  };
}

}  // namespace lap
