#include "core/vk_ppm.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/assert.hpp"

namespace lap {

std::uint64_t VkPpmGraph::fingerprint(
    std::span<const std::uint32_t> ctx) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint32_t x : ctx) {
    h ^= (x + 0x9e3779b97f4a7c15ULL) + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
  }
  return h;
}

VkPpmGraph::VkPpmGraph(int order) : order_(order) {
  LAP_EXPECTS(order >= 1);
  index_.resize(16, IndexSlot{0, -1});
}

void VkPpmGraph::grow_index() {
  std::vector<IndexSlot> old = std::move(index_);
  index_.assign(old.size() * 2, IndexSlot{0, -1});
  const std::size_t mask = index_.size() - 1;
  for (const IndexSlot& slot : old) {
    if (slot.id < 0) continue;
    std::size_t pos = slot.fingerprint & mask;
    while (index_[pos].id >= 0) pos = (pos + 1) & mask;
    index_[pos] = slot;
  }
}

int VkPpmGraph::lookup(std::span<const std::uint32_t> ctx,
                       std::size_t* insert_pos) const {
  const std::uint64_t fp = fingerprint(ctx);
  const std::size_t mask = index_.size() - 1;
  std::size_t pos = fp & mask;
  while (index_[pos].id >= 0) {
    const IndexSlot& slot = index_[pos];
    if (slot.fingerprint == fp &&
        std::ranges::equal(context_of(slot.id), ctx)) {
      return slot.id;
    }
    pos = (pos + 1) & mask;
  }
  if (insert_pos != nullptr) *insert_pos = pos;
  return -1;
}

void VkPpmGraph::observe(std::span<const std::uint32_t> ctx,
                         std::uint32_t next) {
  LAP_EXPECTS(static_cast<int>(ctx.size()) == order_);
  std::size_t pos = 0;
  int id = lookup(ctx, &pos);
  if (id < 0) {
    id = static_cast<int>(successors_.size());
    successors_.emplace_back();
    ctx_pool_.insert(ctx_pool_.end(), ctx.begin(), ctx.end());
    index_[pos] = IndexSlot{fingerprint(ctx), id};
    if ((successors_.size() + 1) * 4 > index_.size() * 3) grow_index();
  }
  auto& successors = successors_[id];
  ++clock_;
  for (Successor& s : successors) {
    if (s.block == next) {
      ++s.count;
      s.last_used = clock_;
      return;
    }
  }
  successors.push_back(Successor{next, 1, clock_});
}

std::optional<std::uint32_t> VkPpmGraph::predict(
    std::span<const std::uint32_t> ctx) const {
  const int id = lookup(ctx, nullptr);
  if (id < 0 || successors_[id].empty()) return std::nullopt;
  const Successor* best = &successors_[id].front();
  for (const Successor& s : successors_[id]) {
    // Most probable; recency breaks ties.
    if (s.count > best->count ||
        (s.count == best->count && s.last_used > best->last_used)) {
      best = &s;
    }
  }
  return best->block;
}

VkPpmPredictor::VkPpmPredictor(VkPpmGraph& graph) : graph_(&graph) {
  context_.reserve(static_cast<std::size_t>(graph.order()) + 1);
}

void VkPpmPredictor::push_block(std::uint32_t block) {
  if (static_cast<int>(context_.size()) == graph_->order()) {
    graph_->observe(context_, block);
    context_.erase(context_.begin());
  }
  context_.push_back(block);
}

void VkPpmPredictor::on_request(std::uint32_t first_block,
                                std::uint32_t nblocks) {
  for (std::uint32_t b = 0; b < nblocks; ++b) push_block(first_block + b);
}

std::optional<std::uint32_t> VkPpmPredictor::predict_next() const {
  if (!has_context()) return std::nullopt;
  return graph_->predict(context_);
}

std::optional<std::uint32_t> VkPpmPredictor::Walker::next() {
  if (ctx_.empty()) return std::nullopt;
  const auto next = graph_->predict(ctx_);
  if (!next) {
    ctx_.clear();
    return std::nullopt;
  }
  ctx_.erase(ctx_.begin());
  ctx_.push_back(*next);
  return next;
}

VkPpmPredictor::Walker VkPpmPredictor::walker() const {
  if (!has_context()) return Walker{graph_, {}};
  return Walker{graph_, {context_.begin(), context_.end()}};
}

}  // namespace lap
