#include "core/vk_ppm.hpp"

#include "util/assert.hpp"

namespace lap {

std::size_t VkPpmGraph::KeyHash::operator()(
    const std::vector<std::uint32_t>& v) const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint32_t x : v) {
    h ^= (x + 0x9e3779b97f4a7c15ULL) + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
  }
  return static_cast<std::size_t>(h);
}

VkPpmGraph::VkPpmGraph(int order) : order_(order) {
  LAP_EXPECTS(order >= 1);
}

void VkPpmGraph::observe(const std::vector<std::uint32_t>& ctx,
                         std::uint32_t next) {
  LAP_EXPECTS(static_cast<int>(ctx.size()) == order_);
  auto& successors = table_[ctx];
  ++clock_;
  for (Successor& s : successors) {
    if (s.block == next) {
      ++s.count;
      s.last_used = clock_;
      return;
    }
  }
  successors.push_back(Successor{next, 1, clock_});
}

std::optional<std::uint32_t> VkPpmGraph::predict(
    const std::vector<std::uint32_t>& ctx) const {
  auto it = table_.find(ctx);
  if (it == table_.end() || it->second.empty()) return std::nullopt;
  const Successor* best = &it->second.front();
  for (const Successor& s : it->second) {
    // Most probable; recency breaks ties.
    if (s.count > best->count ||
        (s.count == best->count && s.last_used > best->last_used)) {
      best = &s;
    }
  }
  return best->block;
}

VkPpmPredictor::VkPpmPredictor(VkPpmGraph& graph) : graph_(&graph) {}

void VkPpmPredictor::push_block(std::uint32_t block) {
  if (static_cast<int>(context_.size()) == graph_->order()) {
    graph_->observe({context_.begin(), context_.end()}, block);
    context_.pop_front();
  }
  context_.push_back(block);
}

void VkPpmPredictor::on_request(std::uint32_t first_block,
                                std::uint32_t nblocks) {
  for (std::uint32_t b = 0; b < nblocks; ++b) push_block(first_block + b);
}

std::optional<std::uint32_t> VkPpmPredictor::predict_next() const {
  if (!has_context()) return std::nullopt;
  return graph_->predict({context_.begin(), context_.end()});
}

std::optional<std::uint32_t> VkPpmPredictor::Walker::next() {
  if (ctx_.empty()) return std::nullopt;
  const auto next = graph_->predict(ctx_);
  if (!next) {
    ctx_.clear();
    return std::nullopt;
  }
  ctx_.erase(ctx_.begin());
  ctx_.push_back(*next);
  return next;
}

VkPpmPredictor::Walker VkPpmPredictor::walker() const {
  if (!has_context()) return Walker{graph_, {}};
  return Walker{graph_, {context_.begin(), context_.end()}};
}

}  // namespace lap
