// Accuracy-feedback throttling of aggressive prefetching (DESIGN.md §15).
//
// The paper's linear limitation pins the outstanding-prefetch degree at 1
// forever.  The throttle generalises it: every prefetched block eventually
// settles used or wasted (PR 6's conservation invariant), and the observed
// useful fraction over a sliding window drives the degree between a floor
// (the linear limitation) and a cap, SPP-style.  High accuracy ramps the
// degree up one step per window; low accuracy halves it back toward the
// floor; the band in between holds it steady, so a workload sitting near
// a threshold does not flap.
//
// Everything is integer arithmetic on settlement counts — no wall clock,
// no floats — so the decision sequence is a pure function of the
// settlement sequence.  One throttle lives inside each PrefetchManager,
// i.e. inside the owning node's shard domain: feeding and reading it
// never crosses a domain boundary, which keeps sharded runs bit-exact
// (the per-domain event order is identical at any shard count).
#pragma once

#include <cstdint>

namespace lap {

class FeedbackThrottle {
 public:
  struct Params {
    std::uint32_t floor = 1;      // minimum degree (the linear limitation)
    std::uint32_t cap = 8;        // maximum degree
    std::uint32_t window = 32;    // settlements per decision
    std::uint32_t raise_pct = 75; // used/settled >= this: degree += 1
    std::uint32_t clamp_pct = 40; // used/settled < this: degree /= 2
  };

  FeedbackThrottle();  // default parameters
  explicit FeedbackThrottle(Params p);

  /// A prefetched block settled used (first demand touch before eviction).
  void on_used();
  /// A prefetched block settled wasted (evicted / invalidated / deleted /
  /// superseded / forward-dropped unreferenced).
  void on_wasted();

  /// Current outstanding-prefetch degree, in [floor, cap].
  [[nodiscard]] std::uint32_t degree() const { return degree_; }

  // Attribution counters for spans/metrics.
  [[nodiscard]] std::uint64_t raises() const { return raises_; }
  [[nodiscard]] std::uint64_t clamps() const { return clamps_; }
  [[nodiscard]] std::uint32_t peak() const { return peak_; }

 private:
  void settle(bool used);
  void decide();

  Params p_;
  std::uint32_t degree_;
  std::uint32_t peak_;
  std::uint32_t window_used_ = 0;
  std::uint32_t window_settled_ = 0;
  std::uint64_t raises_ = 0;
  std::uint64_t clamps_ = 0;
};

}  // namespace lap
