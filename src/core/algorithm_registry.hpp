// Named prefetching algorithms.  The seven names used throughout the
// paper's figures parse to AlgorithmSpec values; extra knobs (outstanding
// limit, edge policy, fallback) exist for the ablation benches.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/is_ppm.hpp"

namespace lap {

struct AlgorithmSpec {
  enum class Kind {
    kNone,        // NP
    kOba,         // one-block-ahead (Smith)
    kIsPpm,       // the paper's interval & size PPM
    kVkPpm,       // baseline: Vitter-Krishnan block-sequence PPM
    kWholeFile,   // baseline: Kroeger-Long whole-file prefetch on open
    kInformed,    // upper bound: disclosed future requests (TIP-style)
    kBestOffset,  // baseline: Michaud best-offset predictor (BO:d)
  };

  Kind kind = Kind::kNone;
  int order = 1;             // Markov order for IS_PPM:j; degree for BO:d
  bool aggressive = false;   // keep prefetching along the predicted path
  // Outstanding prefetched blocks per file (per node and file under xFS).
  // 1 = the paper's *linear* limitation; kUnlimited = flood.
  std::uint32_t max_outstanding = 1;
  IsPpmGraph::EdgePolicy edge_policy = IsPpmGraph::EdgePolicy::kMostRecent;
  bool oba_fallback = true;          // cold-graph fallback (Section 2.2)
  bool aggressive_fallback = false;  // fallback streams to EOF (ablation)
  // Accuracy-feedback degree scaling (Fb_Agr_*): the outstanding limit
  // becomes adaptive, moving between max_outstanding (the floor) and
  // feedback_cap with the FeedbackThrottle's hysteresis (DESIGN.md §15).
  bool feedback = false;
  std::uint32_t feedback_cap = 8;

  static constexpr std::uint32_t kUnlimited =
      std::numeric_limits<std::uint32_t>::max();

  [[nodiscard]] bool prefetching() const { return kind != Kind::kNone; }
  [[nodiscard]] bool linear() const {
    return aggressive && max_outstanding == 1 && !feedback;
  }

  /// Canonical paper name: NP, OBA, IS_PPM:j, Ln_Agr_OBA, Ln_Agr_IS_PPM:j,
  /// Agr_OBA, Agr_IS_PPM:j (non-linear aggressive, for ablations), plus the
  /// related-work baselines VK_PPM:j / Ln_Agr_VK_PPM:j, WholeFile and BO:d,
  /// the fixed-degree policy point Dg<k>_Agr_* and the feedback-throttled
  /// Fb_Agr_* family.
  [[nodiscard]] std::string name() const;

  /// Parse a canonical name; throws std::invalid_argument on junk.
  static AlgorithmSpec parse(const std::string& name);

  /// The seven algorithms of the paper's figures, in plot order.
  static std::vector<AlgorithmSpec> paper_set();

  friend bool operator==(const AlgorithmSpec&, const AlgorithmSpec&) = default;
};

}  // namespace lap
