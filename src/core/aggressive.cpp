#include "core/aggressive.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/assert.hpp"

namespace lap {

SequentialStream::SequentialStream(std::int64_t start, std::uint32_t file_blocks,
                                   std::uint64_t block_budget)
    : next_block_(std::max<std::int64_t>(start, 0)),
      file_blocks_(file_blocks),
      remaining_(block_budget) {}

std::optional<StreamItem> SequentialStream::next() {
  if (exhausted()) return std::nullopt;
  --remaining_;
  return StreamItem{static_cast<std::uint32_t>(next_block_++), false};
}

bool SequentialStream::exhausted() const {
  return remaining_ == 0 ||
         next_block_ >= static_cast<std::int64_t>(file_blocks_);
}

GraphStream::GraphStream(IsPpmPredictor::Walker walker,
                         std::int64_t fallback_start,
                         std::uint32_t file_blocks,
                         std::uint64_t request_budget,
                         std::uint64_t fallback_budget)
    : walker_(walker),
      fallback_start_(fallback_start),
      file_blocks_(file_blocks),
      request_budget_(request_budget),
      fallback_budget_(fallback_budget),
      // Generous relative to any real file, tiny relative to a runaway walk.
      emit_cap_(4ULL * file_blocks + 1024) {}

void GraphStream::refill() {
  while (pending_.empty() && !done_) {
    if (request_budget_ == 0) {
      done_ = true;
      break;
    }
    if (fallback_mode_) {
      // OBA fallback: sequential blocks, paced by the fallback budget.
      if (fallback_budget_ == 0 || fallback_start_ < 0 ||
          fallback_start_ >= static_cast<std::int64_t>(file_blocks_)) {
        done_ = true;
        break;
      }
      if (fallback_budget_ != kUnboundedBudget) --fallback_budget_;
      pending_.push_back(
          StreamItem{static_cast<std::uint32_t>(fallback_start_++), true});
      continue;
    }
    auto pred = walker_.next();
    if (!pred) {
      // Cold graph (or a dead-end node): fall back to OBA behaviour if the
      // stream has produced no prediction yet.
      if (fallback_budget_ > 0 && !emitted_prediction_) {
        fallback_mode_ = true;
        continue;
      }
      done_ = true;
      break;
    }
    if (request_budget_ != kUnboundedBudget) --request_budget_;
    // "...until the next block to prefetch is out of the file, in which
    // case the prefetching mechanism stops" — a prediction that starts
    // outside the file ends the stream.
    if (pred->first_block < 0 ||
        pred->first_block >= static_cast<std::int64_t>(file_blocks_)) {
      done_ = true;
      break;
    }
    emitted_prediction_ = true;
    const std::int64_t end =
        std::min<std::int64_t>(pred->first_block + pred->nblocks, file_blocks_);
    for (std::int64_t b = pred->first_block; b < end; ++b) {
      pending_.push_back(StreamItem{static_cast<std::uint32_t>(b), false});
    }
  }
}

std::optional<StreamItem> GraphStream::next() {
  if (emitted_ >= emit_cap_) {
    done_ = true;
    pending_.clear();
    return std::nullopt;
  }
  refill();
  if (pending_.empty()) return std::nullopt;
  StreamItem item = pending_.front();
  pending_.pop_front();
  ++emitted_;
  return item;
}

bool GraphStream::exhausted() const { return done_ && pending_.empty(); }

VkStream::VkStream(VkPpmPredictor::Walker walker, std::int64_t fallback_start,
                   std::uint32_t file_blocks, std::uint64_t block_budget,
                   std::uint64_t fallback_budget)
    : walker_(walker),
      fallback_start_(fallback_start),
      file_blocks_(file_blocks),
      block_budget_(block_budget),
      fallback_budget_(fallback_budget),
      emit_cap_(4ULL * file_blocks + 1024) {}

std::optional<StreamItem> VkStream::next() {
  if (done_ || emitted_ >= emit_cap_) {
    done_ = true;
    return std::nullopt;
  }
  if (fallback_mode_) {
    if (fallback_budget_ == 0 || fallback_start_ < 0 ||
        fallback_start_ >= static_cast<std::int64_t>(file_blocks_)) {
      done_ = true;
      return std::nullopt;
    }
    if (fallback_budget_ != kUnboundedBudget) --fallback_budget_;
    ++emitted_;
    return StreamItem{static_cast<std::uint32_t>(fallback_start_++), true};
  }
  if (block_budget_ == 0) {
    done_ = true;
    return std::nullopt;
  }
  const auto block = walker_.next();
  if (!block) {
    if (fallback_budget_ > 0 && !emitted_prediction_) {
      fallback_mode_ = true;
      return next();
    }
    done_ = true;
    return std::nullopt;
  }
  if (*block >= file_blocks_) {
    done_ = true;
    return std::nullopt;
  }
  emitted_prediction_ = true;
  if (block_budget_ != kUnboundedBudget) --block_budget_;
  ++emitted_;
  return StreamItem{*block, false};
}

bool VkStream::exhausted() const { return done_; }

HintStream::HintStream(const std::vector<BlockRequest>* hints,
                       std::size_t start, std::uint32_t file_blocks)
    : hints_(hints), index_(start), file_blocks_(file_blocks) {
  LAP_EXPECTS(hints != nullptr);
}

std::optional<StreamItem> HintStream::next() {
  while (index_ < hints_->size()) {
    const BlockRequest& hint = (*hints_)[index_];
    if (within_ >= hint.nblocks ||
        hint.first + within_ >= file_blocks_) {
      ++index_;
      within_ = 0;
      continue;
    }
    return StreamItem{hint.first + within_++, false};
  }
  return std::nullopt;
}

bool HintStream::exhausted() const { return index_ >= hints_->size(); }

}  // namespace lap
