// Coroutine task type for simulation processes.
//
// A SimTask is a fire-and-forget coroutine: it starts running immediately
// when spawned and its frame destroys itself when the body returns.  All
// suspension points are awaitables tied to the Engine (delays, futures,
// resource acquisition), so a task only stays alive while something in the
// simulation will eventually resume it.  Long-running tasks (daemons,
// prefetch streams) must observe a stop flag so that every coroutine
// terminates before the Engine is destroyed.
#pragma once

#include <coroutine>
#include <exception>

namespace lap {

struct SimTask {
  struct promise_type {
    SimTask get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };
};

}  // namespace lap
