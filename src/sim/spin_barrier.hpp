// A reusable spin barrier for the sharded engine's epoch loop.
//
// Epochs are short (often a handful of events per shard), so the classic
// generation-counting barrier with a yield loop beats a mutex+condvar
// barrier by an order of magnitude here, and — unlike std::barrier — it
// is cheap to construct per run and trivially TSan-clean: the generation
// bump is an acq_rel edge, so everything a worker wrote before `wait()`
// happens-before everything any worker does after it.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/assert.hpp"

namespace lap {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {
    LAP_EXPECTS(parties >= 1);
  }
  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all parties have arrived; reusable across rounds.
  void wait() {
    if (parties_ == 1) return;
    const std::uint32_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      // Last arrival resets the count for the next round, then releases
      // the cohort.  Waiters cannot touch arrived_ again until they see
      // the new generation, so the reset cannot race with round N+1.
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      while (generation_.load(std::memory_order_acquire) == gen) {
        // The simulator often runs more shards than hardware threads (the
        // differential wall replays every scenario sharded on whatever
        // machine CI gives it), so yield rather than burn the timeslice.
        std::this_thread::yield();
      }
    }
  }

 private:
  const std::uint32_t parties_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint32_t> generation_{0};
};

}  // namespace lap
