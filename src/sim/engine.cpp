#include "sim/engine.hpp"

#include <cstdint>
#include <utility>

#include "util/logging.hpp"

namespace lap {

std::uint64_t Engine::run() { return run_until(SimTime::max()); }

std::uint64_t Engine::run_until(SimTime horizon) {
  // Log lines emitted by event handlers on this thread carry the simulated
  // timestamp of the event being processed.
  log_detail::ScopedSimClock log_clock(&now_);
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    const Event top = queue_.top();
    if (top.at > horizon) break;
    // Take the closure out of its slab slot before popping: the callback
    // may schedule new events, which can grow both the heap and the slab.
    auto fn = fns_.take(
        static_cast<std::uint32_t>(top.seq_slot & ((1u << kSlotBits) - 1)));
    now_ = top.at;
    queue_.pop();
    fn();
    ++count;
    ++processed_;
  }
  // Everything still queued lies past the horizon: the clock has reached it.
  if (horizon != SimTime::max() && now_ < horizon) now_ = horizon;
  return count;
}

}  // namespace lap
