#include "sim/engine.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <future>
#include <utility>
#include <vector>

#include "sim/spin_barrier.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace lap {

constinit thread_local Engine* Engine::tls_engine_ = nullptr;
constinit thread_local Engine::Ctx Engine::tls_ctx_{nullptr, 0, 0,
                                                    nullptr, 0, 0};

Engine::Engine() { seq_ctx_ = make_ctx(0, 0); }

void Engine::configure_domains(DomainMap map, SimTime lookahead) {
  LAP_EXPECTS(events_processed() == 0);
  LAP_EXPECTS(empty());
  LAP_EXPECTS(map.shards >= 1);
  LAP_EXPECTS(!map.shard_of.empty());
  LAP_EXPECTS(map.shard_of.size() == map.phase_of.size());
  LAP_EXPECTS(map.domains() <= 0xffffu);
  LAP_EXPECTS(map.shard_of[0] == 0);
  LAP_EXPECTS(map.phase_of[0] == DomainPhase::kModel);
  LAP_EXPECTS(map.shards == 1 || lookahead > SimTime::zero());
  shard_phase_.assign(map.shards, DomainPhase::kModel);
  std::vector<bool> seen(map.shards, false);
  for (std::size_t d = 0; d < map.domains(); ++d) {
    const std::uint16_t s = map.shard_of[d];
    LAP_EXPECTS(s < map.shards);
    if (!seen[s]) {
      seen[s] = true;
      shard_phase_[s] = map.phase_of[d];
    } else if (map.shards > 1) {
      // With real sharding, all domains grouped on one shard must share a
      // phase: the epoch loop runs each shard exactly once per epoch, in
      // phase order.  The single-shard grouping is exempt — it is the
      // sequential fast path and never consults phases.
      LAP_EXPECTS(shard_phase_[s] == map.phase_of[d]);
    }
  }
  map_ = std::move(map);
  lookahead_ = lookahead;
  if (map_.shards > 1) {
    cores_ = std::vector<Core>(map_.shards);
    cores_ptr_ = cores_.data();
  } else {
    cores_ = {};
    cores_ptr_ = &core0_;
  }
  if (map_.domains() > 1) {
    next_seq_.assign(map_.domains(), SeqCounter{});
    seq_ptr_ = next_seq_.data();
  } else {
    next_seq_ = {};
    seq_ptr_ = &seq0_;
  }
  seq_ctx_ = make_ctx(0, 0);
  single_ = map_.domains() == 1 && map_.shards == 1;
}

void Engine::post_at(DomainId target, SimTime at, std::function<void()> fn) {
  const Ctx& c = ctx();
  LAP_EXPECTS(target < map_.domains());
  LAP_EXPECTS(at >= c.core->now);
  const std::uint16_t dst = map_.shard_of[target];
  if (!parallel_active_ || dst == c.shard) {
    push_event(c, cores_ptr_[dst], at, target, std::move(fn));
    return;
  }
  // Cross-shard: park the message in a mailbox until the next barrier.
  // The conservative-lookahead contract makes that safe: either this is
  // the one same-epoch hand-off the phase order allows (model → service,
  // drained between the two halves of the current epoch), or the message
  // lands at or beyond the epoch boundary and is drained at the top of the
  // next epoch — before any event it could affect.
  const DomainPhase src_phase = map_.phase_of[c.domain];
  const bool handoff = src_phase == DomainPhase::kModel &&
                       map_.phase_of[target] == DomainPhase::kService;
  LAP_ASSERT(handoff || at >= epoch_end_);
  const std::uint64_t seq = seq_ptr_[c.domain].v++;
  LAP_ASSERT(seq < (1ULL << kSeqBits));
  const std::uint64_t key = key_base(c.domain, target) | seq;
  auto& boxes =
      src_phase == DomainPhase::kModel ? mail_model_ : mail_service_;
  boxes[static_cast<std::size_t>(c.shard) * map_.shards + dst].push_back(
      Mail{at, key, order_key(c, at, key), target, std::move(fn)});
}

SimTime Engine::now() const {
  if (map_.shards == 1) return seq_ctx_.core->now;
  if (parallel_active_ && tls_engine_ == this) return tls_ctx_.core->now;
  SimTime t = cores_ptr_[0].now;
  for (std::size_t s = 1; s < map_.shards; ++s)
    if (cores_ptr_[s].now > t) t = cores_ptr_[s].now;
  return t;
}

std::uint64_t Engine::run() {
  if (map_.shards == 1) return run_until(SimTime::max());
  return run_parallel(0);
}

std::uint64_t Engine::run_until(SimTime horizon) {
  LAP_EXPECTS(map_.shards == 1);
  Core& core = core0_;
  // Log lines emitted by event handlers on this thread carry the simulated
  // timestamp of the event being processed.
  log_detail::ScopedSimClock log_clock(&core.now);
  std::uint64_t count = 0;
  // The single-domain engine (the default) never leaves domain 0, so the
  // dispatch loop skips the per-event context refresh entirely.
  const bool multi = map_.domains() > 1;
  while (!core.queue.empty()) {
    const Event top = core.queue.top();
    if (top.at > horizon) break;
    // Take the closure out of its slab slot before popping: the callback
    // may schedule new events, which can grow both the heap and the slab.
    auto fn = core.fns.take(top.slot());
    core.now = top.at;
    if (multi) seq_ctx_ = make_ctx(top.target(), 0, core.effs[top.slot()]);
    core.queue.pop();
    fn();
    ++count;
    ++core.executed;
  }
  if (multi) seq_ctx_ = make_ctx(0, 0);
  // Everything still queued lies past the horizon: the clock has reached it.
  if (horizon != SimTime::max() && core.now < horizon) core.now = horizon;
  return count;
}

std::uint64_t Engine::run_parallel(std::size_t threads) {
  if (map_.shards == 1) return run_until(SimTime::max());
  const std::size_t shard_count = map_.shards;
  const std::size_t workers =
      std::min(threads == 0 ? shard_count : threads, shard_count);
  std::uint64_t before = 0;
  for (const Core& c : cores_) before += c.executed;
  mail_model_.assign(shard_count * shard_count, std::vector<Mail>{});
  mail_service_.assign(shard_count * shard_count, std::vector<Mail>{});
  epochs_ = 0;
  done_ = false;
  epoch_end_ = SimTime::zero();
  SpinBarrier barrier(static_cast<std::uint32_t>(workers));
  barrier_ = &barrier;
  parallel_active_ = true;
  {
    ThreadPool pool(workers);
    std::vector<std::future<void>> joins;
    joins.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      joins.push_back(
          pool.submit([this, w, workers] { worker_loop(w, workers); }));
    for (auto& j : joins) j.get();
  }
  parallel_active_ = false;
  barrier_ = nullptr;
  std::uint64_t after = 0;
  for (const Core& c : cores_) after += c.executed;
  return after - before;
}

void Engine::worker_loop(std::size_t w, std::size_t workers) {
  tls_engine_ = this;
  for (;;) {
    barrier_->wait();
    // Completions and other service-phase mail from the previous epoch.
    drain_mail(mail_service_, w, workers);
    barrier_->wait();
    if (w == 0) plan_epoch();
    barrier_->wait();
    if (done_) break;
    run_phase(w, workers, DomainPhase::kModel);
    barrier_->wait();
    // Same-epoch hand-offs (disk admissions) posted by the model phase.
    drain_mail(mail_model_, w, workers);
    run_phase(w, workers, DomainPhase::kService);
  }
  tls_engine_ = nullptr;
}

void Engine::plan_epoch() {
  // Every epoch starts at the globally earliest pending event, so a run
  // never iterates empty epochs — gaps in simulated time (an idle sync
  // interval, a long seek) cost one barrier round, not lookahead-many.
  bool any = false;
  SimTime t_next{};
  for (const Core& c : cores_) {
    if (c.queue.empty()) continue;
    const SimTime at = c.queue.top().at;
    if (!any || at < t_next) {
      t_next = at;
      any = true;
    }
  }
  if (!any) {
    // All queues drained and (because service mail was drained before this
    // plan) no message is in flight: the run is complete.
    done_ = true;
    return;
  }
  epoch_end_ = t_next + lookahead_;
  ++epochs_;
}

void Engine::run_phase(std::size_t w, std::size_t workers, DomainPhase phase) {
  for (std::size_t s = w; s < map_.shards; s += workers) {
    if (shard_phase_[s] != phase) continue;
    Core& core = cores_[s];
    log_detail::ScopedSimClock log_clock(&core.now);
    while (!core.queue.empty()) {
      const Event top = core.queue.top();
      if (top.at >= epoch_end_) break;
      auto fn = core.fns.take(top.slot());
      core.now = top.at;
      tls_ctx_ = make_ctx(top.target(), static_cast<std::uint16_t>(s),
                          core.effs[top.slot()]);
      core.queue.pop();
      fn();
      ++core.executed;
    }
  }
}

void Engine::drain_mail(std::vector<std::vector<Mail>>& boxes, std::size_t w,
                        std::size_t workers) {
  const std::size_t shard_count = map_.shards;
  for (std::size_t dst = w; dst < shard_count; dst += workers) {
    Core& core = cores_[dst];
    for (std::size_t src = 0; src < shard_count; ++src) {
      auto& box = boxes[src * shard_count + dst];
      for (Mail& m : box) {
        const std::uint64_t slot = core.fns.put(std::move(m.fn));
        store_eff(core, slot, m.eff);
        core.queue.push(Event{
            m.at, m.key,
            (static_cast<std::uint64_t>(m.target) << 32) | slot});
      }
      box.clear();
    }
  }
}

std::uint64_t Engine::events_processed() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < map_.shards; ++s)
    total += cores_ptr_[s].executed;
  return total;
}

bool Engine::empty() const {
  for (std::size_t s = 0; s < map_.shards; ++s) {
    if (!cores_ptr_[s].queue.empty()) return false;
  }
  return true;
}

std::size_t Engine::pending() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < map_.shards; ++s)
    total += cores_ptr_[s].queue.size();
  return total;
}

}  // namespace lap
