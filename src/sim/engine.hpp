// Discrete-event simulation engine, sequential or sharded.
//
// The engine owns one time-ordered event queue per *shard* (slab +
// 4-ary heap).  Events at equal timestamps fire in a canonical
// (timestamp, target phase, origin domain, per-domain sequence) order,
// which makes runs fully deterministic — and, because that key never
// mentions threads or shard count, the same scenario replays bit-exactly
// whether it runs sequentially or as N shards on a thread pool
// (DESIGN.md §14).  The phase component mirrors the parallel schedule: an
// epoch runs its model-phase shards before its service-phase shards, so at
// equal timestamps model-targeted events must sort first sequentially too.
//
// The default-constructed engine is the single-domain, single-shard
// configuration: origin is always domain 0, the per-domain sequence is the
// global scheduling order, and `run()` is the same tight dispatch loop as
// the historical sequential engine.  `configure_domains()` opts a run into
// sharding; `run_parallel()` then executes epochs of conservative
// lookahead, exchanging cross-shard events only at epoch boundaries.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/domain.hpp"
#include "util/assert.hpp"
#include "util/dary_heap.hpp"
#include "util/slab.hpp"
#include "util/units.hpp"

namespace lap {

class SpanCollector;
class TraceSink;

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Install the domain/shard partition for this run.  Must be called
  /// before any event is scheduled.  `lookahead` is the conservative
  /// epoch width: any cross-shard message other than a model-phase →
  /// service-phase hand-off must be scheduled at least `lookahead` after
  /// the epoch start (the engine asserts this).  With more than one shard
  /// the lookahead must be positive.
  void configure_domains(DomainMap map, SimTime lookahead);
  [[nodiscard]] const DomainMap& domain_map() const { return map_; }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  /// Domain of the event currently executing (0 outside any event).
  [[nodiscard]] DomainId current_domain() const { return ctx().domain; }

  /// Shard of the event currently executing (0 outside any event, and in
  /// every sequential run).
  [[nodiscard]] std::uint16_t current_shard() const { return ctx().shard; }

  /// Canonical *order* key of the event currently executing (0 outside any
  /// event).  Together with the event's timestamp this totally orders every
  /// event in the run — identically for sequential and sharded execution —
  /// which is what lets deferred per-shard observability streams (trace
  /// records, span bookkeeping) be merged back into the one canonical
  /// order.
  ///
  /// This is the event's heap key with one adjustment: an event scheduled
  /// *at the current timestamp from inside another event* executes after
  /// its poster even when its own key is numerically smaller (the poster
  /// has already been popped), so such an event inherits
  /// max(own key, poster's order key).  Sorting records by (timestamp,
  /// order key, intra-event counter) then reproduces the dispatch order
  /// exactly; the raw heap key alone would not.
  [[nodiscard]] std::uint64_t current_event_key() const {
    return ctx().event_key;
  }

  /// Draw a token unique across the whole run and bit-identical at every
  /// shard count: the current domain's id paired with its next sequence
  /// number.  Consuming a sequence value here shifts later events' keys but
  /// never reorders them (keys stay monotone per domain), so components may
  /// use this for ids (disk op ids) without perturbing the canonical order.
  [[nodiscard]] std::uint64_t draw_token() {
    const Ctx& c = ctx();
    const std::uint64_t seq = c.seq->v++;
    LAP_ASSERT(seq < (1ULL << kSeqBits));
    return (static_cast<std::uint64_t>(c.domain) << kSeqBits) | seq;
  }

  /// Inside an event: the executing shard's clock.  Outside: the furthest
  /// clock any shard has reached.
  [[nodiscard]] SimTime now() const;

  /// Schedule `fn` to run at absolute simulated time `at` (>= now) in the
  /// current domain.  Hot path: the context caches the domain's sequence
  /// counter and pre-packed key, so this is counter++, slab put, heap
  /// push — the same work the pre-sharding engine did.
  void schedule_at(SimTime at, std::function<void()> fn) {
    if (single_) [[likely]] {
      push_single(at, std::move(fn));
      return;
    }
    const Ctx& c = ctx();
    LAP_EXPECTS(at >= c.core->now);
    push_self(c, at, std::move(fn));
  }

  /// Schedule `fn` to run `delay` from now in the current domain.
  void schedule_in(SimTime delay, std::function<void()> fn) {
    LAP_EXPECTS(delay >= SimTime::zero());
    if (single_) [[likely]] {
      push_single(core0_.now + delay, std::move(fn));
      return;
    }
    const Ctx& c = ctx();
    push_self(c, c.core->now + delay, std::move(fn));
  }

  /// Schedule `fn` to run at `at` in domain `target`, which may live on
  /// another shard.  During parallel execution a cross-shard post is
  /// buffered in a mailbox and applied at the next epoch boundary in
  /// canonical order; the lookahead contract (see configure_domains) is
  /// asserted.  Sequentially it is an ordinary heap push, so the canonical
  /// order — and therefore the simulation — is identical either way.
  void post_at(DomainId target, SimTime at, std::function<void()> fn);

  /// Awaitable: suspend the current coroutine for `d` simulated time.
  ///
  ///   co_await engine.delay(SimTime::ms(5));
  [[nodiscard]] auto delay(SimTime d) {
    struct Awaiter {
      Engine* eng;
      SimTime d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng->schedule_in(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    LAP_EXPECTS(d >= SimTime::zero());
    return Awaiter{this, d};
  }

  /// Awaitable: migrate the current coroutine to domain `dst`, resuming at
  /// absolute simulated time `at`.  This is the cross-domain hop primitive
  /// for flows that model data movement (a block copy arriving at another
  /// node): the continuation runs *in the destination domain*, so all state
  /// it touches afterwards is owned by that domain's shard.  Cross-shard
  /// hops ride the mailbox path and must respect the lookahead contract
  /// (model→model hops need `at` ≥ epoch end; the poster guarantees that by
  /// modelling a latency of at least the configured lookahead).
  ///
  ///   co_await engine.hop_to(node_domain(dst), now + copy_latency);
  [[nodiscard]] auto hop_to(DomainId dst, SimTime at) {
    struct Awaiter {
      Engine* eng;
      DomainId dst;
      SimTime at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng->post_at(dst, at, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dst, at};
  }

  /// Run until the event queues drain.  Returns the number of events
  /// processed by this call.  Sequential (any shard executes on the
  /// calling thread); valid for every domain configuration and always
  /// produces the canonical order.
  std::uint64_t run();

  /// Run until the queue drains or simulated time would exceed `horizon`.
  /// Events past the horizon stay queued.  Single-shard configurations
  /// only.
  std::uint64_t run_until(SimTime horizon);

  /// Run until the event queues drain using up to `threads` workers from a
  /// private thread pool (0 = one worker per shard).  Shards execute
  /// epochs in lockstep: [T, T + lookahead) where T is the globally
  /// earliest pending event, model-phase shards before service-phase
  /// shards, cross-shard mail applied at the barriers in canonical order.
  /// Bit-exact with run() for any thread count — the differential wall
  /// (lap_check, ContainerGolden, SweepShards) holds it to that.
  std::uint64_t run_parallel(std::size_t threads);

  [[nodiscard]] std::uint64_t events_processed() const;
  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending() const;

  /// Number of epoch-barrier rounds the last run_parallel executed.  Each
  /// epoch starts at the globally earliest pending event (empty epochs are
  /// fast-forwarded over, never iterated), so this is also a measure of
  /// barrier overhead per scenario.
  [[nodiscard]] std::uint64_t epochs_executed() const { return epochs_; }

  /// Attach an observability sink (nullptr detaches).  The engine itself
  /// emits nothing — the dispatch loop is the simulator's hottest path, and
  /// queue depth is already sampled via the counter registry's
  /// `engine.pending` probe — but components reach the run's sink here.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] TraceSink* trace_sink() const { return trace_; }

  /// Attach a provenance span collector (nullptr detaches).  Same contract
  /// as the trace sink: the engine never calls it, components reach the
  /// run's collector here, and a detached run pays one branch per hook.
  void set_span_collector(SpanCollector* spans) { spans_ = spans; }
  [[nodiscard]] SpanCollector* span_collector() const { return spans_; }

 private:
  // The heap holds only this 24-byte POD; the callback lives in a slab slot
  // that is recycled across events, so heap maintenance never moves (or
  // reallocates) the closures.  `key` packs the whole non-timestamp half of
  // the canonical sort key into one word — phase(target) in bit 63, origin
  // domain in bits 47..62, the origin's sequence number in the low 47 bits
  // — so the comparator is exactly two compares (at, then key), the same
  // shape as the pre-sharding engine's.  seq is unique per origin, so key
  // is unique per timestamp and the slot never has to decide.  2^47 events
  // per domain per run, asserted at schedule time.
  static constexpr unsigned kSeqBits = 47;
  struct Event {
    SimTime at;
    std::uint64_t key = 0;          // phase(target) << 63 | origin << 47 | seq
    std::uint64_t slot_target = 0;  // target << 32 | slot
    // Three word-sized members on purpose: the heap's sift loads elements
    // back word-by-word right after storing them, so narrower or padded
    // members turn every push into a store-forwarding stall.

    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(slot_target);
    }
    [[nodiscard]] DomainId target() const {
      return static_cast<DomainId>(slot_target >> 32);
    }
  };
  struct Earlier {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.key < b.key;  // (phase, origin, seq), lexicographic
    }
  };

  // One execution lane per shard.  Padded: during parallel phases each
  // core is written by exactly one worker, and they must not share lines.
  struct alignas(64) Core {
    SimTime now;
    std::uint64_t executed = 0;
    Slab<std::function<void()>> fns;
    DaryHeap<Event, Earlier, 4> queue;
    // Order key per pending slot (see current_event_key): kept beside the
    // slab, not in Event, so the heap's three-word sift stays three words.
    std::vector<std::uint64_t> effs;
  };

  struct alignas(64) SeqCounter {
    std::uint64_t v = 0;
  };

  // Where code is executing right now: which core's clock is current and
  // which domain owns the running event.  Sequential runs keep this in a
  // member; parallel workers keep theirs in thread-local storage.  The
  // last two fields cache what same-domain scheduling needs — the domain's
  // sequence counter and its pre-packed (phase, origin) key base — so
  // the hot path never indexes the side tables.
  struct Ctx {
    Core* core = nullptr;
    DomainId domain;
    std::uint16_t shard = 0;
    SeqCounter* seq = nullptr;
    std::uint64_t self_key = 0;   // key_base(domain, domain)
    std::uint64_t event_key = 0;  // order key of the running event (0 idle)
  };

  // A cross-shard message parked until the next epoch boundary.  The
  // sequence number inside `key` is drawn at post time from the origin
  // domain's counter, so applying mailboxes in any order at the barrier
  // still yields the one canonical heap order.
  struct Mail {
    SimTime at;
    std::uint64_t key = 0;
    std::uint64_t eff = 0;
    DomainId target;
    std::function<void()> fn;
  };

  [[nodiscard]] const Ctx& ctx() const {
    if (parallel_active_ && tls_engine_ == this) return tls_ctx_;
    return seq_ctx_;
  }

  [[nodiscard]] std::uint64_t key_base(DomainId origin,
                                       DomainId target) const {
    return (static_cast<std::uint64_t>(map_.phase_of[target]) << 63) |
           (static_cast<std::uint64_t>(origin) << kSeqBits);
  }

  [[nodiscard]] Ctx make_ctx(DomainId d, std::uint16_t shard,
                             std::uint64_t event_key = 0) {
    return Ctx{&cores_ptr_[map_.shard_of[d]], d, shard, &seq_ptr_[d],
               key_base(d, d), event_key};
  }

  // The default engine (one domain, one shard): origin and target are
  // always domain 0 and the key is the bare sequence, so the hot path is the
  // historical sequential engine's — counter++, slab put, heap push — on
  // state addressed at fixed offsets from `this`, with no context lookup
  // and no vector-data indirection at all.
  void push_single(SimTime at, std::function<void()> fn) {
    LAP_EXPECTS(at >= core0_.now);
    // Domain 0 is model-phase, so phase and origin bits are zero and the
    // key is the bare sequence number.
    const std::uint64_t seq = seq0_.v++;
    LAP_ASSERT(seq < (1ULL << kSeqBits));
    const std::uint64_t slot = core0_.fns.put(std::move(fn));
    core0_.queue.push(Event{at, seq, slot});
  }

  // The order key of a new event (see current_event_key): a same-time
  // post from inside an event executes after its poster regardless of its
  // own key, so it inherits the poster's order key when that is larger.
  [[nodiscard]] static std::uint64_t order_key(const Ctx& c, SimTime at,
                                               std::uint64_t key) {
    return at == c.core->now && c.event_key > key ? c.event_key : key;
  }

  static void store_eff(Core& core, std::uint64_t slot, std::uint64_t eff) {
    if (core.effs.size() <= slot) core.effs.resize(slot + 1);
    core.effs[slot] = eff;
  }

  // Same-domain push with everything pre-resolved in the context.
  void push_self(const Ctx& c, SimTime at, std::function<void()> fn) {
    const std::uint64_t seq = c.seq->v++;
    LAP_ASSERT(seq < (1ULL << kSeqBits));
    const std::uint64_t key = c.self_key | seq;
    const std::uint64_t slot = c.core->fns.put(std::move(fn));
    store_eff(*c.core, slot, order_key(c, at, key));
    c.core->queue.push(Event{
        at, key, (static_cast<std::uint64_t>(c.domain) << 32) | slot});
  }

  void push_event(const Ctx& c, Core& core, SimTime at, DomainId target,
                  std::function<void()> fn) {
    const std::uint64_t seq = seq_ptr_[c.domain].v++;
    LAP_ASSERT(seq < (1ULL << kSeqBits));
    const std::uint64_t key = key_base(c.domain, target) | seq;
    const std::uint64_t slot = core.fns.put(std::move(fn));
    store_eff(core, slot, order_key(c, at, key));
    core.queue.push(Event{
        at, key, (static_cast<std::uint64_t>(target) << 32) | slot});
  }

  void worker_loop(std::size_t w, std::size_t workers);
  void run_phase(std::size_t w, std::size_t workers, DomainPhase phase);
  void drain_mail(std::vector<std::vector<Mail>>& boxes, std::size_t w,
                  std::size_t workers);
  void plan_epoch();

  DomainMap map_;
  SimTime lookahead_;
  std::vector<DomainPhase> shard_phase_ = {DomainPhase::kModel};
  // Shard 0 / domain 0 live inline in the engine so the default
  // (single-domain, single-shard) hot path addresses them at fixed offsets
  // from `this` — the layout the dispatch loop is tuned for.  The vectors
  // are populated, and the pointer views retargeted onto them, only when
  // configure_domains() installs a real multi-shard or multi-domain map.
  Core core0_;
  SeqCounter seq0_;
  std::vector<Core> cores_;            // all shards, iff map_.shards > 1
  std::vector<SeqCounter> next_seq_;   // all domains, iff domains() > 1
  Core* cores_ptr_ = &core0_;
  SeqCounter* seq_ptr_ = &seq0_;
  Ctx seq_ctx_;
  bool single_ = true;  // one domain, one shard: the default engine
  bool seq_running_ = false;

  // Epoch state, written by worker 0 in plan_epoch() and read by everyone
  // after the following barrier — the barrier provides the ordering, so
  // these are deliberately plain fields.
  bool parallel_active_ = false;
  bool done_ = false;
  SimTime epoch_end_;
  std::uint64_t epochs_ = 0;
  class SpinBarrier* barrier_ = nullptr;

  // Mailboxes, indexed [src_shard * shards + dst_shard].  Double-buffered
  // by writer phase: model-phase events post into mail_model_ (drained
  // between the model and service halves of the same epoch — that is how a
  // disk admission crosses shards without waiting an epoch), service-phase
  // events post into mail_service_ (drained at the top of the next epoch).
  // Each cell has exactly one writing worker per phase and one draining
  // worker per barrier window, so the vectors need no locks.
  std::vector<std::vector<Mail>> mail_model_;
  std::vector<std::vector<Mail>> mail_service_;

  TraceSink* trace_ = nullptr;
  SpanCollector* spans_ = nullptr;

  // constinit: constant-initialized TLS has no per-access init guard (the
  // _ZTH wrapper call the ABI otherwise requires on every read).
  static constinit thread_local Engine* tls_engine_;
  static constinit thread_local Ctx tls_ctx_;
};

}  // namespace lap
