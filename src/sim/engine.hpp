// Discrete-event simulation engine.
//
// The engine owns a time-ordered event queue.  Events at equal timestamps
// fire in scheduling order (a strictly increasing sequence number breaks
// ties), which makes runs fully deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>

#include "util/assert.hpp"
#include "util/dary_heap.hpp"
#include "util/slab.hpp"
#include "util/units.hpp"

namespace lap {

class SpanCollector;
class TraceSink;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute simulated time `at` (>= now).
  void schedule_at(SimTime at, std::function<void()> fn) {
    LAP_EXPECTS(at >= now_);
    const std::uint32_t slot = fns_.put(std::move(fn));
    LAP_ASSERT(slot < (1u << kSlotBits));
    LAP_ASSERT(next_seq_ < (1ULL << (64 - kSlotBits)));
    queue_.push(Event{at, (next_seq_++ << kSlotBits) | slot});
  }

  /// Schedule `fn` to run `delay` from now.
  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Awaitable: suspend the current coroutine for `d` simulated time.
  ///
  ///   co_await engine.delay(SimTime::ms(5));
  [[nodiscard]] auto delay(SimTime d) {
    struct Awaiter {
      Engine* eng;
      SimTime d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng->schedule_in(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    LAP_EXPECTS(d >= SimTime::zero());
    return Awaiter{this, d};
  }

  /// Run until the event queue drains.  Returns the number of events
  /// processed by this call.
  std::uint64_t run();

  /// Run until the queue drains or simulated time would exceed `horizon`.
  /// Events past the horizon stay queued.
  std::uint64_t run_until(SimTime horizon);

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Attach an observability sink (nullptr detaches).  The engine itself
  /// emits nothing — the dispatch loop is the simulator's hottest path, and
  /// queue depth is already sampled via the counter registry's
  /// `engine.pending` probe — but components reach the run's sink here.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] TraceSink* trace_sink() const { return trace_; }

  /// Attach a provenance span collector (nullptr detaches).  Same contract
  /// as the trace sink: the engine never calls it, components reach the
  /// run's collector here, and a detached run pays one branch per hook.
  void set_span_collector(SpanCollector* spans) { spans_ = spans; }
  [[nodiscard]] SpanCollector* span_collector() const { return spans_; }

 private:
  // The heap holds only this 16-byte POD; the callback lives in a slab slot
  // that is recycled across events, so heap maintenance never moves (or
  // reallocates) the closures.  seq and slot share one word — seq in the
  // high bits, so comparing seq_slot compares seq (seq is unique; the slot
  // bits can never decide) — which keeps dispatch order the total (at, seq)
  // order, bit-identical to the former std::priority_queue implementation,
  // while a sift touches a third fewer cache lines.  The split allows 2^24
  // concurrently pending events and 2^40 scheduled per run, both asserted
  // at schedule time.
  static constexpr unsigned kSlotBits = 24;
  struct Event {
    SimTime at;
    std::uint64_t seq_slot;
  };
  struct Earlier {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq_slot < b.seq_slot;  // seq in the high bits decides
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  TraceSink* trace_ = nullptr;
  SpanCollector* spans_ = nullptr;
  Slab<std::function<void()>> fns_;
  DaryHeap<Event, Earlier, 4> queue_;
};

}  // namespace lap
