#include "sim/resource.hpp"

namespace lap {

void Resource::release() {
  LAP_EXPECTS(in_use_ > 0);
  --in_use_;
  if (!queue_.empty()) {
    auto h = queue_.top().handle;
    queue_.pop();
    ++in_use_;  // hand the slot to the waiter before it runs
    eng_->schedule_in(SimTime::zero(), [h] { h.resume(); });
  }
}

}  // namespace lap
