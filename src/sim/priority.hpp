// Conventional service priorities used across the simulator (lower value =
// more urgent).  Shared by the disk queues, server CPUs and NICs.
#pragma once

namespace lap::prio {
inline constexpr int kDemand = 0;    // user-requested reads/writes
inline constexpr int kSync = 1;      // periodic fault-tolerance write-back
inline constexpr int kPrefetch = 2;  // speculative reads
}  // namespace lap::prio
