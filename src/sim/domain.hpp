// Domain partitioning for sharded simulation (DESIGN.md §14).
//
// A *domain* is a unit of simulated state that only its own events may
// touch (the model side of a machine: nodes, caches, directory, network;
// or one service component: a disk spindle).  A *shard* is an execution
// lane — its own slab + 4-ary-heap event queue — onto which domains are
// grouped.  The domain structure is part of a run's semantics (event keys
// are ordered by (timestamp, origin domain, sequence)), while the
// shard grouping is pure execution policy: any shard count must replay a
// scenario bit-exactly, which the differential test wall enforces.
//
// Phases order cross-domain hand-offs inside one epoch: each epoch first
// runs every kModel shard, then every kService shard, so a model event may
// post same-timestamp work into a service domain (a disk admission) while
// every other cross-shard message must land at or beyond the epoch
// boundary (the conservative lookahead contract, asserted by the engine).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lap {

using DomainId = std::uint16_t;

enum class DomainPhase : std::uint8_t { kModel = 0, kService = 1 };

struct DomainMap {
  std::uint16_t shards = 1;
  // Indexed by DomainId; domain 0 is the default scheduling context, so
  // every map has at least one domain and domain 0 lives on shard 0.
  std::vector<std::uint16_t> shard_of = {0};
  std::vector<DomainPhase> phase_of = {DomainPhase::kModel};

  [[nodiscard]] std::size_t domains() const { return shard_of.size(); }
};

// Canonical numbering of the per-node model domains (DESIGN.md §14):
// domain 0 is the directory/controller domain, domains 1..nodes are the
// per-node cooperative-cache domains, and disk service domains follow.
// The numbering is part of run semantics (it feeds the event key), so it
// is identical at every shard count and for both file systems.
[[nodiscard]] inline DomainId node_domain(std::uint32_t node) {
  return static_cast<DomainId>(1 + node);
}

[[nodiscard]] inline DomainId disk_domain(std::uint32_t nodes,
                                          std::uint32_t disk) {
  return static_cast<DomainId>(1 + nodes + disk);
}

// One per-domain shutdown flag, line-padded: each flag is written only by
// events running in its own domain (the driver broadcasts stop mail to
// every domain), and polled by that domain's daemons and prefetch pumps,
// so no flag ever crosses a shard boundary.
struct alignas(64) StopFlag {
  bool stop = false;
};

}  // namespace lap
