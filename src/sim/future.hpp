// One-shot futures and broadcast conditions for coroutine rendezvous.
//
// SimPromise/SimFuture implement a single-producer, single-waiter
// request/response channel (e.g. a client awaiting a server's reply).
// Broadcast implements a multi-waiter condition (e.g. several readers
// awaiting the same in-flight disk block).
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace lap {

template <typename T>
class SimFuture;

/// Producer side.  Copyable handle to shared one-shot state.
template <typename T>
class SimPromise {
 public:
  explicit SimPromise(Engine& eng)
      : state_(std::make_shared<State>(State{&eng, {}, {}, false})) {}

  /// Fulfil the promise; the waiter (if any) resumes at the current
  /// simulated time, after the caller's event completes.
  void set_value(T value) const {
    LAP_EXPECTS(!state_->ready);
    state_->value.emplace(std::move(value));
    state_->ready = true;
    if (state_->waiter) {
      auto h = std::exchange(state_->waiter, nullptr);
      state_->eng->schedule_in(SimTime::zero(), [h] { h.resume(); });
    }
  }

  [[nodiscard]] SimFuture<T> future() const { return SimFuture<T>(state_); }
  [[nodiscard]] bool ready() const { return state_->ready; }

 private:
  friend class SimFuture<T>;
  struct State {
    Engine* eng = nullptr;
    std::optional<T> value;
    std::coroutine_handle<> waiter;
    bool ready = false;
  };
  std::shared_ptr<State> state_;
};

/// Consumer side; awaitable exactly once.
template <typename T>
class SimFuture {
 public:
  bool await_ready() const noexcept { return state_->ready; }
  void await_suspend(std::coroutine_handle<> h) {
    LAP_EXPECTS(!state_->waiter);  // single-waiter contract
    state_->waiter = h;
  }
  T await_resume() {
    LAP_EXPECTS(state_->ready);
    return std::move(*state_->value);
  }

 private:
  friend class SimPromise<T>;
  explicit SimFuture(std::shared_ptr<typename SimPromise<T>::State> s)
      : state_(std::move(s)) {}
  std::shared_ptr<typename SimPromise<T>::State> state_;
};

/// Unit type for futures that carry no payload.
struct Done {};

/// Rendezvous for a fan-out of `n` parallel sub-operations: arrive() is
/// called once per completion and the future resolves on the last one.
class Joiner {
 public:
  Joiner(Engine& eng, std::uint32_t n) : remaining_(n), promise_(eng) {
    if (remaining_ == 0) promise_.set_value(Done{});
  }

  void arrive() {
    LAP_EXPECTS(remaining_ > 0);
    if (--remaining_ == 0) promise_.set_value(Done{});
  }

  [[nodiscard]] SimFuture<Done> future() const { return promise_.future(); }
  [[nodiscard]] std::uint32_t remaining() const { return remaining_; }

 private:
  std::uint32_t remaining_ = 0;
  SimPromise<Done> promise_;
};

/// A level-triggered multi-waiter condition.  Waiters suspend until the
/// next notify_all(); notification is not sticky.
class Broadcast {
 public:
  explicit Broadcast(Engine& eng) : eng_(&eng) {}
  Broadcast(const Broadcast&) = delete;
  Broadcast& operator=(const Broadcast&) = delete;

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Broadcast* bc;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        bc->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Resume every current waiter (at the current simulated time).
  void notify_all() {
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      eng_->schedule_in(SimTime::zero(), [h] { h.resume(); });
    }
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Engine* eng_ = nullptr;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace lap
