// A served resource with priority queueing (disks, server CPUs, NICs).
//
// acquire() suspends the caller until one of `capacity` slots is free.
// Waiters are served strictly by (priority, arrival order): a lower
// priority value is more urgent.  Service is non-preemptive, which matches
// the paper's rule that a prefetch never starts while demand operations
// wait, but an in-progress prefetch is not aborted.
#pragma once

#include <coroutine>
#include <cstdint>
#include <utility>

#include "sim/engine.hpp"
#include "sim/priority.hpp"
#include "util/assert.hpp"
#include "util/dary_heap.hpp"

namespace lap {

class Resource {
 public:
  explicit Resource(Engine& eng, std::uint32_t capacity = 1)
      : eng_(&eng), capacity_(capacity) {
    LAP_EXPECTS(capacity >= 1);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Awaitable acquisition; the caller owns one slot on resume and must
  /// call release() exactly once (or use scoped()).
  [[nodiscard]] auto acquire(int priority = prio::kDemand) {
    struct Awaiter {
      Resource* res;
      int priority;
      bool await_ready() const noexcept {
        if (res->in_use_ < res->capacity_ && res->queue_.empty()) {
          ++res->in_use_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res->queue_.push(Waiter{priority, res->next_seq_++, h});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, priority};
  }

  /// RAII guard for acquire/release pairing across co_awaits.
  class Guard {
   public:
    explicit Guard(Resource& r) : res_(&r) {}
    Guard(Guard&& o) noexcept : res_(std::exchange(o.res_, nullptr)) {}
    Guard& operator=(Guard&&) = delete;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() {
      if (res_ != nullptr) res_->release();
    }

   private:
    Resource* res_ = nullptr;
  };

  /// Awaitable that yields a Guard: `auto g = co_await res.scoped(p);`
  [[nodiscard]] auto scoped(int priority = prio::kDemand) {
    struct Awaiter {
      Resource* res;
      int priority;
      bool await_ready() const noexcept {
        if (res->in_use_ < res->capacity_ && res->queue_.empty()) {
          ++res->in_use_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res->queue_.push(Waiter{priority, res->next_seq_++, h});
      }
      Guard await_resume() const noexcept { return Guard{*res}; }
    };
    return Awaiter{this, priority};
  }

  /// Free one slot; the most urgent waiter (if any) is resumed.
  void release();

  [[nodiscard]] std::uint32_t in_use() const { return in_use_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return in_use_ > 0 || !queue_.empty(); }

 private:
  // Flat 4-ary min-heap of small PODs; (priority, seq) is a total order
  // (seq is unique), so service order matches the former
  // std::priority_queue implementation exactly.
  struct Waiter {
    int priority = 0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> handle;
  };
  struct Earlier {
    bool operator()(const Waiter& a, const Waiter& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq < b.seq;
    }
  };

  Engine* eng_ = nullptr;
  std::uint32_t capacity_ = 0;
  std::uint32_t in_use_ = 0;
  std::uint64_t next_seq_ = 0;
  DaryHeap<Waiter, Earlier, 4> queue_;
};

}  // namespace lap
