#include "obs/counters.hpp"

#include <functional>
#include <memory>
#include <string>

#include "obs/json.hpp"
#include "obs/trace_event.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace lap {

CounterRegistry::Entry& CounterRegistry::get_or_create(std::string_view name,
                                                       Kind kind, double lo,
                                                       double hi,
                                                       std::size_t buckets) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    // Duplicate registration: same name must mean the same instrument.
    LAP_EXPECTS(it->second->kind == kind);
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<HistogramStat>(lo, hi, buckets);
      break;
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  by_name_.emplace(raw->name, raw);
  return *raw;
}

Counter& CounterRegistry::counter(std::string_view name) {
  return *get_or_create(name, Kind::kCounter, 0, 0, 0).counter;
}

Gauge& CounterRegistry::gauge(std::string_view name) {
  return *get_or_create(name, Kind::kGauge, 0, 0, 0).gauge;
}

Gauge& CounterRegistry::probe(std::string_view name,
                              std::function<double()> probe) {
  Gauge& g = gauge(name);
  g.set_probe(std::move(probe));
  return g;
}

HistogramStat& CounterRegistry::histogram(std::string_view name, double lo,
                                          double hi, std::size_t buckets) {
  return *get_or_create(name, Kind::kHistogram, lo, hi, buckets).histogram;
}

bool CounterRegistry::has(std::string_view name) const {
  return by_name_.contains(std::string(name));
}

void CounterRegistry::sample_into(TraceSink& sink, SimTime now) const {
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        sink.counter(e->name.c_str(), now,
                     static_cast<double>(e->counter->value()));
        break;
      case Kind::kGauge:
        sink.counter(e->name.c_str(), now, e->gauge->value());
        break;
      case Kind::kHistogram:
        sink.counter(e->name.c_str(), now, e->histogram->accumulator().mean());
        break;
    }
  }
}

void CounterRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  for (const auto& e : entries_) {
    w.key(e->name);
    switch (e->kind) {
      case Kind::kCounter:
        w.value(e->counter->value());
        break;
      case Kind::kGauge:
        w.value(e->gauge->value());
        break;
      case Kind::kHistogram: {
        const Accumulator& a = e->histogram->accumulator();
        const Histogram& h = e->histogram->histogram();
        w.begin_object();
        w.member("count", a.count());
        w.member("mean", a.mean());
        w.member("min", a.min());
        w.member("max", a.max());
        w.member("p50", h.quantile(0.50));
        w.member("p95", h.quantile(0.95));
        w.member("p99", h.quantile(0.99));
        w.end_object();
        break;
      }
    }
  }
  w.end_object();
}

void CounterRegistry::freeze_probes() {
  for (const auto& e : entries_) {
    if (e->kind == Kind::kGauge) e->gauge->freeze();
  }
}

namespace {

void schedule_sample_tick(Engine& eng, const CounterRegistry& reg,
                          TraceSink& sink, SimTime interval, const bool* stop) {
  eng.schedule_in(interval, [&eng, &reg, &sink, interval, stop] {
    reg.sample_into(sink, eng.now());
    // Observe the end-of-workload flag, like every daemon, so the engine's
    // queue still drains once the workload completes.
    if (!*stop) schedule_sample_tick(eng, reg, sink, interval, stop);
  });
}

}  // namespace

void start_counter_sampling(Engine& eng, const CounterRegistry& reg,
                            TraceSink& sink, SimTime interval,
                            const bool* stop) {
  LAP_EXPECTS(interval > SimTime::zero());
  LAP_EXPECTS(stop != nullptr);
  schedule_sample_tick(eng, reg, sink, interval, stop);
}

}  // namespace lap
