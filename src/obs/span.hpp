// Prefetch-lifecycle provenance: per-block spans with causal attribution.
//
// A BlockSpan records one block's journey through the system —
//
//   predicted -> (disk queue -> disk service)? -> (net wait -> net hop)*
//             -> arrived -> used | wasted | elided
//
// — together with *why* it happened: which predictor decided to fetch it
// (graph prediction, order-k fallback, sequential readahead, informed hint,
// whole-file flood), which client access triggered the decision, and where
// each nanosecond of its in-flight latency went.  Demand reads get spans
// too, so hit/miss service time can be broken down the same way.
//
// Wiring follows the PR 1 observability contract exactly: components reach
// the run's collector through `Engine::span_collector()`, which is nullptr
// by default, so every hook is a single predictable branch when provenance
// is off.  The collector is strictly passive — it never schedules events,
// allocates only on its own side, and the traced-vs-untraced differential
// in src/check proves a run with spans attached stays bit-exact.
//
// Span identity is a SpanRef: index+1 into the append-only span vector,
// 0 meaning "no span".  While a prefetch is in flight the collector keeps
// the ref in a (site, block) map — collision-free because the managers
// elide duplicate fetches and both filesystems register a fetch with the
// in-flight table before their first suspension point.  Once the block
// lands in a cache the ref is stamped into CacheEntry::span and travels
// with the entry (including xFS N-chance forwarding), so settlement needs
// no resident-block map at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/block.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"
#include "util/units.hpp"

namespace lap {

class CounterRegistry;
class Engine;
class TraceSink;

/// Why a prefetch was issued.
enum class PrefetchOrigin : std::uint8_t {
  kGraph,       // PPM graph prediction (IS_PPM / VK_PPM highest order hit)
  kFallback,    // PPM miss, order-0 frequency fallback
  kSequential,  // one-block-ahead sequential readahead (OBA)
  kHint,        // informed upper bound: application-disclosed access list
  kWholeFile,   // open-triggered whole-file flood
};

/// Terminal state of a span.
enum class SpanOutcome : std::uint8_t {
  kOpen,    // still in flight / resident (transient; none remain at finalize)
  kUsed,    // a client read or write touched the block before eviction
  kWasted,  // fetched but never referenced
  kElided,  // issue decision hit an already-available block; no I/O happened
  kDemand,  // demand-read span (terminal once the read completes)
};

/// Why a prefetched block was wasted.
enum class WasteReason : std::uint8_t {
  kNone,
  kEvicted,        // cache pressure pushed it out unreferenced
  kInvalidated,    // a writer invalidated the replica before first use
  kDeleted,        // its file was removed
  kSuperseded,     // a demand fetch for the same block won the race
  kForwardDropped, // xFS N-chance forward found no room at the target
  kShutdown,       // still resident and unreferenced at end of run
};

/// How a demand read was served.
enum class DemandClass : std::uint8_t {
  kUnclassified,
  kHitLocal,     // block cached on the reading node
  kHitRemote,    // block cached on a peer
  kHitInflight,  // piggybacked on an outstanding fetch
  kMiss,         // went to disk
};

[[nodiscard]] const char* to_string(PrefetchOrigin o);
[[nodiscard]] const char* to_string(SpanOutcome o);
[[nodiscard]] const char* to_string(WasteReason r);
[[nodiscard]] const char* to_string(DemandClass c);

/// Opaque span handle: index+1 into SpanCollector::spans(); 0 = no span.
using SpanRef = std::uint64_t;

/// One block's lifecycle.  All times are simulation timestamps/durations;
/// everything here derives from integer nanoseconds, so any rendering of a
/// span is deterministic across runs and platforms.
struct BlockSpan {
  BlockKey key{};
  std::uint32_t site = 0;  // issuing manager: 0 = PAFS global, node+1 = xFS
  bool demand = false;     // false: prefetch span; true: demand-read span

  // Causal attribution (prefetch spans).
  PrefetchOrigin origin = PrefetchOrigin::kGraph;
  bool fallback = false;           // order-0 fallback within a PPM predictor
  std::uint32_t trigger_pid = 0;   // process whose access triggered the issue
  std::int64_t trigger_block = -1; // first block of that access (-1: open)
  NodeId target{};                 // node the block was fetched for
  // Outstanding-prefetch degree in force at the issue decision: 1 is the
  // paper's linear limitation, >1 a fixed or feedback-raised degree,
  // 0 an unbounded (flooding) policy.
  std::uint32_t degree = 1;

  // Lifecycle timestamps.
  SimTime predicted;  // issue decision (prefetch) / read entry (demand)
  SimTime arrived;    // data resident in a cache / read classified
  SimTime settled;    // terminal event (first use, waste, read completion)

  // Per-stage latency attribution, accumulated while in flight.
  SimTime disk_wait;     // disk queue wait (submit -> service start)
  SimTime disk_service;  // seek + rotation + transfer window
  SimTime net_wait;      // NIC arbitration wait
  SimTime net_time;      // wire time, summed over hops
  std::uint32_t net_hops = 0;
  bool via_peer = false;  // served from a peer cache rather than disk

  SpanOutcome outcome = SpanOutcome::kOpen;
  WasteReason waste = WasteReason::kNone;
  DemandClass demand_class = DemandClass::kUnclassified;

  /// predicted -> arrived (valid once arrived is set).
  [[nodiscard]] SimTime in_flight() const { return arrived - predicted; }
  /// arrived -> settled: cache residence until first use / waste.
  [[nodiscard]] SimTime residence() const { return settled - arrived; }
  /// In-flight time not attributed to disk or net: manager CPU, control
  /// messages, event-loop ordering.  Clamped at zero.
  [[nodiscard]] SimTime other() const {
    const SimTime attributed = disk_wait + disk_service + net_wait + net_time;
    const SimTime o = in_flight() - attributed;
    return o < SimTime::zero() ? SimTime::zero() : o;
  }
};

/// Passive sink for span events.  One instance per run; attach via
/// RunConfig::spans (the driver hands it to the engine).
class SpanCollector {
 public:
  SpanCollector() = default;
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  // --- sharded runs -------------------------------------------------------
  //
  // With one shard the collector is the flat append-only vector it has
  // always been.  A node-sharded run instead gives every shard its own
  // lane (spans, open table, per-lane counter): a SpanRef then encodes
  // (owning shard, local index), creations are tagged with the canonical
  // position of the creating event, and the rare cross-shard operations —
  // a settle or stage-attribution against a span another shard created —
  // are appended to the *acting* shard's deferred list instead of touching
  // foreign memory.  That is race-free by the same single-writer argument
  // as the engine's mailboxes, and lossless because settles are unique per
  // ref and stage attributions commute.  seal() applies the deferred ops
  // and merges the lanes back into the one canonical creation order, so
  // every read below (totals, publish, emit_async, spans) is bit-exact
  // with the sequential run.

  /// Opt into per-shard lanes (no-op when `eng` runs a single shard).
  /// Call after Engine::configure_domains, before any span is created.
  void bind(const Engine* eng);

  /// Apply deferred cross-shard ops and merge lanes into canonical order.
  /// Call after the run fully drains *and* the filesystem finalizes (the
  /// thread-pool join provides the happens-before edge).  Required before
  /// any read when bound to a multi-shard engine.
  void seal();

  // --- prefetch lifecycle -------------------------------------------------

  /// A manager decided to fetch `key` for `target`.  Returns the new ref;
  /// the span stays in the open table until arrival.  `degree` is the
  /// outstanding-prefetch degree in force at the decision (0 = unbounded).
  SpanRef prefetch_predicted(std::uint32_t site, BlockKey key,
                             PrefetchOrigin origin, bool fallback,
                             std::uint32_t trigger_pid,
                             std::int64_t trigger_block, NodeId target,
                             SimTime now, std::uint32_t degree = 1);

  /// The fetch found the block already available (or its file gone): no I/O.
  void prefetch_elided(std::uint32_t site, BlockKey key, SimTime now);

  /// The block is resident.  Removes the open-table entry and returns the
  /// ref so the filesystem can stamp it into the cache entry (or settle it
  /// superseded).  Returns 0 if no open span matches.
  SpanRef prefetch_arrived(std::uint32_t site, BlockKey key, bool via_peer,
                           SimTime now);

  /// Ref of the in-flight span for (site, key), 0 if none — used to tag
  /// disk/net operations issued on the span's behalf.
  [[nodiscard]] SpanRef open_ref(std::uint32_t site, BlockKey key) const;

  void settle_used(SpanRef ref, SimTime now);
  void settle_wasted(SpanRef ref, WasteReason reason, SimTime now);

  // --- demand lifecycle ---------------------------------------------------

  SpanRef demand_started(NodeId client, BlockKey key, SimTime now);
  void demand_classified(SpanRef ref, DemandClass c, SimTime now);
  void demand_done(SpanRef ref, SimTime now);

  // --- stage attribution (called by disk / net with the tagged ref) -------

  void disk_serviced(SpanRef ref, SimTime queue_wait, SimTime service);
  void net_transferred(SpanRef ref, SimTime wait, SimTime duration);

  // --- end of run ---------------------------------------------------------

  /// Register span totals and per-stage latency histograms (milliseconds)
  /// with the counter registry.  The instrument set and order are fixed, so
  /// metrics-JSON export stays registration-order deterministic.
  void publish(CounterRegistry& reg) const;

  /// Emit every span as a Perfetto async track pair ("b"/"e") plus per-stage
  /// args.  Timestamps are historical; trace viewers sort by ts.
  void emit_async(TraceSink& sink) const;

  // --- queries ------------------------------------------------------------

  [[nodiscard]] const std::vector<BlockSpan>& spans() const {
    LAP_EXPECTS(!sharded_ || sealed_);
    return spans_;
  }
  [[nodiscard]] const BlockSpan* span(SpanRef ref) const {
    LAP_EXPECTS(!sharded_ || sealed_);
    return ref == 0 || ref > spans_.size() ? nullptr : &spans_[ref - 1];
  }

  /// Whole-run totals; `arrived == used + wasted` by construction, and the
  /// three must equal the counter-registry / RunResult prefetch totals
  /// (cross-checked on every lap_check fuzz run).
  struct Totals {
    std::uint64_t predicted = 0;  // prefetch spans incl. elided
    std::uint64_t elided = 0;
    std::uint64_t arrived = 0;
    std::uint64_t used = 0;
    std::uint64_t wasted = 0;
    std::uint64_t demand_blocks = 0;
  };
  [[nodiscard]] Totals totals() const;

 private:
  struct OpenKey {
    std::uint32_t site = 0;
    BlockKey key{};
    friend constexpr bool operator==(OpenKey, OpenKey) = default;
  };
  struct OpenKeyHash {
    [[nodiscard]] std::size_t operator()(OpenKey k) const noexcept {
      std::uint64_t v = BlockKeyHash{}(k.key);
      v ^= (static_cast<std::uint64_t>(k.site) + 0x9e3779b97f4a7c15ULL) +
           (v << 6) + (v >> 2);
      return static_cast<std::size_t>(v);
    }
  };

  // A lane ref packs (owning shard, local index + 1); 0 stays "no span".
  // 48 bits of local index dwarf any run (the engine's own per-domain
  // sequence space is 47 bits).
  static constexpr unsigned kShardShift = 48;
  static constexpr std::uint64_t kLocalMask = (1ULL << kShardShift) - 1;

  // Canonical position of the event that created a span: the merge key
  // that restores sequential creation order at seal().  (at, key) is
  // unique per event; `n` orders creations within one event (which all
  // happen on that event's lane).
  struct Tag {
    SimTime at;
    std::uint64_t key;
    std::uint64_t n;
  };

  enum class DeferredOp : std::uint8_t {
    kSettleUsed,
    kSettleWasted,
    kDiskServiced,
    kNetTransferred,
  };
  struct Deferred {
    SpanRef ref = 0;
    DeferredOp op = DeferredOp::kSettleUsed;
    WasteReason waste = WasteReason::kNone;
    SimTime now;
    SimTime a;  // queue wait / NIC wait
    SimTime b;  // service / wire time
  };

  // One lane per shard; written only by events executing on that shard.
  struct alignas(64) Lane {
    std::vector<BlockSpan> spans;
    std::vector<Tag> tags;
    std::uint64_t n = 0;
    FlatHashMap<OpenKey, SpanRef, OpenKeyHash> open;
    std::vector<Deferred> deferred;
  };

  [[nodiscard]] BlockSpan* live(SpanRef ref);
  [[nodiscard]] std::uint16_t shard_of(SpanRef ref) const {
    return static_cast<std::uint16_t>(ref >> kShardShift);
  }
  [[nodiscard]] Lane& my_lane();
  [[nodiscard]] FlatHashMap<OpenKey, SpanRef, OpenKeyHash>& open_table();
  SpanRef create(const BlockSpan& s);
  void defer(Deferred d);
  void apply(const Deferred& d);

  const Engine* eng_ = nullptr;
  bool sharded_ = false;
  bool sealed_ = false;
  std::vector<Lane> lanes_;           // sharded mode only
  std::vector<BlockSpan> spans_;      // flat mode; canonical merge post-seal
  FlatHashMap<OpenKey, SpanRef, OpenKeyHash> open_;  // flat mode only
};

}  // namespace lap
