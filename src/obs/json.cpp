#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "util/assert.hpp"

namespace lap {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  // Integers print exactly; everything else with enough digits to round-trip.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value belongs to the key just written
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) *os_ << ',';
    need_comma_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma();
  *os_ << '{';
  need_comma_.push_back(false);
}

void JsonWriter::end_object() {
  LAP_EXPECTS(!need_comma_.empty());
  need_comma_.pop_back();
  *os_ << '}';
}

void JsonWriter::begin_array() {
  comma();
  *os_ << '[';
  need_comma_.push_back(false);
}

void JsonWriter::end_array() {
  LAP_EXPECTS(!need_comma_.empty());
  need_comma_.pop_back();
  *os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  LAP_EXPECTS(!pending_key_);
  comma();
  *os_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  comma();
  *os_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(double v) {
  comma();
  *os_ << json_number(v);
}

void JsonWriter::value(std::int64_t v) {
  comma();
  *os_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  *os_ << v;
}

void JsonWriter::value(bool v) {
  comma();
  *os_ << (v ? "true" : "false");
}

void JsonWriter::value_null() {
  comma();
  *os_ << "null";
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing junk
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Our own documents only escape control characters; encode the
            // code point as UTF-8 without surrogate-pair handling.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    JsonValue v;
    char c = text_[pos_];
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return v;
    }
    if (c == 't' || c == 'f') {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = c == 't';
      if (!literal(c == 't' ? "true" : "false")) return std::nullopt;
      return v;
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      v.kind = JsonValue::Kind::kString;
      v.string = std::move(*s);
      return v;
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return v;
      for (;;) {
        auto elem = parse_value();
        if (!elem) return std::nullopt;
        v.array.push_back(std::move(*elem));
        if (eat(']')) return v;
        if (!eat(',')) return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) return v;
      for (;;) {
        skip_ws();
        auto k = parse_string();
        if (!k) return std::nullopt;
        if (!eat(':')) return std::nullopt;
        auto member = parse_value();
        if (!member) return std::nullopt;
        v.object.emplace_back(std::move(*k), std::move(*member));
        if (eat('}')) return v;
        if (!eat(',')) return std::nullopt;
      }
    }
    // Number.
    const std::size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    char* end = nullptr;
    const std::string num(text_.substr(start, pos_ - start));
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return std::nullopt;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace lap
