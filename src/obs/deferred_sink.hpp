// Deferred trace sink: canonical-order event streaming for sharded runs.
//
// JSON trace sinks (and the check oracles that sit behind the same
// interface) expect records in the one canonical simulation order.  A
// sharded run executes shards concurrently, so records would interleave
// arbitrarily.  This sink buffers every record into a per-shard lane —
// single writer per lane, no locks, the epoch barriers provide all the
// ordering — tagging each with the canonical position of the emitting
// event: (shard clock at emission, canonical event key, per-shard
// emission counter).  Events execute in strictly increasing (time, key)
// order and one event's records share one lane, so sorting the merged
// tags reproduces the sequential run's record stream *byte for byte* —
// the trace-hash differential wall holds it to that.
//
// Life cycle: direct pass-through → begin_buffering() (just before the
// parallel run) → seal() (after the thread pool joins) → direct again for
// post-run emissions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"
#include "util/units.hpp"

namespace lap {

class Engine;

class DeferredTraceSink final : public TraceSink {
 public:
  /// Wrap `inner`; tag positions come from `eng` (shard clock, current
  /// event key, executing shard).  Starts in pass-through mode.
  DeferredTraceSink(const Engine& eng, TraceSink& inner);

  /// Switch to buffering.  Call after the pre-run preamble (process/thread
  /// naming), immediately before run_parallel(); lanes are sized to the
  /// engine's configured shard count.
  void begin_buffering();

  /// Merge-sort every lane into canonical order, replay into the inner
  /// sink, and return to pass-through mode.  Call after the parallel run
  /// returns (the thread-pool join supplies the happens-before edge).
  void seal();

  void name_process(std::uint32_t pid, std::string_view name) override;
  void name_thread(std::uint32_t pid, std::uint32_t tid,
                   std::string_view name) override;
  void instant(const char* cat, const char* name, TraceTrack track, SimTime ts,
               TraceArgs args) override;
  void complete(const char* cat, const char* name, TraceTrack track,
                SimTime start, SimTime duration, TraceArgs args) override;
  void async_begin(const char* cat, const char* name, TraceTrack track,
                   std::uint64_t id, SimTime ts, TraceArgs args) override;
  void async_end(const char* cat, const char* name, TraceTrack track,
                 std::uint64_t id, SimTime ts, TraceArgs args) override;
  void counter(const char* name, SimTime ts, double value) override;
  void close() override;

  /// Records currently buffered across all lanes (test hook).
  [[nodiscard]] std::size_t buffered() const;

 private:
  enum class Op : std::uint8_t {
    kNameProcess,
    kNameThread,
    kInstant,
    kComplete,
    kAsyncBegin,
    kAsyncEnd,
    kCounter,
  };

  // Deep copy of one TraceArg: the initializer lists at call sites point
  // at stack temporaries that are gone by replay time.
  struct Arg {
    std::string key;
    TraceArg::Kind kind;
    std::int64_t i;
    double d;
    std::string s;
  };

  struct Rec {
    SimTime emitted;    // emitting shard's clock (== the event's timestamp)
    std::uint64_t key;  // canonical key of the emitting event
    std::uint64_t n;    // per-lane emission counter: intra-event order
    Op op;
    std::string cat;
    std::string name;
    TraceTrack track{};
    SimTime ts{};
    SimTime duration{};
    std::uint64_t id = 0;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    double value = 0.0;
    std::vector<Arg> args;
  };

  // One lane per shard.  During a parallel phase each lane is appended to
  // by exactly the worker executing that shard, and the epoch barriers /
  // final pool join order those writes before seal() reads them — the same
  // single-writer discipline as the engine's mailboxes, so no locks.
  struct alignas(64) Lane {
    std::vector<Rec> recs;
    std::uint64_t n = 0;
  };

  Rec& push(Op op);
  static void freeze_args(Rec& r, TraceArgs args);
  void replay(const Rec& r);

  const Engine& eng_;
  TraceSink& inner_;
  std::vector<Lane> lanes_;
  bool buffering_ = false;
};

}  // namespace lap
