// Chrome trace_event JSON sink (Perfetto / chrome://tracing loadable).
//
// One sink records a single simulation run.  Every instrumented component
// holds a `TraceSink*` that is nullptr unless the run was started with
// `--trace-out`: the hook at each call site is then a single pointer check,
// so an untraced run pays one predictable branch and nothing else.
//
// Track layout (Perfetto groups by pid, rows by tid):
//   pid 1..N           "node i"   — tid 1 fs ops, tid 2 network, tid 3 cache
//   pid kDiskPid       "disks"    — one tid per spindle
//   pid kFilePid       "files"    — one tid per file: the prefetch timeline
//   pid kMetricsPid    "metrics"  — sampled counters ("C" events)
//
// Events are rendered and streamed to the output as they happen, so a long
// run never buffers its whole trace in memory.  The stream is guarded by a
// mutex: a single simulation is single-threaded, but sinks stay safe if a
// caller shares one across threads.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_set>

#include "util/units.hpp"

namespace lap {

/// Where an event lands in the Perfetto UI.
struct TraceTrack {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

namespace tracks {

inline constexpr std::uint32_t kDiskPid = 100000;
inline constexpr std::uint32_t kFilePid = 200000;
inline constexpr std::uint32_t kMetricsPid = 300000;

[[nodiscard]] constexpr TraceTrack node_fs(NodeId n) {
  return TraceTrack{raw(n) + 1, 1};
}
[[nodiscard]] constexpr TraceTrack node_net(NodeId n) {
  return TraceTrack{raw(n) + 1, 2};
}
[[nodiscard]] constexpr TraceTrack node_cache(NodeId n) {
  return TraceTrack{raw(n) + 1, 3};
}
[[nodiscard]] constexpr TraceTrack disk(std::uint32_t index) {
  return TraceTrack{kDiskPid, index + 1};
}
[[nodiscard]] constexpr TraceTrack file(FileId f) {
  return TraceTrack{kFilePid, raw(f) + 1};
}
[[nodiscard]] constexpr TraceTrack metrics() {
  return TraceTrack{kMetricsPid, 1};
}

}  // namespace tracks

/// One `"args"` entry.  Integral/floating/string values only — exactly what
/// the instrumentation sites need.
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };

  constexpr TraceArg(const char* k, std::int64_t v)
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr TraceArg(const char* k, std::uint64_t v)
      : key(k), kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}
  constexpr TraceArg(const char* k, std::uint32_t v)
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr TraceArg(const char* k, int v) : key(k), kind(Kind::kInt), i(v) {}
  constexpr TraceArg(const char* k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}
  constexpr TraceArg(const char* k, const char* v)
      : key(k), kind(Kind::kString), s(v) {}

  const char* key;
  Kind kind;
  std::int64_t i = 0;
  double d = 0.0;
  const char* s = "";
};

using TraceArgs = std::initializer_list<TraceArg>;

/// The event methods are virtual so that non-JSON consumers — the invariant
/// oracle and fault injector under src/check — can sit behind the same
/// `TraceSink*` hooks the instrumented components already hold.  The
/// untraced path is still a single nullptr check; a traced run adds one
/// virtual dispatch per event, noise next to the JSON formatting it buys.
class TraceSink {
 public:
  /// Stream events into `os` (kept alive by the caller for the sink's
  /// lifetime).  The JSON document is completed by close()/destruction.
  explicit TraceSink(std::ostream& os);
  /// Same, owning the stream (e.g. a per-sweep-run file).
  explicit TraceSink(std::unique_ptr<std::ostream> os);
  virtual ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Name a Perfetto process/thread row (metadata events, deduplicated, so
  /// call sites may name lazily on every use).
  virtual void name_process(std::uint32_t pid, std::string_view name);
  virtual void name_thread(std::uint32_t pid, std::uint32_t tid,
                           std::string_view name);

  /// Zero-duration marker ("i" event, thread scope).
  virtual void instant(const char* cat, const char* name, TraceTrack track,
                       SimTime ts, TraceArgs args = {});

  /// Span with known start and duration ("X" complete event).  Emitted when
  /// the span *ends*, so a sink observes events in simulation order.
  virtual void complete(const char* cat, const char* name, TraceTrack track,
                        SimTime start, SimTime duration, TraceArgs args = {});

  /// Async span pair ("b"/"e" nestable events).  Begin/end are matched by
  /// (cat, id) rather than call nesting, so spans on the same track may
  /// overlap — exactly what concurrent prefetch lifecycles need.  `cat` is
  /// mandatory for these phases (the matching key includes it).
  virtual void async_begin(const char* cat, const char* name, TraceTrack track,
                           std::uint64_t id, SimTime ts, TraceArgs args = {});
  virtual void async_end(const char* cat, const char* name, TraceTrack track,
                         std::uint64_t id, SimTime ts, TraceArgs args = {});

  /// Sampled counter value ("C" event); Perfetto plots it as a time series.
  virtual void counter(const char* name, SimTime ts, double value);

  /// Finish the JSON document.  Further events are dropped.
  virtual void close();

  [[nodiscard]] std::uint64_t events_written() const { return events_; }

 protected:
  /// For subclasses that consume events instead of rendering JSON.
  TraceSink();

 private:
  void emit(const char* ph, const char* cat, const char* name, TraceTrack track,
            SimTime ts, const SimTime* duration, const std::uint64_t* id,
            TraceArgs args);
  void write_prefix_locked();

  std::unique_ptr<std::ostream> owned_;  // only for the owning constructor
  std::ostream* os_;                     // nullptr for consuming subclasses
  std::mutex mu_;
  bool open_ = true;
  bool any_ = false;
  std::uint64_t events_ = 0;
  std::unordered_set<std::uint64_t> named_;  // (pid<<32)|tid metadata dedup
};

/// Look up an integral event argument by key (shared by the check oracle
/// and tests that pick events apart).
[[nodiscard]] inline const TraceArg* find_arg(TraceArgs args, const char* key) {
  for (const TraceArg& a : args) {
    if (std::string_view(a.key) == key) return &a;
  }
  return nullptr;
}

}  // namespace lap
