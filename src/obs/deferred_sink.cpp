#include "obs/deferred_sink.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace lap {

DeferredTraceSink::DeferredTraceSink(const Engine& eng, TraceSink& inner)
    : eng_(eng), inner_(inner) {}

void DeferredTraceSink::begin_buffering() {
  LAP_EXPECTS(!buffering_);
  lanes_.assign(eng_.domain_map().shards, Lane{});
  buffering_ = true;
}

std::size_t DeferredTraceSink::buffered() const {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.recs.size();
  return total;
}

void DeferredTraceSink::seal() {
  LAP_EXPECTS(buffering_);
  buffering_ = false;
  std::vector<Rec> all;
  all.reserve(buffered());
  for (Lane& lane : lanes_) {
    for (Rec& r : lane.recs) all.push_back(std::move(r));
    lane.recs.clear();
    lane.n = 0;
  }
  // (emitted, key) is unique per event (the canonical order), and one
  // event's records live in one lane where `n` preserves their call order,
  // so this sort is a total order reproducing the sequential stream.
  std::sort(all.begin(), all.end(), [](const Rec& a, const Rec& b) {
    if (a.emitted != b.emitted) return a.emitted < b.emitted;
    if (a.key != b.key) return a.key < b.key;
    return a.n < b.n;
  });
  for (const Rec& r : all) replay(r);
  lanes_ = {};
}

DeferredTraceSink::Rec& DeferredTraceSink::push(Op op) {
  Lane& lane = lanes_[eng_.current_shard()];
  Rec& r = lane.recs.emplace_back();
  r.emitted = eng_.now();
  r.key = eng_.current_event_key();
  r.n = lane.n++;
  r.op = op;
  return r;
}

void DeferredTraceSink::freeze_args(Rec& r, TraceArgs args) {
  r.args.reserve(args.size());
  for (const TraceArg& a : args) {
    Arg& f = r.args.emplace_back();
    f.key = a.key;
    f.kind = a.kind;
    f.i = a.i;
    f.d = a.d;
    f.s = a.s;
  }
}

void DeferredTraceSink::name_process(std::uint32_t pid, std::string_view name) {
  if (!buffering_) {
    inner_.name_process(pid, name);
    return;
  }
  Rec& r = push(Op::kNameProcess);
  r.pid = pid;
  r.name = name;
}

void DeferredTraceSink::name_thread(std::uint32_t pid, std::uint32_t tid,
                                    std::string_view name) {
  if (!buffering_) {
    inner_.name_thread(pid, tid, name);
    return;
  }
  Rec& r = push(Op::kNameThread);
  r.pid = pid;
  r.tid = tid;
  r.name = name;
}

void DeferredTraceSink::instant(const char* cat, const char* name,
                                TraceTrack track, SimTime ts, TraceArgs args) {
  if (!buffering_) {
    inner_.instant(cat, name, track, ts, args);
    return;
  }
  Rec& r = push(Op::kInstant);
  r.cat = cat;
  r.name = name;
  r.track = track;
  r.ts = ts;
  freeze_args(r, args);
}

void DeferredTraceSink::complete(const char* cat, const char* name,
                                 TraceTrack track, SimTime start,
                                 SimTime duration, TraceArgs args) {
  if (!buffering_) {
    inner_.complete(cat, name, track, start, duration, args);
    return;
  }
  Rec& r = push(Op::kComplete);
  r.cat = cat;
  r.name = name;
  r.track = track;
  r.ts = start;
  r.duration = duration;
  freeze_args(r, args);
}

void DeferredTraceSink::async_begin(const char* cat, const char* name,
                                    TraceTrack track, std::uint64_t id,
                                    SimTime ts, TraceArgs args) {
  if (!buffering_) {
    inner_.async_begin(cat, name, track, id, ts, args);
    return;
  }
  Rec& r = push(Op::kAsyncBegin);
  r.cat = cat;
  r.name = name;
  r.track = track;
  r.id = id;
  r.ts = ts;
  freeze_args(r, args);
}

void DeferredTraceSink::async_end(const char* cat, const char* name,
                                  TraceTrack track, std::uint64_t id,
                                  SimTime ts, TraceArgs args) {
  if (!buffering_) {
    inner_.async_end(cat, name, track, id, ts, args);
    return;
  }
  Rec& r = push(Op::kAsyncEnd);
  r.cat = cat;
  r.name = name;
  r.track = track;
  r.id = id;
  r.ts = ts;
  freeze_args(r, args);
}

void DeferredTraceSink::counter(const char* name, SimTime ts, double value) {
  if (!buffering_) {
    inner_.counter(name, ts, value);
    return;
  }
  Rec& r = push(Op::kCounter);
  r.name = name;
  r.ts = ts;
  r.value = value;
}

void DeferredTraceSink::close() {
  LAP_EXPECTS(!buffering_);
  inner_.close();
}

void DeferredTraceSink::replay(const Rec& r) {
  // TraceArgs is an initializer_list, which cannot be built from a runtime
  // count — rebuild the braced list by arity (call sites top out well
  // below 8 args; asserted).
  const std::vector<Arg>& as = r.args;
  auto at = [&as](std::size_t i) {
    const Arg& a = as[i];
    switch (a.kind) {
      case TraceArg::Kind::kInt:
        return TraceArg{a.key.c_str(), a.i};
      case TraceArg::Kind::kDouble:
        return TraceArg{a.key.c_str(), a.d};
      case TraceArg::Kind::kString:
        break;
    }
    return TraceArg{a.key.c_str(), a.s.c_str()};
  };
  auto emit = [&](TraceArgs args) {
    switch (r.op) {
      case Op::kNameProcess:
        inner_.name_process(r.pid, r.name);
        return;
      case Op::kNameThread:
        inner_.name_thread(r.pid, r.tid, r.name);
        return;
      case Op::kInstant:
        inner_.instant(r.cat.c_str(), r.name.c_str(), r.track, r.ts, args);
        return;
      case Op::kComplete:
        inner_.complete(r.cat.c_str(), r.name.c_str(), r.track, r.ts,
                        r.duration, args);
        return;
      case Op::kAsyncBegin:
        inner_.async_begin(r.cat.c_str(), r.name.c_str(), r.track, r.id, r.ts,
                           args);
        return;
      case Op::kAsyncEnd:
        inner_.async_end(r.cat.c_str(), r.name.c_str(), r.track, r.id, r.ts,
                         args);
        return;
      case Op::kCounter:
        inner_.counter(r.name.c_str(), r.ts, r.value);
        return;
    }
  };
  switch (as.size()) {
    case 0:
      emit({});
      break;
    case 1:
      emit({at(0)});
      break;
    case 2:
      emit({at(0), at(1)});
      break;
    case 3:
      emit({at(0), at(1), at(2)});
      break;
    case 4:
      emit({at(0), at(1), at(2), at(3)});
      break;
    case 5:
      emit({at(0), at(1), at(2), at(3), at(4)});
      break;
    case 6:
      emit({at(0), at(1), at(2), at(3), at(4), at(5)});
      break;
    case 7:
      emit({at(0), at(1), at(2), at(3), at(4), at(5), at(6)});
      break;
    default:
      LAP_ASSERT(as.size() == 8);
      emit({at(0), at(1), at(2), at(3), at(4), at(5), at(6), at(7)});
      break;
  }
}

}  // namespace lap
