// Named counter/gauge/histogram registry.
//
// Any component can register an instrument by name (get-or-create: a second
// registration under the same name returns the same instrument, so
// independent call sites safely share one series).  The driver samples the
// whole registry periodically into the trace as Perfetto counter tracks and
// dumps final values into the metrics JSON at end of run.
//
// Instruments are owned by the registry and referenced by stable pointers;
// registration order is preserved so exports are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace lap {

class JsonWriter;
class TraceSink;
class Engine;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level.  Either set explicitly by the owning component or
/// given a probe callback evaluated at each sample (for components that
/// already track the level themselves, e.g. queue lengths).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void set_probe(std::function<double()> probe) { probe_ = std::move(probe); }
  [[nodiscard]] double value() const { return probe_ ? probe_() : value_; }

  /// Capture the probe's current value and detach the probe.  Called when
  /// the probed component is about to die (end of run) so later exports
  /// read the frozen level instead of a dangling callback.
  void freeze() {
    value_ = value();
    probe_ = nullptr;
  }

 private:
  double value_ = 0.0;
  std::function<double()> probe_;
};

/// Value distribution: streaming moments plus log-spaced buckets for
/// percentile queries (reuses the metrics layer's accumulators).
class HistogramStat {
 public:
  HistogramStat(double lo, double hi, std::size_t buckets)
      : hist_(lo, hi, buckets) {}

  void add(double x) {
    acc_.add(x);
    hist_.add(x);
  }
  [[nodiscard]] const Accumulator& accumulator() const { return acc_; }
  [[nodiscard]] const Histogram& histogram() const { return hist_; }

 private:
  Accumulator acc_;
  Histogram hist_;
};

class CounterRegistry {
 public:
  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Get-or-create.  A name registers exactly one kind of instrument;
  /// re-registering under a different kind is a precondition violation.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Gauge whose value is pulled from `probe` at each sample.
  Gauge& probe(std::string_view name, std::function<double()> probe);
  HistogramStat& histogram(std::string_view name, double lo = 1e-3,
                           double hi = 1e5, std::size_t buckets = 96);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Emit one "C" trace event per instrument at simulated time `now`
  /// (histograms sample their running mean).
  void sample_into(TraceSink& sink, SimTime now) const;

  /// Dump final values as one JSON object: counters/gauges as numbers,
  /// histograms as {count,mean,min,max,p50,p95,p99}.
  void write_json(JsonWriter& w) const;

  /// Freeze every probe gauge (see Gauge::freeze).  The driver calls this
  /// before the simulated components the probes reference are destroyed.
  void freeze_probes();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramStat> histogram;
  };

  Entry& get_or_create(std::string_view name, Kind kind, double lo, double hi,
                       std::size_t buckets);

  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
  std::unordered_map<std::string, Entry*> by_name_;
};

/// Sample `reg` into `sink` every `interval` of simulated time until
/// `*stop` is observed true (the driver's end-of-workload flag — the same
/// protocol the sync daemons use, so the event queue still drains).
void start_counter_sampling(Engine& eng, const CounterRegistry& reg,
                            TraceSink& sink, SimTime interval,
                            const bool* stop);

}  // namespace lap
