#include "obs/span.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace_event.hpp"
#include "sim/engine.hpp"

namespace lap {
namespace {

[[nodiscard]] double to_ms(SimTime t) {
  return static_cast<double>(t.nanos()) / 1e6;
}

constexpr PrefetchOrigin kOrigins[] = {
    PrefetchOrigin::kGraph, PrefetchOrigin::kFallback,
    PrefetchOrigin::kSequential, PrefetchOrigin::kHint,
    PrefetchOrigin::kWholeFile};

}  // namespace

const char* to_string(PrefetchOrigin o) {
  switch (o) {
    case PrefetchOrigin::kGraph: return "graph";
    case PrefetchOrigin::kFallback: return "fallback";
    case PrefetchOrigin::kSequential: return "sequential";
    case PrefetchOrigin::kHint: return "hint";
    case PrefetchOrigin::kWholeFile: return "whole_file";
  }
  return "?";
}

const char* to_string(SpanOutcome o) {
  switch (o) {
    case SpanOutcome::kOpen: return "open";
    case SpanOutcome::kUsed: return "used";
    case SpanOutcome::kWasted: return "wasted";
    case SpanOutcome::kElided: return "elided";
    case SpanOutcome::kDemand: return "demand";
  }
  return "?";
}

const char* to_string(WasteReason r) {
  switch (r) {
    case WasteReason::kNone: return "none";
    case WasteReason::kEvicted: return "evicted";
    case WasteReason::kInvalidated: return "invalidated";
    case WasteReason::kDeleted: return "deleted";
    case WasteReason::kSuperseded: return "superseded";
    case WasteReason::kForwardDropped: return "forward_dropped";
    case WasteReason::kShutdown: return "shutdown";
  }
  return "?";
}

const char* to_string(DemandClass c) {
  switch (c) {
    case DemandClass::kUnclassified: return "unclassified";
    case DemandClass::kHitLocal: return "hit_local";
    case DemandClass::kHitRemote: return "hit_remote";
    case DemandClass::kHitInflight: return "hit_inflight";
    case DemandClass::kMiss: return "miss";
  }
  return "?";
}

void SpanCollector::bind(const Engine* eng) {
  LAP_EXPECTS(spans_.empty() && lanes_.empty());
  eng_ = eng;
  sharded_ = eng != nullptr && eng->domain_map().shards > 1;
  if (sharded_) lanes_.assign(eng->domain_map().shards, Lane{});
}

BlockSpan* SpanCollector::live(SpanRef ref) {
  if (ref == 0) return nullptr;
  if (!sharded_) {
    return ref > spans_.size() ? nullptr : &spans_[ref - 1];
  }
  std::vector<BlockSpan>& spans = lanes_[shard_of(ref)].spans;
  const std::uint64_t local = ref & kLocalMask;
  return local > spans.size() ? nullptr : &spans[local - 1];
}

SpanCollector::Lane& SpanCollector::my_lane() {
  return lanes_[eng_->current_shard()];
}

FlatHashMap<SpanCollector::OpenKey, SpanRef, SpanCollector::OpenKeyHash>&
SpanCollector::open_table() {
  return sharded_ ? my_lane().open : open_;
}

SpanRef SpanCollector::create(const BlockSpan& s) {
  if (!sharded_) {
    spans_.push_back(s);
    return spans_.size();
  }
  Lane& lane = my_lane();
  lane.spans.push_back(s);
  // Tagged with the canonical position of the creating event so seal()
  // can restore sequential creation order: the event's timestamp is the
  // span's `predicted`, its key comes from the engine, and `n` orders
  // multiple creations within one event.
  lane.tags.push_back(Tag{s.predicted, eng_->current_event_key(), lane.n++});
  LAP_ASSERT(lane.spans.size() <= kLocalMask);
  return (static_cast<std::uint64_t>(eng_->current_shard()) << kShardShift) |
         lane.spans.size();
}

void SpanCollector::defer(Deferred d) { my_lane().deferred.push_back(d); }

void SpanCollector::apply(const Deferred& d) {
  BlockSpan* s = live(d.ref);
  if (s == nullptr) return;
  switch (d.op) {
    case DeferredOp::kSettleUsed:
      if (s->outcome != SpanOutcome::kOpen) return;
      s->outcome = SpanOutcome::kUsed;
      s->settled = d.now;
      return;
    case DeferredOp::kSettleWasted:
      if (s->outcome != SpanOutcome::kOpen) return;
      s->outcome = SpanOutcome::kWasted;
      s->waste = d.waste;
      s->settled = d.now;
      return;
    case DeferredOp::kDiskServiced:
      s->disk_wait += d.a;
      s->disk_service += d.b;
      return;
    case DeferredOp::kNetTransferred:
      s->net_wait += d.a;
      s->net_time += d.b;
      ++s->net_hops;
      return;
  }
}

void SpanCollector::seal() {
  if (!sharded_ || sealed_) return;
  // Deferred cross-shard ops first: settles are unique per ref and stage
  // attributions commute, so lane application order is immaterial.
  for (Lane& lane : lanes_) {
    for (const Deferred& d : lane.deferred) apply(d);
    lane.deferred.clear();
  }
  struct Item {
    Tag tag;
    std::uint32_t lane;
    std::uint64_t idx;
  };
  std::vector<Item> items;
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.spans.size();
  items.reserve(total);
  for (std::uint32_t li = 0; li < lanes_.size(); ++li) {
    for (std::uint64_t i = 0; i < lanes_[li].spans.size(); ++i) {
      items.push_back(Item{lanes_[li].tags[i], li, i});
    }
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.tag.at != b.tag.at) return a.tag.at < b.tag.at;
    if (a.tag.key != b.tag.key) return a.tag.key < b.tag.key;
    return a.tag.n < b.tag.n;
  });
  spans_.reserve(items.size());
  for (const Item& it : items) {
    spans_.push_back(lanes_[it.lane].spans[it.idx]);
  }
  lanes_ = {};
  sealed_ = true;
}

SpanRef SpanCollector::prefetch_predicted(std::uint32_t site, BlockKey key,
                                          PrefetchOrigin origin, bool fallback,
                                          std::uint32_t trigger_pid,
                                          std::int64_t trigger_block,
                                          NodeId target, SimTime now,
                                          std::uint32_t degree) {
  BlockSpan s;
  s.key = key;
  s.site = site;
  s.origin = origin;
  s.fallback = fallback;
  s.trigger_pid = trigger_pid;
  s.trigger_block = trigger_block;
  s.target = target;
  s.degree = degree;
  s.predicted = now;
  const SpanRef ref = create(s);
  open_table()[OpenKey{site, key}] = ref;
  return ref;
}

void SpanCollector::prefetch_elided(std::uint32_t site, BlockKey key,
                                    SimTime now) {
  auto& open = open_table();
  const auto it = open.find(OpenKey{site, key});
  if (it == open.end()) return;
  BlockSpan* s = live(it->second);
  open.erase(OpenKey{site, key});
  if (s == nullptr || s->outcome != SpanOutcome::kOpen) return;
  s->outcome = SpanOutcome::kElided;
  s->settled = now;
}

SpanRef SpanCollector::prefetch_arrived(std::uint32_t site, BlockKey key,
                                        bool via_peer, SimTime now) {
  auto& open = open_table();
  const auto it = open.find(OpenKey{site, key});
  if (it == open.end()) return 0;
  const SpanRef ref = it->second;
  open.erase(OpenKey{site, key});
  BlockSpan* s = live(ref);
  if (s == nullptr) return 0;
  s->arrived = now;
  s->via_peer = via_peer;
  return ref;
}

SpanRef SpanCollector::open_ref(std::uint32_t site, BlockKey key) const {
  const auto& open =
      sharded_ ? lanes_[eng_->current_shard()].open : open_;
  const auto it = open.find(OpenKey{site, key});
  return it == open.end() ? 0 : it->second;
}

void SpanCollector::settle_used(SpanRef ref, SimTime now) {
  if (ref == 0) return;
  if (sharded_ && shard_of(ref) != eng_->current_shard()) {
    Deferred d;
    d.ref = ref;
    d.op = DeferredOp::kSettleUsed;
    d.now = now;
    defer(d);
    return;
  }
  BlockSpan* s = live(ref);
  if (s == nullptr || s->outcome != SpanOutcome::kOpen) return;
  s->outcome = SpanOutcome::kUsed;
  s->settled = now;
}

void SpanCollector::settle_wasted(SpanRef ref, WasteReason reason,
                                  SimTime now) {
  if (ref == 0) return;
  if (sharded_ && shard_of(ref) != eng_->current_shard()) {
    Deferred d;
    d.ref = ref;
    d.op = DeferredOp::kSettleWasted;
    d.waste = reason;
    d.now = now;
    defer(d);
    return;
  }
  BlockSpan* s = live(ref);
  if (s == nullptr || s->outcome != SpanOutcome::kOpen) return;
  s->outcome = SpanOutcome::kWasted;
  s->waste = reason;
  s->settled = now;
}

SpanRef SpanCollector::demand_started(NodeId client, BlockKey key,
                                      SimTime now) {
  BlockSpan s;
  s.key = key;
  s.site = raw(client) + 1;
  s.demand = true;
  s.target = client;
  s.predicted = now;
  return create(s);
}

void SpanCollector::demand_classified(SpanRef ref, DemandClass c, SimTime now) {
  // Demand spans are created, classified, and closed on the client's own
  // domain (classification is applied when the data arrives back at the
  // client), so these two never cross shards.
  LAP_ASSERT(!sharded_ || ref == 0 ||
             shard_of(ref) == eng_->current_shard());
  BlockSpan* s = live(ref);
  if (s == nullptr || s->demand_class != DemandClass::kUnclassified) return;
  s->demand_class = c;
  s->arrived = now;
}

void SpanCollector::demand_done(SpanRef ref, SimTime now) {
  LAP_ASSERT(!sharded_ || ref == 0 ||
             shard_of(ref) == eng_->current_shard());
  BlockSpan* s = live(ref);
  if (s == nullptr || s->outcome != SpanOutcome::kOpen) return;
  if (s->arrived == SimTime::zero()) s->arrived = now;
  s->outcome = SpanOutcome::kDemand;
  s->settled = now;
}

void SpanCollector::disk_serviced(SpanRef ref, SimTime queue_wait,
                                  SimTime service) {
  if (ref == 0) return;
  if (sharded_ && shard_of(ref) != eng_->current_shard()) {
    Deferred d;
    d.ref = ref;
    d.op = DeferredOp::kDiskServiced;
    d.a = queue_wait;
    d.b = service;
    defer(d);
    return;
  }
  BlockSpan* s = live(ref);
  if (s == nullptr) return;
  s->disk_wait += queue_wait;
  s->disk_service += service;
}

void SpanCollector::net_transferred(SpanRef ref, SimTime wait,
                                    SimTime duration) {
  if (ref == 0) return;
  if (sharded_ && shard_of(ref) != eng_->current_shard()) {
    Deferred d;
    d.ref = ref;
    d.op = DeferredOp::kNetTransferred;
    d.a = wait;
    d.b = duration;
    defer(d);
    return;
  }
  BlockSpan* s = live(ref);
  if (s == nullptr) return;
  s->net_wait += wait;
  s->net_time += duration;
  ++s->net_hops;
}

SpanCollector::Totals SpanCollector::totals() const {
  LAP_EXPECTS(!sharded_ || sealed_);
  Totals t;
  for (const BlockSpan& s : spans_) {
    if (s.demand) {
      ++t.demand_blocks;
      continue;
    }
    ++t.predicted;
    switch (s.outcome) {
      case SpanOutcome::kElided:
        ++t.elided;
        break;
      case SpanOutcome::kUsed:
        ++t.arrived;
        ++t.used;
        break;
      case SpanOutcome::kWasted:
        ++t.arrived;
        ++t.wasted;
        break;
      case SpanOutcome::kOpen:
        if (s.arrived != SimTime::zero()) ++t.arrived;
        break;
      case SpanOutcome::kDemand:
        break;  // unreachable: demand spans are filtered above
    }
  }
  return t;
}

void SpanCollector::publish(CounterRegistry& reg) const {
  LAP_EXPECTS(!sharded_ || sealed_);
  // The instrument set and registration order are fixed regardless of what
  // this run observed, so metrics-JSON export order is deterministic.
  const Totals t = totals();
  reg.counter("span.prefetch.predicted").add(t.predicted);
  reg.counter("span.prefetch.elided").add(t.elided);
  reg.counter("span.prefetch.arrived").add(t.arrived);
  reg.counter("span.prefetch.used").add(t.used);
  reg.counter("span.prefetch.wasted").add(t.wasted);
  reg.counter("span.demand.blocks").add(t.demand_blocks);

  Counter* origin_counters[std::size(kOrigins)][3] = {};
  for (std::size_t i = 0; i < std::size(kOrigins); ++i) {
    const std::string base = std::string("span.origin.") +
                             to_string(kOrigins[i]);
    origin_counters[i][0] = &reg.counter(base + ".predicted");
    origin_counters[i][1] = &reg.counter(base + ".used");
    origin_counters[i][2] = &reg.counter(base + ".wasted");
  }
  Counter* waste_counters[] = {
      &reg.counter("span.wasted.evicted"),
      &reg.counter("span.wasted.invalidated"),
      &reg.counter("span.wasted.deleted"),
      &reg.counter("span.wasted.superseded"),
      &reg.counter("span.wasted.forward_dropped"),
      &reg.counter("span.wasted.shutdown"),
  };
  Counter* demand_counters[] = {
      &reg.counter("span.demand.hit_local"),
      &reg.counter("span.demand.hit_remote"),
      &reg.counter("span.demand.hit_inflight"),
      &reg.counter("span.demand.miss"),
  };

  HistogramStat& h_inflight = reg.histogram("span.prefetch.inflight_ms");
  HistogramStat& h_queue = reg.histogram("span.prefetch.queue_ms");
  HistogramStat& h_disk = reg.histogram("span.prefetch.disk_ms");
  HistogramStat& h_net_wait = reg.histogram("span.prefetch.net_wait_ms");
  HistogramStat& h_net = reg.histogram("span.prefetch.net_ms");
  HistogramStat& h_other = reg.histogram("span.prefetch.other_ms");
  HistogramStat& h_residence = reg.histogram("span.prefetch.residence_ms");
  HistogramStat& h_d_total = reg.histogram("span.demand.total_ms");
  HistogramStat& h_d_queue = reg.histogram("span.demand.queue_ms");
  HistogramStat& h_d_disk = reg.histogram("span.demand.disk_ms");
  HistogramStat& h_d_net = reg.histogram("span.demand.net_ms");

  for (const BlockSpan& s : spans_) {
    if (s.demand) {
      if (s.outcome == SpanOutcome::kOpen) continue;
      h_d_total.add(to_ms(s.settled - s.predicted));
      if (s.disk_service > SimTime::zero()) {
        h_d_queue.add(to_ms(s.disk_wait));
        h_d_disk.add(to_ms(s.disk_service));
      }
      if (s.net_hops > 0) h_d_net.add(to_ms(s.net_time));
      if (s.demand_class != DemandClass::kUnclassified) {
        demand_counters[static_cast<std::size_t>(s.demand_class) - 1]->add();
      }
      continue;
    }

    const auto oi = static_cast<std::size_t>(s.origin);
    origin_counters[oi][0]->add();
    if (s.outcome == SpanOutcome::kUsed) origin_counters[oi][1]->add();
    if (s.outcome == SpanOutcome::kWasted) {
      origin_counters[oi][2]->add();
      if (s.waste != WasteReason::kNone) {
        waste_counters[static_cast<std::size_t>(s.waste) - 1]->add();
      }
    }

    if (s.outcome != SpanOutcome::kUsed && s.outcome != SpanOutcome::kWasted) {
      continue;  // elided / still open: no flight to attribute
    }
    h_inflight.add(to_ms(s.in_flight()));
    if (s.disk_service > SimTime::zero()) {
      h_queue.add(to_ms(s.disk_wait));
      h_disk.add(to_ms(s.disk_service));
    }
    if (s.net_hops > 0) {
      h_net_wait.add(to_ms(s.net_wait));
      h_net.add(to_ms(s.net_time));
    }
    h_other.add(to_ms(s.other()));
    h_residence.add(to_ms(s.residence()));
  }
}

void SpanCollector::emit_async(TraceSink& sink) const {
  LAP_EXPECTS(!sharded_ || sealed_);
  sink.name_process(tracks::kFilePid, "files");
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const BlockSpan& s = spans_[i];
    const std::uint64_t id = i + 1;
    const TraceTrack track = tracks::file(s.key.file);
    const char* name = s.demand ? "demand" : "prefetch";
    SimTime end = s.settled;
    if (end == SimTime::zero()) end = s.arrived;
    if (end == SimTime::zero()) end = s.predicted;
    sink.async_begin("span", name, track, id, s.predicted,
                     {{"block", s.key.index},
                      {"site", s.site},
                      {"origin", s.demand ? "-" : to_string(s.origin)},
                      {"trigger_pid", s.trigger_pid},
                      {"trigger_block", s.trigger_block},
                      {"target", raw(s.target)},
                      {"degree", s.degree}});
    sink.async_end("span", name, track, id, end,
                   {{"outcome", to_string(s.outcome)},
                    {"waste", to_string(s.waste)},
                    {"class", to_string(s.demand_class)},
                    {"queue_ms", to_ms(s.disk_wait)},
                    {"disk_ms", to_ms(s.disk_service)},
                    {"net_wait_ms", to_ms(s.net_wait)},
                    {"net_ms", to_ms(s.net_time)},
                    {"hops", s.net_hops},
                    {"via_peer", s.via_peer ? 1 : 0}});
  }
}

}  // namespace lap
