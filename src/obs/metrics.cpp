// Metrics is header-only (hot-path counters want inlining); this TU anchors
// the module in the build.
#include "obs/metrics.hpp"
