// Central metrics sink for one simulation run.
//
// Client-stream metrics (read/write latencies, hit/miss classification)
// honour the warm-up boundary: nothing is recorded until `warmup_ops`
// trace records have been replayed (the paper warms its caches on the
// first hours of each trace and measures the rest).  Warm-up progress is
// counted in *records* — every open/read/write/close/delete the client
// replays — because per-process record counts are the one workload
// measure available from both in-memory and streamed trace sources, which
// keeps the threshold identical however the trace is loaded and lets a
// per-node slot derive its own share of the workload.
//
// Resource counters — disk traffic and prefetch effectiveness — are
// whole-run.  Disk accesses triggered by one node's warm-up window serve
// other nodes' steady state (prefetches front-load reads, the sync daemon
// defers writes), so under per-node warm-up boundaries there is no
// consistent way to carve a measurement window out of a shared resource;
// the paper's disk-access figures count the whole trace.  Likewise a
// mis-prediction ratio is a property of the algorithm, not of the
// measurement window.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/block.hpp"
#include "util/flat_hash.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace lap {

class Metrics {
 public:
  Metrics() : read_hist_(1e-3, 1e5, 96) {}

  /// Begin measuring after this many replayed records (0 = from t0).
  void set_warmup_ops(std::uint64_t n) { warmup_ops_ = n; }

  /// Called by the client layer as each trace record is replayed.
  void on_io_issued(SimTime now) {
    ++issued_ops_;
    if (!measuring_ && issued_ops_ > warmup_ops_) {
      measuring_ = true;
      measure_start_ = now;
    }
  }

  [[nodiscard]] bool measuring() const { return measuring_; }
  [[nodiscard]] SimTime measure_start() const { return measure_start_; }

  // --- client-observed latencies ---
  void on_read_done(SimTime latency) {
    if (!measuring_) return;
    read_ms_.add(latency.millis());
    read_hist_.add(latency.millis());
  }
  void on_write_done(SimTime latency) {
    if (measuring_) write_ms_.add(latency.millis());
  }

  // --- cache outcome classification (per demand block) ---
  void on_hit_local() { if (measuring_) ++hits_local_; }
  void on_hit_remote() { if (measuring_) ++hits_remote_; }
  void on_hit_inflight() { if (measuring_) ++hits_inflight_; }
  void on_miss() { if (measuring_) ++misses_; }

  // --- disk traffic (whole-run, see header comment) ---
  void on_disk_read(bool prefetch) {
    ++disk_reads_;
    if (prefetch) ++disk_prefetch_reads_;
  }
  void on_disk_write(BlockKey key) {
    ++disk_writes_;
    ++block_write_counts_[key];
  }

  // --- prefetch effectiveness (whole-run) ---
  void on_prefetch_arrived() { ++prefetch_arrived_; }
  void on_prefetch_first_use() { ++prefetch_used_; }
  void on_prefetch_wasted() { ++prefetch_wasted_; }

  // --- derived results ---
  [[nodiscard]] double avg_read_ms() const { return read_ms_.mean(); }
  [[nodiscard]] double avg_write_ms() const { return write_ms_.mean(); }
  [[nodiscard]] std::uint64_t reads() const { return read_ms_.count(); }
  [[nodiscard]] std::uint64_t writes() const { return write_ms_.count(); }
  [[nodiscard]] std::uint64_t disk_reads() const { return disk_reads_; }
  [[nodiscard]] std::uint64_t disk_writes() const { return disk_writes_; }
  [[nodiscard]] std::uint64_t disk_accesses() const {
    return disk_reads_ + disk_writes_;
  }
  [[nodiscard]] std::uint64_t disk_prefetch_reads() const {
    return disk_prefetch_reads_;
  }
  [[nodiscard]] std::uint64_t hits_local() const { return hits_local_; }
  [[nodiscard]] std::uint64_t hits_remote() const { return hits_remote_; }
  [[nodiscard]] std::uint64_t hits_inflight() const { return hits_inflight_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// Fraction of demand blocks found in (or on their way into) the cache.
  [[nodiscard]] double hit_ratio() const {
    const auto total = hits_local_ + hits_remote_ + hits_inflight_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(total - misses_) /
                            static_cast<double>(total);
  }

  /// Table 2: average number of times a written block went to disk.
  [[nodiscard]] double writes_per_block() const {
    if (block_write_counts_.empty()) return 0.0;
    return static_cast<double>(disk_writes_) /
           static_cast<double>(block_write_counts_.size());
  }
  [[nodiscard]] std::size_t distinct_blocks_written() const {
    return block_write_counts_.size();
  }

  [[nodiscard]] std::uint64_t prefetch_arrived() const { return prefetch_arrived_; }
  [[nodiscard]] std::uint64_t prefetch_used() const { return prefetch_used_; }
  [[nodiscard]] std::uint64_t prefetch_wasted() const { return prefetch_wasted_; }

  /// Prefetched blocks never used before leaving the cache (plus those
  /// still unused at end of run, added by FileSystem::finalize).
  [[nodiscard]] double misprediction_ratio() const {
    if (prefetch_arrived_ == 0) return 0.0;
    return static_cast<double>(prefetch_wasted_) /
           static_cast<double>(prefetch_arrived_);
  }

  [[nodiscard]] const Accumulator& read_accumulator() const { return read_ms_; }
  [[nodiscard]] const Accumulator& write_accumulator() const {
    return write_ms_;
  }
  [[nodiscard]] const Histogram& read_histogram() const { return read_hist_; }

  /// Append every distinct written block's key (unordered; callers that
  /// need determinism sort — see MetricsSet::distinct_blocks_written).
  void append_written_blocks(std::vector<BlockKey>& out) const {
    // lap-lint: allow-next-line(unordered-iteration) — the caller sorts the union.
    for (const auto& [key, count] : block_write_counts_) out.push_back(key);
  }

 private:
  std::uint64_t warmup_ops_ = 0;
  std::uint64_t issued_ops_ = 0;
  bool measuring_ = false;
  SimTime measure_start_;

  Accumulator read_ms_;
  Accumulator write_ms_;
  Histogram read_hist_;

  std::uint64_t hits_local_ = 0;
  std::uint64_t hits_remote_ = 0;
  std::uint64_t hits_inflight_ = 0;
  std::uint64_t misses_ = 0;

  std::uint64_t disk_reads_ = 0;
  std::uint64_t disk_writes_ = 0;
  std::uint64_t disk_prefetch_reads_ = 0;
  // Only bumped and counted (never iterated): flat table, order-free.
  FlatHashMap<BlockKey, std::uint32_t, BlockKeyHash> block_write_counts_;

  std::uint64_t prefetch_arrived_ = 0;
  std::uint64_t prefetch_used_ = 0;
  std::uint64_t prefetch_wasted_ = 0;
};

/// The run's metrics, organised for the per-node domain map (DESIGN.md
/// §14).  PAFS models one global cache, so it keeps the historical single
/// slot (kShared: every node resolves to it, and the whole PAFS model is
/// grouped on one shard).  xFS gets one slot per node (kPerNode): each
/// node's client/cache events run in that node's domain and write only
/// that node's slot, so concurrent shards never share a counter.  All
/// whole-run accessors merge the slots in fixed node order — the result
/// is identical at every shard count.
class MetricsSet {
 public:
  enum class Mode : std::uint8_t { kShared, kPerNode };

  MetricsSet(Mode mode, std::uint32_t nodes)
      : mode_(mode), slots_(mode == Mode::kShared ? 1 : nodes) {}
  MetricsSet(const MetricsSet&) = delete;
  MetricsSet& operator=(const MetricsSet&) = delete;

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  /// The slot node `n`'s events write (the one shared slot under kShared).
  [[nodiscard]] Metrics& node(std::uint32_t n) {
    return slots_[mode_ == Mode::kShared ? 0 : n];
  }
  [[nodiscard]] const Metrics& node(std::uint32_t n) const {
    return slots_[mode_ == Mode::kShared ? 0 : n];
  }

  /// Install warm-up thresholds: each slot starts measuring after
  /// `fraction` of *its* workload's records (the whole trace for the
  /// shared slot, the node's own records per node otherwise).
  /// `records_per_node` is indexed by node; missing/extra entries count 0.
  void set_warmup(double fraction,
                  const std::vector<std::uint64_t>& records_per_node) {
    if (mode_ == Mode::kShared) {
      std::uint64_t total = 0;
      for (const std::uint64_t r : records_per_node) total += r;
      slots_[0].set_warmup_ops(static_cast<std::uint64_t>(
          static_cast<double>(total) * fraction));
      return;
    }
    for (std::size_t n = 0; n < slots_.size(); ++n) {
      const std::uint64_t r =
          n < records_per_node.size() ? records_per_node[n] : 0;
      slots_[n].set_warmup_ops(static_cast<std::uint64_t>(
          static_cast<double>(r) * fraction));
    }
  }

  // --- whole-run merged accessors (fixed node order: deterministic) ---

  [[nodiscard]] Accumulator merged_reads() const {
    Accumulator a;
    for (const Slot& s : slots_) a.merge(s.read_accumulator());
    return a;
  }
  [[nodiscard]] Accumulator merged_writes() const {
    Accumulator a;
    for (const Slot& s : slots_) a.merge(s.write_accumulator());
    return a;
  }
  [[nodiscard]] Histogram merged_read_histogram() const {
    Histogram h = slots_[0].read_histogram();
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      h.merge(slots_[i].read_histogram());
    }
    return h;
  }

  [[nodiscard]] double avg_read_ms() const { return merged_reads().mean(); }
  [[nodiscard]] double avg_write_ms() const { return merged_writes().mean(); }
  [[nodiscard]] std::uint64_t reads() const {
    return sum(&Metrics::reads);
  }
  [[nodiscard]] std::uint64_t writes() const {
    return sum(&Metrics::writes);
  }
  [[nodiscard]] std::uint64_t disk_reads() const {
    return sum(&Metrics::disk_reads);
  }
  [[nodiscard]] std::uint64_t disk_writes() const {
    return sum(&Metrics::disk_writes);
  }
  [[nodiscard]] std::uint64_t disk_accesses() const {
    return disk_reads() + disk_writes();
  }
  [[nodiscard]] std::uint64_t disk_prefetch_reads() const {
    return sum(&Metrics::disk_prefetch_reads);
  }
  [[nodiscard]] std::uint64_t hits_local() const {
    return sum(&Metrics::hits_local);
  }
  [[nodiscard]] std::uint64_t hits_remote() const {
    return sum(&Metrics::hits_remote);
  }
  [[nodiscard]] std::uint64_t hits_inflight() const {
    return sum(&Metrics::hits_inflight);
  }
  [[nodiscard]] std::uint64_t misses() const { return sum(&Metrics::misses); }
  [[nodiscard]] std::uint64_t prefetch_arrived() const {
    return sum(&Metrics::prefetch_arrived);
  }
  [[nodiscard]] std::uint64_t prefetch_used() const {
    return sum(&Metrics::prefetch_used);
  }
  [[nodiscard]] std::uint64_t prefetch_wasted() const {
    return sum(&Metrics::prefetch_wasted);
  }

  [[nodiscard]] double hit_ratio() const {
    const std::uint64_t m = misses();
    const std::uint64_t total =
        hits_local() + hits_remote() + hits_inflight() + m;
    return total == 0 ? 0.0
                      : static_cast<double>(total - m) /
                            static_cast<double>(total);
  }

  [[nodiscard]] double misprediction_ratio() const {
    const std::uint64_t arrived = prefetch_arrived();
    if (arrived == 0) return 0.0;
    return static_cast<double>(prefetch_wasted()) /
           static_cast<double>(arrived);
  }

  /// Distinct blocks written across all slots.  The same block written
  /// from two nodes must count once, so this takes the sorted-unique
  /// union of the slots' key sets (sorting makes the result independent
  /// of hash-table iteration order).
  [[nodiscard]] std::size_t distinct_blocks_written() const {
    if (slots_.size() == 1) return slots_[0].distinct_blocks_written();
    std::vector<BlockKey> keys;
    for (const Slot& s : slots_) s.append_written_blocks(keys);
    std::sort(keys.begin(), keys.end(), [](BlockKey a, BlockKey b) {
      if (a.file != b.file) return raw(a.file) < raw(b.file);
      return a.index < b.index;
    });
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys.size();
  }

  [[nodiscard]] double writes_per_block() const {
    const std::size_t blocks = distinct_blocks_written();
    if (blocks == 0) return 0.0;
    return static_cast<double>(disk_writes()) /
           static_cast<double>(blocks);
  }

 private:
  // Line-padded: adjacent nodes' slots may be bumped by different shards.
  struct alignas(64) Slot : Metrics {};

  template <typename Fn>
  [[nodiscard]] std::uint64_t sum(Fn getter) const {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += (s.*getter)();
    return total;
  }

  Mode mode_;
  std::vector<Slot> slots_;
};

}  // namespace lap
