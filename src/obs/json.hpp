// Minimal JSON support for the observability layer: a streaming writer used
// by the trace/metrics exporters and a small recursive-descent parser used
// to validate their output (tests, golden-file checks).  Deliberately tiny —
// the simulator emits and re-reads only its own documents.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lap {

/// Escape `s` per RFC 8259 (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Render a double the way JSON expects (finite; "0" for NaN/Inf so the
/// document stays parseable even if a metric degenerates).
[[nodiscard]] std::string json_number(double v);

/// Streaming writer with explicit structure calls.  Commas are inserted
/// automatically; the caller is responsible for balanced begin/end pairs.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Start a named member inside an object; follow with a value call or a
  /// begin_object/begin_array.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(bool v);
  void value_null();

  // Convenience: key + scalar value.
  template <typename T>
  void member(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  void comma();

  std::ostream* os_;
  // One flag per open container: has a member/element been written yet?
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

/// Parsed JSON document (used by tests and the golden-file checks).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parse a complete document; nullopt on any syntax error or trailing junk.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace lap
