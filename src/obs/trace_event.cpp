#include "obs/trace_event.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "obs/json.hpp"

namespace lap {
namespace {

// Timestamps are microseconds in the trace_event format; SimTime is ns, so
// three decimals preserve full resolution.
void append_ts(std::string& out, const char* field, SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, ",\"%s\":%.3f", field,
                static_cast<double>(t.nanos()) / 1e3);
  out += buf;
}

void append_args(std::string& out, TraceArgs args) {
  out += ",\"args\":{";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(a.key);
    out += "\":";
    switch (a.kind) {
      case TraceArg::Kind::kInt:
        out += std::to_string(a.i);
        break;
      case TraceArg::Kind::kDouble:
        out += json_number(a.d);
        break;
      case TraceArg::Kind::kString:
        out += '"';
        out += json_escape(a.s);
        out += '"';
        break;
    }
  }
  out += '}';
}

}  // namespace

TraceSink::TraceSink(std::ostream& os) : os_(&os) {
  *os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
}

TraceSink::TraceSink(std::unique_ptr<std::ostream> os)
    : owned_(std::move(os)), os_(owned_.get()) {
  *os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
}

TraceSink::TraceSink() : os_(nullptr) {}

TraceSink::~TraceSink() { TraceSink::close(); }

void TraceSink::close() {
  std::lock_guard lock(mu_);
  if (!open_) return;
  open_ = false;
  if (os_ == nullptr) return;
  *os_ << "\n]}\n";
  os_->flush();
}

void TraceSink::write_prefix_locked() {
  if (any_) *os_ << ",\n";
  any_ = true;
  ++events_;
}

void TraceSink::emit(const char* ph, const char* cat, const char* name,
                     TraceTrack track, SimTime ts, const SimTime* duration,
                     const std::uint64_t* id, TraceArgs args) {
  std::string line;
  line.reserve(160);
  line += "{\"ph\":\"";
  line += ph;
  line += "\",\"name\":\"";
  line += json_escape(name);
  line += '"';
  if (cat != nullptr) {
    line += ",\"cat\":\"";
    line += cat;
    line += '"';
  }
  append_ts(line, "ts", ts);
  if (duration != nullptr) append_ts(line, "dur", *duration);
  line += ",\"pid\":" + std::to_string(track.pid);
  line += ",\"tid\":" + std::to_string(track.tid);
  if (id != nullptr) line += ",\"id\":\"" + std::to_string(*id) + '"';
  if (*ph == 'i') line += ",\"s\":\"t\"";
  if (args.size() > 0) append_args(line, args);
  line += '}';

  std::lock_guard lock(mu_);
  if (!open_ || os_ == nullptr) return;
  write_prefix_locked();
  *os_ << line;
}

void TraceSink::name_process(std::uint32_t pid, std::string_view name) {
  const std::uint64_t id = static_cast<std::uint64_t>(pid) << 32 | 0xffffffffu;
  std::lock_guard lock(mu_);
  if (!open_ || os_ == nullptr || !named_.insert(id).second) return;
  write_prefix_locked();
  *os_ << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
}

void TraceSink::name_thread(std::uint32_t pid, std::uint32_t tid,
                            std::string_view name) {
  const std::uint64_t id = static_cast<std::uint64_t>(pid) << 32 | tid;
  std::lock_guard lock(mu_);
  if (!open_ || os_ == nullptr || !named_.insert(id).second) return;
  write_prefix_locked();
  *os_ << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << json_escape(name)
       << "\"}}";
}

void TraceSink::instant(const char* cat, const char* name, TraceTrack track,
                        SimTime ts, TraceArgs args) {
  emit("i", cat, name, track, ts, nullptr, nullptr, args);
}

void TraceSink::complete(const char* cat, const char* name, TraceTrack track,
                         SimTime start, SimTime duration, TraceArgs args) {
  emit("X", cat, name, track, start, &duration, nullptr, args);
}

void TraceSink::async_begin(const char* cat, const char* name, TraceTrack track,
                            std::uint64_t id, SimTime ts, TraceArgs args) {
  emit("b", cat, name, track, ts, nullptr, &id, args);
}

void TraceSink::async_end(const char* cat, const char* name, TraceTrack track,
                          std::uint64_t id, SimTime ts, TraceArgs args) {
  emit("e", cat, name, track, ts, nullptr, &id, args);
}

void TraceSink::counter(const char* name, SimTime ts, double value) {
  std::string line;
  line.reserve(120);
  line += "{\"ph\":\"C\",\"name\":\"";
  line += json_escape(name);
  line += '"';
  append_ts(line, "ts", ts);
  line += ",\"pid\":" + std::to_string(tracks::kMetricsPid);
  line += ",\"args\":{\"value\":" + json_number(value) + "}}";

  std::lock_guard lock(mu_);
  if (!open_ || os_ == nullptr) return;
  write_prefix_locked();
  *os_ << line;
}

}  // namespace lap
