// InvariantOracle — a TraceSink that checks the paper's structural
// invariants on the live event stream instead of rendering JSON.
//
// Checked while the simulation runs:
//   - Linearity (Section 3): for an aggressive algorithm with a finite
//     outstanding limit, at most `max_outstanding` prefetched blocks are in
//     flight per (site, file).  Site 0 is PAFS's global per-file-server
//     manager (the exact limit); xFS sites are per node (node id + 1), the
//     paper's "per node and file" scope.
//   - Restart-after-mispredict (Section 3): every prefetch.restart must be
//     caused by the demand request it coincides with, and restart from the
//     faulting block ("restarts once again from the miss-predicted block").
//   - Cold-graph OBA fallback (Section 2.2): an IS_PPM issue that is NOT
//     flagged as fallback needs a pattern-graph edge, which takes at least
//     two prior requests on that (site, file).
//   - Cooperative-cache residency: per cache row, inserts/evicts/erases/
//     marks must act on consistent resident state, and no block is dirty in
//     two caches at once (xFS single-writer).
// At finish():
//   - every issued prefetch completed or was elided (outstanding == 0), and
//   - prefetch arrivals reconcile: arrived == used + wasted.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/algorithm_registry.hpp"
#include "obs/trace_event.hpp"

namespace lap {

class InvariantOracle final : public TraceSink {
 public:
  struct Options {
    AlgorithmSpec spec;
    std::size_t max_violations = 16;  // stop accumulating after this many
  };

  explicit InvariantOracle(Options opts) : opts_(opts) {}

  void instant(const char* cat, const char* name, TraceTrack track, SimTime ts,
               TraceArgs args) override;
  void complete(const char* cat, const char* name, TraceTrack track,
                SimTime start, SimTime duration, TraceArgs args) override;

  /// End-of-run checks; call after Engine::run() has drained.
  void finish();

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }

  // Event tallies the differential driver cross-checks against RunResult.
  [[nodiscard]] std::uint64_t read_blocks() const { return read_blocks_; }
  [[nodiscard]] std::uint64_t arrived() const { return arrived_; }
  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t wasted() const { return wasted_; }

 private:
  struct SiteFile {
    std::int64_t outstanding = 0;
    std::uint64_t requests = 0;
    bool has_request = false;
    std::int64_t last_request_first = -1;
    SimTime last_request_ts;
  };
  struct Resident {
    bool dirty = false;
  };

  void violate(SimTime ts, std::string msg);
  SiteFile& site_file(std::int64_t site, std::uint32_t file);
  void on_cache_event(const char* name, TraceTrack track, SimTime ts,
                      TraceArgs args);
  void set_dirty(std::uint64_t key, std::uint32_t row, bool dirty, SimTime ts);
  // A write dirties its copy and erases every replica within one simulated
  // instant, so "dirty in two caches" is only a violation if it outlives the
  // instant it arose in.
  void advance_time(SimTime ts);

  Options opts_;
  std::vector<std::string> violations_;
  std::unordered_map<std::uint64_t, SiteFile> sf_;
  // Residency per cache row: row -> (file,block) -> state.
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::uint64_t, Resident>>
      resident_;
  std::unordered_map<std::uint64_t, std::uint32_t> dirty_rows_;  // key -> count
  std::unordered_map<std::uint64_t, SimTime> double_dirty_;      // key -> since
  std::uint64_t read_blocks_ = 0;
  std::uint64_t arrived_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t wasted_ = 0;
};

}  // namespace lap
