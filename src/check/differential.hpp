// Differential driver: replays one Scenario several ways and diffs the
// outcomes.
//
// Runs are bit-deterministic, so a traced run must produce a RunResult
// identical (field by field, doubles compared exactly; wall_seconds
// excluded) to its untraced twin — observation must not perturb the
// simulation.  On top of that, the oracle's event tallies must reconcile
// with the metrics the run reports, and PAFS and xFS must agree on the
// workload-shape facts they share (operation counts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "driver/simulation.hpp"

namespace lap {

struct CheckReport {
  std::uint64_t seed = 0;
  std::vector<std::string> violations;  // oracle invariant failures
  std::vector<std::string> diffs;       // differential / reconciliation failures

  [[nodiscard]] bool ok() const { return violations.empty() && diffs.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Field-by-field RunResult comparison; each mismatch becomes one message
/// prefixed with `label`.  wall_seconds is the only field ignored.
[[nodiscard]] std::vector<std::string> diff_run_results(const RunResult& a,
                                                        const RunResult& b,
                                                        const std::string& label);

/// Run `s` under PAFS and xFS, each untraced and oracle-traced, and collect
/// every invariant violation and differential mismatch.
[[nodiscard]] CheckReport run_checked(const Scenario& s);

/// Trace-serialization differential: round-trip `s.trace` through the text
/// and LAPT binary formats (load(save(t)) must equal t in both and across
/// formats), then replay the binary-loaded trace and the chunked streaming
/// reader under both file systems — each must reproduce the unserialized
/// run bit for bit.  The on-disk boundary gets the same adversarial
/// treatment as the containers did.
[[nodiscard]] CheckReport check_serialization(const Scenario& s);

}  // namespace lap
