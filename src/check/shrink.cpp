#include "check/shrink.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace lap {
namespace {

class Budget {
 public:
  Budget(const ScenarioPredicate& pred, std::size_t max_evals)
      : pred_(pred), left_(max_evals) {}

  [[nodiscard]] bool exhausted() const { return left_ == 0; }

  /// Evaluates the predicate, or reports "fixed" once the budget is spent
  /// (a conservative answer: the candidate removal is rejected).
  [[nodiscard]] bool still_fails(const Scenario& s) {
    if (left_ == 0) return false;
    --left_;
    return pred_(s);
  }

 private:
  const ScenarioPredicate& pred_;
  std::size_t left_;
};

bool drop_processes(Scenario& s, Budget& budget) {
  bool changed = false;
  for (std::size_t i = s.trace.processes.size(); i-- > 0;) {
    if (s.trace.processes.size() == 1) break;  // keep the trace replayable
    Scenario candidate = s;
    candidate.trace.processes.erase(candidate.trace.processes.begin() +
                                    static_cast<std::ptrdiff_t>(i));
    if (budget.still_fails(candidate)) {
      s = std::move(candidate);
      changed = true;
    }
  }
  return changed;
}

bool drop_record_chunks(Scenario& s, Budget& budget) {
  bool changed = false;
  for (std::size_t p = 0; p < s.trace.processes.size(); ++p) {
    // `s` is reassigned whenever a candidate sticks, so always re-index it
    // rather than holding references across iterations.
    const std::size_t initial = s.trace.processes[p].records.size();
    for (std::size_t chunk = std::max<std::size_t>(1, initial / 2); chunk >= 1;
         chunk /= 2) {
      for (std::size_t i = 0;
           i + chunk <= s.trace.processes[p].records.size();) {
        Scenario candidate = s;
        auto& crecs = candidate.trace.processes[p].records;
        crecs.erase(crecs.begin() + static_cast<std::ptrdiff_t>(i),
                    crecs.begin() + static_cast<std::ptrdiff_t>(i + chunk));
        if (budget.still_fails(candidate)) {
          s = std::move(candidate);
          changed = true;  // same index now holds the next chunk
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return changed;
}

bool drop_unused_files(Scenario& s, Budget& budget) {
  std::unordered_set<std::uint32_t> referenced;
  for (const ProcessTrace& p : s.trace.processes) {
    for (const TraceRecord& r : p.records) referenced.insert(raw(r.file));
  }
  bool changed = false;
  for (std::size_t i = s.trace.files.size(); i-- > 0;) {
    if (referenced.contains(raw(s.trace.files[i].id))) continue;
    Scenario candidate = s;
    candidate.trace.files.erase(candidate.trace.files.begin() +
                                static_cast<std::ptrdiff_t>(i));
    if (budget.still_fails(candidate)) {
      s = std::move(candidate);
      changed = true;
    }
  }
  return changed;
}

}  // namespace

Scenario shrink_scenario(Scenario s, const ScenarioPredicate& still_fails,
                         std::size_t max_evaluations) {
  Budget budget(still_fails, max_evaluations);
  bool changed = true;
  while (changed && !budget.exhausted()) {
    changed = false;
    changed |= drop_processes(s, budget);
    changed |= drop_record_chunks(s, budget);
    changed |= drop_unused_files(s, budget);
  }
  return s;
}

}  // namespace lap
