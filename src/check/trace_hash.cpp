#include "check/trace_hash.hpp"

#include <bit>
#include <cstdint>
#include <string_view>

namespace lap {
namespace {
constexpr std::uint64_t kPrime = 1099511628211ULL;
}

void TraceHashSink::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xffu;
    hash_ *= kPrime;
  }
}

void TraceHashSink::mix_str(std::string_view s) {
  for (const char c : s) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= kPrime;
  }
  hash_ ^= 0xffu;  // terminator: "ab"+"c" must differ from "a"+"bc"
  hash_ *= kPrime;
}

void TraceHashSink::mix_args(TraceArgs args) {
  mix(args.size());
  for (const TraceArg& a : args) {
    mix_str(a.key);
    mix(static_cast<std::uint64_t>(a.kind));
    switch (a.kind) {
      case TraceArg::Kind::kInt:
        mix(static_cast<std::uint64_t>(a.i));
        break;
      case TraceArg::Kind::kDouble:
        mix(std::bit_cast<std::uint64_t>(a.d));
        break;
      case TraceArg::Kind::kString:
        mix_str(a.s);
        break;
    }
  }
}

void TraceHashSink::mix_event(char phase, const char* cat, const char* name,
                              TraceTrack track, SimTime ts, TraceArgs args) {
  ++count_;
  mix(static_cast<std::uint64_t>(phase));
  mix_str(cat);
  mix_str(name);
  mix(track.pid);
  mix(track.tid);
  mix(static_cast<std::uint64_t>(ts.nanos()));
  mix_args(args);
}

void TraceHashSink::name_process(std::uint32_t pid, std::string_view name) {
  ++count_;
  mix(static_cast<std::uint64_t>('P'));
  mix(pid);
  mix_str(name);
}

void TraceHashSink::name_thread(std::uint32_t pid, std::uint32_t tid,
                                std::string_view name) {
  ++count_;
  mix(static_cast<std::uint64_t>('T'));
  mix(pid);
  mix(tid);
  mix_str(name);
}

void TraceHashSink::instant(const char* cat, const char* name,
                            TraceTrack track, SimTime ts, TraceArgs args) {
  mix_event('i', cat, name, track, ts, args);
}

void TraceHashSink::complete(const char* cat, const char* name,
                             TraceTrack track, SimTime start, SimTime duration,
                             TraceArgs args) {
  mix_event('X', cat, name, track, start, args);
  mix(static_cast<std::uint64_t>(duration.nanos()));
}

void TraceHashSink::async_begin(const char* cat, const char* name,
                                TraceTrack track, std::uint64_t id, SimTime ts,
                                TraceArgs args) {
  mix_event('b', cat, name, track, ts, args);
  mix(id);
}

void TraceHashSink::async_end(const char* cat, const char* name,
                              TraceTrack track, std::uint64_t id, SimTime ts,
                              TraceArgs args) {
  mix_event('e', cat, name, track, ts, args);
  mix(id);
}

void TraceHashSink::counter(const char* name, SimTime ts, double value) {
  ++count_;
  mix(static_cast<std::uint64_t>('C'));
  mix_str(name);
  mix(static_cast<std::uint64_t>(ts.nanos()));
  mix(std::bit_cast<std::uint64_t>(value));
}

}  // namespace lap
