// Randomized simulation scenarios for the fuzz / differential harness.
//
// A Scenario bundles everything one checked run needs — a synthetic trace
// plus the machine/cache/algorithm shape to replay it under — and is fully
// determined by its generator seed, so any failure reproduces from a single
// integer.  Failing scenarios are saved as repro files (a "# lap-scenario
// v1" header followed by the embedded "# lap-trace v1" body) replayable via
// `lap_check --repro` or `quickstart --repro`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "driver/simulation.hpp"
#include "trace/trace.hpp"

namespace lap {

struct Scenario {
  std::uint64_t seed = 0;  // generator provenance, echoed into repro files
  std::string algorithm = "Ln_Agr_IS_PPM:1";
  std::uint32_t nodes = 2;
  std::uint32_t cache_blocks_per_node = 16;
  std::int64_t sync_ns = 50'000'000;  // write-back period
  Trace trace;

  [[nodiscard]] bool has_deletes() const;
  [[nodiscard]] std::uint64_t total_records() const {
    return trace.total_records();
  }

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Deterministically derive a scenario from `seed`.  The population is
/// deliberately wider than the CHARISMA/Sprite shapes: 1-6 nodes, tiny to
/// mid caches, mixed access patterns (sequential, strided, re-read loops,
/// bait-and-switch mispredict streams, random), writes past EOF, opens,
/// closes, and occasional deletes with post-delete traffic.
[[nodiscard]] Scenario generate_scenario(std::uint64_t seed);

/// The RunConfig that replays `s` on `fs`.  Warm-up is disabled so every
/// demand block is classified (the conservation invariants need equality,
/// not a measured suffix).
[[nodiscard]] RunConfig scenario_config(const Scenario& s, FsKind fs);

void save_scenario(std::ostream& os, const Scenario& s);

/// Parses a repro file; throws std::invalid_argument on junk.
[[nodiscard]] Scenario load_scenario(std::istream& is);

}  // namespace lap
