#include "check/oracle.hpp"

#include <cstdint>
#include <cstring>
#include <string>

namespace lap {
namespace {

std::uint64_t block_key(std::int64_t file, std::int64_t block) {
  return static_cast<std::uint64_t>(file) << 32 |
         static_cast<std::uint64_t>(block & 0xffffffff);
}

std::int64_t arg_or(TraceArgs args, const char* key, std::int64_t fallback) {
  const TraceArg* a = find_arg(args, key);
  return a == nullptr ? fallback : a->i;
}

bool is(const char* name, const char* want) {
  return std::strcmp(name, want) == 0;
}

}  // namespace

void InvariantOracle::violate(SimTime ts, std::string msg) {
  if (violations_.size() >= opts_.max_violations) return;
  violations_.push_back("t=" + std::to_string(ts.nanos()) + "ns: " +
                        std::move(msg));
}

InvariantOracle::SiteFile& InvariantOracle::site_file(std::int64_t site,
                                                      std::uint32_t file) {
  return sf_[static_cast<std::uint64_t>(site) << 32 | file];
}

void InvariantOracle::set_dirty(std::uint64_t key, std::uint32_t row,
                                bool dirty, SimTime ts) {
  Resident& r = resident_[row][key];
  if (r.dirty == dirty) return;
  r.dirty = dirty;
  std::uint32_t& rows = dirty_rows_[key];
  if (dirty) {
    ++rows;
    if (rows > 1) {
      // Two caches dirty on the same block is legal only inside the atomic
      // invalidation step of a write (the writer dirties its copy, then
      // erases every replica at the same simulated instant).  It must not
      // survive the instant.
      double_dirty_[key] = ts;
    }
  } else {
    if (rows == 0) {
      violate(ts, "dirty bookkeeping underflow on block " +
                      std::to_string(key));
    } else {
      --rows;
    }
    if (rows <= 1) double_dirty_.erase(key);
  }
}

void InvariantOracle::advance_time(SimTime ts) {
  if (double_dirty_.empty()) return;
  for (auto it = double_dirty_.begin(); it != double_dirty_.end();) {
    if (ts > it->second) {
      violate(it->second, "block " + std::to_string(it->first) +
                              " dirty in two caches past the write instant "
                              "(single-writer violation)");
      it = double_dirty_.erase(it);
    } else {
      ++it;
    }
  }
}

void InvariantOracle::on_cache_event(const char* name, TraceTrack track,
                                     SimTime ts, TraceArgs args) {
  const std::uint32_t row = track.pid;
  const std::int64_t file = arg_or(args, "file", -1);
  if (is(name, "cache.drop_file")) {
    const std::int64_t expect = arg_or(args, "blocks", -1);
    auto& entries = resident_[row];
    std::int64_t dropped = 0;
    for (auto it = entries.begin(); it != entries.end();) {
      if (static_cast<std::int64_t>(it->first >> 32) == file) {
        if (it->second.dirty) set_dirty(it->first, row, false, ts);
        it = entries.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    if (dropped != expect) {
      violate(ts, "cache.drop_file file=" + std::to_string(file) +
                      " reported " + std::to_string(expect) +
                      " blocks, row held " + std::to_string(dropped));
    }
    return;
  }
  if (is(name, "cache.nchance_forward")) return;  // the insert follows

  const std::uint64_t key = block_key(file, arg_or(args, "block", -1));
  const bool dirty = arg_or(args, "dirty", 0) != 0;
  auto& entries = resident_[row];
  const bool present = entries.contains(key);

  if (is(name, "cache.insert")) {
    if (present) {
      violate(ts, "cache.insert over a resident block (file " +
                      std::to_string(file) + ")");
      return;
    }
    entries.emplace(key, Resident{});
    if (dirty) set_dirty(key, row, true, ts);
    return;
  }
  if (!present) {
    violate(ts, std::string(name) + " on a block the row does not hold "
                                    "(file " +
                    std::to_string(file) + ")");
    return;
  }
  if (is(name, "cache.replace") || is(name, "cache.mark_dirty") ||
      is(name, "cache.mark_clean")) {
    set_dirty(key, row, is(name, "cache.mark_clean") ? false : dirty, ts);
    return;
  }
  if (is(name, "cache.evict") || is(name, "cache.erase")) {
    if (entries[key].dirty) set_dirty(key, row, false, ts);
    entries.erase(key);
    return;
  }
}

void InvariantOracle::instant(const char* cat, const char* name,
                              TraceTrack track, SimTime ts, TraceArgs args) {
  advance_time(ts);
  if (cat != nullptr && std::strcmp(cat, "cache") == 0) {
    on_cache_event(name, track, ts, args);
    return;
  }
  if (cat == nullptr || std::strcmp(cat, "prefetch") != 0) return;
  // Prefetch events land on the per-file track: tid = raw(file) + 1.
  const std::uint32_t file = track.tid - 1;
  const std::int64_t site = arg_or(args, "site", 0);

  if (is(name, "prefetch.request")) {
    SiteFile& sf = site_file(site, file);
    ++sf.requests;
    sf.has_request = true;
    sf.last_request_first = arg_or(args, "first", -1);
    sf.last_request_ts = ts;
    return;
  }
  if (is(name, "prefetch.issue")) {
    SiteFile& sf = site_file(site, file);
    ++sf.outstanding;
    // Policy-aware outstanding bound: fixed-degree algorithms (the paper's
    // linear limitation at degree 1 and the Dg<k> generalisation) must
    // never exceed max_outstanding; feedback algorithms float, but the
    // throttle clamps the degree at feedback_cap, so that is their hard
    // ceiling.  Flooding variants are unbounded by design.
    const bool bounded = opts_.spec.aggressive &&
                         opts_.spec.max_outstanding != AlgorithmSpec::kUnlimited;
    const std::uint32_t limit = opts_.spec.feedback
                                    ? opts_.spec.feedback_cap
                                    : opts_.spec.max_outstanding;
    if (bounded && sf.outstanding > static_cast<std::int64_t>(limit)) {
      violate(ts, "linearity: " + std::to_string(sf.outstanding) +
                      " outstanding prefetches on site " +
                      std::to_string(site) + " file " + std::to_string(file) +
                      " (limit " + std::to_string(limit) + ")");
    }
    if (opts_.spec.kind == AlgorithmSpec::Kind::kIsPpm &&
        opts_.spec.oba_fallback && arg_or(args, "fallback", 0) == 0 &&
        sf.requests < 2) {
      violate(ts, "IS_PPM issued a graph prediction on site " +
                      std::to_string(site) + " file " + std::to_string(file) +
                      " before the graph could hold an edge (" +
                      std::to_string(sf.requests) + " requests seen)");
    }
    return;
  }
  if (is(name, "prefetch.elided")) {
    SiteFile& sf = site_file(site, file);
    --sf.outstanding;
    if (sf.outstanding < 0) {
      violate(ts, "prefetch.elided without a matching issue on site " +
                      std::to_string(site) + " file " + std::to_string(file));
    }
    return;
  }
  if (is(name, "prefetch.restart")) {
    SiteFile& sf = site_file(site, file);
    const std::int64_t from = arg_or(args, "from_block", -1);
    if (!sf.has_request || sf.last_request_ts != ts) {
      violate(ts, "prefetch.restart not caused by a demand request on site " +
                      std::to_string(site) + " file " + std::to_string(file));
    } else if (from != sf.last_request_first) {
      violate(ts, "prefetch.restart from block " + std::to_string(from) +
                      " but the faulting request started at block " +
                      std::to_string(sf.last_request_first));
    }
    return;
  }
  if (is(name, "prefetch.used")) {
    ++used_;
    return;
  }
  if (is(name, "prefetch.wasted")) {
    ++wasted_;
    return;
  }
}

void InvariantOracle::complete(const char* /*cat*/, const char* name,
                               TraceTrack track, SimTime start,
                               SimTime duration, TraceArgs args) {
  // Disk and network spans are emitted at their *start* with a precomputed
  // duration, so start+duration can lie in the simulated future; `start` is
  // the only bound on emission time that holds for every complete event.
  advance_time(start);
  if (is(name, "prefetch.fetch")) {
    const std::uint32_t file = track.tid - 1;
    const std::int64_t site = arg_or(args, "site", 0);
    SiteFile& sf = site_file(site, file);
    --sf.outstanding;
    ++arrived_;
    if (sf.outstanding < 0) {
      violate(start + duration,
              "prefetch.fetch completed without a matching issue on site " +
                  std::to_string(site) + " file " + std::to_string(file));
    }
    return;
  }
  if (is(name, "fs.read")) {
    read_blocks_ += static_cast<std::uint64_t>(arg_or(args, "blocks", 0));
    return;
  }
}

void InvariantOracle::finish() {
  for (const auto& [key, sf] : sf_) {
    if (sf.outstanding != 0) {
      violate(SimTime::zero(),
              "end of run: " + std::to_string(sf.outstanding) +
                  " prefetches still outstanding on site " +
                  std::to_string(key >> 32) + " file " +
                  std::to_string(key & 0xffffffff));
    }
  }
  for (const auto& [key, ts] : double_dirty_) {
    violate(ts, "end of run: block " + std::to_string(key) +
                    " dirty in two caches");
  }
  if (arrived_ != used_ + wasted_) {
    violate(SimTime::zero(),
            "prefetch conservation: arrived=" + std::to_string(arrived_) +
                " != used=" + std::to_string(used_) + " + wasted=" +
                std::to_string(wasted_));
  }
}

}  // namespace lap
