// Greedy scenario shrinker.
//
// Given a failing Scenario and a predicate that re-checks it, repeatedly
// removes structure — whole processes, then record chunks (delta-debugging
// style, halving chunk sizes down to single records), then unreferenced
// files — keeping any removal after which the predicate still fails.
// Passes repeat to a fixpoint under an evaluation budget, so the result is
// 1-minimal per pass granularity, not globally minimal: good enough to turn
// a 200-record fuzz case into a handful of records a human can read.
#pragma once

#include <cstddef>
#include <functional>

#include "check/scenario.hpp"

namespace lap {

/// Returns true when the scenario still exhibits the failure being chased.
using ScenarioPredicate = std::function<bool(const Scenario&)>;

[[nodiscard]] Scenario shrink_scenario(Scenario s,
                                       const ScenarioPredicate& still_fails,
                                       std::size_t max_evaluations = 400);

}  // namespace lap
