// Canonical RunResult fingerprinting for the container-swap differential
// corpus.
//
// The hot-path containers (event heap, flat hash tables, intrusive LRU,
// flat disk queue) were rewritten under a "same bits, fewer nanoseconds"
// contract: every simulation must produce a RunResult identical to the one
// the original node-based containers produced.  This header pins that
// contract down to a single number per run — an FNV-1a hash over every
// RunResult field except wall_seconds, with doubles hashed by exact bit
// pattern — so a corpus of golden hashes captured before the rewrite keeps
// guarding it afterwards.
#pragma once

#include <cstdint>

#include "driver/simulation.hpp"

namespace lap {

/// Order- and layout-stable hash of `r`; wall_seconds is the only field
/// excluded (it measures the host, not the simulation).
[[nodiscard]] std::uint64_t hash_run_result(const RunResult& r);

/// Hash of the scenario derived from `seed` replayed under `fs`
/// (scenario_config defaults: untraced, warm-up disabled).  With
/// `with_spans`, a provenance SpanCollector rides the run — the hash must
/// not change, proving span collection never perturbs the simulation.
/// With `shards` > 1 the run executes on the sharded parallel engine — the
/// hash must not change either: shard count is execution policy, not
/// semantics (DESIGN.md §14).
[[nodiscard]] std::uint64_t golden_scenario_hash(std::uint64_t seed, FsKind fs,
                                                 bool with_spans = false,
                                                 int shards = 1);

}  // namespace lap
