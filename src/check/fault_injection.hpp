// Fault injectors: TraceSink shims that corrupt the event stream on its way
// to the oracle.  They exist to prove the oracle can actually catch the bugs
// it claims to — a checker that never fires is indistinguishable from one
// that checks nothing.
#pragma once

#include <cstdint>
#include <cstring>

#include "obs/trace_event.hpp"

namespace lap {

/// Duplicates every `prefetch.issue` event, which is what a pacing bug that
/// launched a second outstanding prefetch per file would look like.  The
/// downstream oracle must flag it as a linearity violation.
class DoubleIssueInjector final : public TraceSink {
 public:
  explicit DoubleIssueInjector(TraceSink& down) : down_(&down) {}

  void name_process(std::uint32_t pid, std::string_view name) override {
    down_->name_process(pid, name);
  }
  void name_thread(std::uint32_t pid, std::uint32_t tid,
                   std::string_view name) override {
    down_->name_thread(pid, tid, name);
  }
  void instant(const char* cat, const char* name, TraceTrack track, SimTime ts,
               TraceArgs args) override {
    down_->instant(cat, name, track, ts, args);
    if (std::strcmp(name, "prefetch.issue") == 0) {
      down_->instant(cat, name, track, ts, args);
    }
  }
  void complete(const char* cat, const char* name, TraceTrack track,
                SimTime start, SimTime duration, TraceArgs args) override {
    down_->complete(cat, name, track, start, duration, args);
  }
  void counter(const char* name, SimTime ts, double value) override {
    down_->counter(name, ts, value);
  }
  void close() override { down_->close(); }

 private:
  TraceSink* down_;
};

}  // namespace lap
