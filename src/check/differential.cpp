#include "check/differential.hpp"

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "check/trace_hash.hpp"
#include "obs/span.hpp"
#include "trace/io/binary_io.hpp"

namespace lap {
namespace {

template <typename T>
void field(std::vector<std::string>& out, const std::string& label,
           const char* name, const T& a, const T& b) {
  if (a == b) return;
  std::ostringstream os;
  os << label << ": " << name << " " << a << " != " << b;
  out.push_back(os.str());
}

void reconcile(std::vector<std::string>& out, const std::string& label,
               const char* name, std::uint64_t run, std::uint64_t oracle) {
  if (run == oracle) return;
  out.push_back(label + ": RunResult." + name + "=" + std::to_string(run) +
                " but the oracle counted " + std::to_string(oracle));
}

}  // namespace

std::string CheckReport::summary() const {
  std::ostringstream os;
  os << "seed " << seed << ": " << violations.size() << " violation(s), "
     << diffs.size() << " diff(s)";
  for (const std::string& v : violations) os << "\n  [invariant] " << v;
  for (const std::string& d : diffs) os << "\n  [diff] " << d;
  return os.str();
}

std::vector<std::string> diff_run_results(const RunResult& a,
                                          const RunResult& b,
                                          const std::string& label) {
  std::vector<std::string> out;
  field(out, label, "algorithm", a.algorithm, b.algorithm);
  field(out, label, "fs", a.fs, b.fs);
  field(out, label, "cache_per_node", a.cache_per_node, b.cache_per_node);
  field(out, label, "avg_read_ms", a.avg_read_ms, b.avg_read_ms);
  field(out, label, "avg_write_ms", a.avg_write_ms, b.avg_write_ms);
  field(out, label, "reads", a.reads, b.reads);
  field(out, label, "writes", a.writes, b.writes);
  field(out, label, "disk_reads", a.disk_reads, b.disk_reads);
  field(out, label, "disk_writes", a.disk_writes, b.disk_writes);
  field(out, label, "disk_accesses", a.disk_accesses, b.disk_accesses);
  field(out, label, "disk_prefetch_reads", a.disk_prefetch_reads,
        b.disk_prefetch_reads);
  field(out, label, "writes_per_block", a.writes_per_block, b.writes_per_block);
  field(out, label, "hit_ratio", a.hit_ratio, b.hit_ratio);
  field(out, label, "hits_local", a.hits_local, b.hits_local);
  field(out, label, "hits_remote", a.hits_remote, b.hits_remote);
  field(out, label, "hits_inflight", a.hits_inflight, b.hits_inflight);
  field(out, label, "misses", a.misses, b.misses);
  field(out, label, "misprediction_ratio", a.misprediction_ratio,
        b.misprediction_ratio);
  field(out, label, "prefetch_issued", a.prefetch_issued, b.prefetch_issued);
  field(out, label, "prefetch_fallback", a.prefetch_fallback,
        b.prefetch_fallback);
  field(out, label, "prefetch_arrived", a.prefetch_arrived,
        b.prefetch_arrived);
  field(out, label, "prefetch_used", a.prefetch_used, b.prefetch_used);
  field(out, label, "prefetch_wasted", a.prefetch_wasted, b.prefetch_wasted);
  field(out, label, "fallback_fraction", a.fallback_fraction,
        b.fallback_fraction);
  field(out, label, "read_p95_ms", a.read_p95_ms, b.read_p95_ms);
  field(out, label, "sim_duration", a.sim_duration.nanos(),
        b.sim_duration.nanos());
  field(out, label, "events", a.events, b.events);
  return out;
}

CheckReport check_serialization(const Scenario& s) {
  CheckReport report;
  report.seed = s.seed;

  // Format round-trips: text and binary must each reproduce the trace
  // exactly, so by transitivity the two formats agree with each other.
  std::stringstream text;
  s.trace.save(text);
  const Trace from_text = Trace::load(text);
  if (from_text != s.trace) {
    report.diffs.push_back("text round-trip: load(save(t)) != t");
  }

  std::stringstream binary(std::ios::in | std::ios::out | std::ios::binary);
  save_binary_trace(binary, s.trace);
  const std::string image = binary.str();
  binary.seekg(0);
  const Trace from_binary = load_binary_trace(binary);
  if (from_binary != s.trace) {
    report.diffs.push_back("binary round-trip: load(save(t)) != t");
  }

  for (FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
    const std::string tag = to_string(fs);
    const RunConfig cfg = scenario_config(s, fs);
    const RunResult baseline = run_simulation(s.trace, cfg);

    const RunResult loaded = run_simulation(from_binary, cfg);
    for (std::string& d :
         diff_run_results(baseline, loaded, tag + " binary-loaded")) {
      report.diffs.push_back(std::move(d));
    }

    BinaryTraceSource streamed(
        std::make_unique<std::stringstream>(
            image, std::ios::in | std::ios::binary),
        /*chunk_bytes=*/256);  // tiny chunks exercise every refill path
    const RunResult stream_run = run_simulation(streamed, cfg);
    for (std::string& d :
         diff_run_results(baseline, stream_run, tag + " streamed")) {
      report.diffs.push_back(std::move(d));
    }
  }
  return report;
}

CheckReport run_checked(const Scenario& s) {
  CheckReport report;
  report.seed = s.seed;

  RunResult per_fs[2];
  for (FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
    const std::string tag = to_string(fs);
    const RunConfig cfg = scenario_config(s, fs);

    const RunResult plain = run_simulation(s.trace, cfg);

    InvariantOracle oracle({.spec = cfg.algorithm});
    SpanCollector spans;
    RunConfig traced_cfg = cfg;
    traced_cfg.trace = &oracle;
    // Spans ride the traced leg only: the traced-vs-untraced diff below then
    // also proves the collector never perturbs the simulation.
    traced_cfg.spans = &spans;
    const RunResult traced = run_simulation(s.trace, traced_cfg);
    oracle.finish();

    for (const std::string& v : oracle.violations()) {
      report.violations.push_back(tag + ": " + v);
    }
    for (std::string& d :
         diff_run_results(plain, traced, tag + " traced-vs-untraced")) {
      report.diffs.push_back(std::move(d));
    }

    // The oracle's event tallies must agree with the metrics the run
    // reports — a mismatch means an event was dropped or double-emitted.
    reconcile(report.diffs, tag, "prefetch_arrived", traced.prefetch_arrived,
              oracle.arrived());
    reconcile(report.diffs, tag, "prefetch_used", traced.prefetch_used,
              oracle.used());
    reconcile(report.diffs, tag, "prefetch_wasted", traced.prefetch_wasted,
              oracle.wasted());

    // Span-provenance accounting must agree with the same ground truth: the
    // collector settles every arrived block exactly once (used xor wasted),
    // and its totals match the run's own prefetch counters bit-for-bit.
    const SpanCollector::Totals st = spans.totals();
    reconcile(report.diffs, tag + " spans", "prefetch_arrived",
              traced.prefetch_arrived, st.arrived);
    reconcile(report.diffs, tag + " spans", "prefetch_used",
              traced.prefetch_used, st.used);
    reconcile(report.diffs, tag + " spans", "prefetch_wasted",
              traced.prefetch_wasted, st.wasted);
    if (st.used + st.wasted != st.arrived) {
      report.diffs.push_back(tag + " spans: used+wasted=" +
                             std::to_string(st.used + st.wasted) +
                             " != arrived=" + std::to_string(st.arrived));
    }

    // Every demand-read block is classified hit or miss.  xFS leaves blocks
    // of a deleted file unclassified (its read path bails out), so with
    // deletes the classification may only undershoot the event stream.
    const std::uint64_t classified = traced.hits_local + traced.hits_remote +
                                     traced.hits_inflight + traced.misses;
    if (s.has_deletes() ? classified > oracle.read_blocks()
                        : classified != oracle.read_blocks()) {
      report.diffs.push_back(
          tag + ": hits+misses=" + std::to_string(classified) +
          (s.has_deletes() ? " exceeds " : " != ") + "fs.read blocks=" +
          std::to_string(oracle.read_blocks()));
    }

    // Sequential-vs-sharded differential: the same scenario replayed as
    // 2/3/5 shards on two worker threads must reproduce the sequential
    // metrics field-for-field *and* the sequential trace stream
    // hash-for-hash.  Shard counts are chosen to exercise uneven disk
    // distributions (3, 5) as well as the all-disks-on-one-shard case (2).
    TraceHashSink seq_stream;
    RunConfig seq_cfg = cfg;
    seq_cfg.trace = &seq_stream;
    const RunResult sequential = run_simulation(s.trace, seq_cfg);
    for (std::string& d :
         diff_run_results(plain, sequential, tag + " traced-seq")) {
      report.diffs.push_back(std::move(d));
    }
    for (const int shards : {2, 3, 5}) {
      const std::string leg = tag + " shards=" + std::to_string(shards);
      TraceHashSink shard_stream;
      RunConfig shard_cfg = cfg;
      shard_cfg.shards = shards;
      shard_cfg.shard_threads = 2;
      shard_cfg.trace = &shard_stream;
      const RunResult sharded = run_simulation(s.trace, shard_cfg);
      for (std::string& d : diff_run_results(sequential, sharded, leg)) {
        report.diffs.push_back(std::move(d));
      }
      if (shard_stream.hash() != seq_stream.hash() ||
          shard_stream.events() != seq_stream.events()) {
        report.diffs.push_back(
            leg + ": trace stream diverged from sequential (" +
            std::to_string(shard_stream.events()) + " events, hash " +
            std::to_string(shard_stream.hash()) + " vs " +
            std::to_string(seq_stream.events()) + ", " +
            std::to_string(seq_stream.hash()) + ")");
      }
    }

    per_fs[fs == FsKind::kXfs ? 1 : 0] = plain;
  }

  // Shared-invariant cross-check: both file systems replay the same closed
  // loop, so the demand operation counts must agree exactly.
  field(report.diffs, "pafs-vs-xfs", "reads", per_fs[0].reads,
        per_fs[1].reads);
  field(report.diffs, "pafs-vs-xfs", "writes", per_fs[0].writes,
        per_fs[1].writes);
  return report;
}

}  // namespace lap
