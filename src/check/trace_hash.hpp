// Order-sensitive trace-stream fingerprint for the sequential-vs-sharded
// differential wall.
//
// The sharded engine routes every observability emission through the model
// domain (disk completions carry their trace payload back with them), so a
// sharded replay must produce not just the same RunResult but the *same
// event stream in the same order* as the sequential replay.  This sink
// reduces a whole stream to one FNV-1a chain over every event's full
// content — category, name, track, timestamps and args — so two legs can
// be compared with a single integer.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/trace_event.hpp"

namespace lap {

class TraceHashSink final : public TraceSink {
 public:
  TraceHashSink() = default;

  /// Chained hash over every event observed so far (order-sensitive).
  [[nodiscard]] std::uint64_t hash() const { return hash_; }
  [[nodiscard]] std::uint64_t events() const { return count_; }

  void name_process(std::uint32_t pid, std::string_view name) override;
  void name_thread(std::uint32_t pid, std::uint32_t tid,
                   std::string_view name) override;
  void instant(const char* cat, const char* name, TraceTrack track, SimTime ts,
               TraceArgs args) override;
  void complete(const char* cat, const char* name, TraceTrack track,
                SimTime start, SimTime duration, TraceArgs args) override;
  void async_begin(const char* cat, const char* name, TraceTrack track,
                   std::uint64_t id, SimTime ts, TraceArgs args) override;
  void async_end(const char* cat, const char* name, TraceTrack track,
                 std::uint64_t id, SimTime ts, TraceArgs args) override;
  void counter(const char* name, SimTime ts, double value) override;
  void close() override {}

 private:
  void mix(std::uint64_t v);
  void mix_str(std::string_view s);
  void mix_event(char phase, const char* cat, const char* name,
                 TraceTrack track, SimTime ts, TraceArgs args);
  void mix_args(TraceArgs args);

  std::uint64_t hash_ = 14695981039346656037ULL;  // FNV-1a offset basis
  std::uint64_t count_ = 0;
};

}  // namespace lap
