#include "check/golden.hpp"

#include <bit>
#include <cstdint>
#include <string_view>

#include "check/scenario.hpp"
#include "obs/span.hpp"

namespace lap {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffU;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, double v) { mix(h, std::bit_cast<std::uint64_t>(v)); }

void mix(std::uint64_t& h, std::string_view s) {
  mix(h, static_cast<std::uint64_t>(s.size()));
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t hash_run_result(const RunResult& r) {
  std::uint64_t h = kFnvOffset;
  mix(h, r.algorithm);
  mix(h, r.fs);
  mix(h, static_cast<std::uint64_t>(r.cache_per_node));
  mix(h, r.avg_read_ms);
  mix(h, r.avg_write_ms);
  mix(h, r.reads);
  mix(h, r.writes);
  mix(h, r.disk_reads);
  mix(h, r.disk_writes);
  mix(h, r.disk_accesses);
  mix(h, r.disk_prefetch_reads);
  mix(h, r.writes_per_block);
  mix(h, r.hit_ratio);
  mix(h, r.hits_local);
  mix(h, r.hits_remote);
  mix(h, r.hits_inflight);
  mix(h, r.misses);
  mix(h, r.misprediction_ratio);
  mix(h, r.prefetch_issued);
  mix(h, r.prefetch_fallback);
  mix(h, r.prefetch_arrived);
  mix(h, r.prefetch_used);
  mix(h, r.prefetch_wasted);
  mix(h, r.fallback_fraction);
  mix(h, r.read_p95_ms);
  mix(h, static_cast<std::uint64_t>(r.sim_duration.nanos()));
  mix(h, r.events);
  return h;
}

std::uint64_t golden_scenario_hash(std::uint64_t seed, FsKind fs,
                                   bool with_spans, int shards) {
  const Scenario s = generate_scenario(seed);
  RunConfig cfg = scenario_config(s, fs);
  cfg.shards = shards;
  SpanCollector spans;
  if (with_spans) cfg.spans = &spans;
  return hash_run_result(run_simulation(s.trace, cfg));
}

}  // namespace lap
