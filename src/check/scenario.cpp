#include "check/scenario.hpp"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace lap {
namespace {

// Weighted toward the aggressive/linear algorithms: they are the ones with
// pacing, restart and fallback machinery for the oracle to falsify.  The
// tail adds the adaptive-degree policies (feedback throttle, best-offset):
// their degree transitions and per-request floods get the same oracle,
// conservation and seq-vs-sharded differential treatment as the paper set.
const char* pick_algorithm(Rng& rng) {
  static constexpr const char* kPool[] = {
      "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:2",
      "Ln_Agr_IS_PPM:3", "Ln_Agr_OBA",      "Ln_Agr_OBA",
      "Agr_IS_PPM:1",    "Agr_OBA",         "IS_PPM:1",
      "IS_PPM:2",        "OBA",             "NP",
      "VK_PPM:1",        "Ln_Agr_VK_PPM:1", "WholeFile",
      "Informed",        "Ln_Informed",     "Fb_Agr_IS_PPM:1",
      "Fb_Agr_OBA",      "BO:2",
  };
  return kPool[rng.uniform_int(0, std::size(kPool) - 1)];
}

SimTime think(Rng& rng) {
  if (!rng.chance(0.5)) return SimTime::zero();
  return SimTime::ns(static_cast<std::int64_t>(rng.exponential(20'000.0)) + 1);
}

// One demand request record; `len` may span several blocks or end inside
// one.
TraceRecord io(TraceOp op, FileId f, Bytes block_size, std::int64_t block,
               Bytes len, SimTime t) {
  TraceRecord r;
  r.op = op;
  r.file = f;
  r.offset = static_cast<Bytes>(block) * block_size;
  r.length = len;
  r.think = t;
  return r;
}

}  // namespace

bool Scenario::has_deletes() const {
  for (const ProcessTrace& p : trace.processes) {
    for (const TraceRecord& r : p.records) {
      if (r.op == TraceOp::kDelete) return true;
    }
  }
  return false;
}

Scenario generate_scenario(std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.seed = seed;
  s.algorithm = pick_algorithm(rng);
  s.nodes = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  s.cache_blocks_per_node = static_cast<std::uint32_t>(rng.uniform_int(4, 64));
  s.sync_ns = rng.uniform_int(5, 200) * 1'000'000;

  static constexpr Bytes kBlockSizes[] = {1024, 4096, 8192};
  const Bytes bs = kBlockSizes[rng.uniform_int(0, 2)];
  s.trace.block_size = bs;
  s.trace.serialize_per_node = rng.chance(0.25);

  const int nfiles = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < nfiles; ++i) {
    Bytes size = static_cast<Bytes>(rng.uniform_int(1, 48)) * bs;
    if (rng.chance(0.3)) size += static_cast<Bytes>(rng.uniform_int(1, bs - 1));
    s.trace.files.push_back(FileInfo{FileId{static_cast<std::uint32_t>(i)},
                                     size});
  }

  const int nprocs = static_cast<int>(rng.uniform_int(1, 5));
  for (int p = 0; p < nprocs; ++p) {
    ProcessTrace proc;
    proc.pid = ProcId{static_cast<std::uint32_t>(p + 1)};
    proc.node = NodeId{static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.nodes) - 1))};

    const int budget = static_cast<int>(rng.uniform_int(3, 40));
    while (static_cast<int>(proc.records.size()) < budget) {
      const auto fid = FileId{static_cast<std::uint32_t>(
          rng.uniform_int(0, nfiles - 1))};
      const std::int64_t fblocks = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(s.trace.files[raw(fid)].size / bs));
      if (rng.chance(0.3)) {
        proc.records.push_back(io(TraceOp::kOpen, fid, bs, 0, 0, think(rng)));
      }
      // A request usually covers one block, sometimes a multi-block span or
      // a partial tail.
      const auto req_len = [&]() -> Bytes {
        if (rng.chance(0.75)) return bs;
        return static_cast<Bytes>(rng.uniform_int(1, 3 * bs));
      };
      const std::int64_t start = rng.uniform_int(0, fblocks - 1);
      const int k = static_cast<int>(rng.uniform_int(2, 10));
      switch (rng.uniform_int(0, 5)) {
        case 0:  // sequential run — the bread and butter of OBA/IS_PPM
          for (int j = 0; j < k; ++j) {
            proc.records.push_back(io(TraceOp::kRead, fid, bs,
                                      (start + j) % fblocks, req_len(),
                                      think(rng)));
          }
          break;
        case 1: {  // strided — the interval structure IS_PPM models
          const std::int64_t stride = rng.uniform_int(2, 4);
          for (int j = 0; j < k; ++j) {
            proc.records.push_back(io(TraceOp::kRead, fid, bs,
                                      (start + j * stride) % fblocks,
                                      req_len(), think(rng)));
          }
          break;
        }
        case 2: {  // re-read loop — lets the pattern graph warm up
          const std::int64_t w = rng.uniform_int(2, 4);
          for (int rep = 0; rep < 3; ++rep) {
            for (std::int64_t j = 0; j < w; ++j) {
              proc.records.push_back(io(TraceOp::kRead, fid, bs,
                                        (start + j) % fblocks, bs,
                                        think(rng)));
            }
          }
          break;
        }
        case 3: {  // bait-and-switch: teach a path, then fault off it
          for (int j = 0; j < k; ++j) {
            proc.records.push_back(io(TraceOp::kRead, fid, bs,
                                      (start + j) % fblocks, bs, think(rng)));
          }
          const std::int64_t jump = rng.uniform_int(0, fblocks - 1);
          for (int j = 0; j < k / 2 + 1; ++j) {
            proc.records.push_back(io(TraceOp::kRead, fid, bs,
                                      (jump + j) % fblocks, bs, think(rng)));
          }
          break;
        }
        case 4:  // adversarial: independent random blocks
          for (int j = 0; j < k; ++j) {
            proc.records.push_back(io(TraceOp::kRead, fid, bs,
                                      rng.uniform_int(0, fblocks - 1),
                                      req_len(), think(rng)));
          }
          break;
        case 5:  // write run, possibly extending the file past EOF
          for (int j = 0; j < k; ++j) {
            proc.records.push_back(io(TraceOp::kWrite, fid, bs,
                                      start + j, req_len(), think(rng)));
          }
          break;
      }
      if (rng.chance(0.3)) {
        proc.records.push_back(io(TraceOp::kClose, fid, bs, 0, 0, think(rng)));
      }
      if (rng.chance(0.06)) {
        // Delete mid-stream; later segments may still reference the file —
        // those requests must degrade to no-ops, not corrupt accounting.
        proc.records.push_back(io(TraceOp::kDelete, fid, bs, 0, 0,
                                  think(rng)));
      }
    }
    s.trace.processes.push_back(std::move(proc));
  }
  return s;
}

RunConfig scenario_config(const Scenario& s, FsKind fs) {
  RunConfig cfg;
  MachineConfig m = MachineConfig::now();
  m.nodes = s.nodes;
  m.block_size = s.trace.block_size;
  m.disks = std::max<std::uint32_t>(1, s.nodes / 2);
  cfg.machine = m;
  cfg.fs = fs;
  cfg.cache_per_node =
      static_cast<Bytes>(s.cache_blocks_per_node) * s.trace.block_size;
  cfg.algorithm = AlgorithmSpec::parse(s.algorithm);
  cfg.sync_interval = SimTime::ns(s.sync_ns);
  cfg.warmup_fraction = 0.0;
  return cfg;
}

void save_scenario(std::ostream& os, const Scenario& s) {
  os << "# lap-scenario v1\n";
  os << "seed " << s.seed << '\n';
  os << "algorithm " << s.algorithm << '\n';
  os << "nodes " << s.nodes << '\n';
  os << "cacheblocks " << s.cache_blocks_per_node << '\n';
  os << "syncns " << s.sync_ns << '\n';
  s.trace.save(os);
}

Scenario load_scenario(std::istream& is) {
  Scenario s;
  std::string line;
  if (!std::getline(is, line) || line != "# lap-scenario v1") {
    throw std::invalid_argument("not a lap-scenario file");
  }
  while (is.peek() != EOF && is.peek() != '#') {
    if (!std::getline(is, line)) break;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "seed") {
      ls >> s.seed;
    } else if (tok == "algorithm") {
      ls >> s.algorithm;
    } else if (tok == "nodes") {
      ls >> s.nodes;
    } else if (tok == "cacheblocks") {
      ls >> s.cache_blocks_per_node;
    } else if (tok == "syncns") {
      ls >> s.sync_ns;
    } else {
      throw std::invalid_argument("unknown scenario key: " + tok);
    }
    if (!ls) throw std::invalid_argument("malformed scenario line: " + line);
  }
  s.trace = Trace::load(is);  // consumes "# lap-trace v1" onward
  return s;
}

}  // namespace lap
