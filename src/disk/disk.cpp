#include "disk/disk.hpp"

#include "obs/trace_event.hpp"
#include "util/assert.hpp"

namespace lap {

Disk::Disk(Engine& eng, DiskConfig cfg) : eng_(&eng), cfg_(cfg) {
  LAP_EXPECTS(cfg.block_size > 0);
}

SimTime Disk::read_service_time() const {
  return cfg_.read_seek + cfg_.bandwidth.transfer_time(cfg_.block_size);
}

SimTime Disk::write_service_time() const {
  return cfg_.write_seek + cfg_.bandwidth.transfer_time(cfg_.block_size);
}

SimTime Disk::service_time(bool write, std::uint64_t lba) const {
  const SimTime avg_seek = write ? cfg_.write_seek : cfg_.read_seek;
  const SimTime transfer = cfg_.bandwidth.transfer_time(cfg_.block_size);
  if (!cfg_.distance_seeks) return avg_seek + transfer;
  const std::uint64_t a = std::min(arm_position_, cfg_.cylinders - 1);
  const std::uint64_t b = std::min(lba, cfg_.cylinders - 1);
  const double distance =
      static_cast<double>(a > b ? a - b : b - a) /
      static_cast<double>(cfg_.cylinders);
  return SimTime::ns(static_cast<std::int64_t>(
             static_cast<double>(avg_seek.nanos()) * (0.4 + 1.2 * distance))) +
         transfer;
}

SimFuture<Done> Disk::read_block(int priority, OpId* id, std::uint64_t lba) {
  ++stats_.block_reads;
  if (priority >= prio::kPrefetch) ++stats_.prefetch_reads;
  return submit(/*write=*/false, lba, priority, id);
}

SimFuture<Done> Disk::write_block(int priority, OpId* id, std::uint64_t lba) {
  ++stats_.block_writes;
  return submit(/*write=*/true, lba, priority, id);
}

SimFuture<Done> Disk::submit(bool write, std::uint64_t lba, int priority,
                             OpId* id) {
  const OpId op_id = next_id_++;
  if (id != nullptr) *id = op_id;
  SimPromise<Done> done(*eng_);
  const Key key{priority, op_id};
  queue_.emplace(key, Op{write, lba, done});
  by_id_.emplace(op_id, key);
  maybe_start();
  return done.future();
}

void Disk::boost(OpId id, int priority) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;  // started or finished
  const Key old_key = it->second;
  if (old_key.first <= priority) return;  // already as urgent
  ++stats_.boosts;
  auto qit = queue_.find(old_key);
  LAP_ASSERT(qit != queue_.end());
  Op op = std::move(qit->second);
  queue_.erase(qit);
  const Key new_key{priority, old_key.second};  // keep submission order
  queue_.emplace(new_key, std::move(op));
  it->second = new_key;
}

void Disk::maybe_start() {
  if (in_service_ || queue_.empty()) return;
  auto it = queue_.begin();
  const OpId id = it->first.second;
  const int priority = it->first.first;
  Op op = std::move(it->second);
  queue_.erase(it);
  by_id_.erase(id);
  in_service_ = true;
  // Seek is computed at service start: the arm position is whatever the
  // previous operation left behind.
  const SimTime service = service_time(op.write, op.lba);
  if (trace_ != nullptr) {
    const SimTime transfer = cfg_.bandwidth.transfer_time(cfg_.block_size);
    const char* name = op.write             ? "disk.write"
                       : priority >= prio::kPrefetch ? "disk.prefetch_read"
                                                     : "disk.read";
    trace_->complete("disk", name, tracks::disk(trace_index_), eng_->now(),
                     service,
                     {{"lba", op.lba},
                      {"seek_us", (service - transfer).micros()},
                      {"transfer_us", transfer.micros()},
                      {"queued_behind", static_cast<std::uint64_t>(queue_.size())}});
  }
  arm_position_ = std::min(op.lba, cfg_.cylinders - 1);
  stats_.busy_time += service;
  eng_->schedule_in(service, [this, done = op.done] {
    done.set_value(Done{});
    in_service_ = false;
    maybe_start();
  });
}

}  // namespace lap
