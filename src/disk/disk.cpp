#include "disk/disk.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/span.hpp"
#include "obs/trace_event.hpp"
#include "util/assert.hpp"

namespace lap {

Disk::Disk(Engine& eng, DiskConfig cfg) : eng_(&eng), cfg_(cfg) {
  LAP_EXPECTS(cfg.block_size > 0);
  LAP_EXPECTS(cfg.completion_latency >= SimTime::zero());
}

SimTime Disk::read_service_time() const {
  return cfg_.read_seek + cfg_.bandwidth.transfer_time(cfg_.block_size);
}

SimTime Disk::write_service_time() const {
  return cfg_.write_seek + cfg_.bandwidth.transfer_time(cfg_.block_size);
}

SimTime Disk::service_time(bool write, std::uint64_t lba) const {
  const SimTime avg_seek = write ? cfg_.write_seek : cfg_.read_seek;
  const SimTime transfer = cfg_.bandwidth.transfer_time(cfg_.block_size);
  if (!cfg_.distance_seeks) return avg_seek + transfer;
  const std::uint64_t a = std::min(arm_position_, cfg_.cylinders - 1);
  const std::uint64_t b = std::min(lba, cfg_.cylinders - 1);
  const double distance =
      static_cast<double>(a > b ? a - b : b - a) /
      static_cast<double>(cfg_.cylinders);
  return SimTime::ns(static_cast<std::int64_t>(
             static_cast<double>(avg_seek.nanos()) * (0.4 + 1.2 * distance))) +
         transfer;
}

SimFuture<Done> Disk::read_block(int priority, OpId* id, std::uint64_t lba,
                                 std::uint64_t span) {
  return submit(/*write=*/false, lba, priority, id, span);
}

SimFuture<Done> Disk::write_block(int priority, OpId* id, std::uint64_t lba,
                                  std::uint64_t span) {
  return submit(/*write=*/true, lba, priority, id, span);
}

void Disk::check_queue() const {
#ifndef NDEBUG
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Op& above = queue_[i - 1];  // less urgent
    const Op& below = queue_[i];
    LAP_ASSERT(above.priority > below.priority ||
               (above.priority == below.priority &&
                (above.submitted > below.submitted ||
                 (above.submitted == below.submitted &&
                  above.id > below.id))));
  }
#endif
}

void Disk::enqueue(Op op) {
  // Descending (priority, submitted, id): the most urgent (smallest)
  // entry stays at back().  Submission *time* is the FIFO component;
  // same-instant submissions from different model domains tie-break on
  // the token id's (domain, sequence) — a total, shard-count-invariant
  // order.  Demand traffic therefore inserts near the end, behind only
  // same-priority earlier arrivals.
  auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), op, [](const Op& a, const Op& b) {
        if (a.priority != b.priority) return a.priority > b.priority;
        if (a.submitted != b.submitted) return a.submitted > b.submitted;
        return a.id > b.id;
      });
  queue_.insert(pos, std::move(op));
  check_queue();
}

SimFuture<Done> Disk::submit(bool write, std::uint64_t lba, int priority,
                             OpId* id, std::uint64_t span) {
  // Model-domain half: draw the id and the promise here so callers see
  // submission order, then hand the operation to the disk's domain.  The
  // id is an engine token — (submitting domain, per-domain sequence) —
  // so it is unique across concurrent model domains yet bit-identical at
  // every shard count; admissions cross domains in canonical engine
  // order.
  const OpId op_id = eng_->draw_token();
  if (id != nullptr) *id = op_id;
  SimPromise<Done> done(*eng_);
  const SimTime submitted = eng_->now();
  const DomainId reply = eng_->current_domain();
  eng_->post_at(domain_, submitted,
                [this, priority, op_id, write, lba, done, span, submitted,
                 reply] {
                  admit(Op{priority, op_id, write, lba, done, span, submitted,
                           reply});
                });
  return done.future();
}

void Disk::boost(OpId id, int priority) {
  // From the submitting domain this is posted behind the admission (same
  // origin, later sequence), so a boost can never overtake its target;
  // from any other domain an early boost simply no-ops in apply_boost.
  eng_->post_at(domain_, eng_->now(),
                [this, id, priority] { apply_boost(id, priority); });
}

void Disk::admit(Op op) {
  if (op.write) {
    ++stats_.block_writes;
  } else {
    ++stats_.block_reads;
    if (op.priority >= prio::kPrefetch) ++stats_.prefetch_reads;
  }
  enqueue(std::move(op));
  maybe_start();
}

void Disk::apply_boost(OpId id, int priority) {
  // One linear scan over the (short) queue replaces the old id-map lookup
  // plus keyed-map erase/re-insert; not finding the id means the operation
  // already started or finished.
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [id](const Op& op) { return op.id == id; });
  if (it == queue_.end()) return;  // started or finished
  if (it->priority <= priority) return;  // already as urgent
  ++stats_.boosts;
  Op op = std::move(*it);
  queue_.erase(it);
  op.priority = priority;  // id (submission order) is the tie-break
  enqueue(std::move(op));
}

void Disk::maybe_start() {
  if (in_service_ || queue_.empty()) return;
  Op op = std::move(queue_.back());
  queue_.pop_back();
  const int priority = op.priority;
  in_service_ = true;
  // Seek is computed at service start: the arm position is whatever the
  // previous operation left behind.
  const SimTime start = eng_->now();
  const SimTime service = service_time(op.write, op.lba);
  const SimTime wait = start - op.submitted;
  const std::uint64_t queued_behind = queue_.size();
  arm_position_ = std::min(op.lba, cfg_.cylinders - 1);
  stats_.busy_time += service;
  // Two futures part ways here.  The platter-side finish stays in the
  // disk's domain: it frees the spindle for the next queued operation.
  eng_->schedule_in(service, [this] {
    in_service_ = false;
    maybe_start();
  });
  // The host-side completion crosses back into the *submitting* model
  // domain after the controller latency, carrying everything observability
  // needs — so the trace stream and span attribution are emitted in model
  // order and stay byte-identical across shard counts.
  eng_->post_at(
      op.reply, start + service + cfg_.completion_latency,
      [this, done = op.done, span = op.span, write = op.write, lba = op.lba,
       priority, start, service, wait, queued_behind] {
        if (span != 0) {
          if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
            sp->disk_serviced(span, wait, service);
          }
        }
        if (trace_ != nullptr) {
          const SimTime transfer =
              cfg_.bandwidth.transfer_time(cfg_.block_size);
          const char* name = write ? "disk.write"
                             : priority >= prio::kPrefetch
                                 ? "disk.prefetch_read"
                                 : "disk.read";
          trace_->complete("disk", name, tracks::disk(trace_index_), start,
                           service,
                           {{"lba", lba},
                            {"seek_us", (service - transfer).micros()},
                            {"transfer_us", transfer.micros()},
                            {"queued_behind", queued_behind}});
        }
        done.set_value(Done{});
      });
}

}  // namespace lap
