#include "disk/disk.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/span.hpp"
#include "obs/trace_event.hpp"
#include "util/assert.hpp"

namespace lap {

Disk::Disk(Engine& eng, DiskConfig cfg) : eng_(&eng), cfg_(cfg) {
  LAP_EXPECTS(cfg.block_size > 0);
}

SimTime Disk::read_service_time() const {
  return cfg_.read_seek + cfg_.bandwidth.transfer_time(cfg_.block_size);
}

SimTime Disk::write_service_time() const {
  return cfg_.write_seek + cfg_.bandwidth.transfer_time(cfg_.block_size);
}

SimTime Disk::service_time(bool write, std::uint64_t lba) const {
  const SimTime avg_seek = write ? cfg_.write_seek : cfg_.read_seek;
  const SimTime transfer = cfg_.bandwidth.transfer_time(cfg_.block_size);
  if (!cfg_.distance_seeks) return avg_seek + transfer;
  const std::uint64_t a = std::min(arm_position_, cfg_.cylinders - 1);
  const std::uint64_t b = std::min(lba, cfg_.cylinders - 1);
  const double distance =
      static_cast<double>(a > b ? a - b : b - a) /
      static_cast<double>(cfg_.cylinders);
  return SimTime::ns(static_cast<std::int64_t>(
             static_cast<double>(avg_seek.nanos()) * (0.4 + 1.2 * distance))) +
         transfer;
}

SimFuture<Done> Disk::read_block(int priority, OpId* id, std::uint64_t lba,
                                 std::uint64_t span) {
  ++stats_.block_reads;
  if (priority >= prio::kPrefetch) ++stats_.prefetch_reads;
  return submit(/*write=*/false, lba, priority, id, span);
}

SimFuture<Done> Disk::write_block(int priority, OpId* id, std::uint64_t lba,
                                  std::uint64_t span) {
  ++stats_.block_writes;
  return submit(/*write=*/true, lba, priority, id, span);
}

void Disk::check_queue() const {
#ifndef NDEBUG
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Op& above = queue_[i - 1];  // less urgent
    const Op& below = queue_[i];
    LAP_ASSERT(above.priority > below.priority ||
               (above.priority == below.priority && above.id > below.id));
  }
#endif
}

void Disk::enqueue(Op op) {
  // Descending (priority, id): the most urgent (smallest) entry stays at
  // back().  Demand traffic therefore inserts near the end, behind only
  // same-priority earlier arrivals.
  auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), op, [](const Op& a, const Op& b) {
        if (a.priority != b.priority) return a.priority > b.priority;
        return a.id > b.id;
      });
  queue_.insert(pos, std::move(op));
  check_queue();
}

SimFuture<Done> Disk::submit(bool write, std::uint64_t lba, int priority,
                             OpId* id, std::uint64_t span) {
  const OpId op_id = next_id_++;
  if (id != nullptr) *id = op_id;
  SimPromise<Done> done(*eng_);
  enqueue(Op{priority, op_id, write, lba, done, span, eng_->now()});
  maybe_start();
  return done.future();
}

void Disk::boost(OpId id, int priority) {
  // One linear scan over the (short) queue replaces the old id-map lookup
  // plus keyed-map erase/re-insert; not finding the id means the operation
  // already started or finished.
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [id](const Op& op) { return op.id == id; });
  if (it == queue_.end()) return;  // started or finished
  if (it->priority <= priority) return;  // already as urgent
  ++stats_.boosts;
  Op op = std::move(*it);
  queue_.erase(it);
  op.priority = priority;  // id (submission order) is the tie-break
  enqueue(std::move(op));
}

void Disk::maybe_start() {
  if (in_service_ || queue_.empty()) return;
  Op op = std::move(queue_.back());
  queue_.pop_back();
  const int priority = op.priority;
  in_service_ = true;
  // Seek is computed at service start: the arm position is whatever the
  // previous operation left behind.
  const SimTime service = service_time(op.write, op.lba);
  if (op.span != 0) {
    if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
      sp->disk_serviced(op.span, eng_->now() - op.submitted, service);
    }
  }
  if (trace_ != nullptr) {
    const SimTime transfer = cfg_.bandwidth.transfer_time(cfg_.block_size);
    const char* name = op.write             ? "disk.write"
                       : priority >= prio::kPrefetch ? "disk.prefetch_read"
                                                     : "disk.read";
    trace_->complete("disk", name, tracks::disk(trace_index_), eng_->now(),
                     service,
                     {{"lba", op.lba},
                      {"seek_us", (service - transfer).micros()},
                      {"transfer_us", transfer.micros()},
                      {"queued_behind", static_cast<std::uint64_t>(queue_.size())}});
  }
  arm_position_ = std::min(op.lba, cfg_.cylinders - 1);
  stats_.busy_time += service;
  eng_->schedule_in(service, [this, done = op.done] {
    done.set_value(Done{});
    in_service_ = false;
    maybe_start();
  });
}

}  // namespace lap
