// The machine's disk subsystem: `n` identical disks with file blocks
// striped across them, as in the simulated architectures (PM: 16 disks,
// NOW: 8 disks).  Striping spreads both a single file's blocks and
// different files over all spindles.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/block.hpp"
#include "disk/disk.hpp"

namespace lap {

/// Handle to a queued disk operation, used to raise its priority when a
/// demand request catches up with it.
struct DiskOpRef {
  Disk* disk = nullptr;
  Disk::OpId id = 0;

  void boost(int priority) const {
    if (disk != nullptr) disk->boost(id, priority);
  }
};

class DiskArray {
 public:
  DiskArray(Engine& eng, DiskConfig cfg, std::uint32_t disks);

  [[nodiscard]] Disk& disk_for(BlockKey key);
  [[nodiscard]] DiskId disk_id_for(BlockKey key) const;

  /// The logical position of a block on its disk (the stripe row, offset
  /// by the file's placement hash): used by the distance-seek model.
  [[nodiscard]] std::uint64_t lba_for(BlockKey key) const;

  [[nodiscard]] SimFuture<Done> read(BlockKey key, int priority,
                                     DiskOpRef* ref = nullptr,
                                     std::uint64_t span = 0) {
    Disk& d = disk_for(key);
    Disk::OpId id = 0;
    auto fut = d.read_block(priority, &id, lba_for(key), span);
    if (ref != nullptr) *ref = DiskOpRef{&d, id};
    return fut;
  }
  [[nodiscard]] SimFuture<Done> write(BlockKey key, int priority,
                                      std::uint64_t span = 0) {
    return disk_for(key).write_block(priority, nullptr, lba_for(key), span);
  }

  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(disks_.size());
  }
  [[nodiscard]] Disk& disk(DiskId id) { return *disks_[raw(id)]; }

  /// Attach a trace sink to every spindle and name their tracks.
  void set_trace(TraceSink* sink);

  /// Place spindle i in engine domain `first + i` (the driver maps one
  /// domain per disk so shards can service spindles in parallel).  Must be
  /// called before any operation is submitted.
  void set_domains(DomainId first) {
    for (std::size_t i = 0; i < disks_.size(); ++i)
      disks_[i]->set_domain(static_cast<DomainId>(first + i));
  }

  /// Aggregate statistics over all spindles.
  [[nodiscard]] DiskStats total_stats() const;
  void reset_stats();

 private:
  std::vector<std::unique_ptr<Disk>> disks_;
};

}  // namespace lap
