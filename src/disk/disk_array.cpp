#include "disk/disk_array.hpp"

#include <cstdint>
#include <memory>

#include "obs/trace_event.hpp"

namespace lap {

DiskArray::DiskArray(Engine& eng, DiskConfig cfg, std::uint32_t disks) {
  LAP_EXPECTS(disks >= 1);
  disks_.reserve(disks);
  for (std::uint32_t i = 0; i < disks; ++i) {
    disks_.push_back(std::make_unique<Disk>(eng, cfg));
  }
}

DiskId DiskArray::disk_id_for(BlockKey key) const {
  // Offset each file's stripe start by a hash of the file id so that the
  // first blocks of all files do not pile onto disk 0.
  const std::uint64_t h = BlockKeyHash{}(BlockKey{key.file, 0});
  return DiskId{static_cast<std::uint32_t>((h + key.index) % disks_.size())};
}

Disk& DiskArray::disk_for(BlockKey key) { return *disks_[raw(disk_id_for(key))]; }

std::uint64_t DiskArray::lba_for(BlockKey key) const {
  // Consecutive stripe rows of a file are adjacent on each spindle; files
  // start at hash-spread positions.
  const std::uint64_t base = BlockKeyHash{}(BlockKey{key.file, 0}) % (1u << 19);
  return base + key.index / disks_.size();
}

void DiskArray::set_trace(TraceSink* sink) {
  if (sink != nullptr) {
    sink->name_process(tracks::kDiskPid, "disks");
    for (std::uint32_t i = 0; i < disks_.size(); ++i) {
      sink->name_thread(tracks::kDiskPid, i + 1,
                        "disk " + std::to_string(i));
    }
  }
  for (std::uint32_t i = 0; i < disks_.size(); ++i) {
    disks_[i]->set_trace(sink, i);
  }
}

DiskStats DiskArray::total_stats() const {
  DiskStats total;
  for (const auto& d : disks_) {
    total.block_reads += d->stats().block_reads;
    total.block_writes += d->stats().block_writes;
    total.prefetch_reads += d->stats().prefetch_reads;
    total.boosts += d->stats().boosts;
    total.busy_time += d->stats().busy_time;
  }
  return total;
}

void DiskArray::reset_stats() {
  for (auto& d : disks_) d->stats().reset();
}

}  // namespace lap
