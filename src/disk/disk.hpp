// Single-disk model: a served queue with (priority, FIFO) ordering and a
// latency + bandwidth service time, per the paper's DIMEMAS disk model.
// The seek latency differs for reads and writes (Table 1: 10.5 / 12.5 ms).
//
// Demand operations always precede queued prefetches ("prefetching a block
// will never be done if other operations are waiting to be done on the same
// disk"); an in-progress operation is never preempted.  A queued operation
// can be *boosted* to a more urgent priority: when a demand request catches
// an in-flight prefetch of the same block, the cache layer upgrades it
// rather than waiting behind the whole queue.
//
// Sharding: the disk's queue, arm and stats live in a simulation *domain*
// (default 0).  submit()/boost() run in the caller's (model) domain and
// only draw an operation id before posting the admission into the disk's
// domain; completions post back into the *submitting* domain after
// `completion_latency` (the controller-interrupt delay), so a per-node
// model domain gets its own completions.  Ids are engine tokens — (origin
// domain, per-domain sequence) — identical at every shard count, and the
// queue discipline is (priority, submission time, id), so the schedule is
// the same whether the disk shares the model's shard or runs epochs ahead
// on its own (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/domain.hpp"
#include "sim/engine.hpp"
#include "sim/future.hpp"
#include "sim/priority.hpp"
#include "util/units.hpp"

namespace lap {

class TraceSink;

struct DiskConfig {
  Bytes block_size;
  Bandwidth bandwidth;
  SimTime read_seek;
  SimTime write_seek;

  // Optional refinement over the paper's flat DIMEMAS model: make the seek
  // grow with the arm travel distance.  The flat seeks above then act as
  // the *average* (per Table 1); an operation at distance d over a disk of
  // `cylinders` logical positions costs
  //     seek(d) = avg_seek * (0.4 + 1.2 * d / cylinders)
  // i.e. 0.4x for a neighbouring track up to 1.6x full-stroke, averaging
  // ~1.0x under uniform traffic.
  bool distance_seeks = false;
  std::uint64_t cylinders = 1u << 20;

  // Delay between the platter finishing and the host observing completion
  // (controller + interrupt path).  Zero by default so bare-engine tests
  // keep exact Table 1 timings; the machine presets set it, and it bounds
  // the sharded engine's epoch lookahead from below — a disk completion
  // must never land inside the epoch that issued it.
  SimTime completion_latency;
};

struct DiskStats {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;
  std::uint64_t prefetch_reads = 0;
  std::uint64_t boosts = 0;
  SimTime busy_time;

  [[nodiscard]] std::uint64_t accesses() const {
    return block_reads + block_writes;
  }
  void reset() { *this = DiskStats{}; }
};

class Disk {
 public:
  /// Identifies a submitted operation for later boost(); valid until the
  /// operation starts service.
  using OpId = std::uint64_t;

  Disk(Engine& eng, DiskConfig cfg);
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Place this disk's service state in engine domain `d`.  Must be called
  /// before any operation is submitted.
  void set_domain(DomainId d) { domain_ = d; }
  [[nodiscard]] DomainId domain() const { return domain_; }

  /// Enqueue a block read; resolves when the data is in memory.  The
  /// operation's id is written to *id when requested.  `lba` is the
  /// logical position, used only by the distance-seek model.  `span` tags
  /// the operation with a provenance span ref (obs/span.hpp, 0 = none): at
  /// completion the queue wait and service window are attributed to it.
  [[nodiscard]] SimFuture<Done> read_block(int priority, OpId* id = nullptr,
                                           std::uint64_t lba = 0,
                                           std::uint64_t span = 0);

  /// Enqueue a block write; resolves when the block is on the platter.
  [[nodiscard]] SimFuture<Done> write_block(int priority, OpId* id = nullptr,
                                            std::uint64_t lba = 0,
                                            std::uint64_t span = 0);

  /// Raise a queued operation to `priority` (no-op if it already started,
  /// completed, or was at least as urgent).
  void boost(OpId id, int priority);

  [[nodiscard]] SimTime read_service_time() const;
  [[nodiscard]] SimTime write_service_time() const;
  /// Service time for an access at `lba` given the current arm position
  /// (identical to the flat model when distance_seeks is off).
  [[nodiscard]] SimTime service_time(bool write, std::uint64_t lba) const;

  /// Attach the trace sink; `index` labels this spindle's track.  Each
  /// service window is emitted as a span with its seek/transfer breakdown.
  void set_trace(TraceSink* sink, std::uint32_t index) {
    trace_ = sink;
    trace_index_ = index;
  }

  [[nodiscard]] const DiskStats& stats() const { return stats_; }
  [[nodiscard]] DiskStats& stats() { return stats_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return in_service_ || !queue_.empty(); }

 private:
  // One flat queue entry carries the whole operation: the former
  // (priority, id) -> Op map plus the id -> key side-map collapsed into a
  // single sorted vector, so completing or boosting an operation is one
  // lookup with no bookkeeping to keep in sync.  The vector is sorted
  // DESCENDING by (priority, id) — the most urgent operation sits at
  // back(), making the hot dequeue an O(1) pop_back; inserts shift the
  // (short) tail of less-urgent entries.
  struct Op {
    int priority;
    OpId id;
    bool write;
    std::uint64_t lba;
    SimPromise<Done> done;
    std::uint64_t span;  // provenance span ref; 0 = untagged
    SimTime submitted;   // enqueue time, for queue-wait attribution
    DomainId reply;      // submitting model domain: completions post here
  };

  [[nodiscard]] SimFuture<Done> submit(bool write, std::uint64_t lba,
                                       int priority, OpId* id,
                                       std::uint64_t span);
  // Disk-domain half of submit()/boost().
  void admit(Op op);
  void apply_boost(OpId id, int priority);
  void maybe_start();
  /// Insert `op` keeping the descending (priority, submitted, id) order.
  void enqueue(Op op);
  /// Debug invariant: the queue is strictly descending (unique ids).
  void check_queue() const;

  Engine* eng_;
  DiskConfig cfg_;
  TraceSink* trace_ = nullptr;
  std::uint32_t trace_index_ = 0;
  DomainId domain_ = 0;
  bool in_service_ = false;
  std::uint64_t arm_position_ = 0;  // distance-seek model state
  std::vector<Op> queue_;  // sorted descending; back() = most urgent
  DiskStats stats_;
};

}  // namespace lap
