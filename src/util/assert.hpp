// Contract checks in the spirit of the C++ Core Guidelines' Expects/Ensures.
// They stay on in release builds: the simulator's correctness depends on
// invariants (event ordering, cache residency counts) that are cheap to
// check relative to the work they guard.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lap::detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violated: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}
}  // namespace lap::detail

#define LAP_EXPECTS(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                            \
          : ::lap::detail::contract_failure("Precondition", #cond, __FILE__, \
                                            __LINE__))

#define LAP_ENSURES(cond)                                                    \
  ((cond) ? static_cast<void>(0)                                             \
          : ::lap::detail::contract_failure("Postcondition", #cond, __FILE__, \
                                            __LINE__))

#define LAP_ASSERT(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                         \
          : ::lap::detail::contract_failure("Invariant", #cond, __FILE__, \
                                            __LINE__))
