// A small work-stealing-free thread pool used by the sweep harness to run
// independent simulations in parallel.  Each simulation is single-threaded
// and deterministic; parallelism lives entirely at this outer level.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lap {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future reports its result/exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace lap
