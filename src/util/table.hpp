// ASCII table / series printers shared by the bench harness so every
// figure/table reproduction prints in one consistent format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lap {

/// A rectangular table with a header row; renders column-aligned text.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render `value` with fixed precision.
[[nodiscard]] std::string fmt_double(double value, int precision = 3);

}  // namespace lap
