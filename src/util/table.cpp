#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace lap {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  LAP_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(fmt_double(v, precision));
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << row[c];
      os << std::right;
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace lap
