// Strong unit types used throughout the simulator.
//
// Simulated time is kept as an integral count of nanoseconds so that event
// ordering is exact and runs are bit-reproducible across platforms; all the
// paper's parameters (microsecond startups, millisecond seeks, MB/s
// bandwidths) are representable without rounding surprises.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace lap {

/// A point in (or duration of) simulated time, in nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime ns(std::int64_t v) { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime us(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e3)};
  }
  [[nodiscard]] static constexpr SimTime ms(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime sec(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e9)};
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ns_ + b.ns_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ns_ - b.ns_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ns_ * k}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }
  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  constexpr explicit SimTime(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// Byte counts (sizes of requests, buffers, files).
using Bytes = std::uint64_t;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ULL; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ULL * 1024ULL; }

/// A transfer rate. Stored as bytes/second; constructed from MB/s as the
/// paper specifies its parameters (decimal MB, matching DIMEMAS usage).
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  [[nodiscard]] static constexpr Bandwidth mb_per_s(double v) {
    return Bandwidth{v * 1e6};
  }
  [[nodiscard]] constexpr double bytes_per_sec() const { return bps_; }

  /// Time to move `n` bytes at this rate.
  [[nodiscard]] constexpr SimTime transfer_time(Bytes n) const {
    if (bps_ <= 0.0) return SimTime::zero();
    return SimTime::sec(static_cast<double>(n) / bps_);
  }

 private:
  constexpr explicit Bandwidth(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

/// Identifier strong typedefs.  Using distinct types keeps node ids, file
/// ids and process ids from being mixed up at call sites.
enum class NodeId : std::uint32_t {};
enum class FileId : std::uint32_t {};
enum class ProcId : std::uint32_t {};
enum class DiskId : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t raw(NodeId v) { return static_cast<std::uint32_t>(v); }
[[nodiscard]] constexpr std::uint32_t raw(FileId v) { return static_cast<std::uint32_t>(v); }
[[nodiscard]] constexpr std::uint32_t raw(ProcId v) { return static_cast<std::uint32_t>(v); }
[[nodiscard]] constexpr std::uint32_t raw(DiskId v) { return static_cast<std::uint32_t>(v); }

[[nodiscard]] std::string to_string(SimTime t);

}  // namespace lap
