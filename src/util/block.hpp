// Block identity: a (file, block-index) pair.  All caching, prefetching and
// disk placement is expressed in these units.
#pragma once

#include <cstdint>
#include <functional>

#include "util/units.hpp"

namespace lap {

struct BlockKey {
  FileId file{};
  std::uint32_t index = 0;

  friend constexpr bool operator==(BlockKey, BlockKey) = default;
  friend constexpr auto operator<=>(BlockKey, BlockKey) = default;
};

struct BlockKeyHash {
  [[nodiscard]] std::size_t operator()(BlockKey k) const noexcept {
    std::uint64_t v =
        (static_cast<std::uint64_t>(raw(k.file)) << 32) | k.index;
    // splitmix64 finaliser
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(v ^ (v >> 31));
  }
};

}  // namespace lap
