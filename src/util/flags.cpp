#include "util/flags.hpp"

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace lap {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

std::string Flags::get(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::optional<std::string> Flags::get_opt(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Flags::has(const std::string& key) const { return values_.contains(key); }

}  // namespace lap
