#include "util/rng.hpp"

#include <cmath>
#include <cstdint>

namespace lap {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  LAP_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LAP_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Unbiased rejection sampling (Lemire's method simplified).
  const std::uint64_t limit = span == 0 ? 0 : (~std::uint64_t{0}) - ((~std::uint64_t{0}) % span) - 1;
  std::uint64_t v = next();
  if (span != 0) {
    while (v > limit) v = next();
    v %= span;
  }
  return lo + static_cast<std::int64_t>(v);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  LAP_EXPECTS(mean > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal() {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  LAP_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  LAP_EXPECTS(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  LAP_EXPECTS(n > 0);
  // Inverse-CDF on the fly is O(n); acceptable because n (distinct files per
  // popularity class) is small.  For large n we approximate via the
  // continuous inverse: rank ~ u^(-1/(s-1)) when s > 1.
  if (n == 1) return 0;
  if (s > 1.0 && n > 4096) {
    const double u = uniform();
    const double r = std::pow(1.0 - u, -1.0 / (s - 1.0)) - 1.0;
    auto rank = static_cast<std::size_t>(r);
    return rank >= n ? n - 1 : rank;
  }
  double total = 0.0;
  for (std::size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(static_cast<double>(i), s);
  double target = uniform() * total;
  for (std::size_t i = 1; i <= n; ++i) {
    target -= 1.0 / std::pow(static_cast<double>(i), s);
    if (target <= 0.0) return i - 1;
  }
  return n - 1;
}

Rng Rng::split() { return Rng{next() ^ 0xd1b54a32d192ed03ULL}; }

}  // namespace lap
