// Open-addressing hash containers for the simulator's hot paths.
//
// FlatHashMap / FlatHashSet store their elements inline in one contiguous
// slot array probed linearly from the hashed bucket — no per-node
// allocation, no pointer chasing — which is what block lookup, in-flight
// tracking and per-file prefetch state spend most of their time doing.
// Deletion uses tombstones; a rehash (growth or same-capacity compaction
// once tombstones pile up) drops every tombstone.
//
// Iterator / pointer stability rules (narrower than std::unordered_map —
// these are the rules the unit tests pin down):
//   - insert/emplace/operator[] invalidate ALL iterators and element
//     pointers when they trigger a rehash (growth keeps the load factor
//     under ~0.75 including tombstones);
//   - erase() invalidates only the erased element; every other slot stays
//     put (tombstone deletion never moves elements);
//   - reserve(n) up front makes subsequent inserts up to n elements
//     rehash-free, so pointers handed out stay valid until then.
//
// Iteration order is slot order: deterministic for a deterministic
// insert/erase history (the simulator's requirement), but arbitrary and
// NOT insertion order — nothing order-sensitive may iterate these tables.
//
// Integer keys are finalised with splitmix64 (std::hash of an int is the
// identity in common stdlibs; linear probing needs the bits spread), and
// BlockKey reuses its existing splitmix64-based hasher.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace lap {

/// splitmix64 finaliser: the default bit-mixer for integer keys.
[[nodiscard]] constexpr std::uint64_t mix_u64(std::uint64_t v) noexcept {
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

/// Default hash: splitmix64 for integers/enums, std::hash otherwise.
template <typename K>
struct FlatHash {
  [[nodiscard]] std::size_t operator()(const K& k) const noexcept {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return static_cast<std::size_t>(mix_u64(static_cast<std::uint64_t>(k)));
    } else {
      return std::hash<K>{}(k);
    }
  }
};

namespace flat_detail {

enum : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

}  // namespace flat_detail

template <typename K, typename V, typename Hash = FlatHash<K>,
          typename Eq = std::equal_to<K>>
class FlatHashMap {
 public:
  using value_type = std::pair<K, V>;
  static_assert(alignof(std::pair<K, V>) <= alignof(std::max_align_t),
                "slot storage relies on operator new's default alignment");

  class const_iterator;

  class iterator {
   public:
    iterator() = default;
    value_type& operator*() const { return map_->slot(pos_); }
    value_type* operator->() const { return &map_->slot(pos_); }
    iterator& operator++() {
      pos_ = map_->next_full(pos_ + 1);
      return *this;
    }
    friend bool operator==(iterator a, iterator b) { return a.pos_ == b.pos_; }

   private:
    friend class FlatHashMap;
    friend class const_iterator;
    iterator(FlatHashMap* m, std::size_t pos) : map_(m), pos_(pos) {}
    FlatHashMap* map_ = nullptr;
    std::size_t pos_ = 0;
  };

  class const_iterator {
   public:
    const_iterator() = default;
    const_iterator(iterator it) : map_(it.map_), pos_(it.pos_) {}
    const value_type& operator*() const { return map_->slot(pos_); }
    const value_type* operator->() const { return &map_->slot(pos_); }
    const_iterator& operator++() {
      pos_ = map_->next_full(pos_ + 1);
      return *this;
    }
    friend bool operator==(const_iterator a, const_iterator b) {
      return a.pos_ == b.pos_;
    }

   private:
    friend class FlatHashMap;
    const_iterator(const FlatHashMap* m, std::size_t pos)
        : map_(m), pos_(pos) {}
    const FlatHashMap* map_ = nullptr;
    std::size_t pos_ = 0;
  };

  FlatHashMap() = default;
  FlatHashMap(FlatHashMap&& o) noexcept { swap(o); }
  FlatHashMap& operator=(FlatHashMap&& o) noexcept {
    if (this != &o) {
      destroy_all();
      reset_storage();
      swap(o);
    }
    return *this;
  }
  FlatHashMap(const FlatHashMap& o) { copy_from(o); }
  FlatHashMap& operator=(const FlatHashMap& o) {
    if (this != &o) {
      destroy_all();
      reset_storage();
      copy_from(o);
    }
    return *this;
  }
  ~FlatHashMap() { destroy_all(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

  iterator begin() { return iterator{this, next_full(0)}; }
  iterator end() { return iterator{this, cap_}; }
  const_iterator begin() const { return const_iterator{this, next_full(0)}; }
  const_iterator end() const { return const_iterator{this, cap_}; }

  /// Ensure `n` elements fit without any further rehash.
  void reserve(std::size_t n) {
    std::size_t want = 8;
    // Growth threshold is 3/4 of capacity; pick the smallest power of two
    // whose threshold covers n.
    while (want - want / 4 < n + 1) want *= 2;
    if (want > cap_) rehash(want);
  }

  [[nodiscard]] bool contains(const K& key) const {
    return find_pos(key) != cap_;
  }

  iterator find(const K& key) {
    const std::size_t pos = find_pos(key);
    return iterator{this, pos};
  }
  const_iterator find(const K& key) const {
    return const_iterator{this, find_pos(key)};
  }

  /// Insert (key, V(args...)) if absent; returns {slot, inserted}.
  template <typename KK, typename... Args>
  std::pair<iterator, bool> emplace(KK&& key, Args&&... args) {
    if (need_grow()) rehash(cap_ == 0 ? 8 : cap_ * 2);
    const std::size_t h = hash_(key);
    std::size_t pos = probe_start(h);
    std::size_t insert_at = cap_;
    for (;;) {
      const std::uint8_t st = state_[pos];
      if (st == flat_detail::kEmpty) {
        if (insert_at == cap_) insert_at = pos;
        break;
      }
      if (st == flat_detail::kTombstone) {
        if (insert_at == cap_) insert_at = pos;
      } else if (eq_(slot(pos).first, key)) {
        return {iterator{this, pos}, false};
      }
      pos = (pos + 1) & (cap_ - 1);
    }
    if (state_[insert_at] == flat_detail::kTombstone) --tombstones_;
    ::new (static_cast<void*>(&slot(insert_at)))
        value_type(std::piecewise_construct,
                   std::forward_as_tuple(std::forward<KK>(key)),
                   std::forward_as_tuple(std::forward<Args>(args)...));
    state_[insert_at] = flat_detail::kFull;
    ++size_;
    return {iterator{this, insert_at}, true};
  }

  std::pair<iterator, bool> insert(value_type v) {
    return emplace(std::move(v.first), std::move(v.second));
  }

  V& operator[](const K& key) { return emplace(key).first->second; }

  /// Erase by iterator: O(1), tombstones the slot, moves nothing else.
  void erase(iterator it) {
    LAP_EXPECTS(it.map_ == this && it.pos_ < cap_ &&
                state_[it.pos_] == flat_detail::kFull);
    slot(it.pos_).~value_type();
    state_[it.pos_] = flat_detail::kTombstone;
    --size_;
    ++tombstones_;
  }

  bool erase(const K& key) {
    const std::size_t pos = find_pos(key);
    if (pos == cap_) return false;
    erase(iterator{this, pos});
    return true;
  }

  void clear() {
    destroy_all();
    if (cap_ != 0) {
      std::memset(state_.data(), flat_detail::kEmpty, cap_);
    }
    size_ = 0;
    tombstones_ = 0;
  }

 private:
  [[nodiscard]] value_type& slot(std::size_t pos) {
    return *std::launder(
        reinterpret_cast<value_type*>(storage_.data() + pos * sizeof(value_type)));
  }
  [[nodiscard]] const value_type& slot(std::size_t pos) const {
    return *std::launder(reinterpret_cast<const value_type*>(
        storage_.data() + pos * sizeof(value_type)));
  }

  [[nodiscard]] std::size_t probe_start(std::size_t h) const {
    return h & (cap_ - 1);
  }

  [[nodiscard]] std::size_t next_full(std::size_t pos) const {
    while (pos < cap_ && state_[pos] != flat_detail::kFull) ++pos;
    return pos < cap_ ? pos : cap_;
  }

  [[nodiscard]] std::size_t find_pos(const K& key) const {
    if (cap_ == 0) return cap_;
    std::size_t pos = probe_start(hash_(key));
    for (;;) {
      const std::uint8_t st = state_[pos];
      if (st == flat_detail::kEmpty) return cap_;
      if (st == flat_detail::kFull && eq_(slot(pos).first, key)) return pos;
      pos = (pos + 1) & (cap_ - 1);
    }
  }

  [[nodiscard]] bool need_grow() const {
    // Load factor (full + tombstone) capped at 3/4.
    return cap_ == 0 || (size_ + tombstones_ + 1) * 4 > cap_ * 3;
  }

  void rehash(std::size_t new_cap) {
    // Plain growth doubles; if live elements fit comfortably, the same
    // capacity is kept and only tombstones are squeezed out.
    while (new_cap - new_cap / 4 < size_ + 1) new_cap *= 2;
    std::vector<std::uint8_t> old_state = std::move(state_);
    std::vector<unsigned char> old_storage = std::move(storage_);
    const std::size_t old_cap = cap_;
    cap_ = new_cap;
    state_.assign(cap_, flat_detail::kEmpty);
    storage_.resize(cap_ * sizeof(value_type));
    size_ = 0;
    tombstones_ = 0;
    for (std::size_t i = 0; i < old_cap; ++i) {
      if (old_state[i] != flat_detail::kFull) continue;
      auto* v = std::launder(reinterpret_cast<value_type*>(
          old_storage.data() + i * sizeof(value_type)));
      emplace(std::move(v->first), std::move(v->second));
      v->~value_type();
    }
  }

  void destroy_all() {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (state_[i] == flat_detail::kFull) slot(i).~value_type();
    }
  }

  void reset_storage() {
    state_.clear();
    storage_.clear();
    cap_ = 0;
    size_ = 0;
    tombstones_ = 0;
  }

  void copy_from(const FlatHashMap& o) {
    hash_ = o.hash_;
    eq_ = o.eq_;
    reserve(o.size_);
    for (const auto& kv : o) emplace(kv.first, kv.second);
  }

  void swap(FlatHashMap& o) noexcept {
    std::swap(state_, o.state_);
    std::swap(storage_, o.storage_);
    std::swap(cap_, o.cap_);
    std::swap(size_, o.size_);
    std::swap(tombstones_, o.tombstones_);
    std::swap(hash_, o.hash_);
    std::swap(eq_, o.eq_);
  }

  std::vector<std::uint8_t> state_;
  std::vector<unsigned char> storage_;  // cap_ * sizeof(value_type), raw
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  [[no_unique_address]] Hash hash_{};
  [[no_unique_address]] Eq eq_{};
};

/// Set counterpart: a FlatHashMap whose mapped value is empty.
template <typename K, typename Hash = FlatHash<K>, typename Eq = std::equal_to<K>>
class FlatHashSet {
 public:
  struct Unit {};

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] bool contains(const K& key) const { return map_.contains(key); }
  void reserve(std::size_t n) { map_.reserve(n); }
  bool insert(const K& key) { return map_.emplace(key).second; }
  bool erase(const K& key) { return map_.erase(key); }
  void clear() { map_.clear(); }

  /// Iterates keys in slot order (see FlatHashMap's ordering caveat).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& kv : map_) fn(kv.first);
  }

 private:
  FlatHashMap<K, Unit, Hash, Eq> map_;
};

}  // namespace lap
