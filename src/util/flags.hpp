// Tiny command-line flag parser (--key=value / --key value / --bool) used by
// the examples and bench binaries; keeps them dependency-free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lap {

class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  /// Value of `--key` if it was passed, nullopt otherwise — for flags whose
  /// mere presence changes behaviour (e.g. output paths).
  [[nodiscard]] std::optional<std::string> get_opt(
      const std::string& key) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lap
