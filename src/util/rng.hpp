// Deterministic random number generation for workload synthesis.
//
// xoshiro256** with a splitmix64 seeder: fast, high quality, and —
// unlike std::mt19937 distributions — fully reproducible across standard
// library implementations because we implement the distributions ourselves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace lap {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Log-normal given the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller.
  double normal();

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_pick(std::span<const double> weights);

  /// Zipf-like pick over [0, n): rank r chosen with probability ~ 1/(r+1)^s.
  /// Used for file-popularity skew in the Sprite workload.
  std::size_t zipf(std::size_t n, double s);

  /// Derive an independent child stream (for per-process generators).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace lap
