// Minimal leveled logger.  The simulator is silent by default; verbosity is
// raised by tests/examples that want to watch the event flow.
#pragma once

#include <sstream>
#include <string_view>

#include "util/units.hpp"

namespace lap {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

namespace log_detail {
LogLevel& global_level();
/// Thread-safe: the whole line (level + simulated time + message) is
/// rendered into one buffer and written under a lock, so concurrent sweep
/// workers never interleave mid-line.
void emit(LogLevel level, std::string_view msg);

/// RAII: publish a simulated clock to this thread's log lines.  The engine
/// installs its clock for the duration of run(), so LAP_LOG output carries
/// the simulated timestamp of the event being processed; sweeps run each
/// simulation on its own thread, so the binding is per thread.
class ScopedSimClock {
 public:
  explicit ScopedSimClock(const SimTime* now);
  ~ScopedSimClock();
  ScopedSimClock(const ScopedSimClock&) = delete;
  ScopedSimClock& operator=(const ScopedSimClock&) = delete;

 private:
  const SimTime* prev_;
};
[[nodiscard]] const SimTime* current_sim_clock();
}  // namespace log_detail

/// Set the process-wide log threshold; returns the previous value.
LogLevel set_log_level(LogLevel level);
[[nodiscard]] bool log_enabled(LogLevel level);

/// Usage: LAP_LOG(kInfo) << "cache size " << n;
#define LAP_LOG(level)                                            \
  if (!::lap::log_enabled(::lap::LogLevel::level)) {              \
  } else                                                          \
    ::lap::LogStream(::lap::LogLevel::level)

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_detail::emit(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace lap
