#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>

#include "util/assert.hpp"

namespace lap {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void Accumulator::reset() { *this = Accumulator{}; }

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), log_lo_(std::log(lo)),
      log_ratio_(static_cast<double>(buckets) / (std::log(hi) - std::log(lo))),
      counts_(buckets + 2, 0) {
  LAP_EXPECTS(lo > 0.0 && hi > lo && buckets > 0);
}

std::size_t Histogram::bucket_for(double x) const {
  if (x < lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const auto b = static_cast<std::size_t>((std::log(x) - log_lo_) * log_ratio_);
  return std::min(b + 1, counts_.size() - 2);
}

void Histogram::add(double x) {
  ++counts_[bucket_for(x)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  LAP_EXPECTS(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      if (i == 0) return lo_;
      if (i == counts_.size() - 1) return hi_;
      // Upper boundary of bucket i-1.
      return std::exp(log_lo_ + static_cast<double>(i) / log_ratio_);
    }
  }
  return hi_;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << total_ << " p50=" << quantile(0.5) << " p90=" << quantile(0.9)
     << " p99=" << quantile(0.99);
  return os.str();
}

std::string to_string(SimTime t) {
  std::ostringstream os;
  if (t.nanos() < 1000) {
    os << t.nanos() << "ns";
  } else if (t.nanos() < 1'000'000) {
    os << t.micros() << "us";
  } else if (t.nanos() < 1'000'000'000) {
    os << t.millis() << "ms";
  } else {
    os << t.seconds() << "s";
  }
  return os.str();
}

}  // namespace lap
