#include "util/thread_pool.hpp"

#include <functional>

namespace lap {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace lap
