// Slab: an index-addressed object pool with a free-list.
//
// The event engine stores each scheduled callback in a slab slot and keeps
// only a small POD {time, seq, slot} in its heap, so pushing the heap around
// never moves the (fat, potentially allocating) callback objects, and a
// freed slot's object is reused by assignment — for std::function that
// means the small-buffer storage is recycled instead of reallocated.
//
// Slots are recycled, not destroyed: free(id) leaves a moved-from object in
// place (its destructor runs when the slot is reused or the slab dies).
// take(id) moves the object out and frees the slot in one step.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace lap {

template <typename T>
class Slab {
 public:
  using Id = std::uint32_t;

  /// Store `value`, returning the slot id.
  Id put(T&& value) {
    if (free_.empty()) {
      items_.push_back(std::move(value));
      return static_cast<Id>(items_.size() - 1);
    }
    const Id id = free_.back();
    free_.pop_back();
    items_[id] = std::move(value);
    return id;
  }

  [[nodiscard]] T& operator[](Id id) { return items_[id]; }
  [[nodiscard]] const T& operator[](Id id) const { return items_[id]; }

  /// Move the object out and recycle its slot.
  [[nodiscard]] T take(Id id) {
    T value = std::move(items_[id]);
    free_.push_back(id);
    return value;
  }

  /// Recycle a slot without taking the object (it is overwritten on reuse).
  void free(Id id) { free_.push_back(id); }

  /// Live objects (slots handed out and not yet freed).
  [[nodiscard]] std::size_t size() const { return items_.size() - free_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }
  /// Total slots ever created (high-water mark of concurrent liveness).
  [[nodiscard]] std::size_t slots() const { return items_.size(); }

  void reserve(std::size_t n) {
    items_.reserve(n);
    free_.reserve(n);
  }

 private:
  std::vector<T> items_;
  std::vector<Id> free_;
};

}  // namespace lap
