// A flat d-ary min-heap (d = 4 by default).
//
// Replaces std::priority_queue in the event engine and the resource
// queues.  A 4-ary layout halves the tree depth of a binary heap and keeps
// the four children of a node in one or two cache lines, which is where a
// discrete-event simulator's pop-heavy workload spends its time.  Entries
// are intended to be small PODs ({time, seq, slot-index}); the heavy
// payload lives in a Slab addressed by the slot index.
//
// `Less` is a strict-weak order; the heap pops the SMALLEST element (note
// std::priority_queue's comparator convention is the inverse).  Ties must
// be broken by the caller's comparator (the engine uses a strictly
// increasing sequence number) — the heap itself is not stable.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace lap {

template <typename T, typename Less, std::size_t Arity = 4>
class DaryHeap {
  static_assert(Arity >= 2);

 public:
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  [[nodiscard]] const T& top() const {
    LAP_EXPECTS(!items_.empty());
    return items_.front();
  }

  void push(T item) {
    items_.push_back(std::move(item));
    sift_up(items_.size() - 1);
  }

  // Bottom-up deletion (Wegener): walk the hole down the min-child path
  // without comparing against the replacement, then bubble the replacement
  // up from the bottom.  The replacement comes from the back of the array —
  // almost always large — so it rarely rises more than a level, and the
  // descent does Arity-1 comparisons per level instead of Arity.  With a
  // strict total order (all our comparators break ties by sequence number)
  // the popped sequence is identical to the classic top-down sift.
  void pop() {
    LAP_EXPECTS(!items_.empty());
    const std::size_t n = items_.size() - 1;
    T item = std::move(items_.back());
    items_.pop_back();
    if (n == 0) return;
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first_child = hole * Arity + 1;
      if (first_child >= n) break;
      const std::size_t last_child =
          first_child + Arity <= n ? first_child + Arity : n;
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (less_(items_[c], items_[best])) best = c;
      }
      items_[hole] = std::move(items_[best]);
      hole = best;
    }
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / Arity;
      if (!less_(item, items_[parent])) break;
      items_[hole] = std::move(items_[parent]);
      hole = parent;
    }
    items_[hole] = std::move(item);
  }

 private:
  void sift_up(std::size_t i) {
    T item = std::move(items_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!less_(item, items_[parent])) break;
      items_[i] = std::move(items_[parent]);
      i = parent;
    }
    items_[i] = std::move(item);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = items_.size();
    T item = std::move(items_[i]);
    for (;;) {
      const std::size_t first_child = i * Arity + 1;
      if (first_child >= n) break;
      const std::size_t last_child =
          first_child + Arity <= n ? first_child + Arity : n;
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (less_(items_[c], items_[best])) best = c;
      }
      if (!less_(items_[best], item)) break;
      items_[i] = std::move(items_[best]);
      i = best;
    }
    items_[i] = std::move(item);
  }

  std::vector<T> items_;
  [[no_unique_address]] Less less_{};
};

}  // namespace lap
