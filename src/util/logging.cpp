#include "util/logging.hpp"

#include <cstdio>
#include <mutex>
#include <string>

namespace lap {
namespace log_detail {
namespace {

// Per-thread simulated clock (installed by Engine::run via ScopedSimClock).
thread_local const SimTime* tls_sim_clock = nullptr;

std::mutex& emit_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel& global_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

ScopedSimClock::ScopedSimClock(const SimTime* now) : prev_(tls_sim_clock) {
  tls_sim_clock = now;
}

ScopedSimClock::~ScopedSimClock() { tls_sim_clock = prev_; }

const SimTime* current_sim_clock() { return tls_sim_clock; }

void emit(LogLevel level, std::string_view msg) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  // Render the complete line first, then write it in one locked call:
  // concurrent sweep workers may log at the same instant.
  char prefix[64];
  if (const SimTime* now = tls_sim_clock) {
    std::snprintf(prefix, sizeof prefix, "[%-5s %12.6fs] ",
                  kNames[static_cast<int>(level)], now->seconds());
  } else {
    std::snprintf(prefix, sizeof prefix, "[%-5s] ",
                  kNames[static_cast<int>(level)]);
  }
  std::string line;
  line.reserve(sizeof prefix + msg.size() + 1);
  line += prefix;
  line.append(msg.data(), msg.size());
  line += '\n';

  std::lock_guard lock(emit_mutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace log_detail

LogLevel set_log_level(LogLevel level) {
  LogLevel prev = log_detail::global_level();
  log_detail::global_level() = level;
  return prev;
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_detail::global_level());
}

}  // namespace lap
