// Online statistics accumulators used by the metrics layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace lap {

/// Streaming mean/min/max/variance (Welford).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double total() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-boundary histogram with exact percentile queries up to bucket
/// resolution; used for read-latency distributions.
class Histogram {
 public:
  /// Buckets are log-spaced between lo and hi (both > 0), `buckets` of them,
  /// plus an underflow and an overflow bucket.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  /// Approximate value at quantile q in [0,1] (upper bucket boundary).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::string summary() const;

 private:
  [[nodiscard]] std::size_t bucket_for(double x) const;

  double lo_;
  double hi_;
  double log_lo_;
  double log_ratio_;
  std::vector<std::uint64_t> counts_;  // [underflow, b0..bn-1, overflow]
  std::uint64_t total_ = 0;
};

}  // namespace lap
