#include "fs/xfs/xfs.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "obs/span.hpp"
#include "util/assert.hpp"

namespace lap {

namespace {
constexpr DomainId kDirDomain = 0;

constexpr std::uint64_t pack(BlockKey key) {
  return (static_cast<std::uint64_t>(raw(key.file)) << 32) | key.index;
}
}  // namespace

// Per-node view handed to that node's PrefetchManager.  Availability is
// deliberately *local*: a copy cached at a peer does not stop this node
// from prefetching its own — which is exactly why the paper observed xFS
// prefetching about twice as many blocks as PAFS on shared files.
struct Xfs::NodeHost final : PrefetchHost {  // lap-owns: node
  Xfs* fs;  // lap-owns: value — back-pointer, not owned state
  NodeId node;

  NodeHost(Xfs* f, NodeId n) : fs(f), node(n) {}

  [[nodiscard]] bool block_available(BlockKey key) const override {
    return fs->local_available(node, key);
  }
  SimFuture<Done> prefetch_fetch(BlockKey key, NodeId) override {
    return fs->prefetch_fetch(node, key);
  }
  [[nodiscard]] std::uint32_t file_blocks(FileId file) const override {
    return fs->node_[raw(node)].files->blocks(file);
  }
};

Xfs::Xfs(Engine& eng, Network& net, DiskArray& disks, FileModel& files,
         MetricsSet& metrics, XfsConfig cfg, std::uint32_t nodes,
         const StopFlag* stop_flags)
    : eng_(&eng),
      net_(&net),
      disks_(&disks),
      files_(&files),
      metrics_(&metrics),
      cfg_(cfg),
      nodes_(nodes),
      stop_flags_(stop_flags),
      rng_(cfg.seed) {
  LAP_EXPECTS(nodes >= 1);
  LAP_EXPECTS(stop_flags != nullptr);
  LAP_EXPECTS(cfg.cache_blocks_per_node >= 1);
  node_.resize(nodes);
  mgr_cpus_.reserve(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    NodeState& ns = node_[i];
    ns.pool = std::make_unique<BufferPool>(cfg.cache_blocks_per_node);
    ns.host = std::make_unique<NodeHost>(this, NodeId{i});
    // Site i+1 keeps xFS's per-node managers distinct from PAFS's single
    // global site 0 in the trace stream.  Each node's daemons poll the
    // stop flag of that node's own domain.
    const bool* stop = &stop_flags[node_domain(i)].stop;
    ns.prefetcher = std::make_unique<PrefetchManager>(
        eng, cfg.algorithm, *ns.host, stop, /*site=*/i + 1);
    // The replica starts as a copy of the (already seeded) authoritative
    // model; extend/purge mails keep it current.
    ns.files = std::make_unique<FileModel>(files);
    ns.sync = std::make_unique<SyncDaemon>(
        eng, cfg.sync_interval, [this, i] { flush_tick(NodeId{i}); }, stop);
    mgr_cpus_.push_back(std::make_unique<Resource>(eng));
  }
}

Xfs::~Xfs() = default;

void Xfs::reseed_replicas() {
  for (NodeState& ns : node_) *ns.files = *files_;
}

void Xfs::start_sync_daemon() {
  for (std::uint32_t i = 0; i < nodes_; ++i) {
    eng_->post_at(node_domain(i), SimTime::zero(),
                  [this, i] { node_[i].sync->start(); });
  }
}

void Xfs::set_trace(TraceSink* sink) {
  trace_ = sink;
  for (std::uint32_t i = 0; i < nodes_; ++i) {
    node_[i].prefetcher->set_trace(sink);
    node_[i].pool->set_trace(sink, eng_, tracks::node_cache(NodeId{i}));
  }
}

void Xfs::trace_wasted(const CacheEntry& e) {
  trace_->instant("prefetch", "prefetch.wasted", tracks::file(e.key.file),
                  eng_->now(), {{"block", e.key.index}});
}

NodeId Xfs::manager_node(FileId file) const {
  return node_for_file(file, nodes_);
}

PrefetchCounters Xfs::prefetch_counters_total() const {
  PrefetchCounters total;
  for (const NodeState& ns : node_) {
    const PrefetchCounters& c = ns.prefetcher->counters();
    total.issued += c.issued;
    total.fallback_issued += c.fallback_issued;
    total.retargets += c.retargets;
    total.streams_started += c.streams_started;
    total.degree_raises += c.degree_raises;
    total.degree_clamps += c.degree_clamps;
    // Peak is a high-water mark, not a flow: max-merge across nodes.
    total.degree_peak = std::max(total.degree_peak, c.degree_peak);
  }
  return total;
}

const BufferPool& Xfs::pool(NodeId node) const {
  return *node_[raw(node)].pool;
}

bool Xfs::local_available(NodeId node, BlockKey key) const {
  const NodeState& ns = node_[raw(node)];
  return ns.pool->contains(key) || ns.in_flight.contains(key);
}

std::vector<NodeId>* Xfs::holders(BlockKey key) {
  auto fit = dir_.find(raw(key.file));
  if (fit == dir_.end()) return nullptr;
  auto bit = fit->second.find(key.index);
  if (bit == fit->second.end()) return nullptr;
  return &bit->second;
}

void Xfs::dir_add(BlockKey key, NodeId node) {
  auto& list = dir_[raw(key.file)][key.index];
  if (std::find(list.begin(), list.end(), node) == list.end()) {
    list.push_back(node);  // back = most recent holder
  }
}

void Xfs::dir_remove(BlockKey key, NodeId node) {
  auto fit = dir_.find(raw(key.file));
  if (fit == dir_.end()) return;
  auto bit = fit->second.find(key.index);
  if (bit == fit->second.end()) return;
  std::erase(bit->second, node);
  if (bit->second.empty()) fit->second.erase(bit);
  if (fit->second.empty()) dir_.erase(fit);
}

void Xfs::dir_drop_file(FileId file) { dir_.erase(raw(file)); }

void Xfs::post_dir_add(NodeId from, BlockKey key) {
  // Registration is validated at application time: the file may have been
  // deleted while the mail was on the wire.
  eng_->post_at(kDirDomain,
                eng_->now() + net_->note_message(from, manager_node(key.file)),
                [this, key, from] {
                  if (files_->exists(key.file)) dir_add(key, from);
                });
}

void Xfs::post_dir_remove(NodeId from, BlockKey key) {
  eng_->post_at(kDirDomain,
                eng_->now() + net_->note_message(from, manager_node(key.file)),
                [this, key, from] { dir_remove(key, from); });
}

SimFuture<Done> Xfs::open(ProcId pid, NodeId client, FileId file) {
  node_[raw(client)].prefetcher->on_open(pid, client, file);
  SimPromise<Done> done(*eng_);
  control_task(client, file, done);
  return done.future();
}

SimFuture<Done> Xfs::close(ProcId, NodeId client, FileId file) {
  SimPromise<Done> done(*eng_);
  control_task(client, file, done);
  return done.future();
}

SimTask Xfs::control_task(NodeId client, FileId file, SimPromise<Done> done) {
  const NodeId mgr = manager_node(file);
  co_await eng_->hop_to(kDirDomain,
                        eng_->now() + net_->note_message(client, mgr));
  {
    auto guard = co_await mgr_cpus_[raw(mgr)]->scoped(prio::kDemand);
    co_await eng_->delay(cfg_.manager_op_cpu);
  }
  co_await eng_->hop_to(node_domain(raw(client)),
                        eng_->now() + net_->note_message(mgr, client));
  done.set_value(Done{});
}

SimFuture<Done> Xfs::read(ProcId pid, NodeId client, FileId file, Bytes offset,
                          Bytes length) {
  SimPromise<Done> done(*eng_);
  read_task(pid, client, file, offset, length, done);
  return done.future();
}

SimTask Xfs::read_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                       Bytes length, SimPromise<Done> done) {
  const SimTime t0 = eng_->now();
  const BlockRange range = node_[raw(client)].files->range(file, offset, length);
  if (range.count == 0) {
    done.set_value(Done{});
    co_return;
  }
  co_await eng_->delay(cfg_.local_op_cpu);
  node_[raw(client)].prefetcher->on_request(pid, client, file, range.first,
                                            range.count);
  auto joiner = std::make_shared<Joiner>(*eng_, range.count);
  for (std::uint32_t i = 0; i < range.count; ++i) {
    read_block(client, BlockKey{file, range.first + i}, joiner);
  }
  co_await joiner->future();
  if (trace_ != nullptr) {
    trace_->complete("fs", "fs.read", tracks::node_fs(client), t0,
                     eng_->now() - t0,
                     {{"file", raw(file)},
                      {"first", range.first},
                      {"blocks", range.count}});
  }
  done.set_value(Done{});
}

SimTask Xfs::read_block(NodeId client, BlockKey key,
                        std::shared_ptr<Joiner> joiner) {
  NodeState& ns = node_[raw(client)];
  Metrics& metrics = met(client);
  const Bytes block_size = ns.files->block_size();
  SpanCollector* const sp = eng_->span_collector();
  const SpanRef dspan =
      sp != nullptr ? sp->demand_started(client, key, eng_->now()) : 0;
  bool classified = false;
  for (;;) {
    if (CacheEntry* e = ns.pool->find(key)) {
      ns.pool->touch(key);
      if (e->prefetched && !e->referenced) {
        metrics.on_prefetch_first_use();
        ns.prefetcher->feedback_used();
        if (sp != nullptr) sp->settle_used(e->span, eng_->now());
        if (trace_ != nullptr) {
          trace_->instant("prefetch", "prefetch.used", tracks::file(key.file),
                          eng_->now(), {{"block", key.index}});
        }
      }
      e->referenced = true;
      if (!classified) {
        metrics.on_hit_local();
        if (sp != nullptr) {
          sp->demand_classified(dspan, DemandClass::kHitLocal, eng_->now());
        }
      }
      co_await net_->copy(client, client, block_size, prio::kDemand, dspan);
      break;
    }
    if (auto it = ns.in_flight.find(key); it != ns.in_flight.end()) {
      if (!classified) {
        metrics.on_hit_inflight();
        if (sp != nullptr) {
          sp->demand_classified(dspan, DemandClass::kHitInflight, eng_->now());
        }
      }
      classified = true;
      // Never wait at prefetch priority for a demanded block.
      it->second.op.boost(prio::kDemand);
      auto bc = it->second.bc;
      co_await bc->wait();
      continue;
    }
    if (!ns.files->exists(key.file)) break;

    auto bc = std::make_shared<Broadcast>(*eng_);
    ns.in_flight.emplace(key, InFlight{bc, DiskOpRef{}});

    // Consult the directory: one message hop into the directory domain,
    // manager CPU on the manager node's processor.
    const NodeId mgr = manager_node(key.file);
    co_await eng_->hop_to(kDirDomain,
                          eng_->now() + net_->note_message(client, mgr));
    {
      auto guard = co_await mgr_cpus_[raw(mgr)]->scoped(prio::kDemand);
      co_await eng_->delay(cfg_.manager_op_cpu);
    }

    // Pick the most recent peer holding the block (never ourselves: local
    // lookup already failed).
    NodeId peer{};
    bool have_peer = false;
    if (files_->exists(key.file)) {
      if (std::vector<NodeId>* h = holders(key)) {
        for (auto it = h->rbegin(); it != h->rend(); ++it) {
          if (*it != client) {
            peer = *it;
            have_peer = true;
            break;
          }
        }
      }
    }

    bool via_peer = false;
    if (have_peer) {
      // The manager forwards the request to the peer; the peer ships the
      // block straight to the client (or nacks if it evicted the copy
      // while the forward was on the wire — the client then falls back to
      // its disk path).
      co_await eng_->hop_to(node_domain(raw(peer)),
                            eng_->now() + net_->note_message(mgr, peer));
      if (node_[raw(peer)].pool->contains(key)) {
        via_peer = true;
        co_await net_->begin_transfer(peer, client, block_size, prio::kDemand,
                                      dspan);
        co_await eng_->hop_to(
            node_domain(raw(client)),
            eng_->now() + net_->copy_latency(peer, client, block_size));
      } else {
        co_await eng_->hop_to(node_domain(raw(client)),
                              eng_->now() + net_->note_message(peer, client));
      }
    } else {
      co_await eng_->hop_to(node_domain(raw(client)),
                            eng_->now() + net_->note_message(mgr, client));
    }

    // Back at the client: classify on arrival.
    if (via_peer) {
      if (!classified) {
        metrics.on_hit_remote();
        if (sp != nullptr) {
          sp->demand_classified(dspan, DemandClass::kHitRemote, eng_->now());
        }
      }
      classified = true;
    } else {
      if (!classified) {
        metrics.on_miss();
        if (sp != nullptr) {
          sp->demand_classified(dspan, DemandClass::kMiss, eng_->now());
        }
      }
      classified = true;
      metrics.on_disk_read(/*prefetch=*/false);
      DiskOpRef op;
      auto fetch = disks_->read(key, prio::kDemand, &op, dspan);
      if (auto fit = ns.in_flight.find(key); fit != ns.in_flight.end()) {
        fit->second.op = op;
      }
      co_await fetch;
    }

    if (ns.files->exists(key.file)) {
      CacheEntry entry;
      entry.key = key;
      entry.home = client;
      entry.dirty_since = eng_->now();
      insert_at(client, entry);
      post_dir_add(client, key);
    }
    ns.in_flight.erase(key);
    bc->notify_all();
    co_await net_->copy(client, client, block_size, prio::kDemand, dspan);
    break;
  }
  if (sp != nullptr) sp->demand_done(dspan, eng_->now());
  joiner->arrive();
}

SimFuture<Done> Xfs::write(ProcId pid, NodeId client, FileId file, Bytes offset,
                           Bytes length) {
  SimPromise<Done> done(*eng_);
  write_task(pid, client, file, offset, length, done);
  return done.future();
}

SimTask Xfs::write_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                        Bytes length, SimPromise<Done> done) {
  const SimTime t0 = eng_->now();
  NodeState& ns = node_[raw(client)];
  if (!ns.files->exists(file) || length == 0) {
    done.set_value(Done{});
    co_return;
  }
  // The writer's replica grows immediately (it knows its own write); the
  // authoritative model and the other replicas follow via the ownership
  // round trip below.
  ns.files->extend(file, offset, length);
  const BlockRange range = ns.files->range(file, offset, length);
  co_await eng_->delay(cfg_.local_op_cpu);
  ns.prefetcher->on_request(pid, client, file, range.first, range.count);

  // Ownership round trip: the manager invalidates every other replica and
  // acknowledges only once all holders confirmed, so single-writer-dirty
  // still holds when the client marks its copies dirty afterwards.  The
  // grant stays "unconfirmed" until the client reports the local
  // application back — a later writer's invalidation of these blocks waits
  // behind that confirmation (see pending_grants_).
  bool granted = false;
  const NodeId mgr = manager_node(file);
  co_await eng_->hop_to(kDirDomain,
                        eng_->now() + net_->note_message(client, mgr));
  {
    auto guard = co_await mgr_cpus_[raw(mgr)]->scoped(prio::kDemand);
    co_await eng_->delay(cfg_.manager_op_cpu);
  }
  if (files_->exists(file)) {
    if (files_->extend(file, offset, length)) {
      // The file grew: update every other node's metadata replica.
      for (std::uint32_t n = 0; n < nodes_; ++n) {
        if (n == raw(client)) continue;
        eng_->post_at(node_domain(n),
                      eng_->now() + net_->note_message(mgr, NodeId{n}),
                      [this, n, file, offset, length] {
                        node_[n].files->extend(file, offset, length);
                      });
      }
    }
    std::vector<std::pair<NodeId, BlockKey>> invals;
    for (std::uint32_t i = 0; i < range.count; ++i) {
      const BlockKey key{file, range.first + i};
      if (std::vector<NodeId>* h = holders(key)) {
        const std::vector<NodeId> copy = *h;
        for (NodeId other : copy) {
          if (other == client) continue;
          invals.emplace_back(other, key);
          dir_remove(key, other);
        }
      }
      dir_add(key, client);
    }
    auto acks = std::make_shared<Joiner>(
        *eng_, static_cast<std::uint32_t>(invals.size()));
    for (const auto& [other, key] : invals) {
      post_or_defer_invalidation(other, key, acks);
    }
    for (std::uint32_t i = 0; i < range.count; ++i) {
      ++pending_grants_[pack(BlockKey{file, range.first + i})][raw(client)]
            .grants;
    }
    granted = true;
    co_await acks->future();
  }
  co_await eng_->hop_to(node_domain(raw(client)),
                        eng_->now() + net_->note_message(mgr, client));

  // Back at the client: apply the write to the (now exclusively owned)
  // local copies.
  for (std::uint32_t i = 0; i < range.count; ++i) {
    const BlockKey key{file, range.first + i};
    if (CacheEntry* e = ns.pool->find(key)) {
      ns.pool->touch(key);
      if (e->prefetched && !e->referenced) {
        // First demand use via a write still counts: the prefetched buffer
        // absorbed the write-allocate, so the arrival settles as used.
        met(client).on_prefetch_first_use();
        ns.prefetcher->feedback_used();
        if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
          sp->settle_used(e->span, eng_->now());
        }
        if (trace_ != nullptr) {
          trace_->instant("prefetch", "prefetch.used", tracks::file(key.file),
                          eng_->now(), {{"block", key.index}});
        }
      }
      e->referenced = true;
      ns.pool->mark_dirty(key, eng_->now());
    } else {
      CacheEntry entry;
      entry.key = key;
      entry.home = client;
      entry.dirty = true;
      entry.dirty_since = eng_->now();
      insert_at(client, entry);
    }
  }
  if (granted) {
    // Confirm the application to the manager: invalidations queued behind
    // this grant may now revoke (and flush) the freshly dirtied copies.
    eng_->post_at(kDirDomain, eng_->now() + net_->note_message(client, mgr),
                  [this, client, file, first = range.first,
                   count = range.count] {
                    write_confirmed(client, file, first, count);
                  });
  }
  co_await net_->copy(client, client, range.count * ns.files->block_size(),
                      prio::kDemand);
  if (trace_ != nullptr) {
    trace_->complete("fs", "fs.write", tracks::node_fs(client), t0,
                     eng_->now() - t0,
                     {{"file", raw(file)},
                      {"first", range.first},
                      {"blocks", range.count}});
  }
  done.set_value(Done{});
}

void Xfs::post_or_defer_invalidation(NodeId other, BlockKey key,
                                     std::shared_ptr<Joiner> acks) {
  auto send = [this, other, key, acks] {
    eng_->post_at(node_domain(raw(other)),
                  eng_->now() + net_->note_message(manager_node(key.file),
                                                   other),
                  [this, other, key, acks] {
                    apply_invalidation(other, key, acks);
                  });
  };
  if (auto fit = pending_grants_.find(pack(key));
      fit != pending_grants_.end()) {
    if (auto nit = fit->second.find(raw(other)); nit != fit->second.end()) {
      nit->second.deferred.push_back(std::move(send));
      return;
    }
  }
  send();
}

void Xfs::write_confirmed(NodeId owner, FileId file, std::uint32_t first,
                          std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t key = pack(BlockKey{file, first + i});
    auto fit = pending_grants_.find(key);
    if (fit == pending_grants_.end()) continue;
    auto nit = fit->second.find(raw(owner));
    if (nit == fit->second.end()) continue;
    if (--nit->second.grants != 0) continue;
    std::vector<std::function<void()>> deferred =
        std::move(nit->second.deferred);
    fit->second.erase(nit);
    if (fit->second.empty()) pending_grants_.erase(fit);
    for (auto& send : deferred) send();
  }
}

void Xfs::apply_invalidation(NodeId node, BlockKey key,
                             std::shared_ptr<Joiner> acks) {
  if (auto victim = node_[raw(node)].pool->erase(key)) {
    if (victim->prefetched && !victim->referenced) {
      met(node).on_prefetch_wasted();
      node_[raw(node)].prefetcher->feedback_wasted();
      if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
        sp->settle_wasted(victim->span, WasteReason::kInvalidated, eng_->now());
      }
      if (trace_ != nullptr) trace_wasted(*victim);
    }
    // A dirty victim here is the previous owner's just-applied write being
    // revoked (this invalidation waited behind its confirmation, see
    // pending_grants_): the copy leaves through the disk.
    if (victim->dirty) {
      met(node).on_disk_write(key);
      (void)disks_->write(key, prio::kSync);
    }
  }
  eng_->post_at(kDirDomain,
                eng_->now() + net_->note_message(node, manager_node(key.file)),
                [acks] { acks->arrive(); });
}

SimFuture<Done> Xfs::remove(ProcId, NodeId client, FileId file) {
  SimPromise<Done> done(*eng_);
  remove_task(client, file, done);
  return done.future();
}

SimTask Xfs::remove_task(NodeId client, FileId file, SimPromise<Done> done) {
  const NodeId mgr = manager_node(file);
  co_await eng_->hop_to(kDirDomain,
                        eng_->now() + net_->note_message(client, mgr));
  {
    auto guard = co_await mgr_cpus_[raw(mgr)]->scoped(prio::kDemand);
    co_await eng_->delay(cfg_.manager_op_cpu);
  }
  if (files_->exists(file)) {
    dir_drop_file(file);
    files_->remove(file);
    // Purge every node.  The client's own purge shares the reply's origin
    // and latency, so it lands strictly before the remove() resolves.
    for (std::uint32_t n = 0; n < nodes_; ++n) {
      eng_->post_at(node_domain(n),
                    eng_->now() + net_->note_message(mgr, NodeId{n}),
                    [this, n, file] { purge_file(NodeId{n}, file); });
    }
  }
  co_await eng_->hop_to(node_domain(raw(client)),
                        eng_->now() + net_->note_message(mgr, client));
  done.set_value(Done{});
}

void Xfs::purge_file(NodeId node, FileId file) {
  NodeState& ns = node_[raw(node)];
  ns.prefetcher->on_file_deleted(file);
  for (const CacheEntry& e : ns.pool->drop_file(file)) {
    if (e.prefetched && !e.referenced) {
      met(node).on_prefetch_wasted();
      ns.prefetcher->feedback_wasted();
      if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
        sp->settle_wasted(e.span, WasteReason::kDeleted, eng_->now());
      }
      if (trace_ != nullptr) trace_wasted(e);
    }
  }
  ns.files->remove(file);
}

SimFuture<Done> Xfs::prefetch_fetch(NodeId node, BlockKey key) {
  SimPromise<Done> done(*eng_);
  prefetch_task(node, key, done);
  return done.future();
}

SimTask Xfs::prefetch_task(NodeId node, BlockKey key, SimPromise<Done> done) {
  SpanCollector* const sp = eng_->span_collector();
  const std::uint32_t site = raw(node) + 1;
  NodeState& ns = node_[raw(node)];
  Metrics& metrics = met(node);
  const Bytes block_size = ns.files->block_size();
  if (local_available(node, key) || !ns.files->exists(key.file)) {
    if (sp != nullptr) sp->prefetch_elided(site, key, eng_->now());
    if (trace_ != nullptr) {
      trace_->instant("prefetch", "prefetch.elided", tracks::file(key.file),
                      eng_->now(),
                      {{"site", raw(node) + 1}, {"block", key.index}});
    }
    done.set_value(Done{});
    co_return;
  }
  const SimTime t0 = eng_->now();
  auto bc = std::make_shared<Broadcast>(*eng_);
  ns.in_flight.emplace(key, InFlight{bc, DiskOpRef{}});
  // Capture the issue span before leaving this node's shard: the open-span
  // table is per-shard state.
  const std::uint64_t pspan = sp != nullptr ? sp->open_ref(site, key) : 0;

  // Like any miss, a prefetch goes through the manager: if a peer already
  // caches the block it is copied over the network instead of re-read from
  // disk — several nodes prefetching the same (shared) file cost network
  // transfers, not duplicate disk accesses.
  const NodeId mgr = manager_node(key.file);
  co_await eng_->hop_to(kDirDomain,
                        eng_->now() + net_->note_message(node, mgr));
  {
    auto guard = co_await mgr_cpus_[raw(mgr)]->scoped(prio::kPrefetch);
    co_await eng_->delay(cfg_.manager_op_cpu);
  }
  NodeId peer{};
  bool have_peer = false;
  if (files_->exists(key.file)) {
    if (std::vector<NodeId>* h = holders(key)) {
      for (auto it = h->rbegin(); it != h->rend(); ++it) {
        if (*it != node) {
          peer = *it;
          have_peer = true;
          break;
        }
      }
    }
  }
  bool via_peer = false;
  if (have_peer) {
    co_await eng_->hop_to(node_domain(raw(peer)),
                          eng_->now() + net_->note_message(mgr, peer));
    if (node_[raw(peer)].pool->contains(key)) {
      via_peer = true;
      co_await net_->begin_transfer(peer, node, block_size, prio::kPrefetch,
                                    pspan);
      co_await eng_->hop_to(
          node_domain(raw(node)),
          eng_->now() + net_->copy_latency(peer, node, block_size));
    } else {
      co_await eng_->hop_to(node_domain(raw(node)),
                            eng_->now() + net_->note_message(peer, node));
    }
  } else {
    co_await eng_->hop_to(node_domain(raw(node)),
                          eng_->now() + net_->note_message(mgr, node));
  }
  if (!via_peer) {
    metrics.on_disk_read(/*prefetch=*/true);
    DiskOpRef op;
    auto fetch = disks_->read(key, cfg_.prefetch_priority, &op, pspan);
    if (auto fit = ns.in_flight.find(key); fit != ns.in_flight.end()) {
      fit->second.op = op;
    }
    co_await fetch;
  }
  ns.in_flight.erase(key);
  metrics.on_prefetch_arrived();
  const SpanRef span =
      sp != nullptr ? sp->prefetch_arrived(site, key, via_peer, eng_->now())
                    : 0;
  if (!ns.files->exists(key.file) || ns.pool->contains(key)) {
    // The file vanished mid-fetch, or a local write (or forwarded copy)
    // claimed the buffer while we waited: settle this arrival as wasted so
    // arrived == used + wasted still reconciles, and skip the directory
    // registration — an entry for a buffer we never inserted would go
    // stale.
    metrics.on_prefetch_wasted();
    ns.prefetcher->feedback_wasted();
    if (sp != nullptr) {
      sp->settle_wasted(span, WasteReason::kSuperseded, eng_->now());
    }
    if (trace_ != nullptr) {
      trace_->instant("prefetch", "prefetch.wasted", tracks::file(key.file),
                      eng_->now(), {{"block", key.index}});
    }
  } else {
    CacheEntry entry;
    entry.key = key;
    entry.home = node;
    entry.prefetched = true;
    entry.dirty_since = eng_->now();
    entry.span = span;
    insert_at(node, entry);
    post_dir_add(node, key);
  }
  if (trace_ != nullptr) {
    trace_->complete("prefetch", "prefetch.fetch", tracks::file(key.file), t0,
                     eng_->now() - t0,
                     {{"site", raw(node) + 1},
                      {"block", key.index},
                      {"node", raw(node)},
                      {"via_peer", static_cast<int>(via_peer)}});
  }
  bc->notify_all();
  done.set_value(Done{});
}

SimTask Xfs::forward_task(NodeId from, NodeId to, CacheEntry victim) {
  const Bytes block_size = node_[raw(from)].files->block_size();
  co_await net_->begin_transfer(from, to, block_size, prio::kSync);
  co_await eng_->hop_to(node_domain(raw(to)),
                        eng_->now() + net_->copy_latency(from, to, block_size));
  NodeState& ns = node_[raw(to)];
  if (!ns.files->exists(victim.key.file) || ns.pool->contains(victim.key)) {
    // The file vanished, or the destination acquired its own copy while the
    // forward was on the wire — merging the forwarded buffer in would fold
    // two prefetch provenances into one entry and break the arrived ==
    // used + wasted reconciliation, so the redundant copy settles here.
    if (victim.prefetched && !victim.referenced) {
      met(to).on_prefetch_wasted();
      ns.prefetcher->feedback_wasted();
      if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
        sp->settle_wasted(victim.span, WasteReason::kForwardDropped,
                          eng_->now());
      }
      if (trace_ != nullptr) trace_wasted(victim);
    }
    co_return;
  }
  victim.home = to;
  ++victim.recirculation;
  insert_at(to, victim);
  post_dir_add(to, victim.key);
}

void Xfs::insert_at(NodeId node, const CacheEntry& entry) {
  if (!node_[raw(node)].files->exists(entry.key.file)) return;
  if (auto victim = node_[raw(node)].pool->insert(entry)) {
    handle_eviction(node, *victim);
  }
}

void Xfs::handle_eviction(NodeId node, const CacheEntry& victim) {
  if (victim.dirty) {
    if (victim.prefetched && !victim.referenced) {
      met(node).on_prefetch_wasted();
      node_[raw(node)].prefetcher->feedback_wasted();
      if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
        sp->settle_wasted(victim.span, WasteReason::kEvicted, eng_->now());
      }
      if (trace_ != nullptr) trace_wasted(victim);
    }
    met(node).on_disk_write(victim.key);
    (void)disks_->write(victim.key, prio::kSync);
    post_dir_remove(node, victim.key);
    return;
  }
  // N-chance: give the last copy of a block another life on a random peer.
  // Only the directory knows whether this was the last copy, so the victim
  // travels to the directory domain for the verdict; a forwarded block
  // stays in the cooperative cache, so it is not (yet) counted as a wasted
  // prefetch.
  if (nodes_ >= 2 && victim.recirculation < cfg_.nchance_recirculation &&
      node_[raw(node)].files->exists(victim.key.file)) {
    eng_->post_at(
        kDirDomain,
        eng_->now() + net_->note_message(node, manager_node(victim.key.file)),
        [this, node, victim] { dir_evicted(node, victim); });
    return;
  }
  post_dir_remove(node, victim.key);
  if (victim.prefetched && !victim.referenced) {
    met(node).on_prefetch_wasted();
    node_[raw(node)].prefetcher->feedback_wasted();
    if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
      sp->settle_wasted(victim.span, WasteReason::kEvicted, eng_->now());
    }
    if (trace_ != nullptr) trace_wasted(victim);
  }
}

void Xfs::dir_evicted(NodeId node, CacheEntry victim) {
  dir_remove(victim.key, node);
  const std::vector<NodeId>* h = holders(victim.key);
  const NodeId mgr = manager_node(victim.key.file);
  if ((h == nullptr || h->empty()) && files_->exists(victim.key.file)) {
    // Last copy: draw a peer (never the evictor) and tell the evictor to
    // forward — the RNG stays directory-domain state, so every shard count
    // sees the same draw sequence.
    NodeId peer{static_cast<std::uint32_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(nodes_) - 2))};
    if (raw(peer) >= raw(node)) peer = NodeId{raw(peer) + 1};
    eng_->post_at(node_domain(raw(node)),
                  eng_->now() + net_->note_message(mgr, node),
                  [this, node, peer, victim] {
                    if (trace_ != nullptr) {
                      trace_->instant("cache", "cache.nchance_forward",
                                      tracks::node_cache(node), eng_->now(),
                                      {{"file", raw(victim.key.file)},
                                       {"block", victim.key.index},
                                       {"to", raw(peer)}});
                    }
                    forward_task(node, peer, victim);
                  });
    return;
  }
  eng_->post_at(node_domain(raw(node)),
                eng_->now() + net_->note_message(mgr, node),
                [this, node, victim] { drop_victim(node, victim); });
}

void Xfs::drop_victim(NodeId node, const CacheEntry& victim) {
  if (victim.prefetched && !victim.referenced) {
    met(node).on_prefetch_wasted();
    node_[raw(node)].prefetcher->feedback_wasted();
    if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
      sp->settle_wasted(victim.span, WasteReason::kEvicted, eng_->now());
    }
    if (trace_ != nullptr) trace_wasted(victim);
  }
}

void Xfs::provide_hints(ProcId pid, NodeId client, FileId file,
                        std::vector<BlockRequest> hints) {
  node_[raw(client)].prefetcher->provide_hints(pid, file, std::move(hints));
}

void Xfs::flush_tick(NodeId node) {
  BufferPool& pool = *node_[raw(node)].pool;
  std::vector<BlockKey> dirty;
  dirty.reserve(pool.dirty_count());
  pool.for_each_dirty([&](const CacheEntry& e) { dirty.push_back(e.key); });
  for (const BlockKey& key : dirty) {
    pool.mark_clean(key);
    met(node).on_disk_write(key);
    (void)disks_->write(key, prio::kSync);
  }
}

bool Xfs::directory_consistent() const {
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    bool ok = true;
    node_[n].pool->for_each([&](const CacheEntry& e) {
      auto fit = dir_.find(raw(e.key.file));
      if (fit == dir_.end()) {
        ok = false;
        return;
      }
      auto bit = fit->second.find(e.key.index);
      if (bit == fit->second.end() ||
          std::find(bit->second.begin(), bit->second.end(), NodeId{n}) ==
              bit->second.end()) {
        ok = false;
      }
    });
    if (!ok) return false;
  }
  // And the reverse: directory entries point at nodes that hold the block.
  for (const auto& [file, blocks] : dir_) {
    for (const auto& [index, holders] : blocks) {
      for (NodeId holder : holders) {
        if (raw(holder) >= nodes_) return false;
        if (!node_[raw(holder)].pool->contains(
                BlockKey{FileId{file}, index})) {
          return false;
        }
      }
    }
  }
  return true;
}

void Xfs::finalize() {
  SpanCollector* const sp = eng_->span_collector();
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    Metrics& metrics = metrics_->node(n);
    node_[n].pool->for_each([&](const CacheEntry& e) {
      if (e.prefetched && !e.referenced) {
        metrics.on_prefetch_wasted();
        if (sp != nullptr) {
          sp->settle_wasted(e.span, WasteReason::kShutdown, eng_->now());
        }
        if (trace_ != nullptr) trace_wasted(e);
      }
      if (e.dirty) metrics.on_disk_write(e.key);
    });
  }
}

}  // namespace lap
