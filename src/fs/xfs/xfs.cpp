#include "fs/xfs/xfs.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/span.hpp"
#include "util/assert.hpp"

namespace lap {

// Per-node view handed to that node's PrefetchManager.  Availability is
// deliberately *local*: a copy cached at a peer does not stop this node
// from prefetching its own — which is exactly why the paper observed xFS
// prefetching about twice as many blocks as PAFS on shared files.
struct Xfs::NodeHost final : PrefetchHost {
  Xfs* fs;
  NodeId node;

  NodeHost(Xfs* f, NodeId n) : fs(f), node(n) {}

  [[nodiscard]] bool block_available(BlockKey key) const override {
    return fs->local_available(node, key);
  }
  SimFuture<Done> prefetch_fetch(BlockKey key, NodeId) override {
    return fs->prefetch_fetch(node, key);
  }
  [[nodiscard]] std::uint32_t file_blocks(FileId file) const override {
    return fs->files_->blocks(file);
  }
};

Xfs::Xfs(Engine& eng, Network& net, DiskArray& disks, FileModel& files,
         Metrics& metrics, XfsConfig cfg, std::uint32_t nodes,
         const bool* stop_flag)
    : eng_(&eng),
      net_(&net),
      disks_(&disks),
      files_(&files),
      metrics_(&metrics),
      cfg_(cfg),
      nodes_(nodes),
      stop_flag_(stop_flag),
      rng_(cfg.seed) {
  LAP_EXPECTS(nodes >= 1);
  LAP_EXPECTS(stop_flag != nullptr);
  LAP_EXPECTS(cfg.cache_blocks_per_node >= 1);
  node_.resize(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    NodeState& ns = node_[i];
    ns.pool = std::make_unique<BufferPool>(cfg.cache_blocks_per_node);
    ns.host = std::make_unique<NodeHost>(this, NodeId{i});
    // Site i+1 keeps xFS's per-node managers distinct from PAFS's single
    // global site 0 in the trace stream.
    ns.prefetcher = std::make_unique<PrefetchManager>(
        eng, cfg.algorithm, *ns.host, stop_flag, /*site=*/i + 1);
    ns.cpu = std::make_unique<Resource>(eng);
  }
  sync_ = std::make_unique<SyncDaemon>(
      eng, cfg.sync_interval, [this] { flush_tick(); }, stop_flag);
}

Xfs::~Xfs() = default;

void Xfs::start_sync_daemon() { sync_->start(); }

void Xfs::set_trace(TraceSink* sink) {
  trace_ = sink;
  for (std::uint32_t i = 0; i < nodes_; ++i) {
    node_[i].prefetcher->set_trace(sink);
    node_[i].pool->set_trace(sink, eng_, tracks::node_cache(NodeId{i}));
  }
}

void Xfs::trace_wasted(const CacheEntry& e) {
  trace_->instant("prefetch", "prefetch.wasted", tracks::file(e.key.file),
                  eng_->now(), {{"block", e.key.index}});
}

NodeId Xfs::manager_node(FileId file) const {
  return node_for_file(file, nodes_);
}

PrefetchCounters Xfs::prefetch_counters_total() const {
  PrefetchCounters total;
  for (const NodeState& ns : node_) {
    const PrefetchCounters& c = ns.prefetcher->counters();
    total.issued += c.issued;
    total.fallback_issued += c.fallback_issued;
    total.retargets += c.retargets;
    total.streams_started += c.streams_started;
  }
  return total;
}

const BufferPool& Xfs::pool(NodeId node) const {
  return *node_[raw(node)].pool;
}

bool Xfs::local_available(NodeId node, BlockKey key) const {
  const NodeState& ns = node_[raw(node)];
  return ns.pool->contains(key) || ns.in_flight.contains(key);
}

std::vector<NodeId>* Xfs::holders(BlockKey key) {
  auto fit = dir_.find(raw(key.file));
  if (fit == dir_.end()) return nullptr;
  auto bit = fit->second.find(key.index);
  if (bit == fit->second.end()) return nullptr;
  return &bit->second;
}

void Xfs::dir_add(BlockKey key, NodeId node) {
  auto& list = dir_[raw(key.file)][key.index];
  if (std::find(list.begin(), list.end(), node) == list.end()) {
    list.push_back(node);  // back = most recent holder
  }
}

void Xfs::dir_remove(BlockKey key, NodeId node) {
  auto fit = dir_.find(raw(key.file));
  if (fit == dir_.end()) return;
  auto bit = fit->second.find(key.index);
  if (bit == fit->second.end()) return;
  std::erase(bit->second, node);
  if (bit->second.empty()) fit->second.erase(bit);
  if (fit->second.empty()) dir_.erase(fit);
}

void Xfs::dir_drop_file(FileId file) { dir_.erase(raw(file)); }

SimFuture<Done> Xfs::open(ProcId pid, NodeId client, FileId file) {
  node_[raw(client)].prefetcher->on_open(pid, client, file);
  SimPromise<Done> done(*eng_);
  control_task(client, file, done);
  return done.future();
}

SimFuture<Done> Xfs::close(ProcId, NodeId client, FileId file) {
  SimPromise<Done> done(*eng_);
  control_task(client, file, done);
  return done.future();
}

SimTask Xfs::control_task(NodeId client, FileId file, SimPromise<Done> done) {
  const NodeId mgr = manager_node(file);
  co_await net_->message(client, mgr);
  {
    auto guard = co_await node_[raw(mgr)].cpu->scoped(prio::kDemand);
    co_await eng_->delay(cfg_.manager_op_cpu);
  }
  co_await net_->message(mgr, client);
  done.set_value(Done{});
}

SimFuture<Done> Xfs::read(ProcId pid, NodeId client, FileId file, Bytes offset,
                          Bytes length) {
  SimPromise<Done> done(*eng_);
  read_task(pid, client, file, offset, length, done);
  return done.future();
}

SimTask Xfs::read_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                       Bytes length, SimPromise<Done> done) {
  const SimTime t0 = eng_->now();
  const BlockRange range = files_->range(file, offset, length);
  if (range.count == 0) {
    done.set_value(Done{});
    co_return;
  }
  co_await eng_->delay(cfg_.local_op_cpu);
  node_[raw(client)].prefetcher->on_request(pid, client, file, range.first,
                                            range.count);
  auto joiner = std::make_shared<Joiner>(*eng_, range.count);
  for (std::uint32_t i = 0; i < range.count; ++i) {
    read_block(client, BlockKey{file, range.first + i}, joiner);
  }
  co_await joiner->future();
  if (trace_ != nullptr) {
    trace_->complete("fs", "fs.read", tracks::node_fs(client), t0,
                     eng_->now() - t0,
                     {{"file", raw(file)},
                      {"first", range.first},
                      {"blocks", range.count}});
  }
  done.set_value(Done{});
}

SimTask Xfs::read_block(NodeId client, BlockKey key,
                        std::shared_ptr<Joiner> joiner) {
  NodeState& ns = node_[raw(client)];
  SpanCollector* const sp = eng_->span_collector();
  const SpanRef dspan =
      sp != nullptr ? sp->demand_started(client, key, eng_->now()) : 0;
  bool classified = false;
  for (;;) {
    if (CacheEntry* e = ns.pool->find(key)) {
      ns.pool->touch(key);
      if (e->prefetched && !e->referenced) {
        metrics_->on_prefetch_first_use();
        if (sp != nullptr) sp->settle_used(e->span, eng_->now());
        if (trace_ != nullptr) {
          trace_->instant("prefetch", "prefetch.used", tracks::file(key.file),
                          eng_->now(), {{"block", key.index}});
        }
      }
      e->referenced = true;
      if (!classified) {
        metrics_->on_hit_local();
        if (sp != nullptr) {
          sp->demand_classified(dspan, DemandClass::kHitLocal, eng_->now());
        }
      }
      co_await net_->copy(client, client, files_->block_size(), prio::kDemand,
                          dspan);
      break;
    }
    if (auto it = ns.in_flight.find(key); it != ns.in_flight.end()) {
      if (!classified) {
        metrics_->on_hit_inflight();
        if (sp != nullptr) {
          sp->demand_classified(dspan, DemandClass::kHitInflight, eng_->now());
        }
      }
      classified = true;
      // Never wait at prefetch priority for a demanded block.
      it->second.op.boost(prio::kDemand);
      auto bc = it->second.bc;
      co_await bc->wait();
      continue;
    }
    if (!files_->exists(key.file)) break;

    auto bc = std::make_shared<Broadcast>(*eng_);
    ns.in_flight.emplace(key, InFlight{bc, DiskOpRef{}});

    const NodeId mgr = manager_node(key.file);
    co_await net_->message(client, mgr);
    {
      auto guard = co_await node_[raw(mgr)].cpu->scoped(prio::kDemand);
      co_await eng_->delay(cfg_.manager_op_cpu);
    }

    // Pick the most recent peer holding the block (never ourselves: local
    // lookup already failed).
    NodeId peer{};
    bool have_peer = false;
    if (std::vector<NodeId>* h = holders(key)) {
      for (auto it = h->rbegin(); it != h->rend(); ++it) {
        if (*it != client) {
          peer = *it;
          have_peer = true;
          break;
        }
      }
    }

    if (have_peer) {
      if (!classified) {
        metrics_->on_hit_remote();
        if (sp != nullptr) {
          sp->demand_classified(dspan, DemandClass::kHitRemote, eng_->now());
        }
      }
      classified = true;
      co_await net_->message(mgr, peer);
      co_await net_->copy(peer, client, files_->block_size(), prio::kDemand,
                          dspan);
    } else {
      if (!classified) {
        metrics_->on_miss();
        if (sp != nullptr) {
          sp->demand_classified(dspan, DemandClass::kMiss, eng_->now());
        }
      }
      classified = true;
      metrics_->on_disk_read(/*prefetch=*/false);
      DiskOpRef op;
      auto fetch = disks_->read(key, prio::kDemand, &op, dspan);
      if (auto fit = ns.in_flight.find(key); fit != ns.in_flight.end()) {
        fit->second.op = op;
      }
      co_await fetch;
    }

    if (files_->exists(key.file)) {
      CacheEntry entry;
      entry.key = key;
      entry.home = client;
      entry.dirty_since = eng_->now();
      insert_at(client, entry);
      dir_add(key, client);
    }
    ns.in_flight.erase(key);
    bc->notify_all();
    co_await net_->copy(client, client, files_->block_size(), prio::kDemand,
                        dspan);
    break;
  }
  if (sp != nullptr) sp->demand_done(dspan, eng_->now());
  joiner->arrive();
}

SimFuture<Done> Xfs::write(ProcId pid, NodeId client, FileId file, Bytes offset,
                           Bytes length) {
  SimPromise<Done> done(*eng_);
  write_task(pid, client, file, offset, length, done);
  return done.future();
}

SimTask Xfs::write_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                        Bytes length, SimPromise<Done> done) {
  const SimTime t0 = eng_->now();
  if (!files_->exists(file) || length == 0) {
    done.set_value(Done{});
    co_return;
  }
  files_->extend(file, offset, length);
  const BlockRange range = files_->range(file, offset, length);
  co_await eng_->delay(cfg_.local_op_cpu);
  NodeState& ns = node_[raw(client)];
  ns.prefetcher->on_request(pid, client, file, range.first, range.count);

  bool invalidated_any = false;
  for (std::uint32_t i = 0; i < range.count; ++i) {
    const BlockKey key{file, range.first + i};
    if (CacheEntry* e = ns.pool->find(key)) {
      ns.pool->touch(key);
      if (e->prefetched && !e->referenced) {
        // First demand use via a write still counts: the prefetched buffer
        // absorbed the write-allocate, so the arrival settles as used.
        metrics_->on_prefetch_first_use();
        if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
          sp->settle_used(e->span, eng_->now());
        }
        if (trace_ != nullptr) {
          trace_->instant("prefetch", "prefetch.used", tracks::file(key.file),
                          eng_->now(), {{"block", key.index}});
        }
      }
      e->referenced = true;
      ns.pool->mark_dirty(key, eng_->now());
    } else {
      CacheEntry entry;
      entry.key = key;
      entry.home = client;
      entry.dirty = true;
      entry.dirty_since = eng_->now();
      insert_at(client, entry);
    }
    dir_add(key, client);
    // Writer invalidates every other replica (single-writer consistency).
    if (std::vector<NodeId>* h = holders(key)) {
      const std::vector<NodeId> copy = *h;
      for (NodeId other : copy) {
        if (other == client) continue;
        invalidated_any = true;
        if (auto victim = node_[raw(other)].pool->erase(key)) {
          if (victim->prefetched && !victim->referenced) {
            metrics_->on_prefetch_wasted();
            if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
              sp->settle_wasted(victim->span, WasteReason::kInvalidated,
                                eng_->now());
            }
            if (trace_ != nullptr) trace_wasted(*victim);
          }
          // An invalidated dirty replica cannot exist under single-writer
          // semantics, but stay safe and flush it if it does.
          if (victim->dirty) {
            metrics_->on_disk_write(key);
            (void)disks_->write(key, prio::kSync);
          }
        }
        dir_remove(key, other);
      }
    }
  }
  if (invalidated_any) {
    const NodeId mgr = manager_node(file);
    co_await net_->message(client, mgr);
    {
      auto guard = co_await node_[raw(mgr)].cpu->scoped(prio::kDemand);
      co_await eng_->delay(cfg_.manager_op_cpu);
    }
  }
  co_await net_->copy(client, client, range.count * files_->block_size(),
                      prio::kDemand);
  if (trace_ != nullptr) {
    trace_->complete("fs", "fs.write", tracks::node_fs(client), t0,
                     eng_->now() - t0,
                     {{"file", raw(file)},
                      {"first", range.first},
                      {"blocks", range.count}});
  }
  done.set_value(Done{});
}

SimFuture<Done> Xfs::remove(ProcId, NodeId client, FileId file) {
  SimPromise<Done> done(*eng_);
  remove_task(client, file, done);
  return done.future();
}

SimTask Xfs::remove_task(NodeId client, FileId file, SimPromise<Done> done) {
  const NodeId mgr = manager_node(file);
  co_await net_->message(client, mgr);
  {
    auto guard = co_await node_[raw(mgr)].cpu->scoped(prio::kDemand);
    co_await eng_->delay(cfg_.manager_op_cpu);
  }
  for (NodeState& ns : node_) {
    ns.prefetcher->on_file_deleted(file);
    for (const CacheEntry& e : ns.pool->drop_file(file)) {
      if (e.prefetched && !e.referenced) {
        metrics_->on_prefetch_wasted();
        if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
          sp->settle_wasted(e.span, WasteReason::kDeleted, eng_->now());
        }
        if (trace_ != nullptr) trace_wasted(e);
      }
    }
  }
  dir_drop_file(file);
  files_->remove(file);
  co_await net_->message(mgr, client);
  done.set_value(Done{});
}

SimFuture<Done> Xfs::prefetch_fetch(NodeId node, BlockKey key) {
  SimPromise<Done> done(*eng_);
  prefetch_task(node, key, done);
  return done.future();
}

SimTask Xfs::prefetch_task(NodeId node, BlockKey key, SimPromise<Done> done) {
  SpanCollector* const sp = eng_->span_collector();
  const std::uint32_t site = raw(node) + 1;
  if (local_available(node, key) || !files_->exists(key.file)) {
    if (sp != nullptr) sp->prefetch_elided(site, key, eng_->now());
    if (trace_ != nullptr) {
      trace_->instant("prefetch", "prefetch.elided", tracks::file(key.file),
                      eng_->now(),
                      {{"site", raw(node) + 1}, {"block", key.index}});
    }
    done.set_value(Done{});
    co_return;
  }
  const SimTime t0 = eng_->now();
  NodeState& ns = node_[raw(node)];
  auto bc = std::make_shared<Broadcast>(*eng_);
  ns.in_flight.emplace(key, InFlight{bc, DiskOpRef{}});

  // Like any miss, a prefetch goes through the manager: if a peer already
  // caches the block it is copied over the network instead of re-read from
  // disk — several nodes prefetching the same (shared) file cost network
  // transfers, not duplicate disk accesses.
  const NodeId mgr = manager_node(key.file);
  co_await net_->message(node, mgr);
  {
    auto guard = co_await node_[raw(mgr)].cpu->scoped(prio::kPrefetch);
    co_await eng_->delay(cfg_.manager_op_cpu);
  }
  NodeId peer{};
  bool have_peer = false;
  if (std::vector<NodeId>* h = holders(key)) {
    for (auto it = h->rbegin(); it != h->rend(); ++it) {
      if (*it != node) {
        peer = *it;
        have_peer = true;
        break;
      }
    }
  }
  if (have_peer) {
    co_await net_->message(mgr, peer);
    co_await net_->copy(peer, node, files_->block_size(), prio::kPrefetch,
                        sp != nullptr ? sp->open_ref(site, key) : 0);
  } else {
    metrics_->on_disk_read(/*prefetch=*/true);
    DiskOpRef op;
    auto fetch = disks_->read(key, cfg_.prefetch_priority, &op,
                              sp != nullptr ? sp->open_ref(site, key) : 0);
    if (auto fit = ns.in_flight.find(key); fit != ns.in_flight.end()) {
      fit->second.op = op;
    }
    co_await fetch;
  }
  ns.in_flight.erase(key);
  metrics_->on_prefetch_arrived();
  const SpanRef span =
      sp != nullptr ? sp->prefetch_arrived(site, key, have_peer, eng_->now())
                    : 0;
  if (!files_->exists(key.file) || ns.pool->contains(key)) {
    // The file vanished mid-fetch, or a local write (or forwarded copy)
    // claimed the buffer while we waited: settle this arrival as wasted so
    // arrived == used + wasted still reconciles, and skip dir_add — a
    // directory entry for a buffer we never inserted would go stale.
    metrics_->on_prefetch_wasted();
    if (sp != nullptr) {
      sp->settle_wasted(span, WasteReason::kSuperseded, eng_->now());
    }
    if (trace_ != nullptr) {
      trace_->instant("prefetch", "prefetch.wasted", tracks::file(key.file),
                      eng_->now(), {{"block", key.index}});
    }
  } else {
    CacheEntry entry;
    entry.key = key;
    entry.home = node;
    entry.prefetched = true;
    entry.dirty_since = eng_->now();
    entry.span = span;
    insert_at(node, entry);
    dir_add(key, node);
  }
  if (trace_ != nullptr) {
    trace_->complete("prefetch", "prefetch.fetch", tracks::file(key.file), t0,
                     eng_->now() - t0,
                     {{"site", raw(node) + 1},
                      {"block", key.index},
                      {"node", raw(node)},
                      {"via_peer", static_cast<int>(have_peer)}});
  }
  bc->notify_all();
  done.set_value(Done{});
}

SimTask Xfs::forward_task(NodeId from, NodeId to, CacheEntry victim) {
  co_await net_->copy(from, to, files_->block_size(), prio::kSync);
  if (!files_->exists(victim.key.file) ||
      node_[raw(to)].pool->contains(victim.key)) {
    // The file vanished, or the destination acquired its own copy while the
    // forward was on the wire — merging the forwarded buffer in would fold
    // two prefetch provenances into one entry and break the arrived ==
    // used + wasted reconciliation, so the redundant copy settles here.
    if (victim.prefetched && !victim.referenced) {
      metrics_->on_prefetch_wasted();
      if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
        sp->settle_wasted(victim.span, WasteReason::kForwardDropped,
                          eng_->now());
      }
      if (trace_ != nullptr) trace_wasted(victim);
    }
    co_return;
  }
  victim.home = to;
  ++victim.recirculation;
  insert_at(to, victim);
  dir_add(victim.key, to);
}

void Xfs::insert_at(NodeId node, const CacheEntry& entry) {
  if (!files_->exists(entry.key.file)) return;
  if (auto victim = node_[raw(node)].pool->insert(entry)) {
    handle_eviction(node, *victim);
  }
}

void Xfs::handle_eviction(NodeId node, const CacheEntry& victim) {
  dir_remove(victim.key, node);
  if (victim.dirty) {
    if (victim.prefetched && !victim.referenced) {
      metrics_->on_prefetch_wasted();
      if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
        sp->settle_wasted(victim.span, WasteReason::kEvicted, eng_->now());
      }
      if (trace_ != nullptr) trace_wasted(victim);
    }
    metrics_->on_disk_write(victim.key);
    (void)disks_->write(victim.key, prio::kSync);
    return;
  }
  // N-chance: give the last copy of a block another life on a random peer.
  // A forwarded block stays in the cooperative cache, so it is not (yet)
  // counted as a wasted prefetch.
  if (nodes_ >= 2 && victim.recirculation < cfg_.nchance_recirculation &&
      files_->exists(victim.key.file)) {
    std::vector<NodeId>* h = holders(victim.key);
    if (h == nullptr || h->empty()) {  // last copy: forward it
      NodeId peer{static_cast<std::uint32_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(nodes_) - 2))};
      if (raw(peer) >= raw(node)) peer = NodeId{raw(peer) + 1};
      if (trace_ != nullptr) {
        trace_->instant("cache", "cache.nchance_forward",
                        tracks::node_cache(node), eng_->now(),
                        {{"file", raw(victim.key.file)},
                         {"block", victim.key.index},
                         {"to", raw(peer)}});
      }
      forward_task(node, peer, victim);
      return;
    }
  }
  if (victim.prefetched && !victim.referenced) {
    metrics_->on_prefetch_wasted();
    if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
      sp->settle_wasted(victim.span, WasteReason::kEvicted, eng_->now());
    }
    if (trace_ != nullptr) trace_wasted(victim);
  }
}

void Xfs::provide_hints(ProcId pid, NodeId client, FileId file,
                        std::vector<BlockRequest> hints) {
  node_[raw(client)].prefetcher->provide_hints(pid, file, std::move(hints));
}

void Xfs::flush_tick() {
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    BufferPool& pool = *node_[n].pool;
    std::vector<BlockKey> dirty;
    dirty.reserve(pool.dirty_count());
    pool.for_each_dirty([&](const CacheEntry& e) { dirty.push_back(e.key); });
    for (const BlockKey& key : dirty) {
      pool.mark_clean(key);
      metrics_->on_disk_write(key);
      (void)disks_->write(key, prio::kSync);
    }
  }
}

bool Xfs::directory_consistent() const {
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    bool ok = true;
    node_[n].pool->for_each([&](const CacheEntry& e) {
      auto fit = dir_.find(raw(e.key.file));
      if (fit == dir_.end()) {
        ok = false;
        return;
      }
      auto bit = fit->second.find(e.key.index);
      if (bit == fit->second.end() ||
          std::find(bit->second.begin(), bit->second.end(), NodeId{n}) ==
              bit->second.end()) {
        ok = false;
      }
    });
    if (!ok) return false;
  }
  // And the reverse: directory entries point at nodes that hold the block.
  for (const auto& [file, blocks] : dir_) {
    for (const auto& [index, holders] : blocks) {
      for (NodeId holder : holders) {
        if (raw(holder) >= nodes_) return false;
        if (!node_[raw(holder)].pool->contains(
                BlockKey{FileId{file}, index})) {
          return false;
        }
      }
    }
  }
  return true;
}

void Xfs::finalize() {
  SpanCollector* const sp = eng_->span_collector();
  for (const NodeState& ns : node_) {
    ns.pool->for_each([&](const CacheEntry& e) {
      if (e.prefetched && !e.referenced) {
        metrics_->on_prefetch_wasted();
        if (sp != nullptr) {
          sp->settle_wasted(e.span, WasteReason::kShutdown, eng_->now());
        }
        if (trace_ != nullptr) trace_wasted(e);
      }
      if (e.dirty) metrics_->on_disk_write(e.key);
    });
  }
}

}  // namespace lap
