// xFS behavioural model.
//
// Serverless organisation: every node keeps its own cache and makes its own
// decisions; a per-file manager (files hashed over the nodes) keeps the
// directory of which nodes hold which blocks.  A local miss asks the
// manager, which forwards the request to a caching peer (remote-client hit)
// or lets the client read the disk.  Blocks are *replicated* — every
// reading node keeps its own copy — and replacement is per-node LRU with
// N-chance forwarding of singlets.
//
// Prefetching is therefore per node: each node runs its own PrefetchManager
// over the requests it sees locally, so the linear limitation holds per
// node and file only — several nodes may prefetch the same file in
// parallel, the paper's "not really linear" xFS implementation.
//
// Sharding: each node's state — block pool, in-flight table, prefetcher,
// metadata replica, sync daemon — lives in that node's model domain
// (node_domain(n), DESIGN.md §14) and is only ever touched from it.  The
// block directory, the authoritative FileModel, the per-manager CPUs and
// the N-chance RNG live in the *directory domain* (domain 0).  Every
// cross-node interaction is either a coroutine hop (Engine::hop_to after a
// modelled message or copy latency) or a one-way mail (post_at), so a
// node-granular partition of the domains replays bit-exactly against the
// sequential engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/block_store.hpp"
#include "cache/sync_daemon.hpp"
#include "core/prefetch_manager.hpp"
#include "disk/disk_array.hpp"
#include "obs/metrics.hpp"
#include "fs/common/file_model.hpp"
#include "fs/common/filesystem.hpp"
#include "net/network.hpp"
#include "sim/domain.hpp"
#include "sim/resource.hpp"
#include "util/rng.hpp"

namespace lap {

struct XfsConfig {  // lap-owns: value — immutable after construction
  std::size_t cache_blocks_per_node = 0;
  SimTime manager_op_cpu = SimTime::us(2);
  SimTime local_op_cpu = SimTime::us(1);
  SimTime sync_interval = SimTime::sec(2);
  AlgorithmSpec algorithm;
  std::uint32_t nchance_recirculation = 2;
  int prefetch_priority = prio::kPrefetch;  // see PafsConfig
  std::uint64_t seed = 7;  // random peer choice for N-chance forwarding
};

class Xfs final : public FileSystem {
 public:
  /// `files` is the authoritative metadata model, owned by the directory
  /// domain from here on; each node gets a private replica (kept current
  /// by extend/purge mails from the directory).  `stop_flags` is the
  /// driver's per-domain array: node n's daemons poll
  /// stop_flags[node_domain(n)].
  Xfs(Engine& eng, Network& net, DiskArray& disks, FileModel& files,
      MetricsSet& metrics, XfsConfig cfg, std::uint32_t nodes,
      const StopFlag* stop_flags);
  ~Xfs() override;

  // --- FileSystem ---
  // lap-runs: node — the replay client calls these from its node's
  // model domain.
  SimFuture<Done> open(ProcId pid, NodeId client, FileId file) override;
  // lap-runs: node
  SimFuture<Done> close(ProcId pid, NodeId client, FileId file) override;
  // lap-runs: node
  SimFuture<Done> read(ProcId pid, NodeId client, FileId file, Bytes offset,
                       Bytes length) override;
  // lap-runs: node
  SimFuture<Done> write(ProcId pid, NodeId client, FileId file, Bytes offset,
                        Bytes length) override;
  // lap-runs: node
  SimFuture<Done> remove(ProcId pid, NodeId client, FileId file) override;
  void finalize() override;  // lap-runs: any
  // lap-runs: node
  void provide_hints(ProcId pid, NodeId client, FileId file,
                     std::vector<BlockRequest> hints) override;
  void set_trace(TraceSink* sink) override;  // lap-runs: any

  [[nodiscard]] NodeId manager_node(FileId file) const;  // lap-runs: any

  /// Sum of all node prefetchers' counters.
  // lap-runs: any — idle-time accessors (tests/driver teardown).
  [[nodiscard]] PrefetchCounters prefetch_counters_total() const override;
  [[nodiscard]] const BufferPool& pool(NodeId node) const;  // lap-runs: any

  /// Start each node's write-back daemon in that node's domain (t = 0
  /// mails; call before the engine runs).
  void start_sync_daemon();  // lap-runs: any

  /// Re-copy every node's metadata replica from the authoritative model.
  /// Only valid while the engine is idle — for tests and tools that
  /// register files after constructing the file system (the driver seeds
  /// the model first, so it never needs this).
  void reseed_replicas();  // lap-runs: any

  /// Debug invariant (tests): every cached block is registered in the
  /// block directory under its node.  Call only when the engine is idle —
  /// in-flight directory mails are legitimately unapplied.
  [[nodiscard]] bool directory_consistent() const;  // lap-runs: any

 private:
  struct NodeHost;
  struct InFlight {  // lap-owns: node
    std::shared_ptr<Broadcast> bc;
    DiskOpRef op;  // boostable while queued
  };
  // Everything here belongs to node_domain(i) exclusively.
  struct NodeState {  // lap-owns: node
    std::unique_ptr<BufferPool> pool;
    FlatHashMap<BlockKey, InFlight, BlockKeyHash> in_flight;
    std::unique_ptr<NodeHost> host;
    std::unique_ptr<PrefetchManager> prefetcher;
    std::unique_ptr<FileModel> files;  // metadata replica
    std::unique_ptr<SyncDaemon> sync;
  };

  // lap-runs: any — per-node metrics sink, documented thread-naive but
  // only ever fed from the owning node's events.
  [[nodiscard]] Metrics& met(NodeId node) {
    return metrics_->node(raw(node));
  }
  // lap-runs: node
  [[nodiscard]] bool local_available(NodeId node, BlockKey key) const;

  // Directory-domain state accessors (domain 0 only).
  [[nodiscard]] std::vector<NodeId>* holders(BlockKey key);  // lap-runs: directory
  void dir_add(BlockKey key, NodeId node);      // lap-runs: directory
  void dir_remove(BlockKey key, NodeId node);   // lap-runs: directory
  void dir_drop_file(FileId file);              // lap-runs: directory
  void dir_evicted(NodeId node, CacheEntry victim);  // lap-runs: directory

  // One-way mails.
  void post_dir_add(NodeId from, BlockKey key);      // lap-runs: node
  void post_dir_remove(NodeId from, BlockKey key);   // lap-runs: node
  // lap-runs: node
  void apply_invalidation(NodeId node, BlockKey key,
                          std::shared_ptr<Joiner> acks);
  // Send `key`'s invalidation to `other` now — or, if `other` holds an
  // unconfirmed write grant on the block, queue it until that write's
  // confirmation so the old owner's dirty copy is applied before it is
  // revoked (directory domain only).
  // lap-runs: directory
  void post_or_defer_invalidation(NodeId other, BlockKey key,
                                  std::shared_ptr<Joiner> acks);
  // lap-runs: directory
  void write_confirmed(NodeId owner, FileId file, std::uint32_t first,
                       std::uint32_t count);
  void purge_file(NodeId node, FileId file);         // lap-runs: node
  void drop_victim(NodeId node, const CacheEntry& victim);  // lap-runs: node

  // lap-runs: node — every task coroutine starts on the client node's
  // domain and crosses with explicit hop_to/post_at only.
  SimTask read_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                    Bytes length, SimPromise<Done> done);
  // lap-runs: node
  SimTask write_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                     Bytes length, SimPromise<Done> done);
  // lap-runs: node
  SimTask remove_task(NodeId client, FileId file, SimPromise<Done> done);
  // lap-runs: node
  SimTask control_task(NodeId client, FileId file, SimPromise<Done> done);
  // lap-runs: node
  SimTask read_block(NodeId client, BlockKey key,
                     std::shared_ptr<Joiner> joiner);
  SimFuture<Done> prefetch_fetch(NodeId node, BlockKey key);  // lap-runs: node
  // lap-runs: node
  SimTask prefetch_task(NodeId node, BlockKey key, SimPromise<Done> done);
  // lap-runs: node
  SimTask forward_task(NodeId from, NodeId to, CacheEntry victim);

  void insert_at(NodeId node, const CacheEntry& entry);  // lap-runs: node
  void handle_eviction(NodeId node, const CacheEntry& victim);  // lap-runs: node
  void flush_tick(NodeId node);                          // lap-runs: node
  void trace_wasted(const CacheEntry& e);                // lap-runs: any

  Engine* eng_;
  Network* net_;
  DiskArray* disks_;
  FileModel* files_;  // lap-owns: directory — authoritative copy
  MetricsSet* metrics_;
  XfsConfig cfg_;
  std::uint32_t nodes_;  // lap-owns: value — immutable after ctor
  const StopFlag* stop_flags_;
  TraceSink* trace_ = nullptr;
  Rng rng_;  // lap-owns: directory — N-chance peer draws

  // lap-owns: value — the spine is immutable after construction; the
  // elements inside are node-owned (see NodeState).
  std::vector<NodeState> node_;
  // file -> block index -> caching nodes.  Flat at both levels: the
  // directory is probed on every miss and every manager consult.  holders()
  // pointers are only read before the next directory mutation, per the
  // flat-table contract.  Directory domain only.
  FlatHashMap<std::uint32_t, FlatHashMap<std::uint32_t, std::vector<NodeId>>>
      dir_;  // lap-owns: directory
  // Write grants whose owner has not yet confirmed applying the write
  // locally: packed block key -> owner node -> {outstanding grants,
  // invalidations queued behind the confirmation}.  A later writer's
  // invalidation of an unconfirmed owner must wait — otherwise the ack
  // races ahead of the owner's delayed dirty-insert and two caches end up
  // dirty.  Deferrals only ever wait on strictly earlier grants (the
  // per-file manager serialises them), so they cannot cycle.  Directory
  // domain only.
  struct PendingGrant {
    std::uint32_t grants = 0;
    std::vector<std::function<void()>> deferred;
  };
  FlatHashMap<std::uint64_t, FlatHashMap<std::uint32_t, PendingGrant>>
      pending_grants_;  // lap-owns: directory
  // Manager CPU per node: manager work *executes* in the directory domain
  // but still contends for (and is accounted to) the manager node's
  // processor.
  std::vector<std::unique_ptr<Resource>> mgr_cpus_;  // lap-owns: directory
};

}  // namespace lap
