// xFS behavioural model.
//
// Serverless organisation: every node keeps its own cache and makes its own
// decisions; a per-file manager (files hashed over the nodes) keeps the
// directory of which nodes hold which blocks.  A local miss asks the
// manager, which forwards the request to a caching peer (remote-client hit)
// or lets the client read the disk.  Blocks are *replicated* — every
// reading node keeps its own copy — and replacement is per-node LRU with
// N-chance forwarding of singlets.
//
// Prefetching is therefore per node: each node runs its own PrefetchManager
// over the requests it sees locally, so the linear limitation holds per
// node and file only — several nodes may prefetch the same file in
// parallel, the paper's "not really linear" xFS implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/block_store.hpp"
#include "cache/sync_daemon.hpp"
#include "core/prefetch_manager.hpp"
#include "disk/disk_array.hpp"
#include "driver/metrics.hpp"
#include "fs/common/file_model.hpp"
#include "fs/common/filesystem.hpp"
#include "net/network.hpp"
#include "sim/resource.hpp"
#include "util/rng.hpp"

namespace lap {

struct XfsConfig {
  std::size_t cache_blocks_per_node = 0;
  SimTime manager_op_cpu = SimTime::us(2);
  SimTime local_op_cpu = SimTime::us(1);
  SimTime sync_interval = SimTime::sec(2);
  AlgorithmSpec algorithm;
  std::uint32_t nchance_recirculation = 2;
  int prefetch_priority = prio::kPrefetch;  // see PafsConfig
  std::uint64_t seed = 7;  // random peer choice for N-chance forwarding
};

class Xfs final : public FileSystem {
 public:
  Xfs(Engine& eng, Network& net, DiskArray& disks, FileModel& files,
      Metrics& metrics, XfsConfig cfg, std::uint32_t nodes,
      const bool* stop_flag);
  ~Xfs() override;

  // --- FileSystem ---
  SimFuture<Done> open(ProcId pid, NodeId client, FileId file) override;
  SimFuture<Done> close(ProcId pid, NodeId client, FileId file) override;
  SimFuture<Done> read(ProcId pid, NodeId client, FileId file, Bytes offset,
                       Bytes length) override;
  SimFuture<Done> write(ProcId pid, NodeId client, FileId file, Bytes offset,
                        Bytes length) override;
  SimFuture<Done> remove(ProcId pid, NodeId client, FileId file) override;
  void finalize() override;
  void provide_hints(ProcId pid, NodeId client, FileId file,
                     std::vector<BlockRequest> hints) override;
  void set_trace(TraceSink* sink) override;

  [[nodiscard]] NodeId manager_node(FileId file) const;

  /// Sum of all node prefetchers' counters.
  [[nodiscard]] PrefetchCounters prefetch_counters_total() const override;
  [[nodiscard]] const BufferPool& pool(NodeId node) const;

  void start_sync_daemon();

  /// Debug invariant (tests): every cached block is registered in the
  /// block directory under its node.  Call only when the engine is idle
  /// (N-chance forwards in flight are legitimately unregistered).
  [[nodiscard]] bool directory_consistent() const;

 private:
  struct NodeHost;
  struct InFlight {
    std::shared_ptr<Broadcast> bc;
    DiskOpRef op;  // boostable while queued
  };
  struct NodeState {
    std::unique_ptr<BufferPool> pool;
    FlatHashMap<BlockKey, InFlight, BlockKeyHash> in_flight;
    std::unique_ptr<NodeHost> host;
    std::unique_ptr<PrefetchManager> prefetcher;
    std::unique_ptr<Resource> cpu;  // manager service on this node
  };

  [[nodiscard]] bool local_available(NodeId node, BlockKey key) const;
  [[nodiscard]] std::vector<NodeId>* holders(BlockKey key);
  void dir_add(BlockKey key, NodeId node);
  void dir_remove(BlockKey key, NodeId node);
  void dir_drop_file(FileId file);

  SimTask read_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                    Bytes length, SimPromise<Done> done);
  SimTask write_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                     Bytes length, SimPromise<Done> done);
  SimTask remove_task(NodeId client, FileId file, SimPromise<Done> done);
  SimTask control_task(NodeId client, FileId file, SimPromise<Done> done);
  SimTask read_block(NodeId client, BlockKey key,
                     std::shared_ptr<Joiner> joiner);
  SimFuture<Done> prefetch_fetch(NodeId node, BlockKey key);
  SimTask prefetch_task(NodeId node, BlockKey key, SimPromise<Done> done);
  SimTask forward_task(NodeId from, NodeId to, CacheEntry victim);

  void insert_at(NodeId node, const CacheEntry& entry);
  void handle_eviction(NodeId node, const CacheEntry& victim);
  void flush_tick();
  void trace_wasted(const CacheEntry& e);

  Engine* eng_;
  Network* net_;
  DiskArray* disks_;
  FileModel* files_;
  Metrics* metrics_;
  XfsConfig cfg_;
  std::uint32_t nodes_;
  const bool* stop_flag_;
  TraceSink* trace_ = nullptr;
  Rng rng_;

  std::vector<NodeState> node_;
  // file -> block index -> caching nodes.  Flat at both levels: the
  // directory is probed on every miss and every manager consult.  holders()
  // pointers are only read before the next directory mutation (write_task
  // copies the list before invalidating), per the flat-table contract.
  FlatHashMap<std::uint32_t, FlatHashMap<std::uint32_t, std::vector<NodeId>>>
      dir_;
  std::unique_ptr<SyncDaemon> sync_;
};

}  // namespace lap
