// Closed-loop trace replay.
//
// Each traced process becomes a coroutine: it sleeps its record's CPU burst,
// then performs the file operation and waits for it to complete before
// moving on.  Faster I/O therefore shortens the application's wall time —
// the paper's traces work the same way (demand sequences, not timestamps).
//
// Records are pulled through the TraceSource streaming interface, so the
// runner replays an on-disk `.lapt` workload in bounded memory exactly as
// it replays an in-memory Trace (which it wraps on the spot).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "fs/common/filesystem.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "trace/io/source.hpp"

namespace lap {

class WorkloadRunner {
 public:
  /// With `cpu_contention`, each node's processes share one CPU: think
  /// times occupy it, so co-located processes' compute phases serialise
  /// (DIMEMAS's short-term scheduling model).  Off by default — the
  /// paper's workloads run roughly one process per node.
  WorkloadRunner(Engine& eng, FileSystem& fs, MetricsSet& metrics,
                 TraceSource& source, bool cpu_contention = false);

  /// Convenience: replay an in-memory trace (wrapped in an owned
  /// InMemoryTraceSource; `trace` must outlive the runner).
  WorkloadRunner(Engine& eng, FileSystem& fs, MetricsSet& metrics,
                 const Trace& trace, bool cpu_contention = false);

  /// Latency of the end-of-process notification hop back to the
  /// controller domain.  The driver sets it to the local message startup;
  /// it must be at least the engine's epoch lookahead so the hop is a
  /// legal cross-shard model→model message.  Zero (the default) is only
  /// valid for single-shard runs.
  void set_notify_latency(SimTime t) { notify_latency_ = t; }

  /// Spawn all client processes, each in its node's model domain (mail at
  /// t = 0, so a sharded run places every replay coroutine on the shard
  /// that owns its node).  `on_all_done` fires in the controller domain
  /// when the last record of the last process has completed.
  void start(std::function<void()> on_all_done);

  [[nodiscard]] std::uint64_t live_processes() const { return live_; }

 private:
  void init_cpus(bool cpu_contention);
  SimTask run_process(std::size_t index);  // lap-runs: node
  SimTask run_node_serialized(std::vector<std::size_t> indices);  // lap-runs: node
  void notify_finished();
  void process_finished();

  // lap-runs: any — reads the immutable per-node CPU table; the
  // Resource it returns is exercised from the owning node's domain.
  [[nodiscard]] Resource* cpu_for(NodeId node);

  Engine* eng_;
  FileSystem* fs_;
  MetricsSet* metrics_;
  std::unique_ptr<TraceSource> owned_;  // set by the Trace constructor
  TraceSource* source_;
  std::vector<std::unique_ptr<Resource>> cpus_;  // per node; empty when off
  std::uint64_t live_ = 0;  // controller-domain state (domain 0)
  SimTime notify_latency_;
  std::function<void()> on_all_done_;
};

}  // namespace lap
