// The abstract file-system interface the clients replay traces against.
// PAFS and xFS implement it with their respective cooperative-cache
// organisations.
#pragma once

#include <cstdint>
#include <vector>

#include "core/prefetch_manager.hpp"
#include "trace/patterns.hpp"
#include "sim/future.hpp"
#include "util/units.hpp"

namespace lap {

class Metrics;
class TraceSink;

/// Deterministic file -> node placement (PAFS file servers, xFS managers).
[[nodiscard]] inline NodeId node_for_file(FileId file, std::uint32_t nodes) {
  std::uint32_t h = raw(file);
  h ^= h >> 16;
  h *= 0x45d9f3bU;
  h ^= h >> 16;
  return NodeId{h % nodes};
}

class FileSystem {  // lap-owns: value — interface handle, freely shared
 public:
  virtual ~FileSystem() = default;

  [[nodiscard]] virtual SimFuture<Done> open(ProcId pid, NodeId client,
                                             FileId file) = 0;
  [[nodiscard]] virtual SimFuture<Done> close(ProcId pid, NodeId client,
                                              FileId file) = 0;
  [[nodiscard]] virtual SimFuture<Done> read(ProcId pid, NodeId client,
                                             FileId file, Bytes offset,
                                             Bytes length) = 0;
  [[nodiscard]] virtual SimFuture<Done> write(ProcId pid, NodeId client,
                                              FileId file, Bytes offset,
                                              Bytes length) = 0;
  [[nodiscard]] virtual SimFuture<Done> remove(ProcId pid, NodeId client,
                                               FileId file) = 0;

  /// End-of-run bookkeeping (e.g. counting prefetched-but-never-used blocks
  /// still resident as mis-predictions, and accounting the final flush of
  /// still-dirty buffers).
  virtual void finalize() = 0;

  /// Aggregate prefetch-issue counters (summed over all prefetch sites).
  [[nodiscard]] virtual PrefetchCounters prefetch_counters_total() const = 0;

  /// Disclose a process's future reads on a file (informed prefetching).
  /// Default: ignored.
  virtual void provide_hints(ProcId /*pid*/, NodeId /*client*/,
                             FileId /*file*/,
                             std::vector<BlockRequest> /*hints*/) {}

  /// Attach the trace sink (nullptr detaches).  Default: no tracing.
  virtual void set_trace(TraceSink* /*sink*/) {}
};

}  // namespace lap
