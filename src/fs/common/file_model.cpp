#include "fs/common/file_model.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace lap {

FileModel::FileModel(Bytes block_size) : block_size_(block_size) {
  LAP_EXPECTS(block_size > 0);
}

void FileModel::load(const Trace& trace) { load(trace.files); }

void FileModel::load(const std::vector<FileInfo>& files) {
  for (const FileInfo& f : files) add_file(f.id, f.size);
}

void FileModel::add_file(FileId id, Bytes size) { sizes_[raw(id)] = size; }

bool FileModel::exists(FileId id) const { return sizes_.contains(raw(id)); }

Bytes FileModel::size(FileId id) const {
  auto it = sizes_.find(raw(id));
  return it == sizes_.end() ? 0 : it->second;
}

std::uint32_t FileModel::blocks(FileId id) const {
  return static_cast<std::uint32_t>((size(id) + block_size_ - 1) / block_size_);
}

void FileModel::remove(FileId id) { sizes_.erase(raw(id)); }

bool FileModel::extend(FileId id, Bytes offset, Bytes len) {
  auto it = sizes_.find(raw(id));
  if (it == sizes_.end()) {
    sizes_[raw(id)] = offset + len;
    return true;
  }
  if (offset + len <= it->second) return false;
  it->second = offset + len;
  return true;
}

BlockRange FileModel::range(FileId id, Bytes offset, Bytes len) const {
  const Bytes fsize = size(id);
  if (offset >= fsize || len == 0) return BlockRange{0, 0};
  const Bytes end = std::min(offset + len, fsize);
  const auto first = static_cast<std::uint32_t>(offset / block_size_);
  const auto last = static_cast<std::uint32_t>((end - 1) / block_size_);
  return BlockRange{first, last - first + 1};
}

}  // namespace lap
