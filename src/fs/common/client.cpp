#include "fs/common/client.hpp"

#include <unordered_map>
#include <vector>

#include "util/assert.hpp"

namespace lap {
namespace {

/// Replay one process's records front to back; fulfil `done` at the end.
/// `cpu` is the node's (shared) processor, or nullptr for the open model.
SimTask replay(Engine& eng, FileSystem& fs, Metrics& metrics,
               const ProcessTrace& proc, Resource* cpu,
               SimPromise<Done> done) {
  for (const TraceRecord& r : proc.records) {
    if (r.think > SimTime::zero()) {
      if (cpu != nullptr) {
        auto guard = co_await cpu->scoped(prio::kDemand);
        co_await eng.delay(r.think);
      } else {
        co_await eng.delay(r.think);
      }
    }
    switch (r.op) {
      case TraceOp::kOpen:
        co_await fs.open(proc.pid, proc.node, r.file);
        break;
      case TraceOp::kClose:
        co_await fs.close(proc.pid, proc.node, r.file);
        break;
      case TraceOp::kRead: {
        metrics.on_io_issued(eng.now());
        const SimTime t0 = eng.now();
        co_await fs.read(proc.pid, proc.node, r.file, r.offset, r.length);
        metrics.on_read_done(eng.now() - t0);
        break;
      }
      case TraceOp::kWrite: {
        metrics.on_io_issued(eng.now());
        const SimTime t0 = eng.now();
        co_await fs.write(proc.pid, proc.node, r.file, r.offset, r.length);
        metrics.on_write_done(eng.now() - t0);
        break;
      }
      case TraceOp::kDelete:
        co_await fs.remove(proc.pid, proc.node, r.file);
        break;
    }
  }
  done.set_value(Done{});
}

}  // namespace

WorkloadRunner::WorkloadRunner(Engine& eng, FileSystem& fs, Metrics& metrics,
                               const Trace& trace, bool cpu_contention)
    : eng_(&eng), fs_(&fs), metrics_(&metrics), trace_(&trace) {
  if (cpu_contention) {
    const std::uint32_t nodes = trace.node_span();
    cpus_.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      cpus_.push_back(std::make_unique<Resource>(eng));
    }
  }
}

Resource* WorkloadRunner::cpu_for(NodeId node) {
  if (cpus_.empty()) return nullptr;
  return cpus_[raw(node)].get();
}

void WorkloadRunner::start(std::function<void()> on_all_done) {
  LAP_EXPECTS(live_ == 0);
  on_all_done_ = std::move(on_all_done);
  if (trace_->processes.empty()) {
    if (on_all_done_) on_all_done_();
    return;
  }
  if (trace_->serialize_per_node) {
    std::unordered_map<std::uint32_t, std::vector<const ProcessTrace*>> by_node;
    for (const ProcessTrace& p : trace_->processes) {
      by_node[raw(p.node)].push_back(&p);
    }
    live_ = by_node.size();
    for (auto& [node, procs] : by_node) {
      run_node_serialized(std::move(procs));
    }
  } else {
    live_ = trace_->processes.size();
    for (const ProcessTrace& p : trace_->processes) run_process(p);
  }
}

SimTask WorkloadRunner::run_process(const ProcessTrace& proc) {
  SimPromise<Done> done(*eng_);
  replay(*eng_, *fs_, *metrics_, proc, cpu_for(proc.node), done);
  co_await done.future();
  process_finished();
}

SimTask WorkloadRunner::run_node_serialized(
    std::vector<const ProcessTrace*> procs) {
  for (const ProcessTrace* p : procs) {
    SimPromise<Done> done(*eng_);
    replay(*eng_, *fs_, *metrics_, *p, cpu_for(p->node), done);
    co_await done.future();
  }
  process_finished();
}

void WorkloadRunner::process_finished() {
  LAP_ASSERT(live_ > 0);
  if (--live_ == 0 && on_all_done_) on_all_done_();
}

}  // namespace lap
