#include "fs/common/client.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/domain.hpp"
#include "util/assert.hpp"

namespace lap {
namespace {

/// Replay one process's record stream front to back; fulfil `done` at the
/// end.  `cpu` is the node's (shared) processor, or nullptr for the open
/// model.  The cursor is owned by the coroutine frame, so a streaming
/// source's chunk buffer lives exactly as long as the replay does.
///
/// Every record — not just reads and writes — counts toward the warmup
/// gate: record counts are known per process up front (TraceMeta), so a
/// per-node metrics slot can compute its threshold without a global scan.
SimTask replay(Engine& eng, FileSystem& fs, Metrics& metrics, ProcId pid,
               NodeId node, std::unique_ptr<RecordCursor> records,
               Resource* cpu, SimPromise<Done> done) {
  TraceRecord r;
  while (records->next(r)) {
    if (r.think > SimTime::zero()) {
      if (cpu != nullptr) {
        auto guard = co_await cpu->scoped(prio::kDemand);
        co_await eng.delay(r.think);
      } else {
        co_await eng.delay(r.think);
      }
    }
    metrics.on_io_issued(eng.now());
    switch (r.op) {
      case TraceOp::kOpen:
        co_await fs.open(pid, node, r.file);
        break;
      case TraceOp::kClose:
        co_await fs.close(pid, node, r.file);
        break;
      case TraceOp::kRead: {
        const SimTime t0 = eng.now();
        co_await fs.read(pid, node, r.file, r.offset, r.length);
        metrics.on_read_done(eng.now() - t0);
        break;
      }
      case TraceOp::kWrite: {
        const SimTime t0 = eng.now();
        co_await fs.write(pid, node, r.file, r.offset, r.length);
        metrics.on_write_done(eng.now() - t0);
        break;
      }
      case TraceOp::kDelete:
        co_await fs.remove(pid, node, r.file);
        break;
    }
  }
  done.set_value(Done{});
}

}  // namespace

WorkloadRunner::WorkloadRunner(Engine& eng, FileSystem& fs, MetricsSet& metrics,
                               TraceSource& source, bool cpu_contention)
    : eng_(&eng), fs_(&fs), metrics_(&metrics), source_(&source) {
  init_cpus(cpu_contention);
}

WorkloadRunner::WorkloadRunner(Engine& eng, FileSystem& fs, MetricsSet& metrics,
                               const Trace& trace, bool cpu_contention)
    : eng_(&eng),
      fs_(&fs),
      metrics_(&metrics),
      owned_(std::make_unique<InMemoryTraceSource>(trace)),
      source_(owned_.get()) {
  init_cpus(cpu_contention);
}

void WorkloadRunner::init_cpus(bool cpu_contention) {
  if (!cpu_contention) return;
  const std::uint32_t nodes = source_->meta().node_span();
  cpus_.reserve(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    cpus_.push_back(std::make_unique<Resource>(*eng_));
  }
}

Resource* WorkloadRunner::cpu_for(NodeId node) {
  if (cpus_.empty()) return nullptr;
  return cpus_[raw(node)].get();
}

void WorkloadRunner::start(std::function<void()> on_all_done) {
  LAP_EXPECTS(live_ == 0);
  on_all_done_ = std::move(on_all_done);
  const TraceMeta& meta = source_->meta();
  if (meta.processes.empty()) {
    if (on_all_done_) on_all_done_();
    return;
  }
  // Each launch is a t = 0 mail into the owning node's model domain, so the
  // replay coroutine — and everything it awaits — executes on the shard
  // that owns the node.  Pre-run posts are plain heap pushes in launch
  // order, so single- and multi-shard runs see the same t = 0 sequence.
  if (meta.serialize_per_node) {
    // Group process indices by node and launch the per-node drivers in
    // REVERSE first-appearance order.  That is an explicit, deterministic
    // order — and it is also bit-exact with the std::unordered_map this
    // replaced (libstdc++ splices each fresh bucket at the head of its
    // element list, so distinct small keys iterated in reverse insertion
    // order), which keeps the golden corpus unchanged.
    std::vector<std::pair<std::uint32_t, std::vector<std::size_t>>> by_node;
    for (std::size_t i = 0; i < meta.processes.size(); ++i) {
      const std::uint32_t node = raw(meta.processes[i].node);
      auto it = std::find_if(by_node.begin(), by_node.end(),
                             [node](const auto& e) { return e.first == node; });
      if (it == by_node.end()) {
        by_node.emplace_back(node, std::vector<std::size_t>{});
        it = std::prev(by_node.end());
      }
      it->second.push_back(i);
    }
    live_ = by_node.size();
    for (auto it = by_node.rbegin(); it != by_node.rend(); ++it) {
      eng_->post_at(node_domain(it->first), SimTime::zero(),
                    [this, indices = std::move(it->second)]() mutable {
                      run_node_serialized(std::move(indices));
                    });
    }
  } else {
    live_ = meta.processes.size();
    for (std::size_t i = 0; i < meta.processes.size(); ++i) {
      eng_->post_at(node_domain(raw(meta.processes[i].node)), SimTime::zero(),
                    [this, i] { run_process(i); });
    }
  }
}

SimTask WorkloadRunner::run_process(std::size_t index) {
  const TraceMeta::ProcessInfo& p = source_->meta().processes[index];
  SimPromise<Done> done(*eng_);
  replay(*eng_, *fs_, metrics_->node(raw(p.node)), p.pid, p.node,
         source_->open(index), cpu_for(p.node), done);
  co_await done.future();
  notify_finished();
}

SimTask WorkloadRunner::run_node_serialized(std::vector<std::size_t> indices) {
  for (std::size_t index : indices) {
    const TraceMeta::ProcessInfo& p = source_->meta().processes[index];
    SimPromise<Done> done(*eng_);
    replay(*eng_, *fs_, metrics_->node(raw(p.node)), p.pid, p.node,
           source_->open(index), cpu_for(p.node), done);
    co_await done.future();
  }
  notify_finished();
}

void WorkloadRunner::notify_finished() {
  // The countdown lives in the controller domain; crossing back is a
  // model→model message, so it must arrive at least a lookahead later.
  // notify_latency_ (the local message startup, which bounds the lookahead
  // from above) models the "process exited" notification hop.
  eng_->post_at(DomainId{0}, eng_->now() + notify_latency_,
                [this] { process_finished(); });
}

void WorkloadRunner::process_finished() {
  LAP_ASSERT(live_ > 0);
  if (--live_ == 0 && on_all_done_) on_all_done_();
}

}  // namespace lap
