// File metadata: sizes (growable by writes), existence, byte-range to
// block-range arithmetic.  Shared by both file systems.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/flat_hash.hpp"
#include "util/units.hpp"

namespace lap {

struct BlockRange {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

class FileModel {
 public:
  explicit FileModel(Bytes block_size);

  /// Seed from a trace preamble.
  void load(const Trace& trace);
  void load(const std::vector<FileInfo>& files);

  void add_file(FileId id, Bytes size);
  [[nodiscard]] bool exists(FileId id) const;
  [[nodiscard]] Bytes size(FileId id) const;
  [[nodiscard]] std::uint32_t blocks(FileId id) const;
  void remove(FileId id);

  /// Grow the file so [offset, offset+len) is inside it.  Returns true
  /// when the size actually changed — a sharded xFS directory uses that to
  /// decide whether per-node metadata replicas need a size update.
  bool extend(FileId id, Bytes offset, Bytes len);

  /// Blocks covered by [offset, offset+len), clipped to the file size.
  [[nodiscard]] BlockRange range(FileId id, Bytes offset, Bytes len) const;

  [[nodiscard]] Bytes block_size() const { return block_size_; }
  [[nodiscard]] std::size_t file_count() const { return sizes_.size(); }

 private:
  Bytes block_size_;
  FlatHashMap<std::uint32_t, Bytes> sizes_;  // lookups only, never iterated
};

}  // namespace lap
