// PAFS behavioural model.
//
// PAFS manages every file through a single server (files are hashed over
// the nodes, each of which runs a server).  The cooperative cache is one
// globally managed pool built from all nodes' buffers: a block lives in
// exactly one node's memory (no replication), the pool is replaced with a
// global LRU, and the server in charge of a file keeps all its prefetching
// state — which is what makes the *linear* aggressive limitation (one
// outstanding prefetched block per file, system-wide) exactly
// implementable here.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/block_store.hpp"
#include "cache/sync_daemon.hpp"
#include "core/prefetch_manager.hpp"
#include "disk/disk_array.hpp"
#include "obs/metrics.hpp"
#include "fs/common/file_model.hpp"
#include "fs/common/filesystem.hpp"
#include "net/network.hpp"
#include "sim/resource.hpp"

namespace lap {

struct PafsConfig {  // lap-owns: value — immutable after construction
  std::size_t cache_blocks_total = 0;     // sum of all nodes' buffer pools
  SimTime server_op_cpu = SimTime::us(2);    // per-request service time
  SimTime server_block_cpu = SimTime::us(1); // per-block lookup time
  SimTime sync_interval = SimTime::sec(2);   // periodic write-back period
  AlgorithmSpec algorithm;
  // Disk priority of speculative reads.  The paper's rule is prio::kPrefetch
  // (never before waiting demand ops); the ablation bench sets kDemand.
  int prefetch_priority = prio::kPrefetch;
};

// All PAFS model state below is directory-owned: the global pool, the
// single PrefetchManager and the write-back daemon are one system-wide
// instance each (that is what makes the linear limitation exactly
// implementable), so the whole model runs in domain 0 and only the
// disks shard (driver/simulation.cpp keeps every PAFS model domain on
// shard 0).
class Pafs final : public FileSystem, public PrefetchHost {  // lap-owns: directory
 public:
  Pafs(Engine& eng, Network& net, DiskArray& disks, FileModel& files,
       Metrics& metrics, PafsConfig cfg, std::uint32_t nodes,
       const bool* stop_flag);

  // --- FileSystem ---
  // lap-runs: directory — the whole PAFS model executes in domain 0;
  // see the class comment.
  SimFuture<Done> open(ProcId pid, NodeId client, FileId file) override;
  SimFuture<Done> close(ProcId pid, NodeId client, FileId file) override;
  SimFuture<Done> read(ProcId pid, NodeId client, FileId file, Bytes offset,
                       Bytes length) override;
  SimFuture<Done> write(ProcId pid, NodeId client, FileId file, Bytes offset,
                        Bytes length) override;
  SimFuture<Done> remove(ProcId pid, NodeId client, FileId file) override;
  void finalize() override;  // lap-runs: any
  void provide_hints(ProcId pid, NodeId client, FileId file,
                     std::vector<BlockRequest> hints) override;
  void set_trace(TraceSink* sink) override;  // lap-runs: any

  // --- PrefetchHost ---
  [[nodiscard]] bool block_available(BlockKey key) const override;
  SimFuture<Done> prefetch_fetch(BlockKey key, NodeId target) override;
  [[nodiscard]] std::uint32_t file_blocks(FileId file) const override;

  /// The node whose server manages `file`.
  [[nodiscard]] NodeId server_node(FileId file) const;  // lap-runs: any

  // lap-runs: any — idle-time accessors (tests/driver teardown).
  [[nodiscard]] PrefetchCounters prefetch_counters_total() const override {
    return prefetcher_->counters();
  }
  [[nodiscard]] const BufferPool& pool() const { return pool_; }  // lap-runs: any

  /// Must be called once (after construction) to start the write-back
  /// daemon; kept explicit so unit tests can run without it.
  void start_sync_daemon();  // lap-runs: any

 private:
  SimTask read_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                    Bytes length, SimPromise<Done> done);
  SimTask write_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                     Bytes length, SimPromise<Done> done);
  SimTask remove_task(NodeId client, FileId file, SimPromise<Done> done);
  SimTask control_task(NodeId client, FileId file, SimPromise<Done> done);
  SimTask read_block(BlockKey key, NodeId client,
                     std::shared_ptr<Joiner> joiner);
  SimTask prefetch_task(BlockKey key, NodeId target, SimPromise<Done> done);

  void insert_block(BlockKey key, NodeId home, bool dirty, bool prefetched,
                    std::uint64_t span = 0);
  void handle_eviction(const CacheEntry& victim);
  void flush_tick();
  void trace_wasted(const CacheEntry& e);  // lap-runs: any

  Engine* eng_;
  Network* net_;
  DiskArray* disks_;
  FileModel* files_;
  Metrics* metrics_;
  PafsConfig cfg_;
  std::uint32_t nodes_;
  const bool* stop_flag_;
  TraceSink* trace_ = nullptr;

  struct InFlight {
    std::shared_ptr<Broadcast> bc;
    DiskOpRef op;  // boostable while queued
  };

  BufferPool pool_;  // lap-owns: directory — the one global pool
  // Flat table: consulted by block_available() on every demand block and
  // every prefetch-candidate probe.  Entries are always re-found by key
  // after a co_await (the Broadcast is copied out before suspending), so
  // rehash invalidation cannot bite.
  FlatHashMap<BlockKey, InFlight, BlockKeyHash> in_flight_;  // lap-owns: directory
  std::vector<std::unique_ptr<Resource>> server_cpu_;
  std::unique_ptr<PrefetchManager> prefetcher_;  // lap-owns: directory
  std::unique_ptr<SyncDaemon> sync_;  // lap-owns: directory
};

}  // namespace lap
