#include "fs/pafs/pafs.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/span.hpp"
#include "util/assert.hpp"

namespace lap {

Pafs::Pafs(Engine& eng, Network& net, DiskArray& disks, FileModel& files,
           Metrics& metrics, PafsConfig cfg, std::uint32_t nodes,
           const bool* stop_flag)
    : eng_(&eng),
      net_(&net),
      disks_(&disks),
      files_(&files),
      metrics_(&metrics),
      cfg_(cfg),
      nodes_(nodes),
      stop_flag_(stop_flag),
      pool_(cfg.cache_blocks_total) {
  LAP_EXPECTS(nodes >= 1);
  LAP_EXPECTS(stop_flag != nullptr);
  server_cpu_.reserve(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    server_cpu_.push_back(std::make_unique<Resource>(eng));
  }
  prefetcher_ = std::make_unique<PrefetchManager>(eng, cfg.algorithm, *this,
                                                  stop_flag);
  sync_ = std::make_unique<SyncDaemon>(
      eng, cfg.sync_interval, [this] { flush_tick(); }, stop_flag);
}

void Pafs::start_sync_daemon() { sync_->start(); }

void Pafs::set_trace(TraceSink* sink) {
  trace_ = sink;
  prefetcher_->set_trace(sink);
  // PAFS runs one globally managed pool; its events land on node 0's cache
  // row (the pool spans all nodes' memories, so no single node owns it).
  pool_.set_trace(sink, eng_, tracks::node_cache(NodeId{0}));
}

void Pafs::trace_wasted(const CacheEntry& e) {
  trace_->instant("prefetch", "prefetch.wasted", tracks::file(e.key.file),
                  eng_->now(), {{"block", e.key.index}});
}

NodeId Pafs::server_node(FileId file) const {
  return node_for_file(file, nodes_);
}

bool Pafs::block_available(BlockKey key) const {
  return pool_.contains(key) || in_flight_.contains(key);
}

std::uint32_t Pafs::file_blocks(FileId file) const {
  return files_->blocks(file);
}

SimFuture<Done> Pafs::open(ProcId pid, NodeId client, FileId file) {
  prefetcher_->on_open(pid, client, file);
  SimPromise<Done> done(*eng_);
  control_task(client, file, done);
  return done.future();
}

SimFuture<Done> Pafs::close(ProcId, NodeId client, FileId file) {
  SimPromise<Done> done(*eng_);
  control_task(client, file, done);
  return done.future();
}

SimTask Pafs::control_task(NodeId client, FileId file, SimPromise<Done> done) {
  const NodeId srv = server_node(file);
  co_await net_->message(client, srv);
  {
    auto guard = co_await server_cpu_[raw(srv)]->scoped(prio::kDemand);
    co_await eng_->delay(cfg_.server_op_cpu);
  }
  co_await net_->message(srv, client);
  done.set_value(Done{});
}

SimFuture<Done> Pafs::read(ProcId pid, NodeId client, FileId file, Bytes offset,
                           Bytes length) {
  SimPromise<Done> done(*eng_);
  read_task(pid, client, file, offset, length, done);
  return done.future();
}

SimTask Pafs::read_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                        Bytes length, SimPromise<Done> done) {
  const SimTime t0 = eng_->now();
  const BlockRange range = files_->range(file, offset, length);
  if (range.count == 0) {
    done.set_value(Done{});
    co_return;
  }
  const NodeId srv = server_node(file);
  co_await net_->message(client, srv);
  {
    auto guard = co_await server_cpu_[raw(srv)]->scoped(prio::kDemand);
    co_await eng_->delay(cfg_.server_op_cpu + cfg_.server_block_cpu * range.count);
  }

  // Prefetch decisions observe the cache exactly as this request found it,
  // so the hook runs before the demand fetches are issued.
  prefetcher_->on_request(pid, client, file, range.first, range.count);

  auto joiner = std::make_shared<Joiner>(*eng_, range.count);
  for (std::uint32_t i = 0; i < range.count; ++i) {
    read_block(BlockKey{file, range.first + i}, client, joiner);
  }
  co_await joiner->future();
  co_await net_->message(srv, client);
  if (trace_ != nullptr) {
    trace_->complete("fs", "fs.read", tracks::node_fs(client), t0,
                     eng_->now() - t0,
                     {{"file", raw(file)},
                      {"first", range.first},
                      {"blocks", range.count}});
  }
  done.set_value(Done{});
}

SimTask Pafs::read_block(BlockKey key, NodeId client,
                         std::shared_ptr<Joiner> joiner) {
  SpanCollector* const sp = eng_->span_collector();
  const SpanRef dspan =
      sp != nullptr ? sp->demand_started(client, key, eng_->now()) : 0;
  bool classified = false;
  for (;;) {
    if (CacheEntry* e = pool_.find(key)) {
      pool_.touch(key);
      if (e->prefetched && !e->referenced) {
        metrics_->on_prefetch_first_use();
        prefetcher_->feedback_used();
        if (sp != nullptr) sp->settle_used(e->span, eng_->now());
        if (trace_ != nullptr) {
          trace_->instant("prefetch", "prefetch.used", tracks::file(key.file),
                          eng_->now(), {{"block", key.index}});
        }
      }
      e->referenced = true;
      if (!classified) {
        if (e->home == client) {
          metrics_->on_hit_local();
          if (sp != nullptr) {
            sp->demand_classified(dspan, DemandClass::kHitLocal, eng_->now());
          }
        } else {
          metrics_->on_hit_remote();
          if (sp != nullptr) {
            sp->demand_classified(dspan, DemandClass::kHitRemote, eng_->now());
          }
        }
      }
      co_await net_->copy(e->home, client, files_->block_size(), prio::kDemand,
                          dspan);
      break;
    }
    if (auto it = in_flight_.find(key); it != in_flight_.end()) {
      if (!classified) {
        metrics_->on_hit_inflight();
        if (sp != nullptr) {
          sp->demand_classified(dspan, DemandClass::kHitInflight, eng_->now());
        }
      }
      classified = true;
      // A demand request never waits at prefetch priority: raise the
      // queued fetch to demand service.
      it->second.op.boost(prio::kDemand);
      auto bc = it->second.bc;  // keep alive across the wait
      co_await bc->wait();
      continue;  // usually cached now; re-resolve
    }
    // Miss: demand-fetch from disk into a buffer homed at the client.
    if (!classified) {
      metrics_->on_miss();
      if (sp != nullptr) {
        sp->demand_classified(dspan, DemandClass::kMiss, eng_->now());
      }
    }
    classified = true;
    if (!files_->exists(key.file)) break;  // deleted under us
    auto bc = std::make_shared<Broadcast>(*eng_);
    DiskOpRef op;
    auto fetch = disks_->read(key, prio::kDemand, &op, dspan);
    in_flight_.emplace(key, InFlight{bc, op});
    metrics_->on_disk_read(/*prefetch=*/false);
    co_await fetch;
    in_flight_.erase(key);
    insert_block(key, client, /*dirty=*/false, /*prefetched=*/false);
    bc->notify_all();
    co_await net_->copy(client, client, files_->block_size(), prio::kDemand,
                        dspan);
    break;
  }
  if (sp != nullptr) sp->demand_done(dspan, eng_->now());
  joiner->arrive();
}

SimFuture<Done> Pafs::write(ProcId pid, NodeId client, FileId file,
                            Bytes offset, Bytes length) {
  SimPromise<Done> done(*eng_);
  write_task(pid, client, file, offset, length, done);
  return done.future();
}

SimTask Pafs::write_task(ProcId pid, NodeId client, FileId file, Bytes offset,
                         Bytes length, SimPromise<Done> done) {
  const SimTime t0 = eng_->now();
  if (!files_->exists(file) || length == 0) {
    done.set_value(Done{});
    co_return;
  }
  files_->extend(file, offset, length);
  const BlockRange range = files_->range(file, offset, length);
  const NodeId srv = server_node(file);
  co_await net_->message(client, srv);
  {
    auto guard = co_await server_cpu_[raw(srv)]->scoped(prio::kDemand);
    co_await eng_->delay(cfg_.server_op_cpu + cfg_.server_block_cpu * range.count);
  }

  prefetcher_->on_request(pid, client, file, range.first, range.count);

  // Write-back: data lands in cache buffers (write-allocate, whole-block
  // writes assumed) and reaches the disk via eviction or the sync daemon.
  for (std::uint32_t i = 0; i < range.count; ++i) {
    const BlockKey key{file, range.first + i};
    if (CacheEntry* e = pool_.find(key)) {
      pool_.touch(key);
      if (e->prefetched && !e->referenced) {
        // A write over a prefetched buffer still saved the demand fetch the
        // overwrite would otherwise have needed for the partial block; count
        // the first use so arrived == used + wasted keeps reconciling.
        metrics_->on_prefetch_first_use();
        prefetcher_->feedback_used();
        if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
          sp->settle_used(e->span, eng_->now());
        }
        if (trace_ != nullptr) {
          trace_->instant("prefetch", "prefetch.used", tracks::file(key.file),
                          eng_->now(), {{"block", key.index}});
        }
      }
      e->referenced = true;
      pool_.mark_dirty(key, eng_->now());
    } else {
      insert_block(key, client, /*dirty=*/true, /*prefetched=*/false);
    }
  }
  co_await net_->copy(client, client, range.count * files_->block_size(),
                      prio::kDemand);
  co_await net_->message(srv, client);
  if (trace_ != nullptr) {
    trace_->complete("fs", "fs.write", tracks::node_fs(client), t0,
                     eng_->now() - t0,
                     {{"file", raw(file)},
                      {"first", range.first},
                      {"blocks", range.count}});
  }
  done.set_value(Done{});
}

SimFuture<Done> Pafs::remove(ProcId, NodeId client, FileId file) {
  SimPromise<Done> done(*eng_);
  remove_task(client, file, done);
  return done.future();
}

SimTask Pafs::remove_task(NodeId client, FileId file, SimPromise<Done> done) {
  const NodeId srv = server_node(file);
  co_await net_->message(client, srv);
  {
    auto guard = co_await server_cpu_[raw(srv)]->scoped(prio::kDemand);
    co_await eng_->delay(cfg_.server_op_cpu);
  }
  prefetcher_->on_file_deleted(file);
  // Dirty buffers of a deleted file never reach the disk — the mechanism
  // that lets short-lived files vanish without write traffic.
  for (const CacheEntry& e : pool_.drop_file(file)) {
    if (e.prefetched && !e.referenced) {
      metrics_->on_prefetch_wasted();
      prefetcher_->feedback_wasted();
      if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
        sp->settle_wasted(e.span, WasteReason::kDeleted, eng_->now());
      }
      if (trace_ != nullptr) trace_wasted(e);
    }
  }
  files_->remove(file);
  co_await net_->message(srv, client);
  done.set_value(Done{});
}

SimFuture<Done> Pafs::prefetch_fetch(BlockKey key, NodeId target) {
  SimPromise<Done> done(*eng_);
  prefetch_task(key, target, done);
  return done.future();
}

SimTask Pafs::prefetch_task(BlockKey key, NodeId target, SimPromise<Done> done) {
  SpanCollector* const sp = eng_->span_collector();
  if (block_available(key) || !files_->exists(key.file)) {
    if (sp != nullptr) sp->prefetch_elided(/*site=*/0, key, eng_->now());
    if (trace_ != nullptr) {
      trace_->instant("prefetch", "prefetch.elided", tracks::file(key.file),
                      eng_->now(), {{"site", 0}, {"block", key.index}});
    }
    done.set_value(Done{});
    co_return;
  }
  const SimTime t0 = eng_->now();
  auto bc = std::make_shared<Broadcast>(*eng_);
  DiskOpRef op;
  auto fetch = disks_->read(key, cfg_.prefetch_priority, &op,
                            sp != nullptr ? sp->open_ref(/*site=*/0, key) : 0);
  in_flight_.emplace(key, InFlight{bc, op});
  metrics_->on_disk_read(/*prefetch=*/true);
  co_await fetch;
  in_flight_.erase(key);
  metrics_->on_prefetch_arrived();
  const SpanRef span =
      sp != nullptr
          ? sp->prefetch_arrived(/*site=*/0, key, /*via_peer=*/false,
                                 eng_->now())
          : 0;
  if (!files_->exists(key.file) || pool_.contains(key)) {
    // The file vanished mid-fetch, or a write landed its own buffer while
    // the disk was busy: the fetched data has nowhere useful to go.  Settle
    // the arrival as wasted right here so the prefetch accounting still
    // reconciles (arrived == used + wasted at end of run).
    metrics_->on_prefetch_wasted();
    prefetcher_->feedback_wasted();
    if (sp != nullptr) {
      sp->settle_wasted(span, WasteReason::kSuperseded, eng_->now());
    }
    if (trace_ != nullptr) {
      trace_->instant("prefetch", "prefetch.wasted", tracks::file(key.file),
                      eng_->now(), {{"block", key.index}});
    }
  } else {
    insert_block(key, target, /*dirty=*/false, /*prefetched=*/true, span);
  }
  if (trace_ != nullptr) {
    trace_->complete("prefetch", "prefetch.fetch", tracks::file(key.file), t0,
                     eng_->now() - t0, {{"site", 0}, {"block", key.index}});
  }
  bc->notify_all();
  done.set_value(Done{});
}

void Pafs::insert_block(BlockKey key, NodeId home, bool dirty, bool prefetched,
                        std::uint64_t span) {
  if (!files_->exists(key.file)) return;  // deleted while in flight
  CacheEntry entry;
  entry.key = key;
  entry.home = home;
  entry.dirty = dirty;
  entry.prefetched = prefetched;
  entry.referenced = false;
  entry.dirty_since = eng_->now();
  entry.span = span;
  if (auto victim = pool_.insert(entry)) handle_eviction(*victim);
}

void Pafs::handle_eviction(const CacheEntry& victim) {
  if (victim.prefetched && !victim.referenced) {
    metrics_->on_prefetch_wasted();
    prefetcher_->feedback_wasted();
    if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
      sp->settle_wasted(victim.span, WasteReason::kEvicted, eng_->now());
    }
    if (trace_ != nullptr) trace_wasted(victim);
  }
  if (victim.dirty) {
    metrics_->on_disk_write(victim.key);
    (void)disks_->write(victim.key, prio::kSync);
  }
}

void Pafs::provide_hints(ProcId pid, NodeId, FileId file,
                         std::vector<BlockRequest> hints) {
  prefetcher_->provide_hints(pid, file, std::move(hints));
}

void Pafs::flush_tick() {
  std::vector<BlockKey> dirty;
  dirty.reserve(pool_.dirty_count());
  pool_.for_each_dirty([&](const CacheEntry& e) { dirty.push_back(e.key); });
  for (const BlockKey& key : dirty) {
    pool_.mark_clean(key);
    metrics_->on_disk_write(key);
    (void)disks_->write(key, prio::kSync);
  }
}

void Pafs::finalize() {
  SpanCollector* const sp = eng_->span_collector();
  pool_.for_each([&](const CacheEntry& e) {
    if (e.prefetched && !e.referenced) {
      metrics_->on_prefetch_wasted();
      if (sp != nullptr) {
        sp->settle_wasted(e.span, WasteReason::kShutdown, eng_->now());
      }
      if (trace_ != nullptr) trace_wasted(e);
    }
    // Shutdown flush: dirty buffers that survived to the end of the run
    // would be written once by the final sync; account for them.
    if (e.dirty) metrics_->on_disk_write(e.key);
  });
}

}  // namespace lap
