// BufferPool: a fixed-capacity set of cache buffers with LRU replacement.
//
// PAFS uses one globally-managed pool spanning all nodes (each entry tagged
// with the node whose physical memory holds it); xFS uses one pool per
// node.  The pool tracks per-entry dirtiness (for the periodic
// fault-tolerance write-back), prefetch provenance (for mis-prediction
// accounting) and per-file membership (for O(blocks-of-file) delete).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
// lap-lint: allow-next-line(container-policy) — see dirty_ below.
#include <unordered_set>
#include <vector>

#include "util/block.hpp"
#include "cache/lru.hpp"
#include "obs/trace_event.hpp"
#include "util/flat_hash.hpp"
#include "util/units.hpp"

namespace lap {

class Engine;

struct CacheEntry {  // lap-owns: value — snapshot passed across domains
  BlockKey key{};
  NodeId home{};           // node whose memory holds the buffer
  bool dirty = false;
  bool prefetched = false;  // brought in speculatively...
  bool referenced = false;  // ...and later used by a demand request?
  SimTime dirty_since;      // first dirtying of the current dirty episode
  std::uint8_t recirculation = 0;  // N-chance forwarding hops (xFS)
  // Provenance span ref (obs/span.hpp) riding with the buffer so the span
  // can be settled used/wasted wherever the entry's life ends; 0 = none.
  std::uint64_t span = 0;
};

class BufferPool {
 public:
  explicit BufferPool(std::size_t capacity_blocks);

  /// Lookup without touching recency.
  [[nodiscard]] CacheEntry* find(BlockKey key);
  [[nodiscard]] const CacheEntry* find(BlockKey key) const;
  [[nodiscard]] bool contains(BlockKey key) const;

  /// Promote to most-recently-used.
  void touch(BlockKey key);

  /// Insert a new entry.  If the key already exists the resident buffer is
  /// kept and touched, with dirty/prefetched/referenced merged in (OR), so a
  /// concurrent writer's dirty bit survives a clean fetch completing on the
  /// same key.  If the pool is full, the LRU entry is evicted and returned
  /// so the caller can write it back / forward it.
  std::optional<CacheEntry> insert(const CacheEntry& entry);

  /// Remove and return the LRU entry (used by xFS N-chance forwarding).
  std::optional<CacheEntry> evict_lru();

  /// Remove a specific entry; returns it if present.
  std::optional<CacheEntry> erase(BlockKey key);

  /// Remove every block of `file` (delete/truncate); dirty buffers are
  /// simply discarded — this is precisely how short-lived files avoid ever
  /// reaching the disk.  Returns the dropped entries.
  std::vector<CacheEntry> drop_file(FileId file);

  /// Mark dirty / clean, maintaining the dirty index used by the sync scan.
  void mark_dirty(BlockKey key, SimTime now);
  void mark_clean(BlockKey key);

  /// Invoke `fn` for every dirty entry (iteration order unspecified).
  void for_each_dirty(const std::function<void(const CacheEntry&)>& fn) const;

  /// Invoke `fn` for every entry.
  void for_each(const std::function<void(const CacheEntry&)>& fn) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t dirty_count() const { return dirty_.size(); }
  [[nodiscard]] const LruListStats& lru_stats() const { return lru_.stats(); }

  /// Attach the trace sink: inserts/evictions/invalidations become instants
  /// on `track` (the owning node's cache row), timestamped off `eng`.
  void set_trace(TraceSink* sink, const Engine* eng, TraceTrack track) {
    trace_ = sink;
    trace_eng_ = eng;
    trace_track_ = track;
  }

 private:
  void unindex(BlockKey key);
  void trace_instant(const char* name, const CacheEntry& e) const;

  TraceSink* trace_ = nullptr;
  const Engine* trace_eng_ = nullptr;
  TraceTrack trace_track_{};
  std::size_t capacity_;
  // Flat tables, reserve()d to `capacity_` at construction so the steady
  // state never rehashes (lookups on the demand path are the pool's
  // hottest operation).
  FlatHashMap<BlockKey, CacheEntry, BlockKeyHash> entries_;
  LruList<BlockKey, BlockKeyHash> lru_;
  // Deliberately still node-based: the sync daemon flushes dirty buffers in
  // this set's iteration order, and keeping the seed's std::unordered_set
  // preserves that order bit-exactly (it only sees dirty-transition
  // traffic, not per-access traffic, so it is off the hot path).
  // lap-lint: allow-next-line(container-policy)
  std::unordered_set<BlockKey, BlockKeyHash> dirty_;
  FlatHashMap<std::uint32_t, FlatHashSet<std::uint32_t>>
      file_index_;  // raw(file) -> block indices
};

}  // namespace lap
