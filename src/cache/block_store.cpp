#include "cache/block_store.hpp"

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace lap {

void BufferPool::trace_instant(const char* name, const CacheEntry& e) const {
  trace_->instant("cache", name, trace_track_, trace_eng_->now(),
                  {{"file", raw(e.key.file)},
                   {"block", e.key.index},
                   {"dirty", static_cast<int>(e.dirty)},
                   {"prefetched", static_cast<int>(e.prefetched)},
                   {"referenced", static_cast<int>(e.referenced)}});
}

BufferPool::BufferPool(std::size_t capacity_blocks) : capacity_(capacity_blocks) {
  LAP_EXPECTS(capacity_blocks >= 1);
  // A full pool holds exactly `capacity_` entries; sizing the tables up
  // front avoids every growth rehash (only tombstone compaction after long
  // erase/insert churn can still re-slot the tables).
  entries_.reserve(capacity_blocks);
  lru_.reserve(capacity_blocks);
}

CacheEntry* BufferPool::find(BlockKey key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const CacheEntry* BufferPool::find(BlockKey key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

bool BufferPool::contains(BlockKey key) const { return entries_.contains(key); }

void BufferPool::touch(BlockKey key) {
  LAP_EXPECTS(entries_.contains(key));
  lru_.touch(key);
}

std::optional<CacheEntry> BufferPool::insert(const CacheEntry& entry) {
  if (auto it = entries_.find(entry.key); it != entries_.end()) {
    // Merge into the resident buffer.  A plain overwrite would lose a dirty
    // bit when a clean fetch completion lands on a buffer a writer dirtied
    // in the meantime (a lost write), and would erase prefetch provenance
    // mid-accounting — so flags combine monotonically instead.
    CacheEntry& cur = it->second;
    if (entry.dirty && !cur.dirty) {
      cur.dirty_since = entry.dirty_since;
      dirty_.insert(entry.key);
    }
    cur.dirty = cur.dirty || entry.dirty;
    cur.prefetched = cur.prefetched || entry.prefetched;
    cur.referenced = cur.referenced || entry.referenced;
    if (cur.span == 0) cur.span = entry.span;
    lru_.touch(entry.key);
    if (trace_ != nullptr) trace_instant("cache.replace", cur);
    return std::nullopt;
  }

  std::optional<CacheEntry> victim;
  if (entries_.size() >= capacity_) {
    victim = evict_lru();
  }
  entries_.emplace(entry.key, entry);
  lru_.push_front(entry.key);
  if (entry.dirty) dirty_.insert(entry.key);
  file_index_[raw(entry.key.file)].insert(entry.key.index);
  if (trace_ != nullptr) trace_instant("cache.insert", entry);
  return victim;
}

std::optional<CacheEntry> BufferPool::evict_lru() {
  auto key = lru_.pop_back();
  if (!key) return std::nullopt;
  auto it = entries_.find(*key);
  LAP_ASSERT(it != entries_.end());
  CacheEntry victim = it->second;
  entries_.erase(it);
  dirty_.erase(*key);
  unindex(*key);
  if (trace_ != nullptr) trace_instant("cache.evict", victim);
  return victim;
}

std::optional<CacheEntry> BufferPool::erase(BlockKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  CacheEntry entry = it->second;
  entries_.erase(it);
  lru_.erase(key);
  dirty_.erase(key);
  unindex(key);
  if (trace_ != nullptr) trace_instant("cache.erase", entry);
  return entry;
}

std::vector<CacheEntry> BufferPool::drop_file(FileId file) {
  std::vector<CacheEntry> dropped;
  auto it = file_index_.find(raw(file));
  if (it == file_index_.end()) return dropped;
  // Copy: erase() mutates the index we are iterating.
  std::vector<std::uint32_t> indices;
  indices.reserve(it->second.size());
  it->second.for_each([&](std::uint32_t index) { indices.push_back(index); });
  dropped.reserve(indices.size());
  for (std::uint32_t index : indices) {
    const BlockKey key{file, index};
    auto eit = entries_.find(key);
    LAP_ASSERT(eit != entries_.end());
    dropped.push_back(eit->second);
    entries_.erase(eit);
    lru_.erase(key);
    dirty_.erase(key);
  }
  file_index_.erase(raw(file));
  if (trace_ != nullptr && !dropped.empty()) {
    trace_->instant("cache", "cache.drop_file", trace_track_,
                    trace_eng_->now(),
                    {{"file", raw(file)},
                     {"blocks", static_cast<std::uint64_t>(dropped.size())}});
  }
  return dropped;
}

void BufferPool::mark_dirty(BlockKey key, SimTime now) {
  auto* entry = find(key);
  LAP_EXPECTS(entry != nullptr);
  if (!entry->dirty) {
    entry->dirty = true;
    entry->dirty_since = now;
    dirty_.insert(key);
    if (trace_ != nullptr) trace_instant("cache.mark_dirty", *entry);
  }
}

void BufferPool::mark_clean(BlockKey key) {
  auto* entry = find(key);
  if (entry == nullptr) return;
  if (entry->dirty && trace_ != nullptr) {
    trace_instant("cache.mark_clean", *entry);
  }
  entry->dirty = false;
  dirty_.erase(key);
}

void BufferPool::for_each_dirty(
    const std::function<void(const CacheEntry&)>& fn) const {
  for (const BlockKey& key : dirty_) {
    auto it = entries_.find(key);
    LAP_ASSERT(it != entries_.end());
    fn(it->second);
  }
}

void BufferPool::for_each(const std::function<void(const CacheEntry&)>& fn) const {
  for (const auto& [key, entry] : entries_) fn(entry);
}

void BufferPool::unindex(BlockKey key) {
  auto it = file_index_.find(raw(key.file));
  if (it == file_index_.end()) return;
  it->second.erase(key.index);
  if (it->second.empty()) file_index_.erase(it);
}

}  // namespace lap
