// A small LRU ordering container: list of keys with O(1) touch/evict via a
// side map of iterators.  Used by the buffer pools; kept separate so its
// invariants are unit-testable in isolation.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "util/assert.hpp"

namespace lap {

/// Observability counters: how hard the replacement order is being worked.
/// Sampled by the metrics registry (hit churn vs. eviction churn is the
/// first thing to look at when a cache size behaves oddly).
struct LruListStats {
  std::uint64_t pushes = 0;
  std::uint64_t touches = 0;
  std::uint64_t pops = 0;
  std::uint64_t erases = 0;
};

template <typename K, typename Hash = std::hash<K>>
class LruList {
 public:
  /// Insert as most-recently-used.  Key must not be present.
  void push_front(const K& key) {
    LAP_EXPECTS(!contains(key));
    ++stats_.pushes;
    order_.push_front(key);
    index_.emplace(key, order_.begin());
  }

  /// Move an existing key to most-recently-used.
  void touch(const K& key) {
    auto it = index_.find(key);
    LAP_EXPECTS(it != index_.end());
    ++stats_.touches;
    order_.splice(order_.begin(), order_, it->second);
  }

  /// Remove and return the least-recently-used key.
  std::optional<K> pop_back() {
    if (order_.empty()) return std::nullopt;
    ++stats_.pops;
    K key = order_.back();
    order_.pop_back();
    index_.erase(key);
    return key;
  }

  /// Peek at the least-recently-used key without removing it.
  [[nodiscard]] std::optional<K> back() const {
    if (order_.empty()) return std::nullopt;
    return order_.back();
  }

  bool erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    ++stats_.erases;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  [[nodiscard]] bool contains(const K& key) const { return index_.contains(key); }
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] bool empty() const { return index_.empty(); }
  [[nodiscard]] const LruListStats& stats() const { return stats_; }

 private:
  std::list<K> order_;  // front = MRU, back = LRU
  std::unordered_map<K, typename std::list<K>::iterator, Hash> index_;
  LruListStats stats_;
};

}  // namespace lap
