// A small LRU ordering container with O(1) touch/evict.
//
// Intrusive array implementation: recency links are prev/next *indices*
// into one contiguous node array recycled through a free-list, and the only
// per-key lookup is a flat open-addressing index from key to node slot — no
// std::list nodes, no per-entry allocation after the arrays warm up.  Each
// operation hashes its key at most once (find and erase share the slot, the
// historical double-hash of pop_back/touch is gone).  Used by the buffer
// pools; kept separate so its invariants are unit-testable in isolation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace lap {

/// Observability counters: how hard the replacement order is being worked.
/// Sampled by the metrics registry (hit churn vs. eviction churn is the
/// first thing to look at when a cache size behaves oddly).
struct LruListStats {
  std::uint64_t pushes = 0;
  std::uint64_t touches = 0;
  std::uint64_t pops = 0;
  std::uint64_t erases = 0;
};

template <typename K, typename Hash = FlatHash<K>>
class LruList {
 public:
  /// Pre-size the node array and index for `n` keys.
  void reserve(std::size_t n) {
    nodes_.reserve(n);
    index_.reserve(n);
  }

  /// Insert as most-recently-used.  Key must not be present.
  void push_front(const K& key) {
    auto [it, inserted] = index_.emplace(key, kNull);
    LAP_EXPECTS(inserted);
    ++stats_.pushes;
    std::uint32_t node;
    if (free_ != kNull) {
      node = free_;
      free_ = nodes_[node].next;
      nodes_[node].key = key;
    } else {
      node = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{key, kNull, kNull});
    }
    it->second = node;
    link_front(node);
  }

  /// Move an existing key to most-recently-used.
  void touch(const K& key) {
    auto it = index_.find(key);
    LAP_EXPECTS(it != index_.end());
    ++stats_.touches;
    const std::uint32_t node = it->second;
    if (node == head_) return;
    unlink(node);
    link_front(node);
  }

  /// Remove and return the least-recently-used key.
  std::optional<K> pop_back() {
    if (tail_ == kNull) return std::nullopt;
    ++stats_.pops;
    const std::uint32_t node = tail_;
    K key = std::move(nodes_[node].key);
    unlink(node);
    release(node);
    auto it = index_.find(key);
    LAP_ASSERT(it != index_.end());
    index_.erase(it);
    return key;
  }

  /// Peek at the least-recently-used key without removing it.
  [[nodiscard]] std::optional<K> back() const {
    if (tail_ == kNull) return std::nullopt;
    return nodes_[tail_].key;
  }

  bool erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    ++stats_.erases;
    const std::uint32_t node = it->second;
    unlink(node);
    release(node);
    index_.erase(it);
    return true;
  }

  [[nodiscard]] bool contains(const K& key) const { return index_.contains(key); }
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] bool empty() const { return index_.empty(); }
  [[nodiscard]] const LruListStats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kNull = 0xffffffffU;

  struct Node {
    K key;
    std::uint32_t prev;
    std::uint32_t next;
  };

  void link_front(std::uint32_t node) {
    nodes_[node].prev = kNull;
    nodes_[node].next = head_;
    if (head_ != kNull) nodes_[head_].prev = node;
    head_ = node;
    if (tail_ == kNull) tail_ = node;
  }

  void unlink(std::uint32_t node) {
    const std::uint32_t p = nodes_[node].prev;
    const std::uint32_t n = nodes_[node].next;
    if (p != kNull) nodes_[p].next = n; else head_ = n;
    if (n != kNull) nodes_[n].prev = p; else tail_ = p;
  }

  void release(std::uint32_t node) {
    // Freed nodes are chained through their `next` field.
    nodes_[node].next = free_;
    free_ = node;
  }

  std::vector<Node> nodes_;
  std::uint32_t head_ = kNull;
  std::uint32_t tail_ = kNull;
  std::uint32_t free_ = kNull;
  FlatHashMap<K, std::uint32_t, Hash> index_;
  LruListStats stats_;
};

}  // namespace lap
