#include "cache/sync_daemon.hpp"

#include <functional>

#include "util/assert.hpp"

namespace lap {

SyncDaemon::SyncDaemon(Engine& eng, SimTime interval,
                       std::function<void()> flush_tick, const bool* stop_flag)
    : eng_(&eng),
      interval_(interval),
      flush_tick_(std::move(flush_tick)),
      stop_flag_(stop_flag) {
  LAP_EXPECTS(interval > SimTime::zero());
  LAP_EXPECTS(stop_flag != nullptr);
}

void SyncDaemon::start() {
  LAP_EXPECTS(!started_);
  started_ = true;
  run();
}

SimTask SyncDaemon::run() {
  while (!*stop_flag_) {
    co_await eng_->delay(interval_);
    if (*stop_flag_) break;
    ++ticks_;
    flush_tick_();
  }
}

}  // namespace lap
