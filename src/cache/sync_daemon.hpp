// Periodic write-back daemon.
//
// For fault tolerance, dirty cache blocks are flushed to disk on a fixed
// period (the paper: "for fault-tolerance issues, these blocks are
// periodically sent to the disk").  The daemon is a simulation coroutine
// that fires a file-system-provided flush callback every interval until the
// workload signals completion.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "util/units.hpp"

namespace lap {

class SyncDaemon {
 public:
  /// `flush_tick` is invoked once per interval; `stop_flag` ends the loop.
  SyncDaemon(Engine& eng, SimTime interval, std::function<void()> flush_tick,
             const bool* stop_flag);

  /// Begin ticking (first tick one interval from now).
  void start();

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  SimTask run();

  Engine* eng_;
  SimTime interval_;
  std::function<void()> flush_tick_;
  const bool* stop_flag_;
  std::uint64_t ticks_ = 0;
  bool started_ = false;
};

}  // namespace lap
