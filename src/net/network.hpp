// DIMEMAS-style communication model.
//
// Every transfer costs a startup (different for intra-node and inter-node
// communication) plus a size-proportional term.  Block payload movement
// between two nodes' memories uses the memory-copy startups and the memory
// or interconnect bandwidth, exactly as Table 1 of the paper parameterises
// it.  Optionally, each node's NIC serialises its outgoing remote
// transfers, which produces contention under bursty traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/future.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "util/units.hpp"

namespace lap {

class TraceSink;

struct NetConfig {
  SimTime local_port_startup;   // control message, same node
  SimTime remote_port_startup;  // control message, across the network
  SimTime local_copy_startup;   // data copy within a node
  SimTime remote_copy_startup;  // data copy between nodes
  Bandwidth memory_bw;          // intra-node copy bandwidth
  Bandwidth network_bw;         // interconnect bandwidth
  bool model_contention = true;  // serialise each node's outgoing transfers

  /// Least latency any hop through this network can take — the floor the
  /// sharded engine's epoch lookahead is derived from (DESIGN.md §14): no
  /// message can cross between partitions faster than this.
  [[nodiscard]] SimTime min_hop_latency() const {
    return local_port_startup < remote_port_startup ? local_port_startup
                                                    : remote_port_startup;
  }

  /// Least latency of any *cross-domain* interaction under the per-node
  /// domain map: control messages (either port startup — a node talking to
  /// the directory domain pays at least the local startup even when the
  /// manager is co-resident) and migrating block copies (whose wire time
  /// is bounded below by the remote copy startup).  The epoch lookahead
  /// must not exceed this, or a model→model hop could land inside its own
  /// epoch.
  [[nodiscard]] SimTime min_cross_latency() const {
    const SimTime hop = min_hop_latency();
    return remote_copy_startup < hop ? remote_copy_startup : hop;
  }
};

struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t transfers = 0;
  std::uint64_t bytes_moved = 0;
};

class Network {
 public:
  Network(Engine& eng, NetConfig cfg, std::uint32_t nodes);

  /// Closed-form latency of a control message src -> dst (startup only;
  /// control payloads are negligible next to 8 KB blocks).
  [[nodiscard]] SimTime message_latency(NodeId src, NodeId dst) const;

  /// Closed-form latency of moving `n` payload bytes src -> dst.
  [[nodiscard]] SimTime copy_latency(NodeId src, NodeId dst, Bytes n) const;

  /// Send a control message; resolves after the modelled latency (and NIC
  /// queueing when contention is enabled).
  [[nodiscard]] SimFuture<Done> message(NodeId src, NodeId dst);

  /// Move `n` payload bytes from src's memory to dst's memory.  `span`
  /// tags the transfer with a provenance span ref (obs/span.hpp, 0 = none):
  /// NIC wait and wire time are attributed to it as one hop.
  [[nodiscard]] SimFuture<Done> copy(NodeId src, NodeId dst, Bytes n,
                                     int priority = prio::kDemand,
                                     std::uint64_t span = 0);

  /// Record a control message that is modelled as cross-domain mail rather
  /// than an awaited future (the sharded protocol paths): bumps the same
  /// stats and emits the same trace record message() would, and returns
  /// the latency the mail must carry.
  SimTime note_message(NodeId src, NodeId dst);

  /// Source half of a *migrating* copy: the calling coroutine runs in the
  /// source's domain, awaits this until the payload departs (NIC queueing
  /// under contention), then hops to the destination's domain at
  /// now() + copy_latency(src, dst, n).  Stats, span attribution, and the
  /// trace record are all noted at the source, exactly as copy() would;
  /// NIC occupancy for the wire time is modelled by a detached holder
  /// task, so later transfers from this node still queue behind it.
  [[nodiscard]] SimFuture<Done> begin_transfer(NodeId src, NodeId dst, Bytes n,
                                               int priority = prio::kDemand,
                                               std::uint64_t span = 0);

  /// Attach the trace sink: every message/copy service window becomes a
  /// span on the sending node's network track.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Size the per-domain stats lanes (driver, after configure_domains).
  /// Each lane is written only by events executing in its own domain.
  void set_domains(std::size_t domains);

  /// Whole-run totals, summed over the per-domain lanes in domain order.
  [[nodiscard]] NetStats stats() const;
  [[nodiscard]] const NetConfig& config() const { return cfg_; }

 private:
  SimTask run_transfer(NodeId src, NodeId dst, Bytes bytes, SimTime duration,
                       int priority, std::uint64_t span,
                       SimPromise<Done> done);
  SimTask hold_nic(NodeId src, NodeId dst, Bytes bytes, SimTime duration,
                   int priority, std::uint64_t span, SimPromise<Done> done);
  [[nodiscard]] NetStats& lane();

  // Line-padded so two shards bumping neighbouring lanes never share a
  // cache line.
  struct alignas(64) StatsLane : NetStats {};

  Engine* eng_;
  NetConfig cfg_;
  TraceSink* trace_ = nullptr;
  std::vector<std::unique_ptr<Resource>> nics_;  // one per node
  // One stats lane per domain (single writer each); stats() merges them.
  std::vector<StatsLane> stats_;
};

}  // namespace lap
