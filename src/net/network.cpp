#include "net/network.hpp"

#include <cstdint>
#include <memory>

#include "obs/span.hpp"
#include "obs/trace_event.hpp"

namespace lap {

Network::Network(Engine& eng, NetConfig cfg, std::uint32_t nodes)
    : eng_(&eng), cfg_(cfg), stats_(1) {
  LAP_EXPECTS(nodes >= 1);
  if (cfg_.model_contention) {
    nics_.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      nics_.push_back(std::make_unique<Resource>(eng));
    }
  }
}

void Network::set_domains(std::size_t domains) {
  LAP_EXPECTS(domains >= 1);
  stats_.assign(domains, StatsLane{});
}

NetStats& Network::lane() { return stats_[eng_->current_domain()]; }

NetStats Network::stats() const {
  NetStats total;
  for (const StatsLane& s : stats_) {
    total.messages += s.messages;
    total.transfers += s.transfers;
    total.bytes_moved += s.bytes_moved;
  }
  return total;
}

SimTime Network::message_latency(NodeId src, NodeId dst) const {
  return src == dst ? cfg_.local_port_startup : cfg_.remote_port_startup;
}

SimTime Network::copy_latency(NodeId src, NodeId dst, Bytes n) const {
  if (src == dst) {
    return cfg_.local_copy_startup + cfg_.memory_bw.transfer_time(n);
  }
  return cfg_.remote_copy_startup + cfg_.network_bw.transfer_time(n);
}

SimFuture<Done> Network::message(NodeId src, NodeId dst) {
  SimPromise<Done> done(*eng_);
  // Control messages are short; they are charged latency but do not occupy
  // the NIC (matching DIMEMAS, where the startup is CPU activity).
  const SimTime latency = note_message(src, dst);
  eng_->schedule_in(latency, [done] { done.set_value(Done{}); });
  return done.future();
}

SimTime Network::note_message(NodeId src, NodeId dst) {
  ++lane().messages;
  const SimTime latency = message_latency(src, dst);
  if (trace_ != nullptr) {
    trace_->complete("net", "net.message", tracks::node_net(src), eng_->now(),
                     latency, {{"src", raw(src)}, {"dst", raw(dst)}});
  }
  return latency;
}

SimFuture<Done> Network::copy(NodeId src, NodeId dst, Bytes n, int priority,
                              std::uint64_t span) {
  NetStats& st = lane();
  ++st.transfers;
  st.bytes_moved += n;
  SimPromise<Done> done(*eng_);
  const SimTime duration = copy_latency(src, dst, n);
  const bool remote = src != dst;
  if (cfg_.model_contention && remote) {
    run_transfer(src, dst, n, duration, priority, span, done);
  } else {
    if (span != 0) {
      if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
        sp->net_transferred(span, SimTime::zero(), duration);
      }
    }
    if (trace_ != nullptr) {
      trace_->complete("net", "net.copy", tracks::node_net(src), eng_->now(),
                       duration,
                       {{"src", raw(src)}, {"dst", raw(dst)}, {"bytes", n}});
    }
    eng_->schedule_in(duration, [done] { done.set_value(Done{}); });
  }
  return done.future();
}

SimTask Network::run_transfer(NodeId src, NodeId dst, Bytes bytes,
                              SimTime duration, int priority,
                              std::uint64_t span, SimPromise<Done> done) {
  const SimTime enqueued = eng_->now();
  Resource& nic = *nics_[raw(src)];
  auto guard = co_await nic.scoped(priority);
  // The span starts when the NIC is acquired, so queueing delay under
  // contention is visible as the gap from the enclosing operation.
  if (span != 0) {
    if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
      sp->net_transferred(span, eng_->now() - enqueued, duration);
    }
  }
  if (trace_ != nullptr) {
    trace_->complete("net", "net.copy", tracks::node_net(src), eng_->now(),
                     duration,
                     {{"src", raw(src)}, {"dst", raw(dst)}, {"bytes", bytes}});
  }
  co_await eng_->delay(duration);
  done.set_value(Done{});
}

SimFuture<Done> Network::begin_transfer(NodeId src, NodeId dst, Bytes n,
                                        int priority, std::uint64_t span) {
  NetStats& st = lane();
  ++st.transfers;
  st.bytes_moved += n;
  SimPromise<Done> done(*eng_);
  const SimTime duration = copy_latency(src, dst, n);
  const bool remote = src != dst;
  if (cfg_.model_contention && remote) {
    hold_nic(src, dst, n, duration, priority, span, done);
  } else {
    if (span != 0) {
      if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
        sp->net_transferred(span, SimTime::zero(), duration);
      }
    }
    if (trace_ != nullptr) {
      trace_->complete("net", "net.copy", tracks::node_net(src), eng_->now(),
                       duration,
                       {{"src", raw(src)}, {"dst", raw(dst)}, {"bytes", n}});
    }
    done.set_value(Done{});  // departs immediately: no NIC to wait for
  }
  return done.future();
}

SimTask Network::hold_nic(NodeId src, NodeId dst, Bytes bytes,
                          SimTime duration, int priority, std::uint64_t span,
                          SimPromise<Done> done) {
  const SimTime enqueued = eng_->now();
  Resource& nic = *nics_[raw(src)];
  auto guard = co_await nic.scoped(priority);
  if (span != 0) {
    if (SpanCollector* sp = eng_->span_collector(); sp != nullptr) {
      sp->net_transferred(span, eng_->now() - enqueued, duration);
    }
  }
  if (trace_ != nullptr) {
    trace_->complete("net", "net.copy", tracks::node_net(src), eng_->now(),
                     duration,
                     {{"src", raw(src)}, {"dst", raw(dst)}, {"bytes", bytes}});
  }
  // The caller hops away as soon as the payload departs; this detached
  // task keeps the NIC occupied for the wire time so later transfers from
  // this node queue behind it.
  done.set_value(Done{});
  co_await eng_->delay(duration);
}

}  // namespace lap
