#include "driver/metrics_json.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "trace/trace.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

namespace lap {

RunManifest make_manifest(const std::string& title, const RunConfig& cfg,
                          const Trace& trace) {
  RunManifest m;
  m.title = title;
  m.machine = cfg.machine.describe();
  m.nodes = std::max(cfg.machine.nodes, trace.node_span());
  m.disks = cfg.machine.disks;
  m.block_size = cfg.machine.block_size;
  m.processes = trace.processes.size();
  m.files = trace.files.size();
  m.io_ops = trace.total_io_ops();
  m.fs = to_string(cfg.fs);
  m.algorithm = cfg.algorithm.name();
  m.cache_per_node = cfg.cache_per_node;
  m.sync_interval_ms = cfg.sync_interval.millis();
  m.warmup_fraction = cfg.warmup_fraction;
  return m;
}

void write_run_result_json(JsonWriter& w, const RunResult& r) {
  w.begin_object();
  w.member("fs", r.fs);
  w.member("algorithm", r.algorithm);
  w.member("cache_per_node_bytes", r.cache_per_node);
  w.member("avg_read_ms", r.avg_read_ms);
  w.member("avg_write_ms", r.avg_write_ms);
  w.member("read_p95_ms", r.read_p95_ms);
  w.member("reads", r.reads);
  w.member("writes", r.writes);
  w.member("disk_reads", r.disk_reads);
  w.member("disk_writes", r.disk_writes);
  w.member("disk_accesses", r.disk_accesses);
  w.member("disk_prefetch_reads", r.disk_prefetch_reads);
  w.member("writes_per_block", r.writes_per_block);
  w.member("hit_ratio", r.hit_ratio);
  w.member("hits_local", r.hits_local);
  w.member("hits_remote", r.hits_remote);
  w.member("hits_inflight", r.hits_inflight);
  w.member("misses", r.misses);
  w.member("misprediction_ratio", r.misprediction_ratio);
  w.member("prefetch_issued", r.prefetch_issued);
  w.member("prefetch_fallback", r.prefetch_fallback);
  w.member("fallback_fraction", r.fallback_fraction);
  w.member("prefetch_arrived", r.prefetch_arrived);
  w.member("prefetch_used", r.prefetch_used);
  w.member("prefetch_wasted", r.prefetch_wasted);
  w.member("sim_seconds", r.sim_duration.seconds());
  w.member("events", r.events);
  w.member("wall_seconds", r.wall_seconds);
  w.end_object();
}

void write_metrics_json(std::ostream& os, const RunManifest& manifest,
                        const std::vector<RunResult>& results,
                        const CounterRegistry* registry) {
  JsonWriter w(os);
  w.begin_object();
  w.member("schema_version", std::int64_t{1});

  w.key("manifest");
  w.begin_object();
  w.member("title", manifest.title);
  w.member("machine", manifest.machine);
  w.member("nodes", std::uint64_t{manifest.nodes});
  w.member("disks", std::uint64_t{manifest.disks});
  w.member("block_size", manifest.block_size);
  w.member("workload", manifest.workload);
  w.member("workload_seed", manifest.workload_seed);
  w.member("processes", std::uint64_t{manifest.processes});
  w.member("files", std::uint64_t{manifest.files});
  w.member("io_ops", manifest.io_ops);
  w.member("fs", manifest.fs);
  w.member("algorithm", manifest.algorithm);
  w.member("cache_per_node_bytes", manifest.cache_per_node);
  w.member("sync_interval_ms", manifest.sync_interval_ms);
  w.member("warmup_fraction", manifest.warmup_fraction);
  w.member("trace_out", manifest.trace_out);
  w.end_object();

  w.key("runs");
  w.begin_array();
  for (const RunResult& r : results) write_run_result_json(w, r);
  w.end_array();

  if (registry != nullptr) {
    w.key("counters");
    registry->write_json(w);
  }
  w.end_object();
  os << '\n';
}

ObsOptions parse_obs_options(const Flags& flags) {
  ObsOptions opts;
  opts.trace_out = flags.get_opt("trace-out");
  opts.metrics_json = flags.get_opt("metrics-json");
  // User input: reject a non-positive period here rather than letting the
  // sampler's precondition abort the run.
  const std::int64_t sample_ms = flags.get_int("obs-sample-ms", 50);
  if (sample_ms <= 0) {
    LAP_LOG(kWarn) << "--obs-sample-ms must be positive, using default 50";
  } else {
    opts.sample_interval = SimTime::ms(static_cast<double>(sample_ms));
  }
  return opts;
}

}  // namespace lap
