#include "driver/sweep.hpp"

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "obs/trace_event.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace lap {

std::vector<Bytes> paper_cache_sizes() {
  return {1_MiB, 2_MiB, 4_MiB, 8_MiB, 16_MiB};
}

std::vector<RunResult> run_sweep(
    const Trace& trace, const RunConfig& base, const SweepSpec& spec,
    std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& on_done) {
  LAP_EXPECTS(!spec.cache_sizes.empty() && !spec.algorithms.empty());
  const std::size_t total = spec.cache_sizes.size() * spec.algorithms.size();

  ThreadPool pool(threads);
  std::atomic<std::size_t> completed{0};
  std::vector<std::future<RunResult>> futures;
  futures.reserve(total);

  for (const AlgorithmSpec& algo : spec.algorithms) {
    for (Bytes cache : spec.cache_sizes) {
      RunConfig cfg = base;
      cfg.algorithm = algo;
      cfg.cache_per_node = cache;
      // A TraceSink records exactly one run; concurrent runs sharing the
      // base config's sink would interleave their events, so the base
      // config's sink is dropped and each run gets a private one from
      // spec.sink_factory (if any).  The counter registry samples through
      // the sink and is per-run for the same reason.
      cfg.trace = nullptr;
      cfg.counters = nullptr;
      // shared_ptr (not unique_ptr): ThreadPool::submit needs a copyable
      // callable.
      std::shared_ptr<TraceSink> sink;
      if (spec.sink_factory) sink = spec.sink_factory(cfg);
      futures.push_back(pool.submit([&trace, cfg, sink, &completed, total,
                                     &on_done] {
        RunConfig run_cfg = cfg;
        run_cfg.trace = sink.get();
        RunResult r = run_simulation(trace, run_cfg);
        if (sink != nullptr) sink->close();
        const std::size_t done = completed.fetch_add(1) + 1;
        LAP_LOG(kDebug) << "sweep: " << r.algorithm << "/" << r.fs << " cache="
                        << (r.cache_per_node >> 20) << " MiB done (" << done
                        << "/" << total << ")";
        if (on_done) on_done(done, total);
        return r;
      }));
    }
  }

  std::vector<RunResult> results;
  results.reserve(total);
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace lap
