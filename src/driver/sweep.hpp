// Parameter-sweep harness: runs the (cache size x algorithm) grid of one
// figure, farming independent simulations out to a thread pool.  Each
// simulation is single-threaded and deterministic; the trace is shared
// read-only.
#pragma once

#include <functional>
#include <vector>

#include "driver/simulation.hpp"
#include "trace/trace.hpp"

namespace lap {

struct SweepSpec {
  std::vector<Bytes> cache_sizes;          // per-node, in bytes
  std::vector<AlgorithmSpec> algorithms;
};

/// The paper's x-axis: 1, 2, 4, 8, 16 MB per node.
[[nodiscard]] std::vector<Bytes> paper_cache_sizes();

/// Run the full grid; results are ordered algorithm-major, cache-minor
/// (results[a * n_caches + c]).  `on_done(completed, total)` is invoked
/// after each run for progress reporting (from worker threads; keep it
/// cheap and thread-safe).
[[nodiscard]] std::vector<RunResult> run_sweep(
    const Trace& trace, const RunConfig& base, const SweepSpec& spec,
    std::size_t threads = 0,
    const std::function<void(std::size_t, std::size_t)>& on_done = {});

}  // namespace lap
