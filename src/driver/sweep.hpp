// Parameter-sweep harness: runs the (cache size x algorithm) grid of one
// figure, farming independent simulations out to a thread pool.  Each
// simulation is single-threaded and deterministic; the trace is shared
// read-only.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "driver/simulation.hpp"
#include "trace/trace.hpp"

namespace lap {

class TraceSink;

struct SweepSpec {
  std::vector<Bytes> cache_sizes;          // per-node, in bytes
  std::vector<AlgorithmSpec> algorithms;

  // Optional per-run observability: called once per grid point (from the
  // coordinating thread, before the run is submitted) with that run's
  // config; a non-null result becomes the run's private TraceSink, closed
  // when the run finishes.  This is how --trace-out works in sweep mode —
  // one sink per run, so concurrent runs never interleave events.  Return
  // nullptr to leave a run untraced.
  std::function<std::unique_ptr<TraceSink>(const RunConfig&)> sink_factory;
};

/// The paper's x-axis: 1, 2, 4, 8, 16 MB per node.
[[nodiscard]] std::vector<Bytes> paper_cache_sizes();

/// Run the full grid; results are ordered algorithm-major, cache-minor
/// (results[a * n_caches + c]).  `on_done(completed, total)` is invoked
/// after each run for progress reporting (from worker threads; keep it
/// cheap and thread-safe).
[[nodiscard]] std::vector<RunResult> run_sweep(
    const Trace& trace, const RunConfig& base, const SweepSpec& spec,
    std::size_t threads = 0,
    const std::function<void(std::size_t, std::size_t)>& on_done = {});

}  // namespace lap
