// Structured (machine-readable) export of simulation results: a run
// manifest (machine, workload, RNG seed, algorithm, trace identity) plus
// every RunResult row, and optionally the final counter registry — the JSON
// twin of the human tables in driver/report.
//
// Document schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "manifest": { "title", "machine", "nodes", "disks", "block_size",
//                   "workload", "workload_seed", "processes", "files",
//                   "io_ops", "fs", "algorithm", "cache_per_node_bytes",
//                   "sync_interval_ms", "warmup_fraction", "trace_out" },
//     "runs": [ { every RunResult field, times in ms / sizes in bytes } ],
//     "counters": { name: number | {count,mean,min,max,p50,p95,p99} }   (optional)
//   }
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "driver/simulation.hpp"

namespace lap {

class CounterRegistry;
class Flags;
class JsonWriter;

/// Everything needed to re-run / attribute a result file.
struct RunManifest {
  std::string title;     // binary or figure name
  std::string machine;   // MachineConfig::describe()
  std::uint32_t nodes = 0;
  std::uint32_t disks = 0;
  Bytes block_size = 0;
  std::string workload;  // generator name, e.g. "charisma"
  std::uint64_t workload_seed = 0;
  std::size_t processes = 0;
  std::size_t files = 0;
  std::uint64_t io_ops = 0;
  std::string fs;
  std::string algorithm;  // of the primary run ("" for sweeps)
  Bytes cache_per_node = 0;
  double sync_interval_ms = 0.0;
  double warmup_fraction = 0.0;
  std::string trace_out;  // sibling trace file, "" when tracing was off
};

/// Fill the config/workload-derived manifest fields from `cfg` and `trace`.
[[nodiscard]] RunManifest make_manifest(const std::string& title,
                                        const RunConfig& cfg,
                                        const Trace& trace);

/// One RunResult as a JSON object (the "runs" row shape).
void write_run_result_json(JsonWriter& w, const RunResult& r);

/// Complete metrics document; `registry` adds the "counters" member.
void write_metrics_json(std::ostream& os, const RunManifest& manifest,
                        const std::vector<RunResult>& results,
                        const CounterRegistry* registry = nullptr);

/// The standard observability command-line surface shared by the examples
/// and bench binaries:
///   --trace-out <path>       write a Chrome trace_event JSON
///   --metrics-json <path>    write the metrics document above
///   --obs-sample-ms <n>      counter sampling period in simulated ms (50)
struct ObsOptions {
  std::optional<std::string> trace_out;
  std::optional<std::string> metrics_json;
  SimTime sample_interval = SimTime::ms(50);

  [[nodiscard]] bool any() const {
    return trace_out.has_value() || metrics_json.has_value();
  }
};

[[nodiscard]] ObsOptions parse_obs_options(const Flags& flags);

}  // namespace lap
