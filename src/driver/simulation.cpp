#include "driver/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "disk/disk_array.hpp"
#include "fs/common/client.hpp"
#include "fs/common/file_model.hpp"
#include "fs/pafs/pafs.hpp"
#include "fs/xfs/xfs.hpp"
#include "net/network.hpp"
#include "obs/counters.hpp"
#include "obs/deferred_sink.hpp"
#include "obs/span.hpp"
#include "obs/trace_event.hpp"
#include "sim/domain.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace lap {

std::string to_string(FsKind kind) {
  return kind == FsKind::kPafs ? "PAFS" : "xFS";
}

SimTime sharded_lookahead(const MachineConfig& machine) {
  const SimTime cross = machine.net.min_cross_latency();
  const SimTime completion = machine.disk.completion_latency;
  return completion < cross ? completion : cross;
}

namespace {

// Canonical domain numbering (part of the run's semantics, identical at
// every shard count): domain 0 is the controller/directory, domains
// 1..nodes are the per-node model domains, then one service domain per
// disk.  Only the *grouping* of domains onto shards varies with the shard
// count, which is why shards = 1/2/4/8/16 all replay the same simulation
// bit-for-bit.
//
// PAFS models one global cache with one manager, so its model domains all
// ride shard 0 (cross-domain resumes inside the PAFS protocol are then
// same-shard by construction) and the disks round-robin over the remaining
// shards.  xFS is node-granular: node domains spread over the model
// shards, the directory keeps shard 0, and roughly a quarter of the shards
// (capped by the spindle count) service the disks.
DomainMap build_domain_map(int shards, std::uint32_t nodes,
                           std::uint32_t disk_count, FsKind fs) {
  DomainMap map;
  const std::uint32_t domains = 1 + nodes + disk_count;
  map.shards = static_cast<std::uint16_t>(shards);
  map.shard_of.assign(domains, 0);
  map.phase_of.assign(domains, DomainPhase::kModel);
  for (std::uint32_t i = 0; i < disk_count; ++i) {
    map.phase_of[1 + nodes + i] = DomainPhase::kService;
  }
  if (shards <= 1) return map;
  if (fs == FsKind::kPafs) {
    for (std::uint32_t i = 0; i < disk_count; ++i) {
      map.shard_of[1 + nodes + i] = static_cast<std::uint16_t>(
          1 + i % static_cast<std::uint32_t>(shards - 1));
    }
    return map;
  }
  const std::uint32_t s = static_cast<std::uint32_t>(shards);
  const std::uint32_t service_shards =
      std::min(std::max<std::uint32_t>(disk_count, 1), std::max(1u, s / 4));
  const std::uint32_t model_shards = std::max(1u, s - service_shards);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    map.shard_of[node_domain(n)] =
        static_cast<std::uint16_t>(n % model_shards);
  }
  for (std::uint32_t i = 0; i < disk_count; ++i) {
    map.shard_of[1 + nodes + i] =
        static_cast<std::uint16_t>(model_shards + i % service_shards);
  }
  return map;
}

}  // namespace

RunResult run_simulation(const Trace& trace, const RunConfig& cfg) {
  InMemoryTraceSource source(trace);
  return run_simulation(source, cfg);
}

RunResult run_simulation(TraceSource& source, const RunConfig& cfg) {
  // Wall-clock here measures host-side runtime for RunResult::wall_seconds
  // only; it never feeds simulated state and is excluded from the golden
  // RunResult fingerprint.  lap-lint: allow-next-line(no-wallclock)
  const auto wall_start = std::chrono::steady_clock::now();
  const TraceMeta& meta = source.meta();

  Engine eng;
  MachineConfig machine = cfg.machine;
  machine.net.model_contention = cfg.net_contention;
  const std::uint32_t nodes = std::max(machine.nodes, meta.node_span());

  Network net(eng, machine.net, nodes);
  machine.disk.distance_seeks = cfg.distance_seeks;
  DiskArray disks(eng, machine.disk, machine.disks);

  const int shards = std::max(1, cfg.shards);
  const std::size_t total_domains =
      1 + static_cast<std::size_t>(nodes) + machine.disks;
  {
    SimTime lookahead = sharded_lookahead(machine);
    if (cfg.epoch > SimTime::zero() && cfg.epoch < lookahead) {
      lookahead = cfg.epoch;  // may shrink epochs, never stretch them
    }
    eng.configure_domains(build_domain_map(shards, nodes, machine.disks,
                                           cfg.fs),
                          lookahead);
    disks.set_domains(disk_domain(nodes, 0));
    net.set_domains(total_domains);
  }
  if (cfg.spans != nullptr) cfg.spans->bind(&eng);
  FileModel files(meta.block_size);
  files.load(meta.files);

  MetricsSet metrics(cfg.fs == FsKind::kPafs ? MetricsSet::Mode::kShared
                                             : MetricsSet::Mode::kPerNode,
                     nodes);
  {
    // Warm-up thresholds come from per-process record counts (the one
    // workload measure both in-memory and streamed sources know up
    // front), apportioned to each node's slot.
    std::vector<std::uint64_t> records(nodes, 0);
    for (const TraceMeta::ProcessInfo& p : meta.processes) {
      records[raw(p.node)] += p.records;
    }
    metrics.set_warmup(cfg.warmup_fraction, records);
  }

  // One shutdown flag per domain; the end-of-workload broadcast below sets
  // them all via per-domain mail.
  std::vector<StopFlag> flags(total_domains);
  const std::size_t blocks_per_node = static_cast<std::size_t>(
      std::max<Bytes>(1, cfg.cache_per_node / machine.block_size));

  std::unique_ptr<FileSystem> fs;
  Pafs* pafs_raw = nullptr;
  Xfs* xfs_raw = nullptr;
  if (cfg.fs == FsKind::kPafs) {
    PafsConfig pcfg;
    pcfg.cache_blocks_total = blocks_per_node * nodes;
    pcfg.sync_interval = cfg.sync_interval;
    pcfg.algorithm = cfg.algorithm;
    pcfg.prefetch_priority = cfg.prefetch_priority;
    auto pafs = std::make_unique<Pafs>(eng, net, disks, files,
                                       metrics.node(0), pcfg, nodes,
                                       &flags[0].stop);
    pafs->start_sync_daemon();
    pafs_raw = pafs.get();
    fs = std::move(pafs);
  } else {
    XfsConfig xcfg;
    xcfg.cache_blocks_per_node = blocks_per_node;
    xcfg.sync_interval = cfg.sync_interval;
    xcfg.algorithm = cfg.algorithm;
    xcfg.prefetch_priority = cfg.prefetch_priority;
    auto xfs = std::make_unique<Xfs>(eng, net, disks, files, metrics, xcfg,
                                     nodes, flags.data());
    xfs->start_sync_daemon();
    xfs_raw = xfs.get();
    fs = std::move(xfs);
  }

  // Sharded traced runs interpose the deferred sink: every shard buffers
  // its emissions into a private lane and seal() (after the run) replays
  // them in canonical event order, so the trace byte-stream is identical
  // at every shard count.
  std::unique_ptr<DeferredTraceSink> deferred;
  TraceSink* sink = cfg.trace;
  if (cfg.trace != nullptr && shards > 1) {
    deferred = std::make_unique<DeferredTraceSink>(eng, *cfg.trace);
    sink = deferred.get();
  }
  if (sink != nullptr) {
    for (std::uint32_t i = 0; i < nodes; ++i) {
      const std::uint32_t pid = i + 1;
      sink->name_process(pid, "node " + std::to_string(i));
      sink->name_thread(pid, 1, "fs");
      sink->name_thread(pid, 2, "net");
      sink->name_thread(pid, 3, "cache");
    }
    sink->name_process(tracks::kFilePid, "prefetch (per file)");
    sink->name_process(tracks::kMetricsPid, "metrics");
    eng.set_trace_sink(sink);
    net.set_trace(sink);
    disks.set_trace(sink);
    fs->set_trace(sink);
  }
  // Provenance spans ride the same engine-held pointer as the trace sink:
  // one branch per hook when detached, strictly passive when attached.
  eng.set_span_collector(cfg.spans);

  if (cfg.counters != nullptr) {
    CounterRegistry& reg = *cfg.counters;
    // Probes read the run's components directly; they are frozen to their
    // final level before those components are destroyed (end of this
    // function), so exports after the run stay valid.
    reg.probe("engine.events", [&eng] {
      return static_cast<double>(eng.events_processed());
    });
    reg.probe("engine.pending",
              [&eng] { return static_cast<double>(eng.pending()); });
    reg.probe("net.messages", [&net] {
      return static_cast<double>(net.stats().messages);
    });
    reg.probe("net.transfers", [&net] {
      return static_cast<double>(net.stats().transfers);
    });
    reg.probe("net.bytes_moved", [&net] {
      return static_cast<double>(net.stats().bytes_moved);
    });
    reg.probe("disk.reads", [&disks] {
      return static_cast<double>(disks.total_stats().block_reads);
    });
    reg.probe("disk.writes", [&disks] {
      return static_cast<double>(disks.total_stats().block_writes);
    });
    reg.probe("disk.prefetch_reads", [&disks] {
      return static_cast<double>(disks.total_stats().prefetch_reads);
    });
    reg.probe("disk.busy_seconds",
              [&disks] { return disks.total_stats().busy_time.seconds(); });
    reg.probe("cache.hits", [&metrics] {
      return static_cast<double>(metrics.hits_local() + metrics.hits_remote() +
                                 metrics.hits_inflight());
    });
    reg.probe("cache.misses",
              [&metrics] { return static_cast<double>(metrics.misses()); });
    if (pafs_raw != nullptr) {
      reg.probe("cache.blocks", [pafs_raw] {
        return static_cast<double>(pafs_raw->pool().size());
      });
      reg.probe("cache.dirty_blocks", [pafs_raw] {
        return static_cast<double>(pafs_raw->pool().dirty_count());
      });
      reg.probe("cache.evictions", [pafs_raw] {
        return static_cast<double>(pafs_raw->pool().lru_stats().pops);
      });
    } else {
      reg.probe("cache.blocks", [xfs_raw, nodes] {
        std::size_t total = 0;
        for (std::uint32_t i = 0; i < nodes; ++i) {
          total += xfs_raw->pool(NodeId{i}).size();
        }
        return static_cast<double>(total);
      });
      reg.probe("cache.dirty_blocks", [xfs_raw, nodes] {
        std::size_t total = 0;
        for (std::uint32_t i = 0; i < nodes; ++i) {
          total += xfs_raw->pool(NodeId{i}).dirty_count();
        }
        return static_cast<double>(total);
      });
      reg.probe("cache.evictions", [xfs_raw, nodes] {
        std::uint64_t total = 0;
        for (std::uint32_t i = 0; i < nodes; ++i) {
          total += xfs_raw->pool(NodeId{i}).lru_stats().pops;
        }
        return static_cast<double>(total);
      });
    }
    reg.probe("prefetch.issued", [fsp = fs.get()] {
      return static_cast<double>(fsp->prefetch_counters_total().issued);
    });
    reg.probe("prefetch.retargets", [fsp = fs.get()] {
      return static_cast<double>(fsp->prefetch_counters_total().retargets);
    });
    // Feedback-throttle attribution (flat zero / one unless the algorithm
    // runs with accuracy feedback, DESIGN.md §15).
    reg.probe("prefetch.degree_raises", [fsp = fs.get()] {
      return static_cast<double>(fsp->prefetch_counters_total().degree_raises);
    });
    reg.probe("prefetch.degree_clamps", [fsp = fs.get()] {
      return static_cast<double>(fsp->prefetch_counters_total().degree_clamps);
    });
    reg.probe("prefetch.degree_peak", [fsp = fs.get()] {
      return static_cast<double>(fsp->prefetch_counters_total().degree_peak);
    });
    // Whole-run prefetch settlement totals: the ground truth the span
    // collector's own totals must reconcile with exactly (lap_check fuzzes
    // that equality on every scenario).
    reg.probe("prefetch.arrived", [&metrics] {
      return static_cast<double>(metrics.prefetch_arrived());
    });
    reg.probe("prefetch.used", [&metrics] {
      return static_cast<double>(metrics.prefetch_used());
    });
    reg.probe("prefetch.wasted", [&metrics] {
      return static_cast<double>(metrics.prefetch_wasted());
    });
    if (cfg.trace != nullptr && shards == 1) {
      // Sampling probes read live component state across domains, which is
      // only race-free when everything runs on one shard; sharded traced
      // runs still get the final probe levels via freeze_probes() below.
      start_counter_sampling(eng, reg, *cfg.trace,
                             cfg.counter_sample_interval, &flags[0].stop);
    }
  }

  if (cfg.algorithm.kind == AlgorithmSpec::Kind::kInformed) {
    // Disclose every process's future reads up front: the trace itself is
    // the perfect hint source the informed upper bound assumes.  Each
    // stream is scanned once through a throwaway cursor (sources support
    // re-opening), so this works for on-disk workloads too.
    for (std::size_t i = 0; i < meta.processes.size(); ++i) {
      const TraceMeta::ProcessInfo& proc = meta.processes[i];
      // Hints are grouped per file in first-touch order — deterministic,
      // unlike the std::unordered_map this replaced.
      FlatHashMap<std::uint32_t, std::size_t> slot_of;
      std::vector<std::pair<std::uint32_t, std::vector<BlockRequest>>> per_file;
      auto cursor = source.open(i);
      TraceRecord rec;
      while (cursor->next(rec)) {
        if (rec.op != TraceOp::kRead) continue;
        const BlockRange range = files.range(rec.file, rec.offset, rec.length);
        if (range.count == 0) continue;
        const auto slot = slot_of.emplace(raw(rec.file), per_file.size());
        if (slot.second) {
          per_file.emplace_back(raw(rec.file), std::vector<BlockRequest>{});
        }
        per_file[slot.first->second].second.push_back(
            BlockRequest{range.first, range.count});
      }
      for (auto& [file, hints] : per_file) {
        fs->provide_hints(proc.pid, proc.node, FileId{file}, std::move(hints));
      }
    }
  }

  WorkloadRunner runner(eng, *fs, metrics, source, cfg.cpu_contention);
  // Per-node completion notices travel to the controller domain as mail
  // with a modelled port-startup latency (a legal cross-shard hop).  When
  // the last one lands, the controller broadcasts stop mails to every
  // domain at the same latency — unconditionally, at every shard count, so
  // the event population (and RunResult::events) is shard-invariant.
  runner.set_notify_latency(machine.net.local_port_startup);
  runner.start([&eng, &flags, &machine, total_domains] {
    const SimTime at = eng.now() + machine.net.local_port_startup;
    for (std::size_t d = 0; d < total_domains; ++d) {
      eng.post_at(static_cast<DomainId>(d), at,
                  [&flags, d] { flags[d].stop = true; });
    }
  });
  if (deferred != nullptr) deferred->begin_buffering();
  if (shards > 1) {
    // Epoch-barrier parallel execution; drains the same event population
    // in the same canonical order as the sequential branch below.
    eng.run_parallel(
        static_cast<std::size_t>(std::max(0, cfg.shard_threads)));
  } else {
    eng.run();  // drains: daemons and prefetch pumps observe `stop`
  }
  LAP_ENSURES(runner.live_processes() == 0);

  // Replay each shard's buffered emissions in canonical event order before
  // finalize() — its end-of-run records (unused-prefetch settlements) come
  // after every in-run event in the sequential stream, so they must pass
  // through after the sorted batch, not be sorted into it.
  if (deferred != nullptr) deferred->seal();
  fs->finalize();
  if (cfg.spans != nullptr) cfg.spans->seal();

  RunResult r;
  r.algorithm = cfg.algorithm.name();
  r.fs = to_string(cfg.fs);
  r.cache_per_node = cfg.cache_per_node;
  r.avg_read_ms = metrics.avg_read_ms();
  r.avg_write_ms = metrics.avg_write_ms();
  r.reads = metrics.reads();
  r.writes = metrics.writes();
  r.disk_reads = metrics.disk_reads();
  r.disk_writes = metrics.disk_writes();
  r.disk_accesses = metrics.disk_accesses();
  r.disk_prefetch_reads = metrics.disk_prefetch_reads();
  r.writes_per_block = metrics.writes_per_block();
  r.hit_ratio = metrics.hit_ratio();
  r.hits_local = metrics.hits_local();
  r.hits_remote = metrics.hits_remote();
  r.hits_inflight = metrics.hits_inflight();
  r.misses = metrics.misses();
  r.misprediction_ratio = metrics.misprediction_ratio();
  const PrefetchCounters pc = fs->prefetch_counters_total();
  r.prefetch_issued = pc.issued;
  r.prefetch_fallback = pc.fallback_issued;
  r.prefetch_arrived = metrics.prefetch_arrived();
  r.prefetch_used = metrics.prefetch_used();
  r.prefetch_wasted = metrics.prefetch_wasted();
  r.fallback_fraction =
      pc.issued == 0 ? 0.0
                     : static_cast<double>(pc.fallback_issued) /
                           static_cast<double>(pc.issued);
  r.read_p95_ms = metrics.merged_read_histogram().quantile(0.95);
  r.sim_duration = eng.now();
  r.events = eng.events_processed();
  r.wall_seconds = std::chrono::duration<double>(
                       // lap-lint: allow-next-line(no-wallclock)
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  if (cfg.spans != nullptr) {
    // finalize() has settled every resident prefetched-unused buffer, so the
    // collector is complete: publish totals + stage histograms and render
    // the async span tracks (timestamps are historical; viewers sort by ts).
    if (cfg.counters != nullptr) cfg.spans->publish(*cfg.counters);
    if (cfg.trace != nullptr) cfg.spans->emit_async(*cfg.trace);
  }
  if (cfg.counters != nullptr) cfg.counters->freeze_probes();
  return r;
}

}  // namespace lap
