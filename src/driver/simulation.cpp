#include "driver/simulation.hpp"

#include <chrono>
#include <cmath>
#include <memory>

#include "disk/disk_array.hpp"
#include "fs/common/client.hpp"
#include "fs/common/file_model.hpp"
#include "fs/pafs/pafs.hpp"
#include "fs/xfs/xfs.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace lap {

std::string to_string(FsKind kind) {
  return kind == FsKind::kPafs ? "PAFS" : "xFS";
}

RunResult run_simulation(const Trace& trace, const RunConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();

  Engine eng;
  MachineConfig machine = cfg.machine;
  machine.net.model_contention = cfg.net_contention;
  const std::uint32_t nodes = std::max(machine.nodes, trace.node_span());

  Network net(eng, machine.net, nodes);
  machine.disk.distance_seeks = cfg.distance_seeks;
  DiskArray disks(eng, machine.disk, machine.disks);
  FileModel files(trace.block_size);
  files.load(trace);

  Metrics metrics;
  metrics.set_warmup_ops(static_cast<std::uint64_t>(
      static_cast<double>(trace.total_io_ops()) * cfg.warmup_fraction));

  bool stop = false;
  const std::size_t blocks_per_node = static_cast<std::size_t>(
      std::max<Bytes>(1, cfg.cache_per_node / machine.block_size));

  std::unique_ptr<FileSystem> fs;
  if (cfg.fs == FsKind::kPafs) {
    PafsConfig pcfg;
    pcfg.cache_blocks_total = blocks_per_node * nodes;
    pcfg.sync_interval = cfg.sync_interval;
    pcfg.algorithm = cfg.algorithm;
    pcfg.prefetch_priority = cfg.prefetch_priority;
    auto pafs = std::make_unique<Pafs>(eng, net, disks, files, metrics, pcfg,
                                       nodes, &stop);
    pafs->start_sync_daemon();
    fs = std::move(pafs);
  } else {
    XfsConfig xcfg;
    xcfg.cache_blocks_per_node = blocks_per_node;
    xcfg.sync_interval = cfg.sync_interval;
    xcfg.algorithm = cfg.algorithm;
    xcfg.prefetch_priority = cfg.prefetch_priority;
    auto xfs = std::make_unique<Xfs>(eng, net, disks, files, metrics, xcfg,
                                     nodes, &stop);
    xfs->start_sync_daemon();
    fs = std::move(xfs);
  }

  if (cfg.algorithm.kind == AlgorithmSpec::Kind::kInformed) {
    // Disclose every process's future reads up front: the trace itself is
    // the perfect hint source the informed upper bound assumes.
    for (const ProcessTrace& proc : trace.processes) {
      std::unordered_map<std::uint32_t, std::vector<BlockRequest>> per_file;
      for (const TraceRecord& rec : proc.records) {
        if (rec.op != TraceOp::kRead) continue;
        const BlockRange range = files.range(rec.file, rec.offset, rec.length);
        if (range.count == 0) continue;
        per_file[raw(rec.file)].push_back(BlockRequest{range.first, range.count});
      }
      for (auto& [file, hints] : per_file) {
        fs->provide_hints(proc.pid, proc.node, FileId{file}, std::move(hints));
      }
    }
  }

  WorkloadRunner runner(eng, *fs, metrics, trace, cfg.cpu_contention);
  runner.start([&stop] { stop = true; });
  eng.run();  // drains: daemons and prefetch pumps observe `stop`
  LAP_ENSURES(runner.live_processes() == 0);

  fs->finalize();

  RunResult r;
  r.algorithm = cfg.algorithm.name();
  r.fs = to_string(cfg.fs);
  r.cache_per_node = cfg.cache_per_node;
  r.avg_read_ms = metrics.avg_read_ms();
  r.avg_write_ms = metrics.avg_write_ms();
  r.reads = metrics.reads();
  r.writes = metrics.writes();
  r.disk_reads = metrics.disk_reads();
  r.disk_writes = metrics.disk_writes();
  r.disk_accesses = metrics.disk_accesses();
  r.disk_prefetch_reads = metrics.disk_prefetch_reads();
  r.writes_per_block = metrics.writes_per_block();
  r.hit_ratio = metrics.hit_ratio();
  r.hits_local = metrics.hits_local();
  r.hits_remote = metrics.hits_remote();
  r.hits_inflight = metrics.hits_inflight();
  r.misses = metrics.misses();
  r.misprediction_ratio = metrics.misprediction_ratio();
  const PrefetchCounters pc = fs->prefetch_counters_total();
  r.prefetch_issued = pc.issued;
  r.prefetch_fallback = pc.fallback_issued;
  r.fallback_fraction =
      pc.issued == 0 ? 0.0
                     : static_cast<double>(pc.fallback_issued) /
                           static_cast<double>(pc.issued);
  r.read_p95_ms = metrics.read_histogram().quantile(0.95);
  r.sim_duration = eng.now();
  r.events = eng.events_processed();
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return r;
}

}  // namespace lap
