#include "driver/report.hpp"

#include <ostream>
#include <string>
#include <vector>

#include "driver/metrics_json.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace lap {
namespace {

std::vector<std::string> cache_header(const SweepSpec& spec) {
  std::vector<std::string> header;
  header.reserve(spec.cache_sizes.size() + 1);
  header.push_back("algorithm");
  for (Bytes c : spec.cache_sizes) {
    header.push_back(std::to_string(c / (1024 * 1024)) + "MB");
  }
  return header;
}

const RunResult& at(const SweepSpec& spec, const std::vector<RunResult>& results,
                    std::size_t algo, std::size_t cache) {
  const std::size_t idx = algo * spec.cache_sizes.size() + cache;
  LAP_EXPECTS(idx < results.size());
  return results[idx];
}

}  // namespace

void print_experiment_header(std::ostream& os, const std::string& title,
                             const MachineConfig& machine, const Trace& trace,
                             const RunConfig& base) {
  os << "== " << title << " ==\n";
  os << "machine  " << machine.describe() << '\n';
  os << "workload " << trace.processes.size() << " processes, "
     << trace.files.size() << " files, " << trace.total_io_ops()
     << " I/O ops (" << trace.total_bytes_read() / (1024 * 1024) << " MB read, "
     << trace.total_bytes_written() / (1024 * 1024) << " MB written), "
     << "warm-up " << base.warmup_fraction * 100 << "% of ops\n";
  os << "fs       " << to_string(base.fs) << ", sync interval "
     << to_string(base.sync_interval) << '\n';
}

void print_read_time_series(std::ostream& os, const SweepSpec& spec,
                            const std::vector<RunResult>& results) {
  os << "\nAverage read time (ms) vs per-node cache size\n";
  Table t(cache_header(spec));
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    std::vector<double> row;
    row.reserve(spec.cache_sizes.size());
    for (std::size_t c = 0; c < spec.cache_sizes.size(); ++c) {
      row.push_back(at(spec, results, a, c).avg_read_ms);
    }
    t.add_row(spec.algorithms[a].name(), row);
  }
  t.print(os);
}

void print_disk_access_series(std::ostream& os, const SweepSpec& spec,
                              const std::vector<RunResult>& results) {
  os << "\nDisk accesses (thousands of block reads+writes) vs per-node cache size\n";
  Table t(cache_header(spec));
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    std::vector<double> row;
    for (std::size_t c = 0; c < spec.cache_sizes.size(); ++c) {
      row.push_back(static_cast<double>(at(spec, results, a, c).disk_accesses) /
                    1000.0);
    }
    t.add_row(spec.algorithms[a].name(), row, 1);
  }
  t.print(os);

  os << "\n  of which disk *writes* (thousands)\n";
  Table w(cache_header(spec));
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    std::vector<double> row;
    for (std::size_t c = 0; c < spec.cache_sizes.size(); ++c) {
      row.push_back(static_cast<double>(at(spec, results, a, c).disk_writes) /
                    1000.0);
    }
    w.add_row(spec.algorithms[a].name(), row, 1);
  }
  w.print(os);
}

void print_writes_per_block_table(std::ostream& os, const SweepSpec& spec,
                                  const std::vector<RunResult>& results) {
  os << "\nAverage number of times a block is written to disk\n";
  Table t(cache_header(spec));
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    std::vector<double> row;
    for (std::size_t c = 0; c < spec.cache_sizes.size(); ++c) {
      row.push_back(at(spec, results, a, c).writes_per_block);
    }
    t.add_row(spec.algorithms[a].name(), row, 2);
  }
  t.print(os);
}

void print_diagnostics(std::ostream& os, const SweepSpec& spec,
                       const std::vector<RunResult>& results) {
  os << "\nDiagnostics (at each cache size: hit ratio | prefetched blocks | "
        "mis-prediction ratio | OBA-fallback share)\n";
  std::vector<std::string> header;
  header.push_back("algorithm");
  for (Bytes c : spec.cache_sizes) {
    header.push_back(std::to_string(c / (1024 * 1024)) + "MB");
  }
  Table t(header);
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    std::vector<std::string> row;
    row.push_back(spec.algorithms[a].name());
    for (std::size_t c = 0; c < spec.cache_sizes.size(); ++c) {
      const RunResult& r = at(spec, results, a, c);
      row.push_back(fmt_double(r.hit_ratio, 2) + "|" +
                    std::to_string(r.prefetch_issued / 1000) + "k|" +
                    fmt_double(r.misprediction_ratio, 2) + "|" +
                    fmt_double(r.fallback_fraction, 2));
    }
    t.add_row(std::move(row));
  }
  t.print(os);
}

void print_run_summary(std::ostream& os, const RunResult& r) {
  os << r.fs << "/" << r.algorithm << " @ "
     << r.cache_per_node / (1024 * 1024) << "MB/node: avg read "
     << fmt_double(r.avg_read_ms, 3) << " ms (p95 "
     << fmt_double(r.read_p95_ms, 2) << "), hit ratio "
     << fmt_double(r.hit_ratio, 3) << ", disk accesses " << r.disk_accesses
     << " (" << r.disk_reads << "r/" << r.disk_writes << "w), prefetched "
     << r.prefetch_issued << " (mispred " << fmt_double(r.misprediction_ratio, 2)
     << "), sim time " << fmt_double(r.sim_duration.seconds(), 1) << " s, "
     << r.events << " events in " << fmt_double(r.wall_seconds, 2) << " s wall\n";
}

void write_results_csv(std::ostream& os,
                       const std::vector<RunResult>& results) {
  os << "fs,algorithm,cache_mb,avg_read_ms,p95_read_ms,hit_ratio,disk_reads,"
        "disk_writes,disk_accesses,prefetched,fallback,misprediction_ratio,"
        "writes_per_block,sim_seconds\n";
  for (const RunResult& r : results) {
    os << r.fs << ',' << r.algorithm << ',' << r.cache_per_node / (1024 * 1024)
       << ',' << fmt_double(r.avg_read_ms, 6) << ','
       << fmt_double(r.read_p95_ms, 6) << ',' << fmt_double(r.hit_ratio, 6)
       << ',' << r.disk_reads << ',' << r.disk_writes << ',' << r.disk_accesses
       << ',' << r.prefetch_issued << ',' << r.prefetch_fallback << ','
       << fmt_double(r.misprediction_ratio, 6) << ','
       << fmt_double(r.writes_per_block, 6) << ','
       << fmt_double(r.sim_duration.seconds(), 3) << '\n';
  }
}

void write_results_json(std::ostream& os, const RunManifest& manifest,
                        const std::vector<RunResult>& results,
                        const CounterRegistry* registry) {
  write_metrics_json(os, manifest, results, registry);
}

}  // namespace lap
